// Scenario: network design — where should a node add links to become more
// central? (The "greedily improving our own closeness" problem the paper
// cites as one use of farness machinery.)
//
// A peripheral warehouse in a road network gets a budget of new direct
// connections; greedy selection with exact gain evaluation shows how each
// added link moves the node up the closeness ranking.
#include <algorithm>
#include <cstdio>

#include "brics/brics.hpp"
#include "extensions/improve.hpp"

int main() {
  using namespace brics;

  CsrGraph g = build_dataset("road-rural", 0.25);
  std::printf("road network: %u junctions, %llu segments\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // Pick the most peripheral junction (largest farness) as the warehouse.
  std::vector<FarnessSum> f = exact_farness(g);
  NodeId warehouse = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    if (f[v] > f[warehouse]) warehouse = v;

  auto rank_of = [](const std::vector<FarnessSum>& farness, NodeId v) {
    NodeId better = 0;
    for (FarnessSum x : farness)
      if (x < farness[v]) ++better;
    return better + 1;
  };
  std::printf(
      "\nwarehouse candidate: junction %u — farness %llu, rank %u of %u\n",
      warehouse, static_cast<unsigned long long>(f[warehouse]),
      rank_of(f, warehouse), g.num_nodes());

  ImproveOptions opts;
  opts.budget = 4;
  opts.candidate_pool = 400;  // evaluate a sample of link targets
  opts.seed = 7;
  Timer t;
  ImproveResult r = improve_closeness(g, warehouse, opts);
  std::printf("\ngreedy link additions (%.2f s):\n", t.seconds());
  FarnessSum prev = r.initial_farness;
  for (std::size_t i = 0; i < r.added.size(); ++i) {
    std::printf(
        "  + link to junction %-8u farness %llu -> %llu (-%.1f%%)\n",
        r.added[i], static_cast<unsigned long long>(prev),
        static_cast<unsigned long long>(r.farness[i]),
        100.0 * (double(prev) - double(r.farness[i])) / double(prev));
    prev = r.farness[i];
  }

  std::vector<FarnessSum> f2 = exact_farness(r.graph);
  std::printf("\nfinal rank: %u of %u (was %u)\n", rank_of(f2, warehouse),
              g.num_nodes(), rank_of(f, warehouse));
  return 0;
}
