// Scenario: a growing network — keep centrality estimates fresh while
// edges stream in, without re-running the reduction pipeline every time.
//
// Demonstrates the dynamic extension (the paper's "future work" direction):
// inserted edges splice the minimal set of invalidated reduction records
// and re-estimate on the patched reduction.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "brics/brics.hpp"
#include "extensions/dynamic.hpp"

int main() {
  using namespace brics;

  CsrGraph g = build_dataset("web-copy-a", 0.15);
  std::printf("web graph: %u pages, %llu links\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  EstimateOptions opts;
  opts.sample_rate = 0.25;
  opts.seed = 9;

  Timer t0;
  DynamicFarness dyn(g, opts, /*rebuild_threshold=*/16);
  std::printf("initial estimate: %.3f s, %u traversal sources\n",
              t0.seconds(), dyn.estimate().samples);

  // Stream in 20 random "new links" and track the update cost.
  Rng rng(1234);
  double patched_time = 0.0;
  for (int i = 0; i < 20; ++i) {
    NodeId u = static_cast<NodeId>(rng.below(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (u == v) continue;
    Timer t;
    dyn.insert_edge(u, v);
    patched_time += t.seconds();
  }
  const DynamicStats& st = dyn.stats();
  std::printf(
      "\nafter %llu insertions: %llu patched in-place, %llu nodes spliced "
      "back, %llu full rebuilds\n",
      static_cast<unsigned long long>(st.insertions),
      static_cast<unsigned long long>(st.patched),
      static_cast<unsigned long long>(st.spliced_nodes),
      static_cast<unsigned long long>(st.full_rebuilds));
  std::printf("mean update time: %.3f s\n", patched_time / 20.0);

  // Sanity: the maintained estimate matches a from-scratch run.
  Timer tf;
  EstimateResult fresh = estimate_farness(dyn.graph(), opts);
  std::printf("from-scratch re-estimation would cost: %.3f s\n",
              tf.seconds());

  double worst = 0.0;
  for (NodeId v = 0; v < dyn.graph().num_nodes(); ++v) {
    if (!dyn.estimate().exact[v] || !fresh.exact[v]) continue;
    worst = std::max(worst,
                     std::abs(dyn.estimate().farness[v] - fresh.farness[v]));
  }
  std::printf("max disagreement on exactly-known nodes: %.1f (expect 0)\n",
              worst);
  return 0;
}
