// Scenario: finding influencer accounts in a social network.
//
// Closeness centrality ranks users by how quickly they can reach everyone
// else. This example builds a social-network-like graph (preferential
// attachment + duplicate accounts + follower leaves), then:
//   1. extracts the provably exact top-k via the pruned-BFS extension,
//   2. compares how much work that costs against naive exact farness,
//   3. shows that the BRICS estimate ranks (nearly) the same accounts.
#include <algorithm>
#include <cstdio>

#include "brics/brics.hpp"
#include "extensions/topk.hpp"

int main() {
  using namespace brics;

  CsrGraph g = build_dataset("soc-pref-a", 0.25);
  std::printf("social graph: %u users, %llu follow edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // --- Exact top-10 via estimate-guided pruned BFS. ---
  Timer t1;
  TopKOptions topts;
  topts.estimate.sample_rate = 0.1;
  TopKResult top = top_k_closeness(g, 10, topts);
  const double t_topk = t1.seconds();

  std::printf("\nexact top-10 (pruned BFS, %.3f s, %llu levels expanded):\n",
              t_topk, static_cast<unsigned long long>(top.levels_expanded));
  for (std::size_t i = 0; i < top.nodes.size(); ++i)
    std::printf("  #%-3zu user %-8u farness %llu\n", i + 1, top.nodes[i],
                static_cast<unsigned long long>(top.farness[i]));

  // --- Compare against the naive full computation. ---
  Timer t2;
  std::vector<FarnessSum> all = exact_farness(g);
  const double t_exact = t2.seconds();
  std::printf("\nnaive exact farness of every user: %.3f s (%.1fx slower)\n",
              t_exact, t_exact / t_topk);

  // --- And the cheap BRICS estimate's agreement on the same question. ---
  EstimateOptions eopts;
  eopts.sample_rate = 0.2;
  Timer t3;
  EstimateResult est = estimate_farness(g, eopts);
  const double t_est = t3.seconds();
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return est.farness[a] < est.farness[b];
  });
  int hits = 0;
  for (std::size_t i = 0; i < top.nodes.size(); ++i)
    for (std::size_t j = 0; j < top.nodes.size(); ++j)
      if (order[i] == top.nodes[j]) ++hits;
  std::printf(
      "\nBRICS estimate (%.3f s) recovers %d of the true top-10 in its own "
      "top-10\n",
      t_est, hits);
  QualityReport q = quality(est.farness, all);
  std::printf("estimate quality (mean approximation ratio): %.3f\n",
              q.quality);
  return 0;
}
