// Quickstart: load (or generate) a graph, estimate farness centrality with
// the full BRICS pipeline, and print the most central nodes.
//
//   ./quickstart [edge_list.txt] [sample_rate]
//
// Without arguments a synthetic community network is generated so the
// example runs out of the box.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "brics/brics.hpp"

int main(int argc, char** argv) {
  using namespace brics;

  CsrGraph g;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    g = read_edge_list_file(argv[1]);
  } else {
    std::printf("no input file given — generating 'com-part-a' (scale 0.2)\n");
    g = build_dataset("com-part-a", 0.2);
  }
  const double rate = argc > 2 ? std::atof(argv[2]) : 0.2;
  std::printf("graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  EstimateOptions opts;
  opts.sample_rate = rate;      // fraction of reduced-graph nodes to BFS from
  opts.seed = 42;               // deterministic sampling
  opts.use_bcc = true;          // full BRICS: I + C + R + BiCC + sampling

  EstimateResult est = estimate_farness(g, opts);

  std::printf(
      "\nreduction: %u -> %u nodes "
      "(identical %u, chain %u, redundant %u), %u biconnected blocks\n",
      est.reduce_stats.input_nodes, est.reduce_stats.reduced_nodes,
      est.reduce_stats.identical.removed, est.reduce_stats.chains.removed,
      est.reduce_stats.redundant.removed, est.num_blocks);
  std::printf("sampling:  %u traversal sources (%.0f%% of reduced graph)\n",
              est.samples, rate * 100);
  std::printf("time:      %.3f s total (%.3f s traversals)\n",
              est.times.total_s, est.times.traverse_s);

  // Rank by estimated farness: smaller = more central.
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return est.farness[a] < est.farness[b];
  });

  std::printf("\ntop 10 closeness-central nodes (farness ascending):\n");
  std::printf("%-8s %-14s %-16s %s\n", "rank", "node", "farness", "exact?");
  for (int i = 0; i < 10 && i < static_cast<int>(g.num_nodes()); ++i) {
    NodeId v = order[static_cast<std::size_t>(i)];
    std::printf("%-8d %-14u %-16.1f %s\n", i + 1, v, est.farness[v],
                est.exact[v] ? "yes" : "estimated");
  }
  return 0;
}
