// Scenario: facility placement on a road network.
//
// The 1-median of a road graph — the junction with minimum total travel
// distance to every other point — is the classical answer to "where should
// the depot go". Road networks are the paper's best case for chain
// reduction (70-85 % of nodes have degree <= 2), so this example also shows
// the reduction effect explicitly.
#include <cstdio>

#include "brics/brics.hpp"
#include "extensions/topk.hpp"

int main() {
  using namespace brics;

  CsrGraph g = build_dataset("road-grid-a", 0.3);
  std::printf("road network: %u junctions, %llu road segments\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));

  // --- What the chain reduction does to a road network. ---
  ReduceOptions ropts;  // full I+C+R (identical/redundant are no-ops here)
  Timer tr;
  ReducedGraph rg = reduce(g, ropts);
  std::printf(
      "\nreduction (%.3f s): %u -> %u nodes (%.1f%% removed, %u of them "
      "chain nodes)\n",
      tr.seconds(), rg.stats.input_nodes, rg.stats.reduced_nodes,
      100.0 * (rg.stats.input_nodes - rg.stats.reduced_nodes) /
          static_cast<double>(rg.stats.input_nodes),
      rg.stats.chains.removed);
  std::printf("compressed graph carries weighted edges up to weight %u\n",
              rg.graph.max_weight());

  // --- Depot placement: the exact 1-median. ---
  Timer tm;
  TopKOptions topts;
  topts.estimate.sample_rate = 0.15;
  NodeId depot = one_median(g, topts);
  std::printf("\n1-median junction: %u (found in %.3f s)\n", depot,
              tm.seconds());
  std::printf("total travel distance from it: %llu hops\n",
              static_cast<unsigned long long>(exact_farness_of(g, depot)));

  // --- Compare three estimators' time on this class. ---
  for (bool use_bcc : {false, true}) {
    EstimateOptions o;
    o.sample_rate = 0.2;
    o.use_bcc = use_bcc;
    Timer t;
    EstimateResult est = estimate_farness(g, o);
    std::printf("%-28s %.3f s  (%u sources)\n",
                use_bcc ? "BRICS (with BiCC blocks):" : "reduce+sample:",
                t.seconds(), est.samples);
  }
  EstimateOptions r;
  r.sample_rate = 0.2;
  Timer t;
  EstimateResult base = estimate_random_sampling(g, r);
  std::printf("%-28s %.3f s  (%u sources)\n", "random sampling baseline:",
              t.seconds(), base.samples);
  return 0;
}
