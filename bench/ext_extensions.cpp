// Extension benchmarks (beyond the paper's figures):
//   (1) top-k closeness: estimate-guided pruned BFS vs naive all-sources,
//       across the dataset registry — the pruning win the Okamoto-style
//       ranking relies on.
//   (2) dynamic updates: patched re-estimation vs from-scratch pipeline
//       per inserted edge — the paper's future-work direction quantified.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "extensions/dynamic.hpp"
#include "extensions/topk.hpp"

using namespace brics;
using namespace brics::bench;

namespace {

void topk_bench() {
  std::printf("(1) exact top-10 closeness: pruned vs naive\n\n");
  const std::vector<int> w = {12, 10, 10, 10, 12};
  print_header({"graph", "t_pruned", "t_naive", "speedup", "levels"}, w);
  for (const DatasetInfo& info : dataset_registry()) {
    CsrGraph g = build_dataset(info.name, bench_scale());
    Timer tp;
    TopKOptions o;
    o.estimate.sample_rate = 0.1;
    TopKResult r = top_k_closeness(g, 10, o);
    const double t_pruned = tp.seconds();
    Timer tn;
    std::vector<FarnessSum> all = exact_farness(g);
    const double t_naive = tn.seconds();
    // Sanity inline: the pruned result must match the naive ranking.
    std::vector<FarnessSum> sorted(all.begin(), all.end());
    std::nth_element(sorted.begin(), sorted.begin() + 9, sorted.end());
    BRICS_CHECK(r.farness.back() ==
                *std::max_element(sorted.begin(), sorted.begin() + 10));
    print_row({info.name, fmt(t_pruned, 3), fmt(t_naive, 3),
               fmt(t_naive / t_pruned, 2) + "x",
               std::to_string(r.levels_expanded)},
              w);
  }
  std::printf("\n");
}

void dynamic_bench() {
  std::printf("(2) dynamic insertions: patched vs from-scratch\n\n");
  const std::vector<int> w = {12, 12, 12, 10, 10};
  print_header({"graph", "t_patch/ins", "t_scratch", "spliced", "rebuilds"},
               w);
  for (const char* name :
       {"web-copy-a", "soc-rmat", "com-part-a", "road-rural"}) {
    CsrGraph g = build_dataset(name, bench_scale());
    EstimateOptions o;
    o.sample_rate = 0.2;
    o.seed = 5;
    DynamicFarness dyn(g, o, /*rebuild_threshold=*/64);
    Rng rng(99);
    const int inserts = 10;
    Timer tp;
    for (int i = 0; i < inserts; ++i) {
      NodeId u = NodeId(rng.below(g.num_nodes()));
      NodeId v = NodeId(rng.below(g.num_nodes()));
      if (u != v) dyn.insert_edge(u, v);
    }
    const double per_insert = tp.seconds() / inserts;
    Timer ts;
    EstimateResult fresh = estimate_farness(dyn.graph(), o);
    (void)fresh;
    const double scratch = ts.seconds();
    print_row({name, fmt(per_insert, 3), fmt(scratch, 3),
               std::to_string(dyn.stats().spliced_nodes),
               std::to_string(dyn.stats().full_rebuilds)},
              w);
  }
}

}  // namespace

int main() {
  BenchArtifact artifact("ext_extensions");
  std::printf("Extension benchmarks (scale=%.2f)\n\n", bench_scale());
  topk_bench();
  dynamic_bench();
  return 0;
}
