// Regenerates the paper's Fig. 5 narrative: why BiCC-restricted sampling
// (b) yields better estimates than uniform random sampling (a). Fig. 5
// itself is a schematic; the measurable claim behind it is that with the
// same sample budget, per-block sampling + exact cross-block propagation
// leaves far less of each farness value to estimation. This harness
// quantifies that per graph:
//   - exact-node fraction (nodes whose value is exact, not estimated)
//   - Quality and error-tail statistics for both samplers
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace brics;
using namespace brics::bench;

int main() {
  BenchArtifact artifact("fig5_sampling_quality");
  const double rate = 0.20;
  std::printf(
      "Fig. 5 — Random vs BiCC sampling at equal rate (%.0f%%), "
      "scale=%.2f\n\n",
      rate * 100, bench_scale());
  const std::vector<int> w = {12, 8, 9, 9, 10, 10, 10, 10};
  print_header({"graph", "which", "quality", "meanerr", "p95err",
                "maxerr", "exact%", "sources"},
               w);
  for (const DatasetInfo& info : dataset_registry()) {
    CsrGraph g = build_dataset(info.name, bench_scale());
    std::vector<FarnessSum> actual = exact_farness(g);
    RunResult rnd = run_estimator(g, actual, config_random(rate), true);
    RunResult bcc = run_estimator(g, actual, config_cumulative(rate), false);
    // Equal-budget comparison: random sampling with the same number of
    // traversal sources that BiCC sampling used (its rate applies to the
    // smaller reduced graph, so a nominal-rate comparison favours random).
    const double eq_rate = std::max(
        0.01, static_cast<double>(bcc.last.samples) /
                  static_cast<double>(g.num_nodes()));
    RunResult rnd_eq =
        run_estimator(g, actual, config_random(eq_rate), true);
    auto exact_pct = [&](const EstimateResult& e) {
      NodeId k = 0;
      for (auto b : e.exact) k += b;
      return 100.0 * static_cast<double>(k) /
             static_cast<double>(g.num_nodes());
    };
    auto row = [&](const char* name, const RunResult& r, bool first) {
      print_row({first ? info.name : "", name, fmt(r.q.quality, 3),
                 fmt(r.q.mean_abs_err, 3), fmt(r.q.p95_abs_err, 3),
                 fmt(r.q.max_abs_err, 3), fmt(exact_pct(r.last), 1),
                 std::to_string(r.last.samples)},
                w);
    };
    row("random", rnd, true);
    row("rand-eq", rnd_eq, false);
    row("bicc", bcc, false);
  }
  std::printf(
      "\nrandom  = uniform sampling at the nominal rate (of |V| sources)\n"
      "rand-eq = uniform sampling at the bicc run's *source budget*\n"
      "bicc    = BRICS: per-block sampling, exact cross-block carries\n"
      "Expected shape (paper): at equal budget, bicc beats rand-eq because\n"
      "the cross-block part of every farness value is exact through cut\n"
      "vertices; only intra-block sums of non-sampled nodes are estimated.\n");
  return 0;
}
