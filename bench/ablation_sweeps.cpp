// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out:
//   (1) sampling-rate sweep: quality/time of Random vs BRICS from 10 % to
//       100 % on one graph per class (extends Fig. 4's two points to a
//       curve; at 100 % BRICS is exact on all present nodes),
//   (2) reduction-order ablation: single-pass I->C->R vs iterated
//       fixed-point reduction,
//   (3) per-block self-calibration ablation is structural (always on), so
//       instead we report the error split exact/estimated nodes.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace brics;
using namespace brics::bench;

namespace {

void rate_sweep() {
  std::printf("(1) sampling-rate sweep (one graph per class)\n\n");
  const std::vector<int> w = {12, 7, 11, 11, 11, 11};
  print_header({"graph", "rate%", "Q(rand)", "Q(brics)", "t_rand", "t_brics"},
               w);
  for (const char* name :
       {"web-copy-a", "soc-rmat", "com-part-a", "road-rural"}) {
    CsrGraph g = build_dataset(name, bench_scale());
    std::vector<FarnessSum> actual = exact_farness(g);
    for (double rate : {0.1, 0.2, 0.4, 0.7, 1.0}) {
      RunResult rnd = run_estimator(g, actual, config_random(rate), true);
      RunResult cum =
          run_estimator(g, actual, config_cumulative(rate), false);
      print_row({rate == 0.1 ? name : "", fmt(rate * 100, 0),
                 fmt(rnd.q.quality, 3), fmt(cum.q.quality, 3),
                 fmt(rnd.seconds, 3), fmt(cum.seconds, 3)},
                w);
    }
  }
  std::printf("\n");
}

void iterate_ablation() {
  std::printf("(2) single-pass vs iterated (fixed-point) reduction\n\n");
  const std::vector<int> w = {12, 10, 11, 11, 9, 9};
  print_header({"graph", "mode", "reduced|V|", "rounds", "t_red", "t_est"},
               w);
  for (const DatasetInfo& info : dataset_registry()) {
    CsrGraph g = build_dataset(info.name, bench_scale());
    for (bool iterate : {false, true}) {
      EstimateOptions o = config_cumulative(0.4);
      o.reduce.iterate = iterate;
      Timer t;
      EstimateResult est = estimate_farness(g, o);
      (void)t;
      print_row({iterate ? "" : info.name, iterate ? "iterated" : "single",
                 std::to_string(est.reduce_stats.reduced_nodes),
                 std::to_string(est.reduce_stats.rounds),
                 fmt(est.times.reduce_s, 3), fmt(est.times.total_s, 3)},
                w);
    }
  }
  std::printf("\n");
}

void error_split() {
  std::printf(
      "(3) error split: exactly-known vs estimated nodes (BRICS @ 20%%)\n\n");
  const std::vector<int> w = {12, 10, 10, 12, 12};
  print_header({"graph", "exact n", "est n", "meanerr(est)", "maxerr(est)"},
               w);
  for (const char* name :
       {"web-copy-a", "soc-rmat", "com-part-a", "road-rural"}) {
    CsrGraph g = build_dataset(name, bench_scale());
    std::vector<FarnessSum> actual = exact_farness(g);
    EstimateResult est = estimate_farness(g, config_cumulative(0.2));
    NodeId n_exact = 0, n_est = 0;
    double sum_err = 0.0, max_err = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const double ar = est.farness[v] / static_cast<double>(actual[v]);
      if (est.exact[v]) {
        ++n_exact;
      } else {
        ++n_est;
        sum_err += std::abs(ar - 1.0);
        max_err = std::max(max_err, std::abs(ar - 1.0));
      }
    }
    print_row({name, std::to_string(n_exact), std::to_string(n_est),
               fmt(n_est ? sum_err / n_est : 0.0, 4), fmt(max_err, 4)},
              w);
  }
}

void strategy_ablation() {
  std::printf(
      "\n(4) sampling strategy: uniform vs degree-weighted (BRICS @ 20%%)\n\n");
  const std::vector<int> w = {12, 16, 11, 11};
  print_header({"graph", "strategy", "quality", "meanerr"}, w);
  for (const char* name :
       {"web-copy-a", "soc-rmat", "com-part-a", "road-rural"}) {
    CsrGraph g = build_dataset(name, bench_scale());
    std::vector<FarnessSum> actual = exact_farness(g);
    for (SampleStrategy st :
         {SampleStrategy::kUniform, SampleStrategy::kDegreeWeighted}) {
      EstimateOptions o = config_cumulative(0.2);
      o.strategy = st;
      RunResult r = run_estimator(g, actual, o, false);
      print_row({st == SampleStrategy::kUniform ? name : "",
                 st == SampleStrategy::kUniform ? "uniform"
                                                : "degree-weighted",
                 fmt(r.q.quality, 3), fmt(r.q.mean_abs_err, 3)},
                w);
    }
  }
}

}  // namespace

int main() {
  BenchArtifact artifact("ablation_sweeps");
  std::printf("Ablation sweeps (scale=%.2f, repeats=%d)\n\n", bench_scale(),
              bench_repeats());
  rate_sweep();
  iterate_ablation();
  error_split();
  strategy_ablation();
  return 0;
}
