#include "bench/bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace brics::bench {

double bench_scale() {
  if (const char* s = std::getenv("BRICS_BENCH_SCALE")) {
    double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return v;
  }
  // Default tuned so the full `for b in build/bench/*` sweep finishes in a
  // few minutes on a laptop core while keeping every structural signature.
  return 0.4;
}

int bench_repeats() {
  if (const char* s = std::getenv("BRICS_BENCH_REPEATS")) {
    int v = std::atoi(s);
    if (v >= 1 && v <= 100) return v;
  }
  return 3;
}

RunResult run_estimator(const CsrGraph& g,
                        const std::vector<FarnessSum>& actual,
                        const EstimateOptions& opts, bool random_baseline) {
  RunResult out;
  std::vector<double> times;
  const int reps = bench_repeats();
  for (int r = 0; r < reps; ++r) {
    EstimateOptions o = opts;
    o.seed = opts.seed + static_cast<std::uint64_t>(r) * 977;
    Timer t;
    EstimateResult est = random_baseline ? estimate_random_sampling(g, o)
                                         : estimate_farness(g, o);
    times.push_back(t.seconds());
    if (r == reps - 1) {
      out.q = quality(est.farness, actual);
      out.last = std::move(est);
    }
  }
  std::sort(times.begin(), times.end());
  out.seconds = times[times.size() / 2];
  return out;
}

EstimateOptions config_random(double rate, std::uint64_t seed) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  return o;
}

EstimateOptions config_cr(double rate, std::uint64_t seed) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  o.reduce.identical = false;
  o.use_bcc = false;
  return o;
}

EstimateOptions config_icr(double rate, std::uint64_t seed) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  o.use_bcc = false;
  return o;
}

EstimateOptions config_cumulative(double rate, std::uint64_t seed) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  o.use_bcc = true;
  return o;
}

void print_header(const std::vector<std::string>& cols,
                  const std::vector<int>& widths) {
  print_row(cols, widths);
  int total = 0;
  for (int w : widths) total += w + 2;
  std::printf("%s\n", std::string(static_cast<std::size_t>(total), '-')
                          .c_str());
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf("%-*s  ", widths[i], cells[i].c_str());
  std::printf("\n");
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(prec);
  os << v;
  return os.str();
}

}  // namespace brics::bench
