#include "bench/bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/json.hpp"
#include "obs/version.hpp"

namespace brics::bench {

double bench_scale() {
  if (const char* s = std::getenv("BRICS_BENCH_SCALE")) {
    double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return v;
  }
  // Default tuned so the full `for b in build/bench/*` sweep finishes in a
  // few minutes on a laptop core while keeping every structural signature.
  return 0.4;
}

int bench_repeats() {
  if (const char* s = std::getenv("BRICS_BENCH_REPEATS")) {
    int v = std::atoi(s);
    if (v >= 1 && v <= 100) return v;
  }
  return 3;
}

RunResult run_estimator(const CsrGraph& g,
                        const std::vector<FarnessSum>& actual,
                        const EstimateOptions& opts, bool random_baseline) {
  RunResult out;
  std::vector<double> times;
  const int reps = bench_repeats();
  for (int r = 0; r < reps; ++r) {
    // Scope the registry to this repeat: the artifact snapshot then
    // describes one run, and the diff gate's counter cross-check compares
    // like with like whatever BRICS_BENCH_REPEATS was.
    MetricsRegistry::global().reset();
    EstimateOptions o = opts;
    o.seed = opts.seed + static_cast<std::uint64_t>(r) * 977;
    Timer t;
    EstimateResult est = random_baseline ? estimate_random_sampling(g, o)
                                         : estimate_farness(g, o);
    times.push_back(t.seconds());
    if (r == reps - 1) {
      out.q = quality(est.farness, actual);
      out.last = std::move(est);
    }
  }
  std::sort(times.begin(), times.end());
  out.seconds = times[times.size() / 2];
  return out;
}

EstimateOptions config_random(double rate, std::uint64_t seed) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  return o;
}

EstimateOptions config_cr(double rate, std::uint64_t seed) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  o.reduce.identical = false;
  o.use_bcc = false;
  return o;
}

EstimateOptions config_icr(double rate, std::uint64_t seed) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  o.use_bcc = false;
  return o;
}

EstimateOptions config_cumulative(double rate, std::uint64_t seed) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  o.use_bcc = true;
  return o;
}

void print_header(const std::vector<std::string>& cols,
                  const std::vector<int>& widths) {
  if (BenchArtifact* art = BenchArtifact::current()) art->begin_table(cols);
  for (std::size_t i = 0; i < cols.size(); ++i)
    std::printf("%-*s  ", widths[i], cols[i].c_str());
  std::printf("\n");
  int total = 0;
  for (int w : widths) total += w + 2;
  std::printf("%s\n", std::string(static_cast<std::size_t>(total), '-')
                          .c_str());
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  if (BenchArtifact* art = BenchArtifact::current()) art->add_row(cells);
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf("%-*s  ", widths[i], cells[i].c_str());
  std::printf("\n");
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(prec);
  os << v;
  return os.str();
}

namespace {
BenchArtifact* g_current_artifact = nullptr;

// Provenance for the artifact's env block. The git sha comes from the
// shared configure-time stamp (obs/version.hpp), which already honours a
// runtime BRICS_GIT_SHA env-var override for out-of-tree runs.
std::string env_git_sha() { return build_git_sha(); }

std::string env_compiler() {
#if defined(__clang_version__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__) && defined(__VERSION__)
  return std::string("gcc ") + __VERSION__;
#elif defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

std::string env_cpu_model() {
#ifdef __linux__
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t b = colon + 1;
        while (b < line.size() && line[b] == ' ') ++b;
        return line.substr(b);
      }
    }
  }
#endif
  return "unknown";
}
}  // namespace

BenchArtifact* BenchArtifact::current() { return g_current_artifact; }

BenchArtifact::BenchArtifact(std::string harness)
    : harness_(std::move(harness)) {
  g_current_artifact = this;
}

BenchArtifact::~BenchArtifact() {
  if (g_current_artifact == this) g_current_artifact = nullptr;
  const std::string out = path();
  std::ofstream file(out);
  if (!file.good()) {
    std::fprintf(stderr, "warning: cannot write artifact %s\n", out.c_str());
    return;
  }
  file << to_json() << '\n';
  std::printf("\n[artifact] %s\n", out.c_str());
}

void BenchArtifact::begin_table(const std::vector<std::string>& cols) {
  tables_.push_back(Table{cols, {}});
}

void BenchArtifact::add_row(const std::vector<std::string>& cells) {
  // A row printed before any header still lands somewhere sensible.
  if (tables_.empty()) tables_.push_back(Table{});
  tables_.back().rows.push_back(cells);
}

std::string BenchArtifact::path() const {
  if (const char* p = std::getenv("BRICS_BENCH_JSON")) return p;
  return "BENCH_" + harness_ + ".json";
}

std::string BenchArtifact::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema_version", kSchemaVersion);
  w.field("harness", harness_);
  w.key("params")
      .begin_object()
      .field("scale", bench_scale())
      .field("repeats", bench_repeats())
      .field("threads", max_threads())
      .end_object();
  // Provenance: enough to tell whether two artifacts are comparable at all
  // (same machine, same compiler) before reading any timing into them.
  w.key("env")
      .begin_object()
      .field("git_sha", env_git_sha())
      .field("compiler", env_compiler())
      .field("cpu_model", env_cpu_model())
      .field("hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .end_object();
  w.key("tables").begin_array();
  for (const Table& t : tables_) {
    w.begin_object().key("columns").begin_array();
    for (const std::string& c : t.columns) w.value(c);
    w.end_array().key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_array();
      for (const std::string& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array().end_object();
  }
  w.end_array();
  // Cumulative pipeline counters over everything the harness ran — the
  // cheap cross-check that a speedup didn't change the work done.
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  w.key("metrics").begin_object().key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.field(name, v);
  w.end_object().key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.field(name, v);
  w.end_object().end_object();
  w.end_object();
  return w.str();
}

}  // namespace brics::bench
