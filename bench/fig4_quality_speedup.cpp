// Regenerates the paper's Fig. 4:
//   (a) Quality and speed-up of the Cumulative (BRICS) approach vs Random
//       sampling at a 40 % sampling rate, across all twelve graphs.
//   (b) Cumulative at 20 % vs Random at 30 % — the paper's headline claim
//       that 20 % BRICS samples beat 30 % random samples on both axes.
// Speed-up = time(random) / time(cumulative), as in §IV-C1. Each dataset
// and its exact ground truth are built once and reused by both panels.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace brics;
using namespace brics::bench;

namespace {

struct PanelRow {
  std::string name;
  std::string cls;
  RunResult rnd, cum;
};

void print_panel(const char* title, const std::vector<PanelRow>& rows) {
  std::printf("%s\n\n", title);
  const std::vector<int> w = {12, 10, 9, 9, 9, 9, 9, 8};
  print_header({"graph", "class", "Q(rand)", "Q(brics)", "t_rand",
                "t_brics", "speedup", "blocks"},
               w);
  std::vector<double> speedups;
  std::string cls;
  auto flush_class = [&](const std::string& next) {
    if (!speedups.empty() && cls != next) {
      std::printf("%-12s  %-10s  avg speedup %.2fx\n", "--", cls.c_str(),
                  geometric_mean(speedups));
      speedups.clear();
    }
    cls = next;
  };
  for (const PanelRow& r : rows) {
    flush_class(r.cls);
    const double speedup = r.rnd.seconds / r.cum.seconds;
    speedups.push_back(speedup);
    print_row({r.name, r.cls, fmt(r.rnd.q.quality, 3),
               fmt(r.cum.q.quality, 3), fmt(r.rnd.seconds, 3),
               fmt(r.cum.seconds, 3), fmt(speedup, 2) + "x",
               std::to_string(r.cum.last.num_blocks)},
              w);
  }
  flush_class("");
  std::printf("\n");
}

}  // namespace

int main() {
  BenchArtifact artifact("fig4_quality_speedup");
  std::printf(
      "Fig. 4 — Random sampling vs Cumulative (BRICS), scale=%.2f, "
      "repeats=%d\n\n",
      bench_scale(), bench_repeats());

  std::vector<PanelRow> panel_a, panel_b;
  for (const DatasetInfo& info : dataset_registry()) {
    CsrGraph g = build_dataset(info.name, bench_scale());
    std::vector<FarnessSum> actual = exact_farness(g);
    PanelRow a{info.name, to_string(info.cls),
               run_estimator(g, actual, config_random(0.40), true),
               run_estimator(g, actual, config_cumulative(0.40), false)};
    PanelRow b{info.name, to_string(info.cls),
               run_estimator(g, actual, config_random(0.30), true),
               run_estimator(g, actual, config_cumulative(0.20), false)};
    panel_a.push_back(std::move(a));
    panel_b.push_back(std::move(b));
  }

  print_panel("(a) 40%% sampling rate for both approaches", panel_a);
  print_panel("(b) Cumulative @ 20%% vs Random @ 30%%", panel_b);
  std::printf(
      "Expected shape (paper): Cumulative quality >= random per class;\n"
      "panel (b): 20%% Cumulative matches/beats 30%% Random on both axes.\n");
  return 0;
}
