// Regenerates the paper's Fig. 4:
//   (a) Quality and speed-up of the Cumulative (BRICS) approach vs Random
//       sampling at a 40 % sampling rate, across all twelve graphs.
//   (b) Cumulative at 20 % vs Random at 30 % — the paper's headline claim
//       that 20 % BRICS samples beat 30 % random samples on both axes.
// Speed-up = time(random) / time(cumulative), as in §IV-C1. Each dataset
// and its exact ground truth are built once and reused by both panels.
//
// Panel (c) re-runs the Cumulative 40 % configuration on the compact
// (delta+varint) adjacency backend: the perf gate watches its timing and
// memory columns, and the `equal` cell asserts bit-identical farness
// against the plain-CSR run from panel (a).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace brics;
using namespace brics::bench;

namespace {

struct PanelRow {
  std::string name;
  std::string cls;
  RunResult rnd, cum;
};

struct SubstrateRow {
  std::string name;
  double t_plain = 0.0, t_compact = 0.0;
  double adj_mb = 0.0, bytes_per_edge = 0.0, ratio = 0.0;
  bool equal = false;
};

void print_substrate(const std::vector<SubstrateRow>& rows) {
  std::printf("(c) Cumulative @ 40%% on the compact adjacency backend\n\n");
  const std::vector<int> w = {12, 9, 10, 9, 14, 7, 7};
  print_header({"graph", "t_plain", "t_compact", "adj_mb", "bytes_per_edge",
                "ratio", "equal"},
               w);
  for (const SubstrateRow& r : rows)
    print_row({r.name, fmt(r.t_plain, 3), fmt(r.t_compact, 3),
               fmt(r.adj_mb, 2), fmt(r.bytes_per_edge, 2), fmt(r.ratio, 2),
               r.equal ? "yes" : "NO"},
              w);
  std::printf("\n");
}

void print_panel(const char* title, const std::vector<PanelRow>& rows) {
  std::printf("%s\n\n", title);
  const std::vector<int> w = {12, 10, 9, 9, 9, 9, 9, 8};
  print_header({"graph", "class", "Q(rand)", "Q(brics)", "t_rand",
                "t_brics", "speedup", "blocks"},
               w);
  std::vector<double> speedups;
  std::string cls;
  auto flush_class = [&](const std::string& next) {
    if (!speedups.empty() && cls != next) {
      std::printf("%-12s  %-10s  avg speedup %.2fx\n", "--", cls.c_str(),
                  geometric_mean(speedups));
      speedups.clear();
    }
    cls = next;
  };
  for (const PanelRow& r : rows) {
    flush_class(r.cls);
    const double speedup = r.rnd.seconds / r.cum.seconds;
    speedups.push_back(speedup);
    print_row({r.name, r.cls, fmt(r.rnd.q.quality, 3),
               fmt(r.cum.q.quality, 3), fmt(r.rnd.seconds, 3),
               fmt(r.cum.seconds, 3), fmt(speedup, 2) + "x",
               std::to_string(r.cum.last.num_blocks)},
              w);
  }
  flush_class("");
  std::printf("\n");
}

}  // namespace

int main() {
  BenchArtifact artifact("fig4_quality_speedup");
  std::printf(
      "Fig. 4 — Random sampling vs Cumulative (BRICS), scale=%.2f, "
      "repeats=%d\n\n",
      bench_scale(), bench_repeats());

  std::vector<PanelRow> panel_a, panel_b;
  std::vector<SubstrateRow> panel_c;
  for (const DatasetInfo& info : dataset_registry()) {
    CsrGraph g = build_dataset(info.name, bench_scale());
    std::vector<FarnessSum> actual = exact_farness(g);
    PanelRow a{info.name, to_string(info.cls),
               run_estimator(g, actual, config_random(0.40), true),
               run_estimator(g, actual, config_cumulative(0.40), false)};
    PanelRow b{info.name, to_string(info.cls),
               run_estimator(g, actual, config_random(0.30), true),
               run_estimator(g, actual, config_cumulative(0.20), false)};

    const std::uint64_t plain_bytes = g.adjacency_bytes();
    CsrGraph gc = g;
    gc.compress();
    EstimateOptions copts = config_cumulative(0.40);
    copts.storage = AdjacencyStorage::kCompact;
    const RunResult compact = run_estimator(gc, actual, copts, false);
    SubstrateRow c;
    c.name = info.name;
    c.t_plain = a.cum.seconds;
    c.t_compact = compact.seconds;
    c.adj_mb = static_cast<double>(gc.adjacency_bytes()) / (1024.0 * 1024.0);
    c.bytes_per_edge = static_cast<double>(gc.adjacency_bytes()) /
                       static_cast<double>(gc.num_directed_edges());
    c.ratio = static_cast<double>(gc.adjacency_bytes()) /
              static_cast<double>(plain_bytes);
    c.equal = compact.last.farness == a.cum.last.farness;

    panel_a.push_back(std::move(a));
    panel_b.push_back(std::move(b));
    panel_c.push_back(std::move(c));
  }

  print_panel("(a) 40%% sampling rate for both approaches", panel_a);
  print_panel("(b) Cumulative @ 20%% vs Random @ 30%%", panel_b);
  print_substrate(panel_c);
  for (const SubstrateRow& r : panel_c)
    if (!r.equal) {
      std::printf("FATAL: compact farness differs from plain on %s\n",
                  r.name.c_str());
      return 1;
    }
  std::printf(
      "Expected shape (paper): Cumulative quality >= random per class;\n"
      "panel (b): 20%% Cumulative matches/beats 30%% Random on both axes.\n");
  return 0;
}
