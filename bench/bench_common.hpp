// Shared infrastructure for the paper-reproduction harnesses.
//
// Each fig*/table* binary regenerates one table or figure of the paper on
// the synthetic dataset registry and prints the same rows/series the paper
// reports. Absolute numbers differ from the paper's testbed; the *shape*
// (who wins, by what factor, where the crossovers are) is the reproduction
// target — see EXPERIMENTS.md.
//
// Environment knobs:
//   BRICS_BENCH_SCALE    dataset scale in (0, 1], default 1.0
//   BRICS_BENCH_REPEATS  timing repetitions, default 3 (median reported)
//   BRICS_BENCH_JSON     artifact path, default BENCH_<harness>.json
#pragma once

#include <string>
#include <vector>

#include "brics/brics.hpp"

namespace brics::bench {

/// Scale factor for dataset sizes, from BRICS_BENCH_SCALE.
double bench_scale();

/// Timing repetitions, from BRICS_BENCH_REPEATS.
int bench_repeats();

/// One estimator run measured against ground truth.
struct RunResult {
  double seconds = 0.0;   ///< median wall-clock over repeats
  QualityReport q;
  EstimateResult last;    ///< result of the final repetition
};

/// Run an estimator configuration `repeats` times, report median time and
/// quality against the supplied exact farness values. The global metrics
/// registry is reset before each repeat, so the artifact's final snapshot
/// describes exactly one run (the last repeat), not a sum over repeats.
RunResult run_estimator(const CsrGraph& g,
                        const std::vector<FarnessSum>& actual,
                        const EstimateOptions& opts, bool random_baseline);

/// Named estimator configurations used across the figures.
EstimateOptions config_random(double rate, std::uint64_t seed = 1);
EstimateOptions config_cr(double rate, std::uint64_t seed = 1);      // C+R
EstimateOptions config_icr(double rate, std::uint64_t seed = 1);     // I+C+R
EstimateOptions config_cumulative(double rate, std::uint64_t seed = 1);

/// Fixed-width table printing helpers. While a BenchArtifact is alive,
/// every header starts a new artifact table and every row is mirrored
/// into it, so harnesses get a JSON record of exactly what they printed.
void print_header(const std::vector<std::string>& cols,
                  const std::vector<int>& widths);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);
std::string fmt(double v, int prec = 2);

/// JSON artifact for one harness run (schema v2, docs/OBSERVABILITY.md):
/// run parameters (scale, repeats, threads), an `env` provenance block
/// (git sha, compiler, CPU model, hardware threads) so two artifacts can be
/// compared knowing *what* produced them, every printed table, and the
/// final metrics snapshot scoped to the last repeat. Construct one at the
/// top of main(); the destructor writes $BRICS_BENCH_JSON or
/// BENCH_<harness>.json.
class BenchArtifact {
 public:
  static constexpr int kSchemaVersion = 2;

  explicit BenchArtifact(std::string harness);
  ~BenchArtifact();
  BenchArtifact(const BenchArtifact&) = delete;
  BenchArtifact& operator=(const BenchArtifact&) = delete;

  void begin_table(const std::vector<std::string>& cols);
  void add_row(const std::vector<std::string>& cells);

  std::string to_json() const;
  /// Resolved output path ($BRICS_BENCH_JSON beats the default).
  std::string path() const;

  /// The artifact print_header/print_row mirror into, if any.
  static BenchArtifact* current();

 private:
  struct Table {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  std::string harness_;
  std::vector<Table> tables_;
};

}  // namespace brics::bench
