// Shared infrastructure for the paper-reproduction harnesses.
//
// Each fig*/table* binary regenerates one table or figure of the paper on
// the synthetic dataset registry and prints the same rows/series the paper
// reports. Absolute numbers differ from the paper's testbed; the *shape*
// (who wins, by what factor, where the crossovers are) is the reproduction
// target — see EXPERIMENTS.md.
//
// Environment knobs:
//   BRICS_BENCH_SCALE    dataset scale in (0, 1], default 1.0
//   BRICS_BENCH_REPEATS  timing repetitions, default 3 (median reported)
#pragma once

#include <string>
#include <vector>

#include "brics/brics.hpp"

namespace brics::bench {

/// Scale factor for dataset sizes, from BRICS_BENCH_SCALE.
double bench_scale();

/// Timing repetitions, from BRICS_BENCH_REPEATS.
int bench_repeats();

/// One estimator run measured against ground truth.
struct RunResult {
  double seconds = 0.0;   ///< median wall-clock over repeats
  QualityReport q;
  EstimateResult last;    ///< result of the final repetition
};

/// Run an estimator configuration `repeats` times, report median time and
/// quality against the supplied exact farness values.
RunResult run_estimator(const CsrGraph& g,
                        const std::vector<FarnessSum>& actual,
                        const EstimateOptions& opts, bool random_baseline);

/// Named estimator configurations used across the figures.
EstimateOptions config_random(double rate, std::uint64_t seed = 1);
EstimateOptions config_cr(double rate, std::uint64_t seed = 1);      // C+R
EstimateOptions config_icr(double rate, std::uint64_t seed = 1);     // I+C+R
EstimateOptions config_cumulative(double rate, std::uint64_t seed = 1);

/// Fixed-width table printing helpers.
void print_header(const std::vector<std::string>& cols,
                  const std::vector<int>& widths);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);
std::string fmt(double v, int prec = 2);

}  // namespace brics::bench
