// Thread-scaling sweep (the paper runs 40 threads on a Xeon E5-2640 v4;
// §IV-C1 reports all timings at full thread count). This harness measures
// both estimators at 1, 2, 4, ... threads up to the hardware limit —
// on a single-core host it simply reports the 1-thread row, but the
// parallel structure (sources, blocks) is identical to the paper's.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "util/parallel.hpp"

using namespace brics;
using namespace brics::bench;

int main() {
  BenchArtifact artifact("scaling_threads");
  const int hw = max_threads();
  std::printf("Thread scaling (hardware threads: %d, scale=%.2f)\n\n", hw,
              bench_scale());
  const std::vector<int> w = {12, 8, 11, 11, 11, 11, 11};
  print_header({"graph", "threads", "t_rand", "t_brics", "speedup",
                "efficiency", "imbalance"},
               w);
  for (const char* name : {"soc-pref-a", "road-grid-a"}) {
    CsrGraph g = build_dataset(name, bench_scale());
    std::vector<FarnessSum> actual = exact_farness(g);
    for (int t = 1; t <= hw; t *= 2) {
      set_threads(t);
      RunResult rnd = run_estimator(g, actual, config_random(0.3), true);
      RunResult cum =
          run_estimator(g, actual, config_cumulative(0.3), false);
      // Per-thread work attribution of the cumulative run's last repeat
      // (run_estimator resets the registry per repeat, so this describes
      // exactly one run). Empty in a -DBRICS_METRICS=OFF build.
      const ParallelStats ps =
          collect_parallel_stats(MetricsRegistry::global(), t);
      const bool have = !ps.per_thread.empty();
      print_row({t == 1 ? name : "", std::to_string(t),
                 fmt(rnd.seconds, 3), fmt(cum.seconds, 3),
                 fmt(rnd.seconds / cum.seconds, 2) + "x",
                 have ? fmt(ps.efficiency, 2) : "-",
                 have ? fmt(ps.imbalance, 2) : "-"},
                w);
    }
    set_threads(hw);
  }
  return 0;
}
