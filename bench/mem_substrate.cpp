// Memory-substrate harness: proves the compact adjacency backend's two
// contracts and emits the byte/RSS columns the perf gate watches.
//
//   (1) Table "substrate" — every registry dataset in plain vs compact
//       mode: adjacency bytes, bytes per directed edge, compression ratio,
//       estimate wall time, and a bit-equality check of the full farness
//       output between the modes (the `equal` column must read "yes" on
//       every row).
//   (2) Table "rmat_streamed" — a large R-MAT built by replaying the RNG
//       through both builder passes (no edge-list materialisation),
//       compressed in place, farness estimated in compact mode. This is
//       the row the CI memory-budget job runs under a hard `ulimit -v`:
//       completing at all within the budget is the pass criterion, and the
//       rss_mb / bytes_per_edge columns document where memory went.
//
// Extra knobs (bench_common's BRICS_BENCH_* still apply):
//   BRICS_BENCH_RMAT_SCALE  log2 node count for table 2, default 18
//   BRICS_BENCH_RMAT_EF     edge factor for table 2, default 16
//   BRICS_BENCH_RMAT_RATE   sampling rate for table 2, default 0.002 —
//                           the CI budget job trims this so wall clock
//                           stays in smoke-test territory; memory use is
//                           rate-independent
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.hpp"
#include "obs/report.hpp"

using namespace brics;
using namespace brics::bench;

namespace {

std::uint32_t env_u32(const char* name, std::uint32_t def) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v >= 1 && v <= 30) return static_cast<std::uint32_t>(v);
  }
  return def;
}

double env_rate(const char* name, double def) {
  if (const char* s = std::getenv(name)) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return def;
}

double mb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

double bytes_per_edge(const CsrGraph& g) {
  return g.num_directed_edges() == 0
             ? 0.0
             : static_cast<double>(g.adjacency_bytes()) /
                   static_cast<double>(g.num_directed_edges());
}

}  // namespace

int main() {
  BenchArtifact artifact("mem_substrate");
  std::printf("Memory substrate — plain vs compact adjacency, scale=%.2f\n\n",
              bench_scale());

  const std::vector<int> w = {12, 8, 9, 9, 14, 7, 8, 8, 6};
  print_header({"graph", "mode", "adj_mb", "total_mb", "bytes_per_edge",
                "ratio", "t_est", "rss_mb", "equal"},
               w);
  for (const DatasetInfo& info : dataset_registry()) {
    CsrGraph g = build_dataset(info.name, bench_scale());
    const std::uint64_t plain_bytes = g.adjacency_bytes();
    const double plain_bpe = bytes_per_edge(g);
    const double plain_total = mb(g.memory().total());

    EstimateOptions opts = config_cumulative(0.3);
    Timer tp;
    EstimateResult plain_est = estimate_farness(g, opts);
    const double t_plain = tp.seconds();

    CsrGraph gc = g;
    gc.compress();
    EstimateOptions copts = opts;
    copts.storage = AdjacencyStorage::kCompact;
    Timer tc;
    EstimateResult compact_est = estimate_farness(gc, copts);
    const double t_compact = tc.seconds();

    const bool equal = plain_est.farness == compact_est.farness;
    const double ratio = static_cast<double>(gc.adjacency_bytes()) /
                         static_cast<double>(plain_bytes);
    const double rss = mb(peak_rss_bytes());
    print_row({info.name, "plain", fmt(mb(plain_bytes), 2),
               fmt(plain_total, 2), fmt(plain_bpe, 2), "1.00",
               fmt(t_plain, 3), fmt(rss, 1), equal ? "yes" : "NO"},
              w);
    print_row({info.name, "compact", fmt(mb(gc.adjacency_bytes()), 2),
               fmt(mb(gc.memory().total()), 2), fmt(bytes_per_edge(gc), 2),
               fmt(ratio, 2), fmt(t_compact, 3), fmt(rss, 1),
               equal ? "yes" : "NO"},
              w);
    if (!equal) {
      std::printf("FATAL: compact farness differs from plain on %s\n",
                  info.name.c_str());
      return 1;
    }
    if (ratio > 0.6) {
      std::printf("FATAL: compact/plain adjacency ratio %.2f > 0.60 on %s\n",
                  ratio, info.name.c_str());
      return 1;
    }
  }

  // ---- Streamed R-MAT: generator replay -> two-pass build -> compress. --
  const std::uint32_t scale = env_u32("BRICS_BENCH_RMAT_SCALE", 18);
  const std::uint32_t ef = env_u32("BRICS_BENCH_RMAT_EF", 16);
  std::printf("\nStreamed R-MAT, scale=%u edge_factor=%u\n\n", scale, ef);
  const std::vector<int> w2 = {7, 11, 9, 14, 8, 9, 8};
  print_header({"scale", "edges", "adj_mb", "bytes_per_edge", "t_build",
                "t_est", "rss_mb"},
               w2);
  Timer tb;
  CsrGraph big = make_connected(
      rmat_streamed(scale, ef, 0.57, 0.19, 0.19, 42,
                    AdjacencyStorage::kCompact));
  const double t_build = tb.seconds();
  EstimateOptions bopts =
      config_cumulative(env_rate("BRICS_BENCH_RMAT_RATE", 0.002));
  bopts.storage = AdjacencyStorage::kCompact;
  // A tiny rate of a big graph is plenty to exercise the full pipeline
  // without dominating the harness runtime; memory use does not depend on
  // the source count.
  Timer te;
  EstimateResult best = estimate_farness(big, bopts);
  const double t_est = te.seconds();
  (void)best;
  print_row({std::to_string(scale), std::to_string(big.num_edges()),
             fmt(mb(big.adjacency_bytes()), 2), fmt(bytes_per_edge(big), 2),
             fmt(t_build, 3), fmt(t_est, 3), fmt(mb(peak_rss_bytes()), 1)},
            w2);

  std::printf(
      "\nExpected shape: compact adjacency <= 0.6x plain bytes on every\n"
      "dataset, identical farness bits, and the streamed R-MAT completing\n"
      "within the CI job's address-space budget.\n");
  return 0;
}
