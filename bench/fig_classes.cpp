// Regenerates the paper's Figs. 6-9: relative speed-up and quality of the
// optimisation configurations — C+R, I+C+R, Cumulative (I+C+R+BiCC) — over
// the Random-sampling baseline, per graph class:
//   Fig. 6 web, Fig. 7 social, Fig. 8 community, Fig. 9 road.
// All configurations run at a 40 % sampling rate like §IV-C2.
//
// One binary per figure: invoked with the class name (the build generates
// fig6_web, fig7_social, fig8_community, fig9_road wrappers via argv[0]).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.hpp"

using namespace brics;
using namespace brics::bench;

namespace {

struct Config {
  const char* name;
  EstimateOptions (*make)(double, std::uint64_t);
};

int run_class(GraphClass cls, const char* fig) {
  const double rate = 0.40;
  std::printf(
      "%s — relative speed-up of optimisations on %s graphs "
      "(40%% sampling, scale=%.2f)\n\n",
      fig, to_string(cls).c_str(), bench_scale());

  const Config configs[] = {
      {"C+R", config_cr},
      {"I+C+R", config_icr},
      {"Cumulative", config_cumulative},
  };
  const std::vector<int> w = {12, 11, 9, 9, 9, 9};
  print_header({"graph", "config", "time_s", "speedup", "quality",
                "reduced%"},
               w);
  for (const DatasetInfo& info : dataset_registry()) {
    if (info.cls != cls) continue;
    CsrGraph g = build_dataset(info.name, bench_scale());
    std::vector<FarnessSum> actual = exact_farness(g);
    RunResult base = run_estimator(g, actual, config_random(rate), true);
    print_row({info.name, "Random(S)", fmt(base.seconds, 3), "1.00x",
               fmt(base.q.quality, 3), "0.0"},
              w);
    for (const Config& c : configs) {
      RunResult r = run_estimator(g, actual, c.make(rate, 1), false);
      const double reduced_pct =
          100.0 *
          static_cast<double>(g.num_nodes() -
                              r.last.reduce_stats.reduced_nodes) /
          static_cast<double>(g.num_nodes());
      print_row({"", c.name, fmt(r.seconds, 3),
                 fmt(base.seconds / r.seconds, 2) + "x",
                 fmt(r.q.quality, 3), fmt(reduced_pct, 1)},
                w);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "";
  if (which.empty()) {
    // Infer from the binary name (fig6_web etc.).
    which = argv[0];
  }
  if (which.find("web") != std::string::npos) {
    BenchArtifact artifact("fig6_web");
    return run_class(GraphClass::kWeb, "Fig. 6");
  }
  if (which.find("social") != std::string::npos) {
    BenchArtifact artifact("fig7_social");
    return run_class(GraphClass::kSocial, "Fig. 7");
  }
  if (which.find("community") != std::string::npos) {
    BenchArtifact artifact("fig8_community");
    return run_class(GraphClass::kCommunity, "Fig. 8");
  }
  if (which.find("road") != std::string::npos) {
    BenchArtifact artifact("fig9_road");
    return run_class(GraphClass::kRoad, "Fig. 9");
  }
  std::fprintf(stderr,
               "usage: %s [web|social|community|road]\n", argv[0]);
  return 2;
}
