// Regenerates the paper's Table I on the synthetic dataset registry:
// per graph — |V|, |E|, identical nodes & identical chain nodes, redundant
// 3/4-degree nodes, chain nodes, and biconnected-component statistics
// (count, largest, average size).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace brics;
using namespace brics::bench;

int main() {
  BenchArtifact artifact("table1_datasets");
  const double scale = bench_scale();
  std::printf("Table I — dataset characteristics (scale=%.2f)\n\n",
              scale);
  const std::vector<int> w = {12, 9, 9, 9, 9, 9, 9, 8, 9, 7, 7};
  print_header({"graph", "|V|", "|E|", "ident", "id.ch", "redund",
                "chain", "BiCC#", "Max", "Avg", "class"},
               w);

  for (const DatasetInfo& info : dataset_registry()) {
    CsrGraph g = build_dataset(info.name, scale);

    // Structural counts come from the reduction passes themselves, exactly
    // as the paper's preprocessing reports them.
    ReducedGraph rg = reduce(g, ReduceOptions{});
    BccResult bcc = biconnected_components(g);  // BCC stats of the input

    print_row({info.name, std::to_string(g.num_nodes()),
               std::to_string(g.num_edges()),
               std::to_string(rg.stats.identical.removed),
               std::to_string(rg.stats.chains.identical_chain_nodes),
               std::to_string(rg.stats.redundant.removed),
               std::to_string(rg.stats.chains.removed),
               std::to_string(bcc.num_blocks()),
               std::to_string(bcc.max_block_size()),
               fmt(bcc.avg_block_size(), 1), to_string(info.cls)},
              w);
  }
  std::printf(
      "\nident  = identical nodes removed (open + closed twins)\n"
      "id.ch  = members of equal-length parallel chains (Type 4)\n"
      "redund = redundant 3/4-degree nodes removed\n"
      "chain  = chain nodes removed (Types 1-4)\n"
      "BiCC   = biconnected components of the *input* graph\n");
  return 0;
}
