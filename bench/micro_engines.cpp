// Engine micro-benchmarks (google-benchmark): traversal kernels, the three
// reduction passes, BCC decomposition, and the end-to-end estimators on a
// fixed mid-size graph. Not a paper figure — regression tracking for the
// substrate the figures are built on.
#include <benchmark/benchmark.h>

#include "brics/brics.hpp"

namespace {

using namespace brics;

const CsrGraph& social_graph() {
  static const CsrGraph g = build_dataset("soc-pref-a", 0.2);
  return g;
}

const CsrGraph& road_graph() {
  static const CsrGraph g = build_dataset("road-grid-a", 0.2);
  return g;
}

const CsrGraph& weighted_reduced_road() {
  static const CsrGraph g = [] {
    ReducedGraph rg = reduce(road_graph(), ReduceOptions{});
    return rg.graph;
  }();
  return g;
}

void BM_BfsSocial(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  TraversalWorkspace ws;
  NodeId s = 0;
  for (auto _ : state) {
    bfs(g, s, ws);
    benchmark::DoNotOptimize(ws.dist().data());
    s = (s + 97) % g.num_nodes();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsSocial);

void BM_BfsRoad(benchmark::State& state) {
  const CsrGraph& g = road_graph();
  TraversalWorkspace ws;
  NodeId s = 0;
  for (auto _ : state) {
    bfs(g, s, ws);
    benchmark::DoNotOptimize(ws.dist().data());
    s = (s + 97) % g.num_nodes();
  }
}
BENCHMARK(BM_BfsRoad);

void BM_DialCompressedRoad(benchmark::State& state) {
  const CsrGraph& g = weighted_reduced_road();
  TraversalWorkspace ws;
  // Only present (non-isolated) nodes are meaningful sources.
  NodeId s = 0;
  while (g.degree(s) == 0) ++s;
  for (auto _ : state) {
    dial_sssp(g, s, ws);
    benchmark::DoNotOptimize(ws.dist().data());
    do {
      s = (s + 101) % g.num_nodes();
    } while (g.degree(s) == 0);
  }
}
BENCHMARK(BM_DialCompressedRoad);

void BM_ReduceIdentical(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  for (auto _ : state) {
    ReduceOptions o;
    o.chains = o.redundant = false;
    ReducedGraph rg = reduce(g, o);
    benchmark::DoNotOptimize(rg.num_present);
  }
}
BENCHMARK(BM_ReduceIdentical);

void BM_ReduceChains(benchmark::State& state) {
  const CsrGraph& g = road_graph();
  for (auto _ : state) {
    ReduceOptions o;
    o.identical = o.redundant = false;
    ReducedGraph rg = reduce(g, o);
    benchmark::DoNotOptimize(rg.num_present);
  }
}
BENCHMARK(BM_ReduceChains);

void BM_ReduceFull(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  for (auto _ : state) {
    ReducedGraph rg = reduce(g, ReduceOptions{});
    benchmark::DoNotOptimize(rg.num_present);
  }
}
BENCHMARK(BM_ReduceFull);

void BM_BiconnectedComponents(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  for (auto _ : state) {
    BccResult r = biconnected_components(g);
    benchmark::DoNotOptimize(r.num_blocks());
  }
}
BENCHMARK(BM_BiconnectedComponents);

void BM_EstimateRandom20(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EstimateOptions o;
    o.sample_rate = 0.2;
    o.seed = seed++;
    EstimateResult est = estimate_random_sampling(g, o);
    benchmark::DoNotOptimize(est.farness.data());
  }
}
BENCHMARK(BM_EstimateRandom20);

void BM_EstimateBrics20(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EstimateOptions o;
    o.sample_rate = 0.2;
    o.seed = seed++;
    EstimateResult est = estimate_brics(g, o);
    benchmark::DoNotOptimize(est.farness.data());
  }
}
BENCHMARK(BM_EstimateBrics20);

// Many-small-blocks class: a random tree of small cliques glued at cut
// vertices, so the BCC decomposition yields hundreds of tiny blocks. This
// is the shape the batched kernel exists for — per-source OpenMP tasks
// spend more on scheduling and workspace churn than on the microsecond
// traversals themselves.
const ReducedGraph& clique_tree_reduced() {
  static const ReducedGraph rg = [] {
    Rng rng(5);
    constexpr NodeId kCliques = 300;
    std::vector<NodeId> size(kCliques), start(kCliques);
    NodeId n = 0;
    for (NodeId c = 0; c < kCliques; ++c) {
      size[c] = 4 + static_cast<NodeId>(rng.below(9));  // 4..12
      start[c] = n;
      n += size[c];
    }
    GraphBuilder b(n);
    for (NodeId c = 0; c < kCliques; ++c)
      for (NodeId i = 0; i < size[c]; ++i)
        for (NodeId j = i + 1; j < size[c]; ++j)
          b.add_edge(start[c] + i, start[c] + j);
    // Attach each clique to a random earlier one: the bridge endpoint is a
    // cut vertex, every clique a separate block.
    for (NodeId c = 1; c < kCliques; ++c) {
      const NodeId p = static_cast<NodeId>(rng.below(c));
      b.add_edge(start[p] + static_cast<NodeId>(rng.below(size[p])),
                 start[c]);
    }
    // Keep the cliques intact (twin removal would shred them): the point
    // is the per-block traverse schedule, not the reductions.
    ReduceOptions ro;
    ro.identical = ro.chains = ro.redundant = false;
    return reduce(b.build(), ro);
  }();
  return rg;
}

// The stage decomposition makes the Traverse stage benchable in isolation:
// Decompose + Plan run once, the timed loop is pure traversal schedule.
// Identical sample plans, identical distance math — the only difference is
// one batched task per block vs one OpenMP task per source.
void BM_TraverseManySmallBlocks(benchmark::State& state) {
  const ReducedGraph& rg = clique_tree_reduced();
  const KernelChoice kernel = static_cast<KernelChoice>(state.range(0));
  EstimateOptions o;
  o.sample_rate = 0.5;
  o.seed = 1;
  o.kernel = kernel;
  CancelToken token;
  PipelineContext ctx(rg.graph, o, token);
  const Decomposition dec = DecomposeStage{}.run(ctx, rg);
  const SamplePlan plan = PlanStage{}.run(ctx, dec, rg.num_present);
  for (auto _ : state) {
    TraversalResults trav = TraverseStage{}.run(ctx, rg, dec, plan);
    benchmark::DoNotOptimize(trav.completed_total);
  }
  state.SetLabel(to_string(kernel));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan.total_sources()));
}
BENCHMARK(BM_TraverseManySmallBlocks)
    ->Arg(static_cast<int>(KernelChoice::kBatched))
    ->Arg(static_cast<int>(KernelChoice::kBfs));

void BM_LedgerResolve(benchmark::State& state) {
  const CsrGraph& g = road_graph();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  NodeId s = 0;
  while (!rg.present[s]) ++s;
  std::vector<Dist> base = sssp_distances(rg.graph, s);
  std::vector<Dist> dist;
  for (auto _ : state) {
    dist = base;
    rg.ledger.resolve(dist);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_LedgerResolve);

}  // namespace

BENCHMARK_MAIN();
