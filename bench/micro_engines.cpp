// Engine micro-benchmarks (google-benchmark): traversal kernels, the three
// reduction passes, BCC decomposition, and the end-to-end estimators on a
// fixed mid-size graph. Not a paper figure — regression tracking for the
// substrate the figures are built on.
#include <benchmark/benchmark.h>

#include "brics/brics.hpp"

namespace {

using namespace brics;

const CsrGraph& social_graph() {
  static const CsrGraph g = build_dataset("soc-pref-a", 0.2);
  return g;
}

const CsrGraph& road_graph() {
  static const CsrGraph g = build_dataset("road-grid-a", 0.2);
  return g;
}

const CsrGraph& weighted_reduced_road() {
  static const CsrGraph g = [] {
    ReducedGraph rg = reduce(road_graph(), ReduceOptions{});
    return rg.graph;
  }();
  return g;
}

void BM_BfsSocial(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  TraversalWorkspace ws;
  NodeId s = 0;
  for (auto _ : state) {
    bfs(g, s, ws);
    benchmark::DoNotOptimize(ws.dist().data());
    s = (s + 97) % g.num_nodes();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsSocial);

void BM_BfsRoad(benchmark::State& state) {
  const CsrGraph& g = road_graph();
  TraversalWorkspace ws;
  NodeId s = 0;
  for (auto _ : state) {
    bfs(g, s, ws);
    benchmark::DoNotOptimize(ws.dist().data());
    s = (s + 97) % g.num_nodes();
  }
}
BENCHMARK(BM_BfsRoad);

void BM_DialCompressedRoad(benchmark::State& state) {
  const CsrGraph& g = weighted_reduced_road();
  TraversalWorkspace ws;
  // Only present (non-isolated) nodes are meaningful sources.
  NodeId s = 0;
  while (g.degree(s) == 0) ++s;
  for (auto _ : state) {
    dial_sssp(g, s, ws);
    benchmark::DoNotOptimize(ws.dist().data());
    do {
      s = (s + 101) % g.num_nodes();
    } while (g.degree(s) == 0);
  }
}
BENCHMARK(BM_DialCompressedRoad);

void BM_ReduceIdentical(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  for (auto _ : state) {
    ReduceOptions o;
    o.chains = o.redundant = false;
    ReducedGraph rg = reduce(g, o);
    benchmark::DoNotOptimize(rg.num_present);
  }
}
BENCHMARK(BM_ReduceIdentical);

void BM_ReduceChains(benchmark::State& state) {
  const CsrGraph& g = road_graph();
  for (auto _ : state) {
    ReduceOptions o;
    o.identical = o.redundant = false;
    ReducedGraph rg = reduce(g, o);
    benchmark::DoNotOptimize(rg.num_present);
  }
}
BENCHMARK(BM_ReduceChains);

void BM_ReduceFull(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  for (auto _ : state) {
    ReducedGraph rg = reduce(g, ReduceOptions{});
    benchmark::DoNotOptimize(rg.num_present);
  }
}
BENCHMARK(BM_ReduceFull);

void BM_BiconnectedComponents(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  for (auto _ : state) {
    BccResult r = biconnected_components(g);
    benchmark::DoNotOptimize(r.num_blocks());
  }
}
BENCHMARK(BM_BiconnectedComponents);

void BM_EstimateRandom20(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EstimateOptions o;
    o.sample_rate = 0.2;
    o.seed = seed++;
    EstimateResult est = estimate_random_sampling(g, o);
    benchmark::DoNotOptimize(est.farness.data());
  }
}
BENCHMARK(BM_EstimateRandom20);

void BM_EstimateBrics20(benchmark::State& state) {
  const CsrGraph& g = social_graph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EstimateOptions o;
    o.sample_rate = 0.2;
    o.seed = seed++;
    EstimateResult est = estimate_brics(g, o);
    benchmark::DoNotOptimize(est.farness.data());
  }
}
BENCHMARK(BM_EstimateBrics20);

void BM_LedgerResolve(benchmark::State& state) {
  const CsrGraph& g = road_graph();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  NodeId s = 0;
  while (!rg.present[s]) ++s;
  std::vector<Dist> base = sssp_distances(rg.graph, s);
  std::vector<Dist> dist;
  for (auto _ : state) {
    dist = base;
    rg.ledger.resolve(dist);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_LedgerResolve);

}  // namespace

BENCHMARK_MAIN();
