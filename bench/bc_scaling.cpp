// Betweenness scaling sweep (ISSUE 8): the staged pipeline estimator
// (measures/betweenness.hpp) against the flat sampled Brandes baseline
// across sample rates, plus a thread-scaling row at a fixed rate. Both
// estimators answer the same question, so the reproduction target is the
// same shape as the farness figures: where the decomposition pays for
// itself and how quality degrades with the sampling rate.
//
// Quality is reported as the mean relative error over nodes with nonzero
// exact betweenness plus top-10 set overlap — the AR-based QualityReport
// does not apply because exact BC is legitimately zero on leaves.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "bench/bench_common.hpp"
#include "util/parallel.hpp"

using namespace brics;
using namespace brics::bench;

namespace {

struct BcQuality {
  double mean_rel_err = 0.0;  ///< mean |est - exact| / exact, exact > 0
  double top10 = 1.0;         ///< |top10(est) ∩ top10(exact)| / 10
};

BcQuality bc_quality(const std::vector<double>& est,
                     const std::vector<double>& exact) {
  BcQuality q;
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    if (exact[v] <= 0.0) continue;
    sum += std::abs(est[v] - exact[v]) / exact[v];
    ++counted;
  }
  q.mean_rel_err = counted == 0 ? 0.0 : sum / static_cast<double>(counted);

  const std::size_t k = std::min<std::size_t>(10, exact.size());
  auto topk = [&](const std::vector<double>& vals) {
    std::vector<NodeId> ids(vals.size());
    std::iota(ids.begin(), ids.end(), 0u);
    std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k),
                      ids.end(), [&](NodeId a, NodeId b) {
                        if (vals[a] != vals[b]) return vals[a] > vals[b];
                        return a < b;
                      });
    ids.resize(k);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  const std::vector<NodeId> te = topk(est);
  const std::vector<NodeId> tx = topk(exact);
  std::vector<NodeId> both;
  std::set_intersection(te.begin(), te.end(), tx.begin(), tx.end(),
                        std::back_inserter(both));
  q.top10 = k == 0 ? 1.0
                   : static_cast<double>(both.size()) / static_cast<double>(k);
  return q;
}

/// Median wall-clock over bench_repeats() runs; seeds vary per repeat the
/// same way run_estimator does so repeats are not byte-identical replays.
struct BcRun {
  double seconds = 0.0;
  EstimateResult last;
};

BcRun run_bc(const CsrGraph& g, const EstimateOptions& opts) {
  BcRun out;
  std::vector<double> times;
  const int reps = bench_repeats();
  for (int r = 0; r < reps; ++r) {
    MetricsRegistry::global().reset();
    EstimateOptions o = opts;
    o.seed = opts.seed + static_cast<std::uint64_t>(r) * 977;
    Timer t;
    EstimateResult est = estimate_centrality(g, o);
    times.push_back(t.seconds());
    if (r == reps - 1) out.last = std::move(est);
  }
  std::sort(times.begin(), times.end());
  out.seconds = times[times.size() / 2];
  return out;
}

EstimateOptions bc_opts(double rate, bool use_bcc) {
  EstimateOptions o;
  o.measure = Measure::kBetweenness;
  o.sample_rate = rate;
  o.seed = 1;
  o.use_bcc = use_bcc;
  return o;
}

}  // namespace

int main() {
  BenchArtifact artifact("bc_scaling");
  std::printf("Betweenness scaling (scale=%.2f, repeats=%d)\n\n",
              bench_scale(), bench_repeats());

  // --- rate sweep: flat sampled Brandes vs the staged pipeline ----------
  const std::vector<int> w = {12, 6, 9, 9, 9, 9, 7, 9, 7};
  print_header({"graph", "rate", "t_flat", "t_brics", "speedup", "err_flat",
                "top_f", "err_brics", "top_b"},
               w);
  for (const char* name : {"web-copy-a", "road-rural"}) {
    CsrGraph g = make_connected(build_dataset(name, bench_scale()));
    const std::vector<double> exact = exact_betweenness(g);
    bool first = true;
    for (double rate : {0.1, 0.3, 1.0}) {
      const BcRun flat = run_bc(g, bc_opts(rate, /*use_bcc=*/false));
      const BcRun brics = run_bc(g, bc_opts(rate, /*use_bcc=*/true));
      const BcQuality qf = bc_quality(flat.last.farness, exact);
      const BcQuality qb = bc_quality(brics.last.farness, exact);
      print_row({first ? name : "", fmt(rate, 1), fmt(flat.seconds, 3),
                 fmt(brics.seconds, 3),
                 fmt(flat.seconds / brics.seconds, 2) + "x",
                 fmt(qf.mean_rel_err, 4), fmt(qf.top10, 2),
                 fmt(qb.mean_rel_err, 4), fmt(qb.top10, 2)},
                w);
      first = false;
    }
  }

  // --- thread scaling at a fixed rate -----------------------------------
  const int hw = max_threads();
  std::printf("\n");
  const std::vector<int> tw = {12, 8, 9, 9, 9};
  print_header({"graph", "threads", "t_flat", "t_brics", "speedup"}, tw);
  {
    CsrGraph g = make_connected(build_dataset("soc-rmat", bench_scale()));
    bool first = true;
    for (int t = 1; t <= hw; t *= 2) {
      set_threads(t);
      const BcRun flat = run_bc(g, bc_opts(0.3, /*use_bcc=*/false));
      const BcRun brics = run_bc(g, bc_opts(0.3, /*use_bcc=*/true));
      print_row({first ? "soc-rmat" : "", std::to_string(t),
                 fmt(flat.seconds, 3), fmt(brics.seconds, 3),
                 fmt(flat.seconds / brics.seconds, 2) + "x"},
                tw);
      first = false;
    }
    set_threads(hw);
  }
  return 0;
}
