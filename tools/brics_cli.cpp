// brics — command-line front end to the library.
//
//   brics stats    <edge_list|@dataset>                 structural summary
//   brics estimate <edge_list|@dataset> [--rate R] [--seed S] [--config C]
//                  [--out FILE]                         farness estimates
//   brics exact    <edge_list|@dataset> [--out FILE]    exact farness
//   brics topk     <edge_list|@dataset> [--k K]         top-k closeness
//   brics harmonic <edge_list|@dataset> [--rate R]      harmonic centrality
//   brics distance <edge_list|@dataset> --s A --t B     point-to-point d(s,t)
//   brics improve  <edge_list|@dataset> --node V [--k K] add edges to boost V
//   brics generate <dataset> [--scale X] [--out FILE]   emit a registry graph
//   brics datasets                                      list registry names
//
// Graphs are whitespace edge lists (SNAP style); `@name` pulls a synthetic
// dataset from the registry instead (with --scale, default 0.2).
// --config is one of: random, cr, icr, cumulative (default cumulative).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "analysis/analysis.hpp"
#include "brics/brics.hpp"
#include "extensions/improve.hpp"
#include "extensions/topk.hpp"

namespace {

using namespace brics;

struct Args {
  std::string command;
  std::string input;
  std::map<std::string, std::string> flags;

  double get_double(const std::string& key, double def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::atof(it->second.c_str());
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const {
    auto it = flags.find(key);
    return it == flags.end()
               ? def
               : static_cast<std::uint64_t>(std::atoll(it->second.c_str()));
  }
  std::string get(const std::string& key, const std::string& def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
};

int usage() {
  std::fprintf(
      stderr,
      "usage: brics <stats|estimate|exact|topk|harmonic|distance|improve|"
      "generate|datasets> "
      "<edge_list|@dataset> [--rate R] [--seed S] [--config C] [--k K] "
      "[--scale X] [--out FILE]\n");
  return 2;
}

CsrGraph load(const Args& a) {
  const double scale = a.get_double("scale", 0.2);
  if (!a.input.empty() && a.input[0] == '@')
    return build_dataset(a.input.substr(1), scale);
  return read_edge_list_file(a.input);
}

EstimateOptions config_from(const Args& a) {
  EstimateOptions o;
  o.sample_rate = a.get_double("rate", 0.2);
  o.seed = a.get_u64("seed", 1);
  const std::string c = a.get("config", "cumulative");
  if (c == "cr") {
    o.reduce.identical = false;
    o.use_bcc = false;
  } else if (c == "icr") {
    o.use_bcc = false;
  } else if (c == "cumulative") {
    // defaults
  } else if (c != "random") {
    BRICS_CHECK_MSG(false, "unknown --config '" << c << "'");
  }
  return o;
}

void write_values(const Args& a, std::span<const double> values) {
  const std::string path = a.get("out", "");
  std::ofstream file;
  std::FILE* console = stdout;
  if (!path.empty()) {
    file.open(path);
    BRICS_CHECK_MSG(file.good(), "cannot open '" << path << "'");
    for (std::size_t v = 0; v < values.size(); ++v)
      file << v << ' ' << values[v] << '\n';
    std::printf("wrote %zu values to %s\n", values.size(), path.c_str());
    return;
  }
  for (std::size_t v = 0; v < std::min<std::size_t>(values.size(), 20); ++v)
    std::fprintf(console, "%zu %.2f\n", v, values[v]);
  if (values.size() > 20)
    std::printf("... (%zu total; use --out FILE for all)\n", values.size());
}

int cmd_stats(const Args& a) {
  CsrGraph g = load(a);
  std::printf("%s", to_string(summarize_graph(g)).c_str());
  return 0;
}

int cmd_estimate(const Args& a) {
  CsrGraph g = load(a);
  EstimateOptions o = config_from(a);
  Timer t;
  EstimateResult est = a.get("config", "cumulative") == "random"
                           ? estimate_random_sampling(g, o)
                           : estimate_farness(g, o);
  std::printf("# estimated farness (%.3f s, %u sources, %u blocks)\n",
              t.seconds(), est.samples, est.num_blocks);
  write_values(a, est.farness);
  return 0;
}

int cmd_exact(const Args& a) {
  CsrGraph g = load(a);
  Timer t;
  std::vector<FarnessSum> f = exact_farness(g);
  std::vector<double> d(f.begin(), f.end());
  std::printf("# exact farness (%.3f s)\n", t.seconds());
  write_values(a, d);
  return 0;
}

int cmd_topk(const Args& a) {
  CsrGraph g = load(a);
  const NodeId k = static_cast<NodeId>(a.get_u64("k", 10));
  Timer t;
  TopKResult r = top_k_closeness(g, std::min<NodeId>(k, g.num_nodes()));
  std::printf("# top-%u closeness (%.3f s, %u traversals)\n", k, t.seconds(),
              r.traversals);
  for (std::size_t i = 0; i < r.nodes.size(); ++i)
    std::printf("%zu node %u farness %llu\n", i + 1, r.nodes[i],
                static_cast<unsigned long long>(r.farness[i]));
  return 0;
}

int cmd_generate(const Args& a) {
  BRICS_CHECK_MSG(!a.input.empty(), "generate needs a dataset name");
  std::string name =
      a.input[0] == '@' ? a.input.substr(1) : a.input;
  CsrGraph g = build_dataset(name, a.get_double("scale", 0.2));
  const std::string path = a.get("out", name + ".txt");
  write_edge_list_file(g, path);
  std::printf("wrote %u nodes / %llu edges to %s\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), path.c_str());
  return 0;
}


int cmd_harmonic(const Args& a) {
  CsrGraph g = load(a);
  const double rate = a.get_double("rate", 0.2);
  Timer t;
  std::vector<double> h = rate >= 1.0
                              ? exact_harmonic(g)
                              : estimate_harmonic(g, rate,
                                                  a.get_u64("seed", 1));
  std::printf("# harmonic centrality (%.3f s, rate %.2f)\n", t.seconds(),
              rate);
  write_values(a, h);
  return 0;
}

int cmd_distance(const Args& a) {
  CsrGraph g = load(a);
  const NodeId s = static_cast<NodeId>(a.get_u64("s", 0));
  const NodeId t = static_cast<NodeId>(a.get_u64("t", 0));
  Timer timer;
  Dist d = point_to_point(g, s, t);
  if (d == kInfDist)
    std::printf("d(%u, %u) = unreachable (%.4f s)\n", s, t,
                timer.seconds());
  else
    std::printf("d(%u, %u) = %u (%.4f s)\n", s, t, d, timer.seconds());
  return 0;
}

int cmd_improve(const Args& a) {
  CsrGraph g = load(a);
  ImproveOptions o;
  o.budget = static_cast<NodeId>(a.get_u64("k", 3));
  o.candidate_pool = static_cast<NodeId>(a.get_u64("pool", 0));
  o.seed = a.get_u64("seed", 1);
  const NodeId v = static_cast<NodeId>(a.get_u64("node", 0));
  Timer t;
  ImproveResult r = improve_closeness(g, v, o);
  std::printf("# improve node %u (%.3f s): farness %llu", v, t.seconds(),
              static_cast<unsigned long long>(r.initial_farness));
  for (std::size_t i = 0; i < r.added.size(); ++i)
    std::printf(" -> %llu (+edge to %u)",
                static_cast<unsigned long long>(r.farness[i]), r.added[i]);
  std::printf("\n");
  return 0;
}

int cmd_datasets() {
  for (const DatasetInfo& d : dataset_registry())
    std::printf("%-14s %s\n", d.name.c_str(), to_string(d.cls).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) return usage();
      a.flags[arg.substr(2)] = argv[++i];
    } else if (a.input.empty()) {
      a.input = arg;
    } else {
      return usage();
    }
  }
  try {
    if (a.command == "stats") return cmd_stats(a);
    if (a.command == "estimate") return cmd_estimate(a);
    if (a.command == "exact") return cmd_exact(a);
    if (a.command == "topk") return cmd_topk(a);
    if (a.command == "harmonic") return cmd_harmonic(a);
    if (a.command == "distance") return cmd_distance(a);
    if (a.command == "improve") return cmd_improve(a);
    if (a.command == "generate") return cmd_generate(a);
    if (a.command == "datasets") return cmd_datasets();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
