// brics — command-line front end to the library.
//
//   brics stats    <edge_list|@dataset>                 structural summary
//   brics estimate <edge_list|@dataset> [--rate R] [--seed S] [--config C]
//                  [--measure M] [--timeout-ms T] [--max-sources K]
//                  [--threads N] [--checkpoint-dir D] [--resume]
//                  [--checkpoint-every N] [--retries K]
//                  [--compact] [--reorder bfs|degree]
//                  [--out FILE] [--metrics-out FILE] [--trace-out FILE]
//                                                      centrality estimates
//   brics exact    <edge_list|@dataset> [--measure M] [--out FILE]
//                                                      exact centrality
//   brics topk     <edge_list|@dataset> [--k K]         top-k closeness
//   brics harmonic <edge_list|@dataset> [--rate R]      harmonic centrality
//   brics distance <edge_list|@dataset> --s A --t B     point-to-point d(s,t)
//   brics improve  <edge_list|@dataset> --node V [--k K] add edges to boost V
//   brics generate <dataset> [--scale X] [--out FILE]   emit a registry graph
//   brics datasets                                      list registry names
//
// Graphs are whitespace edge lists (SNAP style); `@name` pulls a synthetic
// dataset from the registry instead (with --scale, default 0.2).
// --config is one of: random, cr, icr, cumulative (default cumulative).
// --measure is farness (default) or betweenness; betweenness runs the same
// staged pipeline with the path-count-preserving reduction subset
// (docs/ARCHITECTURE.md), and `--config random` maps to flat Brandes–Pich
// sampling on the raw graph.
// --timeout-ms / --max-sources set a RunBudget: when it cuts the run, the
// estimate degrades instead of aborting (docs/ROBUSTNESS.md).
// --threads N overrides the OpenMP thread count for the run (clamped to
// thread_ceiling()), so scaling sweeps don't need OMP_NUM_THREADS; the
// effective count lands in the run report's parallel section.
// --checkpoint-dir D persists pipeline artifacts into D as each stage
// completes (--checkpoint-every N additionally snapshots mid-Traverse every
// N tasks); after a crash or kill, the same command plus --resume continues
// from the last valid segment instead of recomputing (docs/ROBUSTNESS.md).
// --retries K bounds per-task retry of faulted traversals before
// quarantine. The BRICS_FAILPOINTS environment variable arms fault
// injection sites for testing (exec/failpoint.hpp).
// --compact stores every working graph (input, reduced, block subgraphs)
// as delta+varint compressed rows — ~40-60 % of plain CSR adjacency bytes —
// with bit-identical results; the run report's memory section (schema v5)
// shows where the bytes went. --reorder bfs|degree relabels nodes for
// locality before the run (the win compounds with --compact: smaller gaps,
// shorter varints); outputs are mapped back, so reported node ids are
// unchanged.
// --metrics-out writes a schema-versioned JSON run report (phase timings,
// reduction counts, traversal counters, exec state, recovery accounting);
// --trace-out writes a Chrome trace_event file viewable in ui.perfetto.dev
// (docs/OBSERVABILITY.md). Both are no-cost when omitted.
//
// Exit codes: 0 success, 2 usage error, 3 bad input, 4 estimate degraded
// by budget, 5 internal error, 6 output stream failed (closed pipe, full
// disk). SIGPIPE is ignored so `brics ... | head` ends with code 6, not
// signal death.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "analysis/analysis.hpp"
#include "brics/brics.hpp"
#include "exec/errors.hpp"
#include "extensions/improve.hpp"
#include "extensions/topk.hpp"
#include "obs/version.hpp"

namespace {

using namespace brics;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitBadInput = 3;
constexpr int kExitDegraded = 4;
constexpr int kExitInternal = 5;
constexpr int kExitIo = 6;

/// A malformed command line (unknown flag value, unparsable number);
/// reported as usage, exit code 2.
struct UsageError {
  std::string what;
};

struct Args {
  std::string command;
  std::string input;
  std::map<std::string, std::string> flags;

  double get_double(const std::string& key, double def) const {
    auto it = flags.find(key);
    if (it == flags.end()) return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
      throw UsageError{"--" + key + " expects a number, got '" + it->second +
                       "'"};
    return v;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const {
    auto it = flags.find(key);
    if (it == flags.end()) return def;
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' ||
        it->second.find('-') != std::string::npos)
      throw UsageError{"--" + key + " expects a non-negative integer, got '" +
                       it->second + "'"};
    return static_cast<std::uint64_t>(v);
  }
  std::string get(const std::string& key, const std::string& def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
};

int usage() {
  std::fprintf(
      stderr,
      "usage: brics <stats|estimate|exact|topk|harmonic|distance|improve|"
      "generate|datasets|version> "
      "<edge_list|@dataset> [--rate R] [--seed S] [--config C] [--k K] "
      "[--scale X] [--timeout-ms T] [--max-sources K] [--threads N] "
      "[--measure farness|betweenness] [--kernel auto|bfs|dial|batched] "
      "[--checkpoint-dir D] [--resume] [--checkpoint-every N] "
      "[--retries K] [--compact] [--reorder bfs|degree] [--out FILE] "
      "[--metrics-out FILE] [--trace-out FILE]\n"
      "exit codes: 0 ok, 2 usage, 3 bad input, 4 degraded by budget, "
      "5 internal error, 6 output stream failed\n");
  return kExitUsage;
}

CsrGraph load(const Args& a) {
  const double scale = a.get_double("scale", 0.2);
  const AdjacencyStorage storage = a.flags.count("compact") > 0
                                       ? AdjacencyStorage::kCompact
                                       : AdjacencyStorage::kPlain;
  if (!a.input.empty() && a.input[0] == '@') {
    try {
      CsrGraph g = build_dataset(a.input.substr(1), scale);
      if (storage == AdjacencyStorage::kCompact) g.compress();
      return g;
    } catch (const CheckFailure& e) {
      // Unknown dataset names / bad scales are caller data, not bugs.
      throw InputError(e.what());
    }
  }
  return read_edge_list_file(a.input, ConnectPolicy::kKeepAsIs, storage);
}

/// Apply --reorder (if given): relabel the graph for locality and return
/// the permutation so per-node outputs can be pulled back to original ids.
/// Works in either storage mode and preserves it.
std::optional<Permutation> maybe_reorder(const Args& a, CsrGraph& g) {
  const std::string r = a.get("reorder", "");
  if (r.empty()) return std::nullopt;
  Permutation p;
  if (r == "bfs") {
    p = bfs_order(g);
  } else if (r == "degree") {
    p = degree_order(g);
  } else {
    throw UsageError{"unknown --reorder '" + r + "' (want bfs|degree)"};
  }
  g = apply_permutation(g, p);
  return p;
}

EstimateOptions config_from(const Args& a) {
  EstimateOptions o;
  o.sample_rate = a.get_double("rate", 0.2);
  if (o.sample_rate <= 0.0 || o.sample_rate > 1.0)
    throw UsageError{"--rate must be in (0, 1]"};
  o.seed = a.get_u64("seed", 1);
  o.budget.timeout_ms =
      static_cast<std::int64_t>(a.get_u64("timeout-ms", 0));
  o.budget.max_sources =
      static_cast<std::uint32_t>(a.get_u64("max-sources", 0));
  const std::string c = a.get("config", "cumulative");
  if (c == "cr") {
    o.reduce.identical = false;
    o.use_bcc = false;
  } else if (c == "icr") {
    o.use_bcc = false;
  } else if (c != "cumulative" && c != "random") {
    throw UsageError{"unknown --config '" + c + "'"};
  }
  const std::string m = a.get("measure", "farness");
  if (m == "betweenness") {
    o.measure = Measure::kBetweenness;
  } else if (m != "farness") {
    throw UsageError{"unknown --measure '" + m +
                     "' (want farness|betweenness)"};
  }
  const std::string k = a.get("kernel", "auto");
  if (k == "bfs") {
    o.kernel = KernelChoice::kBfs;
  } else if (k == "dial") {
    o.kernel = KernelChoice::kDial;
  } else if (k == "batched") {
    o.kernel = KernelChoice::kBatched;
  } else if (k != "auto") {
    throw UsageError{"unknown --kernel '" + k +
                     "' (want auto|bfs|dial|batched)"};
  }
  o.recovery.checkpoint_dir = a.get("checkpoint-dir", "");
  o.recovery.resume = a.flags.count("resume") > 0;
  o.recovery.checkpoint_every =
      static_cast<std::uint32_t>(a.get_u64("checkpoint-every", 0));
  if (o.recovery.resume && o.recovery.checkpoint_dir.empty())
    throw UsageError{"--resume requires --checkpoint-dir"};
  const std::uint64_t retries = a.get_u64("retries", 0);
  if (retries > 0) o.retry.max_attempts = static_cast<int>(retries);
  return o;
}

void write_values(const Args& a, std::span<const double> values) {
  const std::string path = a.get("out", "");
  std::ofstream file;
  std::FILE* console = stdout;
  if (!path.empty()) {
    file.open(path);
    if (!file.good())
      throw InputError("cannot open '" + path + "' for writing");
    for (std::size_t v = 0; v < values.size(); ++v)
      file << v << ' ' << values[v] << '\n';
    std::printf("wrote %zu values to %s\n", values.size(), path.c_str());
    return;
  }
  for (std::size_t v = 0; v < std::min<std::size_t>(values.size(), 20); ++v)
    std::fprintf(console, "%zu %.2f\n", v, values[v]);
  if (values.size() > 20)
    std::printf("... (%zu total; use --out FILE for all)\n", values.size());
}

int cmd_stats(const Args& a) {
  CsrGraph g = load(a);
  std::printf("%s", to_string(summarize_graph(g)).c_str());
  return kExitOk;
}

void write_text_file(const std::string& path, const std::string& body,
                     const char* what) {
  std::ofstream file(path);
  if (!file.good())
    throw InputError("cannot open '" + path + "' for writing");
  file << body << '\n';
  std::printf("wrote %s to %s\n", what, path.c_str());
}

int cmd_estimate(const Args& a) {
  CsrGraph g = load(a);
  const std::optional<Permutation> perm = maybe_reorder(a, g);
  EstimateOptions o = config_from(a);
  o.storage = g.storage();
  const int threads = static_cast<int>(a.get_u64("threads", 0));
  if (threads > 0) set_threads(threads);
  const std::string config = a.get("config", "cumulative");
  const std::string metrics_out = a.get("metrics-out", "");
  const std::string trace_out = a.get("trace-out", "");
  // Scope the artifacts to this run: a fresh registry window and (only
  // when asked for — recording costs a little) a fresh trace epoch.
  if (!metrics_out.empty()) MetricsRegistry::global().reset();
  if (!trace_out.empty()) TraceRecorder::global().enable();
  // `--config random` means the flat unreduced estimator for either
  // measure: Alg. 1 for farness, Brandes–Pich sampling for betweenness.
  if (config == "random" && o.measure == Measure::kBetweenness)
    o.use_bcc = false;
  Timer t;
  EstimateResult est =
      config == "random" && o.measure == Measure::kFarness
          ? estimate_random_sampling(g, o)
          : estimate_centrality(g, o);
  const double wall_s = t.seconds();
  if (!trace_out.empty()) TraceRecorder::global().disable();
  std::printf("# estimated %s (%.3f s, %u sources, %u blocks)\n",
              to_string(est.measure), wall_s, est.samples, est.num_blocks);
  std::printf(
      "# phases: reduce %.3f s, bcc %.3f s, traverse %.3f s, "
      "combine %.3f s, other %.3f s (total %.3f s)\n",
      est.times.reduce_s, est.times.bcc_s, est.times.traverse_s,
      est.times.combine_s, est.times.other_s(), est.times.total_s);
  if (est.degraded)
    std::printf(
        "# DEGRADED: budget cut the %s phase; %u of %u planned sources, "
        "effective rate %.4f\n",
        to_string(est.cut_phase), est.samples, est.planned_samples,
        est.achieved_sample_rate);
  if (!o.recovery.checkpoint_dir.empty())
    std::printf(
        "# recovery: attempt %u%s, %u checkpoints written, %u loaded, "
        "%u retries, %u quarantined, cumulative %.3f s\n",
        est.recovery.attempt, est.recovery.resumed ? " (resumed)" : "",
        est.recovery.checkpoints_written, est.recovery.checkpoints_loaded,
        est.recovery.retries, est.recovery.quarantined_blocks,
        est.recovery.cumulative_wall_s);
  if (!metrics_out.empty()) {
    RunReport report = make_run_report("brics_cli", a.input, g, o, config,
                                       est, wall_s);
    write_text_file(metrics_out, to_json(report), "run report");
  }
  if (!trace_out.empty())
    write_text_file(trace_out, TraceRecorder::global().to_chrome_json(),
                    "trace");
  // --reorder ran the pipeline on relabelled ids; report original ones.
  write_values(a, perm ? perm->to_original(est.farness) : est.farness);
  return est.degraded ? kExitDegraded : kExitOk;
}

int cmd_exact(const Args& a) {
  CsrGraph g = load(a);
  const std::optional<Permutation> perm = maybe_reorder(a, g);
  const std::string m = a.get("measure", "farness");
  if (m != "farness" && m != "betweenness")
    throw UsageError{"unknown --measure '" + m +
                     "' (want farness|betweenness)"};
  Timer t;
  std::vector<double> d;
  if (m == "betweenness") {
    d = exact_betweenness(g);
  } else {
    std::vector<FarnessSum> f = exact_farness(g);
    d.assign(f.begin(), f.end());
  }
  std::printf("# exact %s (%.3f s)\n", m.c_str(), t.seconds());
  write_values(a, perm ? perm->to_original(d) : d);
  return kExitOk;
}

int cmd_topk(const Args& a) {
  CsrGraph g = load(a);
  const NodeId k = static_cast<NodeId>(a.get_u64("k", 10));
  Timer t;
  TopKResult r = top_k_closeness(g, std::min<NodeId>(k, g.num_nodes()));
  std::printf("# top-%u closeness (%.3f s, %u traversals)\n", k, t.seconds(),
              r.traversals);
  for (std::size_t i = 0; i < r.nodes.size(); ++i)
    std::printf("%zu node %u farness %llu\n", i + 1, r.nodes[i],
                static_cast<unsigned long long>(r.farness[i]));
  return kExitOk;
}

int cmd_generate(const Args& a) {
  if (a.input.empty()) throw UsageError{"generate needs a dataset name"};
  std::string name =
      a.input[0] == '@' ? a.input.substr(1) : a.input;
  CsrGraph g = [&] {
    try {
      return build_dataset(name, a.get_double("scale", 0.2));
    } catch (const CheckFailure& e) {
      throw InputError(e.what());
    }
  }();
  const std::string path = a.get("out", name + ".txt");
  write_edge_list_file(g, path);
  std::printf("wrote %u nodes / %llu edges to %s\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), path.c_str());
  return kExitOk;
}


int cmd_harmonic(const Args& a) {
  CsrGraph g = load(a);
  const std::optional<Permutation> perm = maybe_reorder(a, g);
  const double rate = a.get_double("rate", 0.2);
  Timer t;
  std::vector<double> h = rate >= 1.0
                              ? exact_harmonic(g)
                              : estimate_harmonic(g, rate,
                                                  a.get_u64("seed", 1));
  std::printf("# harmonic centrality (%.3f s, rate %.2f)\n", t.seconds(),
              rate);
  write_values(a, perm ? perm->to_original(h) : h);
  return kExitOk;
}

int cmd_distance(const Args& a) {
  CsrGraph g = load(a);
  const NodeId s = static_cast<NodeId>(a.get_u64("s", 0));
  const NodeId t = static_cast<NodeId>(a.get_u64("t", 0));
  Timer timer;
  Dist d = point_to_point(g, s, t);
  if (d == kInfDist)
    std::printf("d(%u, %u) = unreachable (%.4f s)\n", s, t,
                timer.seconds());
  else
    std::printf("d(%u, %u) = %u (%.4f s)\n", s, t, d, timer.seconds());
  return kExitOk;
}

int cmd_improve(const Args& a) {
  CsrGraph g = load(a);
  ImproveOptions o;
  o.budget = static_cast<NodeId>(a.get_u64("k", 3));
  o.candidate_pool = static_cast<NodeId>(a.get_u64("pool", 0));
  o.seed = a.get_u64("seed", 1);
  const NodeId v = static_cast<NodeId>(a.get_u64("node", 0));
  Timer t;
  ImproveResult r = improve_closeness(g, v, o);
  std::printf("# improve node %u (%.3f s): farness %llu", v, t.seconds(),
              static_cast<unsigned long long>(r.initial_farness));
  for (std::size_t i = 0; i < r.added.size(); ++i)
    std::printf(" -> %llu (+edge to %u)",
                static_cast<unsigned long long>(r.farness[i]), r.added[i]);
  std::printf("\n");
  return kExitOk;
}

int cmd_datasets() {
  for (const DatasetInfo& d : dataset_registry())
    std::printf("%-14s %s\n", d.name.c_str(), to_string(d.cls).c_str());
  return kExitOk;
}

int cmd_version() {
  std::printf("brics (%s, checkpoint format v%u)\n",
              build_version_string().c_str(), kCheckpointFormatVersion);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // A closed downstream pipe must surface as a write error (exit 6), not
  // kill the process with SIGPIPE (docs/ROBUSTNESS.md).
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage();
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--resume" || arg == "--compact") {
      // Zero-argument switches; every other --flag consumes a value.
      a.flags.emplace(arg.substr(2), "1");
    } else if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) return usage();
      a.flags[arg.substr(2)] = argv[++i];
    } else if (a.input.empty()) {
      a.input = arg;
    } else {
      return usage();
    }
  }
  // Error taxonomy -> exit codes (docs/ROBUSTNESS.md): usage mistakes (2)
  // and malformed input (3) are the caller's fault; a budget-degraded
  // estimate (4) is a success with a caveat; CheckFailure (5) is a library
  // invariant violation — a bug worth reporting — and is deliberately
  // distinguished from the generic catch-all.
  try {
    // Arm any BRICS_FAILPOINTS fault-injection spec before the command
    // runs; a malformed spec is an InputError (exit 3), not a crash.
    FailPointRegistry::instance().arm_from_env();
    int rc = -1;
    if (a.command == "stats") rc = cmd_stats(a);
    else if (a.command == "estimate") rc = cmd_estimate(a);
    else if (a.command == "exact") rc = cmd_exact(a);
    else if (a.command == "topk") rc = cmd_topk(a);
    else if (a.command == "harmonic") rc = cmd_harmonic(a);
    else if (a.command == "distance") rc = cmd_distance(a);
    else if (a.command == "improve") rc = cmd_improve(a);
    else if (a.command == "generate") rc = cmd_generate(a);
    else if (a.command == "datasets") rc = cmd_datasets();
    else if (a.command == "version" || a.command == "--version")
      rc = cmd_version();
    else return usage();
    // With SIGPIPE ignored, writes into a closed pipe (or a full disk)
    // fail silently inside stdio; the sticky error flag is the only
    // evidence. Surface it as an explicit exit code.
    if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
      std::fprintf(stderr, "error: write to stdout failed\n");
      return kExitIo;
    }
    return rc;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what.c_str());
    return usage();
  } catch (const InputError& e) {
    std::fprintf(stderr, "input error: %s\n", e.what());
    return kExitBadInput;
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "internal error (invariant violated): %s\n",
                 e.what());
    return kExitInternal;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInternal;
  }
  return usage();
}
