// brics_client — demo client + soak driver for brics_serve
// (docs/SERVER.md).
//
//   brics_client <socket> hello
//   brics_client <socket> stats
//   brics_client <socket> server-stats
//   brics_client <socket> metrics [--json]
//   brics_client <socket> farness [--nodes a,b,c] [--closeness]
//                          [--deadline-ms N]
//   brics_client <socket> bc [--nodes a,b,c] [--deadline-ms N]
//   brics_client <socket> topk --k K [--deadline-ms N]
//   brics_client <socket> topk-bc --k K [--deadline-ms N]
//   brics_client <socket> update --edges u:v[:w],... [--deadline-ms N]
//                          [--report]
//   brics_client <socket> sleep --ms N      (debug: wedge a worker)
//   brics_client <socket> soak --clients N --requests M
//                          [--update-every K] [--deadline-ms N]
//                          [--recv-timeout-ms T]
//
// The soak mode is the no-hangs contract, executable: N concurrent
// connections each fire M requests (farness / topk / update mix) and
// every single one must end in a reply or a visible connection error
// within the receive timeout — a silent hang fails the run. Each thread
// records every reply's round-trip latency; the summary line reports
// client-observed p50_ms/p95_ms/p99_ms across all replies.
//
// `metrics` fetches the server's live telemetry (protocol v3 kMetrics):
// Prometheus-style text exposition by default, the schema'd JSON snapshot
// with --json. A server built with -DBRICS_METRICS=OFF answers kError;
// that surfaces as exit code 3 with the server's message.
//
// Exit codes: 0 ok, 2 usage, 3 error reply, 4 degraded, 5 connection or
// protocol failure, 6 overloaded, 7 server shutting down. Soak: 0 when no
// request hung, 1 otherwise.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "exec/errors.hpp"
#include "server/protocol.hpp"

namespace {

using namespace brics;

int usage() {
  std::fprintf(
      stderr,
      "usage: brics_client <socket> hello|stats|server-stats|metrics|"
      "farness|bc|topk|topk-bc|update|sleep|soak "
      "[options]\n"
      "exit codes: 0 ok, 2 usage, 3 error reply, 4 degraded,\n"
      "            5 connection failure, 6 overloaded, 7 shutting down\n");
  return 2;
}

int connect_unix(const std::string& path, int recv_timeout_ms) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One request/reply exchange; throws InputError on transport failure.
Reply roundtrip(int fd, const Request& req) {
  write_frame(fd, encode_request(req));
  auto frame = read_frame(fd);
  if (!frame) throw InputError("connection closed by server");
  return decode_reply(*frame);
}

void print_reply(const Reply& rep) {
  std::printf("status=%s version=%llu", to_string(rep.status),
              static_cast<unsigned long long>(rep.version));
  if (rep.status == ReplyStatus::kError)
    std::printf(" error=%s", to_string(rep.error));
  if (!rep.message.empty()) std::printf("\n%s", rep.message.c_str());
  std::printf("\n");
  switch (rep.type) {
    case MsgType::kHello:
      std::printf("nodes=%llu edges=%llu resumed=%s\n",
                  static_cast<unsigned long long>(rep.nodes),
                  static_cast<unsigned long long>(rep.edges),
                  rep.resumed ? "true" : "false");
      break;
    case MsgType::kFarness:
    case MsgType::kBc:
    case MsgType::kTopKBc:
      for (const FarnessEntry& e : rep.entries)
        std::printf("%u %.17g%s\n", e.node, e.value,
                    e.exact ? "" : " ~");
      break;
    case MsgType::kTopK:
      for (std::size_t i = 0; i < rep.topk_nodes.size(); ++i)
        std::printf("%u %llu\n", rep.topk_nodes[i],
                    static_cast<unsigned long long>(rep.topk_farness[i]));
      if (!rep.topk_exact) std::printf("(inexact: budget cut)\n");
      break;
    case MsgType::kUpdate:
      std::printf("applied=%u persisted=%s\n", rep.applied,
                  rep.persisted ? "true" : "false");
      if (!rep.report_json.empty())
        std::printf("%s\n", rep.report_json.c_str());
      break;
    default:
      break;
  }
}

int status_exit_code(const Reply& rep) {
  switch (rep.status) {
    case ReplyStatus::kOk: return 0;
    case ReplyStatus::kDegraded: return 4;
    case ReplyStatus::kOverloaded: return 6;
    case ReplyStatus::kShuttingDown: return 7;
    case ReplyStatus::kError: return 3;
  }
  return 3;
}

bool parse_nodes(const std::string& spec, std::vector<NodeId>* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(spec.c_str() + pos, &end, 10);
    if (end == spec.c_str() + pos) return false;
    out->push_back(static_cast<NodeId>(v));
    pos = static_cast<std::size_t>(end - spec.c_str());
    if (pos < spec.size()) {
      if (spec[pos] != ',') return false;
      ++pos;
    }
  }
  return true;
}

bool parse_edges(const std::string& spec, std::vector<Edge>* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    Edge e;
    char* end = nullptr;
    e.u = static_cast<NodeId>(std::strtoul(spec.c_str() + pos, &end, 10));
    if (end == spec.c_str() + pos || *end != ':') return false;
    pos = static_cast<std::size_t>(end - spec.c_str()) + 1;
    e.v = static_cast<NodeId>(std::strtoul(spec.c_str() + pos, &end, 10));
    if (end == spec.c_str() + pos) return false;
    pos = static_cast<std::size_t>(end - spec.c_str());
    e.w = 1;
    if (pos < spec.size() && spec[pos] == ':') {
      ++pos;
      e.w = static_cast<Weight>(std::strtoul(spec.c_str() + pos, &end, 10));
      if (end == spec.c_str() + pos) return false;
      pos = static_cast<std::size_t>(end - spec.c_str());
    }
    out->push_back(e);
    if (pos < spec.size()) {
      if (spec[pos] != ',') return false;
      ++pos;
    }
  }
  return !out->empty();
}

struct SoakTotals {
  std::atomic<std::uint64_t> sent{0}, ok{0}, degraded{0}, overloaded{0},
      shutdown{0}, errors{0}, dropped{0}, hangs{0};
};

/// Client-observed percentile over round-trip latencies (ms). Nearest-rank
/// on the sorted sample; `lat` must be sorted ascending.
double latency_percentile_ms(const std::vector<double>& lat, double q) {
  if (lat.empty()) return 0.0;
  const double rank = q * static_cast<double>(lat.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, lat.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return lat[lo] + (lat[hi] - lat[lo]) * frac;
}

void soak_thread(const std::string& sock, int tid, int requests,
                 int update_every, std::uint32_t deadline_ms,
                 int recv_timeout_ms, SoakTotals* totals,
                 std::vector<double>* latencies_ms) {
  int fd = connect_unix(sock, recv_timeout_ms);
  std::uint64_t nodes = 0;
  if (fd >= 0) {
    Request hello;
    hello.type = MsgType::kHello;
    try {
      nodes = roundtrip(fd, hello).nodes;
    } catch (const std::exception&) {
      ::close(fd);
      fd = -1;
    }
  }
  for (int i = 0; i < requests; ++i) {
    if (fd < 0) {
      // Visible connection failure: reconnect and keep going. The
      // request that was in flight counts as dropped, never as a hang.
      fd = connect_unix(sock, recv_timeout_ms);
      if (fd < 0) {
        ++totals->dropped;
        ++totals->sent;
        continue;
      }
    }
    Request req;
    req.request_id = static_cast<std::uint32_t>(tid * 1000003 + i);
    req.deadline_ms = deadline_ms;
    const std::uint64_t n = nodes > 0 ? nodes : 1;
    if (update_every > 0 && i % update_every == update_every - 1) {
      req.type = MsgType::kUpdate;
      Edge e;
      e.u = static_cast<NodeId>((tid * 31 + i * 7) % n);
      e.v = static_cast<NodeId>((tid * 17 + i * 13 + 1) % n);
      e.w = 1;
      req.edges.push_back(e);
    } else if (i % 5 == 3) {
      req.type = MsgType::kTopK;
      req.k = 3;
    } else if (i % 5 == 1) {
      // Interleave betweenness with the farness/topk/update mix: the BC
      // cache is rebuilt lazily after every committed update, so this
      // exercises invalidation under concurrency, not just lookups.
      req.type = MsgType::kBc;
      req.nodes.push_back(static_cast<NodeId>(i % n));
    } else if (i % 10 == 4) {
      req.type = MsgType::kTopKBc;
      req.k = 3;
    } else {
      req.type = MsgType::kFarness;
      req.nodes.push_back(static_cast<NodeId>(i % n));
    }
    ++totals->sent;
    try {
      const auto t0 = std::chrono::steady_clock::now();
      const Reply rep = roundtrip(fd, req);
      latencies_ms->push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
      if (rep.request_id != req.request_id)
        throw InputError("reply id mismatch");
      switch (rep.status) {
        case ReplyStatus::kOk: ++totals->ok; break;
        case ReplyStatus::kDegraded: ++totals->degraded; break;
        case ReplyStatus::kOverloaded: ++totals->overloaded; break;
        case ReplyStatus::kShuttingDown: ++totals->shutdown; break;
        case ReplyStatus::kError: ++totals->errors; break;
      }
    } catch (const std::exception& e) {
      // SO_RCVTIMEO expiry surfaces as a read failure: that is a HANG —
      // the server went silent on a live connection.
      if (std::strstr(e.what(), "read failed") != nullptr &&
          (errno == EAGAIN || errno == EWOULDBLOCK)) {
        ++totals->hangs;
      } else {
        ++totals->dropped;
      }
      ::close(fd);
      fd = -1;
    }
  }
  if (fd >= 0) ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 3) return usage();
  const std::string sock = argv[1];
  const std::string cmd = argv[2];

  Request req;
  std::uint32_t deadline_ms = 0;
  int clients = 4, requests = 50, update_every = 10;
  int recv_timeout_ms = 30000;
  bool want_report = false;
  bool want_json = false;
  std::vector<NodeId> nodes;
  std::vector<Edge> edges;
  std::uint32_t sleep_ms = 0;
  NodeId k = 0;
  bool closeness = false;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--deadline-ms" && (v = next())) {
      deadline_ms = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--nodes" && (v = next())) {
      if (!parse_nodes(v, &nodes)) return usage();
    } else if (arg == "--closeness") {
      closeness = true;
    } else if (arg == "--k" && (v = next())) {
      k = static_cast<NodeId>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--edges" && (v = next())) {
      if (!parse_edges(v, &edges)) return usage();
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg == "--ms" && (v = next())) {
      sleep_ms = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--clients" && (v = next())) {
      clients = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--requests" && (v = next())) {
      requests = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--update-every" && (v = next())) {
      update_every = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--recv-timeout-ms" && (v = next())) {
      recv_timeout_ms = static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      return usage();
    }
  }

  if (cmd == "soak") {
    if (clients < 1 || requests < 1) return usage();
    SoakTotals totals;
    std::vector<std::vector<double>> per_thread_lat(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int t = 0; t < clients; ++t)
      threads.emplace_back(soak_thread, sock, t, requests, update_every,
                           deadline_ms, recv_timeout_ms, &totals,
                           &per_thread_lat[static_cast<std::size_t>(t)]);
    for (std::thread& th : threads) th.join();
    std::vector<double> lat;
    for (const std::vector<double>& v : per_thread_lat)
      lat.insert(lat.end(), v.begin(), v.end());
    std::sort(lat.begin(), lat.end());
    std::printf(
        "soak: sent=%llu ok=%llu degraded=%llu overloaded=%llu "
        "shutdown=%llu errors=%llu dropped=%llu hangs=%llu "
        "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
        static_cast<unsigned long long>(totals.sent.load()),
        static_cast<unsigned long long>(totals.ok.load()),
        static_cast<unsigned long long>(totals.degraded.load()),
        static_cast<unsigned long long>(totals.overloaded.load()),
        static_cast<unsigned long long>(totals.shutdown.load()),
        static_cast<unsigned long long>(totals.errors.load()),
        static_cast<unsigned long long>(totals.dropped.load()),
        static_cast<unsigned long long>(totals.hangs.load()),
        latency_percentile_ms(lat, 0.50), latency_percentile_ms(lat, 0.95),
        latency_percentile_ms(lat, 0.99));
    if (totals.hangs.load() > 0) {
      std::fprintf(stderr, "soak: FAIL — %llu request(s) hung\n",
                   static_cast<unsigned long long>(totals.hangs.load()));
      return 1;
    }
    return 0;
  }

  if (cmd == "hello") {
    req.type = MsgType::kHello;
  } else if (cmd == "stats") {
    req.type = MsgType::kStats;
  } else if (cmd == "server-stats") {
    req.type = MsgType::kServerStats;
  } else if (cmd == "metrics") {
    req.type = MsgType::kMetrics;
  } else if (cmd == "farness") {
    req.type = MsgType::kFarness;
    req.nodes = nodes;
    req.closeness = closeness;
  } else if (cmd == "bc") {
    req.type = MsgType::kBc;
    req.nodes = nodes;
  } else if (cmd == "topk") {
    req.type = MsgType::kTopK;
    req.k = k;
  } else if (cmd == "topk-bc") {
    req.type = MsgType::kTopKBc;
    req.k = k;
  } else if (cmd == "update") {
    req.type = MsgType::kUpdate;
    req.edges = edges;
    req.want_report = want_report;
  } else if (cmd == "sleep") {
    req.type = MsgType::kStats;
    req.debug_sleep_ms = sleep_ms;
  } else {
    return usage();
  }
  req.request_id = 1;
  req.deadline_ms = deadline_ms;

  const int fd = connect_unix(sock, recv_timeout_ms);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", sock.c_str(),
                 std::strerror(errno));
    return 5;
  }
  try {
    const Reply rep = roundtrip(fd, req);
    ::close(fd);
    if (cmd == "metrics" && rep.status == ReplyStatus::kOk) {
      // Raw body only: text exposition (message) or the JSON snapshot —
      // pipeable straight into a scraper / jq without header lines.
      const std::string& body = want_json ? rep.metrics_json : rep.message;
      std::fwrite(body.data(), 1, body.size(), stdout);
      if (body.empty() || body.back() != '\n') std::printf("\n");
      return 0;
    }
    print_reply(rep);
    return status_exit_code(rep);
  } catch (const std::exception& e) {
    ::close(fd);
    std::fprintf(stderr, "transport error: %s\n", e.what());
    return 5;
  }
}
