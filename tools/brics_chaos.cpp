// brics_chaos — exhaustive fail-point sweep (docs/ROBUSTNESS.md).
//
//   brics_chaos <edge_list|@dataset> [--scale X] [--rate R] [--seed S]
//               [--measure farness|betweenness] [--max-hits N]
//               [--work-dir D] [--no-verify-resume] [--server]
//
// With --server the sweep targets the daemon's sites instead
// (server.accept/read/write/enqueue/apply): each case boots an
// in-process Server, injects the fault into a live client exchange, and
// verifies the explicit-reply taxonomy plus bit-exact post-fault and
// restart-resume answers (src/server/server_chaos.hpp).
//
// Arms every fail-point site compiled into the library, one case per
// (site, trigger-on-Nth-hit) pair, and asserts that each injected run ends
// in a clean taxonomy outcome — absorbed by retry, a valid degraded
// estimate, or a typed error — and that every fired case resumes from its
// checkpoint directory to the uninjected baseline bit-for-bit. CI runs
// this under AddressSanitizer/UBSan: any crash, leak, invariant violation,
// or resume mismatch fails the job.
//
// Exit codes: 0 all cases clean, 1 chaos failures, 2 usage, 3 bad input.
#include <cstdio>
#include <cstring>
#include <string>

#include "brics/brics.hpp"
#include "server/server_chaos.hpp"

namespace {

using namespace brics;

int usage() {
  std::fprintf(stderr,
               "usage: brics_chaos <edge_list|@dataset> [--scale X] "
               "[--rate R] [--seed S] [--measure farness|betweenness] "
               "[--max-hits N] [--work-dir D] "
               "[--no-verify-resume] [--server]\n"
               "exit codes: 0 ok, 1 chaos failures, 2 usage, 3 bad input\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string input = argv[1];
  double scale = 0.2;
  bool server_mode = false;
  ChaosOptions copts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--server") {
      server_mode = true;
    } else if (arg == "--no-verify-resume") {
      copts.verify_resume = false;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return usage();
      scale = std::strtod(v, nullptr);
    } else if (arg == "--rate") {
      const char* v = next();
      if (v == nullptr) return usage();
      copts.sample_rate = std::strtod(v, nullptr);
    } else if (arg == "--measure") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "betweenness") == 0) {
        copts.measure = Measure::kBetweenness;
      } else if (std::strcmp(v, "farness") != 0) {
        return usage();
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      copts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-hits") {
      const char* v = next();
      if (v == nullptr) return usage();
      copts.max_hits = static_cast<int>(std::strtol(v, nullptr, 10));
      if (copts.max_hits < 1) return usage();
    } else if (arg == "--work-dir") {
      const char* v = next();
      if (v == nullptr) return usage();
      copts.work_dir = v;
    } else {
      return usage();
    }
  }

  try {
    CsrGraph g = [&] {
      if (!input.empty() && input[0] == '@') {
        try {
          return build_dataset(input.substr(1), scale);
        } catch (const CheckFailure& e) {
          throw InputError(e.what());
        }
      }
      return read_edge_list_file(input);
    }();
    g = make_connected(g);
    std::printf("chaos sweep%s: %u nodes, %llu edges, %zu sites x %d hits\n",
                server_mode ? " (server)" : "", g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()),
                known_fail_points().size(), copts.max_hits);

    const ChaosReport report = [&] {
      if (server_mode) {
        ServerChaosOptions sopts;
        sopts.max_hits = copts.max_hits;
        sopts.work_dir = copts.work_dir;
        return run_server_chaos_sweep(g, sopts);
      }
      return run_chaos_sweep(g, copts);
    }();
    std::printf("%s", report.summary().c_str());
    if (report.failures > 0) {
      std::fprintf(stderr, "chaos: %d case(s) FAILED\n", report.failures);
      return 1;
    }
    std::printf("chaos: all %zu cases clean\n", report.cases.size());
    return 0;
  } catch (const InputError& e) {
    std::fprintf(stderr, "input error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
