// brics-bench-diff — the perf-regression gate over bench artifacts.
//
//   brics-bench-diff OLD.json NEW.json [--tol-pct P] [--col NAME=P]...
//                    [--abs-floor-ms X]
//
// Compares two BENCH_*.json artifacts (docs/OBSERVABILITY.md): timing
// columns (t_*, *_s, seconds, time) and memory columns (*_mb, *_bytes,
// rss_mb, bytes_per_edge) are matched table-by-table and row-by-row, and a
// new value exceeding the old by more than the relative tolerance is a
// regression. Timing cells where both sides sit below the absolute floor
// are ignored (timer granularity); memory cells have no floor — byte
// counts are deterministic, so drift is always signal. --col grants a
// per-column tolerance (repeatable), e.g. --col t_rand=50. Counter drift
// between the artifacts' metrics blocks is printed as a note — changed
// work is a reason to distrust a "speedup", not a regression by itself.
//
// Exit codes: 0 no regression, 1 regression beyond tolerance, 2 usage
// error, 3 unreadable/invalid artifact.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/artifact_diff.hpp"

namespace {

using namespace brics;

int usage() {
  std::fprintf(stderr,
               "usage: brics-bench-diff OLD.json NEW.json [--tol-pct P] "
               "[--col NAME=P]... [--abs-floor-ms X]\n"
               "exit codes: 0 ok, 1 regression, 2 usage, 3 bad artifact\n");
  return 2;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

bool load_artifact(const char* path, JsonValue& out) {
  std::ifstream file(path);
  if (!file.good()) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  std::string err;
  if (!json_parse(buf.str(), out, &err)) {
    std::fprintf(stderr, "error: '%s' is not valid JSON: %s\n", path,
                 err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  DiffOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol-pct") {
      if (++i >= argc || !parse_double(argv[i], opts.tol_pct))
        return usage();
    } else if (arg == "--abs-floor-ms") {
      double ms = 0.0;
      if (++i >= argc || !parse_double(argv[i], ms)) return usage();
      opts.abs_floor_s = ms / 1000.0;
    } else if (arg == "--col") {
      if (++i >= argc) return usage();
      const char* eq = std::strchr(argv[i], '=');
      double pct = 0.0;
      if (eq == nullptr || !parse_double(eq + 1, pct)) return usage();
      opts.col_tol_pct[std::string(
          argv[i], static_cast<std::size_t>(eq - argv[i]))] = pct;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else if (old_path == nullptr) {
      old_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      return usage();
    }
  }
  if (old_path == nullptr || new_path == nullptr) return usage();

  JsonValue old_art, new_art;
  if (!load_artifact(old_path, old_art) || !load_artifact(new_path, new_art))
    return 3;

  const DiffResult r = diff_artifacts(old_art, new_art, opts);
  std::fputs(format_diff(r).c_str(), stdout);
  return r.ok() ? 0 : 1;
}
