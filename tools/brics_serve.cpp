// brics_serve — the resident centrality daemon (docs/SERVER.md).
//
//   brics_serve <edge_list|@dataset> --socket PATH [--scale X] [--rate R]
//               [--seed S] [--workers N] [--queue N] [--watchdog-ms N]
//               [--state-dir D] [--default-deadline-ms N]
//               [--flight-out PATH|none] [--trace-out PATH]
//
// Loads (or, with --state-dir, resumes) the graph, runs the initial
// estimate, then serves protocol requests on the AF_UNIX socket until
// SIGTERM/SIGINT triggers a graceful drain: in-flight requests finish,
// queued ones are refused with SHUTTING-DOWN, and the last committed
// graph version is already on disk (commit-then-reply), so a restart
// resumes exactly where clients last saw the server.
//
// The flight recorder (obs/flight.hpp) always records; its ring is dumped
// to --flight-out (default `<socket>.flight.json`) on watchdog quarantine,
// at the end of a graceful drain, and — via a signal-tolerable write(2)
// path — on SIGSEGV/SIGABRT/SIGBUS before the default action re-runs.
// `--flight-out none` disables the dumps.
//
// --trace-out enables span recording and starts a flusher thread that
// periodically drains completed spans and rewrites PATH as a complete
// Chrome trace (atomic tmp+rename), so the file is loadable in
// ui.perfetto.dev at any moment while the daemon is live.
//
// BRICS_FAILPOINTS is honoured like in brics_cli — the soak harness arms
// server.* sites through it.
//
// Exit codes: 0 clean drain, 2 usage, 3 bad input.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "brics/brics.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "obs/version.hpp"
#include "server/server.hpp"

namespace {

using namespace brics;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

// Fatal-signal flight dump. The handler may only touch pre-formatted
// state and async-signal-safe calls: the path is copied into a fixed
// buffer at startup, and the dump itself is snprintf+write(2)
// (FlightRecorder::dump_to_fd). After dumping, restore the default
// disposition and re-raise so the exit status still reports the signal.
char g_flight_path[512] = {0};

void on_fatal(int sig) {
  if (g_flight_path[0] != '\0') {
    const int fd =
        ::open(g_flight_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::global().dump_to_fd(fd, "fatal-signal");
      ::close(fd);
    }
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

// Continuous trace exporter: drains completed spans out of the recorder
// and rewrites the output as a full Chrome trace document via tmp+rename,
// so readers never observe a truncated JSON file. The accumulator is
// bounded — a soak that records millions of spans keeps the newest window
// instead of growing without limit.
class TraceFlusher {
 public:
  explicit TraceFlusher(std::string path) : path_(std::move(path)) {
    TraceRecorder::global().enable();
    thread_ = std::thread([this] { loop(); });
  }

  ~TraceFlusher() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    TraceRecorder::global().disable();
    flush();
  }

 private:
  static constexpr std::size_t kMaxEvents = 200000;

  void loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      flush();
    }
  }

  void flush() {
    std::vector<TraceEvent> fresh = TraceRecorder::global().drain();
    if (!fresh.empty()) {
      events_.insert(events_.end(), fresh.begin(), fresh.end());
      if (events_.size() > kMaxEvents) {
        dropped_ += events_.size() - kMaxEvents;
        events_.erase(events_.begin(),
                      events_.end() -
                          static_cast<std::ptrdiff_t>(kMaxEvents));
      }
    } else if (clean_) {
      return;  // nothing new since the last rewrite
    }
    const std::string json = trace_events_to_chrome_json(events_);
    const std::string tmp = path_ + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return;
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (ok && std::rename(tmp.c_str(), path_.c_str()) == 0) clean_ = true;
  }

  std::string path_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
  bool clean_ = false;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: brics_serve <edge_list|@dataset> --socket PATH [--scale X]\n"
      "                   [--rate R] [--seed S] [--workers N] [--queue N]\n"
      "                   [--watchdog-ms N] [--state-dir D]\n"
      "                   [--default-deadline-ms N]\n"
      "                   [--flight-out PATH|none] [--trace-out PATH]\n"
      "exit codes: 0 clean drain, 2 usage, 3 bad input\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disconnects mid-reply must surface as a dropped
  // connection, not process death.
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage();
  std::string input = argv[1];
  double scale = 0.2;
  std::string flight_out;  // empty = default <socket>.flight.json
  std::string trace_out;
  bool flight_disabled = false;
  ServerOptions sopts;
  sopts.engine.estimate.sample_rate = 1.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      sopts.socket_path = v;
    } else if (arg == "--scale" && (v = next())) {
      scale = std::strtod(v, nullptr);
    } else if (arg == "--rate" && (v = next())) {
      sopts.engine.estimate.sample_rate = std::strtod(v, nullptr);
    } else if (arg == "--seed" && (v = next())) {
      sopts.engine.estimate.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--workers" && (v = next())) {
      sopts.num_workers =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      if (sopts.num_workers == 0) return usage();
    } else if (arg == "--queue" && (v = next())) {
      sopts.queue_capacity =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
      if (sopts.queue_capacity == 0) return usage();
    } else if (arg == "--watchdog-ms" && (v = next())) {
      sopts.watchdog_ms = std::strtoll(v, nullptr, 10);
    } else if (arg == "--state-dir" && (v = next())) {
      sopts.engine.state_dir = v;
    } else if (arg == "--default-deadline-ms" && (v = next())) {
      sopts.default_deadline_ms =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--flight-out" && (v = next())) {
      if (std::strcmp(v, "none") == 0) {
        flight_disabled = true;
      } else {
        flight_out = v;
      }
    } else if (arg == "--trace-out" && (v = next())) {
      trace_out = v;
    } else {
      return usage();
    }
  }
  if (sopts.socket_path.empty()) return usage();

  if (!flight_disabled) {
    if (flight_out.empty()) flight_out = sopts.socket_path + ".flight.json";
    sopts.flight_path = flight_out;
    if (flight_out.size() < sizeof(g_flight_path)) {
      std::memcpy(g_flight_path, flight_out.c_str(), flight_out.size() + 1);
      std::signal(SIGSEGV, on_fatal);
      std::signal(SIGABRT, on_fatal);
      std::signal(SIGBUS, on_fatal);
    }
  }

  try {
    FailPointRegistry::instance().arm_from_env();
    CsrGraph g = [&] {
      if (!input.empty() && input[0] == '@') {
        try {
          return build_dataset(input.substr(1), scale);
        } catch (const CheckFailure& e) {
          throw InputError(e.what());
        }
      }
      return read_edge_list_file(input);
    }();
    g = make_connected(g);

    Server server(std::move(g), sopts);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    // Relay signals into the server's drain flag from a normal thread;
    // the handler itself only touches the atomic.
    std::thread relay([&server] {
      while (!g_stop.load(std::memory_order_relaxed) && !server.ready())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      while (!g_stop.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      server.stop();
    });

    const ServerEngine& eng = server.engine();
    std::printf("brics_serve (%s)\n", build_version_string().c_str());
    std::printf(
        "serving %u nodes, %llu edges on %s (version %llu%s)\n",
        eng.num_nodes(), static_cast<unsigned long long>(eng.num_edges()),
        sopts.socket_path.c_str(),
        static_cast<unsigned long long>(eng.version()),
        eng.resumed() ? ", resumed from state dir" : "");
    std::printf("ready\n");
    std::fflush(stdout);

    {
      std::unique_ptr<TraceFlusher> flusher;
      if (!trace_out.empty())
        flusher = std::make_unique<TraceFlusher>(trace_out);
      server.run();
    }  // final trace flush (if enabled) before counters print

    g_stop.store(true, std::memory_order_relaxed);
    relay.join();
    const ServerCounters c = server.counters();
    std::printf(
        "drained: connections=%llu requests=%llu served=%llu shed=%llu "
        "refused=%llu errors=%llu quarantined=%llu dropped=%llu\n",
        static_cast<unsigned long long>(c.connections),
        static_cast<unsigned long long>(c.requests),
        static_cast<unsigned long long>(c.served),
        static_cast<unsigned long long>(c.shed),
        static_cast<unsigned long long>(c.refused),
        static_cast<unsigned long long>(c.errors),
        static_cast<unsigned long long>(c.quarantined),
        static_cast<unsigned long long>(c.dropped_conns));
    return 0;
  } catch (const InputError& e) {
    std::fprintf(stderr, "input error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
