// brics_serve — the resident centrality daemon (docs/SERVER.md).
//
//   brics_serve <edge_list|@dataset> --socket PATH [--scale X] [--rate R]
//               [--seed S] [--workers N] [--queue N] [--watchdog-ms N]
//               [--state-dir D] [--default-deadline-ms N]
//
// Loads (or, with --state-dir, resumes) the graph, runs the initial
// estimate, then serves protocol requests on the AF_UNIX socket until
// SIGTERM/SIGINT triggers a graceful drain: in-flight requests finish,
// queued ones are refused with SHUTTING-DOWN, and the last committed
// graph version is already on disk (commit-then-reply), so a restart
// resumes exactly where clients last saw the server.
//
// BRICS_FAILPOINTS is honoured like in brics_cli — the soak harness arms
// server.* sites through it.
//
// Exit codes: 0 clean drain, 2 usage, 3 bad input.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "brics/brics.hpp"
#include "obs/version.hpp"
#include "server/server.hpp"

namespace {

using namespace brics;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(
      stderr,
      "usage: brics_serve <edge_list|@dataset> --socket PATH [--scale X]\n"
      "                   [--rate R] [--seed S] [--workers N] [--queue N]\n"
      "                   [--watchdog-ms N] [--state-dir D]\n"
      "                   [--default-deadline-ms N]\n"
      "exit codes: 0 clean drain, 2 usage, 3 bad input\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disconnects mid-reply must surface as a dropped
  // connection, not process death.
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage();
  std::string input = argv[1];
  double scale = 0.2;
  ServerOptions sopts;
  sopts.engine.estimate.sample_rate = 1.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      sopts.socket_path = v;
    } else if (arg == "--scale" && (v = next())) {
      scale = std::strtod(v, nullptr);
    } else if (arg == "--rate" && (v = next())) {
      sopts.engine.estimate.sample_rate = std::strtod(v, nullptr);
    } else if (arg == "--seed" && (v = next())) {
      sopts.engine.estimate.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--workers" && (v = next())) {
      sopts.num_workers =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      if (sopts.num_workers == 0) return usage();
    } else if (arg == "--queue" && (v = next())) {
      sopts.queue_capacity =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
      if (sopts.queue_capacity == 0) return usage();
    } else if (arg == "--watchdog-ms" && (v = next())) {
      sopts.watchdog_ms = std::strtoll(v, nullptr, 10);
    } else if (arg == "--state-dir" && (v = next())) {
      sopts.engine.state_dir = v;
    } else if (arg == "--default-deadline-ms" && (v = next())) {
      sopts.default_deadline_ms =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else {
      return usage();
    }
  }
  if (sopts.socket_path.empty()) return usage();

  try {
    FailPointRegistry::instance().arm_from_env();
    CsrGraph g = [&] {
      if (!input.empty() && input[0] == '@') {
        try {
          return build_dataset(input.substr(1), scale);
        } catch (const CheckFailure& e) {
          throw InputError(e.what());
        }
      }
      return read_edge_list_file(input);
    }();
    g = make_connected(g);

    Server server(std::move(g), sopts);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    // Relay signals into the server's drain flag from a normal thread;
    // the handler itself only touches the atomic.
    std::thread relay([&server] {
      while (!g_stop.load(std::memory_order_relaxed) && !server.ready())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      while (!g_stop.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      server.stop();
    });

    const ServerEngine& eng = server.engine();
    std::printf("brics_serve (%s)\n", build_version_string().c_str());
    std::printf(
        "serving %u nodes, %llu edges on %s (version %llu%s)\n",
        eng.num_nodes(), static_cast<unsigned long long>(eng.num_edges()),
        sopts.socket_path.c_str(),
        static_cast<unsigned long long>(eng.version()),
        eng.resumed() ? ", resumed from state dir" : "");
    std::printf("ready\n");
    std::fflush(stdout);

    server.run();

    g_stop.store(true, std::memory_order_relaxed);
    relay.join();
    const ServerCounters c = server.counters();
    std::printf(
        "drained: connections=%llu requests=%llu served=%llu shed=%llu "
        "refused=%llu errors=%llu quarantined=%llu dropped=%llu\n",
        static_cast<unsigned long long>(c.connections),
        static_cast<unsigned long long>(c.requests),
        static_cast<unsigned long long>(c.served),
        static_cast<unsigned long long>(c.shed),
        static_cast<unsigned long long>(c.refused),
        static_cast<unsigned long long>(c.errors),
        static_cast<unsigned long long>(c.quarantined),
        static_cast<unsigned long long>(c.dropped_conns));
    return 0;
  } catch (const InputError& e) {
    std::fprintf(stderr, "input error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
