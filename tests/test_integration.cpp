// End-to-end integration: the full public API path a user of the library
// takes — build/load a graph, reduce, decompose, estimate, rank — on the
// dataset registry at test scale, plus cross-estimator consistency checks.
#include <gtest/gtest.h>

#include <sstream>

#include "brics/brics.hpp"
#include "extensions/topk.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

class DatasetEndToEnd : public ::testing::TestWithParam<DatasetInfo> {};

TEST_P(DatasetEndToEnd, EstimateAllConfigsAndCompareQuality) {
  CsrGraph g = build_dataset(GetParam().name, 0.04);
  auto actual = exact_farness(g);

  EstimateOptions rnd;
  rnd.sample_rate = 0.4;
  rnd.seed = 3;
  auto e_rnd = estimate_random_sampling(g, rnd);

  EstimateOptions icr = rnd;
  icr.use_bcc = false;
  auto e_icr = estimate_reduced_sampling(g, icr);

  EstimateOptions cum = rnd;
  cum.use_bcc = true;
  auto e_cum = estimate_brics(g, cum);

  for (const auto* e : {&e_rnd, &e_icr, &e_cum}) {
    QualityReport q = quality(e->farness, actual);
    EXPECT_GT(q.quality, 0.7) << GetParam().name;
    EXPECT_LT(q.quality, 1.3) << GetParam().name;
  }
  // Reductions must shrink the traversal workload on every class.
  EXPECT_LT(e_cum.reduce_stats.reduced_nodes, g.num_nodes());
  EXPECT_GT(e_cum.num_blocks, 0u);
}

TEST_P(DatasetEndToEnd, RoundTripThroughEdgeListIO) {
  CsrGraph g = build_dataset(GetParam().name, 0.04);
  std::stringstream buf;
  write_edge_list(g, buf);
  CsrGraph h = read_edge_list(buf, ConnectPolicy::kKeepAsIs);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Same reduction outcome either way.
  ReducedGraph ra = reduce(g, ReduceOptions{});
  ReducedGraph rb = reduce(h, ReduceOptions{});
  EXPECT_EQ(ra.ledger.num_removed(), rb.ledger.num_removed());
}

INSTANTIATE_TEST_SUITE_P(
    All, DatasetEndToEnd, ::testing::ValuesIn(dataset_registry()),
    [](const testing::TestParamInfo<DatasetInfo>& info) {
      std::string s = info.param.name;
      for (char& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(Integration, TopKAgreesWithEstimatorOrdering) {
  CsrGraph g = build_dataset("com-part-a", 0.04);
  TopKResult top = top_k_closeness(g, 5);
  auto actual = exact_farness(g);
  // The returned farness values are exactly the 5 smallest.
  std::vector<FarnessSum> sorted(actual.begin(), actual.end());
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(top.farness[i], sorted[i]);
}

TEST(Integration, ExactMaskNeverLies) {
  CsrGraph g = build_dataset("web-copy-a", 0.04);
  auto actual = exact_farness(g);
  EstimateOptions o;
  o.sample_rate = 0.25;
  o.seed = 7;
  auto est = estimate_brics(g, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (est.exact[v]) {
      ASSERT_NEAR(est.farness[v], double(actual[v]), 1e-6) << v;
    }
  }
}

TEST(Integration, PhaseTimesAreRecorded) {
  CsrGraph g = build_dataset("road-rural", 0.04);
  EstimateOptions o;
  o.sample_rate = 0.3;
  auto est = estimate_brics(g, o);
  EXPECT_GT(est.times.total_s, 0.0);
  EXPECT_GE(est.times.total_s,
            est.times.traverse_s);  // total covers the traversal phase
}

}  // namespace
}  // namespace brics
