#include <gtest/gtest.h>

#include "reduce/chains.hpp"
#include "tests/test_helpers.hpp"
#include "traverse/bfs.hpp"

namespace brics {
namespace {

struct Pass {
  std::vector<std::uint8_t> present;
  ReductionLedger ledger;
  ChainPassResult result;

  explicit Pass(const CsrGraph& g)
      : present(g.num_nodes(), 1), ledger(g.num_nodes()) {
    result = remove_chain_nodes(g, present, ledger);
  }
};

// Fig. 1(a): pendant chain ending in a degree-1 node (Type 1).
TEST(ChainNodes, PendantChainRemoved) {
  // K4 hub {0,1,2,6} (no degree-2 nodes), chain 0-3-4-5 with deg(5)=1.
  CsrGraph g = test::make_graph(
      7, {{0, 1}, {0, 2}, {0, 6}, {1, 2}, {1, 6}, {2, 6},
          {0, 3}, {3, 4}, {4, 5}});
  Pass p(g);
  EXPECT_EQ(p.result.stats.pendant_chains, 1u);
  EXPECT_EQ(p.result.stats.removed, 3u);
  EXPECT_FALSE(p.present[3]);
  EXPECT_FALSE(p.present[4]);
  EXPECT_FALSE(p.present[5]);
  ASSERT_EQ(p.ledger.chains().size(), 1u);
  const ChainRecord& r = p.ledger.chains()[0];
  EXPECT_TRUE(r.pendant());
  EXPECT_EQ(r.u, 0u);
  EXPECT_EQ(r.offsets, (std::vector<Dist>{1, 2, 3}));
}

// Fig. 1(b): cycle chain attached at one node (Type 2).
TEST(ChainNodes, CycleChainRemoved) {
  // K4 hub {0,1,2,6} plus cycle 0-3-4-5-0.
  CsrGraph g = test::make_graph(
      7, {{0, 1}, {0, 2}, {0, 6}, {1, 2}, {1, 6}, {2, 6},
          {0, 3}, {3, 4}, {4, 5}, {5, 0}});
  Pass p(g);
  EXPECT_EQ(p.result.stats.cycle_chains, 1u);
  EXPECT_EQ(p.result.stats.removed, 3u);
  ASSERT_EQ(p.ledger.chains().size(), 1u);
  const ChainRecord& r = p.ledger.chains()[0];
  EXPECT_TRUE(r.cycle());
  EXPECT_EQ(r.total, 4u);
}

// Fig. 1(c)/(d): parallel chains between the same endpoints (Types 3/4).
TEST(ChainNodes, ParallelChainsCompressToMinWeightEdge) {
  // Endpoints 0, 1 anchored to a K4 {5,6,7,8} so neither they nor the
  // scaffold have degree 2; chain A: 0-2-3-1 (length 3); B: 0-4-1 (len 2).
  CsrGraph g = test::make_graph(
      9, {{5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},
          {0, 5}, {0, 6}, {1, 7}, {1, 8},
          {0, 2}, {2, 3}, {3, 1}, {0, 4}, {4, 1}});
  Pass p(g);
  EXPECT_EQ(p.result.stats.through_chains, 2u);
  EXPECT_EQ(p.result.stats.removed, 3u);
  ASSERT_EQ(p.result.compressed_edges.size(), 2u);
  Weight min_w = std::min(p.result.compressed_edges[0].w,
                          p.result.compressed_edges[1].w);
  Weight max_w = std::max(p.result.compressed_edges[0].w,
                          p.result.compressed_edges[1].w);
  EXPECT_EQ(min_w, 2u);
  EXPECT_EQ(max_w, 3u);
}

// Type 4: identical (equal-length) chains counted for Table I.
TEST(ChainNodes, IdenticalChainsCounted) {
  // Three parallel length-2 chains 0-{2,3,4}-1 plus K4 scaffolding.
  CsrGraph g = test::make_graph(
      9, {{5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},
          {0, 5}, {0, 6}, {1, 7}, {1, 8},
          {0, 2}, {2, 1}, {0, 3}, {3, 1}, {0, 4}, {4, 1}});
  Pass p(g);
  EXPECT_EQ(p.result.stats.through_chains, 3u);
  // Chains via 2, 3, 4 all have length 2: two of them are "identical
  // chains" beyond the first, each contributing its 1 member.
  EXPECT_EQ(p.result.stats.identical_chain_nodes, 2u);
}

TEST(ChainNodes, WholePathComponentKeepsOneAnchor) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  Pass p(g);
  NodeId kept = 0;
  for (NodeId v = 0; v < 4; ++v) kept += p.present[v];
  EXPECT_EQ(kept, 1u);
  EXPECT_EQ(p.result.stats.removed, 3u);
}

TEST(ChainNodes, WholeCycleComponentKeepsOneAnchor) {
  CsrGraph g = test::make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  Pass p(g);
  NodeId kept = 0;
  for (NodeId v = 0; v < 5; ++v) kept += p.present[v];
  EXPECT_EQ(kept, 1u);
  ASSERT_EQ(p.ledger.chains().size(), 1u);
  EXPECT_TRUE(p.ledger.chains()[0].cycle());
  EXPECT_EQ(p.ledger.chains()[0].total, 5u);
}

TEST(ChainNodes, SingleLeafPendant) {
  CsrGraph g =
      test::make_graph(5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {0, 4}});
  Pass p(g);
  // Leaves 3 and 4 are two single-member pendant chains.
  EXPECT_EQ(p.result.stats.pendant_chains, 2u);
  EXPECT_FALSE(p.present[3]);
  EXPECT_FALSE(p.present[4]);
}

TEST(ChainNodes, K2ComponentKeepsOneEnd) {
  CsrGraph g = test::make_graph(2, {{0, 1}});
  Pass p(g);
  EXPECT_EQ(int(p.present[0]) + int(p.present[1]), 1);
  EXPECT_EQ(p.result.stats.removed, 1u);
}

TEST(ChainNodes, PinnedNodeBreaksChain) {
  // Path 0-1-2-3-4 between two K4-anchored hubs would normally compress
  // fully; pinning node 2 (as anchor of a record removing the isolated
  // dummy node 9) forces two shorter through chains around it.
  CsrGraph g = test::make_graph(
      10, {{5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},
           {0, 5}, {0, 6}, {4, 7}, {4, 8},
           {0, 1}, {1, 2}, {2, 3}, {3, 4}});
  std::vector<std::uint8_t> present(10, 1);
  ReductionLedger ledger(10);
  ledger.record_redundant(9, std::vector<NodeId>{2},
                          std::vector<Weight>{1});
  present[9] = 0;
  ChainPassResult r = remove_chain_nodes(g, present, ledger);
  EXPECT_TRUE(present[2]);  // pinned survives
  EXPECT_FALSE(present[1]);
  EXPECT_FALSE(present[3]);
  EXPECT_EQ(r.stats.through_chains, 2u);
}

TEST(ChainNodes, WeightedPendantOffsets) {
  // K4 hub {0,1,2,5}; weighted pendant chain 0 -2- 3 -3- 4.
  CsrGraph g = test::make_graph(
      6, {{0, 1}, {0, 2}, {0, 5}, {1, 2}, {1, 5}, {2, 5},
          {0, 3, 2}, {3, 4, 3}});
  Pass p(g);
  ASSERT_EQ(p.ledger.chains().size(), 1u);
  const ChainRecord& r = p.ledger.chains()[0];
  EXPECT_TRUE(r.pendant());
  EXPECT_EQ(r.offsets, (std::vector<Dist>{2, 5}));
}

}  // namespace
}  // namespace brics
