#include <gtest/gtest.h>

#include <map>

#include "core/brics.hpp"
#include "core/farness.hpp"
#include "core/quality.hpp"
#include "core/sampling.hpp"
#include "tests/test_helpers.hpp"
#include "util/rng.hpp"

namespace brics {
namespace {

TEST(WeightedSampling, ExactCountDistinctSorted) {
  Rng rng(5);
  std::vector<double> w{1, 2, 3, 4, 5, 6, 7, 8};
  for (std::uint32_t k : {0u, 1u, 4u, 8u}) {
    auto s = weighted_sample_without_replacement(w, k, rng);
    EXPECT_EQ(s.size(), k);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    std::set<std::uint32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
  }
}

TEST(WeightedSampling, HeavyItemsSampledMoreOften) {
  Rng rng(9);
  std::vector<double> w{1.0, 1.0, 1.0, 10.0};
  int heavy_hits = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    auto s = weighted_sample_without_replacement(w, 1, rng);
    if (s[0] == 3) ++heavy_hits;
  }
  // P(heavy) = 10/13 ~ 0.77.
  EXPECT_GT(heavy_hits, trials * 6 / 10);
  EXPECT_LT(heavy_hits, trials * 9 / 10);
}

TEST(WeightedSampling, ZeroWeightsOnlyWhenForced) {
  Rng rng(3);
  std::vector<double> w{0.0, 5.0, 0.0, 5.0};
  for (int t = 0; t < 50; ++t) {
    auto s = weighted_sample_without_replacement(w, 2, rng);
    EXPECT_EQ(s, (std::vector<std::uint32_t>{1, 3}));
  }
  auto s = weighted_sample_without_replacement(w, 4, rng);
  EXPECT_EQ(s.size(), 4u);
}

TEST(WeightedSampling, RejectsOversampleAndNegative) {
  Rng rng(1);
  std::vector<double> w{1.0, 2.0};
  EXPECT_THROW(weighted_sample_without_replacement(w, 3, rng),
               CheckFailure);
  std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW(weighted_sample_without_replacement(neg, 1, rng),
               CheckFailure);
}

TEST(SampleStrategy, DegreeWeightedPrefersHubsAsBaselineSources) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 400, 7}.build();
  EstimateOptions o;
  o.sample_rate = 0.1;
  o.strategy = SampleStrategy::kDegreeWeighted;
  auto est = estimate_random_sampling(g, o);
  // Mean degree of the exactly-computed (sampled) nodes must exceed the
  // graph's mean degree.
  double deg_sampled = 0.0, count = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (est.exact[v]) {
      deg_sampled += g.degree(v);
      ++count;
    }
  const double mean_all =
      2.0 * double(g.num_edges()) / double(g.num_nodes());
  EXPECT_GT(deg_sampled / count, mean_all * 1.5);
}

class StrategyProperty : public ::testing::TestWithParam<test::RandomGraphCase> {
};

TEST_P(StrategyProperty, DegreeWeightedBricsFullRateStillExact) {
  CsrGraph g = GetParam().build();
  auto actual = exact_farness(g);
  EstimateOptions o;
  o.sample_rate = 1.0;
  o.strategy = SampleStrategy::kDegreeWeighted;
  auto est = estimate_brics(g, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!est.exact[v]) continue;
    ASSERT_NEAR(est.farness[v], double(actual[v]), 1e-6) << v;
  }
}

TEST_P(StrategyProperty, DegreeWeightedQualityReasonable) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 50) return;
  auto actual = exact_farness(g);
  EstimateOptions o;
  o.sample_rate = 0.4;
  o.seed = 17;
  o.strategy = SampleStrategy::kDegreeWeighted;
  auto est = estimate_brics(g, o);
  QualityReport q = quality(est.farness, actual);
  EXPECT_GT(q.quality, 0.6);
  EXPECT_LT(q.quality, 1.6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrategyProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
