// Streaming two-pass construction tests: TwoPassBuilder must produce the
// same graph as the buffered GraphBuilder on every edge soup (parallel
// edges, self loops, weights, kGrow node discovery), divergent replays must
// raise InputError instead of writing out of bounds, the streaming file
// loaders must match a direct build, and the streamed R-MAT generator must
// reproduce the materialised one bit-for-bit from the same seed.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "exec/errors.hpp"
#include "gen/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/metis_io.hpp"
#include "graph/stream_build.hpp"
#include "tests/test_helpers.hpp"
#include "util/rng.hpp"

namespace brics {
namespace {

CsrGraph two_pass(NodeId n, const std::vector<Edge>& edges,
                  AdjacencyStorage storage = AdjacencyStorage::kPlain) {
  TwoPassBuilder b(n);
  for (const Edge& e : edges) b.count_edge(e.u, e.v, e.w);
  b.begin_scatter();
  for (const Edge& e : edges) b.scatter_edge(e.u, e.v, e.w);
  return b.finish(storage);
}

TEST(TwoPassBuilder, MatchesBufferedBuilderOnEdgeSoup) {
  // Parallel edges (min weight wins), self loops (dropped), duplicates in
  // both orientations — the canonicalisation cases GraphBuilder handles.
  const std::vector<Edge> edges = {{0, 1, 5}, {1, 0, 2}, {2, 2, 1},
                                   {1, 2, 3}, {2, 1, 3}, {3, 0, 7},
                                   {0, 3, 9}, {3, 4, 1}, {4, 4, 8}};
  GraphBuilder legacy(5);
  legacy.add_edges(edges);
  const CsrGraph expect = legacy.build();
  EXPECT_TRUE(test::graphs_equal(two_pass(5, edges), expect));
  EXPECT_TRUE(test::graphs_equal(
      two_pass(5, edges, AdjacencyStorage::kCompact), expect));
}

TEST(TwoPassBuilder, MatchesBufferedBuilderOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    Rng rng(seed);
    const CsrGraph src = erdos_renyi(300, 900, rng);
    std::vector<Edge> edges;
    for (NodeId u = 0; u < src.num_nodes(); ++u)
      src.for_neighbors(u, [&](NodeId v, Weight w) {
        if (u < v) edges.push_back({u, v, w});
      });
    GraphBuilder legacy(src.num_nodes());
    legacy.add_edges(edges);
    const CsrGraph expect = legacy.build();
    EXPECT_TRUE(test::graphs_equal(two_pass(src.num_nodes(), edges), expect))
        << seed;
  }
}

TEST(TwoPassBuilder, GrowModeDiscoversNodeCount) {
  TwoPassBuilder b(TwoPassBuilder::kGrow);
  b.count_edge(0, 1);
  b.count_edge(5, 2);
  EXPECT_EQ(b.num_nodes(), 6u);
  b.begin_scatter();
  b.scatter_edge(0, 1);
  b.scatter_edge(5, 2);
  const CsrGraph g = b.finish();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(3), 0u);  // ids 3 and 4 exist but are isolated
}

TEST(TwoPassBuilder, DivergentReplayRaisesNotCorrupts) {
  {
    // Extra edge in pass 2: the bounded row cursor detects the overflow.
    TwoPassBuilder b(4);
    b.count_edge(0, 1);
    b.begin_scatter();
    b.scatter_edge(0, 1);
    EXPECT_THROW(b.scatter_edge(0, 2), InputError);
  }
  {
    // Missing edge in pass 2: finish() verifies every cursor landed.
    TwoPassBuilder b(4);
    b.count_edge(0, 1);
    b.count_edge(1, 2);
    b.begin_scatter();
    b.scatter_edge(0, 1);
    EXPECT_THROW(b.finish(), InputError);
  }
}

// A read-only streambuf with no seek support: tellg() on it returns -1,
// which forces read_edge_list onto its buffered (edge-vector) fallback.
class UnseekableBuf : public std::streambuf {
 public:
  explicit UnseekableBuf(std::string data) : data_(std::move(data)) {
    setg(data_.data(), data_.data(), data_.data() + data_.size());
  }

 private:
  std::string data_;
};

TEST(StreamingLoaders, StreamingPathMatchesBufferedFallback) {
  // The loader interns raw ids first-seen-first, so the reproduction
  // target is not id preservation but path equivalence: the rewindable
  // two-pass streaming parse and the non-seekable buffered fallback must
  // produce the identical graph from the identical byte stream.
  const CsrGraph src =
      test::RandomGraphCase{"twins_and_chains", 250, 3}.build();
  std::stringstream ss;
  write_edge_list(src, ss);
  const std::string bytes = ss.str();

  const CsrGraph streamed = read_edge_list(ss, ConnectPolicy::kKeepAsIs);
  UnseekableBuf ub(bytes);
  std::istream unseekable(&ub);
  ASSERT_EQ(unseekable.tellg(), std::istream::pos_type(-1));
  const CsrGraph buffered =
      read_edge_list(unseekable, ConnectPolicy::kKeepAsIs);
  EXPECT_TRUE(test::graphs_equal(streamed, buffered));
  EXPECT_EQ(streamed.num_nodes(), src.num_nodes());
  EXPECT_EQ(streamed.num_edges(), src.num_edges());

  // kCompact must be a pure storage choice: same bytes, same interning,
  // same graph — only the backend differs.
  ss.clear();
  ss.seekg(0);
  const CsrGraph compact = read_edge_list(ss, ConnectPolicy::kKeepAsIs,
                                          AdjacencyStorage::kCompact);
  EXPECT_EQ(compact.storage(), AdjacencyStorage::kCompact);
  EXPECT_TRUE(test::graphs_equal(compact, streamed));
}

TEST(StreamingLoaders, MetisMatchesDirectBuild) {
  const CsrGraph g = test::RandomGraphCase{"grid_subdivided", 200, 5}.build();
  std::stringstream ss;
  write_metis(g, ss);
  EXPECT_TRUE(test::graphs_equal(read_metis(ss), g));
  ss.clear();
  ss.seekg(0);
  const CsrGraph compact = read_metis(ss, AdjacencyStorage::kCompact);
  EXPECT_EQ(compact.storage(), AdjacencyStorage::kCompact);
  EXPECT_TRUE(test::graphs_equal(compact, g));
}

TEST(StreamingLoaders, FirstSeenInterningSurvivesStreamingPath) {
  // Raw ids must densify in first-appearance order — the contract the
  // golden outputs rely on. (A regression here once came from unspecified
  // argument evaluation order, so pin it with an explicit fixture.)
  std::stringstream ss("7 3\n3 9\n9 7\n");
  const CsrGraph g = read_edge_list(ss, ConnectPolicy::kKeepAsIs);
  ASSERT_EQ(g.num_nodes(), 3u);
  // 7 -> 0, 3 -> 1, 9 -> 2; edges {0,1}, {1,2}, {2,0}.
  Weight w = 0;
  EXPECT_TRUE(g.find_edge(0, 1, w));
  EXPECT_TRUE(g.find_edge(1, 2, w));
  EXPECT_TRUE(g.find_edge(2, 0, w));
}

TEST(StreamedRmat, ReproducesMaterialisedRmatBitForBit) {
  for (std::uint64_t seed : {1u, 42u}) {
    Rng rng(seed);
    const CsrGraph legacy = rmat(10, 8, 0.57, 0.19, 0.19, rng);
    const CsrGraph streamed = rmat_streamed(10, 8, 0.57, 0.19, 0.19, seed);
    EXPECT_TRUE(test::graphs_equal(streamed, legacy)) << seed;
    const CsrGraph compact =
        rmat_streamed(10, 8, 0.57, 0.19, 0.19, seed,
                      AdjacencyStorage::kCompact);
    EXPECT_EQ(compact.storage(), AdjacencyStorage::kCompact);
    EXPECT_TRUE(test::graphs_equal(compact, legacy)) << seed;
  }
}

}  // namespace
}  // namespace brics
