#include <gtest/gtest.h>

#include "reduce/ledger.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

TEST(Ledger, IdenticalResolution) {
  ReductionLedger l(4);
  l.record_identical(/*node=*/2, /*rep=*/1, /*self_dist=*/2);
  std::vector<Dist> dist{5, 3, kInfDist, 7};
  l.resolve(dist);
  EXPECT_EQ(dist[2], 3u);  // copies the representative
}

TEST(Ledger, IdenticalSelfDistWhenSourceIsRep) {
  ReductionLedger l(3);
  l.record_identical(2, 1, 2);
  std::vector<Dist> dist{4, 0, kInfDist};  // source is node 1 (the rep)
  l.resolve(dist);
  EXPECT_EQ(dist[2], 2u);
}

TEST(Ledger, PendantChainResolution) {
  ReductionLedger l(5);
  ChainRecord r;
  r.u = 0;
  r.v = kInvalidNode;
  r.members = {2, 3, 4};
  r.offsets = {1, 2, 3};
  l.record_chain(std::move(r));
  std::vector<Dist> dist{6, 9, kInfDist, kInfDist, kInfDist};
  l.resolve(dist);
  EXPECT_EQ(dist[2], 7u);
  EXPECT_EQ(dist[3], 8u);
  EXPECT_EQ(dist[4], 9u);
}

TEST(Ledger, ThroughChainResolutionTakesMin) {
  ReductionLedger l(5);
  ChainRecord r;
  r.u = 0;
  r.v = 1;
  r.total = 4;
  r.members = {2, 3, 4};
  r.offsets = {1, 2, 3};
  l.record_chain(std::move(r));
  // d(u)=10, d(v)=0: member i sits at min(10+i, 0+4-i).
  std::vector<Dist> dist{10, 0, kInfDist, kInfDist, kInfDist};
  l.resolve(dist);
  EXPECT_EQ(dist[2], 3u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_EQ(dist[4], 1u);
}

TEST(Ledger, CycleChainResolution) {
  ReductionLedger l(4);
  ChainRecord r;
  r.u = 0;
  r.v = 0;
  r.total = 4;
  r.members = {1, 2, 3};
  r.offsets = {1, 2, 3};
  l.record_chain(std::move(r));
  std::vector<Dist> dist{5, kInfDist, kInfDist, kInfDist};
  l.resolve(dist);
  EXPECT_EQ(dist[1], 6u);  // 5 + min(1, 3)
  EXPECT_EQ(dist[2], 7u);  // 5 + min(2, 2)
  EXPECT_EQ(dist[3], 6u);  // 5 + min(3, 1)
}

TEST(Ledger, RedundantResolution) {
  ReductionLedger l(5);
  l.record_redundant(4, std::vector<NodeId>{0, 1, 2},
                     std::vector<Weight>{1, 1, 1});
  std::vector<Dist> dist{7, 3, 9, 1, kInfDist};
  l.resolve(dist);
  EXPECT_EQ(dist[4], 4u);  // min(7,3,9) + 1
}

TEST(Ledger, WeightedRedundantResolution) {
  ReductionLedger l(4);
  l.record_redundant(3, std::vector<NodeId>{0, 1},
                     std::vector<Weight>{5, 2});
  std::vector<Dist> dist{1, 6, 0, kInfDist};
  l.resolve(dist);
  EXPECT_EQ(dist[3], 6u);  // min(1+5, 6+2)
}

TEST(Ledger, CascadedResolutionReverseOrder) {
  // Chain anchored at 1; later 1 is removed as a twin of 0. Resolution must
  // fill 1 first (last record), then the chain members from it.
  ReductionLedger l(4);
  ChainRecord r;
  r.u = 1;
  r.v = kInvalidNode;
  r.members = {2, 3};
  r.offsets = {1, 2};
  l.record_chain(std::move(r));
  EXPECT_THROW(l.record_identical(1, 0, 2), CheckFailure);  // 1 is pinned
}

TEST(Ledger, UnreachableAnchorStaysUnreachable) {
  ReductionLedger l(3);
  ChainRecord r;
  r.u = 0;
  r.v = kInvalidNode;
  r.members = {1, 2};
  r.offsets = {1, 2};
  l.record_chain(std::move(r));
  std::vector<Dist> dist{kInfDist, kInfDist, kInfDist};
  l.resolve(dist);
  EXPECT_EQ(dist[1], kInfDist);
  EXPECT_EQ(dist[2], kInfDist);
}

TEST(Ledger, ResolveSubsetAppliesOnlySelectedRecords) {
  ReductionLedger l(5);
  l.record_identical(1, 0, 2);
  l.record_identical(3, 2, 2);
  std::vector<Dist> dist{4, kInfDist, 6, kInfDist, 0};
  std::vector<std::uint32_t> only_second{1};
  l.resolve_subset(dist, only_second);
  EXPECT_EQ(dist[3], 6u);
  EXPECT_EQ(dist[1], kInfDist);  // first record untouched
}

TEST(Ledger, RejectsDoubleRemoval) {
  ReductionLedger l(3);
  l.record_identical(1, 0, 2);
  EXPECT_THROW(l.record_identical(1, 2, 2), CheckFailure);
}

TEST(Ledger, RejectsRemovedRep) {
  ReductionLedger l(3);
  l.record_identical(1, 0, 2);
  EXPECT_THROW(l.record_identical(2, 1, 2), CheckFailure);
}

TEST(Ledger, RejectsRemovingPinnedAnchor) {
  ReductionLedger l(3);
  l.record_identical(1, 0, 2);  // pins 0
  EXPECT_THROW(l.record_identical(0, 2, 2), CheckFailure);
  EXPECT_TRUE(l.pinned(0));
  EXPECT_FALSE(l.pinned(2));
}

TEST(Ledger, CountsRemoved) {
  ReductionLedger l(6);
  EXPECT_EQ(l.num_removed(), 0u);
  l.record_identical(1, 0, 2);
  ChainRecord r;
  r.u = 0;
  r.v = kInvalidNode;
  r.members = {2, 3};
  r.offsets = {1, 2};
  l.record_chain(std::move(r));
  l.record_redundant(4, std::vector<NodeId>{0}, std::vector<Weight>{1});
  EXPECT_EQ(l.num_removed(), 4u);
  EXPECT_TRUE(l.removed(1));
  EXPECT_TRUE(l.removed(2));
  EXPECT_TRUE(l.removed(4));
  EXPECT_FALSE(l.removed(0));
  EXPECT_EQ(l.order().size(), 3u);
}

}  // namespace
}  // namespace brics
