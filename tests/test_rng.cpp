#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace brics {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= v == -2;
    hi |= v == 2;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(SampleWithoutReplacement, ExactCountDistinctSorted) {
  Rng rng(9);
  for (std::uint32_t n : {10u, 100u, 1000u}) {
    for (std::uint32_t k : {0u, 1u, n / 3, n - 1, n}) {
      auto s = sample_without_replacement(n, k, rng);
      EXPECT_EQ(s.size(), k);
      EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      std::set<std::uint32_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (auto v : s) EXPECT_LT(v, n);
    }
  }
}

TEST(SampleWithoutReplacement, RejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(sample_without_replacement(5, 6, rng), CheckFailure);
}

TEST(SampleWithoutReplacement, RoughlyUniform) {
  Rng rng(13);
  std::vector<int> hits(10, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t)
    for (auto v : sample_without_replacement(10, 3, rng)) ++hits[v];
  for (int h : hits) {
    EXPECT_GT(h, trials * 3 / 10 * 7 / 10);
    EXPECT_LT(h, trials * 3 / 10 * 13 / 10);
  }
}

TEST(Shuffle, PermutesAllElements) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  shuffle(v, rng);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Mix64, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace brics
