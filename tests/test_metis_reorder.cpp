#include <gtest/gtest.h>

#include <sstream>

#include "graph/metis_io.hpp"
#include "graph/reorder.hpp"
#include "tests/test_helpers.hpp"
#include "exec/errors.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

TEST(MetisIo, ReadsUnweighted) {
  // Triangle 1-2-3 in METIS 1-indexed format.
  std::istringstream in(
      "% a comment\n"
      "3 3\n"
      "2 3\n"
      "1 3\n"
      "1 2\n");
  CsrGraph g = read_metis(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(MetisIo, ReadsWeighted) {
  std::istringstream in(
      "2 1 1\n"
      "2 7\n"
      "1 7\n");
  CsrGraph g = read_metis(in);
  EXPECT_EQ(g.edge_weight(0, 1), 7u);
}

TEST(MetisIo, RejectsEdgeCountMismatch) {
  std::istringstream in(
      "3 5\n"
      "2 3\n"
      "1 3\n"
      "1 2\n");
  EXPECT_THROW(read_metis(in), InputError);
}

TEST(MetisIo, RejectsOutOfRangeNeighbour) {
  std::istringstream in(
      "2 1\n"
      "3\n"
      "1\n");
  EXPECT_THROW(read_metis(in), InputError);
}

TEST(MetisIo, RejectsMissingLines) {
  std::istringstream in("3 3\n2 3\n");
  EXPECT_THROW(read_metis(in), InputError);
}

TEST(MetisIo, RoundTrip) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 80, 3}.build();
  std::stringstream buf;
  write_metis(g, buf);
  CsrGraph h = read_metis(buf);
  EXPECT_EQ(h.edge_list(), g.edge_list());
}

TEST(MetisIo, RoundTripWeighted) {
  CsrGraph g = test::make_graph(4, {{0, 1, 3}, {1, 2, 5}, {2, 3}, {3, 0}});
  std::stringstream buf;
  write_metis(g, buf);
  CsrGraph h = read_metis(buf);
  EXPECT_EQ(h.edge_list(), g.edge_list());
}

TEST(Reorder, DegreeOrderPutsHubsFirst) {
  CsrGraph g = test::make_graph(
      5, {{0, 1}, {2, 0}, {2, 1}, {2, 3}, {2, 4}});
  Permutation p = degree_order(g);
  EXPECT_EQ(p.old_of[0], 2u);  // degree-4 hub gets id 0
  p.validate();
}

TEST(Reorder, BfsOrderIsPermutation) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 150, 7}.build();
  Permutation p = bfs_order(g);
  p.validate();
}

TEST(Reorder, ToOriginalRoundTrips) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 60, 5}.build();
  Permutation p = degree_order(g);
  std::vector<int> by_new(g.num_nodes());
  for (NodeId nw = 0; nw < g.num_nodes(); ++nw)
    by_new[nw] = static_cast<int>(p.old_of[nw]) * 10;
  auto by_old = p.to_original(by_new);
  for (NodeId old = 0; old < g.num_nodes(); ++old)
    EXPECT_EQ(by_old[old], static_cast<int>(old) * 10);
}

class ReorderProperty : public ::testing::TestWithParam<test::RandomGraphCase> {
};

TEST_P(ReorderProperty, PermutationPreservesDistances) {
  CsrGraph g = GetParam().build();
  for (auto make : {bfs_order, degree_order}) {
    Permutation p = make(g);
    CsrGraph h = apply_permutation(g, p);
    EXPECT_EQ(h.num_edges(), g.num_edges());
    Rng rng(GetParam().seed + 1);
    for (int i = 0; i < 5; ++i) {
      NodeId s = NodeId(rng.below(g.num_nodes()));
      auto dg = sssp_distances(g, s);
      auto dh = sssp_distances(h, p.new_of[s]);
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        ASSERT_EQ(dg[v], dh[p.new_of[v]]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReorderProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
