// Parallel-efficiency layer (obs/parallel.hpp): derivation math on
// hand-built tables, slot collection from a registry, the slot-aliasing
// regression (set_threads raised above the slot count fixed at process
// start), and snapshot/writer concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "brics/brics.hpp"
#include "util/parallel.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace brics {
namespace {

// ---- derive_parallel_stats: pure math on hand-assembled tables ----------

TEST(ParallelStats, DeriveHandComputedValues) {
  std::vector<ThreadWork> table(2);
  table[0].slot = 0;
  table[0].busy_s = 2.0;
  table[0].edges = 100;
  table[1].slot = 1;
  table[1].busy_s = 1.0;
  table[1].edges = 50;
  ParallelStats s = derive_parallel_stats(table, 2);
  EXPECT_EQ(s.threads, 2);
  ASSERT_EQ(s.per_thread.size(), 2u);
  EXPECT_DOUBLE_EQ(s.busy_total_s, 3.0);
  EXPECT_DOUBLE_EQ(s.busy_max_s, 2.0);
  EXPECT_DOUBLE_EQ(s.busy_mean_s, 1.5);
  EXPECT_DOUBLE_EQ(s.imbalance, 2.0 / 1.5);
  EXPECT_DOUBLE_EQ(s.speedup, 1.5);
  EXPECT_DOUBLE_EQ(s.efficiency, 0.75);
}

TEST(ParallelStats, DerivePerfectBalance) {
  std::vector<ThreadWork> table(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    table[i].slot = i;
    table[i].busy_s = 0.5;
  }
  ParallelStats s = derive_parallel_stats(table, 4);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(s.speedup, 4.0);
  EXPECT_DOUBLE_EQ(s.efficiency, 1.0);
}

TEST(ParallelStats, DeriveEmptyTableIsAllZero) {
  ParallelStats s = derive_parallel_stats({}, 8);
  EXPECT_EQ(s.threads, 8);
  EXPECT_TRUE(s.per_thread.empty());
  EXPECT_DOUBLE_EQ(s.busy_total_s, 0.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(s.speedup, 0.0);
  EXPECT_DOUBLE_EQ(s.efficiency, 0.0);
}

TEST(ParallelStats, DeriveSingleActiveThread) {
  std::vector<ThreadWork> table(1);
  table[0].busy_s = 1.0;
  ParallelStats s = derive_parallel_stats(table, 2);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(s.speedup, 1.0);
  EXPECT_DOUBLE_EQ(s.efficiency, 0.5);  // one of two configured threads busy
}

TEST(ParallelStats, DeriveZeroThreadsFallsBackToActiveCount) {
  std::vector<ThreadWork> table(2);
  table[0].busy_s = 1.0;
  table[1].busy_s = 1.0;
  ParallelStats s = derive_parallel_stats(table, 0);
  EXPECT_DOUBLE_EQ(s.speedup, 2.0);
  EXPECT_DOUBLE_EQ(s.efficiency, 1.0);  // denominator = active threads
}

TEST(ParallelStats, DeriveIgnoresIdleSlotsInMean) {
  // A slot with counters but no busy time (e.g. cancelled before the timer
  // ticked) contributes to totals but not to the active-thread mean.
  std::vector<ThreadWork> table(2);
  table[0].busy_s = 2.0;
  table[1].busy_s = 0.0;
  table[1].edges = 10;
  ParallelStats s = derive_parallel_stats(table, 2);
  EXPECT_DOUBLE_EQ(s.busy_mean_s, 2.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
}

#if BRICS_METRICS_ENABLED

// ---- collect_parallel_stats: slot reads out of a registry ---------------

TEST(ParallelStats, CollectReadsPerSlotAttribution) {
  MetricsRegistry reg;
  Counter& busy = reg.counter("traverse.busy_ns");
  Counter& edges = reg.counter("traverse.edges_relaxed");
  Counter& srcs = reg.counter("traverse.bfs_sources");
#ifdef _OPENMP
#pragma omp parallel num_threads(2)
  {
    const std::uint64_t tid =
        static_cast<std::uint64_t>(omp_get_thread_num());
    busy.add(1'000'000 * (tid + 1));  // 1ms and 2ms
    edges.add(10 * (tid + 1));
    srcs.add(1);
  }
  ParallelStats s = collect_parallel_stats(reg, 2);
  ASSERT_EQ(s.per_thread.size(), 2u);
  EXPECT_EQ(s.per_thread[0].slot, 0u);
  EXPECT_EQ(s.per_thread[1].slot, 1u);
  EXPECT_DOUBLE_EQ(s.per_thread[0].busy_s, 1e-3);
  EXPECT_DOUBLE_EQ(s.per_thread[1].busy_s, 2e-3);
  EXPECT_EQ(s.per_thread[0].edges, 10u);
  EXPECT_EQ(s.per_thread[1].edges, 20u);
  EXPECT_EQ(s.per_thread[0].sources, 1u);
  EXPECT_DOUBLE_EQ(s.imbalance, 2e-3 / 1.5e-3);
#else
  busy.add(1'000'000);
  edges.add(10);
  srcs.add(1);
  ParallelStats s = collect_parallel_stats(reg, 1);
  ASSERT_EQ(s.per_thread.size(), 1u);
  EXPECT_DOUBLE_EQ(s.per_thread[0].busy_s, 1e-3);
#endif
}

TEST(ParallelStats, CollectEmptyRegistryIsEmpty) {
  MetricsRegistry reg;
  ParallelStats s = collect_parallel_stats(reg, 4);
  EXPECT_TRUE(s.per_thread.empty());
  EXPECT_EQ(s.threads, 4);
}

TEST(ParallelStats, CollectFromRealEstimateRun) {
  MetricsRegistry::global().reset();
  CsrGraph g = build_dataset("road-grid-a", 0.05);
  EstimateOptions o;
  o.sample_rate = 0.3;
  estimate_farness(g, o);
  ParallelStats s =
      collect_parallel_stats(MetricsRegistry::global(), max_threads());
  ASSERT_FALSE(s.per_thread.empty());
  EXPECT_GT(s.busy_total_s, 0.0);
  std::uint64_t sources = 0, edges = 0;
  for (const ThreadWork& w : s.per_thread) {
    sources += w.sources;
    edges += w.edges;
  }
  EXPECT_GT(sources, 0u);
  EXPECT_GT(edges, 0u);
}

TEST(RunReportParallel, TwoThreadRunPopulatesParallelSection) {
  set_threads(2);
  MetricsRegistry::global().reset();
  CsrGraph g = build_dataset("road-grid-a", 0.05);
  EstimateOptions o;
  o.sample_rate = 0.3;
  EstimateResult est = estimate_farness(g, o);
  RunReport r = make_run_report("test", "@road-grid-a", g, o, "cumulative",
                                est, est.times.total_s);
  EXPECT_EQ(r.parallel.threads, max_threads());
  ASSERT_FALSE(r.parallel.per_thread.empty());
  EXPECT_GT(r.parallel.busy_total_s, 0.0);
  EXPECT_GE(r.parallel.imbalance, 1.0);
  const std::string js = to_json(r);
  EXPECT_NE(js.find("\"parallel\""), std::string::npos);
  EXPECT_NE(js.find("\"per_thread\""), std::string::npos);
  set_threads(thread_ceiling());  // restore a generous default
}

// ---- Slot aliasing regression -------------------------------------------
//
// The slot count is fixed at process start (metric_thread_slots() ==
// thread_ceiling()). Raising the thread count past it must clamp, so two
// OpenMP threads can never share a slot and single-writer exactness holds.

TEST(MetricSlots, SetThreadsClampsToSlotCount) {
  const std::size_t slots = metric_thread_slots();
  EXPECT_EQ(slots, static_cast<std::size_t>(thread_ceiling()));
  const int before = max_threads();
  set_threads(static_cast<int>(2 * slots));
  EXPECT_LE(static_cast<std::size_t>(max_threads()), slots);
  set_threads(before);
}

TEST(MetricSlots, CountsStayExactAfterThreadRaise) {
  const int before = max_threads();
  set_threads(2 * thread_ceiling());  // clamped, not aliased
  MetricsRegistry reg;
  Counter& c = reg.counter("test.aliasing");
  constexpr int kIters = 100000;
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) c.add(1);
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kIters));
  set_threads(before);
}

// ---- Snapshot concurrency -----------------------------------------------

TEST(MetricSlots, SnapshotDuringParallelWritesIsMonotonic) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.concurrent");
  std::atomic<bool> done{false};
  std::atomic<bool> monotonic{true};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t v = reg.snapshot().counters.at("test.concurrent");
      if (v < last) monotonic.store(false, std::memory_order_relaxed);
      last = v;
    }
  });
  constexpr int kIters = 200000;
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) c.add(1);
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(monotonic.load());
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kIters));
}

TEST(MetricSlots, SnapshotDuringEstimateDoesNotCrash) {
  MetricsRegistry::global().reset();
  std::atomic<bool> done{false};
  std::atomic<int> snaps{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      MetricsSnapshot s = MetricsRegistry::global().snapshot();
      (void)s;
      snaps.fetch_add(1, std::memory_order_relaxed);
    }
  });
  CsrGraph g = build_dataset("road-grid-a", 0.05);
  EstimateOptions o;
  o.sample_rate = 0.3;
  estimate_farness(g, o);
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(snaps.load(), 0);
}

#endif  // BRICS_METRICS_ENABLED

}  // namespace
}  // namespace brics
