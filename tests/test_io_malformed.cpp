// Adversarial-input tests for the graph loaders: every malformed file must
// surface as a typed InputError — never undefined behaviour, silent
// wraparound, or a CheckFailure masquerading as a library bug. Also covers
// the io.* fail points (docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "graph/graph_io.hpp"
#include "graph/metis_io.hpp"

namespace brics {
namespace {

CsrGraph parse_edges(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

CsrGraph parse_metis(const std::string& text) {
  std::istringstream in(text);
  return read_metis(in);
}

// ---------------------------------------------------------------- edge list

TEST(MalformedEdgeList, NegativeNodeId) {
  // operator>> on unsigned would wrap -3 to ~2^64; the strict parser must
  // reject the sign outright.
  EXPECT_THROW(parse_edges("0 1\n2 -3\n"), InputError);
}

TEST(MalformedEdgeList, NegativeWeight) {
  EXPECT_THROW(parse_edges("0 1 -5\n"), InputError);
}

TEST(MalformedEdgeList, ZeroWeight) {
  EXPECT_THROW(parse_edges("0 1 0\n"), InputError);
}

TEST(MalformedEdgeList, WeightOverflowsU32) {
  EXPECT_THROW(parse_edges("0 1 4294967296\n"), InputError);
}

TEST(MalformedEdgeList, NodeIdOverflowsU64) {
  EXPECT_THROW(parse_edges("0 99999999999999999999999\n"), InputError);
}

TEST(MalformedEdgeList, GarbageToken) {
  EXPECT_THROW(parse_edges("0 1\nfoo bar\n"), InputError);
}

TEST(MalformedEdgeList, HexAndFloatTokensRejected) {
  EXPECT_THROW(parse_edges("0x1 2\n"), InputError);
  EXPECT_THROW(parse_edges("0 1.5\n"), InputError);
}

TEST(MalformedEdgeList, MissingEndpoint) {
  EXPECT_THROW(parse_edges("0 1\n7\n"), InputError);
}

TEST(MalformedEdgeList, TrailingTokens) {
  EXPECT_THROW(parse_edges("0 1 2 3\n"), InputError);
}

TEST(MalformedEdgeList, PlusSignRejected) {
  EXPECT_THROW(parse_edges("0 +1\n"), InputError);
}

TEST(MalformedEdgeList, LargeRawIdsAreInterned) {
  // Raw ids above 2^32 are fine as long as the number of DISTINCT ids fits
  // NodeId; they are remapped densely.
  CsrGraph g = parse_edges("99999999999 5\n5 7\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(MalformedEdgeList, CommentsAndBlanksStillSkipped) {
  CsrGraph g = parse_edges("# header\n% other style\n\n0 1\n");
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(MalformedEdgeList, MissingFile) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/brics-no-such-file.txt"),
               InputError);
}

// -------------------------------------------------------------------- METIS

TEST(MalformedMetis, EmptyInput) {
  EXPECT_THROW(parse_metis(""), InputError);
}

TEST(MalformedMetis, GarbageHeader) {
  EXPECT_THROW(parse_metis("three four\n"), InputError);
}

TEST(MalformedMetis, NegativeHeaderCount) {
  EXPECT_THROW(parse_metis("-3 2\n"), InputError);
}

TEST(MalformedMetis, HeaderNodeCountOverflowsNodeId) {
  // 2^32 - 1 is the kInvalidNode sentinel; n must stay below it.
  EXPECT_THROW(parse_metis("4294967295 0\n"), InputError);
}

TEST(MalformedMetis, UnsupportedFormatCode) {
  EXPECT_THROW(parse_metis("2 1 11\n2\n1\n"), InputError);
}

TEST(MalformedMetis, NegativeNeighbour) {
  EXPECT_THROW(parse_metis("2 1\n-2\n1\n"), InputError);
}

TEST(MalformedMetis, MissingWeightInWeightedMode) {
  EXPECT_THROW(parse_metis("2 1 1\n2\n1 7\n"), InputError);
}

TEST(MalformedMetis, ZeroWeight) {
  EXPECT_THROW(parse_metis("2 1 1\n2 0\n1 0\n"), InputError);
}

TEST(MalformedMetis, TruncatedAdjacency) {
  EXPECT_THROW(parse_metis("3 2\n2 3\n1\n"), InputError);
}

TEST(MalformedMetis, AsymmetricAdjacency) {
  // Node 1 lists 2 but node 2 lists 3: endpoint count matches 2*m yet the
  // adjacency is not symmetric.
  EXPECT_THROW(parse_metis("3 2\n2 3\n3\n1\n"), InputError);
}

// -------------------------------------------------------- loader fail points

TEST(IoFailPoints, EdgeListSiteFires) {
  ScopedFailPoint fp("io.edge_list");
  EXPECT_THROW(parse_edges("0 1\n"), FailPointError);
}

TEST(IoFailPoints, MetisSiteFires) {
  ScopedFailPoint fp("io.metis");
  EXPECT_THROW(parse_metis("2 1\n2\n1\n"), FailPointError);
}

TEST(IoFailPoints, DisarmedSiteIsFree) {
  {
    ScopedFailPoint fp("io.edge_list");
  }  // disarmed on scope exit
  EXPECT_NO_THROW(parse_edges("0 1\n"));
}

}  // namespace
}  // namespace brics
