// Cross-backend equality: the compact (delta+varint) adjacency backend
// must be an observationally invisible storage change. Every kernel, both
// measures, the standard random-graph classes, and multiple sampling rates
// (including 1.0) are run on plain and compact storage and compared
// bit-for-bit — EXPECT_EQ on the double vectors, no tolerance. A reorder
// round trip (BFS and degree orderings, results mapped back through the
// permutation) rides along at rate 1.0, where the source set is the whole
// graph and therefore permutation-invariant.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/brics.hpp"
#include "graph/reorder.hpp"
#include "measures/betweenness.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

CsrGraph case_graph(const std::string& recipe) {
  return test::RandomGraphCase{recipe, 260, 11}.build();
}

EstimateResult run(const CsrGraph& g, const EstimateOptions& opts) {
  return opts.measure == Measure::kBetweenness ? estimate_betweenness(g, opts)
                                               : estimate_farness(g, opts);
}

std::vector<double> run_compact(const CsrGraph& g, EstimateOptions opts) {
  CsrGraph gc = g;
  gc.compress();
  opts.storage = AdjacencyStorage::kCompact;
  return run(gc, opts).farness;
}

struct EqualityCase {
  std::string recipe;
  KernelChoice kernel;
};

class CompactEquality : public ::testing::TestWithParam<EqualityCase> {};

TEST_P(CompactEquality, FarnessBitIdenticalAcrossRates) {
  const EqualityCase& p = GetParam();
  const CsrGraph g = case_graph(p.recipe);
  for (double rate : {0.3, 1.0}) {
    EstimateOptions opts;
    opts.sample_rate = rate;
    opts.kernel = p.kernel;
    const EstimateResult plain = run(g, opts);
    EXPECT_EQ(plain.farness, run_compact(g, opts))
        << p.recipe << " kernel=" << to_string(p.kernel) << " rate=" << rate;
  }
}

TEST_P(CompactEquality, BetweennessBitIdenticalAtFullRate) {
  const EqualityCase& p = GetParam();
  const CsrGraph g = case_graph(p.recipe);
  EstimateOptions opts;
  opts.measure = Measure::kBetweenness;
  opts.sample_rate = 1.0;
  opts.kernel = p.kernel;
  const EstimateResult plain = run(g, opts);
  EXPECT_EQ(plain.farness, run_compact(g, opts))
      << p.recipe << " kernel=" << to_string(p.kernel);
}

std::vector<EqualityCase> equality_cases() {
  std::vector<EqualityCase> out;
  for (const char* recipe :
       {"erdos_renyi", "tree", "twins_and_chains", "grid_subdivided",
        "web_copy"})
    for (KernelChoice k : {KernelChoice::kAuto, KernelChoice::kBfs,
                           KernelChoice::kDial, KernelChoice::kBatched})
      out.push_back({recipe, k});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    GraphClassesTimesKernels, CompactEquality,
    ::testing::ValuesIn(equality_cases()),
    [](const ::testing::TestParamInfo<EqualityCase>& info) {
      return info.param.recipe + "_" + to_string(info.param.kernel);
    });

// Weighted graphs drive the Dial kernel's weight decoding; cover it beyond
// the unit-weight recipes above.
TEST(CompactEqualityWeighted, DialOnSubdividedWeightsBitIdentical) {
  Rng rng(17);
  CsrGraph g = grid2d(12, 12, 0.85, rng);
  g = make_connected(subdivide_edges(g, 0.7, 2, 9, rng));
  for (double rate : {0.4, 1.0}) {
    EstimateOptions opts;
    opts.sample_rate = rate;
    const EstimateResult plain = run(g, opts);
    EXPECT_EQ(plain.farness, run_compact(g, opts)) << rate;
  }
}

// Random-sampling baseline (no reduction, no BCC) through the compact
// backend — the estimator the paper's Alg. 1 comparisons run.
TEST(CompactEqualityBaseline, RandomSamplingBitIdentical) {
  const CsrGraph g = case_graph("erdos_renyi");
  EstimateOptions opts;
  opts.sample_rate = 0.5;
  opts.reduce = ReduceOptions{false, false, false};
  opts.use_bcc = false;
  const EstimateResult plain = run(g, opts);
  EXPECT_EQ(plain.farness, run_compact(g, opts));
}

// Reorder round trip: estimate on the permuted graph (plain and compact),
// map the values back with Permutation::to_original, compare against the
// unpermuted run. Rate 1.0 with reduction and BCC off makes every value an
// exact integer distance sum — permutation-invariant bit-for-bit. (The
// full pipeline's ledger reconstruction is order-sensitive in its float
// arithmetic, so reduced runs only match approximately under reordering.)
TEST(CompactEqualityReorder, PermutedRunsMapBackBitIdentical) {
  const CsrGraph g = case_graph("twins_and_chains");
  EstimateOptions opts;
  opts.sample_rate = 1.0;
  opts.reduce = ReduceOptions{false, false, false};
  opts.use_bcc = false;
  const std::vector<double> base = run(g, opts).farness;
  for (const Permutation& p : {bfs_order(g), degree_order(g)}) {
    const CsrGraph pg = apply_permutation(g, p);
    EXPECT_EQ(p.to_original(run(pg, opts).farness), base);
    EXPECT_EQ(p.to_original(run_compact(pg, opts)), base);
  }
}

}  // namespace
}  // namespace brics
