#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(Connectivity, SingleComponent) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  Components c = connected_components(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, CountsComponentsAndSizes) {
  CsrGraph g = test::make_graph(7, {{0, 1}, {2, 3}, {3, 4}});
  Components c = connected_components(g);
  EXPECT_EQ(c.count, 4u);  // {0,1}, {2,3,4}, {5}, {6}
  std::vector<NodeId> sizes = c.sizes;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<NodeId>{1, 1, 2, 3}));
}

TEST(Connectivity, LargestComponentExtraction) {
  CsrGraph g = test::make_graph(7, {{0, 1}, {2, 3}, {3, 4}, {4, 2}});
  SubgraphMap sub = largest_component(g);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_TRUE(is_connected(sub.graph));
  // Mapping consistency.
  for (NodeId i = 0; i < sub.graph.num_nodes(); ++i)
    EXPECT_EQ(sub.to_new[sub.to_old[i]], i);
}

TEST(Connectivity, MakeConnectedAddsMinimalEdges) {
  CsrGraph g = test::make_graph(6, {{0, 1}, {2, 3}, {4, 5}});
  CsrGraph h = make_connected(g);
  EXPECT_TRUE(is_connected(h));
  EXPECT_EQ(h.num_edges(), g.num_edges() + 2);  // 3 components -> +2 edges
}

TEST(Connectivity, MakeConnectedNoOpWhenConnected) {
  CsrGraph g = test::make_graph(3, {{0, 1}, {1, 2}});
  CsrGraph h = make_connected(g);
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(Connectivity, InducedSubgraphKeepsInternalEdgesOnly) {
  CsrGraph g =
      test::make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}});
  std::vector<NodeId> keep = {1, 2, 3};
  SubgraphMap sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // 1-2, 2-3, 1-3
  EXPECT_EQ(sub.to_new[0], kInvalidNode);
}

TEST(Connectivity, InducedSubgraphPreservesWeights) {
  CsrGraph g = test::make_graph(4, {{0, 1, 5}, {1, 2, 7}, {2, 3}});
  std::vector<NodeId> keep = {1, 2};
  SubgraphMap sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.edge_weight(0, 1), 7u);
}

}  // namespace
}  // namespace brics
