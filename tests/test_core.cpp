#include <gtest/gtest.h>

#include <cmath>

#include "core/brics.hpp"
#include "core/farness.hpp"
#include "core/quality.hpp"
#include "core/sampling.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(ExactFarness, PathGraph) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  auto f = exact_farness(g);
  EXPECT_EQ(f, (std::vector<FarnessSum>{6, 4, 4, 6}));
  EXPECT_EQ(exact_farness_of(g, 0), 6u);
}

TEST(ExactFarness, StarGraphCentreIsClosest) {
  CsrGraph g = test::make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  auto f = exact_farness(g);
  EXPECT_EQ(f[0], 4u);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_EQ(f[leaf], 7u);
}

TEST(ExactFarness, CompleteGraphAllEqual) {
  CsrGraph g = test::make_graph(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  auto f = exact_farness(g);
  for (auto v : f) EXPECT_EQ(v, 3u);
}

TEST(Quality, ExactEstimateScoresOne) {
  std::vector<FarnessSum> actual{10, 20, 30};
  std::vector<double> est{10.0, 20.0, 30.0};
  QualityReport q = quality(est, actual);
  EXPECT_DOUBLE_EQ(q.quality, 1.0);
  EXPECT_DOUBLE_EQ(q.max_abs_err, 0.0);
}

TEST(Quality, ReportsDeviation) {
  std::vector<FarnessSum> actual{10, 10};
  std::vector<double> est{11.0, 9.0};
  QualityReport q = quality(est, actual);
  EXPECT_DOUBLE_EQ(q.quality, 1.0);  // symmetric errors average out
  EXPECT_NEAR(q.mean_abs_err, 0.1, 1e-12);
  EXPECT_NEAR(q.max_abs_err, 0.1, 1e-12);
}

TEST(Quality, RejectsZeroActual) {
  std::vector<FarnessSum> actual{0};
  std::vector<double> est{1.0};
  EXPECT_THROW(quality(est, actual), CheckFailure);
}

// ---- Full-rate oracles: sampling every node must give exact farness. ----

class EstimatorOracle : public ::testing::TestWithParam<test::RandomGraphCase> {
 protected:
  static EstimateOptions full_rate() {
    EstimateOptions o;
    o.sample_rate = 1.0;
    o.seed = 11;
    return o;
  }
};

TEST_P(EstimatorOracle, RandomSamplingFullRateIsExact) {
  CsrGraph g = GetParam().build();
  auto actual = exact_farness(g);
  auto est = estimate_random_sampling(g, full_rate());
  ASSERT_EQ(est.farness.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(est.exact[v]);
    EXPECT_DOUBLE_EQ(est.farness[v], static_cast<double>(actual[v])) << v;
  }
}

TEST_P(EstimatorOracle, ReducedSamplingFullRateExactOnPresentNodes) {
  CsrGraph g = GetParam().build();
  auto actual = exact_farness(g);
  EstimateOptions o = full_rate();
  auto est = estimate_reduced_sampling(g, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!est.exact[v]) continue;  // removed nodes stay estimates
    EXPECT_DOUBLE_EQ(est.farness[v], static_cast<double>(actual[v])) << v;
  }
  // At full rate every present node is exact, plus the removed nodes whose
  // closed-form refinement rests on an exact anchor (twins, pendant and
  // cycle chain members).
  EXPECT_GE(static_cast<NodeId>(std::count(est.exact.begin(),
                                           est.exact.end(), 1)),
            est.reduce_stats.reduced_nodes);
}

TEST_P(EstimatorOracle, BricsFullRateExactOnPresentNodes) {
  CsrGraph g = GetParam().build();
  auto actual = exact_farness(g);
  EstimateOptions o = full_rate();
  auto est = estimate_brics(g, o);
  NodeId exact_count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!est.exact[v]) continue;
    ++exact_count;
    EXPECT_NEAR(est.farness[v], static_cast<double>(actual[v]), 1e-6)
        << "node " << v;
  }
  EXPECT_GE(exact_count, est.reduce_stats.reduced_nodes);
}

TEST_P(EstimatorOracle, RefinedRemovedNodesExactAtFullRate) {
  // Twins and pendant/cycle chain members are exact whenever their anchor
  // is exact — at full rate, every anchor is.
  CsrGraph g = GetParam().build();
  auto actual = exact_farness(g);
  EstimateOptions o = full_rate();
  auto est = estimate_brics(g, o);
  ReducedGraph rg = reduce(g, o.reduce);
  for (const IdenticalRecord& r : rg.ledger.identical()) {
    EXPECT_TRUE(est.exact[r.node]);
    EXPECT_NEAR(est.farness[r.node], static_cast<double>(actual[r.node]),
                1e-6)
        << "twin " << r.node;
  }
  for (const ChainRecord& c : rg.ledger.chains()) {
    if (!c.pendant() && !c.cycle()) continue;
    for (NodeId m : c.members) {
      EXPECT_TRUE(est.exact[m]);
      EXPECT_NEAR(est.farness[m], static_cast<double>(actual[m]), 1e-6)
          << "chain member " << m;
    }
  }
}

TEST_P(EstimatorOracle, BricsEstimatesAreFiniteAndPositive) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 2) return;
  EstimateOptions o;
  o.sample_rate = 0.3;
  o.seed = 23;
  auto est = estimate_brics(g, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(std::isfinite(est.farness[v])) << v;
    EXPECT_GT(est.farness[v], 0.0) << v;
  }
}

TEST_P(EstimatorOracle, BricsModerateRateQualityIsReasonable) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 20) return;
  auto actual = exact_farness(g);
  EstimateOptions o;
  o.sample_rate = 0.5;
  o.seed = 31;
  auto est = estimate_brics(g, o);
  QualityReport q = quality(est.farness, actual);
  // Generous envelope: catches sign errors, double counting, unit slips.
  EXPECT_GT(q.quality, 0.5) << "quality collapsed";
  EXPECT_LT(q.quality, 2.0) << "quality exploded";
}

TEST_P(EstimatorOracle, RemovedNodeEstimatesTrackActual) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 20) return;
  auto actual = exact_farness(g);
  EstimateOptions o = full_rate();
  auto est = estimate_brics(g, o);
  // Removed nodes are estimated; at full block sampling their cross-block
  // part is exact and intra is a scaled mean — demand sane tracking.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (est.exact[v]) continue;
    double ar = est.farness[v] / static_cast<double>(actual[v]);
    EXPECT_GT(ar, 0.3) << "node " << v;
    EXPECT_LT(ar, 3.0) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EstimatorOracle,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

// ---- Deterministic small-case sanity. ----

TEST(Estimators, TwoNodeGraph) {
  CsrGraph g = test::make_graph(2, {{0, 1}});
  EstimateOptions o;
  o.sample_rate = 1.0;
  auto est = estimate_brics(g, o);
  // One node survives reduction; both farness values must be 1.
  EXPECT_NEAR(est.farness[0], 1.0, 1e-9);
  EXPECT_NEAR(est.farness[1], 1.0, 1e-9);
}

TEST(Estimators, TriangleExactEverywhere) {
  CsrGraph g = test::make_graph(3, {{0, 1}, {1, 2}, {2, 0}});
  EstimateOptions o;
  o.sample_rate = 1.0;
  auto est = estimate_brics(g, o);
  for (NodeId v = 0; v < 3; ++v) EXPECT_NEAR(est.farness[v], 2.0, 1e-9);
}

TEST(Estimators, SampleRateValidation) {
  CsrGraph g = test::make_graph(3, {{0, 1}, {1, 2}});
  EstimateOptions o;
  o.sample_rate = 0.0;
  EXPECT_THROW(estimate_random_sampling(g, o), CheckFailure);
  o.sample_rate = 1.5;
  EXPECT_THROW(estimate_random_sampling(g, o), CheckFailure);
}

TEST(Estimators, DispatchHonoursUseBcc) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 80, 3}.build();
  EstimateOptions o;
  o.sample_rate = 1.0;
  o.use_bcc = true;
  EXPECT_GT(estimate_farness(g, o).num_blocks, 0u);
  o.use_bcc = false;
  EXPECT_EQ(estimate_farness(g, o).num_blocks, 0u);
}

}  // namespace
}  // namespace brics
