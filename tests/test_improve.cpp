#include <gtest/gtest.h>

#include "core/farness.hpp"
#include "extensions/improve.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(ImproveCloseness, PathEndpointJumpsToCentre) {
  // Path 0-1-2-3-4-5-6: the best single edge for node 0 links far down the
  // path; farness must drop strictly.
  CsrGraph g = test::make_graph(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  ImproveOptions o;
  o.budget = 1;
  ImproveResult r = improve_closeness(g, 0, o);
  ASSERT_EQ(r.added.size(), 1u);
  EXPECT_LT(r.farness.back(), r.initial_farness);
  // The optimal target on a path from an endpoint is around 2/3 down.
  EXPECT_GE(r.added[0], 3u);
}

TEST(ImproveCloseness, MonotoneDecrease) {
  CsrGraph g = test::RandomGraphCase{"grid_subdivided", 120, 3}.build();
  ImproveOptions o;
  o.budget = 4;
  ImproveResult r = improve_closeness(g, 0, o);
  FarnessSum prev = r.initial_farness;
  for (FarnessSum f : r.farness) {
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(ImproveCloseness, ReportedFarnessMatchesGraph) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 90, 7}.build();
  ImproveOptions o;
  o.budget = 2;
  ImproveResult r = improve_closeness(g, 5, o);
  if (!r.farness.empty()) {
    EXPECT_EQ(r.farness.back(), exact_farness_of(r.graph, 5));
  }
  EXPECT_EQ(r.graph.num_edges(), g.num_edges() + r.added.size());
}

TEST(ImproveCloseness, GreedyFirstPickIsOptimal) {
  // Exhaustively verify the first greedy pick on a small graph.
  CsrGraph g = test::RandomGraphCase{"sparse_erdos_renyi", 40, 11}.build();
  const NodeId v = 0;
  ImproveOptions o;
  o.budget = 1;
  ImproveResult r = improve_closeness(g, v, o);
  if (r.added.empty()) GTEST_SKIP() << "no improving edge";
  FarnessSum best = ~FarnessSum{0};
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == v || g.has_edge(u, v)) continue;
    GraphBuilder b(g.num_nodes());
    b.add_edges(g.edge_list());
    b.add_edge(u, v);
    best = std::min(best, exact_farness_of(b.build(), v));
  }
  EXPECT_EQ(r.farness.back(), best);
}

TEST(ImproveCloseness, CandidatePoolLimitsWork) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 200, 5}.build();
  ImproveOptions o;
  o.budget = 1;
  o.candidate_pool = 10;
  ImproveResult r = improve_closeness(g, 3, o);
  // Improvement not guaranteed from 10 random candidates, but if an edge
  // was added it must help.
  if (!r.added.empty()) {
    EXPECT_LT(r.farness.back(), r.initial_farness);
  }
}

TEST(ImproveCloseness, StopsWhenNoGain) {
  // Star centre: already adjacent to everyone; no edge can help.
  CsrGraph g = test::make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  ImproveOptions o;
  o.budget = 3;
  ImproveResult r = improve_closeness(g, 0, o);
  EXPECT_TRUE(r.added.empty());
}

}  // namespace
}  // namespace brics
