// Betweenness subsystem (src/measures/): the exact oracle on hand-checked
// graphs, the decomposed pipeline against the oracle at full sampling —
// bitwise on unique-shortest-path graph classes, 1e-9-relative in general —
// bitwise kernel-insensitivity, the closed-form ledger corrections for
// peeled pendant chains, and sampled-mode sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "gen/dataset.hpp"
#include "gen/generators.hpp"
#include "graph/connectivity.hpp"
#include "measures/betweenness.hpp"
#include "measures/brandes.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

using test::make_graph;

EstimateOptions bc_opts(double rate = 1.0) {
  EstimateOptions opts;
  opts.measure = Measure::kBetweenness;
  opts.sample_rate = rate;
  opts.seed = 7;
  return opts;
}

void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& want, const char* tag) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v)
    ASSERT_EQ(got[v], want[v]) << tag << " node " << v;
}

void expect_close(const std::vector<double>& got,
                  const std::vector<double>& want, const char* tag) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    const double tol = 1e-9 * std::max(1.0, std::abs(want[v]));
    ASSERT_NEAR(got[v], want[v], tol) << tag << " node " << v;
  }
}

// ---------------------------------------------------------------------------
// Exact oracle on hand-checked graphs (unnormalized, ordered pairs).
// ---------------------------------------------------------------------------

TEST(Betweenness, OracleHandValuesPath4) {
  // 0-1-2-3: each interior node carries the two ordered pairs that span it
  // plus the far endpoint's pairs.
  const CsrGraph g = make_graph(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  const std::vector<double> bc = exact_betweenness(g);
  EXPECT_EQ(bc[0], 0.0);
  EXPECT_EQ(bc[1], 4.0);  // (0,2),(0,3),(2,0),(3,0)
  EXPECT_EQ(bc[2], 4.0);
  EXPECT_EQ(bc[3], 0.0);
}

TEST(Betweenness, OracleHandValuesStar) {
  const CsrGraph g =
      make_graph(5, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 1}});
  const std::vector<double> bc = exact_betweenness(g);
  EXPECT_EQ(bc[0], 12.0);  // 4 * 3 ordered leaf pairs
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(bc[v], 0.0);
}

TEST(Betweenness, OracleHandValuesBowtie) {
  // Two triangles sharing node 2: only cross pairs route through it.
  const CsrGraph g = make_graph(5, {{0, 1, 1},
                                    {0, 2, 1},
                                    {1, 2, 1},
                                    {2, 3, 1},
                                    {2, 4, 1},
                                    {3, 4, 1}});
  const std::vector<double> bc = exact_betweenness(g);
  EXPECT_EQ(bc[2], 8.0);  // 2 * 2 cross pairs, both directions
  for (NodeId v : {0u, 1u, 3u, 4u}) EXPECT_EQ(bc[v], 0.0);
}

TEST(Betweenness, OracleSplitsEqualPaths) {
  // 4-cycle: each (u, u+2) pair has two shortest paths, half a pair per
  // intermediate and direction.
  const CsrGraph g =
      make_graph(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}});
  const std::vector<double> bc = exact_betweenness(g);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(bc[v], 1.0);
}

// ---------------------------------------------------------------------------
// Flat sampled estimator: at k == n it IS the oracle, bit for bit.
// ---------------------------------------------------------------------------

TEST(Betweenness, FlatFullRateIsOracleBitwise) {
  Rng rng(11);
  const CsrGraph g = make_connected(erdos_renyi(150, 450, rng));
  const std::vector<double> oracle = exact_betweenness(g);
  EstimateOptions opts = bc_opts(1.0);
  opts.use_bcc = false;
  const EstimateResult res = estimate_betweenness(g, opts);
  EXPECT_EQ(res.measure, Measure::kBetweenness);
  expect_bitwise(res.farness, oracle, "flat");
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(res.exact[v], 1);
}

// ---------------------------------------------------------------------------
// Decomposed pipeline vs oracle at sample rate 1.0.
// ---------------------------------------------------------------------------

struct PipelineCase {
  const char* name;
  bool integer_sigma;  // unique shortest paths => bitwise oracle equality
};

class BetweennessPipeline : public ::testing::TestWithParam<PipelineCase> {};

CsrGraph build_case(const std::string& name) {
  Rng rng(29);
  if (name == "tree")
    return make_connected(random_tree(180, rng));
  if (name == "tree_chains") {
    CsrGraph g = random_tree(90, rng);
    return make_connected(attach_pendant_chains(g, 25, 1, 6, rng));
  }
  if (name == "cliques_pendants") {
    // Disjoint cliques bridged through a path, pendants attached: every
    // pair has a unique shortest path (cliques are distance-1 inside).
    GraphBuilder b(23);
    auto clique = [&](NodeId base) {
      for (NodeId i = 0; i < 5; ++i)
        for (NodeId j = i + 1; j < 5; ++j) b.add_edge(base + i, base + j, 1);
    };
    clique(0);
    clique(5);
    clique(10);
    b.add_edge(4, 15, 1);   // bridge node chain: 4-15-16-5
    b.add_edge(15, 16, 1);
    b.add_edge(16, 5, 1);
    b.add_edge(9, 10, 1);
    for (NodeId i = 0; i < 6; ++i) b.add_edge(i, 17 + i, 1);  // pendants
    return b.build();
  }
  if (name == "twins_and_chains") {
    CsrGraph g = barabasi_albert(60, 2, rng);
    g = plant_twins(g, 20, rng);
    return make_connected(attach_pendant_chains(g, 15, 1, 5, rng));
  }
  if (name == "grid_subdivided") {
    CsrGraph g = grid2d(7, 7, 0.9, rng);
    return make_connected(subdivide_edges(g, 0.5, 1, 3, rng));
  }
  return make_connected(build_dataset(name, 0.03));
}

TEST_P(BetweennessPipeline, FullRateMatchesOracle) {
  const PipelineCase& c = GetParam();
  const CsrGraph g = build_case(c.name);
  ASSERT_GE(g.num_nodes(), 3u);
  const std::vector<double> oracle = exact_betweenness(g);
  const EstimateResult res = estimate_betweenness(g, bc_opts(1.0));
  EXPECT_EQ(res.measure, Measure::kBetweenness);
  EXPECT_FALSE(res.degraded);
  if (c.integer_sigma)
    expect_bitwise(res.farness, oracle, c.name);
  else
    expect_close(res.farness, oracle, c.name);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(res.exact[v], 1) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(
    GraphClasses, BetweennessPipeline,
    ::testing::Values(PipelineCase{"tree", true},
                      PipelineCase{"tree_chains", true},
                      PipelineCase{"cliques_pendants", true},
                      PipelineCase{"twins_and_chains", false},
                      PipelineCase{"grid_subdivided", false},
                      PipelineCase{"web-copy-a", false},
                      PipelineCase{"soc-rmat", false},
                      PipelineCase{"com-part-a", false},
                      PipelineCase{"road-rural", false}),
    [](const auto& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

// ---------------------------------------------------------------------------
// Kernel insensitivity: the quantized accumulation makes the pipeline
// bitwise identical under every kernel choice (and hence every schedule).
// ---------------------------------------------------------------------------

TEST(Betweenness, CrossKernelBitEquality) {
  const CsrGraph g = build_case("web-copy-a");
  std::vector<std::vector<double>> runs;
  for (KernelChoice k : {KernelChoice::kAuto, KernelChoice::kBfs,
                         KernelChoice::kDial, KernelChoice::kBatched}) {
    EstimateOptions opts = bc_opts(1.0);
    opts.kernel = k;
    runs.push_back(estimate_betweenness(g, opts).farness);
  }
  for (std::size_t i = 1; i < runs.size(); ++i)
    expect_bitwise(runs[i], runs[0], "kernel");
}

// ---------------------------------------------------------------------------
// Ledger closed forms: peeled pendant-chain members carry pure forced-pair
// counts — integers, so they match the oracle bitwise even on graphs where
// sigma is fractional elsewhere. Random trees and cliques-with-pendants are
// the issue's named property classes.
// ---------------------------------------------------------------------------

TEST(Betweenness, RemovedChainMembersExactOnRandomTrees) {
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    Rng rng(seed);
    const CsrGraph g = make_connected(random_tree(120, rng));
    const std::vector<double> oracle = exact_betweenness(g);
    const EstimateResult res = estimate_betweenness(g, bc_opts(1.0));
    const ReducedGraph rg = reduce(g, bc_reduce_options({}));
    ASSERT_GT(rg.ledger.num_removed(), 0u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!rg.ledger.removed(v)) continue;
      ASSERT_EQ(res.farness[v], oracle[v]) << "removed node " << v;
      ASSERT_EQ(res.exact[v], 1);
    }
  }
}

TEST(Betweenness, RemovedChainMembersExactOnCliquesWithPendants) {
  const CsrGraph g = build_case("cliques_pendants");
  const std::vector<double> oracle = exact_betweenness(g);
  const EstimateResult res = estimate_betweenness(g, bc_opts(1.0));
  const ReducedGraph rg = reduce(g, bc_reduce_options({}));
  ASSERT_GT(rg.ledger.num_removed(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!rg.ledger.removed(v)) continue;
    ASSERT_EQ(res.farness[v], oracle[v]) << "removed node " << v;
    ASSERT_EQ(res.exact[v], 1);
  }
}

// The measure must refuse sigma-breaking reductions regardless of what the
// caller configured.
TEST(Betweenness, ReduceOptionsForcePendantOnly) {
  ReduceOptions req;
  req.identical = true;
  req.redundant = true;
  const ReduceOptions r = bc_reduce_options(req);
  EXPECT_FALSE(r.identical);
  EXPECT_FALSE(r.redundant);
  EXPECT_TRUE(r.pendant_only);
}

// ---------------------------------------------------------------------------
// Sampled mode: deterministic, non-negative, degradation-flagged, and
// close on aggregate mass.
// ---------------------------------------------------------------------------

TEST(Betweenness, SampledEstimateSanity) {
  const CsrGraph g = build_case("web-copy-a");
  const std::vector<double> oracle = exact_betweenness(g);
  const EstimateResult res = estimate_betweenness(g, bc_opts(0.3));
  double est_total = 0.0, oracle_total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_GE(res.farness[v], 0.0) << "node " << v;
    est_total += res.farness[v];
    oracle_total += oracle[v];
  }
  ASSERT_GT(oracle_total, 0.0);
  EXPECT_NEAR(est_total / oracle_total, 1.0, 0.35);
  // Two runs with the same seed are identical (quantized accumulation).
  const EstimateResult res2 = estimate_betweenness(g, bc_opts(0.3));
  expect_bitwise(res2.farness, res.farness, "repeat");
}

TEST(Betweenness, SourceCapFlagsPlanDegradation) {
  const CsrGraph g = build_case("web-copy-a");
  EstimateOptions opts = bc_opts(1.0);
  opts.use_bcc = false;
  opts.budget.max_sources = 10;
  const EstimateResult res = estimate_betweenness(g, opts);
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.cut_phase, ExecPhase::kPlan);
  EXPECT_EQ(res.samples, 10u);
}

// ---------------------------------------------------------------------------
// Dispatcher.
// ---------------------------------------------------------------------------

TEST(Betweenness, EstimateCentralityDispatches) {
  const CsrGraph g = build_case("tree_chains");
  EstimateOptions opts = bc_opts(1.0);
  EXPECT_EQ(estimate_centrality(g, opts).measure, Measure::kBetweenness);
  opts.measure = Measure::kFarness;
  EXPECT_EQ(estimate_centrality(g, opts).measure, Measure::kFarness);
}

}  // namespace
}  // namespace brics
