// Tests for the deadline-aware execution layer: CancelToken / RunBudget
// semantics, fail-point mechanics, graceful degradation of every estimator
// under source caps, tiny deadlines, and injected reduction/BCC faults —
// and the guarantee that a generous budget changes nothing at all.
#include <gtest/gtest.h>

#include <cmath>

#include "brics/brics.hpp"
#include "core/pivoting.hpp"
#include "exec/budget.hpp"
#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

bool all_finite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

// --------------------------------------------------------------- primitives

TEST(CancelToken, DefaultNeverCancels) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.poll());
}

TEST(CancelToken, ManualCancelSticks) {
  CancelToken t;
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(t.poll());
}

TEST(CancelToken, ZeroTimeoutMeansNoDeadline) {
  CancelToken t(0);
  EXPECT_FALSE(t.poll());
}

TEST(CancelToken, ExpiredDeadlineFiresOnPoll) {
  CancelToken t(1);
  // Burn past the 1 ms deadline without sleeping primitives.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  while (std::chrono::steady_clock::now() < until) {
  }
  EXPECT_TRUE(t.poll());
  EXPECT_TRUE(t.cancelled());
}

TEST(RunBudget, UnlimitedDetection) {
  RunBudget b;
  EXPECT_TRUE(b.unlimited());
  b.timeout_ms = 5;
  EXPECT_FALSE(b.unlimited());
  b = RunBudget{};
  b.max_sources = 3;
  EXPECT_FALSE(b.unlimited());
}

TEST(FailPoints, UnarmedSiteDoesNotFire) {
  EXPECT_FALSE(FailPointRegistry::instance().should_fail("exec.test.never"));
}

TEST(FailPoints, ArmDisarmCycle) {
  auto& reg = FailPointRegistry::instance();
  reg.arm("exec.test.a");
  EXPECT_TRUE(reg.should_fail("exec.test.a"));
  EXPECT_FALSE(reg.should_fail("exec.test.other"));
  reg.disarm("exec.test.a");
  EXPECT_FALSE(reg.should_fail("exec.test.a"));
}

TEST(FailPoints, CountdownSkipsHits) {
  auto& reg = FailPointRegistry::instance();
  reg.arm("exec.test.count", /*skip_hits=*/2);
  EXPECT_FALSE(reg.should_fail("exec.test.count"));
  EXPECT_FALSE(reg.should_fail("exec.test.count"));
  EXPECT_TRUE(reg.should_fail("exec.test.count"));
  reg.disarm("exec.test.count");
}

TEST(FailPoints, ScopedDisarmsOnExit) {
  {
    ScopedFailPoint fp("exec.test.scoped");
    EXPECT_TRUE(FailPointRegistry::instance().should_fail("exec.test.scoped"));
  }
  EXPECT_FALSE(FailPointRegistry::instance().should_fail("exec.test.scoped"));
}

// --------------------------------------------- generous budget is invisible

TEST(Budget, GenerousBudgetIsBitIdentical) {
  for (const auto& c : test::standard_cases()) {
    CsrGraph g = c.build();
    EstimateOptions plain;
    plain.sample_rate = 0.3;
    EstimateOptions budgeted = plain;
    budgeted.budget.timeout_ms = 60'000;
    budgeted.budget.max_sources = g.num_nodes();

    EstimateResult a = estimate_farness(g, plain);
    EstimateResult b = estimate_farness(g, budgeted);
    EXPECT_FALSE(a.degraded);
    EXPECT_FALSE(b.degraded) << c.name;
    EXPECT_EQ(b.cut_phase, ExecPhase::kNone);
    ASSERT_EQ(a.farness.size(), b.farness.size());
    for (std::size_t v = 0; v < a.farness.size(); ++v)
      EXPECT_EQ(a.farness[v], b.farness[v]) << c.name << " node " << v;
  }
}

TEST(Budget, GenerousBudgetRandomSamplingBitIdentical) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 300, 11}.build();
  EstimateOptions plain;
  plain.sample_rate = 0.25;
  EstimateOptions budgeted = plain;
  budgeted.budget.timeout_ms = 60'000;
  EstimateResult a = estimate_random_sampling(g, plain);
  EstimateResult b = estimate_random_sampling(g, budgeted);
  EXPECT_FALSE(b.degraded);
  ASSERT_EQ(a.farness.size(), b.farness.size());
  for (std::size_t v = 0; v < a.farness.size(); ++v)
    EXPECT_EQ(a.farness[v], b.farness[v]);
}

// ------------------------------------------------------- source-cap degrade

TEST(Budget, MaxSourcesCapDegradesDeterministically) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 400, 5}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.5;
  opts.budget.max_sources = 12;
  EstimateResult est = estimate_farness(g, opts);
  EXPECT_TRUE(est.degraded);
  EXPECT_NE(est.cut_phase, ExecPhase::kNone);
  EXPECT_LE(est.samples, est.planned_samples);
  EXPECT_GT(est.samples, 0u);
  EXPECT_GT(est.achieved_sample_rate, 0.0);
  EXPECT_LT(est.achieved_sample_rate, opts.sample_rate);
  EXPECT_TRUE(all_finite(est.farness));

  // Deterministic: same cap, same seed, same answer.
  EstimateResult again = estimate_farness(g, opts);
  ASSERT_EQ(est.farness.size(), again.farness.size());
  for (std::size_t v = 0; v < est.farness.size(); ++v)
    EXPECT_EQ(est.farness[v], again.farness[v]);
}

TEST(Budget, MaxSourcesCapKeepsEstimateUseful) {
  // A capped run still tracks exact farness loosely: mean relative error
  // stays bounded because mandatory cut traversals always complete and the
  // remainder is rescaled to the achieved sample count.
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 250, 3}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.6;
  opts.budget.max_sources = 25;
  EstimateResult est = estimate_farness(g, opts);
  EXPECT_TRUE(est.degraded);
  std::vector<FarnessSum> exact = exact_farness(g);
  double rel = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    rel += std::abs(est.farness[v] - static_cast<double>(exact[v])) /
           static_cast<double>(exact[v]);
  rel /= g.num_nodes();
  EXPECT_LT(rel, 0.6);
}

TEST(Budget, PivotingHonoursSourceCap) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 300, 9}.build();
  PivotOptions opts;
  opts.sample_rate = 0.4;
  opts.budget.max_sources = 10;
  EstimateResult est = estimate_pivoting(g, opts);
  EXPECT_TRUE(est.degraded);
  EXPECT_EQ(est.cut_phase, ExecPhase::kPlan);
  EXPECT_EQ(est.samples, 10u);
  EXPECT_TRUE(all_finite(est.farness));
}

TEST(Budget, RandomSamplingHonoursSourceCap) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 300, 9}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.4;
  opts.budget.max_sources = 7;
  EstimateResult est = estimate_random_sampling(g, opts);
  EXPECT_TRUE(est.degraded);
  EXPECT_EQ(est.cut_phase, ExecPhase::kPlan);
  EXPECT_EQ(est.samples, 7u);
  EXPECT_TRUE(all_finite(est.farness));
}

// ------------------------------------------------------ tiny-deadline degrade

TEST(Budget, TinyDeadlineStillYieldsFiniteEstimate) {
  // A 1 ms budget on a non-trivial graph: mandatory work ignores the token,
  // so the estimate must come back finite and flagged, never throw.
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 2000, 17}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.9;
  opts.budget.timeout_ms = 1;
  EstimateResult est = estimate_farness(g, opts);
  EXPECT_TRUE(all_finite(est.farness));
  EXPECT_GT(est.samples, 0u);
  if (est.degraded) {
    EXPECT_NE(est.cut_phase, ExecPhase::kNone);
    EXPECT_LE(est.achieved_sample_rate, opts.sample_rate);
  }
}

TEST(Budget, TinyDeadlinePlainSampling) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 1500, 23}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.9;
  opts.budget.timeout_ms = 1;
  EstimateResult est = estimate_random_sampling(g, opts);
  EXPECT_TRUE(all_finite(est.farness));
  EXPECT_GT(est.samples, 0u);
}

TEST(Budget, PreCancelledTokenStillCompletesMandatoryWork) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 120, 2}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.5;
  CancelToken token;
  token.cancel();
  EstimateResult est = estimate_random_sampling_budgeted(g, opts, token);
  EXPECT_TRUE(est.degraded);
  EXPECT_EQ(est.cut_phase, ExecPhase::kTraverse);
  EXPECT_EQ(est.samples, 1u);  // the mandatory first source
  EXPECT_TRUE(all_finite(est.farness));
}

// ----------------------------------------------- fault-injection fallbacks

TEST(FailPointFallback, ReductionFaultFallsBackToPlainSampling) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 300, 7}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.3;
  ScopedFailPoint fp("reduce.pipeline");
  EstimateResult est = estimate_farness(g, opts);
  EXPECT_TRUE(est.degraded);
  EXPECT_EQ(est.cut_phase, ExecPhase::kReduce);
  EXPECT_GT(est.samples, 0u);
  EXPECT_TRUE(all_finite(est.farness));
}

TEST(FailPointFallback, BccFaultFallsBackToPlainSampling) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 300, 7}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.3;
  ScopedFailPoint fp("bcc.decompose");
  EstimateResult est = estimate_farness(g, opts);
  EXPECT_TRUE(est.degraded);
  EXPECT_EQ(est.cut_phase, ExecPhase::kBcc);
  EXPECT_GT(est.samples, 0u);
  EXPECT_TRUE(all_finite(est.farness));
}

TEST(FailPointFallback, BctFaultFallsBackToPlainSampling) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 300, 7}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.3;
  ScopedFailPoint fp("bcc.bct");
  EstimateResult est = estimate_farness(g, opts);
  EXPECT_TRUE(est.degraded);
  EXPECT_EQ(est.cut_phase, ExecPhase::kBcc);
  EXPECT_TRUE(all_finite(est.farness));
}

TEST(FailPointFallback, ReducedSamplingFaultFallsBack) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 200, 13}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.3;
  ScopedFailPoint fp("reduce.pipeline");
  EstimateResult est = estimate_reduced_sampling(g, opts);
  EXPECT_TRUE(est.degraded);
  EXPECT_EQ(est.cut_phase, ExecPhase::kReduce);
  EXPECT_TRUE(all_finite(est.farness));
}

TEST(FailPointFallback, FallbackEstimateIsStillAccurate) {
  // The fallback path is plain sampling on the raw graph — an unbiased
  // estimator in its own right. Check it against exact farness.
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 250, 29}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.8;
  ScopedFailPoint fp("bcc.decompose");
  EstimateResult est = estimate_farness(g, opts);
  ASSERT_TRUE(est.degraded);
  std::vector<FarnessSum> exact = exact_farness(g);
  double rel = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    rel += std::abs(est.farness[v] - static_cast<double>(exact[v])) /
           static_cast<double>(exact[v]);
  rel /= g.num_nodes();
  EXPECT_LT(rel, 0.25);
}

}  // namespace
}  // namespace brics
