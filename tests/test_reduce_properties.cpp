// The load-bearing correctness property of the whole reduction machinery:
// for every present node s of the reduced graph, running SSSP on the reduced
// graph and resolving removed nodes through the ledger must reproduce the
// BFS distances on the original graph EXACTLY — for present and removed
// targets alike. This exercises identical/chain/redundant detection, chain
// compression, pinning, and reverse-order resolution in every combination,
// across a parameterized sweep of graph families and seeds.
#include <gtest/gtest.h>

#include "reduce/reducer.hpp"
#include "tests/test_helpers.hpp"
#include "traverse/bfs.hpp"

namespace brics {
namespace {

void expect_distances_preserved(const CsrGraph& g, const ReduceOptions& opts,
                                const std::string& label) {
  ReducedGraph rg = reduce(g, opts);
  // Ledger bookkeeping is consistent.
  NodeId present_count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NE(rg.present[v] != 0, rg.ledger.removed(v)) << label;
    present_count += rg.present[v];
  }
  EXPECT_EQ(present_count, rg.num_present) << label;
  rg.graph.validate();

  TraversalWorkspace ws_orig, ws_red;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (!rg.present[s]) continue;
    sssp(g, s, ws_orig);
    sssp(rg.graph, s, ws_red);
    std::vector<Dist> resolved(ws_red.dist().begin(), ws_red.dist().end());
    rg.ledger.resolve(resolved);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      ASSERT_EQ(resolved[v], ws_orig.dist()[v])
          << label << " source=" << s << " target=" << v
          << " present(v)=" << int(rg.present[v]);
  }
}

class ReduceProperty : public ::testing::TestWithParam<test::RandomGraphCase> {
};

TEST_P(ReduceProperty, IdenticalOnlyPreservesDistances) {
  ReduceOptions o;
  o.chains = false;
  o.redundant = false;
  expect_distances_preserved(GetParam().build(), o, "I");
}

TEST_P(ReduceProperty, ChainsOnlyPreservesDistances) {
  ReduceOptions o;
  o.identical = false;
  o.redundant = false;
  expect_distances_preserved(GetParam().build(), o, "C");
}

TEST_P(ReduceProperty, RedundantOnlyPreservesDistances) {
  ReduceOptions o;
  o.identical = false;
  o.chains = false;
  expect_distances_preserved(GetParam().build(), o, "R");
}

TEST_P(ReduceProperty, ChainsPlusRedundantPreservesDistances) {
  ReduceOptions o;
  o.identical = false;
  expect_distances_preserved(GetParam().build(), o, "C+R");
}

TEST_P(ReduceProperty, FullCumulativePreservesDistances) {
  expect_distances_preserved(GetParam().build(), ReduceOptions{}, "I+C+R");
}

TEST_P(ReduceProperty, IteratedReductionPreservesDistances) {
  ReduceOptions o;
  o.iterate = true;
  expect_distances_preserved(GetParam().build(), o, "iterated");
}

TEST_P(ReduceProperty, ReducedGraphStaysConnectedAmongPresent) {
  CsrGraph g = GetParam().build();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  // All present nodes reachable from any present node.
  NodeId s = kInvalidNode;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (rg.present[v]) {
      s = v;
      break;
    }
  ASSERT_NE(s, kInvalidNode);
  auto dist = sssp_distances(rg.graph, s);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (rg.present[v]) {
      EXPECT_NE(dist[v], kInfDist) << "present node " << v
                                   << " unreachable";
    }
  }
}

TEST_P(ReduceProperty, StatsAreConsistent) {
  CsrGraph g = GetParam().build();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  const auto& st = rg.stats;
  EXPECT_EQ(st.input_nodes, g.num_nodes());
  EXPECT_EQ(st.reduced_nodes, rg.num_present);
  EXPECT_EQ(st.identical.removed + st.chains.removed + st.redundant.removed,
            rg.ledger.num_removed());
  EXPECT_EQ(rg.num_present + rg.ledger.num_removed(), g.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReduceProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
