#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bcc/bcc.hpp"
#include "bcc/bct.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(Bcc, SingleBlockForBiconnectedGraph) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  BccResult r = biconnected_components(g);
  EXPECT_EQ(r.num_blocks(), 1u);
  EXPECT_EQ(r.block_nodes(0).size(), 4u);
  EXPECT_EQ(r.num_cut_vertices(), 0u);
}

TEST(Bcc, TwoTrianglesSharingACutVertex) {
  CsrGraph g = test::make_graph(
      5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  BccResult r = biconnected_components(g);
  EXPECT_EQ(r.num_blocks(), 2u);
  EXPECT_TRUE(r.is_cut(2));
  EXPECT_EQ(r.num_cut_vertices(), 1u);
  EXPECT_EQ(r.blocks_of(2).size(), 2u);
  EXPECT_EQ(r.blocks_of(0).size(), 1u);
}

TEST(Bcc, PathGraphEveryEdgeIsABlock) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  BccResult r = biconnected_components(g);
  EXPECT_EQ(r.num_blocks(), 3u);
  EXPECT_TRUE(r.is_cut(1));
  EXPECT_TRUE(r.is_cut(2));
  EXPECT_FALSE(r.is_cut(0));
  EXPECT_FALSE(r.is_cut(3));
}

TEST(Bcc, IsolatedPresentNodeGetsSingletonBlock) {
  CsrGraph g = test::make_graph(3, {{0, 1}});
  BccResult r = biconnected_components(g);
  EXPECT_EQ(r.num_blocks(), 2u);  // edge block + singleton {2}
  EXPECT_EQ(r.blocks_of(2).size(), 1u);
}

TEST(Bcc, PresentMaskRestrictsDecomposition) {
  CsrGraph g = test::make_graph(
      5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  std::vector<std::uint8_t> present{1, 1, 1, 0, 0};
  BccResult r = biconnected_components(g, present);
  EXPECT_EQ(r.num_blocks(), 1u);
  EXPECT_FALSE(r.is_cut(2));
  EXPECT_TRUE(r.blocks_of(3).empty());
}

TEST(Bcc, BridgeAndCycleMix) {
  // Paper Fig. 2-like: cycle {0,1,2,3}, bridge 3-4, triangle {4,5,6}.
  CsrGraph g = test::make_graph(7, {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                                    {3, 4}, {4, 5}, {5, 6}, {6, 4}});
  BccResult r = biconnected_components(g);
  EXPECT_EQ(r.num_blocks(), 3u);
  EXPECT_TRUE(r.is_cut(3));
  EXPECT_TRUE(r.is_cut(4));
  EXPECT_EQ(r.num_cut_vertices(), 2u);
  EXPECT_EQ(r.max_block_size(), 4u);
}

// Property suite: structural invariants of the decomposition.
class BccProperty : public ::testing::TestWithParam<test::RandomGraphCase> {};

TEST_P(BccProperty, EveryEdgeInExactlyOneBlock) {
  CsrGraph g = GetParam().build();
  BccResult r = biconnected_components(g);
  // Count each edge's containing blocks via node-pair membership of blocks.
  std::uint64_t edges_in_blocks = 0;
  for (BlockId b = 0; b < r.num_blocks(); ++b) {
    auto nodes = r.block_nodes(b);
    std::set<NodeId> in(nodes.begin(), nodes.end());
    for (NodeId v : nodes)
      for (NodeId w : g.neighbors(v))
        if (v < w && in.count(w)) ++edges_in_blocks;
  }
  EXPECT_EQ(edges_in_blocks, g.num_edges());
}

TEST_P(BccProperty, TwoBlocksShareAtMostOneNode) {
  CsrGraph g = GetParam().build();
  BccResult r = biconnected_components(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto bs = r.blocks_of(v);
    std::set<BlockId> uniq(bs.begin(), bs.end());
    EXPECT_EQ(uniq.size(), bs.size()) << "node " << v;
  }
  // Pairwise intersection <= 1 is implied by checking, per node pair inside
  // a block, that no other block contains both; spot-check via cut nodes.
  for (BlockId b = 0; b < r.num_blocks(); ++b) {
    auto nodes = r.block_nodes(b);
    for (std::size_t i = 0; i < std::min<std::size_t>(nodes.size(), 8); ++i)
      for (std::size_t j = i + 1;
           j < std::min<std::size_t>(nodes.size(), 8); ++j) {
        auto bi = r.blocks_of(nodes[i]);
        auto bj = r.blocks_of(nodes[j]);
        std::vector<BlockId> common;
        std::set_intersection(bi.begin(), bi.end(), bj.begin(), bj.end(),
                              std::back_inserter(common));
        EXPECT_EQ(common.size(), 1u);
      }
  }
}

TEST_P(BccProperty, CutRemovalDisconnects) {
  CsrGraph g = GetParam().build();
  BccResult r = biconnected_components(g);
  // Removing an articulation point increases the component count.
  NodeId checked = 0;
  for (NodeId v = 0; v < g.num_nodes() && checked < 5; ++v) {
    if (!r.is_cut(v)) continue;
    ++checked;
    std::vector<NodeId> keep;
    for (NodeId w = 0; w < g.num_nodes(); ++w)
      if (w != v) keep.push_back(w);
    SubgraphMap sub = induced_subgraph(g, keep);
    EXPECT_FALSE(is_connected(sub.graph)) << "cut " << v;
  }
}

TEST_P(BccProperty, NonCutRemovalKeepsConnectivity) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 3) return;
  BccResult r = biconnected_components(g);
  NodeId checked = 0;
  for (NodeId v = 0; v < g.num_nodes() && checked < 5; ++v) {
    if (r.is_cut(v)) continue;
    ++checked;
    std::vector<NodeId> keep;
    for (NodeId w = 0; w < g.num_nodes(); ++w)
      if (w != v) keep.push_back(w);
    SubgraphMap sub = induced_subgraph(g, keep);
    EXPECT_TRUE(is_connected(sub.graph)) << "non-cut " << v;
  }
}

TEST_P(BccProperty, BctIsAWellFormedRootedForest) {
  CsrGraph g = GetParam().build();
  BccResult r = biconnected_components(g);
  BlockCutTree t = build_bct(r, g.num_nodes());
  EXPECT_EQ(t.num_blocks(), r.num_blocks());
  EXPECT_EQ(t.num_cuts(), r.num_cut_vertices());
  // Connected graph -> single root.
  NodeId roots = 0;
  for (BlockId b = 0; b < t.num_blocks(); ++b)
    if (t.parent_cut[b] == kInvalidCut) ++roots;
  EXPECT_EQ(roots, 1u);
  // Parents precede children in top_down.
  std::vector<std::uint32_t> pos(t.num_blocks());
  for (std::uint32_t i = 0; i < t.top_down.size(); ++i)
    pos[t.top_down[i]] = i;
  for (BlockId b = 0; b < t.num_blocks(); ++b) {
    if (t.parent_cut[b] == kInvalidCut) continue;
    BlockId pb = t.parent_block[t.parent_cut[b]];
    EXPECT_LT(pos[pb], pos[b]);
  }
  // Every cut's parent block contains it.
  for (CutId c = 0; c < t.num_cuts(); ++c) {
    auto nodes = r.block_nodes(t.parent_block[c]);
    EXPECT_TRUE(std::find(nodes.begin(), nodes.end(), t.cut_nodes[c]) !=
                nodes.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BccProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
