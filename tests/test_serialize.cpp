#include <gtest/gtest.h>

#include <sstream>

#include "core/brics.hpp"
#include "reduce/serialize.hpp"
#include "tests/test_helpers.hpp"
#include "traverse/bfs.hpp"

namespace brics {
namespace {

void expect_equivalent(const ReducedGraph& a, const ReducedGraph& b,
                       const CsrGraph& original) {
  ASSERT_EQ(a.ledger.num_nodes(), b.ledger.num_nodes());
  EXPECT_EQ(a.num_present, b.num_present);
  EXPECT_EQ(a.ledger.num_removed(), b.ledger.num_removed());
  EXPECT_EQ(a.graph.edge_list(), b.graph.edge_list());
  EXPECT_EQ(a.present, b.present);
  EXPECT_EQ(a.stats.identical.removed, b.stats.identical.removed);
  EXPECT_EQ(a.stats.chains.removed, b.stats.chains.removed);
  EXPECT_EQ(a.stats.redundant.removed, b.stats.redundant.removed);
  // Behavioural equivalence: identical resolution results from samples.
  TraversalWorkspace ws;
  for (NodeId s = 0; s < original.num_nodes(); s += 7) {
    if (!a.present[s]) continue;
    sssp(a.graph, s, ws);
    std::vector<Dist> da(ws.dist().begin(), ws.dist().end());
    std::vector<Dist> db = da;
    a.ledger.resolve(da);
    b.ledger.resolve(db);
    ASSERT_EQ(da, db) << "source " << s;
  }
}

TEST(Serialize, RoundTripSmallGraph) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 120, 3}.build();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  std::stringstream buf;
  save_reduction(rg, buf);
  ReducedGraph loaded = load_reduction(buf);
  expect_equivalent(rg, loaded, g);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream buf("this is not a reduction file at all");
  EXPECT_THROW(load_reduction(buf), CheckFailure);
}

TEST(Serialize, RejectsTruncation) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 80, 5}.build();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  std::stringstream buf;
  save_reduction(rg, buf);
  std::string data = buf.str();
  for (std::size_t cut : {data.size() / 4, data.size() / 2,
                          data.size() - 3}) {
    std::stringstream part(data.substr(0, cut));
    EXPECT_THROW(load_reduction(part), CheckFailure) << "cut " << cut;
  }
}

TEST(Serialize, LoadedReductionDrivesEstimator) {
  CsrGraph g = test::RandomGraphCase{"web_copy", 200, 7}.build();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  std::stringstream buf;
  save_reduction(rg, buf);
  ReducedGraph loaded = load_reduction(buf);
  EstimateOptions o;
  o.sample_rate = 1.0;
  o.seed = 3;
  EstimateResult a = estimate_on_reduction(rg, o);
  EstimateResult b = estimate_on_reduction(loaded, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    ASSERT_DOUBLE_EQ(a.farness[v], b.farness[v]) << v;
}

class SerializeProperty
    : public ::testing::TestWithParam<test::RandomGraphCase> {};

TEST_P(SerializeProperty, RoundTripAcrossFamilies) {
  CsrGraph g = GetParam().build();
  for (bool iterate : {false, true}) {
    ReduceOptions o;
    o.iterate = iterate;
    ReducedGraph rg = reduce(g, o);
    std::stringstream buf;
    save_reduction(rg, buf);
    ReducedGraph loaded = load_reduction(buf);
    expect_equivalent(rg, loaded, g);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerializeProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
