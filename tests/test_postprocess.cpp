#include <gtest/gtest.h>

#include "core/brics.hpp"
#include "core/farness.hpp"
#include "pipeline/postprocess.hpp"
#include "reduce/reducer.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(Postprocess, TwinCopiesRepValue) {
  ReductionLedger l(3);
  l.record_identical(2, 1, 2);
  std::vector<double> f{10.0, 20.0, 0.0};
  std::vector<std::uint8_t> exact{1, 1, 0};
  refine_removed_estimates(l, 3, f, exact);
  EXPECT_DOUBLE_EQ(f[2], 20.0);
  EXPECT_TRUE(exact[2]);
}

TEST(Postprocess, PendantChainClosedForm) {
  // Path graph 0-1-2-3 collapsed to anchor 0: farness(0) = 6, and the
  // member values must reconstruct to 4, 4, 6.
  ReductionLedger l(4);
  ChainRecord c;
  c.u = 0;
  c.v = kInvalidNode;
  c.members = {1, 2, 3};
  c.offsets = {1, 2, 3};
  l.record_chain(std::move(c));
  std::vector<double> f{6.0, 0, 0, 0};
  std::vector<std::uint8_t> exact{1, 0, 0, 0};
  refine_removed_estimates(l, 4, f, exact);
  EXPECT_DOUBLE_EQ(f[1], 4.0);
  EXPECT_DOUBLE_EQ(f[2], 4.0);
  EXPECT_DOUBLE_EQ(f[3], 6.0);
  EXPECT_TRUE(exact[1] && exact[2] && exact[3]);
}

TEST(Postprocess, CycleChainClosedForm) {
  // 4-cycle 0-1-2-3-0 collapsed to anchor 0: farness(0) = 4; members must
  // reconstruct to their true farness (all 4 on a C4).
  ReductionLedger l(4);
  ChainRecord c;
  c.u = 0;
  c.v = 0;
  c.total = 4;
  c.members = {1, 2, 3};
  c.offsets = {1, 2, 3};
  l.record_chain(std::move(c));
  std::vector<double> f{4.0, 0, 0, 0};
  std::vector<std::uint8_t> exact{1, 0, 0, 0};
  refine_removed_estimates(l, 4, f, exact);
  EXPECT_DOUBLE_EQ(f[1], 4.0);
  EXPECT_DOUBLE_EQ(f[2], 4.0);
  EXPECT_DOUBLE_EQ(f[3], 4.0);
}

TEST(Postprocess, ThroughChainKeepsEstimate) {
  ReductionLedger l(4);
  ChainRecord c;
  c.u = 0;
  c.v = 3;
  c.total = 3;
  c.members = {1, 2};
  c.offsets = {1, 2};
  l.record_chain(std::move(c));
  std::vector<double> f{5.0, 42.0, 43.0, 6.0};
  std::vector<std::uint8_t> exact{1, 0, 0, 1};
  refine_removed_estimates(l, 4, f, exact);
  EXPECT_DOUBLE_EQ(f[1], 42.0);  // untouched
  EXPECT_DOUBLE_EQ(f[2], 43.0);
  EXPECT_FALSE(exact[1]);
}

TEST(Postprocess, InexactAnchorPropagates) {
  ReductionLedger l(3);
  ChainRecord c;
  c.u = 0;
  c.v = kInvalidNode;
  c.members = {1, 2};
  c.offsets = {1, 2};
  l.record_chain(std::move(c));
  std::vector<double> f{9.0, 0, 0};
  std::vector<std::uint8_t> exact{0, 0, 0};  // anchor only estimated
  refine_removed_estimates(l, 3, f, exact);
  EXPECT_FALSE(exact[1]);
  EXPECT_FALSE(exact[2]);
  EXPECT_GT(f[1], 0.0);  // still refined numerically
}

TEST(Postprocess, TwinOfAnchorCorrection) {
  // Star with twins: 0 is the hub; 3 is an open twin of hub-leaf... build
  // the exact scenario from the derivation: u = 0 with twin 1 (rep 0),
  // removed before the pendant chain 0-2-3. True farness via brute force.
  CsrGraph g = test::make_graph(
      5, {{0, 4}, {1, 4}, {0, 2}, {1, 2}, {2, 3}});
  // Here N(0) = {2, 4} = N(1): twins. After removing 1, chain 2-3 hangs
  // off 0 (2 has degree 2, 3 degree 1).
  ReducedGraph rg = reduce(g, ReduceOptions{});
  ASSERT_TRUE(rg.ledger.removed(1) || rg.ledger.removed(0));
  auto actual = exact_farness(g);
  // Full-rate BRICS must be exact on the chain members despite the twin.
  EstimateOptions o;
  o.sample_rate = 1.0;
  auto est = estimate_brics(g, o);
  for (NodeId v = 0; v < 5; ++v) {
    if (!est.exact[v]) continue;
    EXPECT_NEAR(est.farness[v], double(actual[v]), 1e-9) << v;
  }
}

TEST(Postprocess, SplicedRecordSkipped) {
  ReductionLedger l(3);
  l.record_identical(2, 1, 2);
  std::uint32_t rec = l.record_of(2);
  l.splice_record(rec);
  std::vector<double> f{10.0, 20.0, 33.0};
  std::vector<std::uint8_t> exact{1, 1, 0};
  refine_removed_estimates(l, 3, f, exact);
  EXPECT_DOUBLE_EQ(f[2], 33.0);  // untouched after splice
}

}  // namespace
}  // namespace brics
