#include <gtest/gtest.h>

#include "core/farness.hpp"
#include "core/quality.hpp"
#include "extensions/dynamic.hpp"
#include "tests/test_helpers.hpp"
#include "traverse/bfs.hpp"

namespace brics {
namespace {

EstimateOptions full_rate() {
  EstimateOptions o;
  o.sample_rate = 1.0;
  o.seed = 5;
  return o;
}

// After any sequence of insertions, the patched reduction must still
// preserve distances: reduced SSSP + ledger resolution == BFS on the
// current full graph, from every present source.
void expect_patched_reduction_exact(const DynamicFarness& dyn) {
  const CsrGraph& g = dyn.graph();
  const ReducedGraph& rg = dyn.reduction();
  TraversalWorkspace wo, wr;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (!rg.present[s]) continue;
    sssp(g, s, wo);
    sssp(rg.graph, s, wr);
    std::vector<Dist> resolved(wr.dist().begin(), wr.dist().end());
    rg.ledger.resolve(resolved);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      ASSERT_EQ(resolved[v], wo.dist()[v]) << "s=" << s << " v=" << v;
  }
}

TEST(DynamicFarness, InsertBetweenPresentNodes) {
  CsrGraph g = test::make_graph(
      6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}});
  DynamicFarness dyn(g, full_rate());
  dyn.insert_edge(0, 4);
  expect_patched_reduction_exact(dyn);
  auto actual = exact_farness(dyn.graph());
  for (NodeId v = 0; v < 6; ++v) {
    if (dyn.estimate().exact[v]) {
      EXPECT_NEAR(dyn.estimate().farness[v], double(actual[v]), 1e-6) << v;
    }
  }
}

TEST(DynamicFarness, InsertAtRemovedChainNode) {
  // Pendant chain 0-3-4-5 off a K4 hub; inserting an edge at 4 splices the
  // whole chain back.
  CsrGraph g = test::make_graph(
      7, {{0, 1}, {0, 2}, {0, 6}, {1, 2}, {1, 6}, {2, 6},
          {0, 3}, {3, 4}, {4, 5}});
  DynamicFarness dyn(g, full_rate());
  EXPECT_GT(dyn.reduction().ledger.num_removed(), 0u);
  dyn.insert_edge(4, 1);
  EXPECT_FALSE(dyn.reduction().ledger.removed(4));
  EXPECT_GT(dyn.stats().spliced_nodes, 0u);
  expect_patched_reduction_exact(dyn);
}

TEST(DynamicFarness, InsertAtTwinRepSplicesTwins) {
  // 3, 4 twins over {0, 1}; inserting an edge at the surviving rep breaks
  // the twin equality and must splice the removed twin back.
  CsrGraph g = test::make_graph(
      6, {{0, 1}, {0, 2}, {3, 0}, {3, 1}, {4, 0}, {4, 1}, {2, 5}, {0, 5}});
  DynamicFarness dyn(g, full_rate());
  const auto& led = dyn.reduction().ledger;
  NodeId removed_twin = led.removed(3) ? 3 : 4;
  NodeId rep = removed_twin == 3 ? 4 : 3;
  dyn.insert_edge(rep, 5);
  EXPECT_FALSE(dyn.reduction().ledger.removed(removed_twin));
  expect_patched_reduction_exact(dyn);
}

TEST(DynamicFarness, RebuildThresholdTriggers) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 60, 3}.build();
  DynamicFarness dyn(g, full_rate(), /*rebuild_threshold=*/2);
  Rng rng(17);
  for (int i = 0; i < 6; ++i) {
    NodeId u = NodeId(rng.below(g.num_nodes()));
    NodeId v = NodeId(rng.below(g.num_nodes()));
    if (u != v) dyn.insert_edge(u, v);
  }
  EXPECT_GE(dyn.stats().full_rebuilds, 2u);  // initial + threshold hits
  expect_patched_reduction_exact(dyn);
}

class DynamicProperty : public ::testing::TestWithParam<test::RandomGraphCase> {
};

TEST_P(DynamicProperty, RandomInsertionsStayExact) {
  CsrGraph g = GetParam().build();
  DynamicFarness dyn(g, full_rate(), /*rebuild_threshold=*/100);
  Rng rng(GetParam().seed * 31 + 7);
  for (int i = 0; i < 8; ++i) {
    NodeId u = NodeId(rng.below(g.num_nodes()));
    NodeId v = NodeId(rng.below(g.num_nodes()));
    if (u == v) continue;
    dyn.insert_edge(u, v);
  }
  expect_patched_reduction_exact(dyn);
  // Full-rate estimates on present nodes equal exact farness of the
  // *current* graph.
  auto actual = exact_farness(dyn.graph());
  const auto& est = dyn.estimate();
  for (NodeId v = 0; v < dyn.graph().num_nodes(); ++v) {
    if (est.exact[v]) {
      ASSERT_NEAR(est.farness[v], double(actual[v]), 1e-6) << "node " << v;
    }
  }
}

TEST_P(DynamicProperty, QualityStaysReasonableAtModerateRate) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 50) return;
  EstimateOptions o;
  o.sample_rate = 0.5;
  o.seed = 11;
  DynamicFarness dyn(g, o, 100);
  Rng rng(GetParam().seed + 99);
  for (int i = 0; i < 4; ++i) {
    NodeId u = NodeId(rng.below(g.num_nodes()));
    NodeId v = NodeId(rng.below(g.num_nodes()));
    if (u != v) dyn.insert_edge(u, v);
  }
  auto actual = exact_farness(dyn.graph());
  QualityReport q = quality(dyn.estimate().farness, actual);
  EXPECT_GT(q.quality, 0.5);
  EXPECT_LT(q.quality, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DynamicProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
