#include <gtest/gtest.h>

#include "reduce/identical.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

struct Pass {
  std::vector<std::uint8_t> present;
  ReductionLedger ledger;
  IdenticalPassStats stats;

  explicit Pass(const CsrGraph& g)
      : present(g.num_nodes(), 1), ledger(g.num_nodes()) {
    stats = remove_identical_nodes(g, present, ledger);
  }
};

TEST(IdenticalNodes, DetectsOpenTwins) {
  // 3 and 4 both have neighbours {0, 1} and are not adjacent; 2 breaks the
  // 0/1 symmetry so no other twin group exists.
  CsrGraph g = test::make_graph(
      5, {{0, 1}, {0, 2}, {3, 0}, {3, 1}, {4, 0}, {4, 1}});
  Pass p(g);
  EXPECT_EQ(p.stats.groups, 1u);
  EXPECT_EQ(p.stats.removed, 1u);
  EXPECT_EQ(p.stats.open_removed, 1u);
  // Exactly one of {3, 4} removed.
  EXPECT_EQ(int(p.present[3]) + int(p.present[4]), 1);
  const auto& rec = p.ledger.identical()[0];
  EXPECT_EQ(rec.self_dist, 2u);  // via a shared neighbour
}

TEST(IdenticalNodes, OpenAndClosedTwinsInOneGraph) {
  // {3, 4} open twins over {0, 1}; {0, 1} closed twins (adjacent, same
  // closed neighbourhood {0, 1, 3, 4}).
  CsrGraph g = test::make_graph(5, {{0, 1}, {3, 0}, {3, 1}, {4, 0}, {4, 1}});
  Pass p(g);
  EXPECT_EQ(p.stats.groups, 2u);
  EXPECT_EQ(p.stats.open_removed, 1u);
  EXPECT_EQ(p.stats.closed_removed, 1u);
}

TEST(IdenticalNodes, DetectsClosedTwins) {
  // 0 and 1 adjacent, both adjacent to 2 and 3: N[0] == N[1].
  CsrGraph g = test::make_graph(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  Pass p(g);
  // All four nodes are pairwise closed twins (K4): one survives per... in
  // K4 every node has N[v] = V, so all are mutually closed twins.
  EXPECT_GE(p.stats.closed_removed, 1u);
  for (const auto& rec : p.ledger.identical())
    EXPECT_EQ(rec.self_dist, 1u);  // adjacent twins sit at distance 1
}

TEST(IdenticalNodes, GroupOfThreeKeepsOneRepresentative) {
  CsrGraph g = test::make_graph(6, {{0, 1},
                                    {2, 0},
                                    {2, 1},
                                    {3, 0},
                                    {3, 1},
                                    {4, 0},
                                    {4, 1},
                                    {5, 0}});
  Pass p(g);
  // {2, 3, 4} share neighbours {0, 1}; 5 has only {0}.
  EXPECT_EQ(p.stats.removed, 2u);
  EXPECT_EQ(int(p.present[2]) + int(p.present[3]) + int(p.present[4]), 1);
  EXPECT_TRUE(p.present[5]);
}

TEST(IdenticalNodes, NoTwinsNoRemovals) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  Pass p(g);
  EXPECT_EQ(p.stats.removed, 0u);
}

TEST(IdenticalNodes, DifferentWeightsAreNotTwins) {
  // 2 and 3 share the neighbour set {0, 1} but with different weights, so
  // they are not twins. (0 and 1 *are* twins — {2, 3} with equal weights.)
  CsrGraph g =
      test::make_graph(4, {{2, 0, 1}, {2, 1, 1}, {3, 0, 2}, {3, 1, 2}});
  Pass p(g);
  EXPECT_TRUE(p.present[2]);
  EXPECT_TRUE(p.present[3]);
  for (const auto& rec : p.ledger.identical()) {
    EXPECT_NE(rec.node, 2u);
    EXPECT_NE(rec.node, 3u);
  }
}

TEST(IdenticalNodes, EqualWeightedTwinsDetectedWithSelfDist) {
  CsrGraph g =
      test::make_graph(4, {{2, 0, 3}, {2, 1, 5}, {3, 0, 3}, {3, 1, 5}});
  Pass p(g);
  ASSERT_EQ(p.stats.open_removed, 1u);
  // d(2,3) = 2 * min incident weight = 6.
  EXPECT_EQ(p.ledger.identical()[0].self_dist, 6u);
}

TEST(IdenticalNodes, PinnedMemberBecomesRepresentative) {
  CsrGraph g = test::make_graph(5, {{0, 1}, {3, 0}, {3, 1}, {4, 0}, {4, 1}});
  std::vector<std::uint8_t> present(5, 1);
  ReductionLedger ledger(5);
  // Pin node 4 by making it the anchor of an unrelated record: it must
  // survive the identical pass as the group representative.
  ledger.record_redundant(2, std::vector<NodeId>{4},
                          std::vector<Weight>{1});
  present[2] = 0;
  remove_identical_nodes(g, present, ledger);
  EXPECT_TRUE(present[4]);
  EXPECT_FALSE(present[3]);
}

TEST(IdenticalNodes, StarLeavesCollapse) {
  // Star: leaves 1..5 all share neighbour set {0}.
  CsrGraph g =
      test::make_graph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  Pass p(g);
  EXPECT_EQ(p.stats.groups, 1u);
  EXPECT_EQ(p.stats.removed, 4u);
}

}  // namespace
}  // namespace brics
