#include <gtest/gtest.h>

#include "reduce/reducer.hpp"
#include "tests/test_helpers.hpp"
#include "traverse/bidirectional.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

TEST(Bidirectional, PathGraph) {
  CsrGraph g = test::make_graph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_EQ(bidirectional_distance(g, 0, 5), 5u);
  EXPECT_EQ(bidirectional_distance(g, 2, 3), 1u);
  EXPECT_EQ(bidirectional_distance(g, 4, 4), 0u);
}

TEST(Bidirectional, DisconnectedReturnsInf) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(bidirectional_distance(g, 0, 3), kInfDist);
}

TEST(Bidirectional, RejectsWeighted) {
  CsrGraph g = test::make_graph(3, {{0, 1, 2}, {1, 2}});
  EXPECT_THROW(bidirectional_distance(g, 0, 2), CheckFailure);
}

TEST(PointToPoint, WeightedUsesDial) {
  CsrGraph g = test::make_graph(3, {{0, 1, 5}, {1, 2, 1}, {0, 2, 3}});
  EXPECT_EQ(point_to_point(g, 0, 1), 4u);
  EXPECT_EQ(point_to_point(g, 0, 2), 3u);
}

class BidirectionalProperty
    : public ::testing::TestWithParam<test::RandomGraphCase> {};

TEST_P(BidirectionalProperty, MatchesFullTraversal) {
  CsrGraph g = GetParam().build();
  Rng rng(GetParam().seed + 5);
  for (int i = 0; i < 25; ++i) {
    NodeId s = NodeId(rng.below(g.num_nodes()));
    NodeId t = NodeId(rng.below(g.num_nodes()));
    ASSERT_EQ(point_to_point(g, s, t), sssp_distances(g, s)[t])
        << "s=" << s << " t=" << t;
  }
}

TEST_P(BidirectionalProperty, MatchesOnCompressedReduction) {
  // Weighted graphs from chain compression exercise the Dial early-exit
  // path.
  CsrGraph g = GetParam().build();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  std::vector<NodeId> present;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (rg.present[v]) present.push_back(v);
  if (present.size() < 2) return;
  Rng rng(GetParam().seed + 17);
  for (int i = 0; i < 15; ++i) {
    NodeId s = present[rng.below(present.size())];
    NodeId t = present[rng.below(present.size())];
    ASSERT_EQ(point_to_point(rg.graph, s, t),
              sssp_distances(rg.graph, s)[t]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BidirectionalProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
