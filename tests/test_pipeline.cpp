// Stage-by-stage tests for the pipeline decomposition (src/pipeline/):
// each stage standalone against its artifact contract, kernel equivalence
// and selection, full-rate oracles for every kernel through every
// composition, and the resumable-partial-results guarantee (a mid-Traverse
// deadline aggregates what completed instead of falling back).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/brics.hpp"
#include "core/farness.hpp"
#include "core/sampling.hpp"
#include "exec/errors.hpp"
#include "pipeline/context.hpp"
#include "pipeline/kernels.hpp"
#include "pipeline/stages.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

// ER / BA / road-grid / planted-reduction recipes for the oracle sweeps.
std::vector<test::RandomGraphCase> pipeline_cases() {
  return {{"erdos_renyi", 180, 7},
          {"barabasi_albert", 180, 7},
          {"grid_subdivided", 180, 7},
          {"twins_and_chains", 180, 7}};
}

EstimateOptions opts_with(double rate, KernelChoice kernel,
                          std::uint64_t seed = 11) {
  EstimateOptions o;
  o.sample_rate = rate;
  o.seed = seed;
  o.kernel = kernel;
  return o;
}

std::vector<KernelChoice> all_kernels() {
  return {KernelChoice::kAuto, KernelChoice::kBfs, KernelChoice::kDial,
          KernelChoice::kBatched};
}

// Run Reduce + Decompose + Plan on a fresh context (the common test
// prologue). Owns a copy of the options: the context only keeps a reference.
struct StagedRun {
  CancelToken token;
  EstimateOptions opts;
  PipelineContext ctx;
  ReducedGraph rg;
  Decomposition dec;
  SamplePlan plan;

  StagedRun(const CsrGraph& g, EstimateOptions o)
      : opts(o), ctx(g, opts, token), rg(ReduceStage{}.run(ctx)),
        dec(DecomposeStage{}.run(ctx, rg)),
        plan(PlanStage{}.run(ctx, dec, rg.num_present)) {}
};

// ---------------------------------------------------------------------------
// ReduceStage
// ---------------------------------------------------------------------------

TEST(ReduceStage, ProducesReductionAndTimesThePhase) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 120, 7}.build();
  EstimateOptions opts;
  CancelToken token;
  PipelineContext ctx(g, opts, token);
  ReducedGraph rg = ReduceStage{}.run(ctx);
  EXPECT_EQ(rg.ledger.num_nodes(), g.num_nodes());
  EXPECT_LT(rg.num_present, g.num_nodes());  // recipe plants reducible mass
  EXPECT_GT(ctx.times().reduce_s, 0.0);
  EXPECT_EQ(ctx.phase(), ExecPhase::kReduce);
}

TEST(ReduceStage, ExpiredBudgetThrowsReducePhase) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EstimateOptions opts;
  CancelToken token;
  token.cancel();
  PipelineContext ctx(g, opts, token);
  try {
    ReduceStage{}.run(ctx);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.phase(), ExecPhase::kReduce);
  }
}

// ---------------------------------------------------------------------------
// DecomposeStage
// ---------------------------------------------------------------------------

TEST(DecomposeStage, OwnershipPartitionsEveryNode) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 150, 19}.build();
  EstimateOptions opts;
  CancelToken token;
  PipelineContext ctx(g, opts, token);
  ReducedGraph rg = ReduceStage{}.run(ctx);
  Decomposition dec = DecomposeStage{}.run(ctx, rg);
  EXPECT_EQ(ctx.phase(), ExecPhase::kBcc);
  ASSERT_GE(dec.num_blocks(), 1u);

  // Every node — present or removed — has exactly one owner block, and the
  // per-block owned masses partition the full node count.
  FarnessSum total_mass = 0;
  for (const BlockInfo& bi : dec.blocks) total_mass += bi.own_mass;
  EXPECT_EQ(total_mass, g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const BlockId owner = rg.present[v] ? dec.owner[v] : dec.virt_owner[v];
    ASSERT_NE(owner, kInvalidBlock) << "node " << v;
    ASSERT_LT(owner, dec.num_blocks());
  }

  // cuts_local lists exactly the block's cut vertices.
  for (const BlockInfo& bi : dec.blocks) {
    EXPECT_EQ(bi.cut_count, bi.cuts_local.size());
    for (NodeId ls : bi.cuts_local)
      EXPECT_TRUE(dec.bcc.is_cut(bi.sub.to_old[ls]));
  }
}

TEST(DecomposeStage, ExpiredBudgetThrowsBccPhase) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EstimateOptions opts;
  CancelToken token;
  PipelineContext ctx(g, opts, token);
  ReducedGraph rg = ReduceStage{}.run(ctx);
  token.cancel();
  try {
    DecomposeStage{}.run(ctx, rg);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.phase(), ExecPhase::kBcc);
  }
}

// ---------------------------------------------------------------------------
// PlanStage
// ---------------------------------------------------------------------------

TEST(PlanStage, CutsFormTheMandatoryPrefix) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 200, 7}.build();
  StagedRun run(g, opts_with(0.3, KernelChoice::kAuto));
  ASSERT_EQ(run.plan.blocks.size(), run.dec.blocks.size());
  for (BlockId b = 0; b < run.dec.num_blocks(); ++b) {
    const BlockInfo& bi = run.dec.blocks[b];
    const BlockPlan& bp = run.plan.blocks[b];
    // Cut vertices lead the sample list and define the mandatory prefix
    // (one source for cut-less blocks).
    ASSERT_GE(bp.samples.size(), bi.cut_count);
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci)
      EXPECT_EQ(bp.samples[ci], bi.cuts_local[ci]);
    if (bi.cut_count > 0) {
      EXPECT_EQ(bp.mandatory, bi.cut_count);
    } else {
      EXPECT_EQ(bp.mandatory, std::min<NodeId>(1, bp.samples.size()));
    }
    EXPECT_NE(bp.kernel, KernelChoice::kAuto) << "kernel left unresolved";
  }
  EXPECT_FALSE(run.plan.capped);
  EXPECT_EQ(run.plan.total_sources(), run.plan.planned_total);
}

TEST(PlanStage, FullRateSamplesEveryBlockNode) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 120, 7}.build();
  StagedRun run(g, opts_with(1.0, KernelChoice::kAuto));
  for (BlockId b = 0; b < run.dec.num_blocks(); ++b)
    EXPECT_EQ(run.plan.blocks[b].samples.size(),
              run.dec.blocks[b].num_nodes());
}

TEST(PlanStage, ProportionalShedHonoursCapExactly) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 220, 19}.build();
  // First, an uncapped plan to learn the mandatory/planned totals.
  StagedRun probe(g, opts_with(0.9, KernelChoice::kAuto));
  const NodeId mandatory = probe.plan.mandatory_total;
  const NodeId planned = probe.plan.planned_total;
  ASSERT_LT(mandatory, planned) << "recipe must leave optional samples";
  const NodeId cap = mandatory + (planned - mandatory) / 2;

  EstimateOptions capped = opts_with(0.9, KernelChoice::kAuto);
  capped.budget.max_sources = cap;
  StagedRun run(g, capped);
  EXPECT_TRUE(run.plan.capped);
  // The single proportional pass lands on the cap exactly — no iterative
  // round-robin, no over- or under-shoot.
  EXPECT_EQ(run.plan.total_sources(), cap);
  EXPECT_EQ(run.plan.planned_total, planned);  // pre-cap plan unchanged
  for (BlockId b = 0; b < run.dec.num_blocks(); ++b) {
    const BlockPlan& bp = run.plan.blocks[b];
    const BlockPlan& pre = probe.plan.blocks[b];
    // Mandatory prefix intact; kept optionals are a prefix of the original
    // pick order and at most the original optional count.
    ASSERT_GE(bp.samples.size(), bp.mandatory);
    EXPECT_EQ(bp.mandatory, pre.mandatory);
    EXPECT_LE(bp.samples.size(), pre.samples.size());
    for (std::size_t i = 0; i < bp.samples.size(); ++i)
      EXPECT_EQ(bp.samples[i], pre.samples[i]);
  }
}

TEST(PlanStage, CapBelowMandatoryThrowsPlanPhase) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 220, 19}.build();
  StagedRun probe(g, opts_with(0.5, KernelChoice::kAuto));
  ASSERT_GT(probe.plan.mandatory_total, 1u);

  EstimateOptions opts = opts_with(0.5, KernelChoice::kAuto);
  opts.budget.max_sources = probe.plan.mandatory_total - 1;
  CancelToken token;
  PipelineContext ctx(g, opts, token);
  ReducedGraph rg = ReduceStage{}.run(ctx);
  Decomposition dec = DecomposeStage{}.run(ctx, rg);
  try {
    PlanStage{}.run(ctx, dec, rg.num_present);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.phase(), ExecPhase::kPlan);
  }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

TEST(Kernels, EveryKernelMatchesTheSsspReference) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 80, 7}.build();
  std::vector<NodeId> sources{0, 3, 17, 42};
  for (KernelChoice choice :
       {KernelChoice::kBfs, KernelChoice::kDial, KernelChoice::kBatched}) {
    const TraversalKernel& kernel = kernel_for(choice);
    TraversalWorkspace ws;
    std::vector<std::uint8_t> completed(sources.size(), 0);
    std::vector<std::vector<Dist>> got(sources.size());
    const std::size_t done = kernel.run(
        g, sources, 0, sources.size(), sources.size(), nullptr, ws,
        completed,
        [&](std::size_t i, std::span<const Dist> dist) {
          got[i].assign(dist.begin(), dist.end());
        });
    EXPECT_EQ(done, sources.size()) << kernel.name();
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_TRUE(completed[i]);
      EXPECT_EQ(got[i], sssp_distances(g, sources[i]))
          << kernel.name() << " source " << sources[i];
    }
  }
}

TEST(Kernels, SelectKernelHeuristic) {
  CsrGraph small = test::RandomGraphCase{"erdos_renyi", 60, 7}.build();
  CsrGraph big = test::RandomGraphCase{"erdos_renyi", 400, 7}.build();
  CsrGraph weighted =
      test::make_graph(4, {{0, 1, 3}, {1, 2, 2}, {2, 3, 5}});
  ASSERT_LE(small.num_nodes(), 256u);
  ASSERT_GT(big.num_nodes(), 256u);
  ASSERT_FALSE(weighted.unit_weights());

  // kAuto: small multi-source blocks batch; singletons and big blocks use
  // the weight-matched per-source engine.
  EXPECT_EQ(select_kernel(small, 4, KernelChoice::kAuto),
            KernelChoice::kBatched);
  EXPECT_EQ(select_kernel(small, 1, KernelChoice::kAuto),
            KernelChoice::kBfs);
  EXPECT_EQ(select_kernel(big, 4, KernelChoice::kAuto), KernelChoice::kBfs);
  EXPECT_EQ(select_kernel(weighted, 1, KernelChoice::kAuto),
            KernelChoice::kDial);
  // Forced choices are honoured, except BFS on weighted graphs (wrong
  // distances) which upgrades to Dial.
  EXPECT_EQ(select_kernel(big, 4, KernelChoice::kDial), KernelChoice::kDial);
  EXPECT_EQ(select_kernel(big, 4, KernelChoice::kBatched),
            KernelChoice::kBatched);
  EXPECT_EQ(select_kernel(weighted, 4, KernelChoice::kBfs),
            KernelChoice::kDial);
  EXPECT_EQ(select_kernel(big, 4, KernelChoice::kBfs), KernelChoice::kBfs);
}

// ---------------------------------------------------------------------------
// TraverseStage
// ---------------------------------------------------------------------------

TEST(TraverseStage, CompletesEveryPlannedSourceWithoutDeadline) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 160, 7}.build();
  StagedRun run(g, opts_with(0.4, KernelChoice::kAuto));
  TraversalResults trav =
      TraverseStage{}.run(run.ctx, run.rg, run.dec, run.plan);
  EXPECT_EQ(run.ctx.phase(), ExecPhase::kTraverse);
  EXPECT_FALSE(trav.cut);
  EXPECT_EQ(trav.completed_total, run.plan.total_sources());
  for (BlockId b = 0; b < run.dec.num_blocks(); ++b)
    for (std::uint8_t c : trav.blocks[b].completed) EXPECT_TRUE(c);
  EXPECT_GT(run.ctx.times().traverse_s, 0.0);
}

TEST(TraverseStage, BatchedAndPerSourceKernelsAccumulateIdentically) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 160, 19}.build();
  StagedRun batched(g, opts_with(0.5, KernelChoice::kBatched));
  StagedRun persrc(g, opts_with(0.5, KernelChoice::kDial));
  TraversalResults tb =
      TraverseStage{}.run(batched.ctx, batched.rg, batched.dec,
                          batched.plan);
  TraversalResults tp =
      TraverseStage{}.run(persrc.ctx, persrc.rg, persrc.dec, persrc.plan);
  EXPECT_EQ(tb.acc, tp.acc);
  EXPECT_EQ(tb.acc_own, tp.acc_own);
  EXPECT_EQ(tb.intra_exact, tp.intra_exact);
  ASSERT_EQ(tb.blocks.size(), tp.blocks.size());
  for (std::size_t b = 0; b < tb.blocks.size(); ++b) {
    EXPECT_EQ(tb.blocks[b].dsum_own, tp.blocks[b].dsum_own);
    EXPECT_EQ(tb.blocks[b].dcc, tp.blocks[b].dcc);
  }
}

// ---------------------------------------------------------------------------
// Full compositions: 100 %-sampling oracles for every kernel
// ---------------------------------------------------------------------------

class PipelineOracle : public ::testing::TestWithParam<test::RandomGraphCase> {
};

// Full-rate exactness matches the seed guarantee (test_core.cpp): every
// node flagged `exact` — all present nodes plus the anchored removed ones —
// carries the true farness; redundant-removed nodes stay estimates. On top
// of that, every kernel must produce the bit-identical result vector.
TEST_P(PipelineOracle, BricsFullRateIsExactUnderEveryKernel) {
  CsrGraph g = GetParam().build();
  auto actual = exact_farness(g);
  auto reference = estimate_brics(g, opts_with(1.0, KernelChoice::kAuto));
  for (KernelChoice kernel : all_kernels()) {
    auto est = estimate_brics(g, opts_with(1.0, kernel));
    ASSERT_EQ(est.farness.size(), g.num_nodes());
    EXPECT_FALSE(est.degraded);
    NodeId exact_count = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_DOUBLE_EQ(est.farness[v], reference.farness[v])
          << to_string(kernel) << " node " << v;
      if (!est.exact[v]) continue;
      ++exact_count;
      EXPECT_NEAR(est.farness[v], static_cast<double>(actual[v]), 1e-6)
          << to_string(kernel) << " node " << v;
    }
    EXPECT_GE(exact_count, est.reduce_stats.reduced_nodes)
        << to_string(kernel);
  }
}

TEST_P(PipelineOracle, ReducedSamplingFullRateIsExactUnderEveryKernel) {
  CsrGraph g = GetParam().build();
  auto actual = exact_farness(g);
  auto reference =
      estimate_reduced_sampling(g, opts_with(1.0, KernelChoice::kAuto));
  for (KernelChoice kernel : all_kernels()) {
    auto est = estimate_reduced_sampling(g, opts_with(1.0, kernel));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_DOUBLE_EQ(est.farness[v], reference.farness[v])
          << to_string(kernel) << " node " << v;
      if (!est.exact[v]) continue;
      EXPECT_NEAR(est.farness[v], static_cast<double>(actual[v]), 1e-6)
          << to_string(kernel) << " node " << v;
    }
  }
}

TEST_P(PipelineOracle, RandomSamplingFullRateIsExactUnderEveryKernel) {
  CsrGraph g = GetParam().build();
  auto actual = exact_farness(g);
  for (KernelChoice kernel : all_kernels()) {
    auto est = estimate_random_sampling(g, opts_with(1.0, kernel));
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_DOUBLE_EQ(est.farness[v], static_cast<double>(actual[v]))
          << to_string(kernel) << " node " << v;
  }
}

// Kernel choice is a scheduling decision, not an estimator change: at any
// rate the integer accumulators make the estimate bit-identical across
// kernels (same plan, same distance vectors, exact sums).
TEST_P(PipelineOracle, KernelChoiceNeverChangesTheEstimate) {
  CsrGraph g = GetParam().build();
  auto reference = estimate_brics(g, opts_with(0.3, KernelChoice::kAuto));
  for (KernelChoice kernel :
       {KernelChoice::kBfs, KernelChoice::kDial, KernelChoice::kBatched}) {
    auto est = estimate_brics(g, opts_with(0.3, kernel));
    ASSERT_EQ(est.samples, reference.samples) << to_string(kernel);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_DOUBLE_EQ(est.farness[v], reference.farness[v])
          << to_string(kernel) << " node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineOracle,
                         ::testing::ValuesIn(pipeline_cases()),
                         test::case_name);

// ---------------------------------------------------------------------------
// Resumable partial results: deadline mid-Traverse
// ---------------------------------------------------------------------------

// A deadline firing during Traverse must NOT discard completed work: the
// Aggregate stage finishes from the partial TraversalResults. The degraded
// estimate still carries the exact farness of every mandatory source (cut
// vertices and each cut-less block's first sample).
TEST(PartialResults, MidTraverseDeadlineAggregatesMandatoryWork) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 220, 7}.build();
  auto actual = exact_farness(g);
  StagedRun run(g, opts_with(1.0, KernelChoice::kAuto));
  ASSERT_LT(run.plan.mandatory_total, run.plan.planned_total)
      << "recipe must leave optional samples to shed";

  // The deadline fires after planning, before any optional traversal.
  run.token.cancel();
  TraversalResults trav =
      TraverseStage{}.run(run.ctx, run.rg, run.dec, run.plan);
  EXPECT_TRUE(trav.cut);
  EXPECT_EQ(trav.completed_total, run.plan.mandatory_total);

  EstimateResult res =
      AggregateStage{}.run(run.ctx, run.rg, run.dec, run.plan, trav);
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.cut_phase, ExecPhase::kTraverse);
  EXPECT_EQ(res.samples, run.plan.mandatory_total);
  EXPECT_EQ(res.planned_samples, run.plan.planned_total);
  EXPECT_LT(res.achieved_sample_rate, 1.0);
  // Not a fallback re-run: the block structure survived into the result.
  EXPECT_EQ(res.num_blocks, run.dec.num_blocks());

  // Every mandatory source owned by its block keeps its exact farness.
  NodeId checked = 0;
  for (BlockId b = 0; b < run.dec.num_blocks(); ++b) {
    const BlockInfo& bi = run.dec.blocks[b];
    const BlockPlan& bp = run.plan.blocks[b];
    for (NodeId si = 0; si < bp.mandatory; ++si) {
      const NodeId gs = bi.sub.to_old[bp.samples[si]];
      if (run.dec.owner[gs] != b) continue;
      EXPECT_TRUE(res.exact[gs]) << "mandatory node " << gs;
      EXPECT_NEAR(res.farness[gs], static_cast<double>(actual[gs]), 1e-6)
          << "mandatory node " << gs;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  // In particular every cut vertex of the reduced graph stays exact.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!run.rg.present[v] || !run.dec.bcc.is_cut(v)) continue;
    EXPECT_TRUE(res.exact[v]) << "cut vertex " << v;
    EXPECT_NEAR(res.farness[v], static_cast<double>(actual[v]), 1e-6)
        << "cut vertex " << v;
  }
  // And the non-exact remainder is still a usable estimate, not garbage.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(std::isfinite(res.farness[v]));
    EXPECT_GT(res.farness[v], 0.0);
  }
}

// The manual stage composition and the public API agree exactly.
TEST(PipelineComposition, ManualStagesMatchEstimateOnReduction) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 180, 19}.build();
  EstimateOptions opts = opts_with(0.4, KernelChoice::kAuto);
  StagedRun run(g, opts);
  TraversalResults trav =
      TraverseStage{}.run(run.ctx, run.rg, run.dec, run.plan);
  EstimateResult manual =
      AggregateStage{}.run(run.ctx, run.rg, run.dec, run.plan, trav);

  EstimateResult api = estimate_on_reduction(run.rg, opts);
  ASSERT_EQ(manual.farness.size(), api.farness.size());
  EXPECT_EQ(manual.samples, api.samples);
  EXPECT_EQ(manual.num_blocks, api.num_blocks);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(manual.farness[v], api.farness[v]) << v;
    EXPECT_EQ(manual.exact[v], api.exact[v]) << v;
  }
}

}  // namespace
}  // namespace brics
