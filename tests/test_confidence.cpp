#include <gtest/gtest.h>

#include "core/confidence.hpp"
#include "core/farness.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(Confidence, ExactNodesHaveZeroError) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 100, 5}.build();
  ConfidenceOptions o;
  o.sample_rate = 0.3;
  ConfidenceResult r = estimate_with_confidence(g, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.exact[v]) {
      EXPECT_DOUBLE_EQ(r.stderr_[v], 0.0);
    }
  }
}

TEST(Confidence, FullRateIsExactEverywhere) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 120, 9}.build();
  auto actual = exact_farness(g);
  ConfidenceOptions o;
  o.sample_rate = 1.0;
  ConfidenceResult r = estimate_with_confidence(g, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(r.farness[v], double(actual[v]));
    EXPECT_DOUBLE_EQ(r.stderr_[v], 0.0);
  }
}

TEST(Confidence, StdErrShrinksWithRate) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 300, 11}.build();
  double mean_se_low = 0.0, mean_se_high = 0.0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ConfidenceOptions lo;
    lo.sample_rate = 0.1;
    lo.seed = seed;
    ConfidenceOptions hi;
    hi.sample_rate = 0.6;
    hi.seed = seed;
    auto rl = estimate_with_confidence(g, lo);
    auto rh = estimate_with_confidence(g, hi);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      mean_se_low += rl.stderr_[v];
      mean_se_high += rh.stderr_[v];
    }
  }
  EXPECT_LT(mean_se_high, mean_se_low * 0.6);
}

TEST(Confidence, EmpiricalCoverageNearNominal) {
  // Across many nodes and seeds, ~95 % of true values must fall inside the
  // 1.96-sigma band. Normal approximation + finite population: accept a
  // generous [85 %, 100 %] envelope to keep the test robust.
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 400, 21}.build();
  auto actual = exact_farness(g);
  std::uint64_t inside = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ConfidenceOptions o;
    o.sample_rate = 0.2;
    o.seed = seed;
    ConfidenceResult r = estimate_with_confidence(g, o);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r.exact[v]) continue;
      ++total;
      if (std::abs(r.farness[v] - double(actual[v])) <=
          r.half_width(v, 1.96))
        ++inside;
    }
  }
  const double coverage = double(inside) / double(total);
  EXPECT_GT(coverage, 0.85);
}

TEST(Confidence, RejectsTinyGraphs) {
  CsrGraph g = test::make_graph(1, {});
  ConfidenceOptions o;
  EXPECT_THROW(estimate_with_confidence(g, o), CheckFailure);
}

}  // namespace
}  // namespace brics
