#include <gtest/gtest.h>

#include <thread>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace brics {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(BRICS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(BRICS_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureCarriesExpressionAndLocation) {
  try {
    BRICS_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsFormatted) {
  try {
    BRICS_CHECK_MSG(false, "value was " << 42 << "!");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42!"),
              std::string::npos);
  }
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  BRICS_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.millis(), 10.0);
}

TEST(Parallel, ThreadQueriesAreSane) {
  EXPECT_GE(max_threads(), 1);
  EXPECT_EQ(thread_id(), 0);  // outside a parallel region
}

TEST(Parallel, SetThreadsRoundTrips) {
  const int before = max_threads();
  set_threads(1);
  EXPECT_EQ(max_threads(), 1);
  set_threads(before);
  EXPECT_EQ(max_threads(), before);
}

}  // namespace
}  // namespace brics
