// Tests for the resilience layer (docs/ROBUSTNESS.md): checkpoint segment
// framing and corruption handling, the Recovery manager's load-or-recompute
// contract, bit-exact checkpoint/resume of full estimator runs, per-task
// retry and quarantine in the Traverse stage, fail-point spec parsing, and
// a miniature chaos sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "brics/brics.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

namespace fs = std::filesystem;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "brics_recovery_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    FailPointRegistry::instance().disarm_all();
  }
  void TearDown() override {
    FailPointRegistry::instance().disarm_all();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// ------------------------------------------------------------- CRC + framing

TEST_F(RecoveryTest, Crc32KnownAnswer) {
  // The canonical IEEE check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Chaining matches one-shot.
  const std::uint32_t part = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, part), 0xCBF43926u);
}

TEST_F(RecoveryTest, SegmentRoundTrip) {
  const std::string payload = "hello checkpoint payload";
  write_segment(dir_, "seg.ckpt", SegmentKind::kManifest, 42, payload);
  EXPECT_EQ(read_segment(dir_ + "/seg.ckpt", SegmentKind::kManifest, 42),
            payload);
  // No stray .tmp left behind after the atomic rename.
  EXPECT_FALSE(fs::exists(dir_ + "/seg.ckpt.tmp"));
}

TEST_F(RecoveryTest, SegmentRejectsMissingTruncatedAndCorrupt) {
  const std::string p = dir_ + "/seg.ckpt";
  EXPECT_THROW(read_segment(p, SegmentKind::kPlan, 1), CheckpointError);

  write_segment(dir_, "seg.ckpt", SegmentKind::kPlan, 1, "abcdefgh");
  const std::string good = slurp(p);

  // Truncated: drop the CRC trailer and part of the payload.
  spit(p, good.substr(0, good.size() - 7));
  EXPECT_THROW(read_segment(p, SegmentKind::kPlan, 1), CheckpointError);

  // Bit flip in the payload breaks the CRC.
  std::string flipped = good;
  flipped[36] = static_cast<char>(flipped[36] ^ 0x40);
  spit(p, flipped);
  EXPECT_THROW(read_segment(p, SegmentKind::kPlan, 1), CheckpointError);

  // Version mismatch (byte 8 holds the little-endian format version).
  std::string wrong_version = good;
  wrong_version[8] = static_cast<char>(kCheckpointFormatVersion + 1);
  spit(p, wrong_version);
  try {
    read_segment(p, SegmentKind::kPlan, 1);
    FAIL() << "version mismatch not detected";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }

  // Wrong kind and wrong config hash are both rejected on the intact file.
  spit(p, good);
  EXPECT_THROW(read_segment(p, SegmentKind::kTraversal, 1), CheckpointError);
  EXPECT_THROW(read_segment(p, SegmentKind::kPlan, 2), CheckpointError);

  // CheckpointError participates in the InputError taxonomy (CLI exit 3).
  EXPECT_THROW(read_segment(p, SegmentKind::kPlan, 2), InputError);
}

TEST_F(RecoveryTest, ByteReaderThrowsOnUnderflow) {
  ByteWriter w;
  w.u32(7);
  w.f64(2.5);
  ByteReader r(w.str());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.f64(), 2.5);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), CheckpointError);
}

// -------------------------------------------------- Recovery load contract

TEST_F(RecoveryTest, CorruptSegmentFallsBackToRecompute) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 120, 7}.build();
  EstimateOptions opts;
  opts.sample_rate = 1.0;
  opts.recovery.checkpoint_dir = dir_;

  const EstimateResult baseline = estimate_brics(g, opts);
  ASSERT_FALSE(baseline.degraded);
  ASSERT_TRUE(fs::exists(dir_ + "/decomposition.ckpt"));

  // Corrupt one mid-pipeline segment; a resume must reject it, recompute,
  // and still land on the identical result.
  std::string blob = slurp(dir_ + "/decomposition.ckpt");
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x01);
  spit(dir_ + "/decomposition.ckpt", blob);

  EstimateOptions resume = opts;
  resume.recovery.resume = true;
  const EstimateResult res = estimate_brics(g, resume);
  EXPECT_FALSE(res.degraded);
  EXPECT_GE(res.recovery.checkpoints_rejected, 1u);
  EXPECT_EQ(res.farness, baseline.farness);
}

TEST_F(RecoveryTest, ConfigChangeRejectsSegments) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 90, 3}.build();
  EstimateOptions opts;
  opts.sample_rate = 1.0;
  opts.recovery.checkpoint_dir = dir_;
  ASSERT_FALSE(estimate_brics(g, opts).degraded);

  // A different seed is a different config hash: every stale segment is
  // rejected (or ignored) and the run is computed fresh.
  EstimateOptions other = opts;
  other.seed = 999;
  other.recovery.resume = true;
  const EstimateResult res = estimate_brics(g, other);
  EXPECT_FALSE(res.degraded);
  EXPECT_EQ(res.recovery.checkpoints_loaded, 0u);

  EstimateOptions fresh = other;
  fresh.recovery = RecoveryOptions{};
  EXPECT_EQ(res.farness, estimate_brics(g, fresh).farness);
}

// ------------------------------------------------- checkpoint/resume e2e

TEST_F(RecoveryTest, ResumeFromCompleteCheckpointIsBitExact) {
  for (const char* kind : {"grid_subdivided", "web_copy"}) {
    CsrGraph g = test::RandomGraphCase{kind, 150, 19}.build();
    EstimateOptions plain;
    plain.sample_rate = 1.0;
    const EstimateResult baseline = estimate_brics(g, plain);

    const std::string ck = dir_ + "/" + kind;
    EstimateOptions with_ck = plain;
    with_ck.recovery.checkpoint_dir = ck;
    const EstimateResult first = estimate_brics(g, with_ck);
    EXPECT_FALSE(first.degraded);
    EXPECT_EQ(first.recovery.attempt, 1u);
    EXPECT_FALSE(first.recovery.resumed);
    EXPECT_GE(first.recovery.checkpoints_written, 4u);
    EXPECT_EQ(first.farness, baseline.farness) << kind;

    EstimateOptions resume = with_ck;
    resume.recovery.resume = true;
    const EstimateResult second = estimate_brics(g, resume);
    EXPECT_FALSE(second.degraded);
    EXPECT_TRUE(second.recovery.resumed);
    EXPECT_EQ(second.recovery.attempt, 2u);
    EXPECT_GE(second.recovery.checkpoints_loaded, 4u);
    EXPECT_EQ(second.farness, baseline.farness) << kind;
  }
}

TEST_F(RecoveryTest, ResumeFromPartialTraversalIsBitExact) {
#if BRICS_FAILPOINTS_ENABLED
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 200, 19}.build();
  EstimateOptions plain;
  plain.sample_rate = 1.0;
  // Force per-source tasks (batched blocks would collapse to one task
  // each, leaving too few traverse.task evaluations to inject into).
  plain.kernel = KernelChoice::kBfs;
  const EstimateResult baseline = estimate_brics(g, plain);

  // Attempt 1: checkpoint every 2 traversal tasks, then hit a persistent
  // traverse fault with retries disabled — the run falls back (degraded),
  // leaving a partial traversal snapshot on disk.
  EstimateOptions cut = plain;
  cut.recovery.checkpoint_dir = dir_;
  cut.recovery.checkpoint_every = 2;
  cut.retry.max_attempts = 1;
  {
    ScopedFailPoint fp("traverse.task", /*skip_hits=*/6);
    const EstimateResult first = estimate_brics(g, cut);
    EXPECT_TRUE(first.degraded);
  }

  // Attempt 2 resumes: adopts the partial wave, completes the rest, and
  // matches the uninterrupted baseline bit for bit.
  EstimateOptions resume = cut;
  resume.retry = RetryPolicy{};
  resume.recovery.resume = true;
  const EstimateResult second = estimate_brics(g, resume);
  EXPECT_FALSE(second.degraded);
  EXPECT_TRUE(second.recovery.resumed);
  EXPECT_EQ(second.recovery.attempt, 2u);
  EXPECT_EQ(second.farness, baseline.farness);
#else
  GTEST_SKIP() << "fail points compiled out";
#endif
}

// Betweenness rides the same Recovery manager through its own segment kind
// (kBcTraversal, "bc_traversal.ckpt"); the resume contract is identical
// because the Q64.64 accumulation is order-independent and integer-summed.

TEST_F(RecoveryTest, BcResumeFromCompleteCheckpointIsBitExact) {
  CsrGraph g = test::RandomGraphCase{"grid_subdivided", 150, 19}.build();
  EstimateOptions plain;
  plain.measure = Measure::kBetweenness;
  plain.sample_rate = 1.0;
  const EstimateResult baseline = estimate_centrality(g, plain);

  EstimateOptions with_ck = plain;
  with_ck.recovery.checkpoint_dir = dir_;
  const EstimateResult first = estimate_centrality(g, with_ck);
  EXPECT_FALSE(first.degraded);
  EXPECT_FALSE(first.recovery.resumed);
  EXPECT_GE(first.recovery.checkpoints_written, 4u);
  EXPECT_TRUE(fs::exists(dir_ + "/bc_traversal.ckpt"));
  EXPECT_EQ(first.farness, baseline.farness);

  EstimateOptions resume = with_ck;
  resume.recovery.resume = true;
  const EstimateResult second = estimate_centrality(g, resume);
  EXPECT_FALSE(second.degraded);
  EXPECT_TRUE(second.recovery.resumed);
  EXPECT_EQ(second.recovery.attempt, 2u);
  EXPECT_GE(second.recovery.checkpoints_loaded, 4u);
  EXPECT_EQ(second.farness, baseline.farness);
}

TEST_F(RecoveryTest, BcResumeFromPartialTraversalIsBitExact) {
#if BRICS_FAILPOINTS_ENABLED
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 200, 19}.build();
  EstimateOptions plain;
  plain.measure = Measure::kBetweenness;
  plain.sample_rate = 1.0;
  plain.kernel = KernelChoice::kBfs;
  const EstimateResult baseline = estimate_centrality(g, plain);

  // Attempt 1 checkpoints every 2 BC traversal tasks, then dies on a
  // persistent traverse fault with retries off — degraded, with a partial
  // kBcTraversal wave on disk.
  EstimateOptions cut = plain;
  cut.recovery.checkpoint_dir = dir_;
  cut.recovery.checkpoint_every = 2;
  cut.retry.max_attempts = 1;
  {
    ScopedFailPoint fp("traverse.task", /*skip_hits=*/6);
    const EstimateResult first = estimate_centrality(g, cut);
    EXPECT_TRUE(first.degraded);
  }

  EstimateOptions resume = cut;
  resume.retry = RetryPolicy{};
  resume.recovery.resume = true;
  const EstimateResult second = estimate_centrality(g, resume);
  EXPECT_FALSE(second.degraded);
  EXPECT_TRUE(second.recovery.resumed);
  EXPECT_EQ(second.recovery.attempt, 2u);
  EXPECT_EQ(second.farness, baseline.farness);
#else
  GTEST_SKIP() << "fail points compiled out";
#endif
}

TEST_F(RecoveryTest, CumulativeWallClockSpansAttempts) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 80, 5}.build();
  EstimateOptions opts;
  opts.sample_rate = 1.0;
  opts.recovery.checkpoint_dir = dir_;
  const EstimateResult first = estimate_brics(g, opts);
  ASSERT_EQ(first.recovery.attempt, 1u);
  ASSERT_GT(first.recovery.cumulative_wall_s, 0.0);

  // A resumed attempt's own budget is fresh (a new CancelToken per run),
  // but the manifest accumulates wall clock across attempts.
  EstimateOptions resume = opts;
  resume.recovery.resume = true;
  resume.budget.timeout_ms = 60'000;
  const EstimateResult second = estimate_brics(g, resume);
  EXPECT_FALSE(second.degraded);
  EXPECT_EQ(second.recovery.attempt, 2u);
  EXPECT_GE(second.recovery.cumulative_wall_s,
            first.recovery.cumulative_wall_s);
}

TEST_F(RecoveryTest, IdleRecoveryStatsAreZeroed) {
  CsrGraph g = test::RandomGraphCase{"tree", 60, 7}.build();
  EstimateOptions opts;
  opts.sample_rate = 0.5;
  const EstimateResult res = estimate_brics(g, opts);
  EXPECT_EQ(res.recovery.attempt, 1u);
  EXPECT_FALSE(res.recovery.resumed);
  EXPECT_EQ(res.recovery.checkpoints_written, 0u);
  EXPECT_EQ(res.recovery.retries, 0u);
  EXPECT_EQ(res.recovery.quarantined_blocks, 0u);
  EXPECT_DOUBLE_EQ(res.recovery.cumulative_wall_s, res.times.total_s);
}

// --------------------------------------------------- retry and quarantine

#if BRICS_FAILPOINTS_ENABLED

TEST_F(RecoveryTest, RetryAbsorbsTransientTraverseFault) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 150, 7}.build();
  EstimateOptions opts;
  opts.sample_rate = 1.0;
  const EstimateResult baseline = estimate_brics(g, opts);

  ScopedFailPoint fp("traverse.task", /*skip_hits=*/0, /*fire_limit=*/1);
  const EstimateResult res = estimate_brics(g, opts);
  EXPECT_FALSE(res.degraded);
  EXPECT_GE(res.recovery.retries, 1u);
  EXPECT_EQ(res.recovery.quarantined_blocks, 0u);
  EXPECT_EQ(res.farness, baseline.farness);
}

TEST_F(RecoveryTest, RetryAbsorbsTransientSinkFault) {
  // The sink fail point sits BEFORE any accumulator write, so one firing
  // is retryable without double-counting.
  CsrGraph g = test::RandomGraphCase{"grid_subdivided", 120, 11}.build();
  EstimateOptions opts;
  opts.sample_rate = 1.0;
  const EstimateResult baseline = estimate_brics(g, opts);

  ScopedFailPoint fp("traverse.sink", /*skip_hits=*/0, /*fire_limit=*/1);
  const EstimateResult res = estimate_brics(g, opts);
  EXPECT_FALSE(res.degraded);
  EXPECT_GE(res.recovery.retries, 1u);
  EXPECT_EQ(res.farness, baseline.farness);
}

TEST_F(RecoveryTest, PersistentTraverseFaultDegrades) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 150, 7}.build();
  EstimateOptions opts;
  opts.sample_rate = 1.0;
  opts.retry.max_attempts = 2;

  ScopedFailPoint fp("traverse.task");  // fires on every attempt
  const EstimateResult res = estimate_brics(g, opts);
  // Quarantine swallowed mandatory work, so the run escalated to the
  // plain-sampling fallback — degraded, but valid and finite.
  EXPECT_TRUE(res.degraded);
  ASSERT_EQ(res.farness.size(), g.num_nodes());
  for (double f : res.farness) EXPECT_TRUE(std::isfinite(f));
  EXPECT_GE(res.recovery.retries, 1u);
}

#endif  // BRICS_FAILPOINTS_ENABLED

// ----------------------------------------------------- fail-point specs

TEST_F(RecoveryTest, SpecGrammarArmsSites) {
  auto& reg = FailPointRegistry::instance();
  reg.arm_from_spec("traverse.task=2:once, reduce.pipeline");
  EXPECT_TRUE(reg.armed("traverse.task"));
  EXPECT_TRUE(reg.armed("reduce.pipeline"));
  // =2 skips the first evaluation, fires on the second; :once disarms.
  EXPECT_FALSE(reg.should_fail("traverse.task"));
  EXPECT_TRUE(reg.should_fail("traverse.task"));
  EXPECT_FALSE(reg.armed("traverse.task"));
  EXPECT_FALSE(reg.should_fail("traverse.task"));
  reg.disarm_all();
}

TEST_F(RecoveryTest, SpecGrammarRejectsMalformedEntries) {
  auto& reg = FailPointRegistry::instance();
  EXPECT_THROW(reg.arm_from_spec("no.such.site"), InputError);
  EXPECT_THROW(reg.arm_from_spec("traverse.task=0"), InputError);
  EXPECT_THROW(reg.arm_from_spec("traverse.task=abc"), InputError);
  EXPECT_THROW(reg.arm_from_spec("=3"), InputError);
  EXPECT_THROW(reg.arm_from_spec("traverse.task:frobnicate"), InputError);
  EXPECT_THROW(reg.arm_from_spec(","), InputError);
  reg.disarm_all();
}

TEST_F(RecoveryTest, KnownFailPointListIsExhaustive) {
  // Every site name used in a BRICS_FAILPOINT() call in the library must
  // be enumerable by the chaos driver; spot-check the set.
  const auto sites = known_fail_points();
  EXPECT_GE(sites.size(), 16u);
  auto has = [&](const std::string& s) {
    for (const char* k : sites)
      if (s == k) return true;
    return false;
  };
  EXPECT_TRUE(has("io.edge_list"));
  EXPECT_TRUE(has("reduce.pipeline"));
  EXPECT_TRUE(has("bcc.decompose"));
  EXPECT_TRUE(has("plan.build"));
  EXPECT_TRUE(has("traverse.task"));
  EXPECT_TRUE(has("traverse.sink"));
  EXPECT_TRUE(has("aggregate.combine"));
  // Daemon sites (docs/SERVER.md), swept by brics_chaos --server.
  EXPECT_TRUE(has("server.accept"));
  EXPECT_TRUE(has("server.read"));
  EXPECT_TRUE(has("server.write"));
  EXPECT_TRUE(has("server.enqueue"));
  EXPECT_TRUE(has("server.apply"));
  EXPECT_TRUE(has("recovery.save"));
  EXPECT_TRUE(has("recovery.load"));
}

// ------------------------------------------------------- mini chaos sweep

#if BRICS_FAILPOINTS_ENABLED

TEST_F(RecoveryTest, MiniChaosSweepIsClean) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 90, 7}.build();
  ChaosOptions copts;
  copts.max_hits = 1;
  copts.work_dir = dir_ + "/chaos";
  const ChaosReport report = run_chaos_sweep(g, copts);
  EXPECT_EQ(report.failures, 0) << report.summary();
  EXPECT_EQ(report.cases.size(), known_fail_points().size());
  // The sweep must actually inject: most sites sit on the hot path.
  int fired = 0;
  for (const ChaosCase& c : report.cases) fired += c.fired ? 1 : 0;
  EXPECT_GE(fired, 8) << report.summary();
}

TEST_F(RecoveryTest, MiniChaosSweepIsCleanForBetweenness) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 90, 7}.build();
  ChaosOptions copts;
  copts.measure = Measure::kBetweenness;
  copts.max_hits = 1;
  copts.work_dir = dir_ + "/chaos";
  const ChaosReport report = run_chaos_sweep(g, copts);
  EXPECT_EQ(report.failures, 0) << report.summary();
  EXPECT_EQ(report.cases.size(), known_fail_points().size());
  int fired = 0;
  for (const ChaosCase& c : report.cases) fired += c.fired ? 1 : 0;
  EXPECT_GE(fired, 8) << report.summary();
}

#endif  // BRICS_FAILPOINTS_ENABLED

// ------------------------------------------------- orphan .tmp recovery

// A writer killed between the tmp write and the rename leaves
// "<name>.ckpt.tmp" behind. Startup must sweep those (they are never
// read), and a resume over a directory littered with them must still be
// bit-exact — regression test for the orphan-segment sweep.
TEST_F(RecoveryTest, StartupSweepsOrphanTmpSegments) {
  fs::create_directories(dir_);
  spit(dir_ + "/reduced.ckpt.tmp", "half-written");
  spit(dir_ + "/traversal.ckpt.tmp", std::string(1024, '\xff'));
  spit(dir_ + "/keep.ckpt", "not an orphan");

  EXPECT_EQ(sweep_orphan_tmp_segments(dir_), 2u);
  EXPECT_FALSE(fs::exists(dir_ + "/reduced.ckpt.tmp"));
  EXPECT_FALSE(fs::exists(dir_ + "/traversal.ckpt.tmp"));
  EXPECT_TRUE(fs::exists(dir_ + "/keep.ckpt"));
  // Idempotent on a clean directory; silent on a missing one.
  EXPECT_EQ(sweep_orphan_tmp_segments(dir_), 0u);
  EXPECT_EQ(sweep_orphan_tmp_segments(dir_ + "/nope"), 0u);
}

TEST_F(RecoveryTest, ResumeSweepsOrphansAndStaysBitExact) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 90, 3}.build();
  EstimateOptions opts;
  opts.sample_rate = 1.0;
  opts.recovery.checkpoint_dir = dir_;
  const EstimateResult first = estimate_brics(g, opts);
  ASSERT_FALSE(first.degraded);

  // Simulate a crash mid-commit: orphan tmps alongside valid segments.
  spit(dir_ + "/reduced.ckpt.tmp", "torn");
  spit(dir_ + "/plan.ckpt.tmp", "torn");

  EstimateOptions resume = opts;
  resume.recovery.resume = true;
  const EstimateResult second = estimate_brics(g, resume);
  EXPECT_FALSE(second.degraded);
  EXPECT_TRUE(second.recovery.resumed);
  EXPECT_EQ(second.farness, first.farness);
  EXPECT_FALSE(fs::exists(dir_ + "/reduced.ckpt.tmp"));
  EXPECT_FALSE(fs::exists(dir_ + "/plan.ckpt.tmp"));
}

}  // namespace
}  // namespace brics
