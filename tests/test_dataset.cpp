#include <gtest/gtest.h>

#include "gen/dataset.hpp"
#include "graph/connectivity.hpp"
#include "reduce/reducer.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

TEST(Dataset, RegistryHasTwelveInFourClasses) {
  const auto& reg = dataset_registry();
  EXPECT_EQ(reg.size(), 12u);
  int per_class[4] = {0, 0, 0, 0};
  for (const auto& d : reg) ++per_class[static_cast<int>(d.cls)];
  for (int c : per_class) EXPECT_EQ(c, 3);
}

TEST(Dataset, UnknownNameThrows) {
  EXPECT_THROW(build_dataset("no-such-graph", 0.1), CheckFailure);
}

TEST(Dataset, BadScaleThrows) {
  EXPECT_THROW(build_dataset("web-copy-a", 0.0), CheckFailure);
  EXPECT_THROW(build_dataset("web-copy-a", 1.5), CheckFailure);
}

TEST(Dataset, BuildsAreDeterministic) {
  CsrGraph a = build_dataset("soc-pref-a", 0.05);
  CsrGraph b = build_dataset("soc-pref-a", 0.05);
  EXPECT_EQ(a.edge_list(), b.edge_list());
}

class DatasetBuild : public ::testing::TestWithParam<DatasetInfo> {};

TEST_P(DatasetBuild, SmallScaleIsValidConnectedUnitGraph) {
  CsrGraph g = build_dataset(GetParam().name, 0.05);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.unit_weights());
  EXPECT_GE(g.num_nodes(), 16u);
}

TEST_P(DatasetBuild, ClassStructuralSignature) {
  const DatasetInfo& info = GetParam();
  CsrGraph g = build_dataset(info.name, 0.1);
  ReducedGraph rg = reduce(g, ReduceOptions{});
  const double n = g.num_nodes();
  const double ident = rg.stats.identical.removed / n;
  const double chains = rg.stats.chains.removed / n;
  switch (info.cls) {
    case GraphClass::kWeb:
      EXPECT_GT(ident, 0.10) << "web graphs are identical-node heavy";
      break;
    case GraphClass::kSocial:
      EXPECT_GT(ident, 0.05);
      break;
    case GraphClass::kCommunity:
      EXPECT_GT(rg.stats.redundant.removed, 0u)
          << "community graphs carry redundant 3/4-degree mass";
      break;
    case GraphClass::kRoad:
      EXPECT_GT(chains, 0.5) << "road networks are chain dominated";
      EXPECT_LT(ident, 0.02);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, DatasetBuild, ::testing::ValuesIn(dataset_registry()),
    [](const testing::TestParamInfo<DatasetInfo>& info) {
      std::string s = info.param.name;
      for (char& c : s)
        if (c == '-') c = '_';
      return s;
    });

}  // namespace
}  // namespace brics
