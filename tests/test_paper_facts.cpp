// Numerical verification of the paper's stated Facts (III.1–III.7) on
// concrete graphs, as executable documentation that the implementation
// realises the claims the algorithm's correctness rests on.
#include <gtest/gtest.h>

#include <algorithm>

#include "bcc/bcc.hpp"
#include "core/brics.hpp"
#include "core/farness.hpp"
#include "core/sampling.hpp"
#include "graph/connectivity.hpp"
#include "reduce/reducer.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

// Fact III.1 / III.2 (first half): identical nodes have the same farness
// (and hence closeness) value.
TEST(PaperFacts, IdenticalNodesShareFarness) {
  for (std::uint64_t seed : {3ULL, 11ULL, 27ULL}) {
    CsrGraph g = test::RandomGraphCase{"twins_and_chains", 150, seed}.build();
    auto f = exact_farness(g);
    ReduceOptions o;
    o.chains = o.redundant = false;
    ReducedGraph rg = reduce(g, o);
    for (const IdenticalRecord& r : rg.ledger.identical())
      EXPECT_EQ(f[r.node], f[r.rep]) << "twin " << r.node;
  }
}

// Fact III.2 (second half): members of an identical group lie in the same
// biconnected component.
TEST(PaperFacts, IdenticalNodesShareBlock) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 200, 5}.build();
  ReduceOptions o;
  o.chains = o.redundant = false;
  ReducedGraph rg = reduce(g, o);
  BccResult bcc = biconnected_components(g);  // on the ORIGINAL graph
  for (const IdenticalRecord& r : rg.ledger.identical()) {
    auto bn = bcc.blocks_of(r.node);
    auto br = bcc.blocks_of(r.rep);
    std::vector<BlockId> common;
    std::set_intersection(bn.begin(), bn.end(), br.begin(), br.end(),
                          std::back_inserter(common));
    EXPECT_FALSE(common.empty()) << "twin pair (" << r.node << ", " << r.rep
                                 << ") split across blocks";
  }
}

// Fact III.3/III.4 specialisation: a degree-1 node's farness equals its
// neighbour's plus (n - 2): d(v, x) = 1 + d(u, x) for all x except u and v.
TEST(PaperFacts, LeafFarnessOffset) {
  CsrGraph g = test::make_graph(
      6, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 4}, {0, 5}});
  auto f = exact_farness(g);
  // Node 3 is a leaf on 0: farness(3) = farness(0) + (n-1) - 2.
  EXPECT_EQ(f[3], f[0] + 6 - 2);
  EXPECT_EQ(f[4], f[1] + 6 - 2);
}

// Fact III.5: a chain's endpoints need not share a biconnected component.
TEST(PaperFacts, ChainEndpointsMaySpanBlocks) {
  // Two triangles joined by a path: the path's endpoints (2 and 3) are in
  // different blocks of the input graph.
  CsrGraph g = test::make_graph(8, {{0, 1}, {1, 2}, {2, 0},
                                    {2, 6}, {6, 7}, {7, 3},
                                    {3, 4}, {4, 5}, {5, 3}});
  BccResult bcc = biconnected_components(g);
  auto b2 = bcc.blocks_of(2);
  auto b3 = bcc.blocks_of(3);
  std::vector<BlockId> common;
  std::set_intersection(b2.begin(), b2.end(), b3.begin(), b3.end(),
                        std::back_inserter(common));
  EXPECT_TRUE(common.empty());
}

// Fact III.6: a redundant node's neighbours all lie in one block.
TEST(PaperFacts, RedundantNeighboursShareBlock) {
  for (std::uint64_t seed : {2ULL, 13ULL}) {
    CsrGraph g = test::RandomGraphCase{"triangle_rich", 200, seed}.build();
    ReduceOptions o;
    o.identical = o.chains = false;
    ReducedGraph rg = reduce(g, o);
    BccResult bcc = biconnected_components(rg.graph, rg.present);
    for (const RedundantRecord& r : rg.ledger.redundant()) {
      std::vector<BlockId> common(bcc.blocks_of(r.nbrs[0]).begin(),
                                  bcc.blocks_of(r.nbrs[0]).end());
      for (std::size_t i = 1; i < r.degree; ++i) {
        auto bi = bcc.blocks_of(r.nbrs[i]);
        std::vector<BlockId> next;
        std::set_intersection(common.begin(), common.end(), bi.begin(),
                              bi.end(), std::back_inserter(next));
        common = std::move(next);
      }
      EXPECT_FALSE(common.empty()) << "redundant node " << r.node;
    }
  }
}

// Fact III.7: no shortest path passes through a redundant node — removing
// it leaves all other pairwise distances unchanged.
TEST(PaperFacts, NoShortestPathThroughRedundantNode) {
  CsrGraph g = test::RandomGraphCase{"triangle_rich", 120, 7}.build();
  ReduceOptions o;
  o.identical = o.chains = false;
  ReducedGraph rg = reduce(g, o);
  if (rg.ledger.redundant().empty()) GTEST_SKIP() << "no redundant nodes";
  auto before = test::all_pairs(g);
  std::vector<NodeId> keep;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (rg.present[v]) keep.push_back(v);
  SubgraphMap sub = induced_subgraph(g, keep);
  for (NodeId i = 0; i < sub.graph.num_nodes(); ++i) {
    auto d = sssp_distances(sub.graph, i);
    for (NodeId j = 0; j < sub.graph.num_nodes(); ++j)
      ASSERT_EQ(d[j], before[sub.to_old[i]][sub.to_old[j]])
          << sub.to_old[i] << " -> " << sub.to_old[j];
  }
}

// §III-A: the BFS trees from two identical nodes are identical — verified
// as equality of full distance vectors.
TEST(PaperFacts, TwinDistanceVectorsEqual) {
  CsrGraph g = test::RandomGraphCase{"web_copy", 150, 9}.build();
  ReduceOptions o;
  o.chains = o.redundant = false;
  ReducedGraph rg = reduce(g, o);
  int checked = 0;
  for (const IdenticalRecord& r : rg.ledger.identical()) {
    if (++checked > 10) break;
    auto dn = sssp_distances(g, r.node);
    auto dr = sssp_distances(g, r.rep);
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      if (x == r.node || x == r.rep) continue;
      ASSERT_EQ(dn[x], dr[x]);
    }
    EXPECT_EQ(dn[r.rep], r.self_dist);
  }
}

TEST(PaperFacts, EstimatorsRejectDisconnectedInput) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {2, 3}});
  EstimateOptions o;
  o.sample_rate = 0.5;
  EXPECT_THROW(estimate_random_sampling(g, o), CheckFailure);
  EXPECT_THROW(estimate_reduced_sampling(g, o), CheckFailure);
  EXPECT_THROW(estimate_brics(g, o), CheckFailure);
}

}  // namespace
}  // namespace brics
