#include <gtest/gtest.h>

#include <sstream>

#include "graph/csr_graph.hpp"
#include "graph/graph_io.hpp"
#include "tests/test_helpers.hpp"
#include "exec/errors.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

TEST(GraphBuilder, BuildsSimpleGraph) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  g.validate();
}

TEST(GraphBuilder, DropsSelfLoops) {
  CsrGraph g = test::make_graph(3, {{0, 0}, {0, 1}, {1, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.has_edge(0, 0));
  g.validate();
}

TEST(GraphBuilder, MergesParallelEdgesKeepingMinWeight) {
  CsrGraph g =
      test::make_graph(2, {{0, 1, 5}, {1, 0, 3}, {0, 1, 9}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_weight(0, 1), 3u);
  EXPECT_EQ(g.edge_weight(1, 0), 3u);
  g.validate();
}

TEST(GraphBuilder, AdjacencySorted) {
  CsrGraph g = test::make_graph(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  g.validate();
}

TEST(GraphBuilder, RejectsOutOfRangeEdge) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), CheckFailure);
  EXPECT_THROW(b.add_edge(7, 1), CheckFailure);
}

TEST(GraphBuilder, RejectsZeroWeight) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 1, 0), CheckFailure);
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b(3);
  CsrGraph g = b.build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(1), 0u);
  g.validate();
}

TEST(CsrGraph, EdgeListRoundTrips) {
  CsrGraph g = test::make_graph(
      6, {{0, 1}, {1, 2, 4}, {2, 3}, {3, 4, 2}, {4, 5}, {5, 0}});
  auto edges = g.edge_list();
  GraphBuilder b(6);
  b.add_edges(edges);
  CsrGraph h = b.build();
  EXPECT_EQ(h.edge_list(), edges);
}

TEST(CsrGraph, UnitWeightsFlag) {
  EXPECT_TRUE(test::make_graph(3, {{0, 1}, {1, 2}}).unit_weights());
  EXPECT_FALSE(test::make_graph(3, {{0, 1}, {1, 2, 7}}).unit_weights());
  EXPECT_EQ(test::make_graph(3, {{0, 1}, {1, 2, 7}}).max_weight(), 7u);
}

TEST(CsrGraph, EdgeWeightOfMissingEdgeThrows) {
  CsrGraph g = test::make_graph(3, {{0, 1}});
  EXPECT_THROW(g.edge_weight(0, 2), CheckFailure);
}

TEST(GraphIo, ReadsEdgeListWithCommentsAndRemap) {
  std::istringstream in(
      "# a comment\n"
      "% another\n"
      "100 200\n"
      "200 300\n"
      "\n"
      "300 100\n");
  CsrGraph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphIo, ReadsOptionalWeights) {
  std::istringstream in("0 1 4\n1 2\n");
  CsrGraph g = read_edge_list(in);
  EXPECT_EQ(g.edge_weight(0, 1), 4u);
  EXPECT_EQ(g.edge_weight(1, 2), 1u);
}

TEST(GraphIo, RejectsMalformedLine) {
  std::istringstream in("0 1\nbroken line\n");
  EXPECT_THROW(read_edge_list(in), InputError);
}

TEST(GraphIo, StitchPolicyConnectsComponents) {
  std::istringstream in("0 1\n2 3\n4 5\n");
  CsrGraph g = read_edge_list(in, ConnectPolicy::kStitchComponents);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_nodes(), 6u);
}

TEST(GraphIo, LargestComponentPolicy) {
  std::istringstream in("0 1\n1 2\n2 0\n3 4\n");
  CsrGraph g = read_edge_list(in, ConnectPolicy::kLargestComponent);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(GraphIo, WriteReadRoundTrip) {
  CsrGraph g = test::make_graph(5, {{0, 1}, {1, 2, 3}, {2, 3}, {3, 4}});
  std::ostringstream out;
  write_edge_list(g, out);
  std::istringstream in(out.str());
  CsrGraph h = read_edge_list(in, ConnectPolicy::kKeepAsIs);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.edge_weight(1, 2), 3u);
}

}  // namespace
}  // namespace brics
