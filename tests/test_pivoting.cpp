#include <gtest/gtest.h>

#include "core/farness.hpp"
#include "core/pivoting.hpp"
#include "core/quality.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(Pivoting, FullRateIsExact) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 100, 3}.build();
  auto actual = exact_farness(g);
  PivotOptions o;
  o.sample_rate = 1.0;
  for (PivotCombine c : {PivotCombine::kPivotOnly, PivotCombine::kHybrid}) {
    o.combine = c;
    auto est = estimate_pivoting(g, o);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_TRUE(est.exact[v]);
      EXPECT_DOUBLE_EQ(est.farness[v], double(actual[v]));
    }
  }
}

TEST(Pivoting, SampledNodesAlwaysExact) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 200, 7}.build();
  auto actual = exact_farness(g);
  PivotOptions o;
  o.sample_rate = 0.3;
  auto est = estimate_pivoting(g, o);
  NodeId exact_count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!est.exact[v]) continue;
    ++exact_count;
    EXPECT_DOUBLE_EQ(est.farness[v], double(actual[v]));
  }
  EXPECT_EQ(exact_count, est.samples);
}

TEST(Pivoting, RejectsBadOptions) {
  CsrGraph g = test::make_graph(3, {{0, 1}, {1, 2}});
  PivotOptions o;
  o.sample_rate = 0.0;
  EXPECT_THROW(estimate_pivoting(g, o), CheckFailure);
  o.sample_rate = 0.5;
  o.bias = 2.0;
  EXPECT_THROW(estimate_pivoting(g, o), CheckFailure);
}

class PivotingProperty
    : public ::testing::TestWithParam<test::RandomGraphCase> {};

TEST_P(PivotingProperty, AllVariantsTrackExact) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 30) return;
  auto actual = exact_farness(g);
  for (PivotCombine c : {PivotCombine::kPivotOnly, PivotCombine::kHybrid}) {
    PivotOptions o;
    o.sample_rate = 0.4;
    o.seed = 13;
    o.combine = c;
    auto est = estimate_pivoting(g, o);
    QualityReport q = quality(est.farness, actual);
    EXPECT_GT(q.quality, 0.6) << "combine=" << int(c);
    EXPECT_LT(q.quality, 1.6) << "combine=" << int(c);
  }
}

TEST_P(PivotingProperty, HybridNoWorseThanPivotOnAverage) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 60) return;
  auto actual = exact_farness(g);
  double err_pivot = 0.0, err_hybrid = 0.0;
  for (std::uint64_t seed : {3ULL, 11ULL, 29ULL}) {
    PivotOptions o;
    o.sample_rate = 0.3;
    o.seed = seed;
    o.combine = PivotCombine::kPivotOnly;
    err_pivot += quality(estimate_pivoting(g, o).farness, actual)
                     .mean_abs_err;
    o.combine = PivotCombine::kHybrid;
    err_hybrid += quality(estimate_pivoting(g, o).farness, actual)
                      .mean_abs_err;
  }
  // Cohen et al.'s observation: the hybrid dominates pivoting alone. Allow
  // slack for small-sample noise.
  EXPECT_LT(err_hybrid, err_pivot * 1.2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PivotingProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
