#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/connectivity.hpp"
#include "reduce/reducer.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(Generators, ErdosRenyiBasics) {
  Rng rng(1);
  CsrGraph g = erdos_renyi(200, 600, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_LE(g.num_edges(), 600u);  // duplicates merged
  EXPECT_GE(g.num_edges(), 400u);  // but not too many collisions
  g.validate();
}

TEST(Generators, Deterministic) {
  Rng a(42), b(42);
  CsrGraph g1 = erdos_renyi(100, 300, a);
  CsrGraph g2 = erdos_renyi(100, 300, b);
  EXPECT_EQ(g1.edge_list(), g2.edge_list());
}

TEST(Generators, BarabasiAlbertDegreeSkew) {
  Rng rng(7);
  CsrGraph g = barabasi_albert(2000, 2, rng);
  g.validate();
  std::uint32_t dmax = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    dmax = std::max(dmax, g.degree(v));
  // Preferential attachment must produce hubs far above the mean (~4).
  EXPECT_GT(dmax, 30u);
}

TEST(Generators, RmatShape) {
  Rng rng(3);
  CsrGraph g = rmat(10, 8, 0.57, 0.19, 0.19, rng);
  EXPECT_EQ(g.num_nodes(), 1024u);
  g.validate();
}

TEST(Generators, PlantedPartitionIsDenserInside) {
  Rng rng(5);
  CsrGraph g = planted_partition(4, 100, 400, 100, rng);
  std::uint64_t inside = 0, across = 0;
  for (const Edge& e : g.edge_list())
    (e.u / 100 == e.v / 100 ? inside : across) += 1;
  EXPECT_GT(inside, across * 3);
}

TEST(Generators, GridDegreesBounded) {
  Rng rng(2);
  CsrGraph g = grid2d(20, 30, 1.0, rng);
  EXPECT_EQ(g.num_nodes(), 600u);
  EXPECT_EQ(g.num_edges(), 19u * 30 + 20u * 29);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_LE(g.degree(v), 4u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(9);
  CsrGraph g = random_tree(500, rng);
  EXPECT_EQ(g.num_edges(), 499u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, SubdivideCreatesChainMass) {
  Rng rng(4);
  CsrGraph base = grid2d(10, 10, 1.0, rng);
  CsrGraph g = subdivide_edges(base, 1.0, 2, 2, rng);
  EXPECT_EQ(g.num_nodes(), base.num_nodes() + 2 * base.num_edges());
  // Every subdivision node has degree exactly 2.
  for (NodeId v = base.num_nodes(); v < g.num_nodes(); ++v)
    EXPECT_EQ(g.degree(v), 2u);
  // Distances scale by 3 (every edge became a 3-hop path).
  EXPECT_EQ(sssp_distances(g, 0)[9], 27u);
}

TEST(Generators, PendantChainsAreChains) {
  Rng rng(6);
  CsrGraph base = erdos_renyi(50, 200, rng);
  base = make_connected(base);
  CsrGraph g = attach_pendant_chains(base, 10, 3, 3, rng);
  EXPECT_EQ(g.num_nodes(), base.num_nodes() + 30);
  ReduceOptions o;
  o.identical = false;
  o.redundant = false;
  ReducedGraph rg = reduce(g, o);
  EXPECT_GE(rg.stats.chains.removed, 30u);
}

TEST(Generators, PlantedTwinsAreDetected) {
  Rng rng(8);
  CsrGraph base = barabasi_albert(500, 3, rng);
  CsrGraph g = plant_twins(base, 200, rng);
  ReduceOptions o;
  o.chains = false;
  o.redundant = false;
  ReducedGraph rg = reduce(g, o);
  // Groups of 2-5 copies: at least half the planted mass must collapse.
  EXPECT_GE(rg.stats.identical.removed, 100u);
}

TEST(Generators, PlantedRedundant3Detected) {
  Rng rng(10);
  CsrGraph base = barabasi_albert(400, 3, rng);
  CsrGraph g = plant_redundant3(base, 50, rng);
  ReduceOptions o;
  o.identical = false;
  o.chains = false;
  ReducedGraph rg = reduce(g, o);
  EXPECT_GE(rg.stats.redundant.removed, 40u);
}

TEST(Generators, PlantedRedundant4Detected) {
  Rng rng(11);
  CsrGraph base = barabasi_albert(400, 3, rng);
  CsrGraph g = plant_redundant4(base, 40, rng);
  ReduceOptions o;
  o.identical = false;
  o.chains = false;
  ReducedGraph rg = reduce(g, o);
  EXPECT_GE(rg.stats.redundant.removed, 20u);
}

TEST(Generators, ParallelChainsYieldIdenticalChainStat) {
  Rng rng(12);
  CsrGraph base = barabasi_albert(300, 3, rng);
  CsrGraph g = add_parallel_chains(base, 40, 2, 4, rng);
  ReduceOptions o;
  o.identical = false;
  o.redundant = false;
  ReducedGraph rg = reduce(g, o);
  EXPECT_GT(rg.stats.chains.identical_chain_nodes, 0u);
  EXPECT_GE(rg.stats.chains.through_chains, 20u);
}

TEST(Generators, WebCopyingHasTwinMass) {
  Rng rng(13);
  CsrGraph g = web_copying(3000, 5, 0.5, 0.7, rng);
  g = make_connected(g);
  ReduceOptions o;
  o.chains = false;
  o.redundant = false;
  ReducedGraph rg = reduce(g, o);
  EXPECT_GT(rg.stats.identical.removed, g.num_nodes() / 20);
}

}  // namespace
}  // namespace brics
