#include <gtest/gtest.h>

#include <algorithm>

#include "core/farness.hpp"
#include "extensions/topk.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

// Reference: sort nodes by exact farness.
std::vector<std::pair<FarnessSum, NodeId>> ranked(const CsrGraph& g) {
  auto f = exact_farness(g);
  std::vector<std::pair<FarnessSum, NodeId>> r;
  for (NodeId v = 0; v < g.num_nodes(); ++v) r.emplace_back(f[v], v);
  std::sort(r.begin(), r.end());
  return r;
}

TEST(TopK, StarCentre) {
  CsrGraph g = test::make_graph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  TopKResult r = top_k_closeness(g, 1);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_EQ(r.nodes[0], 0u);
  EXPECT_EQ(r.farness[0], 5u);
  EXPECT_TRUE(r.is_exact);
}

TEST(TopK, PathGraphMiddle) {
  CsrGraph g = test::make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  TopKResult r = top_k_closeness(g, 1);
  EXPECT_EQ(r.nodes[0], 2u);
}

TEST(TopK, ReturnsSortedFarness) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 120, 5}.build();
  TopKResult r = top_k_closeness(g, 7);
  ASSERT_EQ(r.farness.size(), 7u);
  EXPECT_TRUE(std::is_sorted(r.farness.begin(), r.farness.end()));
}

TEST(TopK, KEqualsNReturnsEverything) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  TopKResult r = top_k_closeness(g, 4);
  EXPECT_EQ(r.nodes.size(), 4u);
}

TEST(TopK, RejectsBadK) {
  CsrGraph g = test::make_graph(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(top_k_closeness(g, 0), CheckFailure);
  EXPECT_THROW(top_k_closeness(g, 4), CheckFailure);
}

TEST(TopK, VerificationBudgetMarksInexact) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 150, 9}.build();
  TopKOptions opts;
  opts.max_verifications = 3;
  TopKResult r = top_k_closeness(g, 10, opts);
  EXPECT_FALSE(r.is_exact);
  EXPECT_LE(r.traversals, 3u);
}

TEST(OneMedian, MatchesBruteForce) {
  for (std::uint64_t seed : {3ULL, 14ULL, 59ULL}) {
    CsrGraph g = test::RandomGraphCase{"twins_and_chains", 100, seed}.build();
    NodeId med = one_median(g);
    auto ref = ranked(g);
    EXPECT_EQ(exact_farness_of(g, med), ref.front().first) << "seed " << seed;
  }
}

class TopKProperty : public ::testing::TestWithParam<test::RandomGraphCase> {};

TEST_P(TopKProperty, MatchesBruteForceRanking) {
  CsrGraph g = GetParam().build();
  const NodeId k = std::min<NodeId>(5, g.num_nodes());
  TopKResult r = top_k_closeness(g, k);
  auto ref = ranked(g);
  ASSERT_EQ(r.nodes.size(), k);
  for (NodeId i = 0; i < k; ++i) {
    // Farness values must match the brute-force ranking (node ids may
    // differ under ties).
    EXPECT_EQ(r.farness[i], ref[i].first) << "rank " << i;
    EXPECT_EQ(exact_farness_of(g, r.nodes[i]), r.farness[i]);
  }
}

TEST_P(TopKProperty, PruningSavesWorkOnGoodEstimates) {
  CsrGraph g = GetParam().build();
  if (g.num_nodes() < 100) return;
  TopKResult r = top_k_closeness(g, 3);
  // The cutoff rule must prune at least some traversals' full expansion:
  // total levels expanded < sum of full-BFS depths, proxied loosely here by
  // demanding the average expansion stays below the graph's full level
  // count for most traversals.
  EXPECT_EQ(r.traversals, g.num_nodes());  // every candidate examined
  EXPECT_GT(r.levels_expanded, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKProperty,
                         ::testing::ValuesIn(test::standard_cases()),
                         test::case_name);

}  // namespace
}  // namespace brics
