// Weighted-input coverage: the full pipeline accepts integer-weighted
// graphs (Dial replaces BFS everywhere), so every exactness property must
// hold there too. The standard sweep uses unit weights; this suite re-runs
// the load-bearing properties on randomly weighted graphs.
#include <gtest/gtest.h>

#include "core/brics.hpp"
#include "core/farness.hpp"
#include "core/quality.hpp"
#include "core/sampling.hpp"
#include "reduce/reducer.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

struct WeightedCase {
  std::string base;
  NodeId n;
  std::uint64_t seed;
  Weight max_w;
};

CsrGraph build_weighted(const WeightedCase& c) {
  CsrGraph g = test::RandomGraphCase{c.base, c.n, c.seed}.build();
  Rng rng(c.seed * 7 + 1);
  GraphBuilder b(g.num_nodes());
  for (const Edge& e : g.edge_list())
    b.add_edge(e.u, e.v,
               static_cast<Weight>(rng.range(1, c.max_w)));
  return b.build();
}

std::string wcase_name(const testing::TestParamInfo<WeightedCase>& info) {
  return info.param.base + "_n" + std::to_string(info.param.n) + "_s" +
         std::to_string(info.param.seed) + "_w" +
         std::to_string(info.param.max_w);
}

std::vector<WeightedCase> weighted_cases() {
  std::vector<WeightedCase> out;
  for (const std::string& base :
       {std::string("erdos_renyi"), std::string("twins_and_chains"),
        std::string("grid_subdivided"), std::string("triangle_rich")})
    for (Weight w : {Weight{3}, Weight{9}})
      out.push_back({base, 140, 5 + w, w});
  return out;
}

class WeightedProperty : public ::testing::TestWithParam<WeightedCase> {};

TEST_P(WeightedProperty, ReductionPreservesWeightedDistances) {
  CsrGraph g = build_weighted(GetParam());
  ReducedGraph rg = reduce(g, ReduceOptions{});
  TraversalWorkspace wo, wr;
  for (NodeId s = 0; s < g.num_nodes(); s += 3) {
    if (!rg.present[s]) continue;
    sssp(g, s, wo);
    sssp(rg.graph, s, wr);
    std::vector<Dist> resolved(wr.dist().begin(), wr.dist().end());
    rg.ledger.resolve(resolved);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      ASSERT_EQ(resolved[v], wo.dist()[v]) << "s=" << s << " v=" << v;
  }
}

TEST_P(WeightedProperty, BricsFullRateExactOnPresent) {
  CsrGraph g = build_weighted(GetParam());
  auto actual = exact_farness(g);
  EstimateOptions o;
  o.sample_rate = 1.0;
  o.seed = 3;
  auto est = estimate_brics(g, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!est.exact[v]) continue;
    ASSERT_NEAR(est.farness[v], double(actual[v]), 1e-6) << v;
  }
}

TEST_P(WeightedProperty, ReducedSamplingFullRateExactOnPresent) {
  CsrGraph g = build_weighted(GetParam());
  auto actual = exact_farness(g);
  EstimateOptions o;
  o.sample_rate = 1.0;
  o.seed = 9;
  auto est = estimate_reduced_sampling(g, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!est.exact[v]) continue;
    ASSERT_NEAR(est.farness[v], double(actual[v]), 1e-6) << v;
  }
}

TEST_P(WeightedProperty, ModerateRateQualityReasonable) {
  CsrGraph g = build_weighted(GetParam());
  auto actual = exact_farness(g);
  EstimateOptions o;
  o.sample_rate = 0.5;
  o.seed = 21;
  auto est = estimate_brics(g, o);
  QualityReport q = quality(est.farness, actual);
  EXPECT_GT(q.quality, 0.6);
  EXPECT_LT(q.quality, 1.7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeightedProperty,
                         ::testing::ValuesIn(weighted_cases()), wcase_name);

}  // namespace
}  // namespace brics
