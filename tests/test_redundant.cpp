#include <gtest/gtest.h>

#include "reduce/redundant.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

struct Pass {
  std::vector<std::uint8_t> present;
  ReductionLedger ledger;
  RedundantPassStats stats;

  explicit Pass(const CsrGraph& g)
      : present(g.num_nodes(), 1), ledger(g.num_nodes()) {
    stats = remove_redundant_nodes(g, present, ledger);
  }
};

// Fig. 1(e): degree-3 node whose neighbours form a triangle.
TEST(RedundantNodes, Degree3Triangle) {
  // Triangle {0,1,2} with a leaf on each corner breaks every certificate
  // except node 3's, whose neighbours {0,1,2} are mutually adjacent.
  CsrGraph g = test::make_graph(
      7, {{0, 1}, {1, 2}, {2, 0},
          {3, 0}, {3, 1}, {3, 2},
          {0, 4}, {1, 5}, {2, 6}});
  Pass p(g);
  EXPECT_FALSE(p.present[3]);
  EXPECT_EQ(p.stats.degree3, 1u);
  EXPECT_EQ(p.stats.removed, 1u);
  EXPECT_TRUE(p.present[0]);
  EXPECT_TRUE(p.present[1]);
  EXPECT_TRUE(p.present[2]);
}

// Fig. 1(f): degree-4 node, every neighbour adjacent to >= 2 others.
TEST(RedundantNodes, Degree4Cycle) {
  // 4-cycle 0-1-2-3-0; centre 4 adjacent to all; stubs keep rim degrees
  // above 4 so only the centre qualifies.
  CsrGraph g = test::make_graph(10, {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                                     {4, 0}, {4, 1}, {4, 2}, {4, 3},
                                     {0, 5}, {0, 6}, {1, 5}, {1, 6},
                                     {2, 7}, {2, 8}, {3, 7}, {3, 8},
                                     {5, 9}, {6, 9}, {7, 9}, {8, 9}});
  Pass p(g);
  EXPECT_FALSE(p.present[4]);
}

TEST(RedundantNodes, Degree3WithoutTriangleKept) {
  // Star centre has degree 3 but leaves are not mutually adjacent.
  CsrGraph g = test::make_graph(4, {{0, 1}, {0, 2}, {0, 3}});
  Pass p(g);
  EXPECT_EQ(p.stats.removed, 0u);
}

TEST(RedundantNodes, Degree4MissingDetourKept) {
  // Centre 4 adjacent to path 0-1-2-3 (no closing edge 3-0): neighbours 0
  // and 3 have only one neighbour-of-centre contact each.
  CsrGraph g = test::make_graph(5, {{0, 1}, {1, 2}, {2, 3},
                                    {4, 0}, {4, 1}, {4, 2}, {4, 3}});
  Pass p(g);
  EXPECT_TRUE(p.present[4]);
}

TEST(RedundantNodes, WeightedDetourMustBeNoLonger) {
  // Triangle edge (1,2) weighs 5 > w(1,v)+w(v,2) = 2: removing v would
  // stretch the 1~2 distance, so v must be kept.
  CsrGraph g = test::make_graph(
      4, {{0, 1}, {1, 2, 5}, {2, 0}, {3, 0}, {3, 1}, {3, 2}});
  Pass p(g);
  EXPECT_TRUE(p.present[3]);
}

TEST(RedundantNodes, AdjacentRedundantNotBothRemovedWhenCertBreaks) {
  // Two adjacent centres of one triangle: removing the first invalidates
  // the second's certificate edge set; the sequential live check must keep
  // the second (or remove them in an order that stays exact). We only
  // assert the distance-preservation property here.
  CsrGraph g = test::make_graph(
      5, {{0, 1}, {1, 2}, {2, 0}, {3, 0}, {3, 1}, {3, 2},
          {4, 0}, {4, 1}, {4, 3}});
  auto before = test::all_pairs(g);
  Pass p(g);
  // Whatever was removed, distances among present nodes are unchanged.
  // Rebuild reduced graph.
  GraphBuilder b(5);
  for (const Edge& e : g.edge_list())
    if (p.present[e.u] && p.present[e.v]) b.add_edge(e.u, e.v, e.w);
  CsrGraph rg = b.build();
  for (NodeId s = 0; s < 5; ++s) {
    if (!p.present[s]) continue;
    auto d = sssp_distances(rg, s);
    for (NodeId v = 0; v < 5; ++v) {
      if (p.present[v]) {
        EXPECT_EQ(d[v], before[s][v]) << s << "," << v;
      }
    }
  }
}

TEST(RedundantNodes, PinnedCandidateKept) {
  // Same shape as Degree3Triangle, but node 3 is pinned (anchor of a record
  // removing the isolated dummy node 7) and must survive.
  CsrGraph g = test::make_graph(
      8, {{0, 1}, {1, 2}, {2, 0},
          {3, 0}, {3, 1}, {3, 2},
          {0, 4}, {1, 5}, {2, 6}});
  std::vector<std::uint8_t> present(8, 1);
  ReductionLedger ledger(8);
  ledger.record_redundant(7, std::vector<NodeId>{3},
                          std::vector<Weight>{1});
  present[7] = 0;
  RedundantPassStats st = remove_redundant_nodes(g, present, ledger);
  EXPECT_TRUE(present[3]);
  EXPECT_EQ(st.removed, 0u);
}

TEST(RedundantNodes, RecordStoresLiveNeighbours) {
  CsrGraph g = test::make_graph(
      7, {{0, 1}, {1, 2}, {2, 0},
          {3, 0}, {3, 1}, {3, 2},
          {0, 4}, {1, 5}, {2, 6}});
  Pass p(g);
  ASSERT_EQ(p.ledger.redundant().size(), 1u);
  const RedundantRecord& r = p.ledger.redundant()[0];
  EXPECT_EQ(r.node, 3u);
  EXPECT_EQ(r.degree, 3u);
  std::set<NodeId> nbrs(r.nbrs.begin(), r.nbrs.begin() + r.degree);
  EXPECT_EQ(nbrs, (std::set<NodeId>{0, 1, 2}));
}

}  // namespace
}  // namespace brics
