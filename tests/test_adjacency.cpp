// Varint/delta codec and adjacency-view tests: known-answer LEB128
// encodings, adversarial byte streams (truncated / overlong / overflowing
// varints must raise InputError, never read out of bounds), and
// compress()/decompress() round trips that must reproduce every row
// bit-for-bit in both unit-weight and weighted graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "exec/errors.hpp"
#include "graph/adjacency.hpp"
#include "graph/csr_graph.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

using test::make_graph;

std::vector<std::uint8_t> enc(std::uint64_t x) {
  std::vector<std::uint8_t> out;
  varint_append(out, x);
  return out;
}

std::uint64_t dec_checked(const std::vector<std::uint8_t>& bytes) {
  const std::uint8_t* p = bytes.data();
  return varint_decode_checked(p, bytes.data() + bytes.size());
}

// ---- Known-answer encodings ---------------------------------------------

TEST(Varint, KnownAnswerEncodings) {
  EXPECT_EQ(enc(0), (std::vector<std::uint8_t>{0x00}));
  EXPECT_EQ(enc(1), (std::vector<std::uint8_t>{0x01}));
  EXPECT_EQ(enc(127), (std::vector<std::uint8_t>{0x7F}));
  EXPECT_EQ(enc(128), (std::vector<std::uint8_t>{0x80, 0x01}));
  EXPECT_EQ(enc(300), (std::vector<std::uint8_t>{0xAC, 0x02}));
  EXPECT_EQ(enc(16383), (std::vector<std::uint8_t>{0xFF, 0x7F}));
  EXPECT_EQ(enc(16384), (std::vector<std::uint8_t>{0x80, 0x80, 0x01}));
  // UINT64_MAX: nine 0xFF groups carrying 63 bits, final byte 0x01.
  EXPECT_EQ(enc(std::numeric_limits<std::uint64_t>::max()),
            (std::vector<std::uint8_t>{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                       0xFF, 0xFF, 0xFF, 0x01}));
}

TEST(Varint, RoundTripAtGroupBoundaries) {
  std::vector<std::uint64_t> values = {0, 1, 2, 63, 64, 65};
  for (unsigned k = 1; k <= 9; ++k) {
    const std::uint64_t b = std::uint64_t{1} << (7 * k);
    values.push_back(b - 1);
    values.push_back(b);
    values.push_back(b + 1);
  }
  values.push_back(std::numeric_limits<std::uint64_t>::max());
  for (std::uint64_t v : values) {
    const std::vector<std::uint8_t> bytes = enc(v);
    ASSERT_LE(bytes.size(), kMaxVarintBytes);
    EXPECT_EQ(dec_checked(bytes), v) << v;
    // The unchecked hot-path decoder must agree on every accepted stream.
    const std::uint8_t* p = bytes.data();
    EXPECT_EQ(varint_decode(p), v) << v;
    EXPECT_EQ(p, bytes.data() + bytes.size()) << v;
  }
}

TEST(Varint, CheckedDecodeAdvancesPastEachValue) {
  std::vector<std::uint8_t> bytes;
  varint_append(bytes, 5);
  varint_append(bytes, 300);
  varint_append(bytes, 0);
  const std::uint8_t* p = bytes.data();
  const std::uint8_t* end = bytes.data() + bytes.size();
  EXPECT_EQ(varint_decode_checked(p, end), 5u);
  EXPECT_EQ(varint_decode_checked(p, end), 300u);
  EXPECT_EQ(varint_decode_checked(p, end), 0u);
  EXPECT_EQ(p, end);
}

// ---- Adversarial byte streams -------------------------------------------

TEST(Varint, TruncatedStreamRaises) {
  // Continuation bit set but the stream ends.
  const std::vector<std::vector<std::uint8_t>> streams = {
      {}, {0x80}, {0xFF, 0xFF}, {0x80, 0x80, 0x80}};
  for (const std::vector<std::uint8_t>& bytes : streams)
    EXPECT_THROW(dec_checked(bytes), InputError) << bytes.size();
}

TEST(Varint, OverlongEncodingRaises) {
  // A canonical encoder never emits a multi-byte varint whose last byte is
  // 0x00 — 128 encoded in two groups, say. Decoding one is adversarial
  // input, not an alternate spelling.
  EXPECT_THROW(dec_checked({0x80, 0x00}), InputError);
  EXPECT_THROW(dec_checked({0xFF, 0x80, 0x00}), InputError);
}

TEST(Varint, OverflowRaises) {
  // Ten full groups: bit 70 would be set — does not fit in 64 bits.
  EXPECT_THROW(
      dec_checked({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                   0x02}),
      InputError);
  // Eleven bytes: longer than any canonical 64-bit varint.
  EXPECT_THROW(
      dec_checked({0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                   0x80, 0x01}),
      InputError);
}

// ---- Compress / decompress round trips ----------------------------------

CsrGraph weighted_fixture() {
  return make_graph(6, {{0, 1, 3}, {0, 2, 1}, {1, 2, 7}, {2, 3, 2},
                        {3, 4, 300}, {4, 5, 1}, {0, 5, 128}});
}

TEST(CompactStorage, RoundTripPreservesEveryRow) {
  for (const CsrGraph& orig :
       {make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 3}}),
        weighted_fixture()}) {
    CsrGraph g = orig;
    g.compress();
    EXPECT_EQ(g.storage(), AdjacencyStorage::kCompact);
    g.validate();
    EXPECT_TRUE(test::graphs_equal(g, orig));
    g.decompress();
    EXPECT_EQ(g.storage(), AdjacencyStorage::kPlain);
    for (NodeId v = 0; v < orig.num_nodes(); ++v) {
      ASSERT_EQ(g.degree(v), orig.degree(v));
      EXPECT_TRUE(std::ranges::equal(g.neighbors(v), orig.neighbors(v)));
      EXPECT_TRUE(std::ranges::equal(g.weights(v), orig.weights(v)));
    }
  }
}

TEST(CompactStorage, ViewsAgreeAcrossBackends) {
  const CsrGraph plain = weighted_fixture();
  CsrGraph compact = plain;
  compact.compress();
  for (NodeId v = 0; v < plain.num_nodes(); ++v) {
    std::vector<std::pair<NodeId, Weight>> a, b, c;
    plain.for_neighbors(v, [&](NodeId t, Weight w) { a.emplace_back(t, w); });
    compact.for_neighbors(v,
                          [&](NodeId t, Weight w) { b.emplace_back(t, w); });
    compact.with_adjacency([&](const auto& adj) {
      for (auto cur = adj.cursor(v); !cur.done(); cur.advance())
        c.emplace_back(cur.target(), cur.weight());
    });
    EXPECT_EQ(a, b) << "node " << v;
    EXPECT_EQ(a, c) << "node " << v;
  }
}

TEST(CompactStorage, RowAndFindEdgeDecodeCompactRows) {
  const CsrGraph plain = weighted_fixture();
  CsrGraph compact = plain;
  compact.compress();
  RowScratch scratch;
  for (NodeId v = 0; v < plain.num_nodes(); ++v) {
    const RowRef r = compact.row(v, scratch);
    EXPECT_TRUE(std::ranges::equal(r.nbrs, plain.neighbors(v)));
    EXPECT_TRUE(std::ranges::equal(r.wts, plain.weights(v)));
  }
  Weight w = 0;
  EXPECT_TRUE(compact.find_edge(3, 4, w));
  EXPECT_EQ(w, 300);
  EXPECT_FALSE(compact.find_edge(0, 3, w));
}

TEST(CompactStorage, AdjacencyBytesShrinkOnRandomGraphs) {
  for (const char* recipe : {"erdos_renyi", "barabasi_albert", "tree"}) {
    const CsrGraph plain = test::RandomGraphCase{recipe, 400, 9}.build();
    CsrGraph compact = plain;
    compact.compress();
    EXPECT_TRUE(test::graphs_equal(compact, plain)) << recipe;
    EXPECT_LE(compact.adjacency_bytes(),
              (plain.adjacency_bytes() * 6) / 10)
        << recipe;
    const GraphMemory m = compact.memory();
    EXPECT_EQ(m.targets_bytes, 0u);
    EXPECT_EQ(m.weights_bytes, 0u);
    EXPECT_GT(m.adj_payload_bytes, 0u);
    EXPECT_GT(m.byte_offsets_bytes, 0u);
  }
}

}  // namespace
}  // namespace brics
