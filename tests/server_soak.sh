#!/bin/sh
# Server soak smoke (docs/SERVER.md): the daemon's acceptance test.
#
#   1. Start brics_serve with a state dir, a small admission queue and the
#      watchdog, optionally with one chaos fail point armed via
#      BRICS_FAILPOINTS ($4).
#   2. Hammer it with concurrent clients: zero hangs required — every
#      request is answered or explicitly shed (the client exits non-zero
#      on any hang).
#   3. SIGKILL the daemon, restart over the same state dir: it must
#      resume from the last committed graph version, and two independent
#      restarts must serve bit-identical farness answers.
#   4. SIGTERM the daemon: clean drain, exit 0, socket unlinked.
#
# usage: server_soak.sh <brics_serve> <brics_client> <work_dir> [failpoints]
set -eu

SERVE=$1
CLIENT=$2
WORK=$3
FAILPOINTS=${4:-}

# The watchdog must stay far above the worst-case honest request latency,
# or sanitizer builds (TSan is ~10x, and the soak adds 4-way CPU
# contention) get legitimate updates quarantined as wedged. Deterministic
# watchdog coverage lives in the LiveServer gtest via debug_sleep.
WATCHDOG_MS=${BRICS_SOAK_WATCHDOG_MS:-60000}
RECV_TIMEOUT_MS=${BRICS_SOAK_RECV_TIMEOUT_MS:-120000}

rm -rf "$WORK"
mkdir -p "$WORK"
STATE="$WORK/state"
# sockaddr_un caps the path at ~107 bytes; keep the socket in /tmp.
SOCK=$(mktemp -u /tmp/brics_soak_XXXXXX.sock)
trap 'rm -f "$SOCK" "$SOCK.flight.json"' EXIT

fail() { echo "server_soak: FAIL — $1" >&2; exit 1; }

wait_ready() { # $1 = log file, $2 = pid
  i=0
  while ! grep -q '^ready$' "$1" 2>/dev/null; do
    kill -0 "$2" 2>/dev/null || { cat "$1" >&2; fail "server died before ready"; }
    i=$((i + 1))
    [ "$i" -gt 300 ] && { cat "$1" >&2; fail "server never became ready"; }
    sleep 0.1
  done
}

start_server() { # $1 = log file, $2 = failpoint spec (may be empty)
  if [ -n "$2" ]; then
    BRICS_FAILPOINTS="$2" "$SERVE" @road-rural --scale 0.03 --rate 1 \
      --socket "$SOCK" --state-dir "$STATE" --workers 2 --queue 4 \
      --watchdog-ms "$WATCHDOG_MS" > "$1" 2>&1 &
  else
    "$SERVE" @road-rural --scale 0.03 --rate 1 \
      --socket "$SOCK" --state-dir "$STATE" --workers 2 --queue 4 \
      --watchdog-ms "$WATCHDOG_MS" > "$1" 2>&1 &
  fi
  PID=$!
  wait_ready "$1" "$PID"
}

hello_version() { # prints the version the server reports
  "$CLIENT" "$SOCK" hello | sed -n 's/.*version=\([0-9]*\).*/\1/p' | head -1
}

# --- 1+2: soak against a live (possibly fault-injected) daemon ----------
start_server "$WORK/serve1.log" "$FAILPOINTS"

"$CLIENT" "$SOCK" soak --clients 4 --requests 25 --update-every 10 \
  --recv-timeout-ms "$RECV_TIMEOUT_MS" > "$WORK/soak.log" 2>&1 \
  || { cat "$WORK/soak.log" >&2; fail "soak reported hangs or died"; }
cat "$WORK/soak.log"

# The summary carries client-observed latency percentiles; a soak that
# answered requests must report a positive p99.
grep -q 'p50_ms=' "$WORK/soak.log" || fail "soak summary missing p50_ms"
grep -q 'p95_ms=' "$WORK/soak.log" || fail "soak summary missing p95_ms"
P99=$(sed -n 's/.*p99_ms=\([0-9.]*\).*/\1/p' "$WORK/soak.log" | head -1)
[ -n "$P99" ] || fail "soak summary missing p99_ms"
case "$P99" in
  0|0.000) fail "p99_ms is zero after a non-empty soak" ;;
esac

# Live telemetry under load: the metrics request must answer on a build
# with metrics compiled in (exposition text), and answer with an explicit
# error (exit 3) — never a hang — on a -DBRICS_METRICS=OFF build.
if "$CLIENT" "$SOCK" metrics > "$WORK/metrics.txt" 2>&1; then
  grep -q '# TYPE brics_server_request_latency_us histogram' \
    "$WORK/metrics.txt" \
    || fail "metrics exposition missing request latency histogram"
  grep -q 'brics_server_request_latency_us_bucket{le="+Inf"}' \
    "$WORK/metrics.txt" \
    || fail "metrics exposition missing +Inf bucket"
  "$CLIENT" "$SOCK" metrics --json > "$WORK/metrics.json" 2>&1 \
    || fail "metrics --json failed on a metrics-on build"
  grep -q '"metrics_schema_version": 1' "$WORK/metrics.json" \
    || fail "metrics snapshot missing schema version"
  grep -q '"server\.request_latency_us"' "$WORK/metrics.json" \
    || fail "metrics snapshot missing request latency histogram"
else
  rc=$?
  [ "$rc" -eq 3 ] || fail "metrics request failed with unexpected code $rc"
  grep -q 'disabled' "$WORK/metrics.txt" \
    || fail "metrics-off reply should say the feature is disabled"
fi

V_BEFORE=$(hello_version)
[ -n "$V_BEFORE" ] || fail "could not read version from hello"
[ "$V_BEFORE" -gt 1 ] || fail "soak applied no updates (version=$V_BEFORE)"

# --- 3: SIGKILL, restart, resume check ---------------------------------
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
rm -f "$SOCK"

start_server "$WORK/serve2.log" ""
"$CLIENT" "$SOCK" hello | tee "$WORK/hello2.txt"
grep -q 'resumed=true' "$WORK/hello2.txt" \
  || fail "restart did not resume from committed state"
V_AFTER=$(hello_version)
[ "$V_AFTER" = "$V_BEFORE" ] \
  || fail "resumed version $V_AFTER != last committed $V_BEFORE"
"$CLIENT" "$SOCK" farness > "$WORK/far1.txt" \
  || fail "post-restart farness query failed"
# Betweenness rides the same resident state: the restarted daemon must
# answer BC and top-k-BC queries, bit-identically across restarts.
"$CLIENT" "$SOCK" bc > "$WORK/bc1.txt" \
  || fail "post-restart bc query failed"
"$CLIENT" "$SOCK" topk-bc --k 5 > "$WORK/topkbc1.txt" \
  || fail "post-restart topk-bc query failed"

kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
rm -f "$SOCK"

start_server "$WORK/serve3.log" ""
"$CLIENT" "$SOCK" farness > "$WORK/far2.txt" \
  || fail "second-restart farness query failed"
cmp "$WORK/far1.txt" "$WORK/far2.txt" \
  || fail "restarted answers are not bit-identical"
"$CLIENT" "$SOCK" bc > "$WORK/bc2.txt" \
  || fail "second-restart bc query failed"
cmp "$WORK/bc1.txt" "$WORK/bc2.txt" \
  || fail "restarted bc answers are not bit-identical"
"$CLIENT" "$SOCK" topk-bc --k 5 > "$WORK/topkbc2.txt" \
  || fail "second-restart topk-bc query failed"
cmp "$WORK/topkbc1.txt" "$WORK/topkbc2.txt" \
  || fail "restarted topk-bc answers are not bit-identical"

# --- 4: SIGTERM = clean drain, exit 0, socket unlinked ------------------
kill -TERM "$PID"
if wait "$PID"; then :; else fail "clean drain exited non-zero ($?)"; fi
[ ! -S "$SOCK" ] || fail "socket not unlinked after drain"
grep -q 'drained' "$WORK/serve3.log" || true

# The drain leaves the flight recorder's black box behind (default
# <socket>.flight.json): well-formed, drain-reasoned, and carrying the
# request events of the run.
FLIGHT="$SOCK.flight.json"
[ -f "$FLIGHT" ] || fail "drain left no flight dump at $FLIGHT"
grep -q '"flight_schema_version": *1' "$FLIGHT" \
  || fail "flight dump missing schema version"
grep -q '"reason": *"drain"' "$FLIGHT" || fail "flight dump reason != drain"
grep -q '"kind": *"drain"' "$FLIGHT" || fail "flight dump has no drain event"
grep -q '"kind": *"reply"' "$FLIGHT" || fail "flight dump has no reply events"
cp "$FLIGHT" "$WORK/flight.drain.json" 2>/dev/null || true

echo "server_soak: OK (soaked, killed, resumed v$V_BEFORE bit-identical, drained, flight dump verified)"
