// Differential mini-fuzz of the graph substrate: random edge soups
// (duplicates, reversals, self loops, weight collisions) are fed to
// GraphBuilder and compared, query by query, against a trivial reference
// implementation built on std::map.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace brics {
namespace {

struct ReferenceGraph {
  NodeId n;
  std::map<std::pair<NodeId, NodeId>, Weight> edges;

  void add(NodeId u, NodeId v, Weight w) {
    if (u == v) return;
    if (u > v) std::swap(u, v);
    auto [it, fresh] = edges.try_emplace({u, v}, w);
    if (!fresh) it->second = std::min(it->second, w);
  }

  std::uint32_t degree(NodeId v) const {
    std::uint32_t d = 0;
    for (const auto& [e, w] : edges)
      if (e.first == v || e.second == v) ++d;
    return d;
  }
};

class GraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphFuzz, BuilderMatchesReference) {
  Rng rng(GetParam());
  const NodeId n = static_cast<NodeId>(rng.range(2, 60));
  const int ops = static_cast<int>(rng.range(1, 400));

  GraphBuilder b(n);
  ReferenceGraph ref{n, {}};
  for (int i = 0; i < ops; ++i) {
    NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    Weight w = static_cast<Weight>(rng.range(1, 9));
    // Random mix of duplicates and reversed duplicates.
    b.add_edge(u, v, w);
    ref.add(u, v, w);
    if (rng.chance(0.3)) {
      b.add_edge(v, u, w + 1);
      ref.add(v, u, w + 1);
    }
  }
  CsrGraph g = b.build();
  g.validate();

  ASSERT_EQ(g.num_edges(), ref.edges.size());
  for (const auto& [e, w] : ref.edges) {
    ASSERT_TRUE(g.has_edge(e.first, e.second));
    ASSERT_TRUE(g.has_edge(e.second, e.first));
    ASSERT_EQ(g.edge_weight(e.first, e.second), w);
  }
  for (NodeId v = 0; v < n; ++v) ASSERT_EQ(g.degree(v), ref.degree(v));

  // Negative queries: a sample of absent pairs.
  for (int i = 0; i < 30; ++i) {
    NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    NodeId a = std::min(u, v), c = std::max(u, v);
    if (a == c || ref.edges.count({a, c})) continue;
    ASSERT_FALSE(g.has_edge(u, v));
  }

  // Round trip through the edge list.
  GraphBuilder b2(n);
  b2.add_edges(g.edge_list());
  ASSERT_EQ(b2.build().edge_list(), g.edge_list());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace brics
