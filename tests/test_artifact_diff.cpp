// JSON DOM parser (obs/json.hpp json_parse) and the bench-artifact diff
// engine behind brics-bench-diff (obs/artifact_diff.hpp). The diff tests
// drive the engine with synthetic artifacts so every exit-code path of the
// tool — pass, regression, structural note — is covered without running a
// bench.
#include <gtest/gtest.h>

#include <string>

#include "obs/artifact_diff.hpp"
#include "obs/json.hpp"

namespace brics {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(json_parse(text, v, &err)) << err << "\n" << text;
  return v;
}

// ---- json_parse ---------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").is_bool());
  EXPECT_TRUE(parse_ok("true").bool_v);
  EXPECT_FALSE(parse_ok("false").bool_v);
  EXPECT_DOUBLE_EQ(parse_ok("42").num_v, 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-3.5e2").num_v, -350.0);
  EXPECT_EQ(parse_ok("\"hi\"").str_v, "hi");
}

TEST(JsonParse, NestedStructure) {
  JsonValue v = parse_ok("{\"a\":[1,2,{\"b\":\"x\"}],\"c\":null}");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(a->arr[0].num_v, 1.0);
  const JsonValue* b = a->arr[2].find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->str_v, "x");
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_TRUE(v.find("c")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, EscapesAndUnicode) {
  EXPECT_EQ(parse_ok("\"a\\n\\t\\\\\\\"b\"").str_v, "a\n\t\\\"b");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").str_v, "\xc3\xa9");       // é
  EXPECT_EQ(parse_ok("\"\\u0041\"").str_v, "A");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").str_v, "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformed) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("", v, &err));
  EXPECT_FALSE(json_parse("{", v, &err));
  EXPECT_FALSE(json_parse("{\"a\":1,}", v, &err));
  EXPECT_FALSE(json_parse("[1 2]", v, &err));
  EXPECT_FALSE(json_parse("\"\\ud83d\"", v, &err));  // lone surrogate
  EXPECT_FALSE(json_parse("{\"a\":1} x", v, &err));
  EXPECT_FALSE(err.empty());
}

TEST(JsonParse, RoundTripsBenchShapedArtifact) {
  const std::string art =
      "{\"schema_version\":2,\"harness\":\"fig4\",\"params\":"
      "{\"scale\":0.15,\"repeats\":2,\"threads\":1},"
      "\"tables\":[{\"columns\":[\"graph\",\"t_rand\"],"
      "\"rows\":[[\"road-a\",\"0.120\"]]}]}";
  JsonValue v = parse_ok(art);
  EXPECT_DOUBLE_EQ(v.get("schema_version")->num_v, 2.0);
  EXPECT_EQ(v.get("harness")->str_v, "fig4");
  const JsonValue& t0 = v.get("tables")->arr[0];
  EXPECT_EQ(t0.get("rows")->arr[0].arr[1].str_v, "0.120");
}

// ---- diff engine --------------------------------------------------------

// Minimal artifact: one table, one timing column, one count column.
std::string art(const std::string& t_brics, const std::string& t_rand,
                const std::string& harness = "fig4") {
  return "{\"schema_version\":2,\"harness\":\"" + harness +
         "\",\"tables\":[{\"columns\":[\"graph\",\"t_rand\",\"t_brics\","
         "\"quality\"],\"rows\":[[\"road-a\",\"" + t_rand + "\",\"" +
         t_brics + "\",\"0.98\"]]}],"
         "\"metrics\":{\"counters\":{\"traverse.edges_relaxed\":1000}}}";
}

TEST(ArtifactDiff, TimingColumnDetection) {
  EXPECT_TRUE(is_timing_column("t_rand"));
  EXPECT_TRUE(is_timing_column("t_brics"));
  EXPECT_TRUE(is_timing_column("seconds"));
  EXPECT_TRUE(is_timing_column("time"));
  EXPECT_TRUE(is_timing_column("total_s"));
  EXPECT_FALSE(is_timing_column("quality"));
  EXPECT_FALSE(is_timing_column("speedup"));
  EXPECT_FALSE(is_timing_column("graph"));
  EXPECT_FALSE(is_timing_column("threads"));
}

TEST(ArtifactDiff, LatencyMsColumnDetection) {
  EXPECT_TRUE(is_latency_ms_column("p50_ms"));
  EXPECT_TRUE(is_latency_ms_column("p95_ms"));
  EXPECT_TRUE(is_latency_ms_column("p99_ms"));
  EXPECT_TRUE(is_latency_ms_column("soak_ms"));
  EXPECT_FALSE(is_latency_ms_column("p50"));
  EXPECT_FALSE(is_latency_ms_column("t_brics"));
  EXPECT_FALSE(is_latency_ms_column("rss_mb"));
  // _ms columns are their own class, not seconds-timings.
  EXPECT_FALSE(is_timing_column("p95_ms"));
}

// One soak-shaped table with the client-observed latency percentiles.
std::string lat_art(const std::string& p50, const std::string& p95,
                    const std::string& p99) {
  return "{\"schema_version\":2,\"harness\":\"soak\",\"tables\":[{"
         "\"columns\":[\"run\",\"p50_ms\",\"p95_ms\",\"p99_ms\"],"
         "\"rows\":[[\"steady\",\"" + p50 + "\",\"" + p95 + "\",\"" +
         p99 + "\"]]}]}";
}

TEST(ArtifactDiff, LatencyPercentileRegressionIsFlagged) {
  JsonValue old_a = parse_ok(lat_art("12.0", "40.0", "80.0"));
  JsonValue new_a = parse_ok(lat_art("12.5", "70.0", "82.0"));
  DiffOptions opts;
  opts.tol_pct = 10.0;
  DiffResult r = diff_artifacts(old_a, new_a, opts);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions.size(), 1u);  // only p95 moved beyond tolerance
  EXPECT_EQ(r.regressions[0].column, "p95_ms");
  EXPECT_DOUBLE_EQ(r.regressions[0].old_v, 40.0);
  EXPECT_DOUBLE_EQ(r.regressions[0].new_v, 70.0);
  EXPECT_EQ(r.cells_compared, 3u);
  // The rendering carries the right unit.
  const std::string text = format_diff(r);
  EXPECT_NE(text.find("40.000ms -> 70.000ms"), std::string::npos) << text;
}

TEST(ArtifactDiff, LatencyFloorAppliesInSeconds) {
  // 1ms -> 4ms is +300%, but 0.004s sits under the 5ms abs floor —
  // the same noise control that governs seconds-columns, unit-scaled.
  JsonValue old_a = parse_ok(lat_art("1.0", "40.0", "80.0"));
  JsonValue new_a = parse_ok(lat_art("4.0", "40.0", "80.0"));
  DiffResult r = diff_artifacts(old_a, new_a, DiffOptions{});
  EXPECT_TRUE(r.ok());
  // Above the floor the percentage gate applies as usual.
  JsonValue big_old = parse_ok(lat_art("6.0", "40.0", "80.0"));
  JsonValue big_new = parse_ok(lat_art("9.0", "40.0", "80.0"));
  DiffResult r2 = diff_artifacts(big_old, big_new, DiffOptions{});
  EXPECT_FALSE(r2.ok());
  ASSERT_EQ(r2.regressions.size(), 1u);
  EXPECT_EQ(r2.regressions[0].column, "p50_ms");
}

TEST(ArtifactDiff, IdenticalArtifactsPass) {
  JsonValue a = parse_ok(art("1.000", "2.000"));
  DiffResult r = diff_artifacts(a, a, DiffOptions{});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_TRUE(r.improvements.empty());
  EXPECT_EQ(r.cells_compared, 2u);  // t_rand and t_brics; quality ignored
}

TEST(ArtifactDiff, RegressionBeyondToleranceNamesTheCell) {
  JsonValue old_a = parse_ok(art("1.000", "2.000"));
  JsonValue new_a = parse_ok(art("1.300", "2.000"));  // +30% on t_brics
  DiffOptions opts;
  opts.tol_pct = 10.0;
  DiffResult r = diff_artifacts(old_a, new_a, opts);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions.size(), 1u);
  const DiffFinding& f = r.regressions[0];
  EXPECT_EQ(f.harness, "fig4");
  EXPECT_EQ(f.table, 0u);
  EXPECT_EQ(f.row, 0u);
  EXPECT_EQ(f.row_key, "road-a");
  EXPECT_EQ(f.column, "t_brics");
  EXPECT_DOUBLE_EQ(f.old_v, 1.0);
  EXPECT_DOUBLE_EQ(f.new_v, 1.3);
  EXPECT_NEAR(f.delta_pct, 30.0, 1e-9);
  const std::string text = format_diff(r);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("t_brics"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
}

TEST(ArtifactDiff, ImprovementIsNotARegression) {
  JsonValue old_a = parse_ok(art("1.000", "2.000"));
  JsonValue new_a = parse_ok(art("0.500", "2.000"));
  DiffResult r = diff_artifacts(old_a, new_a, DiffOptions{});
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.improvements.size(), 1u);
  EXPECT_EQ(r.improvements[0].column, "t_brics");
}

TEST(ArtifactDiff, WithinToleranceIsQuiet) {
  JsonValue old_a = parse_ok(art("1.000", "2.000"));
  JsonValue new_a = parse_ok(art("1.050", "2.000"));  // +5% < 10%
  DiffResult r = diff_artifacts(old_a, new_a, DiffOptions{});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.improvements.empty());
}

TEST(ArtifactDiff, BelowAbsoluteFloorIgnored) {
  // 1ms -> 4ms is +300% but both sit under the 5ms floor: timer noise.
  JsonValue old_a = parse_ok(art("0.001", "2.000"));
  JsonValue new_a = parse_ok(art("0.004", "2.000"));
  DiffResult r = diff_artifacts(old_a, new_a, DiffOptions{});
  EXPECT_TRUE(r.ok());
}

TEST(ArtifactDiff, PerColumnToleranceOverride) {
  JsonValue old_a = parse_ok(art("1.000", "2.000"));
  JsonValue new_a = parse_ok(art("1.300", "2.900"));  // both +30..45%
  DiffOptions opts;
  opts.tol_pct = 10.0;
  opts.col_tol_pct["t_rand"] = 75.0;  // the noisy baseline column
  DiffResult r = diff_artifacts(old_a, new_a, opts);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].column, "t_brics");
}

TEST(ArtifactDiff, CounterDriftBecomesNote) {
  JsonValue old_a = parse_ok(art("1.000", "2.000"));
  std::string changed = art("1.000", "2.000");
  const std::string from = "\"traverse.edges_relaxed\":1000";
  changed.replace(changed.find(from), from.size(),
                  "\"traverse.edges_relaxed\":2000");
  JsonValue new_a = parse_ok(changed);
  DiffResult r = diff_artifacts(old_a, new_a, DiffOptions{});
  EXPECT_TRUE(r.ok());  // drift warns, never fails
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes[0].find("traverse.edges_relaxed"), std::string::npos);
}

TEST(ArtifactDiff, RowKeyMismatchSkipsRowWithNote) {
  JsonValue old_a = parse_ok(art("1.000", "2.000"));
  std::string other = art("9.000", "9.000");
  const std::string from = "\"road-a\"";
  other.replace(other.find(from), from.size(), "\"web-b\"");
  JsonValue new_a = parse_ok(other);
  DiffResult r = diff_artifacts(old_a, new_a, DiffOptions{});
  EXPECT_TRUE(r.ok());  // skipped, not compared
  EXPECT_EQ(r.cells_compared, 0u);
  ASSERT_FALSE(r.notes.empty());
}

TEST(ArtifactDiff, HarnessMismatchIsANote) {
  JsonValue old_a = parse_ok(art("1.000", "2.000", "fig4"));
  JsonValue new_a = parse_ok(art("1.000", "2.000", "fig5"));
  DiffResult r = diff_artifacts(old_a, new_a, DiffOptions{});
  EXPECT_TRUE(r.ok());
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes[0].find("harness mismatch"), std::string::npos);
}

TEST(ArtifactDiff, MissingTablesIsANoteNotACrash) {
  JsonValue old_a = parse_ok("{\"harness\":\"fig4\"}");
  JsonValue new_a = parse_ok(art("1.000", "2.000"));
  DiffResult r = diff_artifacts(old_a, new_a, DiffOptions{});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.cells_compared, 0u);
  ASSERT_FALSE(r.notes.empty());
}

}  // namespace
}  // namespace brics
