#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace brics {
namespace {

TEST(Stats, SummarizeBasics) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944487, 1e-9);
}

TEST(Stats, SummarizeEmpty) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingle) {
  std::vector<double> xs{5.0};
  Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 30), 3.0);
}

TEST(Stats, PercentileRejectsEmptyAndBadP) {
  std::vector<double> xs{1.0};
  EXPECT_THROW(percentile({}, 50), CheckFailure);
  EXPECT_THROW(percentile(xs, -1), CheckFailure);
  EXPECT_THROW(percentile(xs, 101), CheckFailure);
}

TEST(Stats, GeometricMean) {
  std::vector<double> xs{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 1.0);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), CheckFailure);
}

}  // namespace
}  // namespace brics
