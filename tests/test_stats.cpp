#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace brics {
namespace {

TEST(Stats, SummarizeBasics) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944487, 1e-9);
}

TEST(Stats, SummarizeEmpty) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingle) {
  std::vector<double> xs{5.0};
  Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 30), 3.0);
}

TEST(Stats, PercentileRejectsEmptyAndBadP) {
  std::vector<double> xs{1.0};
  EXPECT_THROW(percentile({}, 50), CheckFailure);
  EXPECT_THROW(percentile(xs, -1), CheckFailure);
  EXPECT_THROW(percentile(xs, 101), CheckFailure);
}

TEST(Stats, PercentileSingleElementIsConstant) {
  std::vector<double> xs{7.5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 7.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 7.5);
}

TEST(Stats, PercentileExtremesMatchMinMaxUnsorted) {
  std::vector<double> xs{42.0, -3.0, 17.0, 0.5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), -3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 42.0);
}

TEST(Stats, SummaryMedianAndP95) {
  // 1..100: median is the 50/51 midpoint, p95 interpolates at rank 95.05.
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
}

TEST(Stats, SummaryMedianSingleAndEmpty) {
  std::vector<double> xs{3.0};
  Summary one = summarize(xs);
  EXPECT_DOUBLE_EQ(one.median, 3.0);
  EXPECT_DOUBLE_EQ(one.p95, 3.0);
  Summary none = summarize({});
  EXPECT_DOUBLE_EQ(none.median, 0.0);
  EXPECT_DOUBLE_EQ(none.p95, 0.0);
}

TEST(Stats, SummaryMedianRobustToOutlier) {
  std::vector<double> xs{1.0, 1.0, 1.0, 1000.0};
  Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 1.0);
  EXPECT_GT(s.mean, s.median);
}

TEST(Stats, GeometricMean) {
  std::vector<double> xs{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 1.0);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), CheckFailure);
}

}  // namespace
}  // namespace brics
