#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "core/farness.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

TEST(Analysis, ClosenessFromFarness) {
  std::vector<double> f{4.0, 8.0, 0.0};
  auto c = closeness_from_farness(f, 5);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(Analysis, ExactHarmonicPath) {
  // Path 0-1-2: H(0) = 1 + 1/2, H(1) = 2.
  CsrGraph g = test::make_graph(3, {{0, 1}, {1, 2}});
  auto h = exact_harmonic(g);
  EXPECT_DOUBLE_EQ(h[0], 1.5);
  EXPECT_DOUBLE_EQ(h[1], 2.0);
  EXPECT_DOUBLE_EQ(h[2], 1.5);
}

TEST(Analysis, HarmonicEstimateFullRateIsExact) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 120, 3}.build();
  auto exact = exact_harmonic(g);
  auto est = estimate_harmonic(g, 1.0, 7);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_NEAR(est[v], exact[v], 1e-9) << v;
}

TEST(Analysis, HarmonicEstimateTracksExact) {
  CsrGraph g = test::RandomGraphCase{"barabasi_albert", 300, 5}.build();
  auto exact = exact_harmonic(g);
  auto est = estimate_harmonic(g, 0.4, 11);
  double worst = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    worst = std::max(worst, std::abs(est[v] / exact[v] - 1.0));
  EXPECT_LT(worst, 0.35);
}

TEST(Analysis, DiameterLowerBoundPath) {
  CsrGraph g = test::make_graph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_EQ(diameter_lower_bound(g), 5u);  // double sweep is exact on trees
}

TEST(Analysis, DiameterLowerBoundNeverExceedsTrueDiameter) {
  for (std::uint64_t seed : {2ULL, 5ULL, 9ULL}) {
    CsrGraph g = test::RandomGraphCase{"grid_subdivided", 150, seed}.build();
    Dist lb = diameter_lower_bound(g, 4, seed);
    // True diameter by all-pairs.
    Dist diam = 0;
    for (NodeId s = 0; s < g.num_nodes(); ++s)
      diam = std::max(diam, aggregate_distances(sssp_distances(g, s)).ecc);
    EXPECT_LE(lb, diam);
    EXPECT_GE(lb, diam / 2);  // double sweep guarantees >= D/2
  }
}

TEST(Analysis, DegreeHistogram) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {0, 2}, {0, 3}});
  auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(Analysis, SummaryConsistency) {
  CsrGraph g = test::RandomGraphCase{"twins_and_chains", 200, 7}.build();
  GraphSummary s = summarize_graph(g);
  EXPECT_EQ(s.nodes, g.num_nodes());
  EXPECT_EQ(s.edges, g.num_edges());
  EXPECT_EQ(s.components, 1u);
  EXPECT_GT(s.identical_nodes + s.chain_nodes, 0u);
  EXPECT_GE(s.bcc_max, 1u);
  EXPECT_FALSE(to_string(s).empty());
}

}  // namespace
}  // namespace brics
