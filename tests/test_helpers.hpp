// Shared helpers for the BRICS test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "graph/connectivity.hpp"
#include "graph/csr_graph.hpp"
#include "traverse/bfs.hpp"
#include "util/rng.hpp"

namespace brics::test {

/// Build a graph from an initializer-list of edges on n nodes.
inline CsrGraph make_graph(NodeId n, const std::vector<Edge>& edges) {
  GraphBuilder b(n);
  b.add_edges(edges);
  return b.build();
}

/// Structural equality across storage modes: node count plus the canonical
/// materialised edge list (each undirected edge once, u < v, sorted).
inline bool graphs_equal(const CsrGraph& a, const CsrGraph& b) {
  return a.num_nodes() == b.num_nodes() && a.edge_list() == b.edge_list();
}

/// A named random-graph recipe for parameterized property suites; every
/// recipe yields a *connected* graph.
struct RandomGraphCase {
  std::string name;
  NodeId approx_n;
  std::uint64_t seed;

  CsrGraph build() const {
    Rng rng(seed);
    CsrGraph g;
    if (name == "erdos_renyi") {
      g = erdos_renyi(approx_n, approx_n * 3, rng);
    } else if (name == "sparse_erdos_renyi") {
      g = erdos_renyi(approx_n, approx_n + approx_n / 4, rng);
    } else if (name == "barabasi_albert") {
      g = barabasi_albert(approx_n, 2, rng);
    } else if (name == "tree") {
      g = random_tree(approx_n, rng);
    } else if (name == "grid_subdivided") {
      NodeId side = 2;
      while (side * side < approx_n / 4) ++side;
      g = grid2d(side, side, 0.9, rng);
      g = subdivide_edges(g, 0.6, 1, 4, rng);
    } else if (name == "twins_and_chains") {
      g = barabasi_albert(std::max<NodeId>(8, approx_n / 2), 2, rng);
      g = plant_twins(g, approx_n / 4, rng);
      g = attach_pendant_chains(g, approx_n / 8, 1, 5, rng);
    } else if (name == "triangle_rich") {
      g = barabasi_albert(std::max<NodeId>(8, approx_n / 2), 3, rng);
      g = plant_redundant3(g, approx_n / 4, rng);
      g = plant_redundant4(g, approx_n / 8, rng);
    } else if (name == "web_copy") {
      g = web_copying(approx_n, 4, 0.4, 0.7, rng);
    } else {
      g = erdos_renyi(approx_n, approx_n * 2, rng);
    }
    return make_connected(g);
  }
};

inline std::string case_name(
    const testing::TestParamInfo<RandomGraphCase>& info) {
  return info.param.name + "_n" + std::to_string(info.param.approx_n) +
         "_s" + std::to_string(info.param.seed);
}

/// The standard sweep used by the property suites.
inline std::vector<RandomGraphCase> standard_cases() {
  std::vector<RandomGraphCase> cases;
  const std::vector<std::string> kinds = {
      "erdos_renyi",    "sparse_erdos_renyi", "barabasi_albert",
      "tree",           "grid_subdivided",    "twins_and_chains",
      "triangle_rich",  "web_copy"};
  for (const auto& kind : kinds)
    for (std::uint64_t seed : {7ULL, 19ULL})
      for (NodeId n : {NodeId{60}, NodeId{220}})
        cases.push_back({kind, n, seed});
  return cases;
}

/// Reference all-pairs distances by per-source BFS/Dial on g.
inline std::vector<std::vector<Dist>> all_pairs(const CsrGraph& g) {
  std::vector<std::vector<Dist>> d(g.num_nodes());
  for (NodeId s = 0; s < g.num_nodes(); ++s) d[s] = sssp_distances(g, s);
  return d;
}

}  // namespace brics::test
