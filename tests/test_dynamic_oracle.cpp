// Bit-equality oracles for the dynamic edge-insert path (docs/SERVER.md),
// across all four dataset classes (gen/dataset.hpp):
//
//  - at 100 % sampling, every node the re-estimate flags `exact` must
//    carry the true integer farness of the grown graph — ASSERT_EQ
//    against an all-sources BFS recompute, no tolerance;
//  - a batched insert_edges must land in exactly the state a sequential
//    insert_edge replay of the same edges lands in, bit for bit (the
//    daemon applies batches, the original API applied single edges);
//  - a batch of nothing but self loops must leave the estimate untouched.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "core/farness.hpp"
#include "extensions/dynamic.hpp"
#include "gen/dataset.hpp"
#include "graph/connectivity.hpp"

namespace brics {
namespace {

EstimateOptions full_rate() {
  EstimateOptions o;
  o.sample_rate = 1.0;
  o.seed = 7;
  return o;
}

// One representative dataset per GraphClass: web, social, community, road.
const char* kDatasets[] = {"web-copy-a", "soc-rmat", "com-part-a",
                           "road-rural"};

CsrGraph dataset_graph(const char* name) {
  return make_connected(build_dataset(name, 0.03));
}

// Deterministic probe batch spread across the id range (self loops and
// duplicates are the dynamic layer's job to absorb).
std::vector<Edge> probe_edges(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<Edge> candidates = {
      {0, n - 1, 1},         {n / 3, (2 * n) / 3, 1}, {1, n / 2, 1},
      {n / 4, n - 2, 1},     {n / 5, (4 * n) / 5, 1},
  };
  std::vector<Edge> edges;
  for (const Edge& e : candidates)
    if (e.u != e.v) edges.push_back(e);
  return edges;
}

TEST(DynamicOracle, ExactNodesMatchFullRecomputeAfterBatch) {
  for (const char* name : kDatasets) {
    SCOPED_TRACE(name);
    CsrGraph g = dataset_graph(name);
    DynamicFarness dyn(g, full_rate());
    const std::vector<Edge> edges = probe_edges(g);
    dyn.insert_edges(std::span<const Edge>(edges));

    const EstimateResult& est = dyn.estimate();
    ASSERT_FALSE(est.degraded);
    const std::vector<FarnessSum> truth = exact_farness(dyn.graph());
    ASSERT_EQ(est.farness.size(), truth.size());

    std::size_t exact_nodes = 0;
    for (NodeId v = 0; v < dyn.graph().num_nodes(); ++v) {
      ASSERT_TRUE(std::isfinite(est.farness[v])) << "node " << v;
      if (!est.exact[v]) continue;
      ++exact_nodes;
      // Bit equality: an exact node at rate 1.0 is the integer farness.
      ASSERT_EQ(est.farness[v], static_cast<double>(truth[v]))
          << "node " << v;
    }
    // The oracle is vacuous if nothing is exact; at 100 % sampling the
    // sampled survivors of the reduction all are.
    EXPECT_GT(exact_nodes, 0u);
  }
}

TEST(DynamicOracle, BatchMatchesSequentialReplayBitForBit) {
  for (const char* name : kDatasets) {
    SCOPED_TRACE(name);
    CsrGraph g = dataset_graph(name);
    const std::vector<Edge> edges = probe_edges(g);

    DynamicFarness batch(g, full_rate());
    batch.insert_edges(std::span<const Edge>(edges));
    DynamicFarness seq(g, full_rate());
    for (const Edge& e : edges) seq.insert_edge(e.u, e.v, e.w);

    // Both paths patch the same reduction with the same edges and end on
    // one estimate of the same final state: identical output, bit for bit.
    const EstimateResult& a = batch.estimate();
    const EstimateResult& b = seq.estimate();
    ASSERT_EQ(a.farness.size(), b.farness.size());
    for (std::size_t v = 0; v < a.farness.size(); ++v) {
      ASSERT_EQ(a.farness[v], b.farness[v]) << "node " << v;
      ASSERT_EQ(a.exact[v], b.exact[v]) << "node " << v;
    }
    ASSERT_EQ(batch.graph().num_edges(), seq.graph().num_edges());
  }
}

TEST(DynamicOracle, SelfLoopOnlyBatchIsANoOp) {
  CsrGraph g = dataset_graph("road-rural");
  DynamicFarness dyn(g, full_rate());
  const std::vector<double> before = dyn.estimate().farness;
  const std::uint64_t edges_before = dyn.graph().num_edges();

  const std::vector<Edge> loops = {{3, 3, 1}, {0, 0, 1}};
  dyn.insert_edges(std::span<const Edge>(loops));

  EXPECT_EQ(dyn.graph().num_edges(), edges_before);
  const std::vector<double>& after = dyn.estimate().farness;
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t v = 0; v < before.size(); ++v)
    ASSERT_EQ(before[v], after[v]) << "node " << v;
}

}  // namespace
}  // namespace brics
