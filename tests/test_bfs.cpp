#include <gtest/gtest.h>

#include "tests/test_helpers.hpp"
#include "traverse/bfs.hpp"
#include "traverse/multi_source.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

TEST(Bfs, PathGraphDistances) {
  CsrGraph g = test::make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto d = sssp_distances(g, 0);
  EXPECT_EQ(d, (std::vector<Dist>{0, 1, 2, 3, 4}));
  d = sssp_distances(g, 2);
  EXPECT_EQ(d, (std::vector<Dist>{2, 1, 0, 1, 2}));
}

TEST(Bfs, DisconnectedNodesUnreached) {
  CsrGraph g = test::make_graph(4, {{0, 1}});
  auto d = sssp_distances(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kInfDist);
  EXPECT_EQ(d[3], kInfDist);
}

TEST(Bfs, RejectsWeightedGraph) {
  CsrGraph g = test::make_graph(3, {{0, 1, 2}, {1, 2}});
  TraversalWorkspace ws;
  EXPECT_THROW(bfs(g, 0, ws), CheckFailure);
}

TEST(Dial, HandlesWeightedEdges) {
  // 0 -5- 1 -1- 2, plus a shortcut 0 -3- 2.
  CsrGraph g = test::make_graph(3, {{0, 1, 5}, {1, 2, 1}, {0, 2, 3}});
  TraversalWorkspace ws;
  dial_sssp(g, 0, ws);
  EXPECT_EQ(ws.dist()[0], 0u);
  EXPECT_EQ(ws.dist()[1], 4u);  // via 2: 3 + 1 beats direct 5
  EXPECT_EQ(ws.dist()[2], 3u);
}

TEST(Dial, MatchesBfsOnUnitWeights) {
  CsrGraph g = test::RandomGraphCase{"erdos_renyi", 150, 5}.build();
  TraversalWorkspace wa, wb;
  for (NodeId s = 0; s < g.num_nodes(); s += 13) {
    bfs(g, s, wa);
    dial_sssp(g, s, wb);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      ASSERT_EQ(wa.dist()[v], wb.dist()[v]) << "s=" << s << " v=" << v;
  }
}

TEST(Dial, MatchesBfsOnSubdividedVsCompressedPath) {
  // Weighted edge (0,1,4) must behave like a 4-hop path.
  CsrGraph w = test::make_graph(2, {{0, 1, 4}});
  TraversalWorkspace ws;
  dial_sssp(w, 0, ws);
  EXPECT_EQ(ws.dist()[1], 4u);
}

TEST(SsspDispatch, PicksEngineByWeights) {
  CsrGraph unit = test::make_graph(3, {{0, 1}, {1, 2}});
  CsrGraph weighted = test::make_graph(3, {{0, 1, 2}, {1, 2}});
  EXPECT_EQ(sssp_distances(unit, 0)[2], 2u);
  EXPECT_EQ(sssp_distances(weighted, 0)[2], 3u);
}

TEST(AggregateDistances, SumsFiniteOnly) {
  std::vector<Dist> d{0, 1, 2, kInfDist, 3};
  DistanceAggregate a = aggregate_distances(d);
  EXPECT_EQ(a.sum, 6u);
  EXPECT_EQ(a.reached, 4u);
  EXPECT_EQ(a.ecc, 3u);
}

TEST(ForEachSource, VisitsAllSourcesWithCorrectDistances) {
  CsrGraph g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<NodeId> sources{0, 2, 3};
  std::vector<FarnessSum> sums(4, 0);
  for_each_source(g, sources,
                  [&](std::size_t, NodeId s, std::span<const Dist> dist) {
                    sums[s] = aggregate_distances(dist).sum;
                  });
  EXPECT_EQ(sums[0], 6u);  // 1+2+3
  EXPECT_EQ(sums[2], 4u);  // 2+1+1
  EXPECT_EQ(sums[3], 6u);
  EXPECT_EQ(sums[1], 0u);  // not a source
}

TEST(DistanceSumAccumulator, MergesThreadBuffers) {
  CsrGraph g = test::make_graph(3, {{0, 1}, {1, 2}});
  std::vector<NodeId> sources{0, 1, 2};
  DistanceSumAccumulator acc(3);
  for_each_source(g, sources,
                  [&](std::size_t, NodeId, std::span<const Dist> dist) {
                    acc.add(dist);
                  });
  auto total = acc.merge();
  EXPECT_EQ(total[0], 3u);  // 0 + 1 + 2
  EXPECT_EQ(total[1], 2u);
  EXPECT_EQ(total[2], 3u);
}

// Property sweep: Dial on a chain-compressed-style weighted graph agrees
// with BFS on the expanded graph.
class DialExpansion : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DialExpansion, WeightedEqualsSubdivided) {
  Rng rng(GetParam());
  CsrGraph base = erdos_renyi(40, 70, rng);
  base = make_connected(base);
  // Expanded graph: subdivide every edge into w unit hops.
  std::vector<Edge> edges = base.edge_list();
  Rng wrng(GetParam() + 1);
  std::vector<Weight> ws(edges.size());
  NodeId extra = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ws[i] = static_cast<Weight>(wrng.range(1, 5));
    extra += ws[i] - 1;
  }
  GraphBuilder wb(base.num_nodes());
  GraphBuilder eb(base.num_nodes() + extra);
  NodeId next = base.num_nodes();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    wb.add_edge(edges[i].u, edges[i].v, ws[i]);
    NodeId prev = edges[i].u;
    for (Weight j = 1; j < ws[i]; ++j) {
      eb.add_edge(prev, next);
      prev = next++;
    }
    eb.add_edge(prev, edges[i].v);
  }
  CsrGraph weighted = wb.build();
  CsrGraph expanded = eb.build();
  TraversalWorkspace wa, wbws;
  for (NodeId s = 0; s < base.num_nodes(); s += 7) {
    dial_sssp(weighted, s, wa);
    bfs(expanded, s, wbws);
    for (NodeId v = 0; v < base.num_nodes(); ++v)
      ASSERT_EQ(wa.dist()[v], wbws.dist()[v]) << "s=" << s << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DialExpansion,
                         ::testing::Values(3, 17, 99, 1234));

}  // namespace
}  // namespace brics
