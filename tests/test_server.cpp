// Tests for the resident daemon (docs/SERVER.md): wire-protocol codec
// roundtrips and malformed-frame rejection, the bounded admission queue's
// shed/drain contract, the ServerEngine's versioned crash-safe state
// (commit, resume, config-hash rejection, orphan-.tmp sweep, transactional
// batch validation, version-keyed top-k cache), and an in-process Server
// exercised over a live AF_UNIX socket: request/reply, overload shedding
// with an explicit OVERLOADED reply, watchdog quarantine of a wedged
// worker, and a clean drain.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "gen/dataset.hpp"
#include "graph/connectivity.hpp"
#include "measures/brandes.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/admission.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "tests/test_helpers.hpp"

namespace brics {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ protocol

// The codec serializes only the body fields of the frame's own MsgType
// (and for replies, only on served statuses), so roundtrips are per type.
Request update_request() {
  Request r;
  r.type = MsgType::kUpdate;
  r.request_id = 0xDEADBEEF;
  r.deadline_ms = 1500;
  r.debug_sleep_ms = 7;
  r.want_report = true;
  r.edges = {{0, 1, 1}, {2, 3, 5}};
  return r;
}

TEST(ServerProtocol, RequestRoundtripPerType) {
  {
    const Request r = update_request();
    const Request d = decode_request(encode_request(r));
    EXPECT_EQ(d.type, r.type);
    EXPECT_EQ(d.request_id, r.request_id);
    EXPECT_EQ(d.deadline_ms, r.deadline_ms);
    EXPECT_EQ(d.debug_sleep_ms, r.debug_sleep_ms);
    EXPECT_EQ(d.want_report, r.want_report);
    ASSERT_EQ(d.edges.size(), r.edges.size());
    for (std::size_t i = 0; i < r.edges.size(); ++i) {
      EXPECT_EQ(d.edges[i].u, r.edges[i].u);
      EXPECT_EQ(d.edges[i].v, r.edges[i].v);
      EXPECT_EQ(d.edges[i].w, r.edges[i].w);
    }
  }
  {
    Request r;
    r.type = MsgType::kFarness;
    r.request_id = 9;
    r.closeness = true;
    r.nodes = {3, 1, 4, 1, 5};
    const Request d = decode_request(encode_request(r));
    EXPECT_EQ(d.type, r.type);
    EXPECT_EQ(d.closeness, r.closeness);
    EXPECT_EQ(d.nodes, r.nodes);
  }
  {
    Request r;
    r.type = MsgType::kTopK;
    r.k = 11;
    const Request d = decode_request(encode_request(r));
    EXPECT_EQ(d.type, r.type);
    EXPECT_EQ(d.k, r.k);
  }
  {
    Request r;
    r.type = MsgType::kBc;
    r.request_id = 12;
    r.nodes = {2, 7, 1};
    const Request d = decode_request(encode_request(r));
    EXPECT_EQ(d.type, r.type);
    EXPECT_EQ(d.nodes, r.nodes);
  }
  {
    Request r;
    r.type = MsgType::kTopKBc;
    r.k = 4;
    const Request d = decode_request(encode_request(r));
    EXPECT_EQ(d.type, r.type);
    EXPECT_EQ(d.k, r.k);
  }
  for (MsgType t :
       {MsgType::kHello, MsgType::kStats, MsgType::kServerStats}) {
    Request r;
    r.type = t;
    r.request_id = 77;
    const Request d = decode_request(encode_request(r));
    EXPECT_EQ(d.type, t);
    EXPECT_EQ(d.request_id, 77u);
  }
}

TEST(ServerProtocol, ReplyRoundtripPerType) {
  {
    Reply r;
    r.type = MsgType::kFarness;
    r.request_id = 42;
    r.status = ReplyStatus::kDegraded;
    r.version = 17;
    r.entries = {{0, 12.5, true}, {7, 99.0, false}};
    const Reply d = decode_reply(encode_reply(r));
    EXPECT_EQ(d.type, r.type);
    EXPECT_EQ(d.request_id, r.request_id);
    EXPECT_EQ(d.status, r.status);
    EXPECT_EQ(d.error, WireError::kNone);
    EXPECT_EQ(d.version, r.version);
    ASSERT_EQ(d.entries.size(), r.entries.size());
    for (std::size_t i = 0; i < r.entries.size(); ++i) {
      EXPECT_EQ(d.entries[i].node, r.entries[i].node);
      EXPECT_EQ(d.entries[i].value, r.entries[i].value);
      EXPECT_EQ(d.entries[i].exact, r.entries[i].exact);
    }
  }
  {
    Reply r;
    r.type = MsgType::kHello;
    r.message = "brics daemon";
    r.version = 2;
    r.nodes = 100;
    r.edges = 250;
    r.resumed = true;
    const Reply d = decode_reply(encode_reply(r));
    EXPECT_EQ(d.message, r.message);
    EXPECT_EQ(d.nodes, r.nodes);
    EXPECT_EQ(d.edges, r.edges);
    EXPECT_EQ(d.resumed, r.resumed);
  }
  {
    Reply r;
    r.type = MsgType::kTopK;
    r.topk_exact = false;
    r.topk_nodes = {5, 6};
    r.topk_farness = {111, 222};
    const Reply d = decode_reply(encode_reply(r));
    EXPECT_EQ(d.topk_exact, r.topk_exact);
    EXPECT_EQ(d.topk_nodes, r.topk_nodes);
    EXPECT_EQ(d.topk_farness, r.topk_farness);
  }
  {
    // kBc / kTopKBc carry the same entry rows as kFarness.
    for (MsgType t : {MsgType::kBc, MsgType::kTopKBc}) {
      Reply r;
      r.type = t;
      r.version = 5;
      r.entries = {{3, 42.25, true}, {1, 7.5, false}};
      const Reply d = decode_reply(encode_reply(r));
      EXPECT_EQ(d.type, t);
      ASSERT_EQ(d.entries.size(), r.entries.size());
      for (std::size_t i = 0; i < r.entries.size(); ++i) {
        EXPECT_EQ(d.entries[i].node, r.entries[i].node);
        EXPECT_EQ(d.entries[i].value, r.entries[i].value);
        EXPECT_EQ(d.entries[i].exact, r.entries[i].exact);
      }
    }
  }
  {
    Reply r;
    r.type = MsgType::kUpdate;
    r.applied = 3;
    r.persisted = false;
    r.report_json = "{\"schema_version\":3}";
    const Reply d = decode_reply(encode_reply(r));
    EXPECT_EQ(d.applied, r.applied);
    EXPECT_EQ(d.persisted, r.persisted);
    EXPECT_EQ(d.report_json, r.report_json);
  }
  {
    // Non-served replies carry no type body, only the taxonomy header.
    Reply r;
    r.type = MsgType::kFarness;
    r.status = ReplyStatus::kOverloaded;
    r.message = "admission queue full";
    r.entries = {{0, 1.0, true}};  // must NOT survive the wire
    const Reply d = decode_reply(encode_reply(r));
    EXPECT_EQ(d.status, ReplyStatus::kOverloaded);
    EXPECT_EQ(d.message, r.message);
    EXPECT_TRUE(d.entries.empty());
  }
  {
    Reply r;
    r.type = MsgType::kFarness;
    r.status = ReplyStatus::kError;
    r.error = WireError::kWedged;
    r.message = "watchdog quarantined worker";
    const Reply d = decode_reply(encode_reply(r));
    EXPECT_EQ(d.status, ReplyStatus::kError);
    EXPECT_EQ(d.error, WireError::kWedged);
    EXPECT_EQ(d.message, r.message);
  }
}

TEST(ServerProtocol, MetricsRoundtripAndVersion) {
  // kMetrics arrived with protocol v3.
  EXPECT_EQ(kProtocolVersion, 3u);
  {
    Request r;
    r.type = MsgType::kMetrics;
    r.request_id = 21;
    const Request d = decode_request(encode_request(r));
    EXPECT_EQ(d.type, MsgType::kMetrics);
    EXPECT_EQ(d.request_id, 21u);
  }
  {
    Reply r;
    r.type = MsgType::kMetrics;
    r.request_id = 21;
    r.message = "# TYPE brics_server_served counter\n";
    r.metrics_json = "{\"metrics_schema_version\": 1}";
    const Reply d = decode_reply(encode_reply(r));
    EXPECT_EQ(d.type, MsgType::kMetrics);
    EXPECT_EQ(d.message, r.message);
    EXPECT_EQ(d.metrics_json, r.metrics_json);
  }
}

TEST(ServerProtocol, MalformedPayloadsAreInputErrors) {
  // Truncated request: cut a valid encoding anywhere and decoding throws.
  const std::string good = encode_request(update_request());
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, good.size() - 1})
    EXPECT_THROW(decode_request(good.substr(0, cut)), InputError)
        << "cut at " << cut;
  // Trailing garbage is as corrupt as a short frame.
  EXPECT_THROW(decode_request(good + "x"), InputError);
  EXPECT_THROW(decode_reply(std::string("\x01\x02", 2)), InputError);
}

// ----------------------------------------------------- admission queue

TEST(AdmissionQueue, ShedsAtCapacityAndDrainsOnClose) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: caller sheds with OVERLOADED
  EXPECT_EQ(q.size(), 2u);

  auto popped = q.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 1);

  // close() hands back what is still queued so each job can be refused
  // explicitly, and is idempotent.
  const std::vector<int> rest = q.close();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], 2);
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(4));
  EXPECT_FALSE(q.pop().has_value());  // workers exit
  EXPECT_TRUE(q.close().empty());
}

TEST(AdmissionQueue, PopBlocksUntilPushOrClose) {
  BoundedQueue<int> q(4);
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.try_push(7));
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

// -------------------------------------------------------- ServerEngine

// Tiny static graph for tests that do not need dataset structure.
const CsrGraph& g_ref() {
  static const CsrGraph g = test::make_graph(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  return g;
}

class ServerEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "brics_server_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    FailPointRegistry::instance().disarm_all();
  }
  void TearDown() override {
    FailPointRegistry::instance().disarm_all();
    fs::remove_all(dir_);
  }

  static EstimateOptions exact_opts() {
    EstimateOptions o;
    o.sample_rate = 1.0;
    o.seed = 3;
    return o;
  }

  static CsrGraph small_graph() {
    return make_connected(build_dataset("road-rural", 0.02));
  }

  static std::vector<double> values(const ServerEngine& eng) {
    auto qr = eng.farness({}, false);
    std::vector<double> vals;
    for (const FarnessEntry& e : qr.entries) vals.push_back(e.value);
    return vals;
  }

  std::string dir_;
};

TEST_F(ServerEngineTest, CommitsEveryVersionAndResumesTheLastOne) {
  const CsrGraph g = small_graph();
  const Edge probe{0, g.num_nodes() - 1, 1};

  {
    ServerEngine eng(g, EngineOptions{exact_opts(), dir_, 64});
    EXPECT_FALSE(eng.resumed());
    EXPECT_EQ(eng.version(), 1u);
    auto res = eng.apply_batch(std::span<const Edge>(&probe, 1), 0);
    EXPECT_EQ(res.version, 2u);
    EXPECT_EQ(res.applied, 1u);
    EXPECT_TRUE(res.persisted);
  }  // SIGKILL stand-in: the engine dies, only the committed segment stays

  ServerEngine back(g, EngineOptions{exact_opts(), dir_, 64});
  EXPECT_TRUE(back.resumed());
  EXPECT_EQ(back.version(), 2u);
  EXPECT_EQ(back.num_edges(), g.num_edges() + 1);

  // The resumed engine re-reduces its committed graph from scratch, so it
  // must agree bit for bit with a fresh engine built on the grown graph.
  GraphBuilder b(g.num_nodes());
  b.add_edges(g.edge_list());
  b.add_edge(probe.u, probe.v, probe.w);
  ServerEngine fresh(b.build(), EngineOptions{exact_opts(), "", 64});
  const std::vector<double> want = values(fresh);
  const std::vector<double> got = values(back);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v)
    ASSERT_EQ(got[v], want[v]) << "node " << v;
}

TEST_F(ServerEngineTest, RejectsStateWrittenUnderDifferentOptions) {
  const CsrGraph g = small_graph();
  { ServerEngine eng(g, EngineOptions{exact_opts(), dir_, 64}); }

  EstimateOptions other = exact_opts();
  other.seed = 99;  // different fingerprint => recompute, never serve
  EXPECT_NE(engine_state_hash(other), engine_state_hash(exact_opts()));
  ServerEngine eng(g, EngineOptions{other, dir_, 64});
  EXPECT_FALSE(eng.resumed());
  EXPECT_EQ(eng.version(), 1u);
}

TEST_F(ServerEngineTest, SweepsOrphanTmpSegmentsAtStartup) {
  fs::create_directories(dir_);
  const std::string orphan = dir_ + "/graph.state.ckpt.tmp";
  std::ofstream(orphan, std::ios::binary) << "torn half-written segment";
  ASSERT_TRUE(fs::exists(orphan));

  ServerEngine eng(g_ref(), EngineOptions{exact_opts(), dir_, 64});
  EXPECT_FALSE(fs::exists(orphan)) << "startup must sweep orphan .tmp";
  EXPECT_FALSE(eng.resumed());  // the orphan was never a committed state
}

TEST_F(ServerEngineTest, ApplyBatchValidationIsTransactional) {
  const CsrGraph g = small_graph();
  ServerEngine eng(g, EngineOptions{exact_opts(), dir_, 64});
  const std::vector<double> before = values(eng);

  // One good edge + one out-of-range endpoint: the whole batch must be
  // rejected before any mutation.
  const std::vector<Edge> bad = {{0, 1, 1}, {0, g.num_nodes() + 5, 1}};
  EXPECT_THROW(eng.apply_batch(std::span<const Edge>(bad), 0), InputError);
  EXPECT_EQ(eng.version(), 1u);
  EXPECT_EQ(eng.num_edges(), g.num_edges());
  const std::vector<double> after = values(eng);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t v = 0; v < before.size(); ++v)
    ASSERT_EQ(before[v], after[v]) << "node " << v;

  // Zero-weight edges are invalid too.
  const Edge zero{0, 1, 0};
  EXPECT_THROW(eng.apply_batch(std::span<const Edge>(&zero, 1), 0),
               InputError);

  // Bad query ids are InputError as well, not a crash.
  const std::vector<NodeId> bogus = {g.num_nodes()};
  EXPECT_THROW(eng.farness(std::span<const NodeId>(bogus), false),
               InputError);
}

TEST_F(ServerEngineTest, TopKIsCachedByGraphVersion) {
  const CsrGraph g = small_graph();
  ServerEngine eng(g, EngineOptions{exact_opts(), "", 64});

  auto first = eng.topk(3, 0);
  auto second = eng.topk(3, 0);  // same (version, k): served from cache
  EXPECT_EQ(first.version, second.version);
  EXPECT_EQ(first.result.nodes, second.result.nodes);
  EXPECT_EQ(first.result.farness, second.result.farness);

  const Edge probe{0, g.num_nodes() - 1, 1};
  eng.apply_batch(std::span<const Edge>(&probe, 1), 0);
  auto third = eng.topk(3, 0);  // version bump invalidated the cache
  EXPECT_EQ(third.version, 2u);
  ASSERT_EQ(third.result.nodes.size(), 3u);
}

TEST_F(ServerEngineTest, StatsJsonFieldsAreStable) {
  // Regression gate for the machine-parseable stats body: dashboards and
  // the soak harness key on these exact field names. Removing or renaming
  // one is a schema break and must bump stats_schema_version.
  ServerEngine eng(g_ref(), EngineOptions{exact_opts(), "", 64});
  const std::string js = eng.stats_json();
  std::string err;
  JsonValue doc;
  ASSERT_TRUE(json_parse(js, doc, &err)) << err << "\n" << js;
  ASSERT_NE(doc.get("stats_schema_version"), nullptr);
  EXPECT_EQ(doc.get("stats_schema_version")->num_v, 1.0);
  ASSERT_NE(doc.get("version"), nullptr);
  EXPECT_EQ(doc.get("version")->num_v, 1.0);
  const JsonValue* graph = doc.get("graph");
  ASSERT_NE(graph, nullptr);
  for (const char* field :
       {"nodes", "edges", "min_degree", "max_degree", "avg_degree",
        "deg_le2", "components", "diameter_lb", "identical_nodes",
        "chain_nodes", "redundant_nodes", "bcc_count", "bcc_max",
        "bcc_avg"}) {
    ASSERT_NE(graph->get(field), nullptr) << "missing graph." << field;
    EXPECT_TRUE(graph->get(field)->is_number()) << field;
  }
  EXPECT_EQ(graph->get("nodes")->num_v, 6.0);
  // The free-form rendering rides along for humans.
  const JsonValue* text = doc.get("text");
  ASSERT_NE(text, nullptr);
  EXPECT_TRUE(text->is_string());
  EXPECT_NE(text->str_v.find("nodes"), std::string::npos);
}

TEST_F(ServerEngineTest, BcIsVersionKeyedAndOracleChecked) {
  const CsrGraph g = make_connected(small_graph());
  ServerEngine eng(g, EngineOptions{exact_opts(), "", 64});

  // At sample rate 1.0 the served values must agree with the independent
  // flat Brandes oracle on the same graph.
  auto check_against = [](const ServerEngine::QueryResult& qr,
                          const CsrGraph& graph) {
    const std::vector<double> oracle = exact_betweenness(graph);
    ASSERT_EQ(qr.entries.size(), oracle.size());
    for (const FarnessEntry& e : qr.entries) {
      const double want = oracle[e.node];
      const double tol = 1e-9 * std::max(1.0, std::abs(want));
      ASSERT_NEAR(e.value, want, tol) << "node " << e.node;
      EXPECT_TRUE(e.exact);
    }
  };

  auto first = eng.bc({}, 0);
  EXPECT_EQ(first.version, 1u);
  EXPECT_FALSE(first.degraded);
  check_against(first, g);

  // Same version: the cache serves, bit for bit.
  auto second = eng.bc({}, 0);
  ASSERT_EQ(second.entries.size(), first.entries.size());
  for (std::size_t i = 0; i < first.entries.size(); ++i)
    ASSERT_EQ(second.entries[i].value, first.entries[i].value);

  // Top-k is derived from the same cache: descending, consistent values.
  auto tk = eng.topk_bc(5, 0);
  ASSERT_EQ(tk.entries.size(), 5u);
  for (std::size_t i = 1; i < tk.entries.size(); ++i)
    EXPECT_GE(tk.entries[i - 1].value, tk.entries[i].value);
  for (const FarnessEntry& e : tk.entries)
    EXPECT_EQ(e.value, first.entries[e.node].value);

  // A committed update bumps the version and invalidates the cache: the
  // next query recomputes against the grown graph and must match the
  // oracle on that graph, not the stale one.
  const Edge probe{0, g.num_nodes() - 1, 1};
  eng.apply_batch(std::span<const Edge>(&probe, 1), 0);
  auto third = eng.bc({}, 0);
  EXPECT_EQ(third.version, 2u);
  GraphBuilder b(g.num_nodes());
  b.add_edges(g.edge_list());
  b.add_edge(probe.u, probe.v, probe.w);
  check_against(third, b.build());

  // Bad query ids are InputError, same taxonomy as farness.
  const std::vector<NodeId> bogus = {g.num_nodes()};
  EXPECT_THROW(eng.bc(std::span<const NodeId>(bogus), 0), InputError);
}

// ----------------------------------------------- live in-process server

int connect_unix(const std::string& path) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

Reply ask(int fd, const Request& req) {
  write_frame(fd, encode_request(req));
  auto frame = read_frame(fd);
  if (!frame) throw InputError("server closed the connection");
  Reply rep = decode_reply(*frame);
  EXPECT_EQ(rep.request_id, req.request_id);
  return rep;
}

class LiveServerTest : public ServerEngineTest {
 protected:
  // Socket paths must fit sockaddr_un::sun_path; keep them short and
  // relative to the test's working directory.
  std::string sock_path() {
    static int n = 0;
    return "live_srv_" + std::to_string(::getpid()) + "_" +
           std::to_string(n++) + ".sock";
  }

  void start(ServerOptions opts) {
    opts.engine.estimate = exact_opts();
    sock_ = sock_path();
    opts.socket_path = sock_;
    server_ = std::make_unique<Server>(small_graph(), std::move(opts));
    thread_ = std::thread([this] { server_->run(); });
    while (!server_->ready())
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  void stop() {
    if (!server_) return;
    server_->stop();
    if (thread_.joinable()) thread_.join();
  }

  void TearDown() override {
    stop();
    server_.reset();
    fs::remove(sock_);
    ServerEngineTest::TearDown();
  }

  std::string sock_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(LiveServerTest, ServesTheFullRequestMenu) {
  ServerOptions opts;
  opts.engine.state_dir = dir_;
  start(opts);

  const int fd = connect_unix(sock_);
  ASSERT_GE(fd, 0);

  Request hello;
  hello.type = MsgType::kHello;
  hello.request_id = 1;
  Reply h = ask(fd, hello);
  EXPECT_EQ(h.status, ReplyStatus::kOk);
  EXPECT_EQ(h.version, 1u);
  EXPECT_GT(h.nodes, 0u);
  EXPECT_FALSE(h.resumed);
  // The hello banner carries the build identity (satellite: --version /
  // server hello report the configure-time sha + schema version).
  EXPECT_NE(h.message.find("schema"), std::string::npos) << h.message;

  Request stats;
  stats.type = MsgType::kStats;
  stats.request_id = 2;
  Reply s = ask(fd, stats);
  EXPECT_EQ(s.status, ReplyStatus::kOk);
  EXPECT_FALSE(s.message.empty());

  Request far;
  far.type = MsgType::kFarness;
  far.request_id = 3;
  far.nodes = {0, 1};
  Reply f = ask(fd, far);
  EXPECT_EQ(f.status, ReplyStatus::kOk);
  ASSERT_EQ(f.entries.size(), 2u);
  EXPECT_EQ(f.entries[0].node, 0u);
  EXPECT_EQ(f.entries[1].node, 1u);

  Request topk;
  topk.type = MsgType::kTopK;
  topk.request_id = 4;
  topk.k = 3;
  Reply t = ask(fd, topk);
  EXPECT_EQ(t.status, ReplyStatus::kOk);
  ASSERT_EQ(t.topk_nodes.size(), 3u);

  Request bc;
  bc.type = MsgType::kBc;
  bc.request_id = 14;
  bc.nodes = {0, 1};
  Reply bcr = ask(fd, bc);
  EXPECT_EQ(bcr.status, ReplyStatus::kOk);
  ASSERT_EQ(bcr.entries.size(), 2u);
  EXPECT_EQ(bcr.entries[0].node, 0u);
  EXPECT_TRUE(bcr.entries[0].exact);

  Request tbc;
  tbc.type = MsgType::kTopKBc;
  tbc.request_id = 15;
  tbc.k = 3;
  Reply tbcr = ask(fd, tbc);
  EXPECT_EQ(tbcr.status, ReplyStatus::kOk);
  ASSERT_EQ(tbcr.entries.size(), 3u);
  EXPECT_GE(tbcr.entries[0].value, tbcr.entries[1].value);
  EXPECT_GE(tbcr.entries[1].value, tbcr.entries[2].value);

  Request upd;
  upd.type = MsgType::kUpdate;
  upd.request_id = 5;
  upd.edges = {{0, h.nodes > 2 ? static_cast<NodeId>(h.nodes - 1) : 1, 1}};
  Reply u = ask(fd, upd);
  EXPECT_EQ(u.status, ReplyStatus::kOk);
  EXPECT_EQ(u.version, 2u);
  EXPECT_EQ(u.applied, 1u);
  EXPECT_TRUE(u.persisted);

  Request sstats;
  sstats.type = MsgType::kServerStats;
  sstats.request_id = 6;
  Reply ss = ask(fd, sstats);
  EXPECT_EQ(ss.status, ReplyStatus::kOk);
  EXPECT_NE(ss.message.find("queue_depth"), std::string::npos);

  ::close(fd);
  stop();
  // Clean drain unlinks the listening socket.
  EXPECT_FALSE(fs::exists(sock_));
  const ServerCounters c = server_->counters();
  EXPECT_GE(c.connections, 1u);
  EXPECT_GE(c.served, 8u);
  EXPECT_EQ(c.shed, 0u);
}

TEST_F(LiveServerTest, ShedsWithExplicitOverloadedReplyWhenSaturated) {
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  start(opts);

  const int fd = connect_unix(sock_);
  ASSERT_GE(fd, 0);

  // Wedge the single worker, then pipeline more requests than the queue
  // admits. Every request must be answered — served or explicitly shed.
  Request sleepy;
  sleepy.type = MsgType::kFarness;
  sleepy.request_id = 100;
  sleepy.debug_sleep_ms = 400;
  write_frame(fd, encode_request(sleepy));

  constexpr int kExtra = 5;
  for (int i = 0; i < kExtra; ++i) {
    Request far;
    far.type = MsgType::kFarness;
    far.request_id = static_cast<std::uint32_t>(101 + i);
    far.nodes = {0};
    write_frame(fd, encode_request(far));
  }

  std::map<std::uint32_t, ReplyStatus> replies;
  for (int i = 0; i < kExtra + 1; ++i) {
    auto frame = read_frame(fd);
    ASSERT_TRUE(frame.has_value()) << "reply " << i << " never arrived";
    const Reply rep = decode_reply(*frame);
    replies[rep.request_id] = rep.status;
  }
  ::close(fd);

  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kExtra + 1))
      << "every request must get exactly one reply";
  int shed = 0, served = 0;
  for (const auto& [id, status] : replies) {
    if (status == ReplyStatus::kOverloaded) ++shed;
    if (status == ReplyStatus::kOk || status == ReplyStatus::kDegraded)
      ++served;
  }
  EXPECT_GE(shed, 1) << "a saturated queue must shed";
  EXPECT_EQ(shed + served, kExtra + 1);
  EXPECT_EQ(server_->counters().shed, static_cast<std::uint64_t>(shed));
}

TEST_F(LiveServerTest, WatchdogQuarantinesAWedgedWorker) {
  ServerOptions opts;
  opts.num_workers = 1;
  opts.watchdog_ms = 100;
  start(opts);

  const int fd = connect_unix(sock_);
  ASSERT_GE(fd, 0);

  Request wedged;
  wedged.type = MsgType::kFarness;
  wedged.request_id = 1;
  wedged.debug_sleep_ms = 600;  // well past the 100 ms threshold
  Reply r = ask(fd, wedged);
  EXPECT_EQ(r.status, ReplyStatus::kError);
  EXPECT_EQ(r.error, WireError::kWedged);

  // The replacement worker keeps the pool serving.
  Request far;
  far.type = MsgType::kFarness;
  far.request_id = 2;
  far.nodes = {0};
  Reply ok = ask(fd, far);
  EXPECT_EQ(ok.status, ReplyStatus::kOk);
  ::close(fd);

  EXPECT_GE(server_->counters().quarantined, 1u);
  // Drain must complete even with a quarantined worker in the pool.
  stop();
}

TEST_F(LiveServerTest, ServerStatsBodyIsSchemaVersioned) {
  start(ServerOptions{});
  const int fd = connect_unix(sock_);
  ASSERT_GE(fd, 0);
  Request sstats;
  sstats.type = MsgType::kServerStats;
  sstats.request_id = 1;
  Reply ss = ask(fd, sstats);
  ::close(fd);
  EXPECT_EQ(ss.status, ReplyStatus::kOk);
  std::string err;
  JsonValue doc;
  ASSERT_TRUE(json_parse(ss.message, doc, &err)) << err << "\n"
                                                 << ss.message;
  ASSERT_NE(doc.get("server_stats_schema_version"), nullptr);
  EXPECT_EQ(doc.get("server_stats_schema_version")->num_v, 1.0);
  for (const char* field :
       {"connections", "requests", "served", "shed", "refused", "errors",
        "quarantined", "dropped_connections", "queue_depth",
        "queue_capacity", "workers", "draining"}) {
    ASSERT_NE(doc.get(field), nullptr) << "missing " << field;
  }
}

TEST_F(LiveServerTest, MetricsRequestServesExpositionAndJson) {
  start(ServerOptions{});
  const int fd = connect_unix(sock_);
  ASSERT_GE(fd, 0);
  Request m;
  m.type = MsgType::kMetrics;
  m.request_id = 9;
  Reply rep = ask(fd, m);
  ::close(fd);
#if BRICS_METRICS_ENABLED
  EXPECT_EQ(rep.status, ReplyStatus::kOk);
  // Text exposition in message, schema'd JSON snapshot alongside.
  EXPECT_NE(rep.message.find("# TYPE brics_"), std::string::npos)
      << rep.message.substr(0, 200);
  std::string err;
  JsonValue doc;
  ASSERT_TRUE(json_parse(rep.metrics_json, doc, &err))
      << err << "\n" << rep.metrics_json.substr(0, 400);
  ASSERT_NE(doc.get("metrics_schema_version"), nullptr);
  EXPECT_EQ(doc.get("metrics_schema_version")->num_v, 1.0);
  ASSERT_NE(doc.get("server"), nullptr);
  EXPECT_NE(doc.get("server")->get("server_stats_schema_version"), nullptr);
  ASSERT_NE(doc.get("quantiles"), nullptr);
  ASSERT_NE(doc.get("metrics"), nullptr);
  EXPECT_NE(doc.get("metrics")->get("counters"), nullptr);
#else
  // The OFF build keeps the wire type but declines: no metric name ever
  // reaches the binary.
  EXPECT_EQ(rep.status, ReplyStatus::kError);
  EXPECT_NE(rep.message.find("disabled"), std::string::npos);
  EXPECT_TRUE(rep.metrics_json.empty());
#endif
}

#if BRICS_METRICS_ENABLED

TEST_F(LiveServerTest, ConcurrentRequestsExportDisjointTraceLanes) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.enable();
  ServerOptions opts;
  opts.num_workers = 2;
  start(opts);

  // Two connections fire sleeping requests that overlap in time, so both
  // are in flight at once on different workers.
  auto one = [&](std::uint32_t id) {
    const int fd = connect_unix(sock_);
    ASSERT_GE(fd, 0);
    Request far;
    far.type = MsgType::kFarness;
    far.request_id = id;
    far.nodes = {0};
    far.debug_sleep_ms = 150;
    const Reply rep = ask(fd, far);
    EXPECT_EQ(rep.status, ReplyStatus::kOk);
    ::close(fd);
  };
  std::thread a(one, 101);
  std::thread b(one, 102);
  a.join();
  b.join();
  stop();
  rec.disable();

  const std::vector<TraceEvent> evs = rec.events();
  rec.clear();

  // Each request got its own server-side sequence id; its request span
  // and everything nested inside share that id.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> by_req;
  for (const TraceEvent& e : evs)
    if (e.req != 0) by_req[e.req].push_back(&e);
  ASSERT_GE(by_req.size(), 2u) << "expected two request lanes";

  std::size_t overlapping_roots = 0;
  std::vector<const TraceEvent*> roots;
  for (const auto& [req, lane] : by_req) {
    const TraceEvent* root = nullptr;
    for (const TraceEvent* e : lane)
      if (std::strcmp(e->name, "server.request") == 0) root = e;
    if (root == nullptr) continue;
    roots.push_back(root);
    ++overlapping_roots;
    // Nesting: every same-request span lies within the request span.
    for (const TraceEvent* e : lane) {
      EXPECT_GE(e->ts_us, root->ts_us - 1.0) << e->name;
      EXPECT_LE(e->ts_us + e->dur_us, root->ts_us + root->dur_us + 1.0)
          << e->name;
    }
  }
  ASSERT_GE(overlapping_roots, 2u);
  // The two sleeping requests really ran concurrently (trace proves it).
  const TraceEvent* r0 = roots[0];
  const TraceEvent* r1 = roots[1];
  EXPECT_LT(r0->ts_us, r1->ts_us + r1->dur_us);
  EXPECT_LT(r1->ts_us, r0->ts_us + r0->dur_us);

  // The Chrome export renders them as separate named lanes with the
  // request id as the synthetic tid — and is valid JSON end to end.
  const std::string js = trace_events_to_chrome_json(evs);
  std::string err;
  JsonValue doc;
  ASSERT_TRUE(json_parse(js, doc, &err)) << err;
  const JsonValue* arr = doc.get("traceEvents");
  ASSERT_NE(arr, nullptr);
  std::map<double, std::string> lane_names;
  std::map<double, int> lane_events;
  for (const JsonValue& e : arr->arr) {
    const JsonValue* ph = e.get("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    if (ph->str_v == "M" && e.get("name")->str_v == "thread_name")
      lane_names[e.get("tid")->num_v] = e.get("args")->get("name")->str_v;
    if (ph->str_v == "X" && e.get("tid")->num_v >= 1048576.0)
      ++lane_events[e.get("tid")->num_v];
  }
  int req_lanes = 0;
  for (const auto& [tid, name] : lane_names)
    if (name.rfind("req-", 0) == 0) ++req_lanes;
  EXPECT_GE(req_lanes, 2) << "expected req-<id> lane metadata";
  EXPECT_GE(lane_events.size(), 2u) << "expected events on two req lanes";
}

#endif  // BRICS_METRICS_ENABLED

}  // namespace
}  // namespace brics
