#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "brics/brics.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"
#include "obs/histogram_snapshot.hpp"
#include "obs/json.hpp"
#include "obs/request.hpp"
#include "util/parallel.hpp"

namespace brics {
namespace {

// ---- JSON writer / validator -------------------------------------------

TEST(Json, WriterProducesValidObject) {
  JsonWriter w;
  w.begin_object();
  w.field("int", 42);
  w.field("neg", std::int64_t{-7});
  w.field("pi", 3.25);
  w.field("flag", true);
  w.field("name", "brics");
  w.key("arr").begin_array().value(1).value(2).value(3).end_array();
  w.key("nested").begin_object().field("x", 1.0).end_object();
  w.end_object();
  std::string err;
  EXPECT_TRUE(json_valid(w.str(), &err)) << err << "\n" << w.str();
}

TEST(Json, EscapingRoundTripsThroughValidator) {
  const std::string nasty =
      "quote\" backslash\\ newline\n tab\t ctrl\x01 unicode\xc3\xa9";
  JsonWriter w;
  w.begin_object();
  w.field("k", nasty);
  w.end_object();
  std::string err;
  EXPECT_TRUE(json_valid(w.str(), &err)) << err << "\n" << w.str();
  // The escaped form must not contain raw control bytes.
  for (char c : w.str())
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object();
  w.field("nan", std::nan(""));
  w.field("inf", std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_TRUE(json_valid(w.str()));
  EXPECT_NE(w.str().find("null"), std::string::npos);
}

TEST(Json, ValidatorAcceptsCorners) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("  [1, 2.5, -3e2, \"x\", true, false, null]  "));
  EXPECT_TRUE(json_valid("{\"a\":{\"b\":[{\"c\":0}]}}"));
  EXPECT_TRUE(json_valid("\"\\u00e9\\n\\\\\""));
}

TEST(Json, ValidatorRejectsMalformed) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("[1 2]"));
  EXPECT_FALSE(json_valid("{'a':1}"));
  EXPECT_FALSE(json_valid("{\"a\":01}"));      // leading zero
  EXPECT_FALSE(json_valid("\"\\x41\""));        // bad escape
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("{\"a\":1} trailing"));
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(json_valid(deep));               // depth limit
}

// ---- Counters / gauges / histograms ------------------------------------

TEST(Metrics, CounterConcurrentSumIsExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.count");
  constexpr int kIters = 200000;
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) c.add(1);
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kIters));
}

TEST(Metrics, CounterAddNAndReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);  // handle survives reset
}

TEST(Metrics, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("g");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  const std::vector<std::uint64_t> bounds{10, 20};
  Histogram& h = reg.histogram("h", bounds);
  h.observe(0);
  h.observe(5);
  h.observe(10);  // boundary: bucket counts values <= bound
  h.observe(11);
  h.observe(20);
  h.observe(21);  // overflow
  h.observe(1000);
  std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(h.total_count(), 7u);
}

TEST(Metrics, HistogramConcurrentTotalIsExact) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", pow2_bounds());
  constexpr int kIters = 100000;
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i)
    h.observe(static_cast<std::uint64_t>(i) % 1024);
  EXPECT_EQ(h.total_count(), static_cast<std::uint64_t>(kIters));
}

TEST(Metrics, Pow2BoundsAscending) {
  auto b = pow2_bounds();
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b.front(), 1u);
  for (std::size_t i = 1; i < b.size(); ++i)
    EXPECT_EQ(b[i], b[i - 1] * 2);
}

TEST(Metrics, SnapshotJsonIsValid) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(1.25);
  reg.histogram("c.hist", pow2_bounds()).observe(7);
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("b.gauge"), 1.25);
  EXPECT_EQ(snap.histograms.at("c.hist").total, 1u);
  std::string err;
  EXPECT_TRUE(json_valid(snap.to_json(), &err)) << err;
}

TEST(Metrics, SameNameReturnsSameHandle) {
  MetricsRegistry reg;
  EXPECT_EQ(&reg.counter("x"), &reg.counter("x"));
  EXPECT_EQ(&reg.gauge("y"), &reg.gauge("y"));
  EXPECT_EQ(&reg.histogram("z", pow2_bounds()),
            &reg.histogram("z", pow2_bounds()));
}

// ---- Spans / tracing ----------------------------------------------------

TEST(Trace, SpansNestAndExportValidChromeJson) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.enable();
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
    Span sibling("sibling");
  }
  rec.disable();
  std::vector<TraceEvent> ev = rec.events();
  ASSERT_EQ(ev.size(), 3u);
  // Sorted by start time: outer opened first, then inner, then sibling.
  EXPECT_STREQ(ev[0].name, "outer");
  EXPECT_STREQ(ev[1].name, "inner");
  EXPECT_STREQ(ev[2].name, "sibling");
  EXPECT_EQ(ev[0].depth, 0u);
  EXPECT_EQ(ev[1].depth, 1u);
  EXPECT_EQ(ev[2].depth, 1u);
  // Containment: inner lies within outer.
  EXPECT_GE(ev[1].ts_us, ev[0].ts_us);
  EXPECT_LE(ev[1].ts_us + ev[1].dur_us, ev[0].ts_us + ev[0].dur_us + 1.0);
  std::string err;
  EXPECT_TRUE(json_valid(rec.to_chrome_json(), &err)) << err;
  rec.clear();
}

TEST(Trace, DisabledRecorderBuffersNothing) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  {
    Span s("ignored");
  }
  EXPECT_TRUE(rec.events().empty());
}

TEST(Trace, PhaseScopeAccumulatesTime) {
  double acc = 0.0;
  {
    PhaseScope p("unit_test_phase", acc);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(acc, 0.0);
  const double first = acc;
  {
    PhaseScope p("unit_test_phase", acc);
  }
  EXPECT_GE(acc, first);  // accumulates, does not overwrite
}

// ---- Request-id propagation ---------------------------------------------

TEST(RequestId, ScopeNestsAndRestores) {
  EXPECT_EQ(current_request_id(), 0u);
  {
    RequestIdScope outer(7);
    EXPECT_EQ(current_request_id(), 7u);
    {
      RequestIdScope inner(9);
      EXPECT_EQ(current_request_id(), 9u);
    }
    EXPECT_EQ(current_request_id(), 7u);
  }
  EXPECT_EQ(current_request_id(), 0u);
}

TEST(RequestId, IsThreadLocal) {
  RequestIdScope scope(42);
  std::uint64_t seen = 99;
  std::thread t([&] { seen = current_request_id(); });
  t.join();
  EXPECT_EQ(seen, 0u);  // other threads start unattributed
  EXPECT_EQ(current_request_id(), 42u);
}

// ---- Flight recorder ----------------------------------------------------

TEST(Flight, RecordsAndSnapshotsInOrder) {
  FlightRecorder fr(16);
  fr.record(FlightEventKind::kAdmit, 1, 3);
  fr.record(FlightEventKind::kReply, 1, 0, 250, "OK");
  fr.record(FlightEventKind::kShed, 2);
  std::vector<FlightEvent> ev = fr.snapshot();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].kind, FlightEventKind::kAdmit);
  EXPECT_EQ(ev[0].req, 1u);
  EXPECT_EQ(ev[0].a, 3u);
  EXPECT_EQ(ev[1].kind, FlightEventKind::kReply);
  EXPECT_EQ(ev[1].b, 250u);
  EXPECT_STREQ(ev[1].label, "OK");
  EXPECT_EQ(ev[2].req, 2u);
  EXPECT_LE(ev[0].ts_us, ev[1].ts_us);
}

TEST(Flight, RingWrapsKeepingNewest) {
  FlightRecorder fr(8);  // power of two already
  ASSERT_EQ(fr.capacity(), 8u);
  for (std::uint64_t i = 1; i <= 20; ++i)
    fr.record(FlightEventKind::kAdmit, i);
  EXPECT_EQ(fr.recorded(), 20u);
  std::vector<FlightEvent> ev = fr.snapshot();
  ASSERT_EQ(ev.size(), 8u);
  // Oldest-first window over the newest 8 events: reqs 13..20.
  for (std::size_t i = 0; i < ev.size(); ++i)
    EXPECT_EQ(ev[i].req, 13u + i);
}

TEST(Flight, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder fr(5);
  EXPECT_EQ(fr.capacity(), 8u);
}

TEST(Flight, ConcurrentWritersLoseNothingWhole) {
  FlightRecorder fr(1 << 12);
  constexpr int kPerThread = 500;
#pragma omp parallel for
  for (int i = 0; i < 4 * kPerThread; ++i)
    fr.record(FlightEventKind::kCommit, static_cast<std::uint64_t>(i) + 1);
  EXPECT_EQ(fr.recorded(), static_cast<std::uint64_t>(4 * kPerThread));
  // Fewer events than capacity: all of them must read back whole.
  EXPECT_EQ(fr.snapshot().size(), static_cast<std::size_t>(4 * kPerThread));
}

TEST(Flight, JsonDumpIsValidAndCarriesSchema) {
  FlightRecorder fr(16);
  fr.record(FlightEventKind::kQuarantine, 11, 4, 200);
  fr.record(FlightEventKind::kFailPoint, 0, 0, 0, "server.read");
  const std::string js = fr.to_json("unit-test");
  std::string err;
  ASSERT_TRUE(json_valid(js, &err)) << err << "\n" << js;
  JsonValue doc;
  ASSERT_TRUE(json_parse(js, doc, &err)) << err;
  EXPECT_EQ(doc.get("flight_schema_version")->num_v, 1.0);
  EXPECT_EQ(doc.get("reason")->str_v, "unit-test");
  const JsonValue* evs = doc.get("events");
  ASSERT_NE(evs, nullptr);
  ASSERT_EQ(evs->arr.size(), 2u);
  EXPECT_EQ(evs->arr[0].get("kind")->str_v, "quarantine");
  EXPECT_EQ(evs->arr[0].get("req")->num_v, 11.0);
  EXPECT_EQ(evs->arr[1].get("kind")->str_v, "failpoint");
  EXPECT_EQ(evs->arr[1].get("label")->str_v, "server.read");
}

TEST(Flight, FdDumpMatchesJsonDump) {
  FlightRecorder fr(16);
  for (std::uint64_t i = 1; i <= 5; ++i)
    fr.record(FlightEventKind::kReply, i, 0, 10 * i, "OK");
  const std::string path =
      testing::TempDir() + "/flight_fd_dump_test.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fr.dump_to_fd(fileno(f), "fd-test");
  std::fclose(f);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  ASSERT_TRUE(json_valid(ss.str(), &err)) << err << "\n" << ss.str();
  // The signal-safe formatter carries the same schema as to_json
  // (whitespace differs; compare parsed content).
  JsonValue doc;
  ASSERT_TRUE(json_parse(ss.str(), doc, &err)) << err;
  EXPECT_EQ(doc.get("flight_schema_version")->num_v, 1.0);
  EXPECT_EQ(doc.get("reason")->str_v, "fd-test");
  EXPECT_EQ(doc.get("recorded")->num_v, 5.0);
  EXPECT_EQ(doc.get("dropped")->num_v, 0.0);
  const JsonValue* evs = doc.get("events");
  ASSERT_NE(evs, nullptr);
  ASSERT_EQ(evs->arr.size(), 5u);
  EXPECT_EQ(evs->arr[4].get("req")->num_v, 5.0);
  EXPECT_EQ(evs->arr[4].get("b")->num_v, 50.0);
  EXPECT_EQ(evs->arr[4].get("label")->str_v, "OK");
  std::remove(path.c_str());
}

TEST(Flight, DumpToFileReportsDropped) {
  FlightRecorder fr(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    fr.record(FlightEventKind::kAdmit, i + 1);
  const std::string path = testing::TempDir() + "/flight_dump_test.json";
  ASSERT_TRUE(fr.dump_to_file(path, "wrap"));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(ss.str(), doc, &err)) << err;
  EXPECT_EQ(doc.get("recorded")->num_v, 10.0);
  EXPECT_EQ(doc.get("dropped")->num_v, 6.0);
  std::remove(path.c_str());
}

TEST(Flight, KindWordsAreStable) {
  EXPECT_STREQ(to_string(FlightEventKind::kAdmit), "admit");
  EXPECT_STREQ(to_string(FlightEventKind::kReply), "reply");
  EXPECT_STREQ(to_string(FlightEventKind::kShed), "shed");
  EXPECT_STREQ(to_string(FlightEventKind::kRefuse), "refuse");
  EXPECT_STREQ(to_string(FlightEventKind::kQuarantine), "quarantine");
  EXPECT_STREQ(to_string(FlightEventKind::kCommit), "commit");
  EXPECT_STREQ(to_string(FlightEventKind::kFailPoint), "failpoint");
  EXPECT_STREQ(to_string(FlightEventKind::kDrain), "drain");
}

// ---- Exposition ---------------------------------------------------------

TEST(Exposition, NameManglingAddsPrefixAndUnderscores) {
  EXPECT_EQ(exposition_name("server.request_latency_us"),
            "brics_server_request_latency_us");
  EXPECT_EQ(exposition_name("plain"), "brics_plain");
}

TEST(Exposition, RendersCountersGaugesAndCumulativeBuckets) {
  MetricsSnapshot snap;
  snap.counters["server.served"] = 42;
  snap.gauges["exec.degraded"] = 0.0;
  MetricsSnapshot::Hist h;
  h.bounds = {10, 20};
  h.counts = {3, 2, 1};  // 1 overflow observation
  h.total = 6;
  snap.histograms["server.queue_depth"] = h;
  const std::string text = to_prometheus(snap);
  EXPECT_NE(text.find("# TYPE brics_server_served counter"),
            std::string::npos);
  EXPECT_NE(text.find("brics_server_served 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE brics_exec_degraded gauge"),
            std::string::npos);
  // Cumulative buckets: le="10" -> 3, le="20" -> 5, le="+Inf" -> 6.
  EXPECT_NE(text.find("brics_server_queue_depth_bucket{le=\"10\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("brics_server_queue_depth_bucket{le=\"20\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("brics_server_queue_depth_bucket{le=\"+Inf\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("brics_server_queue_depth_count 6"),
            std::string::npos);
  EXPECT_TRUE(text.empty() || text.back() == '\n');
}

// ---- Histogram quantiles / deltas ---------------------------------------

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  MetricsSnapshot::Hist h;
  h.bounds = {10, 20};
  h.counts = {10, 0, 0};
  h.total = 10;
  // All mass in [0, 10]: the median interpolates to ~the bucket middle.
  EXPECT_NEAR(histogram_quantile(h, 0.5), 5.0, 1.001);
  EXPECT_LE(histogram_quantile(h, 1.0), 10.0);
}

TEST(HistogramQuantile, OverflowClampsToLastBound) {
  MetricsSnapshot::Hist h;
  h.bounds = {10, 20};
  h.counts = {0, 0, 8};
  h.total = 8;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 20.0);
}

TEST(HistogramQuantile, EmptyIsZero) {
  MetricsSnapshot::Hist h;
  h.bounds = {10};
  h.counts = {0, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 0.0);
}

TEST(SnapshotDelta, SubtractsCountersAndBuckets) {
  MetricsSnapshot prev, cur;
  prev.counters["c"] = 10;
  cur.counters["c"] = 25;
  cur.counters["fresh"] = 3;
  prev.gauges["g"] = 1.0;
  cur.gauges["g"] = 2.5;
  MetricsSnapshot::Hist hp, hc;
  hp.bounds = hc.bounds = {10};
  hp.counts = {4, 1};
  hp.total = 5;
  hc.counts = {9, 2};
  hc.total = 11;
  prev.histograms["h"] = hp;
  cur.histograms["h"] = hc;
  MetricsSnapshot d = snapshot_delta(prev, cur);
  EXPECT_EQ(d.counters.at("c"), 15u);
  EXPECT_EQ(d.counters.at("fresh"), 3u);
  EXPECT_DOUBLE_EQ(d.gauges.at("g"), 2.5);  // gauges pass through
  EXPECT_EQ(d.histograms.at("h").counts[0], 5u);
  EXPECT_EQ(d.histograms.at("h").counts[1], 1u);
  EXPECT_EQ(d.histograms.at("h").total, 6u);
}

TEST(SnapshotDelta, SaturatesOnRegistryReset) {
  MetricsSnapshot prev, cur;
  prev.counters["c"] = 100;
  cur.counters["c"] = 7;  // registry was reset in between
  MetricsSnapshot d = snapshot_delta(prev, cur);
  EXPECT_EQ(d.counters.at("c"), 7u);
}

// ---- PhaseTimes normalization (satellite: total vs phase sums) ----------

TEST(PhaseTimes, OtherIsResidualAndNeverNegative) {
  PhaseTimes t;
  t.reduce_s = 0.1;
  t.bcc_s = 0.2;
  t.traverse_s = 0.3;
  t.combine_s = 0.1;
  t.total_s = 1.0;
  EXPECT_DOUBLE_EQ(t.sum_phases(), 0.7);
  EXPECT_NEAR(t.other_s(), 0.3, 1e-12);

  t.total_s = 0.5;  // inconsistent: phases exceed total
  EXPECT_DOUBLE_EQ(t.other_s(), 0.0);
  t.normalize();
  EXPECT_DOUBLE_EQ(t.total_s, 0.7);  // raised to the phase sum
  EXPECT_DOUBLE_EQ(t.other_s(), 0.0);
}

TEST(PhaseTimes, NormalizeKeepsConsistentTotals) {
  PhaseTimes t;
  t.traverse_s = 0.4;
  t.total_s = 1.0;
  t.normalize();
  EXPECT_DOUBLE_EQ(t.total_s, 1.0);
  EXPECT_DOUBLE_EQ(t.other_s(), 0.6);
}

// ---- Pipeline integration ----------------------------------------------

CsrGraph pipeline_graph() { return build_dataset("road-grid-a", 0.05); }

TEST(ObsPipeline, EstimatePopulatesPhaseTimesConsistently) {
  CsrGraph g = pipeline_graph();
  EstimateOptions o;
  o.sample_rate = 0.2;
  EstimateResult est = estimate_farness(g, o);
  EXPECT_GT(est.times.total_s, 0.0);
  EXPECT_LE(est.times.sum_phases(), est.times.total_s + 1e-9);
  EXPECT_GE(est.times.other_s(), 0.0);
}

#if BRICS_METRICS_ENABLED

TEST(ObsPipeline, EstimateFillsTraversalAndPlanCounters) {
  MetricsRegistry::global().reset();
  CsrGraph g = pipeline_graph();
  EstimateOptions o;
  o.sample_rate = 0.2;
  EstimateResult est = estimate_farness(g, o);
  MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  // Either engine may serve the traversals; sources land in one of the two.
  const auto counter_or_zero = [&](const char* name) -> std::uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0u : it->second;
  };
  EXPECT_GT(counter_or_zero("traverse.bfs_sources") +
                counter_or_zero("traverse.dial_sources"),
            0u);
  EXPECT_GT(snap.counters.at("traverse.nodes_settled"), 0u);
  EXPECT_GT(snap.counters.at("traverse.edges_relaxed"), 0u);
  EXPECT_GT(snap.counters.at("bcc.blocks"), 0u);
  EXPECT_EQ(snap.counters.at("plan.samples_completed"),
            static_cast<std::uint64_t>(est.samples));
  EXPECT_GT(snap.histograms.at("traverse.frontier_size").total, 0u);
  // Phase gauges mirror the result's own timings.
  EXPECT_NEAR(snap.gauges.at("phase.traverse_s"), est.times.traverse_s,
              1e-9);
  EXPECT_NEAR(snap.gauges.at("phase.total_s"), est.times.total_s, 1e-9);
  // Exec state is published even on a clean run.
  EXPECT_DOUBLE_EQ(snap.gauges.at("exec.degraded"), 0.0);
}

TEST(ObsPipeline, ReductionCountersMatchStats) {
  MetricsRegistry::global().reset();
  CsrGraph g = pipeline_graph();
  ReducedGraph rg = reduce(g, ReduceOptions{});
  MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("reduce.identical_removed"),
            static_cast<std::uint64_t>(rg.stats.identical.removed));
  EXPECT_EQ(snap.counters.at("reduce.chain_removed"),
            static_cast<std::uint64_t>(rg.stats.chains.removed));
  EXPECT_EQ(snap.counters.at("reduce.redundant_removed"),
            static_cast<std::uint64_t>(rg.stats.redundant.removed));
}

#else  // BRICS_METRICS_ENABLED == 0

TEST(ObsPipeline, CompiledOutMacrosLeaveRegistryEmpty) {
  MetricsRegistry::global().reset();
  CsrGraph g = pipeline_graph();
  EstimateOptions o;
  o.sample_rate = 0.2;
  EstimateResult est = estimate_farness(g, o);
  EXPECT_GT(est.times.total_s, 0.0);  // timing API works regardless
  MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

#endif  // BRICS_METRICS_ENABLED

// ---- Run report ---------------------------------------------------------

TEST(RunReport, JsonIsValidAndSchemaVersioned) {
  CsrGraph g = pipeline_graph();
  EstimateOptions o;
  o.sample_rate = 0.2;
  EstimateResult est = estimate_farness(g, o);
  RunReport r = make_run_report("test", "@road-grid-a", g, o, "cumulative",
                                est, est.times.total_s);
  EXPECT_EQ(RunReport::kSchemaVersion, 5);
  EXPECT_EQ(r.nodes, static_cast<std::uint64_t>(g.num_nodes()));
  EXPECT_EQ(r.cut_phase, "none");
  EXPECT_EQ(r.measure, "farness");
  EXPECT_EQ(r.storage, "plain");
  EXPECT_GT(r.bytes_per_edge, 0.0);
  const std::string js = to_json(r);
  std::string err;
  EXPECT_TRUE(json_valid(js, &err)) << err;
  EXPECT_NE(js.find("\"schema_version\":5"), std::string::npos);
  EXPECT_NE(js.find("\"measure\":\"farness\""), std::string::npos);
  EXPECT_NE(js.find("\"phases\""), std::string::npos);
  EXPECT_NE(js.find("\"reduction\""), std::string::npos);
  EXPECT_NE(js.find("\"exec\""), std::string::npos);
  EXPECT_NE(js.find("\"parallel\""), std::string::npos);
  EXPECT_NE(js.find("\"recovery\""), std::string::npos);
  EXPECT_NE(js.find("\"memory\""), std::string::npos);
  EXPECT_NE(js.find("\"storage\":\"plain\""), std::string::npos);
  EXPECT_NE(js.find("\"peak_rss_bytes\""), std::string::npos);
  EXPECT_NE(js.find("\"metrics\""), std::string::npos);
}

TEST(RunReport, CompactGraphReportsCompactStorage) {
  CsrGraph g = pipeline_graph();
  g.compress();
  EstimateOptions o;
  o.sample_rate = 0.2;
  o.storage = AdjacencyStorage::kCompact;
  EstimateResult est = estimate_farness(g, o);
  RunReport r = make_run_report("test", "@road-grid-a", g, o, "cumulative",
                                est, est.times.total_s);
  EXPECT_EQ(r.storage, "compact");
  EXPECT_EQ(r.graph_mem.targets_bytes, 0u);
  EXPECT_GT(r.graph_mem.adj_payload_bytes, 0u);
  const std::string js = to_json(r);
  EXPECT_TRUE(json_valid(js));
  EXPECT_NE(js.find("\"storage\":\"compact\""), std::string::npos);
}

TEST(RunReport, DegradedRunCarriesExecState) {
  CsrGraph g = pipeline_graph();
  EstimateOptions o;
  o.sample_rate = 0.5;
  o.budget.max_sources = 2;  // forces a plan cut
  EstimateResult est = estimate_farness(g, o);
  ASSERT_TRUE(est.degraded);
  RunReport r = make_run_report("test", "@road-grid-a", g, o, "cumulative",
                                est, est.times.total_s);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.cut_phase, "plan");
  EXPECT_GT(r.achieved_sample_rate, 0.0);
  EXPECT_LT(r.achieved_sample_rate, o.sample_rate);
  EXPECT_TRUE(json_valid(to_json(r)));
}

}  // namespace
}  // namespace brics
