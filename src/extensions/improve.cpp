#include "extensions/improve.hpp"

#include <algorithm>

#include "traverse/bfs.hpp"
#include "traverse/multi_source.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace brics {

ImproveResult improve_closeness(const CsrGraph& g, NodeId v,
                                const ImproveOptions& opts) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK(v < n);
  BRICS_CHECK_MSG(g.unit_weights(),
                  "improve_closeness requires unit weights");
  BRICS_CHECK(opts.budget >= 1);

  ImproveResult res;
  res.graph = g;

  // Candidate pool (excluding v itself).
  std::vector<NodeId> pool;
  if (opts.candidate_pool == 0 || opts.candidate_pool >= n - 1) {
    pool.reserve(n - 1);
    for (NodeId u = 0; u < n; ++u)
      if (u != v) pool.push_back(u);
  } else {
    Rng rng(opts.seed);
    for (NodeId u :
         sample_without_replacement(n, opts.candidate_pool + 1, rng))
      if (u != v) pool.push_back(u);
    if (pool.size() > opts.candidate_pool) pool.pop_back();
  }

  TraversalWorkspace ws;
  sssp(res.graph, v, ws);
  std::vector<Dist> dv(ws.dist().begin(), ws.dist().end());
  res.initial_farness = aggregate_distances(dv).sum;

  for (NodeId round = 0; round < opts.budget; ++round) {
    // Evaluate every candidate's gain in parallel: one traversal from each
    // candidate, folded into its exact gain against the current d(v, .).
    std::vector<std::int64_t> gain(pool.size(), -1);
    for_each_source(
        res.graph, pool,
        [&](std::size_t i, NodeId u, std::span<const Dist> du) {
          if (res.graph.has_edge(v, u) || u == v) return;  // no-op edge
          std::int64_t gsum = 0;
          for (NodeId x = 0; x < n; ++x) {
            const Dist via = du[x] == kInfDist ? kInfDist : du[x] + 1;
            if (via < dv[x])
              gsum += static_cast<std::int64_t>(dv[x]) - via;
          }
          gain[i] = gsum;
        });
    std::size_t best = 0;
    for (std::size_t i = 1; i < pool.size(); ++i)
      if (gain[i] > gain[best]) best = i;
    if (pool.empty() || gain[best] <= 0) break;  // no improving edge left

    const NodeId u = pool[best];
    GraphBuilder b(n);
    b.add_edges(res.graph.edge_list());
    b.add_edge(v, u);
    res.graph = b.build();
    res.added.push_back(u);

    sssp(res.graph, v, ws);
    dv.assign(ws.dist().begin(), ws.dist().end());
    res.farness.push_back(aggregate_distances(dv).sum);
  }
  return res;
}

}  // namespace brics
