// Greedily improving a node's closeness centrality by adding incident
// edges — the problem of Crescenzi, D'Angelo, Severini, Velaj ("Greedily
// improving our own closeness centrality in a network", TKDD 2016), cited
// by the paper (§I, [8]) as one of the farness-machinery applications.
//
// Given a node v and a budget k, repeatedly add the edge (v, u) that
// maximally decreases farness(v):
//   gain(u) = sum_x max(0, d(v, x) - (1 + d(u, x))).
// The farness function is supermodular, so greedy gives the classic
// (1 - 1/e) guarantee on the closeness increase; this implementation
// evaluates gains exactly over a candidate pool (all nodes by default, or a
// uniform sample for large graphs).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace brics {

struct ImproveOptions {
  NodeId budget = 3;          ///< number of edges to add
  NodeId candidate_pool = 0;  ///< 0 = all nodes; else sample this many
  std::uint64_t seed = 1;
};

struct ImproveResult {
  std::vector<NodeId> added;        ///< chosen endpoints, in greedy order
  std::vector<FarnessSum> farness;  ///< farness(v) after each addition
  FarnessSum initial_farness = 0;
  CsrGraph graph;                   ///< the graph with the edges added
};

/// Greedily add up to opts.budget edges incident to v minimising its
/// farness. Requires a connected unit-weight graph.
ImproveResult improve_closeness(const CsrGraph& g, NodeId v,
                                const ImproveOptions& opts = {});

}  // namespace brics
