// Dynamic farness estimation under edge insertions — the extension the
// paper's conclusion poses as future work ("Extension of this problem to a
// dynamic setting is an interesting study").
//
// Strategy: cache the reduction of the current graph. An inserted edge
// (u, v) is classified:
//   - both endpoints present in the reduced graph: the reductions stay
//     valid (they are exactness-preserving removals whose certificates only
//     involve removed nodes' neighbourhoods; a new edge between present
//     nodes cannot invalidate a pendant/cycle/through reconstruction, but
//     it CAN shorten paths, so chain min-formulas still hold and twin
//     equalities may break — twins incident to the new edge are spliced
//     back). The estimator then re-runs on the patched reduced graph,
//     skipping the reduction phase entirely.
//   - an endpoint was removed: the affected records are rolled back by
//     splicing the removed nodes back into the graph, then the same patched
//     re-estimation runs.
// Either way the expensive reduction scan is amortised across insertions;
// a full rebuild is triggered after `rebuild_threshold` patches to keep the
// reduced graph from degrading.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"
#include "reduce/reducer.hpp"

namespace brics {

struct DynamicStats {
  std::uint64_t insertions = 0;
  std::uint64_t patched = 0;         ///< handled by patching the reduction
  std::uint64_t spliced_nodes = 0;   ///< removed nodes restored by patches
  std::uint64_t full_rebuilds = 0;   ///< reduction recomputed from scratch
};

/// Maintains farness estimates for a graph under edge insertions.
class DynamicFarness {
 public:
  /// `opts` configures every (re-)estimation; `rebuild_threshold` bounds
  /// how many patches may accumulate before a clean re-reduction.
  DynamicFarness(CsrGraph g, EstimateOptions opts,
                 std::uint32_t rebuild_threshold = 64);

  /// Insert undirected edge {u, v} (ignored if already present) and refresh
  /// the estimates.
  void insert_edge(NodeId u, NodeId v, Weight w = 1);

  /// Insert a whole batch, patching the reduction per edge but re-running
  /// the estimator only once at the end — the server's streaming-update
  /// path. Self loops are skipped; a batch of nothing but self loops
  /// leaves the estimates untouched.
  void insert_edges(std::span<const Edge> edges);

  /// Current estimates (recomputed eagerly by insert_edge/insert_edges).
  /// The dynamic estimator always runs the full BCC pipeline on the
  /// patched reduction.
  const EstimateResult& estimate() const { return est_; }

  /// Mutable estimator options for subsequent (re-)estimations — the
  /// server maps per-request deadlines onto .budget here. Reduction
  /// options only take effect at the next full rebuild (the cached
  /// reduction is keyed to the options it was built with).
  EstimateOptions& options() { return opts_; }

  /// The current graph.
  const CsrGraph& graph() const { return g_; }

  /// The (possibly patched) cached reduction.
  const ReducedGraph& reduction() const { return rg_; }

  const DynamicStats& stats() const { return stats_; }

 private:
  void rebuild();
  void patch_reduction(NodeId u, NodeId v);
  void rebuild_reduced_csr();

  CsrGraph g_;
  EstimateOptions opts_;
  std::uint32_t rebuild_threshold_;
  std::uint32_t patches_since_rebuild_ = 0;
  ReducedGraph rg_;
  EstimateResult est_;
  DynamicStats stats_;
};

}  // namespace brics
