// Top-k closeness centrality and the 1-median (paper §I names both as the
// standard variants this machinery serves: Okamoto et al. for top-k,
// Indyk/Thorup for the 1-median).
//
// The exact algorithm ranks nodes by farness using cutoff BFS: candidates
// are visited in ascending order of a BRICS farness estimate (most central
// first), and each BFS aborts as soon as a level-based lower bound on the
// final farness exceeds the current k-th best — after a few good candidates
// the remaining traversals terminate in a handful of levels.
#pragma once

#include <vector>

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

struct TopKOptions {
  /// Options for the guiding estimate (sample_rate is the main knob).
  EstimateOptions estimate;
  /// Upper bound on exact BFS verifications; 0 = no bound (exact result).
  NodeId max_verifications = 0;
};

struct TopKResult {
  /// The k most closeness-central nodes, most central first.
  std::vector<NodeId> nodes;
  /// Exact farness of each returned node.
  std::vector<FarnessSum> farness;
  /// Number of BFS traversals that ran (pruned ones included).
  NodeId traversals = 0;
  /// Sum of BFS levels expanded, as a work proxy for the pruning ablation.
  std::uint64_t levels_expanded = 0;
  /// True when the ranking is provably exact (no verification budget hit).
  bool is_exact = true;
};

/// k nodes with the smallest farness (largest closeness) in a connected
/// graph. Exact unless opts.max_verifications cuts the candidate scan short.
TopKResult top_k_closeness(const CsrGraph& g, NodeId k,
                           const TopKOptions& opts = {});

/// The 1-median: a node with minimum farness. Exact.
NodeId one_median(const CsrGraph& g, const TopKOptions& opts = {});

}  // namespace brics
