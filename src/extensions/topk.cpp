#include "extensions/topk.hpp"

#include <algorithm>
#include <queue>

#include "core/brics.hpp"
#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// BFS from source that aborts once a lower bound on the farness exceeds
// `budget`. Returns the exact farness when it completes, kInvalidFarness
// when pruned. The bound after finishing level L with `visited` nodes and
// partial sum P is P + (n - visited) * (L + 1): every unvisited node is at
// distance at least L + 1.
constexpr FarnessSum kInvalidFarness = ~FarnessSum{0};

struct CutoffBfs {
  std::vector<Dist> dist;
  std::vector<NodeId> queue;

  FarnessSum run(const CsrGraph& g, NodeId source, FarnessSum budget,
                 std::uint64_t& levels_expanded) {
    const NodeId n = g.num_nodes();
    dist.assign(n, kInfDist);
    queue.clear();
    dist[source] = 0;
    queue.push_back(source);
    FarnessSum partial = 0;
    NodeId visited = 1;
    std::size_t level_begin = 0, level_end = 1;
    Dist level = 0;
    const FarnessSum out = g.with_adjacency([&](const auto& adj) {
      while (level_begin < level_end) {
        ++levels_expanded;
        for (std::size_t i = level_begin; i < level_end; ++i) {
          const NodeId u = queue[i];
          adj.for_targets(u, [&](NodeId w) {
            if (dist[w] != kInfDist) return;
            dist[w] = level + 1;
            partial += level + 1;
            ++visited;
            queue.push_back(w);
          });
        }
        level_begin = level_end;
        level_end = queue.size();
        ++level;
        const FarnessSum lower =
            partial + static_cast<FarnessSum>(n - visited) * (level + 1);
        if (visited < n && lower > budget) return kInvalidFarness;
      }
      return partial;
    });
    if (out == kInvalidFarness) return kInvalidFarness;
    BRICS_CHECK_MSG(visited == n, "graph must be connected");
    return out;
  }
};

}  // namespace

TopKResult top_k_closeness(const CsrGraph& g, NodeId k,
                           const TopKOptions& opts) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(k >= 1 && k <= n, "k must be in [1, n]");
  BRICS_CHECK_MSG(g.unit_weights(), "top-k requires an unweighted graph");

  TopKResult res;

  // Candidate order: most central first according to a cheap estimate.
  EstimateOptions eopts = opts.estimate;
  EstimateResult est = estimate_farness(g, eopts);
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return est.farness[a] < est.farness[b];
  });

  // Max-heap of the k best (exact) farness values seen so far.
  std::priority_queue<std::pair<FarnessSum, NodeId>> best;
  CutoffBfs bfs;
  NodeId verified = 0;
  for (NodeId v : order) {
    if (opts.max_verifications > 0 && verified >= opts.max_verifications) {
      res.is_exact = false;  // remaining candidates never examined
      break;
    }
    const FarnessSum budget =
        best.size() < k ? kInvalidFarness - 1 : best.top().first;
    ++res.traversals;
    ++verified;
    const FarnessSum f = bfs.run(g, v, budget, res.levels_expanded);
    if (f == kInvalidFarness) continue;  // provably not in the top k
    if (best.size() < k) {
      best.emplace(f, v);
    } else if (f < best.top().first) {
      best.pop();
      best.emplace(f, v);
    }
  }

  res.nodes.resize(best.size());
  res.farness.resize(best.size());
  for (std::size_t i = best.size(); i > 0; --i) {
    res.nodes[i - 1] = best.top().second;
    res.farness[i - 1] = best.top().first;
    best.pop();
  }
  return res;
}

NodeId one_median(const CsrGraph& g, const TopKOptions& opts) {
  TopKResult r = top_k_closeness(g, 1, opts);
  BRICS_CHECK(!r.nodes.empty());
  return r.nodes.front();
}

}  // namespace brics
