#include "extensions/dynamic.hpp"

#include <unordered_map>

#include "core/brics.hpp"
#include "core/sampling.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// Which ledger records does an insertion at node e invalidate?
//   - e removed: its own record (the node is back in play).
//   - e present: every identical record with rep == e — the rep's
//     neighbourhood grows, so d(w, twin) == d(w, rep) no longer holds.
//   - whenever a twin of rep r is spliced, every chain anchored at r: a
//     spliced (now present) twin is adjacent to the chain's first member in
//     the original graph, opening a second entry into the chain interior
//     that the ledger's min-formula does not model.
// Chains and redundant nodes whose *anchors* gain an edge stay valid: their
// reconstruction formulas hold under any distance change among present
// nodes (see DESIGN.md §3.2).
struct SpliceIndex {
  std::unordered_map<NodeId, std::vector<std::uint32_t>> twins_of_rep;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> chains_of_anchor;

  explicit SpliceIndex(const ReductionLedger& ledger) {
    auto order = ledger.order();
    for (std::uint32_t i = 0; i < order.size(); ++i) {
      switch (order[i].kind) {
        case ReductionLedger::Kind::kIdentical:
          twins_of_rep[ledger.identical()[order[i].index].rep].push_back(i);
          break;
        case ReductionLedger::Kind::kChain: {
          const ChainRecord& c = ledger.chains()[order[i].index];
          chains_of_anchor[c.u].push_back(i);
          if (!c.pendant() && !c.cycle())
            chains_of_anchor[c.v].push_back(i);
          break;
        }
        case ReductionLedger::Kind::kRedundant:
          break;
      }
    }
  }
};

}  // namespace

DynamicFarness::DynamicFarness(CsrGraph g, EstimateOptions opts,
                               std::uint32_t rebuild_threshold)
    : g_(std::move(g)),
      opts_(opts),
      rebuild_threshold_(rebuild_threshold),
      rg_(1) {
  rebuild();
}

void DynamicFarness::rebuild() {
  rg_ = reduce(g_, opts_.reduce);
  est_ = estimate_on_reduction(rg_, opts_);
  patches_since_rebuild_ = 0;
  ++stats_.full_rebuilds;
}

void DynamicFarness::insert_edge(NodeId u, NodeId v, Weight w) {
  const Edge e{u, v, w};
  insert_edges(std::span<const Edge>(&e, 1));
}

void DynamicFarness::insert_edges(std::span<const Edge> edges) {
  bool patched = false;
  bool reduced_fresh = false;  // last mutation was a clean re-reduction
  for (const Edge& e : edges) {
    BRICS_CHECK(e.u < g_.num_nodes() && e.v < g_.num_nodes());
    if (e.u == e.v) continue;
    ++stats_.insertions;

    // Grow the full graph.
    {
      GraphBuilder b(g_.num_nodes());
      b.add_edges(g_.edge_list());
      b.add_edge(e.u, e.v, e.w);
      g_ = b.build();
    }

    if (patches_since_rebuild_ >= rebuild_threshold_) {
      rg_ = reduce(g_, opts_.reduce);
      patches_since_rebuild_ = 0;
      ++stats_.full_rebuilds;
      reduced_fresh = true;
    } else {
      patch_reduction(e.u, e.v);
      reduced_fresh = false;
    }
    patched = true;
  }
  if (!patched) return;
  // A fresh reduction already carries its own CSR; only patches dirty it.
  if (!reduced_fresh) rebuild_reduced_csr();
  est_ = estimate_on_reduction(rg_, opts_);
}

void DynamicFarness::patch_reduction(NodeId u, NodeId v) {
  // Collect the records to splice (see SpliceIndex).
  SpliceIndex index(rg_.ledger);
  std::vector<std::uint32_t> to_splice;
  std::vector<NodeId> twin_reps;
  for (NodeId e : {u, v}) {
    if (rg_.ledger.removed(e)) {
      const std::uint32_t rec = rg_.ledger.record_of(e);
      to_splice.push_back(rec);
      // A spliced twin re-opens chains anchored at its rep.
      auto order = rg_.ledger.order();
      if (order[rec].kind == ReductionLedger::Kind::kIdentical)
        twin_reps.push_back(
            rg_.ledger.identical()[order[rec].index].rep);
    } else {
      auto it = index.twins_of_rep.find(e);
      if (it != index.twins_of_rep.end()) {
        bool any = false;
        for (std::uint32_t rec : it->second)
          if (rg_.ledger.record_active(rec)) {
            to_splice.push_back(rec);
            any = true;
          }
        if (any) twin_reps.push_back(e);
      }
    }
  }
  for (NodeId r : twin_reps) {
    auto it = index.chains_of_anchor.find(r);
    if (it == index.chains_of_anchor.end()) continue;
    for (std::uint32_t rec : it->second)
      if (rg_.ledger.record_active(rec)) to_splice.push_back(rec);
  }

  for (std::uint32_t rec : to_splice) {
    if (!rg_.ledger.record_active(rec)) continue;
    std::vector<NodeId> restored = rg_.ledger.splice_record(rec);
    stats_.spliced_nodes += restored.size();
    for (NodeId x : restored) {
      rg_.present[x] = 1;
      ++rg_.num_present;
    }
  }
  ++stats_.patched;
  ++patches_since_rebuild_;
}

// Rebuild the reduced CSR graph: original edges among present nodes plus
// the compressed edges of still-active through chains.
void DynamicFarness::rebuild_reduced_csr() {
  GraphBuilder b(g_.num_nodes());
  for (const Edge& e : g_.edge_list())
    if (rg_.present[e.u] && rg_.present[e.v]) b.add_edge(e.u, e.v, e.w);
  auto order = rg_.ledger.order();
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    if (order[i].kind != ReductionLedger::Kind::kChain) continue;
    if (!rg_.ledger.record_active(i)) continue;
    const ChainRecord& c = rg_.ledger.chains()[order[i].index];
    if (c.pendant() || c.cycle()) continue;
    b.add_edge(c.u, c.v, c.total);
  }
  rg_.graph = b.build();
}

}  // namespace brics
