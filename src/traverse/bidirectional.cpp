#include "traverse/bidirectional.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace brics {

Dist bidirectional_distance(const CsrGraph& g, NodeId s, NodeId t) {
  BRICS_CHECK_MSG(g.unit_weights(),
                  "bidirectional_distance requires unit weights");
  const NodeId n = g.num_nodes();
  BRICS_CHECK(s < n && t < n);
  if (s == t) return 0;

  // Two distance arrays; expand the smaller frontier each round. A meeting
  // node settles the answer, but the optimum may cross between the current
  // frontiers, so we track the best sum seen and stop once the combined
  // search radius reaches it.
  std::vector<Dist> ds(n, kInfDist), dt(n, kInfDist);
  std::vector<NodeId> fs{s}, ft{t}, next;
  ds[s] = 0;
  dt[t] = 0;
  Dist radius_s = 0, radius_t = 0;
  Dist best = kInfDist;

  while (!fs.empty() && !ft.empty()) {
    if (best != kInfDist && radius_s + radius_t + 1 >= best) return best;
    const bool expand_s = fs.size() <= ft.size();
    auto& frontier = expand_s ? fs : ft;
    auto& mine = expand_s ? ds : dt;
    auto& theirs = expand_s ? dt : ds;
    Dist& radius = expand_s ? radius_s : radius_t;

    next.clear();
    for (NodeId u : frontier) {
      g.for_neighbors(u, [&](NodeId w, Weight) {
        if (mine[w] != kInfDist) return;
        mine[w] = mine[u] + 1;
        if (theirs[w] != kInfDist)
          best = std::min(best,
                          static_cast<Dist>(mine[w] + theirs[w]));
        next.push_back(w);
      });
    }
    frontier.swap(next);
    ++radius;
  }
  return best;
}

Dist point_to_point(const CsrGraph& g, NodeId s, NodeId t) {
  BRICS_CHECK(s < g.num_nodes() && t < g.num_nodes());
  if (s == t) return 0;
  if (g.unit_weights()) return bidirectional_distance(g, s, t);
  // Dial with early exit: once t is settled (popped from its bucket) its
  // label is final.
  const Weight c = g.max_weight();
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  const std::size_t nb = static_cast<std::size_t>(c) + 1;
  std::vector<std::vector<NodeId>> buckets(nb);
  dist[s] = 0;
  buckets[0].push_back(s);
  std::size_t remaining = 1;
  for (Dist d = 0; remaining > 0; ++d) {
    auto& bucket = buckets[d % nb];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId u = bucket[i];
      if (dist[u] != d) continue;
      if (u == t) return d;
      g.for_neighbors(u, [&](NodeId v, Weight w) {
        const Dist cand = d + w;
        if (cand < dist[v]) {
          dist[v] = cand;
          buckets[cand % nb].push_back(v);
          ++remaining;
        }
      });
    }
    remaining -= bucket.size();
    bucket.clear();
  }
  return dist[t];
}

}  // namespace brics
