#include "traverse/bfs.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// Cancellation is polled once per kPollStride node expansions: frequent
// enough that a deadline overrun is bounded by microseconds of extra work,
// rare enough that the steady_clock read vanishes next to the traversal.
constexpr std::size_t kPollStride = 1024;

#if BRICS_METRICS_ENABLED
// Nanoseconds since `start`, for the per-thread busy-time attribution
// (traverse.busy_ns). Nanosecond granularity matters: the batched kernel
// runs sub-microsecond traversals whose busy time would round to zero in
// coarser units and make small-block threads look idle.
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}
#endif

}  // namespace

void TraversalWorkspace::resize(NodeId n, Weight max_w) {
  dist_.assign(n, kInfDist);
  queue_.clear();
  queue_.reserve(n);
  if (buckets_.size() < static_cast<std::size_t>(max_w) + 1)
    buckets_.resize(static_cast<std::size_t>(max_w) + 1);
}

bool bfs(const CsrGraph& g, NodeId source, TraversalWorkspace& ws,
         const CancelToken* cancel) {
  BRICS_CHECK_MSG(g.unit_weights(), "bfs() requires unit weights");
  BRICS_CHECK(source < g.num_nodes());
  ws.resize(g.num_nodes(), 1);
  auto& dist = ws.dist_;
  auto& queue = ws.queue_;
  BRICS_COUNTER(c_sources, "traverse.bfs_sources");
  BRICS_COUNTER(c_nodes, "traverse.nodes_settled");
  BRICS_COUNTER(c_edges, "traverse.edges_relaxed");
  BRICS_COUNTER(c_cancelled, "traverse.cancelled");
  BRICS_COUNTER(c_busy, "traverse.busy_ns");
  BRICS_HISTOGRAM(h_frontier, "traverse.frontier_size", pow2_bounds());
  // Counters accumulate in locals and flush once per traversal so the hot
  // loop pays at most one add per settled node. Busy-time is attributed to
  // the calling thread's slot even for cancelled traversals — the thread
  // was occupied either way, and the imbalance analysis must see it.
  BRICS_METRICS_ONLY(std::uint64_t edges = 0; Dist level = 0;
                     std::size_t level_start = 0;
                     const auto busy_start = std::chrono::steady_clock::now();)
  dist[source] = 0;
  queue.push_back(source);
  // One dispatch on the storage backend, then a branch-free frontier loop
  // per instantiation (plain span walk / inline varint decode).
  const bool done = g.with_adjacency([&](const auto& adj) {
    for (std::size_t head = 0; head < queue.size(); ++head) {
      if (cancel && head % kPollStride == 0 && cancel->poll()) return false;
      const NodeId u = queue[head];
      const Dist du = dist[u];
      BRICS_METRICS_ONLY(edges += adj.degree(u); if (du != level) {
        h_frontier.observe(head - level_start);
        level = du;
        level_start = head;
      })
      adj.for_targets(u, [&](NodeId w) {
        if (dist[w] == kInfDist) {
          dist[w] = du + 1;
          queue.push_back(w);
        }
      });
    }
    return true;
  });
  if (!done) {
    BRICS_COUNTER_ADD(c_cancelled, 1);
    BRICS_METRICS_ONLY(c_busy.add(elapsed_ns(busy_start));)
    return false;
  }
  BRICS_METRICS_ONLY(h_frontier.observe(queue.size() - level_start);
                     c_sources.add(1); c_nodes.add(queue.size());
                     c_edges.add(edges);
                     c_busy.add(elapsed_ns(busy_start));)
  return true;
}

bool dial_sssp(const CsrGraph& g, NodeId source, TraversalWorkspace& ws,
               const CancelToken* cancel) {
  BRICS_CHECK(source < g.num_nodes());
  const Weight c = g.max_weight();
  ws.resize(g.num_nodes(), c);
  auto& dist = ws.dist_;
  auto& buckets = ws.buckets_;
  const std::size_t nb = static_cast<std::size_t>(c) + 1;

  BRICS_COUNTER(c_sources, "traverse.dial_sources");
  BRICS_COUNTER(c_nodes, "traverse.nodes_settled");
  BRICS_COUNTER(c_edges, "traverse.edges_relaxed");
  BRICS_COUNTER(c_cancelled, "traverse.cancelled");
  BRICS_COUNTER(c_busy, "traverse.busy_ns");
  BRICS_HISTOGRAM(h_frontier, "traverse.frontier_size", pow2_bounds());
  BRICS_METRICS_ONLY(std::uint64_t edges = 0; std::uint64_t nodes = 0;
                     const auto busy_start = std::chrono::steady_clock::now();)
  dist[source] = 0;
  buckets[0].push_back(source);
  const bool done = g.with_adjacency([&](const auto& adj) {
    std::size_t remaining = 1;
    std::size_t settled = 0;
    for (Dist d = 0; remaining > 0; ++d) {
      auto& bucket = buckets[d % nb];
      // Bucket size as the frontier proxy (may include stale entries).
      BRICS_METRICS_ONLY(if (!bucket.empty())
                             h_frontier.observe(bucket.size());)
      // Process bucket d; relaxations may append to buckets d+1 .. d+c, all
      // distinct modulo nb, so the current bucket is never appended to.
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (cancel && ++settled % kPollStride == 0 && cancel->poll())
          return false;
        const NodeId u = bucket[i];
        if (dist[u] != d) continue;  // stale entry, settled earlier
        BRICS_METRICS_ONLY(edges += adj.degree(u); ++nodes;)
        adj.for_neighbors(u, [&](NodeId v, Weight w) {
          const Dist cand = d + w;
          if (cand < dist[v]) {
            dist[v] = cand;
            buckets[cand % nb].push_back(v);
            ++remaining;
          }
        });
      }
      remaining -= bucket.size();
      bucket.clear();
    }
    return true;
  });
  if (!done) {
    // Leave the workspace reusable: clear every touched bucket.
    for (auto& b : buckets) b.clear();
    BRICS_COUNTER_ADD(c_cancelled, 1);
    BRICS_METRICS_ONLY(c_busy.add(elapsed_ns(busy_start));)
    return false;
  }
  BRICS_METRICS_ONLY(c_sources.add(1); c_nodes.add(nodes);
                     c_busy.add(elapsed_ns(busy_start));
                     c_edges.add(edges);)
  return true;
}

bool sssp(const CsrGraph& g, NodeId source, TraversalWorkspace& ws,
          const CancelToken* cancel) {
  if (g.unit_weights()) return bfs(g, source, ws, cancel);
  return dial_sssp(g, source, ws, cancel);
}

std::vector<Dist> sssp_distances(const CsrGraph& g, NodeId source) {
  TraversalWorkspace ws;
  sssp(g, source, ws);
  auto d = ws.dist();
  return {d.begin(), d.end()};
}

DistanceAggregate aggregate_distances(std::span<const Dist> dist) {
  DistanceAggregate a;
  for (Dist d : dist) {
    if (d == kInfDist) continue;
    a.sum += d;
    ++a.reached;
    a.ecc = std::max(a.ecc, d);
  }
  return a;
}

}  // namespace brics
