// Single-source shortest paths on CsrGraph.
//
// Two engines with a common interface:
//   - bfs():       frontier BFS, unit weights only.
//   - dial_sssp(): Dial's bucket algorithm for small integer weights, the
//                  engine required after chain compression (§3.1 DESIGN.md).
// sssp() dispatches on CsrGraph::unit_weights().
//
// Both fill a caller-provided distance array (kInfDist = unreachable) and
// reuse caller-provided workspaces so parallel multi-source sweeps do no
// per-source allocation.
#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace brics {

/// Reusable scratch for one traversal thread.
class TraversalWorkspace {
 public:
  /// Prepare for a graph with n nodes and maximum edge weight max_w.
  void resize(NodeId n, Weight max_w);

  /// Distances from the last traversal run with this workspace.
  std::span<const Dist> dist() const { return dist_; }
  std::span<Dist> dist_mut() { return dist_; }

 private:
  friend void bfs(const CsrGraph&, NodeId, TraversalWorkspace&);
  friend void dial_sssp(const CsrGraph&, NodeId, TraversalWorkspace&);

  std::vector<Dist> dist_;
  std::vector<NodeId> queue_;
  // Circular bucket array for Dial's algorithm, max_w + 1 buckets.
  std::vector<std::vector<NodeId>> buckets_;
};

/// Frontier BFS from source. Requires g.unit_weights().
void bfs(const CsrGraph& g, NodeId source, TraversalWorkspace& ws);

/// Dial's bucket SSSP from source; correct for any integer weights >= 1,
/// O(m + D) where D is the source's eccentricity.
void dial_sssp(const CsrGraph& g, NodeId source, TraversalWorkspace& ws);

/// Dispatch: bfs() on unit-weight graphs, dial_sssp() otherwise.
void sssp(const CsrGraph& g, NodeId source, TraversalWorkspace& ws);

/// Convenience single-shot: allocate a workspace, run sssp, return distances.
std::vector<Dist> sssp_distances(const CsrGraph& g, NodeId source);

/// Sum of finite distances in dist, and the count of finite entries
/// (including the zero at the source).
struct DistanceAggregate {
  FarnessSum sum = 0;
  NodeId reached = 0;  ///< number of nodes with finite distance
  Dist ecc = 0;        ///< largest finite distance (eccentricity)
};
DistanceAggregate aggregate_distances(std::span<const Dist> dist);

}  // namespace brics
