// Single-source shortest paths on CsrGraph.
//
// Two engines with a common interface:
//   - bfs():       frontier BFS, unit weights only.
//   - dial_sssp(): Dial's bucket algorithm for small integer weights, the
//                  engine required after chain compression (§3.1 DESIGN.md).
// sssp() dispatches on CsrGraph::unit_weights().
//
// Both fill a caller-provided distance array (kInfDist = unreachable) and
// reuse caller-provided workspaces so parallel multi-source sweeps do no
// per-source allocation.
//
// All engines accept an optional CancelToken, polled at frontier
// granularity (every ~1k node expansions); a cancelled traversal stops
// early and returns false, leaving the distance array partially filled —
// callers must discard it. A null token never cancels and costs nothing.
#pragma once

#include <span>
#include <vector>

#include "exec/budget.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

/// Reusable scratch for one traversal thread.
class TraversalWorkspace {
 public:
  /// Prepare for a graph with n nodes and maximum edge weight max_w.
  void resize(NodeId n, Weight max_w);

  /// Distances from the last traversal run with this workspace.
  std::span<const Dist> dist() const { return dist_; }
  std::span<Dist> dist_mut() { return dist_; }

 private:
  friend bool bfs(const CsrGraph&, NodeId, TraversalWorkspace&,
                  const CancelToken*);
  friend bool dial_sssp(const CsrGraph&, NodeId, TraversalWorkspace&,
                        const CancelToken*);

  std::vector<Dist> dist_;
  std::vector<NodeId> queue_;
  // Circular bucket array for Dial's algorithm, max_w + 1 buckets.
  std::vector<std::vector<NodeId>> buckets_;
};

/// Frontier BFS from source. Requires g.unit_weights(). Returns false iff
/// the traversal was cancelled before completion.
bool bfs(const CsrGraph& g, NodeId source, TraversalWorkspace& ws,
         const CancelToken* cancel = nullptr);

/// Dial's bucket SSSP from source; correct for any integer weights >= 1,
/// O(m + D) where D is the source's eccentricity. Returns false iff
/// cancelled.
bool dial_sssp(const CsrGraph& g, NodeId source, TraversalWorkspace& ws,
               const CancelToken* cancel = nullptr);

/// Dispatch: bfs() on unit-weight graphs, dial_sssp() otherwise.
bool sssp(const CsrGraph& g, NodeId source, TraversalWorkspace& ws,
          const CancelToken* cancel = nullptr);

/// Convenience single-shot: allocate a workspace, run sssp, return distances.
std::vector<Dist> sssp_distances(const CsrGraph& g, NodeId source);

/// Sum of finite distances in dist, and the count of finite entries
/// (including the zero at the source).
struct DistanceAggregate {
  FarnessSum sum = 0;
  NodeId reached = 0;  ///< number of nodes with finite distance
  Dist ecc = 0;        ///< largest finite distance (eccentricity)
};
DistanceAggregate aggregate_distances(std::span<const Dist> dist);

}  // namespace brics
