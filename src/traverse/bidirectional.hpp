// Point-to-point shortest-path queries.
//
// bidirectional_distance() expands alternating BFS frontiers from both
// endpoints and meets in the middle — on small-world graphs this touches
// O(sqrt) of the nodes a full BFS would. Unit-weight graphs only; for
// weighted (chain-compressed) graphs use point_to_point(), which falls back
// to a Dial traversal with an early exit once the target settles.
#pragma once

#include "graph/csr_graph.hpp"
#include "traverse/bfs.hpp"

namespace brics {

/// Exact d(s, t) by bidirectional BFS; kInfDist when disconnected.
/// Requires g.unit_weights().
Dist bidirectional_distance(const CsrGraph& g, NodeId s, NodeId t);

/// Exact d(s, t) on any graph: bidirectional BFS when unit-weight, Dial
/// with target early-exit otherwise.
Dist point_to_point(const CsrGraph& g, NodeId s, NodeId t);

}  // namespace brics
