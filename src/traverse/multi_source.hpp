// Parallel multi-source traversal driver.
//
// Both estimators in src/core reduce to "run an SSSP from every node in a
// source set and fold the distance vector into an accumulator". This header
// provides that loop once: OpenMP-parallel over sources, one reusable
// TraversalWorkspace per thread, dynamic scheduling (source eccentricities —
// and hence traversal costs — vary wildly on real-world graphs).
//
// The fold callback runs concurrently across sources; callers either write
// to disjoint per-source slots or use atomics/reduction arrays.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "traverse/bfs.hpp"
#include "util/first_touch.hpp"
#include "util/parallel.hpp"

namespace brics {

/// Invoke fn(source_index, source, distances) for every source, in parallel.
/// fn must be safe to call concurrently for distinct sources.
template <typename Fn>
void for_each_source(const CsrGraph& g, std::span<const NodeId> sources,
                     Fn&& fn) {
  const std::int64_t k = static_cast<std::int64_t>(sources.size());
#pragma omp parallel
  {
    TraversalWorkspace ws;
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t i = 0; i < k; ++i) {
      const NodeId s = sources[static_cast<std::size_t>(i)];
      sssp(g, s, ws);
      fn(static_cast<std::size_t>(i), s, ws.dist());
    }
  }
}

/// Deadline-aware variant of for_each_source. The first `mandatory`
/// sources always run to completion regardless of the token (estimators
/// place the work their exactness guarantees depend on there — and at
/// least one source, so a degraded estimate always exists). The remaining
/// sources are skipped once the token fires, and a traversal in flight when
/// the deadline passes is aborted and discarded. fn is only invoked for
/// sources that completed; completed[i] records which. Returns the number
/// of completed sources. With a token that never fires, behaviour — and
/// output, bit for bit — matches for_each_source.
template <typename Fn>
std::size_t for_each_source_budgeted(const CsrGraph& g,
                                     std::span<const NodeId> sources,
                                     const CancelToken& cancel,
                                     std::size_t mandatory,
                                     std::vector<std::uint8_t>& completed,
                                     Fn&& fn) {
  const std::int64_t k = static_cast<std::int64_t>(sources.size());
  completed.assign(sources.size(), 0);
#pragma omp parallel
  {
    TraversalWorkspace ws;
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t i = 0; i < k; ++i) {
      const bool must = static_cast<std::size_t>(i) < mandatory;
      if (!must && cancel.poll()) continue;
      const NodeId s = sources[static_cast<std::size_t>(i)];
      if (!sssp(g, s, ws, must ? nullptr : &cancel)) continue;
      fn(static_cast<std::size_t>(i), s, ws.dist());
      completed[static_cast<std::size_t>(i)] = 1;
    }
  }
  std::size_t done = 0;
  for (std::uint8_t c : completed) done += c;
  return done;
}

/// Sequential batched driver: run an SSSP from every source on the CALLING
/// thread, reusing one workspace, invoking fn(i, dist) after each. This is
/// the engine behind the batched traversal kernel (pipeline/kernels.hpp):
/// when a block is small, per-source parallel tasks cost more in scheduling
/// and workspace cache churn than the traversals themselves, so the whole
/// block becomes one task and its sources run back to back on hot scratch.
/// Sources with index < mandatory always complete (never polled); the rest
/// are skipped once `cancel` fires. completed[i] records which.
/// Returns the number of sources completed in [first, first + count).
template <typename Fn>
std::size_t sssp_batch(const CsrGraph& g, std::span<const NodeId> sources,
                       std::size_t first, std::size_t count,
                       std::size_t mandatory, const CancelToken* cancel,
                       TraversalWorkspace& ws,
                       std::span<std::uint8_t> completed, Fn&& fn) {
  std::size_t done = 0;
  for (std::size_t i = first; i < first + count; ++i) {
    // Sources already flagged completed (retry re-entry, checkpoint
    // resume) are skipped — their folds must not run twice.
    if (completed[i]) continue;
    const bool must = i < mandatory;
    if (!must && cancel != nullptr && cancel->poll()) continue;
    if (!sssp(g, sources[i], ws, must ? nullptr : cancel)) continue;
    fn(i, ws.dist());
    completed[i] = 1;
    ++done;
  }
  return done;
}

/// Per-thread accumulation buffers merged after the parallel region.
/// Used to build Σ_{s∈S} d(s, v) for every v without atomics: each thread
/// owns a private FarnessSum array, merged once at the end.
class DistanceSumAccumulator {
 public:
  explicit DistanceSumAccumulator(NodeId n)
      : n_(n), per_thread_(static_cast<std::size_t>(max_threads())) {}

  /// Add dist[] into the calling thread's buffer (lazily allocated).
  void add(std::span<const Dist> dist) {
    auto& buf = per_thread_[static_cast<std::size_t>(thread_id())];
    if (buf.empty()) buf.assign(n_, 0);
    for (NodeId v = 0; v < n_; ++v)
      if (dist[v] != kInfDist) buf[v] += dist[v];
  }

  /// Merge all thread buffers into one total (call outside parallel
  /// region). The merge is a parallel static sweep over nodes so the
  /// result pages are first-touched by the threads that later read them;
  /// per-node buffer order is preserved (integer sums — order-free anyway).
  std::vector<FarnessSum> merge() const {
    std::vector<FarnessSum> total;
    first_touch_assign(total, n_, FarnessSum{0});
    const std::int64_t sn = static_cast<std::int64_t>(n_);
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < sn; ++v)
      for (const auto& buf : per_thread_)
        if (!buf.empty()) total[static_cast<std::size_t>(v)] += buf[v];
    return total;
  }

 private:
  NodeId n_;
  std::vector<std::vector<FarnessSum>> per_thread_;
};

}  // namespace brics
