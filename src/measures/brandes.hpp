// Brandes dependency accumulation: the traversal kernel of the betweenness
// subsystem (DESIGN.md §8, ISSUE 8).
//
// For one source s, Brandes (2001) computes every node's dependency
//
//   δ_s(v) = Σ_{t != s,v}  σ_st(v) / σ_st
//
// (the fraction of shortest s→t paths through v, summed over targets t) in
// one forward pass (path counts σ, ascending distance) and one backward
// pass (δ, descending distance) over the shortest-path DAG. Summing δ_s(v)
// over all sources s yields the unnormalized ordered-pair betweenness.
//
// This module provides the per-source pass over a distance vector that some
// SSSP engine already produced — the same contract as the farness
// aggregation, so the pass plugs into traverse_flat / the staged Traverse
// kernels as a sink. The decomposed estimator (measures/betweenness.cpp)
// supplies per-node target weights `tw` so a block-local pass accounts for
// the full-graph mass hiding behind cut vertices and pendant chains; the
// flat paths here run unweighted (tw empty ⇔ all ones).
//
// Both passes are pull-based: a node reads finalized neighbor values in CSR
// adjacency order, so the result is bit-deterministic regardless of how
// equal-distance nodes are ordered — the property the Q64.64 accumulation
// contract (measures/accum.hpp) builds on.
#pragma once

#include <span>
#include <vector>

#include "core/estimate.hpp"
#include "exec/budget.hpp"
#include "graph/csr_graph.hpp"
#include "measures/accum.hpp"
#include "traverse/bfs.hpp"

namespace brics {

/// Per-thread scratch for dependency passes. `trav` serves callers that
/// also run the SSSP themselves (exact_betweenness); the staged kernels
/// bring their own distances and leave it untouched.
struct BcWorkspace {
  TraversalWorkspace trav;
  std::vector<double> sigma;   ///< shortest-path counts from the source
  std::vector<double> delta;   ///< dependencies, valid for nodes in `order`
  std::vector<NodeId> order;   ///< reached nodes, ascending (dist, id)
  std::vector<NodeId> bucket;  ///< counting-sort offsets
  std::vector<NodeId> sorted;  ///< counting-sort output scratch

  void resize(NodeId n, Weight max_w) {
    trav.resize(n, max_w);
    sigma.assign(n, 0.0);
    delta.assign(n, 0.0);
    order.reserve(n);
  }
};

/// Run the two Brandes passes for `source` over `dist` (a complete distance
/// vector on g; kInfDist entries are skipped). Fills ws.sigma, ws.delta and
/// ws.order for every reached node. `tw[v]` weights node v as a TARGET:
/// δ picks up tw(u) instead of 1 at each DAG edge head. Pass an empty span
/// for unit weights. ws must be resized for g beforehand.
void bc_dependency_pass(const CsrGraph& g, NodeId source,
                        std::span<const Dist> dist,
                        std::span<const std::uint64_t> tw, BcWorkspace& ws);

/// Exact unnormalized betweenness: one dependency pass per node, parallel
/// over sources, per-thread Q64.64 partial sums merged exactly. This is the
/// independent oracle the pipeline tests compare against — it shares the
/// per-source pass with the estimators but none of the decomposition
/// machinery. Requires a connected graph.
std::vector<double> exact_betweenness(const CsrGraph& g);

/// Flat sampled estimator (Brandes–Pich): dependency passes from k sampled
/// sources, every node scaled by n / k_done. No reductions, no
/// decomposition — this is the baseline the BRICS betweenness estimator is
/// measured against, and the degraded-mode fallback when the staged
/// pipeline faults. exact[] is all-ones iff every source ran (k_done == n:
/// the scale is exactly 1 and the result is bitwise exact_betweenness),
/// all-zeros otherwise — a sampled source does NOT learn its own exact
/// betweenness, unlike farness.
EstimateResult estimate_betweenness_sampling(const CsrGraph& g,
                                             const EstimateOptions& opts);

/// As above but cooperating with an existing deadline token (the degraded
/// fallback path re-uses whatever budget remains).
EstimateResult estimate_betweenness_sampling_budgeted(
    const CsrGraph& g, const EstimateOptions& opts, const CancelToken& token);

}  // namespace brics
