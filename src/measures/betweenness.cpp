#include "measures/betweenness.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "core/brics.hpp"
#include "exec/checkpoint.hpp"
#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "exec/recovery.hpp"
#include "graph/connectivity.hpp"
#include "measures/brandes.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pipeline/kernels.hpp"
#include "pipeline/stages.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace brics {

ReduceOptions bc_reduce_options(const ReduceOptions& req) {
  ReduceOptions r = req;
  // Only the degree-1 peel preserves shortest-path multiplicities: twin
  // removal merges parallel paths, cycle/through-chain compression rewrites
  // them, redundant removal assumes they don't matter. chains/iterate/
  // max_rounds pass through so --no-reduce style configs still apply.
  r.identical = false;
  r.redundant = false;
  r.pendant_only = true;
  return r;
}

// ---------------------------------------------------------------------------
// Mass DP
// ---------------------------------------------------------------------------

BcMasses compute_bc_masses(const ReducedGraph& rg, const Decomposition& dec) {
  const NodeId n = rg.ledger.num_nodes();
  const BlockId nb = dec.num_blocks();
  const BlockCutTree& bct = dec.bct;
  BcMasses m;
  m.node_mass.assign(n, 0);
  m.tree_sq.assign(n, 0);

  // Pendant trees fold onto their (pinned, hence present) anchors. The
  // Decompose homing of chain records is NOT reused here: a record anchored
  // at a cut vertex is homed to an arbitrary containing block, but its mass
  // must sit on the anchor itself, on whichever side of each cut the anchor
  // is — node_mass keyed by node, not by block, gets that for free.
  auto order = rg.ledger.order();
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    if (!rg.ledger.record_active(i)) continue;
    BRICS_CHECK_MSG(order[i].kind == ReductionLedger::Kind::kChain,
                    "betweenness requires a pendant-only reduction");
    const ChainRecord& r = rg.ledger.chains()[order[i].index];
    BRICS_CHECK_MSG(r.pendant(),
                    "betweenness requires a pendant-only reduction");
    BRICS_CHECK_MSG(rg.present[r.u], "pendant anchor was removed");
    const std::uint64_t len = r.members.size();
    m.node_mass[r.u] += len;
    m.tree_sq[r.u] += len * len;
  }
  for (NodeId v = 0; v < n; ++v)
    if (rg.present[v]) m.node_mass[v] += 1;

  m.own_w.assign(nb, 0);
  m.sub_w.assign(nb, 0);
  m.comp_total.assign(nb, 0);
  m.out_w.resize(nb);
  for (BlockId b = 0; b < nb; ++b) {
    const BlockInfo& bi = dec.blocks[b];
    m.out_w[b].assign(bi.cut_count, 0);
    for (NodeId lv = 0; lv < bi.num_nodes(); ++lv)
      if (bi.owned[lv]) m.own_w[b] += m.node_mass[bi.sub.to_old[lv]];
  }

  // Bottom-up: sub_w[b] = mass of the BCT subtree at-and-below b, excluding
  // b's parent cut (which its parent block owns).
  std::vector<std::uint64_t> down_w(bct.num_cuts(), 0);
  for (auto it = bct.top_down.rbegin(); it != bct.top_down.rend(); ++it) {
    const BlockId b = *it;
    const BlockInfo& bi = dec.blocks[b];
    const CutId p = bct.parent_cut[b];
    std::uint64_t w = m.own_w[b];
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci) {
      const CutId c = bct.cut_of_node[bi.sub.to_old[bi.cuts_local[ci]]];
      if (c != p) w += down_w[c];
    }
    m.sub_w[b] = w;
    if (p != kInvalidCut) down_w[p] += w;
  }

  // Top-down: component totals inherit root-block sub_w; out_w[b][ci] is
  // the mass strictly beyond that cut (the cut's own node_mass excluded —
  // the closed forms and target weights both want the cut counted exactly
  // once, on the node itself).
  for (BlockId b : bct.top_down) {
    const BlockInfo& bi = dec.blocks[b];
    const CutId p = bct.parent_cut[b];
    m.comp_total[b] =
        p == kInvalidCut ? m.sub_w[b] : m.comp_total[bct.parent_block[p]];
    std::uint64_t check = m.own_w[b];
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci) {
      const NodeId gc = bi.sub.to_old[bi.cuts_local[ci]];
      const CutId c = bct.cut_of_node[gc];
      if (c == p) {
        m.out_w[b][ci] = m.comp_total[b] - m.sub_w[b] - m.node_mass[gc];
        check += m.node_mass[gc];
      } else {
        m.out_w[b][ci] = down_w[c];
      }
      check += m.out_w[b][ci];
    }
    BRICS_CHECK_MSG(check == m.comp_total[b],
                    "BC mass mismatch in block " << b);
  }

  // Per-cut conservation: the graph-side groups of S \ {cut} partition the
  // component minus the cut's own mass.
  for (CutId c = 0; c < bct.num_cuts(); ++c) {
    const NodeId gc = bct.cut_nodes[c];
    std::uint64_t group_sum = 0, T = 0;
    for (BlockId b : bct.cut_blocks[c]) {
      const BlockInfo& bi = dec.blocks[b];
      T = m.comp_total[b] - m.node_mass[gc];
      for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci)
        if (bi.sub.to_old[bi.cuts_local[ci]] == gc)
          group_sum += T - m.out_w[b][ci];
    }
    BRICS_CHECK_MSG(group_sum == T, "BC cut-group mismatch at cut " << c);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Checkpoint codec (kBcTraversal)
// ---------------------------------------------------------------------------

std::string encode_bc_traversal(const BcTraversalResults& trav) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(trav.blocks.size()));
  for (const BcTraversalResults::BlockData& bd : trav.blocks) {
    w.u32(static_cast<std::uint32_t>(bd.completed.size()));
    if (!bd.completed.empty())
      w.bytes(bd.completed.data(), bd.completed.size());
    w.u32(static_cast<std::uint32_t>(bd.acc_cut.size()));
    for (const BcAccum& a : bd.acc_cut) {
      w.u64(a.hi());
      w.u64(a.lo());
    }
    for (const BcAccum& a : bd.acc_opt) {
      w.u64(a.hi());
      w.u64(a.lo());
    }
  }
  return w.str();
}

bool decode_bc_traversal(const std::string& payload, const Decomposition& dec,
                         const SamplePlan& plan, BcTraversalResults& out) {
  try {
    ByteReader r(payload);
    const std::uint32_t nb = r.u32();
    if (nb != dec.num_blocks()) return false;
    out.blocks.assign(nb, {});
    for (BlockId b = 0; b < nb; ++b) {
      BcTraversalResults::BlockData& bd = out.blocks[b];
      const std::uint32_t ns = r.u32();
      if (ns != plan.blocks[b].samples.size()) return false;
      bd.completed.assign(ns, 0);
      if (ns > 0) r.bytes(bd.completed.data(), ns);
      const std::uint32_t nl = r.u32();
      if (nl != dec.blocks[b].num_nodes()) return false;
      bd.acc_cut.resize(nl);
      bd.acc_opt.resize(nl);
      for (std::uint32_t lv = 0; lv < nl; ++lv) {
        const std::uint64_t hi = r.u64(), lo = r.u64();
        bd.acc_cut[lv] = BcAccum::from_words(hi, lo);
      }
      for (std::uint32_t lv = 0; lv < nl; ++lv) {
        const std::uint64_t hi = r.u64(), lo = r.u64();
        bd.acc_opt[lv] = BcAccum::from_words(hi, lo);
      }
    }
    if (!r.done()) return false;
    out.completed_total = 0;
    for (const BcTraversalResults::BlockData& bd : out.blocks)
      for (std::uint8_t c : bd.completed) out.completed_total += c;
    out.cut = out.completed_total < plan.total_sources();
    return true;
  } catch (const CheckpointError&) {
    return false;
  }
}

namespace {

constexpr const char* kBcSegmentName = "bc_traversal.ckpt";

// ---------------------------------------------------------------------------
// Twin source classes
// ---------------------------------------------------------------------------
//
// The farness pipeline REMOVES identical-neighbourhood nodes; betweenness
// cannot (σ through the shared neighbours changes), but it can still avoid
// traversing them: swapping two twins is a graph automorphism, so one
// representative pass determines every class member's contribution. Valid
// only when the plan covers the whole block (each class source's
// contribution is then owed exactly once, unscaled) on a unit-weight block
// graph, for sources of unit mass (mass-carrying twins are NOT
// interchangeable — their pendant trees differ).

struct BlockDedup {
  static constexpr std::uint32_t kNoClass = ~std::uint32_t{0};
  bool active = false;
  std::vector<std::vector<NodeId>> classes;  ///< local ids, ascending, ≥2
  std::vector<std::uint32_t> class_of;       ///< per local id
  std::vector<NodeId> rep;  ///< per class: the member with the smallest
                            ///< SAMPLE index (keeps a cut-less block's
                            ///< mandatory first sample a representative)
};

BlockDedup build_block_dedup(const BlockInfo& bi, const BlockPlan& bp,
                             const Decomposition& dec, const BcMasses& masses,
                             std::span<const std::uint32_t> sample_of) {
  BlockDedup dd;
  const NodeId bn = bi.num_nodes();
  // Full coverage: cuts are the sample prefix and every non-cut local is a
  // sample too (rate 1.0 and no cap). Anything less and scaling would owe
  // skipped members a share they never contribute.
  if (bp.samples.size() != bn || !bi.sub.graph.unit_weights()) return dd;

  auto eligible = [&](NodeId lv) {
    const NodeId gv = bi.sub.to_old[lv];
    return !dec.bcc.is_cut(gv) && masses.node_mass[gv] == 1;
  };
  auto key_of = [&](NodeId lv, bool closed) {
    std::vector<NodeId> key;
    key.reserve(bi.sub.graph.degree(lv) + (closed ? 1 : 0));
    bi.sub.graph.for_neighbors(lv, [&](NodeId t, Weight) { key.push_back(t); });
    if (closed) key.push_back(lv);
    std::sort(key.begin(), key.end());
    return key;
  };

  dd.class_of.assign(bn, BlockDedup::kNoClass);
  // Closed twins first (adjacent, same closed neighbourhood), then open
  // twins among the remainder — a node joins at most one class.
  for (const bool closed : {true, false}) {
    std::map<std::vector<NodeId>, std::vector<NodeId>> groups;
    for (NodeId lv = 0; lv < bn; ++lv)
      if (eligible(lv) && dd.class_of[lv] == BlockDedup::kNoClass)
        groups[key_of(lv, closed)].push_back(lv);
    for (auto& [key, members] : groups) {
      if (members.size() < 2) continue;
      const std::uint32_t id = static_cast<std::uint32_t>(dd.classes.size());
      for (NodeId lv : members) dd.class_of[lv] = id;
      NodeId rep = members.front();
      for (NodeId lv : members)
        if (sample_of[lv] < sample_of[rep]) rep = lv;
      dd.classes.push_back(std::move(members));
      dd.rep.push_back(rep);
    }
  }
  dd.active = !dd.classes.empty();
  return dd;
}

}  // namespace

// ---------------------------------------------------------------------------
// BcTraverseStage
// ---------------------------------------------------------------------------

BcTraversalResults BcTraverseStage::run(PipelineContext& ctx,
                                        const Decomposition& dec,
                                        const SamplePlan& plan,
                                        const BcMasses& masses) const {
  ctx.set_phase(ExecPhase::kTraverse);
  const BlockId nb = dec.num_blocks();

  BcTraversalResults trav;
  trav.blocks.resize(nb);
  for (BlockId b = 0; b < nb; ++b) {
    const NodeId bn = dec.blocks[b].num_nodes();
    trav.blocks[b].completed.assign(plan.blocks[b].samples.size(), 0);
    trav.blocks[b].acc_cut.assign(bn, BcAccum{});
    trav.blocks[b].acc_opt.assign(bn, BcAccum{});
  }

  // Resume: a prior attempt's accumulators become the base and its
  // completion flags make the kernels skip already-folded sources. Q64.64
  // sums are integers, so the union of two partial attempts is
  // bit-identical to one uninterrupted run.
  Recovery* rec = ctx.recovery();
  if (rec != nullptr) {
    std::string payload;
    if (rec->load_segment(kBcSegmentName, SegmentKind::kBcTraversal,
                          payload)) {
      BcTraversalResults prior;
      if (decode_bc_traversal(payload, dec, plan, prior))
        trav = std::move(prior);
    }
  }

  // Per-block derived tables, shared read-only across the parallel region:
  // target weights (node_mass + out_w at cuts), sample index per local id,
  // and the twin source classes.
  std::vector<std::vector<std::uint64_t>> tw(nb);
  std::vector<std::vector<std::uint32_t>> sample_of(nb);
  std::vector<BlockDedup> dedup(nb);
  constexpr std::uint32_t kNotSampled = ~std::uint32_t{0};
  for (BlockId b = 0; b < nb; ++b) {
    const BlockInfo& bi = dec.blocks[b];
    const BlockPlan& bp = plan.blocks[b];
    const NodeId bn = bi.num_nodes();
    tw[b].resize(bn);
    for (NodeId lv = 0; lv < bn; ++lv)
      tw[b][lv] = masses.node_mass[bi.sub.to_old[lv]];
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci)
      tw[b][bi.cuts_local[ci]] += masses.out_w[b][ci];
    sample_of[b].assign(bn, kNotSampled);
    for (std::uint32_t si = 0; si < bp.samples.size(); ++si)
      sample_of[b][bp.samples[si]] = si;
    dedup[b] = build_block_dedup(bi, bp, dec, masses, sample_of[b]);
    // Pre-mark non-representative members completed so the kernels (and
    // the task build below) skip their traversals; the representative's
    // fold covers them. Cleared again at stage end for any class whose
    // representative did not complete.
    if (dedup[b].active) {
      for (std::uint32_t cls = 0; cls < dedup[b].classes.size(); ++cls)
        for (NodeId lv : dedup[b].classes[cls])
          if (lv != dedup[b].rep[cls])
            trav.blocks[b].completed[sample_of[b][lv]] = 1;
    }
  }

  // Task shape, retry/quarantine and wave checkpointing mirror the farness
  // Traverse stage: batched blocks are one task, other blocks one task per
  // source with the mandatory (cut) prefix first.
  struct Task {
    BlockId b;
    std::uint32_t first, count;
  };
  std::vector<Task> tasks;
  for (BlockId b = 0; b < nb; ++b) {
    if (plan.blocks[b].kernel == KernelChoice::kBatched) continue;
    for (std::uint32_t si = 0; si < plan.blocks[b].mandatory; ++si)
      if (!trav.blocks[b].completed[si]) tasks.push_back({b, si, 1});
  }
  for (BlockId b = 0; b < nb; ++b) {
    const BlockPlan& bp = plan.blocks[b];
    if (bp.kernel != KernelChoice::kBatched || bp.samples.empty()) continue;
    bool pending = false;
    for (std::uint8_t c : trav.blocks[b].completed) pending |= (c == 0);
    if (pending)
      tasks.push_back({b, 0, static_cast<std::uint32_t>(bp.samples.size())});
  }
  for (BlockId b = 0; b < nb; ++b) {
    const BlockPlan& bp = plan.blocks[b];
    if (bp.kernel == KernelChoice::kBatched) continue;
    for (std::uint32_t si = bp.mandatory; si < bp.samples.size(); ++si)
      if (!trav.blocks[b].completed[si]) tasks.push_back({b, si, 1});
  }

  // Distinct (block, sample) tasks may target the SAME accumulator slots
  // (every source folds into its whole block), so folds serialize on a
  // per-block mutex — order-insensitive integer adds make that sound.
  std::vector<std::mutex> block_mu(nb);
  std::vector<std::uint8_t> quarantined(nb, 0);
  std::atomic<std::uint32_t> retries{0};
  std::atomic<bool> fold_fault{false};
  const int max_attempts = std::max(1, ctx.opts().retry.max_attempts);
  const std::uint32_t backoff_ms = ctx.opts().retry.backoff_ms;

  const CancelToken& token = ctx.token();
  auto run_task = [&](std::size_t ti, TraversalWorkspace& tws,
                      BcWorkspace& bws) {
    const Task& task = tasks[ti];
    const BlockInfo& bi = dec.blocks[task.b];
    const BlockPlan& bp = plan.blocks[task.b];
    BcTraversalResults::BlockData& bd = trav.blocks[task.b];
    const BlockDedup& dd = dedup[task.b];
    const TraversalKernel& kernel = kernel_for(bp.kernel);
    const NodeId bn = bi.num_nodes();
    if (bws.sigma.size() != bn)
      bws.resize(bn, bi.sub.graph.max_weight());

    const SourceSink sink = [&](std::size_t si,
                                std::span<const Dist> local) {
      // Injection point BEFORE any shared write: a fault here leaves the
      // accumulators untouched, so the task is safe to retry.
      BRICS_FAILPOINT("traverse.sink");
      try {
        const NodeId ls = bp.samples[si];
        const bool src_is_cut = si < bi.cut_count;
        bc_dependency_pass(bi.sub.graph, ls, local, tw[task.b], bws);
        const double sm = static_cast<double>(tw[task.b][ls]);
        const std::uint32_t cls =
            dd.active && !src_is_cut ? dd.class_of[ls] : BlockDedup::kNoClass;

        std::lock_guard<std::mutex> lock(block_mu[task.b]);
        std::vector<BcAccum>& dst = src_is_cut ? bd.acc_cut : bd.acc_opt;
        if (cls == BlockDedup::kNoClass) {
          for (NodeId v : bws.order)
            if (v != ls) dst[v].add(sm * bws.delta[v]);
        } else {
          // One representative pass settles the whole class: outside nodes
          // receive k·δ (each of the k automorphic sources contributes the
          // same dependency), members receive (k-1)·q from the other
          // members — δ at any member is class-invariant, and taking it
          // from the smallest member id pins the quantized value so the
          // fold never depends on which member became the representative.
          const std::vector<NodeId>& members = dd.classes[cls];
          const double k = static_cast<double>(members.size());
          for (NodeId v : bws.order) {
            if (v == ls) continue;
            if (std::binary_search(members.begin(), members.end(), v))
              continue;
            dst[v].add(k * bws.delta[v]);
          }
          const NodeId qm = members[0] == ls ? members[1] : members[0];
          const unsigned __int128 q =
              BcAccum::quantize((k - 1.0) * bws.delta[qm]);
          for (NodeId mv : members) dst[mv].add_raw(q);
        }
      } catch (...) {
        // Past the first accumulator write a retry would double-count;
        // poison the stage so the composition falls back instead.
        fold_fault.store(true, std::memory_order_relaxed);
        throw;
      }
    };
    for (int attempt = 1;; ++attempt) {
      try {
        BRICS_FAILPOINT("traverse.task");
        kernel.run(bi.sub.graph, bp.samples, task.first, task.count,
                   bp.mandatory, &token, tws, bd.completed, sink);
        return;
      } catch (const std::exception&) {
        if (fold_fault.load(std::memory_order_relaxed)) return;
        if (attempt >= max_attempts) {
#pragma omp atomic write
          quarantined[task.b] = 1;
          BRICS_COUNTER(c_quar, "traverse.quarantined_tasks");
          BRICS_COUNTER_ADD(c_quar, 1);
          return;
        }
        retries.fetch_add(1, std::memory_order_relaxed);
        BRICS_COUNTER(c_retry, "traverse.retries");
        BRICS_COUNTER_ADD(c_retry, 1);
        const std::uint64_t base = static_cast<std::uint64_t>(backoff_ms)
                                   << (attempt - 1);
        if (base > 0) {
          const std::uint64_t jitter =
              mix64((static_cast<std::uint64_t>(ti) << 8) ^
                    static_cast<std::uint64_t>(attempt)) %
              (base + 1);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(base + jitter));
        }
      }
    }
  };

  auto refresh_totals = [&]() {
    trav.completed_total = 0;
    for (const BcTraversalResults::BlockData& bd : trav.blocks)
      for (std::uint8_t c : bd.completed) trav.completed_total += c;
    trav.cut = trav.completed_total < plan.total_sources();
  };

  PhaseScope scope("traverse", ctx.times().traverse_s);
  const std::size_t nt = tasks.size();
  std::size_t wave = nt;
  if (rec != nullptr && rec->checkpoint_every() > 0)
    wave = std::min<std::size_t>(rec->checkpoint_every(), nt);
  for (std::size_t begin = 0; begin < nt; begin += wave) {
    const std::size_t end = std::min(nt, begin + wave);
#pragma omp parallel
    {
      TraversalWorkspace tws;
      BcWorkspace bws;
#pragma omp for schedule(dynamic, 4)
      for (std::int64_t t = static_cast<std::int64_t>(begin);
           t < static_cast<std::int64_t>(end); ++t) {
        run_task(static_cast<std::size_t>(t), tws, bws);
      }
    }
    // Wave barrier: no task is in flight, so the accumulators and flags
    // form a consistent snapshot without taking the block mutexes.
    if (rec != nullptr && end < nt &&
        !fold_fault.load(std::memory_order_relaxed)) {
      refresh_totals();
      rec->save_segment(kBcSegmentName, SegmentKind::kBcTraversal,
                        encode_bc_traversal(trav));
    }
  }

  // Un-mark twin members whose representative never ran: their
  // contributions are absent, and the Aggregate ratios must know it.
  for (BlockId b = 0; b < nb; ++b) {
    if (!dedup[b].active) continue;
    for (std::uint32_t cls = 0; cls < dedup[b].classes.size(); ++cls) {
      if (trav.blocks[b].completed[sample_of[b][dedup[b].rep[cls]]])
        continue;
      for (NodeId lv : dedup[b].classes[cls])
        if (lv != dedup[b].rep[cls])
          trav.blocks[b].completed[sample_of[b][lv]] = 0;
    }
  }
  refresh_totals();

  ctx.rstats().retries += retries.load(std::memory_order_relaxed);
  std::uint32_t quarantined_blocks = 0;
  bool mandatory_lost = false;
  for (BlockId b = 0; b < nb; ++b) {
    if (!quarantined[b]) continue;
    ++quarantined_blocks;
    for (std::uint32_t si = 0; si < plan.blocks[b].mandatory; ++si)
      if (!trav.blocks[b].completed[si]) mandatory_lost = true;
  }
  ctx.rstats().quarantined_blocks += quarantined_blocks;
  if (quarantined_blocks > 0) {
    BRICS_COUNTER(c_qb, "traverse.quarantined_blocks");
    BRICS_COUNTER_ADD(c_qb, quarantined_blocks);
  }

  if (fold_fault.load(std::memory_order_relaxed))
    throw QuarantineError("traversal fold fault poisoned the accumulators");
  if (rec != nullptr)
    rec->save_segment(kBcSegmentName, SegmentKind::kBcTraversal,
                      encode_bc_traversal(trav));
  if (mandatory_lost)
    throw QuarantineError("quarantine lost mandatory traversal work");

  BRICS_COUNTER(c_completed, "plan.samples_completed");
  BRICS_COUNTER_ADD(c_completed, trav.completed_total);
  return trav;
}

// ---------------------------------------------------------------------------
// BcAggregateStage
// ---------------------------------------------------------------------------

EstimateResult BcAggregateStage::run(PipelineContext& ctx,
                                     const ReducedGraph& rg,
                                     const Decomposition& dec,
                                     const SamplePlan& plan,
                                     const BcTraversalResults& trav,
                                     const BcMasses& masses) const {
  BRICS_FAILPOINT("aggregate.combine");
  const NodeId n = rg.ledger.num_nodes();
  const BlockId nb = dec.num_blocks();
  const BlockCutTree& bct = dec.bct;

  EstimateResult res;
  res.measure = Measure::kBetweenness;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);
  res.num_blocks = nb;
  res.samples = trav.completed_total;
  res.planned_samples = plan.planned_total;
  res.achieved_sample_rate = ctx.opts().sample_rate *
                             static_cast<double>(trav.completed_total) /
                             static_cast<double>(plan.planned_total);
  if (trav.cut) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kTraverse;
  } else if (plan.capped) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kPlan;
  }

  PhaseScope scope("combine", ctx.times().combine_s);

  // Per-block sampling ratio: the optional (non-cut source) accumulator
  // estimates the full non-cut source mass by scaling the achieved mass up.
  // A full block (every non-cut source folded — twin members count via
  // their representative) keeps ratio 1 and stays on the exact integer
  // path: its accumulators merge raw and convert once.
  std::vector<double> ratio(nb, 1.0);
  std::vector<std::uint8_t> full(nb, 1);
  for (BlockId b = 0; b < nb; ++b) {
    const BlockInfo& bi = dec.blocks[b];
    const BlockPlan& bp = plan.blocks[b];
    std::uint64_t noncut_total = 0, achieved = 0;
    for (NodeId lv = 0; lv < bi.num_nodes(); ++lv)
      if (!dec.bcc.is_cut(bi.sub.to_old[lv]))
        noncut_total += masses.node_mass[bi.sub.to_old[lv]];
    for (std::size_t si = bi.cut_count; si < bp.samples.size(); ++si)
      if (trav.blocks[b].completed[si])
        achieved += masses.node_mass[bi.sub.to_old[bp.samples[si]]];
    if (achieved != noncut_total) {
      full[b] = 0;
      if (achieved > 0)
        ratio[b] = static_cast<double>(noncut_total) /
                   static_cast<double>(achieved);
    }
  }

  auto cut_slot = [&](const BlockInfo& bi, NodeId gv) -> std::uint32_t {
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci)
      if (bi.sub.to_old[bi.cuts_local[ci]] == gv) return ci;
    BRICS_CHECK_MSG(false, "cut not found in block");
    return 0;
  };

  // Present nodes: closed form for the FORCED pairs (every ordered pair
  // whose endpoints sit in different components of S \ {v}: the pendant
  // chains are one group each, the graph side one group per containing
  // block) plus the σ-weighted traversal sums from v's block(s).
  for (NodeId v = 0; v < n; ++v) {
    if (!rg.present[v]) continue;
    const BlockId ob = dec.owner[v];
    BRICS_CHECK_MSG(ob != kInvalidBlock, "node " << v << " has no owner");
    const std::uint64_t C = masses.comp_total[ob];
    const std::uint64_t T = C - masses.node_mass[v];
    std::uint64_t closed = (C - 1) * (C - 1) - masses.tree_sq[v];
    BcAccum total;
    double scaled = 0.0;
    bool all_full = true;
    const CutId c = bct.cut_of_node[v];
    if (c == kInvalidCut) {
      closed -= T * T;
      const BlockInfo& bi = dec.blocks[ob];
      const NodeId lv = bi.sub.to_new[v];
      total += trav.blocks[ob].acc_cut[lv];
      if (full[ob]) {
        total += trav.blocks[ob].acc_opt[lv];
      } else {
        scaled += ratio[ob] * trav.blocks[ob].acc_opt[lv].to_double();
        all_full = false;
      }
    } else {
      for (BlockId b : bct.cut_blocks[c]) {
        const BlockInfo& bi = dec.blocks[b];
        const NodeId lv = bi.sub.to_new[v];
        const std::uint64_t M = T - masses.out_w[b][cut_slot(bi, v)];
        closed -= M * M;
        total += trav.blocks[b].acc_cut[lv];
        if (full[b]) {
          total += trav.blocks[b].acc_opt[lv];
        } else {
          scaled += ratio[b] * trav.blocks[b].acc_opt[lv].to_double();
          all_full = false;
        }
      }
    }
    total.add_int(closed);
    res.farness[v] = total.to_double() + scaled;
    res.exact[v] = all_full ? 1 : 0;
  }

  // Removed chain members: every pair through one is forced (the chain is
  // the only route), so the value is the pure group product — `below`
  // nodes hang beyond the member, everything else lies through the anchor.
  auto order = rg.ledger.order();
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    if (!rg.ledger.record_active(i)) continue;
    const ChainRecord& r = rg.ledger.chains()[order[i].index];
    const BlockId b = dec.virt_owner[r.members.front()];
    BRICS_CHECK_MSG(b != kInvalidBlock, "chain has no home block");
    const std::uint64_t C = masses.comp_total[b];
    for (std::size_t idx = 0; idx < r.members.size(); ++idx) {
      const std::uint64_t below = r.members.size() - 1 - idx;
      res.farness[r.members[idx]] =
          static_cast<double>(2 * below * (C - 1 - below));
      res.exact[r.members[idx]] = 1;
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Composition
// ---------------------------------------------------------------------------

namespace {

// Degraded escape hatch, mirroring estimate_brics: any fault or budget
// blow-out outside the Traverse stage falls back to flat sampled
// betweenness on the raw graph under the caller's original deadline.
EstimateResult bc_degraded_fallback(const CsrGraph& g,
                                    const EstimateOptions& opts,
                                    const CancelToken& token, ExecPhase phase,
                                    const Timer& total, Recovery* rec,
                                    const RecoveryStats& rstats) {
  BRICS_COUNTER(c_degraded, "exec.degraded_runs");
  BRICS_COUNTER_ADD(c_degraded, 1);
  EstimateResult res = estimate_betweenness_sampling_budgeted(g, opts, token);
  res.degraded = true;
  res.cut_phase = phase;
  res.times.total_s = total.seconds();
  res.times.normalize();
  res.recovery = rstats;
  if (rec != nullptr)
    rec->finalize(res.recovery);
  else
    res.recovery.cumulative_wall_s = res.times.total_s;
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

EstimateResult estimate_bc_on_reduction_budgeted(
    const ReducedGraph& rg, const EstimateOptions& opts,
    const CancelToken& token, ExecPhase* phase_out, Recovery* rec,
    RecoveryStats* rstats_out) {
  const NodeId n = rg.ledger.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK(rg.graph.num_nodes() == n);
  Timer total;
  BRICS_SPAN(sp_estimate, "estimate.brics_bc");

  PipelineContext ctx(rg.graph, opts, token);
  ctx.set_phase(ExecPhase::kBcc);
  ctx.mirror_phase(phase_out);
  ctx.set_recovery(rec);

  try {
    std::optional<Decomposition> dec;
    if (rec != nullptr) {
      Decomposition d;
      if (rec->load_decomposition(d, rg)) dec.emplace(std::move(d));
    }
    if (!dec) {
      dec.emplace(DecomposeStage{}.run(ctx, rg));
      if (rec != nullptr) rec->save_decomposition(*dec);
    }

    std::optional<SamplePlan> plan;
    if (rec != nullptr) {
      SamplePlan p;
      if (rec->load_plan(p, *dec)) plan.emplace(std::move(p));
    }
    if (!plan) {
      plan.emplace(PlanStage{}.run(ctx, *dec, rg.num_present));
      if (rec != nullptr) rec->save_plan(*plan);
    }

    // The mass DP is deterministic in (reduction, decomposition) and cheap
    // next to any traversal, so it recomputes every attempt instead of
    // earning its own segment.
    const BcMasses masses = compute_bc_masses(rg, *dec);

    const BcTraversalResults trav =
        BcTraverseStage{}.run(ctx, *dec, *plan, masses);
    EstimateResult res =
        BcAggregateStage{}.run(ctx, rg, *dec, *plan, trav, masses);

    res.reduce_stats = rg.stats;
    res.times = ctx.times();
    res.times.total_s = total.seconds();
    res.times.normalize();
    res.recovery = ctx.rstats();
    if (rec != nullptr)
      rec->finalize(res.recovery);
    else
      res.recovery.cumulative_wall_s = res.times.total_s;
    if (rstats_out != nullptr) *rstats_out = res.recovery;
    record_exec_metrics(res);
    record_phase_metrics(res.times);
    return res;
  } catch (...) {
    if (rstats_out != nullptr) *rstats_out = ctx.rstats();
    throw;
  }
}

}  // namespace

EstimateResult estimate_betweenness(const CsrGraph& g,
                                    const EstimateOptions& opts) {
  BRICS_CHECK_MSG(g.num_nodes() >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  BRICS_CHECK_MSG(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << opts.sample_rate);
  // Force the measure-consistent configuration: the reduction subset that
  // preserves path counts, and the measure tag the config hash (and hence
  // checkpoint compatibility) keys on. A farness checkpoint directory can
  // never feed a betweenness run, and vice versa.
  EstimateOptions eopts = opts;
  eopts.measure = Measure::kBetweenness;
  eopts.reduce = bc_reduce_options(opts.reduce);
  if (!eopts.use_bcc) return estimate_betweenness_sampling(g, eopts);

  Timer total;
  CancelToken token(eopts.budget.timeout_ms);
  PipelineContext ctx(g, eopts, token);

  std::optional<Recovery> rec;
  if (!eopts.recovery.checkpoint_dir.empty())
    rec.emplace(eopts.recovery, recovery_config_hash(g, eopts));
  Recovery* recp = rec ? &*rec : nullptr;

  std::optional<ReducedGraph> rg;
  try {
    if (recp != nullptr) rg = recp->load_reduced();
    if (!rg) {
      rg.emplace(ReduceStage{}.run(ctx));
      if (recp != nullptr) recp->save_reduced(*rg);
    }
  } catch (const std::exception&) {
    return bc_degraded_fallback(g, eopts, token, ExecPhase::kReduce, total,
                                recp, ctx.rstats());
  }

  ExecPhase phase = ExecPhase::kBcc;
  RecoveryStats rstats;
  try {
    EstimateResult res = estimate_bc_on_reduction_budgeted(
        *rg, eopts, token, &phase, recp, &rstats);
    res.times.reduce_s = ctx.times().reduce_s;
    res.times.total_s = total.seconds();
    res.times.normalize();
    if (recp == nullptr) res.recovery.cumulative_wall_s = res.times.total_s;
    record_exec_metrics(res);
    record_phase_metrics(res.times);
    return res;
  } catch (const BudgetExceeded& e) {
    BRICS_COUNTER(c_cuts, "exec.budget_cuts");
    BRICS_COUNTER_ADD(c_cuts, 1);
    return bc_degraded_fallback(g, eopts, token, e.phase(), total, recp,
                                rstats);
  } catch (const std::exception&) {
    return bc_degraded_fallback(g, eopts, token, phase, total, recp, rstats);
  }
}

EstimateResult estimate_centrality(const CsrGraph& g,
                                   const EstimateOptions& opts) {
  return opts.measure == Measure::kBetweenness ? estimate_betweenness(g, opts)
                                               : estimate_farness(g, opts);
}

}  // namespace brics
