// Exact Q64.64 fixed-point accumulation for betweenness contributions.
//
// Brandes dependencies are rationals (sums of σ-ratios) that the traversal
// computes in double. Summing doubles directly would make the result depend
// on accumulation ORDER — thread schedule, kernel task shape, resume
// partitioning — and the subsystem promises the opposite: the same plan
// always produces bit-identical output (tests/test_betweenness.cpp).
//
// The fix: each per-(source, node) contribution is quantized ONCE to a
// 128-bit fixed-point value with 64 fractional bits, and everything
// downstream is integer arithmetic modulo 2^128 — associative and
// commutative, so partial sums merge in any order, across any number of
// threads, and across checkpoint/resume boundaries, without changing a bit.
// Contributions that are integers (σ == 1 everywhere: trees, cliques with
// pendants) quantize exactly, which is what makes the pipeline bitwise
// equal to the exact oracle on those graph classes.
//
// Range: |value| < 2^63. Betweenness sums are bounded by (n-1)^2 < 2^62 for
// n < 2^31, so quantization never saturates on any graph the NodeId type
// can address.
#pragma once

#include <cmath>
#include <cstdint>

namespace brics {

/// Two's-complement Q64.64 accumulator backed by unsigned __int128.
/// Value semantics only; the zero-initialised state is the empty sum.
struct BcAccum {
  unsigned __int128 raw = 0;

  /// Quantize a double to Q64.64 (truncation toward zero, deterministic).
  static unsigned __int128 quantize(double x) {
    const bool neg = x < 0.0;
    if (neg) x = -x;
    const double hi = std::floor(x);
    // ldexp scales by an exact power of two; frac < 1 keeps the product
    // below 2^64, where every double is representable, so the cast is
    // well-defined and the low word deterministic.
    const std::uint64_t lo =
        static_cast<std::uint64_t>(std::ldexp(x - hi, 64));
    unsigned __int128 q =
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(hi))
         << 64) |
        lo;
    return neg ? static_cast<unsigned __int128>(0) - q : q;
  }

  void add(double x) { raw += quantize(x); }
  void add_raw(unsigned __int128 q) { raw += q; }
  void add_int(std::uint64_t x) {
    raw += static_cast<unsigned __int128>(x) << 64;
  }

  std::uint64_t hi() const { return static_cast<std::uint64_t>(raw >> 64); }
  std::uint64_t lo() const { return static_cast<std::uint64_t>(raw); }
  static BcAccum from_words(std::uint64_t hi, std::uint64_t lo) {
    BcAccum a;
    a.raw = (static_cast<unsigned __int128>(hi) << 64) | lo;
    return a;
  }

  /// Convert the exact sum to double (one rounding, at the very end).
  /// Interprets the two's-complement sign, so transient negative partial
  /// sums (twin-class fix-ups) convert correctly too.
  double to_double() const {
    unsigned __int128 v = raw;
    const bool neg = (v >> 127) != 0;
    if (neg) v = static_cast<unsigned __int128>(0) - v;
    const double d =
        static_cast<double>(static_cast<std::uint64_t>(v >> 64)) +
        std::ldexp(static_cast<double>(static_cast<std::uint64_t>(v)), -64);
    return neg ? -d : d;
  }

  BcAccum& operator+=(const BcAccum& o) {
    raw += o.raw;
    return *this;
  }
};

}  // namespace brics
