#include "measures/brandes.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "core/sampling.hpp"
#include "graph/connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pipeline/kernels.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace brics {
namespace {

// Sort ws.order (currently ascending node id) into ascending (dist, id).
// Counting sort when the distance range is in the same ballpark as the
// reached set (always true for BFS distances); stable, so the id tie-break
// comes for free. Comparison sort otherwise (heavily weighted chains can
// stretch distances far past the node count).
void sort_by_distance(std::span<const Dist> dist, Dist maxd,
                      BcWorkspace& ws) {
  const std::size_t reached = ws.order.size();
  if (static_cast<std::size_t>(maxd) <= 4 * reached + 64) {
    ws.bucket.assign(static_cast<std::size_t>(maxd) + 2, 0);
    for (NodeId v : ws.order) ++ws.bucket[dist[v] + 1];
    for (std::size_t d = 1; d < ws.bucket.size(); ++d)
      ws.bucket[d] += ws.bucket[d - 1];
    ws.sorted.resize(reached);
    for (NodeId v : ws.order) ws.sorted[ws.bucket[dist[v]]++] = v;
    ws.order.swap(ws.sorted);
  } else {
    std::stable_sort(ws.order.begin(), ws.order.end(),
                     [&](NodeId a, NodeId b) { return dist[a] < dist[b]; });
  }
}

}  // namespace

void bc_dependency_pass(const CsrGraph& g, NodeId source,
                        std::span<const Dist> dist,
                        std::span<const std::uint64_t> tw, BcWorkspace& ws) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK(dist.size() == n && ws.sigma.size() == n);
  BRICS_CHECK(dist[source] == 0);

  ws.order.clear();
  Dist maxd = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (dist[v] == kInfDist) continue;
    ws.order.push_back(v);
    ws.sigma[v] = 0.0;
    ws.delta[v] = 0.0;
    maxd = std::max(maxd, dist[v]);
  }
  sort_by_distance(dist, maxd, ws);

  // Forward: σ_u = Σ σ_v over DAG predecessors (strictly smaller distance,
  // so finalized by the ascending sweep). Pulling in CSR adjacency order
  // keeps the floating-point sum bit-deterministic.
  ws.sigma[source] = 1.0;
  g.with_adjacency([&](const auto& adj) {
    for (NodeId u : ws.order) {
      if (u == source) continue;
      const std::uint64_t du = dist[u];
      double s = 0.0;
      adj.for_neighbors(u, [&](NodeId v, Weight w) {
        if (dist[v] != kInfDist &&
            static_cast<std::uint64_t>(dist[v]) + w == du)
          s += ws.sigma[v];
      });
      ws.sigma[u] = s;
    }

    // Backward: δ(v) = Σ over DAG successors u of σ_v/σ_u · (tw(u) + δ(u)).
    // Successors have strictly larger distance, so the descending sweep
    // reads only finalized values — again pulled in CSR order.
    for (auto it = ws.order.rbegin(); it != ws.order.rend(); ++it) {
      const NodeId v = *it;
      const std::uint64_t dv = dist[v];
      double d = 0.0;
      adj.for_neighbors(v, [&](NodeId u, Weight w) {
        if (dist[u] == kInfDist ||
            dv + w != static_cast<std::uint64_t>(dist[u]))
          return;
        const double tu = tw.empty() ? 1.0 : static_cast<double>(tw[u]);
        d += ws.sigma[v] / ws.sigma[u] * (tu + ws.delta[u]);
      });
      ws.delta[v] = d;
    }
  });
}

std::vector<double> exact_betweenness(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_SPAN(sp, "measures.exact_betweenness");
  std::vector<std::vector<BcAccum>> acc(
      static_cast<std::size_t>(max_threads()));
  const std::int64_t count = n;
#pragma omp parallel
  {
    BcWorkspace ws;
    ws.resize(n, g.max_weight());
    std::vector<BcAccum>& mine = acc[static_cast<std::size_t>(thread_id())];
    mine.resize(n);
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t i = 0; i < count; ++i) {
      const NodeId s = static_cast<NodeId>(i);
      sssp(g, s, ws.trav);
      bc_dependency_pass(g, s, ws.trav.dist(), {}, ws);
      for (NodeId v : ws.order)
        if (v != s) mine[v].add(ws.delta[v]);
    }
  }
  std::vector<BcAccum> sum(n);
  for (const auto& part : acc) {
    if (part.empty()) continue;
    for (NodeId v = 0; v < n; ++v) sum[v] += part[v];
  }
  std::vector<double> out(n);
  for (NodeId v = 0; v < n; ++v) out[v] = sum[v].to_double();
  return out;
}

namespace {

// Sampling bookkeeping, mirroring the farness estimators (core/sampling.cpp
// keeps its copies file-local on purpose: the two files share a design, not
// a contract).
NodeId sample_count(NodeId pop, double rate) {
  BRICS_CHECK_MSG(rate > 0.0 && rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << rate);
  const double k = std::ceil(rate * static_cast<double>(pop));
  return std::clamp<NodeId>(static_cast<NodeId>(k), 1, pop);
}

NodeId apply_source_cap(NodeId planned, const RunBudget& budget) {
  if (budget.max_sources == 0 || planned <= budget.max_sources)
    return planned;
  return std::max<NodeId>(budget.max_sources, 1);
}

void report_degradation(EstimateResult& res, const EstimateOptions& opts,
                        NodeId planned, NodeId k, NodeId k_done) {
  res.samples = k_done;
  res.planned_samples = planned;
  res.achieved_sample_rate = opts.sample_rate *
                             static_cast<double>(k_done) /
                             static_cast<double>(planned);
  BRICS_COUNTER(c_planned, "plan.samples_planned");
  BRICS_COUNTER(c_completed, "plan.samples_completed");
  BRICS_COUNTER(c_shed, "plan.samples_shed");
  BRICS_COUNTER_ADD(c_planned, planned);
  BRICS_COUNTER_ADD(c_completed, k_done);
  BRICS_COUNTER_ADD(c_shed, planned - k_done);
  if (k_done < k) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kTraverse;
  } else if (k < planned) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kPlan;
  }
}

std::vector<NodeId> all_nodes(NodeId n) {
  std::vector<NodeId> ids(n);
  for (NodeId v = 0; v < n; ++v) ids[v] = v;
  return ids;
}

}  // namespace

EstimateResult estimate_betweenness_sampling_budgeted(
    const CsrGraph& g, const EstimateOptions& opts,
    const CancelToken& token) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  Timer total;
  BRICS_SPAN(sp_estimate, "estimate.bc_sampling");
  EstimateResult res;
  res.measure = Measure::kBetweenness;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);

  const NodeId planned = sample_count(n, opts.sample_rate);
  const NodeId k = apply_source_cap(planned, opts.budget);
  Rng rng(opts.seed);
  const std::vector<NodeId> sources =
      pick_sample_sources(g, all_nodes(n), k, opts.strategy, rng);

  std::optional<PhaseScope> phase_traverse;
  phase_traverse.emplace("traverse", res.times.traverse_s);
  std::vector<std::vector<BcAccum>> acc(
      static_cast<std::size_t>(max_threads()));
  std::vector<BcWorkspace> scratch(acc.size());
  std::vector<std::uint8_t> completed;
  const std::size_t done = traverse_flat(
      g, sources, /*mandatory=*/1, token, opts.kernel, completed,
      [&](std::size_t i, std::span<const Dist> dist) {
        const std::size_t t = static_cast<std::size_t>(thread_id());
        if (acc[t].empty()) acc[t].resize(n);
        BcWorkspace& ws = scratch[t];
        if (ws.sigma.size() != n) ws.resize(n, g.max_weight());
        const NodeId s = sources[i];
        bc_dependency_pass(g, s, dist, {}, ws);
        for (NodeId v : ws.order)
          if (v != s) acc[t][v].add(ws.delta[v]);
      });
  const NodeId k_done = static_cast<NodeId>(done);
  phase_traverse.reset();

  std::optional<PhaseScope> phase_combine;
  phase_combine.emplace("combine", res.times.combine_s);
  std::vector<BcAccum> sum(n);
  for (const auto& part : acc) {
    if (part.empty()) continue;
    for (NodeId v = 0; v < n; ++v) sum[v] += part[v];
  }
  // Brandes–Pich: each completed source contributes its full dependency
  // vector; scaling by n / k_done makes the sum unbiased for the all-sources
  // total. At k_done == n the scale is exactly 1.0 and the conversion below
  // reproduces exact_betweenness() bit for bit (same quantized terms, same
  // integer sum, one final rounding).
  const bool full = k_done == n;
  const double scale =
      static_cast<double>(n) / static_cast<double>(k_done);
  for (NodeId v = 0; v < n; ++v)
    res.farness[v] = full ? sum[v].to_double() : sum[v].to_double() * scale;
  if (full) res.exact.assign(n, 1);
  report_degradation(res, opts, planned, k, k_done);
  phase_combine.reset();
  res.times.total_s = total.seconds();
  res.times.normalize();
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

EstimateResult estimate_betweenness_sampling(const CsrGraph& g,
                                             const EstimateOptions& opts) {
  CancelToken token(opts.budget.timeout_ms);
  return estimate_betweenness_sampling_budgeted(g, opts, token);
}

}  // namespace brics
