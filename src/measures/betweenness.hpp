// Betweenness centrality on the shared reduction/pipeline substrate
// (DESIGN.md §8, ISSUE 8): the second consumer of the staged
// Reduce → Decompose → Plan → Traverse → Aggregate pipeline.
//
// Farness decomposes over DISTANCES; betweenness decomposes over PATH
// COUNTS, which changes what each stage is allowed to do:
//
//   Reduce     only the degree-1 (pendant-chain) peel preserves shortest-
//              path counts, so the measure forces ReduceOptions::pendant_only
//              (cycle/through-chain compression, twin and redundant removal
//              all merge or reroute paths). What remains after the peel is
//              the 2-core plus the pinned tree skeleton.
//   Decompose  unchanged — biconnected blocks + BCT, shared artifact.
//   Plan       unchanged — cut vertices mandatory, rate-proportional
//              extras, shared artifact (and checkpoint segment).
//   Traverse   per-block WEIGHTED Brandes passes (measures/brandes.hpp):
//              every block node carries the full-graph mass standing behind
//              it — its own pendant trees (node_mass) plus, at cut
//              vertices, everything beyond the cut (out_w) — so one
//              block-local pass accounts for all real source/target pairs
//              routed through that entry/exit.
//   Aggregate  closed forms for the pairs FORCED through a vertex (pendant
//              trees, cut separations — integer group algebra, the ledger
//              resolver contract) plus the σ-weighted traversal sums,
//              spliced per block through the cut vertices.
//
// Every (source, node) contribution is quantized once to Q64.64
// (measures/accum.hpp) and summed in integers, so the estimator is bitwise
// deterministic across kernels, thread counts and checkpoint/resume; on
// graphs where every pair has a unique shortest path (trees, cliques with
// pendants) the quantization is exact and the pipeline reproduces the
// independent exact_betweenness oracle bit for bit at sample rate 1.0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimate.hpp"
#include "exec/budget.hpp"
#include "measures/accum.hpp"
#include "pipeline/artifacts.hpp"
#include "pipeline/context.hpp"

namespace brics {

class Recovery;

/// The reduction subset that preserves shortest-path counts: pendant-chain
/// peeling only, iterated to the 2-core. Twin/redundant removal and
/// cycle/through-chain compression are forced OFF regardless of `req` —
/// they preserve path lengths but not path multiplicities.
ReduceOptions bc_reduce_options(const ReduceOptions& req);

/// Integer mass bookkeeping for the decomposed estimator: how much
/// full-graph population stands behind every block node.
struct BcMasses {
  /// Per node: 1 + total size of the pendant trees peeled onto it
  /// (0 for removed nodes — their mass lives on their anchor).
  std::vector<std::uint64_t> node_mass;
  /// Per node: Σ ℓ² over its peeled pendant chains (group algebra of the
  /// closed forms: each chain is one component of S∖v).
  std::vector<std::uint64_t> tree_sq;
  std::vector<std::uint64_t> own_w;       ///< per block: Σ node_mass, owned
  std::vector<std::uint64_t> sub_w;       ///< per block: BCT-subtree mass
  std::vector<std::uint64_t> comp_total;  ///< per block: its component's mass
  /// Per block, per cut slot (index into BlockInfo::cuts_local): the mass
  /// strictly beyond that cut, NOT counting the cut's own node_mass.
  std::vector<std::vector<std::uint64_t>> out_w;
};

/// Bottom-up/top-down mass DP over the BCT. Requires a pendant-only
/// reduction (asserts that every active ledger record is a pendant chain).
/// Validates per-block mass conservation:
///   own_w[b] + Σ_ci out_w[b][ci] + node_mass(parent cut) == comp_total[b].
BcMasses compute_bc_masses(const ReducedGraph& rg, const Decomposition& dec);

/// Traverse artifact: per-block Q64.64 accumulators over block-LOCAL node
/// ids. Cut-source contributions (mandatory, never scaled) and optional
/// noncut-source contributions (scaled by the achieved-mass ratio at
/// aggregation) are kept apart so a partial traversal degrades into a
/// scaled estimate instead of a biased one.
struct BcTraversalResults {
  struct BlockData {
    std::vector<std::uint8_t> completed;  ///< per plan sample
    std::vector<BcAccum> acc_cut;         ///< per local node
    std::vector<BcAccum> acc_opt;         ///< per local node
  };
  std::vector<BlockData> blocks;
  NodeId completed_total = 0;
  bool cut = false;  ///< deadline shed at least one planned source
};

/// Checkpoint codec for the kBcTraversal segment (Recovery's generic
/// load_segment/save_segment surface). decode validates every per-block
/// shape against the decomposition and plan; any mismatch returns false
/// and the caller recomputes.
std::string encode_bc_traversal(const BcTraversalResults& trav);
bool decode_bc_traversal(const std::string& payload, const Decomposition& dec,
                         const SamplePlan& plan, BcTraversalResults& out);

/// Run every planned source through its block's kernel as a weighted
/// Brandes pass. Shares the farness Traverse stage's whole execution
/// envelope: batched-vs-per-source task shape, mandatory-first ordering,
/// bounded retry with jittered backoff, block quarantine, fold-fault
/// poisoning, wave-granular checkpoints ("bc_traversal.ckpt") and resume.
/// Twin source classes (same neighbourhood, unit mass) are collapsed to
/// one representative traversal per class when the plan covers the whole
/// block — the path-count analogue of the farness identical-node reduction,
/// applied at sampling time because removing twins would break σ.
class BcTraverseStage {
 public:
  BcTraversalResults run(PipelineContext& ctx, const Decomposition& dec,
                         const SamplePlan& plan,
                         const BcMasses& masses) const;
};

/// Finish the estimate: closed forms for forced pairs (pendant trees, cut
/// separations, removed chain members), cut/optional accumulator splicing
/// with per-block achieved-mass ratios, exact flags, and the degradation
/// report. Always finishes from whatever Traverse completed.
class BcAggregateStage {
 public:
  EstimateResult run(PipelineContext& ctx, const ReducedGraph& rg,
                     const Decomposition& dec, const SamplePlan& plan,
                     const BcTraversalResults& trav,
                     const BcMasses& masses) const;
};

/// The composed BRICS betweenness estimator. use_bcc=false runs the flat
/// sampled estimator (measures/brandes.hpp) on the raw graph; otherwise
/// the staged pipeline runs with the measure-forced reduction subset, the
/// same checkpoint/resume machinery as farness (plus the kBcTraversal
/// segment), and the same degraded escape hatch (flat sampled betweenness
/// on the raw graph under the original deadline).
EstimateResult estimate_betweenness(const CsrGraph& g,
                                    const EstimateOptions& opts);

/// Measure dispatcher: the one entry point callers (CLI, server, benches)
/// route through. kFarness → estimate_farness, kBetweenness →
/// estimate_betweenness.
EstimateResult estimate_centrality(const CsrGraph& g,
                                   const EstimateOptions& opts);

}  // namespace brics
