// Resident centrality engine: the state the daemon serves.
//
// A ServerEngine loads a graph once, runs the full BRICS estimate, and
// then answers queries from that cached result until an edge-update batch
// advances the graph version. Updates go through the dynamic extension
// (extensions/dynamic.hpp): the reduction is patched per edge and the
// estimator re-runs once per batch — on the dirtied biconnected blocks of
// the patched reduction, not the world.
//
// Versioning and crash safety: every committed batch bumps a monotonically
// increasing graph version and (with a state_dir) atomically persists the
// full edge list + version as a CRC-validated kGraphState segment
// (exec/checkpoint.hpp, tmp+rename). Commit happens BEFORE the reply is
// delivered, so any version a client ever observed survives a SIGKILL: a
// restarted engine loads the last committed segment and rebuilds its
// estimate from it. At 100 % sampling every node the estimator flags
// `exact` carries the true integer farness, so restarted and pre-crash
// answers agree bit-for-bit on those nodes; reduced-away nodes get a
// calibrated reconstruction that is deterministic per reduction, and a
// restart re-reduces from scratch while the live server may be serving a
// patched reduction — deterministic replays of the same construction path
// are bit-identical, across paths only exact-flagged nodes are
// (docs/SERVER.md).
//
// Concurrency: one writer, many readers. apply_batch takes the unique
// lock; every query takes a shared lock and reads the immutable cached
// estimate. Per-request deadlines map onto the estimator's RunBudget, so
// a slow re-estimate degrades exactly like the CLI does instead of
// blocking the write lock forever.
#pragma once

#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "extensions/dynamic.hpp"
#include "extensions/topk.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

struct EngineOptions {
  /// Estimator configuration for the initial estimate and every
  /// re-estimation (sample_rate, seed, reductions, kernel, retry, ...).
  EstimateOptions estimate;
  /// Directory for the committed graph-state segment; empty = volatile
  /// (state dies with the process).
  std::string state_dir;
  /// Patches before the dynamic layer re-reduces from scratch.
  std::uint32_t rebuild_threshold = 64;
};

/// One farness/closeness query row.
struct FarnessEntry {
  NodeId node = 0;
  double value = 0.0;
  bool exact = false;
};

class ServerEngine {
 public:
  /// Construct from `g`, unless `opts.state_dir` holds a valid committed
  /// state segment for the same estimator options — then that state
  /// (graph + version) supersedes `g`, which is how a restarted daemon
  /// resumes from the last committed graph version. Runs the initial
  /// estimate either way; with a state_dir the initial state is committed
  /// immediately so even an update-free run is resumable.
  ServerEngine(CsrGraph g, EngineOptions opts);

  std::uint64_t version() const {
    std::shared_lock lk(mu_);
    return version_;
  }
  /// True when construction consumed a committed state segment.
  bool resumed() const { return resumed_; }

  NodeId num_nodes() const;
  std::uint64_t num_edges() const;

  /// Versioned, machine-parseable structural summary of the current graph
  /// (analysis/analysis.hpp), served on kStats:
  ///   {"stats_schema_version": 1, "version": N, "graph": {...},
  ///    "text": "<aligned key/value lines for humans>"}
  /// The schema'd fields are the stability contract (regression-tested);
  /// the "text" field stays free-form.
  std::string stats_json() const;

  struct QueryResult {
    std::uint64_t version = 0;
    bool degraded = false;  ///< the cached estimate is budget-degraded
    std::vector<FarnessEntry> entries;
  };
  /// Farness (or closeness = (n-1)/farness) of `nodes` from the cached
  /// estimate; empty span = all nodes. Throws InputError on bad ids.
  QueryResult farness(std::span<const NodeId> nodes, bool closeness) const;

  struct TopKQuery {
    std::uint64_t version = 0;
    TopKResult result;
  };
  /// Exact top-k closeness of the current graph. deadline_ms bounds the
  /// guiding estimate's budget (0 = none). Results are cached by graph
  /// version: a repeat of the last (version, k) pair is served from the
  /// cache without touching the graph; any committed update invalidates
  /// it by bumping the version. Budget-cut (inexact) results are never
  /// cached.
  TopKQuery topk(NodeId k, std::int64_t deadline_ms) const;

  /// Betweenness of `nodes` (empty = all) from a lazily computed,
  /// version-keyed estimate: the first BC query after a committed update
  /// runs estimate_betweenness (same options as the farness estimate, the
  /// measure-forced reduction subset, deadline_ms on the budget) and the
  /// result is cached until the graph version moves. Budget-degraded
  /// estimates are served but never cached. Throws InputError on bad ids.
  QueryResult bc(std::span<const NodeId> nodes,
                 std::int64_t deadline_ms) const;

  /// Top-k betweenness, derived from the same version-keyed BC cache
  /// (descending by value, ties by node id). k is clamped to n.
  QueryResult topk_bc(NodeId k, std::int64_t deadline_ms) const;

  struct ApplyResult {
    std::uint64_t version = 0;   ///< version after the batch
    std::uint32_t applied = 0;   ///< edges accepted (self loops skipped)
    bool degraded = false;       ///< re-estimate was budget-degraded
    bool persisted = true;       ///< state segment committed (or no dir)
  };
  /// Validate and apply an edge batch, re-estimate once (deadline_ms maps
  /// onto the estimator budget; 0 = none), bump the version and commit the
  /// state segment. Transactional: validation errors and the server.apply
  /// fail point reject the whole batch before any mutation. Throws
  /// InputError for out-of-range endpoints.
  ApplyResult apply_batch(std::span<const Edge> edges,
                          std::int64_t deadline_ms);

  /// Schema-v3 run-report fragment for the engine's most recent estimate
  /// (obs/report.hpp), the per-reply telemetry attached to update replies
  /// on request.
  std::string report_json(const std::string& tool) const;

 private:
  void commit_locked(ApplyResult* res);

  EngineOptions opts_;
  std::uint64_t state_hash_ = 0;
  bool resumed_ = false;
  mutable std::shared_mutex mu_;
  std::uint64_t version_ = 1;
  DynamicFarness dyn_;
  double last_estimate_wall_s_ = 0.0;

  // Version-keyed top-k result cache (single entry; guarded separately so
  // concurrent farness readers never contend on it).
  mutable std::mutex topk_mu_;
  mutable bool topk_valid_ = false;
  mutable std::uint64_t topk_version_ = 0;
  mutable NodeId topk_k_ = 0;
  mutable TopKResult topk_cache_;

  // Version-keyed betweenness estimate (lazy; same invalidation contract
  // as the top-k cache: any committed version bump supersedes it). The
  // caller must hold mu_ shared; `fn` runs against either the cached or a
  // freshly computed estimate, never a torn one.
  void with_bc_estimate(std::int64_t deadline_ms,
                        const std::function<void(const EstimateResult&)>& fn)
      const;
  mutable std::mutex bc_mu_;
  mutable bool bc_valid_ = false;
  mutable std::uint64_t bc_version_ = 0;
  mutable EstimateResult bc_cache_;
};

/// Fingerprint of the estimator options that shape served results, used as
/// the state segment's config hash — a state dir written under different
/// options is rejected and recomputed, never silently served.
std::uint64_t engine_state_hash(const EstimateOptions& opts);

}  // namespace brics
