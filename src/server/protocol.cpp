#include "server/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "exec/checkpoint.hpp"
#include "exec/failpoint.hpp"

namespace brics {
namespace {

void put_string(ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.bytes(s.data(), s.size());
}

std::string get_string(ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::string s(n, '\0');
  r.bytes(s.data(), n);
  return s;
}

[[noreturn]] void bad_frame(const char* what) {
  throw InputError(std::string("protocol: ") + what);
}

}  // namespace

const char* to_string(ReplyStatus s) {
  switch (s) {
    case ReplyStatus::kOk: return "ok";
    case ReplyStatus::kDegraded: return "degraded";
    case ReplyStatus::kOverloaded: return "overloaded";
    case ReplyStatus::kShuttingDown: return "shutting-down";
    case ReplyStatus::kError: return "error";
  }
  return "?";
}

const char* to_string(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadRequest: return "bad-request";
    case WireError::kWedged: return "wedged";
    case WireError::kFailPoint: return "fail-point";
    case WireError::kInternal: return "internal";
  }
  return "?";
}

std::string encode_request(const Request& r) {
  ByteWriter w;
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(r.type));
  w.u32(r.request_id);
  w.u32(r.deadline_ms);
  w.u32(r.debug_sleep_ms);
  switch (r.type) {
    case MsgType::kHello:
    case MsgType::kStats:
    case MsgType::kServerStats:
    case MsgType::kMetrics:
      break;
    case MsgType::kFarness:
      w.u8(r.closeness ? 1 : 0);
      w.u32(static_cast<std::uint32_t>(r.nodes.size()));
      for (NodeId v : r.nodes) w.u32(v);
      break;
    case MsgType::kBc:
      w.u32(static_cast<std::uint32_t>(r.nodes.size()));
      for (NodeId v : r.nodes) w.u32(v);
      break;
    case MsgType::kTopK:
    case MsgType::kTopKBc:
      w.u32(r.k);
      break;
    case MsgType::kUpdate:
      w.u8(r.want_report ? 1 : 0);
      w.u32(static_cast<std::uint32_t>(r.edges.size()));
      for (const Edge& e : r.edges) {
        w.u32(e.u);
        w.u32(e.v);
        w.u32(e.w);
      }
      break;
  }
  return w.str();
}

Request decode_request(const std::string& payload) {
  ByteReader rd(payload);
  const std::uint8_t ver = rd.u8();
  if (ver != kProtocolVersion)
    bad_frame("unsupported protocol version");
  Request r;
  const std::uint8_t type = rd.u8();
  if (type < 1 || type > 9) bad_frame("unknown message type");
  r.type = static_cast<MsgType>(type);
  r.request_id = rd.u32();
  r.deadline_ms = rd.u32();
  r.debug_sleep_ms = rd.u32();
  switch (r.type) {
    case MsgType::kHello:
    case MsgType::kStats:
    case MsgType::kServerStats:
    case MsgType::kMetrics:
      break;
    case MsgType::kFarness: {
      r.closeness = rd.u8() != 0;
      const std::uint32_t n = rd.u32();
      if (static_cast<std::uint64_t>(n) * 4 > rd.remaining())
        bad_frame("farness node list overruns frame");
      r.nodes.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) r.nodes.push_back(rd.u32());
      break;
    }
    case MsgType::kBc: {
      const std::uint32_t n = rd.u32();
      if (static_cast<std::uint64_t>(n) * 4 > rd.remaining())
        bad_frame("bc node list overruns frame");
      r.nodes.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) r.nodes.push_back(rd.u32());
      break;
    }
    case MsgType::kTopK:
    case MsgType::kTopKBc:
      r.k = rd.u32();
      break;
    case MsgType::kUpdate: {
      r.want_report = rd.u8() != 0;
      const std::uint32_t n = rd.u32();
      if (static_cast<std::uint64_t>(n) * 12 > rd.remaining())
        bad_frame("update edge list overruns frame");
      r.edges.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        Edge e;
        e.u = rd.u32();
        e.v = rd.u32();
        e.w = rd.u32();
        r.edges.push_back(e);
      }
      break;
    }
  }
  if (!rd.done()) bad_frame("request has trailing bytes");
  return r;
}

std::string encode_reply(const Reply& r) {
  ByteWriter w;
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(r.type));
  w.u32(r.request_id);
  w.u8(static_cast<std::uint8_t>(r.status));
  w.u8(static_cast<std::uint8_t>(r.error));
  w.u64(r.version);
  put_string(w, r.message);
  if (r.status != ReplyStatus::kOk && r.status != ReplyStatus::kDegraded)
    return w.str();  // non-served replies carry no body
  switch (r.type) {
    case MsgType::kHello:
      w.u64(r.nodes);
      w.u64(r.edges);
      w.u8(r.resumed ? 1 : 0);
      break;
    case MsgType::kStats:
    case MsgType::kServerStats:
      break;  // payload lives in message
    case MsgType::kFarness:
    case MsgType::kBc:
    case MsgType::kTopKBc:
      w.u32(static_cast<std::uint32_t>(r.entries.size()));
      for (const FarnessEntry& e : r.entries) {
        w.u32(e.node);
        w.f64(e.value);
        w.u8(e.exact ? 1 : 0);
      }
      break;
    case MsgType::kTopK:
      w.u8(r.topk_exact ? 1 : 0);
      w.u32(static_cast<std::uint32_t>(r.topk_nodes.size()));
      for (std::size_t i = 0; i < r.topk_nodes.size(); ++i) {
        w.u32(r.topk_nodes[i]);
        w.u64(r.topk_farness[i]);
      }
      break;
    case MsgType::kUpdate:
      w.u32(r.applied);
      w.u8(r.persisted ? 1 : 0);
      put_string(w, r.report_json);
      break;
    case MsgType::kMetrics:
      put_string(w, r.metrics_json);
      break;
  }
  return w.str();
}

Reply decode_reply(const std::string& payload) {
  ByteReader rd(payload);
  const std::uint8_t ver = rd.u8();
  if (ver != kProtocolVersion)
    bad_frame("unsupported protocol version");
  Reply r;
  const std::uint8_t type = rd.u8();
  if (type < 1 || type > 9) bad_frame("unknown message type");
  r.type = static_cast<MsgType>(type);
  r.request_id = rd.u32();
  const std::uint8_t status = rd.u8();
  if (status > 4) bad_frame("unknown reply status");
  r.status = static_cast<ReplyStatus>(status);
  const std::uint8_t err = rd.u8();
  if (err > 4) bad_frame("unknown error code");
  r.error = static_cast<WireError>(err);
  r.version = rd.u64();
  r.message = get_string(rd);
  if (r.status != ReplyStatus::kOk && r.status != ReplyStatus::kDegraded) {
    if (!rd.done()) bad_frame("reply has trailing bytes");
    return r;
  }
  switch (r.type) {
    case MsgType::kHello:
      r.nodes = rd.u64();
      r.edges = rd.u64();
      r.resumed = rd.u8() != 0;
      break;
    case MsgType::kStats:
    case MsgType::kServerStats:
      break;
    case MsgType::kFarness:
    case MsgType::kBc:
    case MsgType::kTopKBc: {
      const std::uint32_t n = rd.u32();
      if (static_cast<std::uint64_t>(n) * 13 > rd.remaining())
        bad_frame("farness entries overrun frame");
      r.entries.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        FarnessEntry e;
        e.node = rd.u32();
        e.value = rd.f64();
        e.exact = rd.u8() != 0;
        r.entries.push_back(e);
      }
      break;
    }
    case MsgType::kTopK: {
      r.topk_exact = rd.u8() != 0;
      const std::uint32_t n = rd.u32();
      if (static_cast<std::uint64_t>(n) * 12 > rd.remaining())
        bad_frame("topk entries overrun frame");
      r.topk_nodes.reserve(n);
      r.topk_farness.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        r.topk_nodes.push_back(rd.u32());
        r.topk_farness.push_back(rd.u64());
      }
      break;
    }
    case MsgType::kUpdate:
      r.applied = rd.u32();
      r.persisted = rd.u8() != 0;
      r.report_json = get_string(rd);
      break;
    case MsgType::kMetrics:
      r.metrics_json = get_string(rd);
      break;
  }
  if (!rd.done()) bad_frame("reply has trailing bytes");
  return r;
}

std::optional<std::string> read_frame(int fd) {
  BRICS_FAILPOINT("server.read");
  unsigned char hdr[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t n = ::read(fd, hdr + got, 4 - got);
    if (n == 0) {
      if (got == 0) return std::nullopt;  // clean EOF between frames
      bad_frame("EOF inside frame header");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      bad_frame("read failed");
    }
    got += static_cast<std::size_t>(n);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            (static_cast<std::uint32_t>(hdr[1]) << 8) |
                            (static_cast<std::uint32_t>(hdr[2]) << 16) |
                            (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (len > kMaxFrameBytes) bad_frame("oversize frame");
  std::string payload(len, '\0');
  got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, payload.data() + got, len - got);
    if (n == 0) bad_frame("EOF inside frame payload");
    if (n < 0) {
      if (errno == EINTR) continue;
      bad_frame("read failed");
    }
    got += static_cast<std::size_t>(n);
  }
  return payload;
}

void write_frame(int fd, const std::string& payload) {
  BRICS_FAILPOINT("server.write");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string buf;
  buf.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  buf += payload;
  std::size_t sent = 0;
  while (sent < buf.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE here, not process
    // death — the connection handler logs and drops it.
    const ssize_t n = ::send(fd, buf.data() + sent, buf.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      bad_frame("write failed (peer gone?)");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace brics
