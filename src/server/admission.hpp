// Admission control: the bounded queue between connection readers and the
// worker pool (docs/ROBUSTNESS.md "Admission control").
//
// The invariant the daemon lives by: a request is either served, or shed
// with an explicit reply — never silently queued without bound, never
// hung. try_push is the only way in and it refuses when the queue is at
// capacity; the caller turns that refusal into an OVERLOADED reply while
// the client still has a healthy connection to hear it on. close() flips
// the queue into drain mode: pops drain nothing further (workers exit),
// and the remaining jobs are handed back to the closer so each can be
// refused with SHUTTING-DOWN instead of being dropped on the floor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace brics {

template <typename Job>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admit `job` unless the queue is full or closed. Returns false on a
  /// full queue (caller sheds with OVERLOADED) and on a closed one
  /// (caller refuses with SHUTTING-DOWN; check closed() to distinguish).
  bool try_push(Job job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(job));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until a job is available or the queue closes. nullopt = closed:
  /// the worker should exit its loop.
  std::optional<Job> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (closed_) return std::nullopt;
    Job job = std::move(q_.front());
    q_.pop_front();
    return job;
  }

  /// Close the queue and return every job still waiting, so the caller
  /// can refuse each one explicitly. Idempotent (later calls return
  /// nothing).
  std::vector<Job> close() {
    std::vector<Job> rest;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      rest.reserve(q_.size());
      while (!q_.empty()) {
        rest.push_back(std::move(q_.front()));
        q_.pop_front();
      }
    }
    cv_.notify_all();
    return rest;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> q_;
  bool closed_ = false;
};

}  // namespace brics
