// Fault-injection sweep over the daemon's fail-point sites
// (server.accept / server.read / server.write / server.enqueue /
// server.apply), the server-side sibling of exec/chaos.hpp.
//
// Each case boots a real in-process Server on its own socket, arms one
// site on its k-th evaluation, runs a scripted client exchange (update
// batch + farness query), and then verifies the robustness contract:
//
//   - every fault lands in the taxonomy: an explicit fail-point error
//     reply ("error:fail-point") or an absorbed connection drop
//     ("absorbed") — never a hang, a crash, or a poisoned answer;
//   - after the fault, a fresh connection gets farness answers that are
//     BIT-IDENTICAL to an independently computed oracle for whichever
//     graph version the server actually committed (the sweep runs at
//     100 % sampling, where estimates are exact);
//   - after a clean drain, a restarted engine over the same state dir
//     resumes at exactly the committed version with the same answers
//     (the commit-then-reply guarantee, checked per case).
//
// The sweep runs the client in-process over raw frame I/O on purpose:
// protocol.hpp's read_frame/write_frame hit the very fail points under
// test, and a client tripping them would corrupt the sweep.
#pragma once

#include <string>

#include "exec/chaos.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

struct ServerChaosOptions {
  int max_hits = 2;  ///< trigger each site on evaluations 1..max_hits
  std::string work_dir = "server-chaos-work";  ///< sockets + state dirs
};

/// Run the sweep on a connected graph. Arms and disarms the global
/// FailPointRegistry internally; leaves it disarmed.
ChaosReport run_server_chaos_sweep(const CsrGraph& g,
                                   const ServerChaosOptions& copts);

}  // namespace brics
