#include "server/server_chaos.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <optional>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "exec/failpoint.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace brics {
namespace {

// ---- raw client-side frame I/O (no fail points — see header) ----------

bool raw_write(int fd, const std::string& payload) {
  std::string buf;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  buf += payload;
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> raw_read(int fd) {
  unsigned char hdr[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t n = ::read(fd, hdr + got, 4 - got);
    if (n == 0) return std::nullopt;
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    got += static_cast<std::size_t>(n);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            (static_cast<std::uint32_t>(hdr[1]) << 8) |
                            (static_cast<std::uint32_t>(hdr[2]) << 16) |
                            (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (len > kMaxFrameBytes) return std::nullopt;
  std::string payload(len, '\0');
  got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, payload.data() + got, len - got);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    got += static_cast<std::size_t>(n);
  }
  return payload;
}

int connect_unix(const std::string& path) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0)
      return fd;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

/// Send one request, read one reply. nullopt = connection-level failure
/// (EOF, drop) — which the sweep classifies as an absorbed fault.
std::optional<Reply> roundtrip(int fd, const Request& req) {
  if (!raw_write(fd, encode_request(req))) return std::nullopt;
  auto frame = raw_read(fd);
  if (!frame) return std::nullopt;
  return decode_reply(*frame);
}

std::vector<double> engine_values(const ServerEngine& eng) {
  auto qr = eng.farness({}, /*closeness=*/false);
  std::vector<double> vals;
  vals.reserve(qr.entries.size());
  for (const FarnessEntry& e : qr.entries) vals.push_back(e.value);
  return vals;
}

std::vector<double> oracle_fresh(const CsrGraph& g,
                                 const EstimateOptions& opts) {
  ServerEngine eng(g, EngineOptions{opts, /*state_dir=*/"", 64});
  return engine_values(eng);
}

/// Oracle for the server's own v2 state: replay the exact code path the
/// daemon runs (initial estimate on `g`, then a patched apply of `e`).
/// Patched and fresh reductions can differ on the values of reduced-away
/// nodes (their reconstruction is calibrated, not exact), so bit-equality
/// only holds between runs that build the reduction the same way —
/// patched state is compared against a patched replay, a restarted
/// (freshly reduced) engine against a fresh build.
std::vector<double> oracle_patched(const CsrGraph& g,
                                   const EstimateOptions& opts,
                                   const Edge& e) {
  ServerEngine eng(g, EngineOptions{opts, /*state_dir=*/"", 64});
  eng.apply_batch(std::span<const Edge>(&e, 1), /*deadline_ms=*/0);
  return engine_values(eng);
}

bool same_values(const std::vector<FarnessEntry>& got,
                 const std::vector<double>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i)
    if (got[i].value != want[i]) return false;  // exact: bit equality
  return true;
}

}  // namespace

ChaosReport run_server_chaos_sweep(const CsrGraph& g,
                                   const ServerChaosOptions& copts) {
  namespace fs = std::filesystem;
  fs::create_directories(copts.work_dir);

  EstimateOptions est;
  est.sample_rate = 1.0;  // exact => bit-identical oracle comparisons
  est.seed = 1;

  // The scripted exchange inserts one edge between the endpoints of the
  // graph's node range; precompute deterministic oracles for both
  // versions, one per reduction-construction path (see oracle_patched).
  const Edge probe{0, g.num_nodes() - 1, 1};
  const std::vector<double> v1_vals = oracle_fresh(g, est);
  const std::vector<double> v2_patched = oracle_patched(g, est, probe);
  const std::vector<double> v2_fresh = [&] {
    GraphBuilder b(g.num_nodes());
    b.add_edges(g.edge_list());
    b.add_edge(probe.u, probe.v, probe.w);
    return oracle_fresh(b.build(), est);
  }();

  ChaosReport report;
  auto& reg = FailPointRegistry::instance();
  reg.disarm_all();

  int case_id = 0;
  for (const char* site_c : known_fail_points()) {
    const std::string site = site_c;
    if (site.rfind("server.", 0) != 0) continue;
    for (int hit = 1; hit <= copts.max_hits; ++hit) {
      ChaosCase cc;
      cc.site = site;
      cc.hit = hit;

      const std::string tag = "case-" + std::to_string(case_id++);
      const std::string sock =
          (fs::path(copts.work_dir) / (tag + ".sock")).string();
      const std::string state =
          (fs::path(copts.work_dir) / (tag + "-state")).string();
      // A state dir left by a previous sweep (possibly over a different
      // graph: the config hash covers options, the committed state owns
      // the graph) would be resumed — every case must start fresh.
      std::error_code ec;
      fs::remove_all(state, ec);
      fs::remove(sock, ec);

      ServerOptions sopts;
      sopts.socket_path = sock;
      sopts.num_workers = 2;
      sopts.queue_capacity = 8;
      sopts.engine.estimate = est;
      sopts.engine.state_dir = state;

      Server server(g, sopts);
      std::string server_error;
      std::thread th([&] {
        try {
          server.run();
        } catch (const std::exception& e) {
          server_error = e.what();
        }
      });
      while (!server.ready() && server_error.empty())
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

      reg.arm(site, /*skip_hits=*/hit - 1, /*fire_limit=*/1,
              FailAction::kThrow);

      // Scripted exchange: update, then query, on one connection.
      bool interrupted = false;
      bool failpoint_reply = false;
      const int fd = connect_unix(sock);
      if (fd < 0) {
        interrupted = true;
      } else {
        Request upd;
        upd.type = MsgType::kUpdate;
        upd.request_id = 1;
        upd.edges.push_back(probe);
        auto r1 = roundtrip(fd, upd);
        if (!r1) {
          interrupted = true;
        } else if (r1->status == ReplyStatus::kError) {
          if (r1->error == WireError::kFailPoint) failpoint_reply = true;
        }
        if (!interrupted) {
          Request q;
          q.type = MsgType::kFarness;
          q.request_id = 2;
          auto r2 = roundtrip(fd, q);
          if (!r2) interrupted = true;
          else if (r2->status == ReplyStatus::kError &&
                   r2->error == WireError::kFailPoint)
            failpoint_reply = true;
        }
        ::close(fd);
      }

      cc.fired = !reg.armed(site);  // :once self-disarms when it fires
      reg.disarm(site);

      // Post-fault service check: a fresh connection must get answers
      // bit-identical to the oracle of the committed version.
      std::uint64_t observed_version = 0;
      std::string failure;
      {
        const int vfd = connect_unix(sock);
        if (vfd < 0) {
          failure = "server unreachable after fault";
        } else {
          Request q;
          q.type = MsgType::kFarness;
          q.request_id = 3;
          auto rv = roundtrip(vfd, q);
          if (!rv || (rv->status != ReplyStatus::kOk &&
                      rv->status != ReplyStatus::kDegraded)) {
            failure = "post-fault query failed";
          } else {
            observed_version = rv->version;
            // The live server is in patched state after an applied
            // update; compare against the patched replay.
            const std::vector<double>& want =
                rv->version >= 2 ? v2_patched : v1_vals;
            for (const FarnessEntry& e : rv->entries)
              if (!std::isfinite(e.value)) failure = "non-finite farness";
            if (failure.empty() && !same_values(rv->entries, want))
              failure = "post-fault farness differs from oracle (v" +
                        std::to_string(rv->version) + ")";
          }
          ::close(vfd);
        }
      }

      server.stop();
      th.join();
      if (!server_error.empty()) failure = "server died: " + server_error;

      // Commit-then-reply: a restart over the same state dir must resume
      // at exactly the version the post-fault query observed.
      if (failure.empty()) {
        ServerEngine resumed(g, EngineOptions{est, state, 64});
        cc.resume_checked = true;
        if (!resumed.resumed()) {
          failure = "restart did not resume from committed state";
        } else if (resumed.version() != observed_version) {
          failure = "resumed version " +
                    std::to_string(resumed.version()) + " != observed " +
                    std::to_string(observed_version);
        } else {
          // A restarted engine reduces the committed graph from scratch;
          // compare against the fresh-build oracle for that version.
          auto qr = resumed.farness({}, false);
          if (!same_values(qr.entries,
                           observed_version >= 2 ? v2_fresh : v1_vals))
            failure = "resumed farness differs from oracle";
        }
      }

      if (!failure.empty()) {
        cc.failed = true;
        cc.outcome = "FAIL: " + failure;
        ++report.failures;
      } else if (!cc.fired) {
        cc.outcome = "not-hit";
      } else if (failpoint_reply) {
        cc.outcome = "error:fail-point";
      } else {
        cc.outcome = "absorbed";
      }
      report.cases.push_back(cc);
    }
  }
  reg.disarm_all();
  return report;
}

}  // namespace brics
