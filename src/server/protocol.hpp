// Wire protocol of the resident daemon (docs/SERVER.md).
//
// Transport: a stream socket (AF_UNIX) carrying length-prefixed frames —
// a 4-byte little-endian payload length followed by the payload. Payloads
// are encoded with the checkpoint layer's ByteWriter/ByteReader, so the
// codec, bounds checking and failure taxonomy are the ones the segment
// files already exercise. A frame that fails to decode is a client error:
// the connection is dropped, never trusted further.
//
// Every request carries a protocol version, a client-chosen request id
// (echoed verbatim in the reply, so clients may pipeline), a deadline in
// milliseconds (0 = none) that the server maps onto the estimator's
// RunBudget, and a debug sleep used by the watchdog tests to simulate a
// wedged worker. Every reply carries the request id, a ReplyStatus, an
// error code for the kError taxonomy, and the graph version the answer
// was computed against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "server/engine.hpp"

namespace brics {

// v2 added kBc / kTopKBc (betweenness queries); v3 adds kMetrics (live
// telemetry exposition + JSON snapshot). Both sides of this repo speak
// v3; a version mismatch drops the connection.
inline constexpr std::uint8_t kProtocolVersion = 3;
/// Upper bound on a single frame; bigger lengths mean a corrupt or
/// malicious peer and drop the connection before allocating.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,        ///< server identity: build sha, schema, graph shape
  kStats = 2,        ///< structural summary of the current graph
  kFarness = 3,      ///< per-node farness/closeness from the cached estimate
  kTopK = 4,         ///< exact top-k closeness
  kUpdate = 5,       ///< edge-insert batch (versioned, crash-safe)
  kServerStats = 6,  ///< server counters (queue, shed, quarantine, ...)
  kBc = 7,           ///< per-node betweenness from the version-keyed cache
  kTopKBc = 8,       ///< top-k betweenness, derived from the same cache
  kMetrics = 9,      ///< live telemetry: exposition text + JSON snapshot
};

enum class ReplyStatus : std::uint8_t {
  kOk = 0,
  kDegraded = 1,      ///< served, but a budget cut the estimate short
  kOverloaded = 2,    ///< shed by admission control; retry later
  kShuttingDown = 3,  ///< draining; request was not served
  kError = 4,         ///< failed; see WireError + message
};

/// Failure taxonomy carried on kError replies — the wire projection of the
/// exec layer's exception taxonomy (docs/ROBUSTNESS.md).
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadRequest = 1,  ///< InputError: malformed body, bad node id, bad edge
  kWedged = 2,      ///< watchdog quarantined the worker serving this
  kFailPoint = 3,   ///< an armed fail point fired (chaos runs only)
  kInternal = 4,    ///< anything else; message has the what()
};

const char* to_string(ReplyStatus s);
const char* to_string(WireError e);

struct Request {
  MsgType type = MsgType::kHello;
  std::uint32_t request_id = 0;
  std::uint32_t deadline_ms = 0;     ///< 0 = no deadline
  std::uint32_t debug_sleep_ms = 0;  ///< test hook: stall the worker

  // kFarness / kBc
  bool closeness = false;     ///< kFarness only
  std::vector<NodeId> nodes;  ///< empty = all nodes

  // kTopK / kTopKBc
  NodeId k = 0;

  // kUpdate
  bool want_report = false;  ///< attach the schema-v3 run-report fragment
  std::vector<Edge> edges;
};

struct Reply {
  MsgType type = MsgType::kHello;
  std::uint32_t request_id = 0;
  ReplyStatus status = ReplyStatus::kOk;
  WireError error = WireError::kNone;
  std::uint64_t version = 0;  ///< graph version the answer reflects
  std::string message;        ///< error text / stats text / hello banner

  // kHello
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  bool resumed = false;

  // kFarness / kBc / kTopKBc (for kTopKBc: descending by value)
  std::vector<FarnessEntry> entries;

  // kTopK
  bool topk_exact = true;
  std::vector<NodeId> topk_nodes;
  std::vector<std::uint64_t> topk_farness;

  // kUpdate
  std::uint32_t applied = 0;
  bool persisted = true;
  std::string report_json;

  // kMetrics (message holds the Prometheus-style text exposition)
  std::string metrics_json;  ///< schema'd JSON snapshot
};

std::string encode_request(const Request& r);
Request decode_request(const std::string& payload);
std::string encode_reply(const Reply& r);
Reply decode_reply(const std::string& payload);

/// Read one length-prefixed frame from `fd`. Returns nullopt on clean EOF
/// before any length byte; throws InputError on a torn frame, an oversize
/// length, or a read error. Hits the server.read fail point.
std::optional<std::string> read_frame(int fd);

/// Write one length-prefixed frame to `fd` (send with MSG_NOSIGNAL, so a
/// vanished peer surfaces as an error instead of SIGPIPE). Throws
/// InputError on short or failed writes. Hits the server.write fail point.
void write_frame(int fd, const std::string& payload);

}  // namespace brics
