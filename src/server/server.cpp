#include "server/server.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "exec/failpoint.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"
#include "obs/histogram_snapshot.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/request.hpp"
#include "obs/trace.hpp"
#include "obs/version.hpp"
#include "server/admission.hpp"
#include "server/protocol.hpp"

namespace brics {
namespace {

using Clock = std::chrono::steady_clock;

/// How long drain waits for a quarantined (wedged) worker to surface
/// before abandoning its thread. An abandoned thread is detached and must
/// not be counted on — the daemon's contract is that it exits the process
/// shortly after run() returns.
constexpr std::int64_t kAbandonGraceMs = 3000;

struct Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Serialized reply writes: pipelined requests from one client get
  /// whole frames, never interleaved bytes.
  void send_reply(const Reply& rep) {
    std::lock_guard<std::mutex> lock(write_mu);
    write_frame(fd, encode_reply(rep));
  }

  /// Wake anyone blocked on this socket (reader thread, client) without
  /// racing the destructor's close().
  void hang_up() { ::shutdown(fd, SHUT_RDWR); }

  int fd;
  std::mutex write_mu;
};

struct Job {
  Request req;
  std::shared_ptr<Connection> conn;
  /// Server-assigned monotonic request id (obs/request.hpp) — distinct
  /// from the client-chosen, echoed req.request_id.
  std::uint64_t seq = 0;
  Clock::time_point admitted_at{};
};

struct Worker {
  std::thread th;
  std::atomic<bool> quarantined{false};
  std::atomic<bool> done{false};
  bool collected = false;  ///< drain bookkeeping (under workers_mu)

  // Current-job stamp, written by the worker and read by the watchdog.
  std::mutex job_mu;
  bool busy = false;
  Clock::time_point busy_since{};
  std::uint32_t job_id = 0;
  std::uint64_t job_seq = 0;
  MsgType job_type = MsgType::kHello;
  std::shared_ptr<Connection> job_conn;
};

std::uint64_t us_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            t0)
          .count());
}

/// Latency capped into the flight event's 32-bit payload.
std::uint32_t cap_u32(std::uint64_t v) {
  return v > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(v);
}

#if BRICS_METRICS_ENABLED
/// {"server.request_latency_us": {"p50_us":..., "p95_us":..., ...}, ...}
/// for every microsecond-scale histogram in the snapshot.
std::string quantiles_json(const MetricsSnapshot& snap) {
  JsonWriter w;
  w.begin_object();
  for (const auto& [name, h] : snap.histograms) {
    if (name.size() < 3 || name.compare(name.size() - 3, 3, "_us") != 0)
      continue;
    w.key(name)
        .begin_object()
        .field("p50_us", histogram_quantile(h, 0.50))
        .field("p95_us", histogram_quantile(h, 0.95))
        .field("p99_us", histogram_quantile(h, 0.99))
        .end_object();
  }
  w.end_object();
  return w.str();
}
#endif

}  // namespace

struct Server::Impl {
  Impl(ServerOptions o, ServerEngine& e, std::atomic<bool>& stop)
      : opts(std::move(o)),
        engine(e),
        stop_flag(stop),
        queue(opts.queue_capacity) {}

  ServerOptions opts;
  ServerEngine& engine;
  std::atomic<bool>& stop_flag;
  BoundedQueue<Job> queue;
  std::atomic<bool> draining{false};
  std::atomic<bool> watchdog_stop{false};

  std::mutex workers_mu;
  std::vector<std::shared_ptr<Worker>> workers;

  std::mutex conns_mu;
  std::vector<std::weak_ptr<Connection>> conns;
  std::vector<std::thread> readers;

  std::atomic<std::uint64_t> c_connections{0}, c_requests{0}, c_served{0},
      c_shed{0}, c_refused{0}, c_errors{0}, c_quarantined{0},
      c_dropped{0};
  /// Monotonic server-side request sequence; 0 is reserved for "none".
  std::atomic<std::uint64_t> req_seq{0};

  void spawn_worker();
  void worker_loop(std::shared_ptr<Worker> self);
  void reader_loop(std::shared_ptr<Connection> conn);
  void watchdog_loop();
  void handle(const Request& req, const std::shared_ptr<Connection>& conn);
  Reply serve(const Request& req);
  void send_and_count(Connection& conn, const Reply& rep,
                      std::uint64_t seq = 0, std::uint64_t latency_us = 0);
  std::string counters_json();
};

void Server::Impl::send_and_count(Connection& conn, const Reply& rep,
                                  std::uint64_t seq,
                                  std::uint64_t latency_us) {
  FlightEventKind fk = FlightEventKind::kReply;
  switch (rep.status) {
    case ReplyStatus::kOk:
    case ReplyStatus::kDegraded:
      ++c_served;
      break;
    case ReplyStatus::kOverloaded: {
      ++c_shed;
      fk = FlightEventKind::kShed;
      BRICS_COUNTER(c, "server.requests_shed");
      BRICS_COUNTER_ADD(c, 1);
      break;
    }
    case ReplyStatus::kShuttingDown:
      ++c_refused;
      fk = FlightEventKind::kRefuse;
      break;
    case ReplyStatus::kError:
      ++c_errors;
      break;
  }
  const Clock::time_point write_start = Clock::now();
  try {
    conn.send_reply(rep);
    BRICS_HISTOGRAM(h_write, "server.reply_write_us", pow2_time_bounds());
    BRICS_HISTOGRAM_OBSERVE(h_write, us_since(write_start));
    if (latency_us > 0) {
      // End-to-end: admission (or decode, for inline serves) through the
      // written reply — the decomposition is queue_wait + execute +
      // reply_write.
      BRICS_HISTOGRAM(h_lat, "server.request_latency_us",
                      pow2_time_bounds());
      BRICS_HISTOGRAM_OBSERVE(h_lat,
                              latency_us + us_since(write_start));
    }
  } catch (const std::exception&) {
    // Reply lost (peer gone, or the server.write fail point). Hang up so
    // the client observes EOF instead of waiting forever for a frame
    // that will never come — the no-hangs contract.
    ++c_dropped;
    conn.hang_up();
  }
  FlightRecorder::global().record(
      fk, seq, static_cast<std::uint32_t>(rep.status), cap_u32(latency_us),
      to_string(rep.status));
}

Reply Server::Impl::serve(const Request& req) {
  // Nested under the worker's "server.request" span (same request lane);
  // the gap between the two is decode/admission bookkeeping.
  BRICS_SPAN(sp, "server.execute");
  Reply rep;
  rep.type = req.type;
  rep.request_id = req.request_id;
  if (req.debug_sleep_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(req.debug_sleep_ms));
  const std::int64_t deadline =
      req.deadline_ms > 0 ? req.deadline_ms
                          : static_cast<std::int64_t>(
                                opts.default_deadline_ms);
  try {
    switch (req.type) {
      case MsgType::kHello:
        rep.message = build_version_string();
        rep.version = engine.version();
        rep.nodes = engine.num_nodes();
        rep.edges = engine.num_edges();
        rep.resumed = engine.resumed();
        break;
      case MsgType::kServerStats:
        rep.message = counters_json();
        rep.version = engine.version();
        break;
      case MsgType::kStats:
        rep.message = engine.stats_json();
        rep.version = engine.version();
        break;
      case MsgType::kMetrics: {
#if BRICS_METRICS_ENABLED
        const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
        rep.message = to_prometheus(snap);
        // Concatenation of three independently valid JSON objects; the
        // server-counters body carries its own schema version field.
        rep.metrics_json = "{\"metrics_schema_version\": 1, \"server\": " +
                           counters_json() + ", \"quantiles\": " +
                           quantiles_json(snap) + ", \"metrics\": " +
                           snap.to_json() + "}";
        rep.version = engine.version();
#else
        // The OFF build keeps the protocol (the frame decodes) but has no
        // registry to serve — and must contain no metric-name strings.
        rep.status = ReplyStatus::kError;
        rep.error = WireError::kInternal;
        rep.message = "metrics disabled in this build";
#endif
        break;
      }
      case MsgType::kFarness: {
        auto qr = engine.farness(req.nodes, req.closeness);
        rep.version = qr.version;
        rep.entries = std::move(qr.entries);
        if (qr.degraded) rep.status = ReplyStatus::kDegraded;
        break;
      }
      case MsgType::kTopK: {
        if (req.k == 0) throw InputError("topk: k must be >= 1");
        auto tq = engine.topk(req.k, deadline);
        rep.version = tq.version;
        rep.topk_exact = tq.result.is_exact;
        rep.topk_nodes = std::move(tq.result.nodes);
        rep.topk_farness = std::move(tq.result.farness);
        if (!rep.topk_exact) rep.status = ReplyStatus::kDegraded;
        break;
      }
      case MsgType::kBc: {
        auto qr = engine.bc(req.nodes, deadline);
        rep.version = qr.version;
        rep.entries = std::move(qr.entries);
        if (qr.degraded) rep.status = ReplyStatus::kDegraded;
        break;
      }
      case MsgType::kTopKBc: {
        if (req.k == 0) throw InputError("topk-bc: k must be >= 1");
        auto qr = engine.topk_bc(req.k, deadline);
        rep.version = qr.version;
        rep.entries = std::move(qr.entries);
        if (qr.degraded) rep.status = ReplyStatus::kDegraded;
        break;
      }
      case MsgType::kUpdate: {
        auto ar = engine.apply_batch(req.edges, deadline);
        rep.version = ar.version;
        rep.applied = ar.applied;
        rep.persisted = ar.persisted;
        if (ar.degraded) rep.status = ReplyStatus::kDegraded;
        if (req.want_report)
          rep.report_json = engine.report_json("brics_serve");
        break;
      }
    }
  } catch (const FailPointError& e) {
    rep.status = ReplyStatus::kError;
    rep.error = WireError::kFailPoint;
    rep.message = e.what();
  } catch (const InputError& e) {
    rep.status = ReplyStatus::kError;
    rep.error = WireError::kBadRequest;
    rep.message = e.what();
  } catch (const std::exception& e) {
    rep.status = ReplyStatus::kError;
    rep.error = WireError::kInternal;
    rep.message = e.what();
  }
  return rep;
}

void Server::Impl::handle(const Request& req,
                          const std::shared_ptr<Connection>& conn) {
  const std::uint64_t seq =
      req_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  Reply rep;
  rep.type = req.type;
  rep.request_id = req.request_id;

  // Hello, ServerStats and Metrics are answered inline by the reader:
  // they touch no estimator state, so they stay responsive even when the
  // queue is saturated — exactly when an operator wants to see the
  // counters and latency histograms.
  if (req.type == MsgType::kHello || req.type == MsgType::kServerStats ||
      req.type == MsgType::kMetrics) {
    const Clock::time_point start = Clock::now();
    FlightRecorder::global().record(
        FlightEventKind::kAdmit, seq,
        static_cast<std::uint32_t>(req.type), 0, "inline");
    RequestIdScope rscope(seq);
    BRICS_SPAN(sp, "server.request");
    Reply out = serve(req);
    send_and_count(*conn, out, seq, us_since(start));
    return;
  }

  if (draining.load(std::memory_order_relaxed)) {
    rep.status = ReplyStatus::kShuttingDown;
    rep.message = "server is draining";
    send_and_count(*conn, rep, seq);
    return;
  }

  try {
    BRICS_FAILPOINT("server.enqueue");
  } catch (const FailPointError& e) {
    rep.status = ReplyStatus::kError;
    rep.error = WireError::kFailPoint;
    rep.message = e.what();
    send_and_count(*conn, rep, seq);
    return;
  }

  const std::size_t depth = queue.size();
  BRICS_HISTOGRAM(h_depth, "server.queue_depth", pow2_bounds());
  BRICS_HISTOGRAM_OBSERVE(h_depth, depth);

  if (!queue.try_push(Job{req, conn, seq, Clock::now()})) {
    if (queue.closed()) {
      rep.status = ReplyStatus::kShuttingDown;
      rep.message = "server is draining";
    } else {
      rep.status = ReplyStatus::kOverloaded;
      rep.message = "admission queue full (capacity " +
                    std::to_string(queue.capacity()) + "); retry later";
    }
    send_and_count(*conn, rep, seq);
  } else {
    FlightRecorder::global().record(FlightEventKind::kAdmit, seq,
                                    static_cast<std::uint32_t>(req.type),
                                    static_cast<std::uint32_t>(depth));
  }
}

void Server::Impl::worker_loop(std::shared_ptr<Worker> self) {
  while (true) {
    std::optional<Job> job = queue.pop();
    if (!job) break;
    const Clock::time_point popped = Clock::now();
    BRICS_HISTOGRAM(h_wait, "server.queue_wait_us", pow2_time_bounds());
    BRICS_HISTOGRAM_OBSERVE(
        h_wait, static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        popped - job->admitted_at)
                        .count()));
    {
      std::lock_guard<std::mutex> lock(self->job_mu);
      self->busy = true;
      self->busy_since = popped;
      self->job_id = job->req.request_id;
      self->job_seq = job->seq;
      self->job_type = job->req.type;
      self->job_conn = job->conn;
    }
    Reply rep;
    {
      // Everything the engine and pipeline record on this thread — spans,
      // flight events, commit hooks — carries this request id.
      RequestIdScope rscope(job->seq);
      BRICS_SPAN(sp, "server.request");
      rep = serve(job->req);
    }
    BRICS_HISTOGRAM(h_exec, "server.execute_us", pow2_time_bounds());
    BRICS_HISTOGRAM_OBSERVE(h_exec, us_since(popped));
    bool discard;
    {
      std::lock_guard<std::mutex> lock(self->job_mu);
      discard = self->quarantined.load(std::memory_order_relaxed);
      self->busy = false;
      self->job_conn.reset();
    }
    if (discard) break;  // the watchdog already failed this request
    send_and_count(*job->conn, rep, job->seq,
                   us_since(job->admitted_at));
  }
  self->done.store(true, std::memory_order_release);
}

void Server::Impl::spawn_worker() {
  auto w = std::make_shared<Worker>();
  std::lock_guard<std::mutex> lock(workers_mu);
  workers.push_back(w);
  w->th = std::thread([this, w] { worker_loop(w); });
}

void Server::Impl::watchdog_loop() {
  const auto threshold = std::chrono::milliseconds(opts.watchdog_ms);
  while (!watchdog_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<std::shared_ptr<Worker>> snapshot;
    {
      std::lock_guard<std::mutex> lock(workers_mu);
      snapshot = workers;
    }
    const auto now = Clock::now();
    for (const auto& w : snapshot) {
      if (w->quarantined.load(std::memory_order_relaxed)) continue;
      std::shared_ptr<Connection> conn;
      std::uint32_t id = 0;
      std::uint64_t seq = 0;
      MsgType type = MsgType::kHello;
      bool wedged = false;
      {
        std::lock_guard<std::mutex> lock(w->job_mu);
        if (w->busy && now - w->busy_since >= threshold) {
          w->quarantined.store(true, std::memory_order_relaxed);
          wedged = true;
          conn = w->job_conn;
          id = w->job_id;
          seq = w->job_seq;
          type = w->job_type;
        }
      }
      if (!wedged) continue;
      ++c_quarantined;
      BRICS_COUNTER(c, "server.workers_quarantined");
      BRICS_COUNTER_ADD(c, 1);
      // The black box ships a postmortem with the wedged request's id in
      // it: record the quarantine first so the dump always contains it.
      FlightRecorder::global().record(
          FlightEventKind::kQuarantine, seq,
          static_cast<std::uint32_t>(type),
          static_cast<std::uint32_t>(opts.watchdog_ms));
      if (!opts.flight_path.empty())
        FlightRecorder::global().dump_to_file(opts.flight_path,
                                              "quarantine");
      Reply rep;
      rep.type = type;
      rep.request_id = id;
      rep.status = ReplyStatus::kError;
      rep.error = WireError::kWedged;
      rep.message = "request exceeded the watchdog threshold (" +
                    std::to_string(opts.watchdog_ms) +
                    " ms); worker quarantined";
      if (conn) send_and_count(*conn, rep, seq);
      // Keep the pool at full strength; the wedged thread's eventual
      // result is discarded by the quarantined flag.
      spawn_worker();
    }
  }
}

void Server::Impl::reader_loop(std::shared_ptr<Connection> conn) {
  try {
    while (true) {
      std::optional<std::string> frame = read_frame(conn->fd);
      if (!frame) break;  // clean EOF
      // A frame that does not decode is an untrusted peer: drop the
      // connection (we may not even have a request id to reply to).
      Request req = decode_request(*frame);
      ++c_requests;
      handle(req, conn);
    }
  } catch (const std::exception&) {
    ++c_dropped;
    BRICS_COUNTER(c, "server.connections_dropped");
    BRICS_COUNTER_ADD(c, 1);
  }
  conn->hang_up();
}

std::string Server::Impl::counters_json() {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"server_stats_schema_version\": 1, "
      "\"connections\": %llu, \"requests\": %llu, \"served\": %llu, "
      "\"shed\": %llu, \"refused\": %llu, \"errors\": %llu, "
      "\"quarantined\": %llu, \"dropped_connections\": %llu, "
      "\"queue_depth\": %zu, \"queue_capacity\": %zu, \"workers\": %zu, "
      "\"draining\": %s}",
      static_cast<unsigned long long>(c_connections.load()),
      static_cast<unsigned long long>(c_requests.load()),
      static_cast<unsigned long long>(c_served.load()),
      static_cast<unsigned long long>(c_shed.load()),
      static_cast<unsigned long long>(c_refused.load()),
      static_cast<unsigned long long>(c_errors.load()),
      static_cast<unsigned long long>(c_quarantined.load()),
      static_cast<unsigned long long>(c_dropped.load()),
      queue.size(), queue.capacity(),
      [this] {
        std::lock_guard<std::mutex> lock(workers_mu);
        return workers.size();
      }(),
      draining.load() ? "true" : "false");
  return buf;
}

Server::Server(CsrGraph g, ServerOptions opts)
    : engine_(std::make_unique<ServerEngine>(std::move(g), opts.engine)),
      impl_(std::make_unique<Impl>(std::move(opts), *engine_, stop_)) {}

Server::~Server() = default;

ServerCounters Server::counters() const {
  const Impl& im = *impl_;
  ServerCounters c;
  c.connections = im.c_connections.load();
  c.requests = im.c_requests.load();
  c.served = im.c_served.load();
  c.shed = im.c_shed.load();
  c.refused = im.c_refused.load();
  c.errors = im.c_errors.load();
  c.quarantined = im.c_quarantined.load();
  c.dropped_conns = im.c_dropped.load();
  return c;
}

void Server::run() {
  Impl& im = *impl_;
  const std::string& path = im.opts.socket_path;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw InputError("socket path empty or too long: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (lfd < 0) throw InputError("socket() failed");
  ::unlink(path.c_str());  // stale socket from a previous (killed) run
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(lfd);
    throw InputError("cannot bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(lfd, 64) < 0) {
    ::close(lfd);
    throw InputError("listen() failed on " + path);
  }

  for (std::uint32_t i = 0; i < im.opts.num_workers; ++i) im.spawn_worker();
  std::thread watchdog;
  if (im.opts.watchdog_ms > 0)
    watchdog = std::thread([&im] { im.watchdog_loop(); });

  ready_.store(true, std::memory_order_release);

  // Accept loop: 100 ms poll tick so stop() (set by a signal handler's
  // watcher) is honoured promptly without async-signal-unsafe work.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{lfd, POLLIN, 0};
    const int r = ::poll(&p, 1, 100);
    if (r <= 0) continue;  // timeout or EINTR
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) continue;
    try {
      BRICS_FAILPOINT("server.accept");
    } catch (const FailPointError&) {
      // Absorbed: the client sees an immediate EOF and the server keeps
      // accepting — a refused connection, not a crashed daemon.
      ::close(cfd);
      continue;
    }
    ++im.c_connections;
    auto conn = std::make_shared<Connection>(cfd);
    std::lock_guard<std::mutex> lock(im.conns_mu);
    im.conns.push_back(conn);
    im.readers.emplace_back(
        [&im, conn] { im.reader_loop(conn); });
  }

  // ---- graceful drain -------------------------------------------------
  ::close(lfd);
  ::unlink(path.c_str());
  im.draining.store(true, std::memory_order_relaxed);
  FlightRecorder::global().record(FlightEventKind::kDrain, 0, 0, 0,
                                  "start");

  // Refuse everything still queued, explicitly.
  for (Job& job : im.queue.close()) {
    Reply rep;
    rep.type = job.req.type;
    rep.request_id = job.req.request_id;
    rep.status = ReplyStatus::kShuttingDown;
    rep.message = "server is draining";
    im.send_and_count(*job.conn, rep, job.seq);
  }

  // Join workers: in-flight requests finish and reply. The workers vector
  // can still grow (watchdog replacements), so scan until stable; a
  // quarantined worker gets a bounded grace period, then is abandoned.
  while (true) {
    std::shared_ptr<Worker> w;
    {
      std::lock_guard<std::mutex> lock(im.workers_mu);
      for (auto& cand : im.workers)
        if (!cand->collected) {
          cand->collected = true;
          w = cand;
          break;
        }
    }
    if (!w) break;
    if (!w->quarantined.load()) {
      w->th.join();
      continue;
    }
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(kAbandonGraceMs);
    while (!w->done.load(std::memory_order_acquire) &&
           Clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (w->done.load(std::memory_order_acquire))
      w->th.join();
    else
      w->th.detach();  // truly wedged; the process exits right after run()
  }

  im.watchdog_stop.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) watchdog.join();

  // Hang up every connection so its reader unblocks, then collect them.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    for (auto& wp : im.conns)
      if (auto c = wp.lock()) c->hang_up();
    readers.swap(im.readers);
  }
  for (std::thread& t : readers) t.join();
  FlightRecorder::global().record(FlightEventKind::kDrain, 0, 0, 0,
                                  "done");
  if (!im.opts.flight_path.empty())
    FlightRecorder::global().dump_to_file(im.opts.flight_path, "drain");
  ready_.store(false, std::memory_order_release);
}

}  // namespace brics
