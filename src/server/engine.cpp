#include "server/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "analysis/analysis.hpp"
#include "exec/checkpoint.hpp"
#include "exec/failpoint.hpp"
#include "measures/betweenness.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/request.hpp"
#include "util/timer.hpp"

namespace brics {
namespace {

constexpr const char* kStateSegment = "graph.state";

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v, same scheme as recovery_config_hash.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
}

/// payload := u64 version | u64 num_nodes | u64 num_edges | edges...
std::string encode_state(std::uint64_t version, const CsrGraph& g) {
  ByteWriter w;
  w.u64(version);
  w.u64(g.num_nodes());
  const auto edges = g.edge_list();
  w.u64(edges.size());
  for (const Edge& e : edges) {
    w.u32(e.u);
    w.u32(e.v);
    w.u32(e.w);
  }
  return w.str();
}

struct DecodedState {
  std::uint64_t version = 0;
  CsrGraph graph;
};

DecodedState decode_state(const std::string& payload) {
  ByteReader r(payload);
  DecodedState st;
  st.version = r.u64();
  const std::uint64_t n = r.u64();
  const std::uint64_t m = r.u64();
  GraphBuilder b(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    const NodeId u = r.u32();
    const NodeId v = r.u32();
    const Weight w = r.u32();
    b.add_edge(u, v, w);
  }
  if (!r.done())
    throw CheckpointError("graph state segment has trailing bytes");
  st.graph = b.build();
  return st;
}

}  // namespace

std::uint64_t engine_state_hash(const EstimateOptions& opts) {
  std::uint64_t h = 14695981039346656037ull;
  hash_mix(h, static_cast<std::uint64_t>(opts.sample_rate * 1e9));
  hash_mix(h, opts.seed);
  hash_mix(h, static_cast<std::uint64_t>(opts.reduce.identical) |
                  (static_cast<std::uint64_t>(opts.reduce.chains) << 1) |
                  (static_cast<std::uint64_t>(opts.reduce.redundant) << 2) |
                  (static_cast<std::uint64_t>(opts.reduce.iterate) << 3));
  hash_mix(h, static_cast<std::uint64_t>(opts.use_bcc));
  hash_mix(h, static_cast<std::uint64_t>(opts.strategy));
  hash_mix(h, static_cast<std::uint64_t>(opts.kernel));
  hash_mix(h, static_cast<std::uint64_t>(opts.measure));
  hash_mix(h, static_cast<std::uint64_t>(opts.storage));
  return h;
}

ServerEngine::ServerEngine(CsrGraph g, EngineOptions opts)
    : opts_(std::move(opts)),
      state_hash_(engine_state_hash(opts_.estimate)),
      dyn_([&]() -> DynamicFarness {
        // Prefer the last committed state over the seed graph: that is
        // the restart-after-crash path. An invalid, stale-config or
        // missing segment falls back to the seed graph silently — the
        // checkpoint contract is "resume if possible, recompute if not".
        if (!opts_.state_dir.empty()) {
          sweep_orphan_tmp_segments(opts_.state_dir);
          const std::string path =
              (std::filesystem::path(opts_.state_dir) / kStateSegment)
                  .string();
          try {
            DecodedState st = decode_state(read_segment(
                path, SegmentKind::kGraphState, state_hash_));
            version_ = st.version;
            resumed_ = true;
            BRICS_COUNTER(c, "server.state_resumed");
            BRICS_COUNTER_ADD(c, 1);
            return DynamicFarness(std::move(st.graph), opts_.estimate,
                                  opts_.rebuild_threshold);
          } catch (const CheckpointError&) {
            // fall through to the seed graph
          }
        }
        return DynamicFarness(std::move(g), opts_.estimate,
                              opts_.rebuild_threshold);
      }()) {
  last_estimate_wall_s_ = dyn_.estimate().times.total_s;
  if (!opts_.state_dir.empty() && !resumed_) {
    // Commit version 1 so a crash before the first update still restarts
    // into a committed state.
    ApplyResult res;
    commit_locked(&res);
  }
}

NodeId ServerEngine::num_nodes() const {
  std::shared_lock lk(mu_);
  return dyn_.graph().num_nodes();
}

std::uint64_t ServerEngine::num_edges() const {
  std::shared_lock lk(mu_);
  return dyn_.graph().num_edges();
}

std::string ServerEngine::stats_json() const {
  std::shared_lock lk(mu_);
  const GraphSummary s = summarize_graph(dyn_.graph());
  JsonWriter w;
  w.begin_object();
  w.field("stats_schema_version", std::uint64_t{1});
  w.field("version", version_);
  w.key("graph").begin_object();
  w.field("nodes", static_cast<std::uint64_t>(s.nodes));
  w.field("edges", s.edges);
  w.field("min_degree", static_cast<std::uint64_t>(s.min_degree));
  w.field("max_degree", static_cast<std::uint64_t>(s.max_degree));
  w.field("avg_degree", s.avg_degree);
  w.field("deg_le2", static_cast<std::uint64_t>(s.deg_le2));
  w.field("components", static_cast<std::uint64_t>(s.components));
  w.field("diameter_lb", static_cast<std::uint64_t>(s.diameter_lb));
  w.field("identical_nodes", static_cast<std::uint64_t>(s.identical_nodes));
  w.field("chain_nodes", static_cast<std::uint64_t>(s.chain_nodes));
  w.field("redundant_nodes", static_cast<std::uint64_t>(s.redundant_nodes));
  w.field("bcc_count", static_cast<std::uint64_t>(s.bcc_count));
  w.field("bcc_max", static_cast<std::uint64_t>(s.bcc_max));
  w.field("bcc_avg", s.bcc_avg);
  w.end_object();
  w.field("text", to_string(s));
  w.end_object();
  return w.str();
}

ServerEngine::QueryResult ServerEngine::farness(
    std::span<const NodeId> nodes, bool closeness) const {
  std::shared_lock lk(mu_);
  const EstimateResult& est = dyn_.estimate();
  const NodeId n = dyn_.graph().num_nodes();
  QueryResult out;
  out.version = version_;
  out.degraded = est.degraded;

  auto row = [&](NodeId v) {
    if (v >= n)
      throw InputError("node id " + std::to_string(v) +
                       " out of range (graph has " + std::to_string(n) +
                       " nodes)");
    FarnessEntry e;
    e.node = v;
    e.exact = est.exact[v] != 0;
    if (closeness) {
      const double f = est.farness[v];
      e.value = f > 0.0 ? static_cast<double>(n - 1) / f : 0.0;
    } else {
      e.value = est.farness[v];
    }
    out.entries.push_back(e);
  };

  if (nodes.empty()) {
    out.entries.reserve(n);
    for (NodeId v = 0; v < n; ++v) row(v);
  } else {
    out.entries.reserve(nodes.size());
    for (NodeId v : nodes) row(v);
  }
  BRICS_COUNTER(c, "server.queries_served");
  BRICS_COUNTER_ADD(c, 1);
  return out;
}

ServerEngine::TopKQuery ServerEngine::topk(NodeId k,
                                           std::int64_t deadline_ms) const {
  std::shared_lock lk(mu_);
  TopKQuery out;
  out.version = version_;
  // Lookup counters pair with the *_cache_hits counters: the live hit
  // ratio an operator reads off the kMetrics snapshot is hits / lookups.
  BRICS_COUNTER(c_look, "server.topk_cache_lookups");
  BRICS_COUNTER_ADD(c_look, 1);
  {
    std::lock_guard<std::mutex> clk(topk_mu_);
    if (topk_valid_ && topk_version_ == version_ && topk_k_ == k) {
      out.result = topk_cache_;
      BRICS_COUNTER(c, "server.topk_cache_hits");
      BRICS_COUNTER_ADD(c, 1);
      return out;
    }
  }
  TopKOptions topts;
  topts.estimate = opts_.estimate;
  topts.estimate.budget.timeout_ms = deadline_ms;
  out.result = top_k_closeness(dyn_.graph(), k, topts);
  if (out.result.is_exact) {
    std::lock_guard<std::mutex> clk(topk_mu_);
    topk_valid_ = true;
    topk_version_ = out.version;
    topk_k_ = k;
    topk_cache_ = out.result;
  }
  BRICS_COUNTER(c, "server.topk_served");
  BRICS_COUNTER_ADD(c, 1);
  return out;
}

void ServerEngine::with_bc_estimate(
    std::int64_t deadline_ms,
    const std::function<void(const EstimateResult&)>& fn) const {
  BRICS_COUNTER(c_look, "server.bc_cache_lookups");
  BRICS_COUNTER_ADD(c_look, 1);
  {
    std::lock_guard<std::mutex> clk(bc_mu_);
    if (bc_valid_ && bc_version_ == version_) {
      BRICS_COUNTER(c, "server.bc_cache_hits");
      BRICS_COUNTER_ADD(c, 1);
      fn(bc_cache_);
      return;
    }
  }
  EstimateOptions eo = opts_.estimate;
  eo.measure = Measure::kBetweenness;
  eo.budget.timeout_ms = deadline_ms;
  EstimateResult est = estimate_betweenness(dyn_.graph(), eo);
  fn(est);
  BRICS_COUNTER(c, "server.bc_estimates");
  BRICS_COUNTER_ADD(c, 1);
  // Budget-degraded estimates are served but never cached: the next query
  // (perhaps with a roomier deadline) recomputes. Losing a race to another
  // equally deterministic compute of the same version is fine — keep the
  // incumbent rather than mutate a vector a reader may hold.
  if (est.degraded) return;
  std::lock_guard<std::mutex> clk(bc_mu_);
  if (!(bc_valid_ && bc_version_ == version_)) {
    bc_valid_ = true;
    bc_version_ = version_;
    bc_cache_ = std::move(est);
  }
}

ServerEngine::QueryResult ServerEngine::bc(std::span<const NodeId> nodes,
                                           std::int64_t deadline_ms) const {
  std::shared_lock lk(mu_);
  const NodeId n = dyn_.graph().num_nodes();
  for (NodeId v : nodes)
    if (v >= n)
      throw InputError("node id " + std::to_string(v) +
                       " out of range (graph has " + std::to_string(n) +
                       " nodes)");
  QueryResult out;
  out.version = version_;
  with_bc_estimate(deadline_ms, [&](const EstimateResult& est) {
    out.degraded = est.degraded;
    auto row = [&](NodeId v) {
      out.entries.push_back(
          FarnessEntry{v, est.farness[v], est.exact[v] != 0});
    };
    if (nodes.empty()) {
      out.entries.reserve(n);
      for (NodeId v = 0; v < n; ++v) row(v);
    } else {
      out.entries.reserve(nodes.size());
      for (NodeId v : nodes) row(v);
    }
  });
  BRICS_COUNTER(c, "server.bc_queries_served");
  BRICS_COUNTER_ADD(c, 1);
  return out;
}

ServerEngine::QueryResult ServerEngine::topk_bc(
    NodeId k, std::int64_t deadline_ms) const {
  std::shared_lock lk(mu_);
  const NodeId n = dyn_.graph().num_nodes();
  k = std::min(k, n);
  QueryResult out;
  out.version = version_;
  with_bc_estimate(deadline_ms, [&](const EstimateResult& est) {
    out.degraded = est.degraded;
    std::vector<NodeId> order(n);
    for (NodeId v = 0; v < n; ++v) order[v] = v;
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](NodeId a, NodeId b) {
                        if (est.farness[a] != est.farness[b])
                          return est.farness[a] > est.farness[b];
                        return a < b;
                      });
    out.entries.reserve(k);
    for (NodeId i = 0; i < k; ++i) {
      const NodeId v = order[i];
      out.entries.push_back(
          FarnessEntry{v, est.farness[v], est.exact[v] != 0});
    }
  });
  BRICS_COUNTER(c, "server.topk_bc_served");
  BRICS_COUNTER_ADD(c, 1);
  return out;
}

ServerEngine::ApplyResult ServerEngine::apply_batch(
    std::span<const Edge> edges, std::int64_t deadline_ms) {
  std::unique_lock lk(mu_);
  // The whole batch is transactional: the fail point and validation both
  // fire before any mutation, so a rejected batch leaves graph, estimate
  // and version untouched.
  BRICS_FAILPOINT("server.apply");
  const NodeId n = dyn_.graph().num_nodes();
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n)
      throw InputError("edge (" + std::to_string(e.u) + ", " +
                       std::to_string(e.v) + ") out of range (graph has " +
                       std::to_string(n) + " nodes)");
    if (e.w == 0)
      throw InputError("edge (" + std::to_string(e.u) + ", " +
                       std::to_string(e.v) + ") has zero weight");
  }

  dyn_.options().budget.timeout_ms = deadline_ms;
  Timer t;
  dyn_.insert_edges(edges);
  last_estimate_wall_s_ = t.seconds();
  dyn_.options().budget.timeout_ms = 0;

  ApplyResult res;
  std::uint32_t applied = 0;
  for (const Edge& e : edges)
    if (e.u != e.v) ++applied;
  res.applied = applied;
  res.degraded = dyn_.estimate().degraded;
  ++version_;
  commit_locked(&res);
  BRICS_COUNTER(c, "server.batches_applied");
  BRICS_COUNTER_ADD(c, 1);
  return res;
}

void ServerEngine::commit_locked(ApplyResult* res) {
  res->version = version_;
  if (opts_.state_dir.empty()) return;
  try {
    write_segment(opts_.state_dir, kStateSegment,
                  SegmentKind::kGraphState, state_hash_,
                  encode_state(version_, dyn_.graph()));
    res->persisted = true;
    FlightRecorder::global().record(
        FlightEventKind::kCommit, current_request_id(), 0,
        static_cast<std::uint32_t>(version_));
    BRICS_COUNTER(c, "server.state_commits");
    BRICS_COUNTER_ADD(c, 1);
  } catch (const CheckpointError&) {
    // Persistence is best-effort: the in-memory state is still correct,
    // the reply just flags that a crash now would lose this version.
    res->persisted = false;
    BRICS_COUNTER(c, "server.state_commit_failures");
    BRICS_COUNTER_ADD(c, 1);
  }
}

std::string ServerEngine::report_json(const std::string& tool) const {
  std::shared_lock lk(mu_);
  RunReport rep = make_run_report(
      tool, "server:v" + std::to_string(version_), dyn_.graph(),
      opts_.estimate, "cumulative", dyn_.estimate(),
      last_estimate_wall_s_);
  return to_json(rep);
}

}  // namespace brics
