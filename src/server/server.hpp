// The resident centrality daemon (docs/SERVER.md).
//
// Thread architecture:
//
//   accept loop (run())      poll + accept on the AF_UNIX listener,
//                            100 ms tick so stop() is honoured promptly
//   1 reader / connection    reads frames, decodes, serves Hello and
//                            ServerStats inline, admits the rest through
//                            the BoundedQueue (or sheds: OVERLOADED /
//                            SHUTTING-DOWN)
//   N workers                pop jobs, serve against the ServerEngine,
//                            write the reply on the job's connection
//   watchdog (optional)      scans worker busy-stamps; a worker stuck
//                            past the threshold is quarantined — its
//                            request fails with a WEDGED error reply, a
//                            replacement worker joins the pool, and the
//                            stuck thread's eventual result is discarded
//
// Replies are written under a per-connection mutex, so pipelined requests
// from one client never interleave frames. Update replies are only sent
// after the engine has committed the new graph version to disk
// (commit-then-reply): any version a client has seen survives SIGKILL.
//
// Drain (stop()): the accept loop closes the listener, readers refuse new
// work with SHUTTING-DOWN, every job still queued is refused the same way,
// in-flight jobs finish and reply, workers are joined (a quarantined
// thread gets a bounded grace period, then is abandoned), and connections
// are shut down. No request is ever silently dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "graph/csr_graph.hpp"
#include "server/engine.hpp"

namespace brics {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket (unlinked on start
  /// and on clean exit).
  std::string socket_path;
  std::uint32_t num_workers = 2;
  std::size_t queue_capacity = 16;
  /// A worker busy longer than this is quarantined by the watchdog;
  /// 0 disables the watchdog.
  std::int64_t watchdog_ms = 0;
  /// Deadline applied to requests that carry none; 0 = unlimited.
  std::uint32_t default_deadline_ms = 0;
  /// Flight-recorder dump file (obs/flight.hpp). When non-empty, the ring
  /// is dumped here on every watchdog quarantine and at the end of the
  /// graceful drain; brics_serve defaults it to `<socket>.flight.json`
  /// and additionally dumps on fatal signals. Empty = no dumps (the ring
  /// still records).
  std::string flight_path;
  EngineOptions engine;
};

/// Counter snapshot served on kServerStats and logged at exit.
struct ServerCounters {
  std::uint64_t connections = 0;   ///< accepted
  std::uint64_t requests = 0;      ///< decoded frames
  std::uint64_t served = 0;        ///< replied kOk or kDegraded
  std::uint64_t shed = 0;          ///< replied kOverloaded
  std::uint64_t refused = 0;       ///< replied kShuttingDown
  std::uint64_t errors = 0;        ///< replied kError
  std::uint64_t quarantined = 0;   ///< workers the watchdog removed
  std::uint64_t dropped_conns = 0; ///< connections dropped on torn frames
};

class Server {
 public:
  Server(CsrGraph g, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and serve until stop() is called. Returns after the
  /// full drain. Throws InputError when the socket cannot be bound.
  void run();

  /// Request a graceful drain; safe to call from any thread, idempotent.
  /// (Signal handlers set a flag the accept loop polls instead — see
  /// tools/brics_serve.cpp.)
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// True once run() has bound the socket and is accepting; lets tests
  /// start the server on a thread and wait for readiness.
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  const ServerEngine& engine() const { return *engine_; }
  ServerCounters counters() const;

 private:
  struct Impl;
  std::unique_ptr<ServerEngine> engine_;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> ready_{false};
};

}  // namespace brics
