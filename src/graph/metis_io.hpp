// METIS graph-format I/O (the format of the partitioner the paper's related
// work contrasts against, and of many benchmark collections).
//
// Format: header "n m [fmt]" where fmt 1 marks edge weights; then one line
// per node listing its neighbours (1-indexed), each followed by its weight
// when fmt == 1. Comment lines start with '%'.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"

namespace brics {

/// Parse a METIS graph. Throws InputError (exec/errors.hpp) on malformed
/// input, including header/edge-count mismatches and asymmetric adjacency.
/// Rewindable streams feed the streaming two-pass builder (no intermediate
/// edge vector); kCompact compresses the result.
CsrGraph read_metis(std::istream& in,
                    AdjacencyStorage storage = AdjacencyStorage::kPlain);
CsrGraph read_metis_file(const std::string& path,
                         AdjacencyStorage storage = AdjacencyStorage::kPlain);

/// Write METIS format (fmt=1 emitted only when the graph has weights).
void write_metis(const CsrGraph& g, std::ostream& out);
void write_metis_file(const CsrGraph& g, const std::string& path);

}  // namespace brics
