#include "graph/stream_build.hpp"

#include <algorithm>
#include <utility>

#include "exec/errors.hpp"
#include "util/check.hpp"

namespace brics {

TwoPassBuilder::TwoPassBuilder(NodeId n) {
  if (n == kGrow) {
    grow_ = true;
    n_ = 0;
  } else {
    n_ = n;
  }
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
}

void TwoPassBuilder::stream_changed(const char* what) {
  throw InputError(std::string("edge stream changed between passes: ") + what);
}

void TwoPassBuilder::count_edge(NodeId u, NodeId v, Weight w) {
  BRICS_CHECK(phase_ == Phase::kCount);
  BRICS_CHECK(w >= 1);
  if (grow_) {
    // Grow before the self-loop skip: a node that only ever appears in
    // self loops still exists (isolated) in the result.
    const NodeId hi = std::max(u, v);
    if (hi >= n_) {
      n_ = hi + 1;
      offsets_.resize(static_cast<std::size_t>(n_) + 1, 0);
    }
  } else {
    BRICS_CHECK_MSG(u < n_ && v < n_,
                    "edge {" << u << "," << v << "} out of range, n=" << n_);
  }
  if (u == v) return;
  // Counts live shifted one up so the in-place prefix sum lands directly in
  // CSR offset position.
  ++offsets_[u + 1];
  ++offsets_[v + 1];
  ++counted_;
}

void TwoPassBuilder::begin_scatter() {
  BRICS_CHECK(phase_ == Phase::kCount);
  for (NodeId v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];
  targets_.resize(offsets_[n_]);
  weights_.resize(offsets_[n_]);
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  phase_ = Phase::kScatter;
}

void TwoPassBuilder::scatter_edge(NodeId u, NodeId v, Weight w) {
  BRICS_CHECK(phase_ == Phase::kScatter);
  BRICS_CHECK(w >= 1);
  if (u >= n_ || v >= n_) {
    if (grow_) stream_changed("endpoint beyond the counted node range");
    BRICS_CHECK_MSG(u < n_ && v < n_,
                    "edge {" << u << "," << v << "} out of range, n=" << n_);
  }
  if (u == v) return;
  if (scattered_ == counted_) stream_changed("more edges than counted");
  if (cursor_[u] >= offsets_[u + 1] || cursor_[v] >= offsets_[v + 1])
    stream_changed("row overflow (per-node degree mismatch)");
  targets_[cursor_[u]] = v;
  weights_[cursor_[u]++] = w;
  targets_[cursor_[v]] = u;
  weights_[cursor_[v]++] = w;
  ++scattered_;
}

CsrGraph TwoPassBuilder::finish(AdjacencyStorage storage) {
  BRICS_CHECK(phase_ == Phase::kScatter);
  if (scattered_ != counted_) stream_changed("fewer edges than counted");
  for (NodeId v = 0; v < n_; ++v)
    if (cursor_[v] != offsets_[v + 1])
      stream_changed("row underflow (per-node degree mismatch)");
  cursor_.clear();
  cursor_.shrink_to_fit();

  // Canonicalise each row: sort by (target, weight) so the first entry of a
  // parallel-edge run carries the minimum weight, then merge the run.
  // Rows only shrink, so the later compaction moves data strictly left.
  const std::int64_t n = static_cast<std::int64_t>(n_);
  std::vector<std::uint32_t> new_deg(n_, 0);
  Weight max_w = 1;
#pragma omp parallel
  {
    std::vector<std::pair<NodeId, Weight>> row;
    Weight local_max = 1;
#pragma omp for schedule(dynamic, 1024)
    for (std::int64_t v = 0; v < n; ++v) {
      const std::uint64_t b = offsets_[v], e = offsets_[v + 1];
      row.clear();
      row.reserve(e - b);
      for (std::uint64_t i = b; i < e; ++i)
        row.emplace_back(targets_[i], weights_[i]);
      std::sort(row.begin(), row.end());
      std::uint64_t out = b;
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i > 0 && row[i].first == row[i - 1].first) continue;
        targets_[out] = row[i].first;
        weights_[out] = row[i].second;
        local_max = std::max(local_max, row[i].second);
        ++out;
      }
      new_deg[static_cast<std::size_t>(v)] =
          static_cast<std::uint32_t>(out - b);
    }
#pragma omp critical
    max_w = std::max(max_w, local_max);
  }

  // Compact the shrunken rows left and rebuild the offsets.
  std::uint64_t write = 0;
  for (NodeId v = 0; v < n_; ++v) {
    const std::uint64_t b = offsets_[v];
    const std::uint32_t d = new_deg[v];
    if (write != b) {
      std::copy_n(targets_.begin() + static_cast<std::ptrdiff_t>(b), d,
                  targets_.begin() + static_cast<std::ptrdiff_t>(write));
      std::copy_n(weights_.begin() + static_cast<std::ptrdiff_t>(b), d,
                  weights_.begin() + static_cast<std::ptrdiff_t>(write));
    }
    offsets_[v] = write;
    write += d;
  }
  offsets_[n_] = write;
  targets_.resize(write);
  targets_.shrink_to_fit();
  weights_.resize(write);
  weights_.shrink_to_fit();

  CsrGraph g;
  g.offsets_ = std::move(offsets_);
  g.targets_ = std::move(targets_);
  g.weights_ = std::move(weights_);
  g.max_weight_ = max_w;
  if (storage == AdjacencyStorage::kCompact) g.compress();

  n_ = grow_ ? 0 : n_;
  phase_ = Phase::kCount;
  counted_ = scattered_ = 0;
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  targets_.clear();
  weights_.clear();
  return g;
}

}  // namespace brics
