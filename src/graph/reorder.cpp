#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "graph/stream_build.hpp"
#include "util/check.hpp"

namespace brics {

void Permutation::validate() const {
  BRICS_CHECK(new_of.size() == old_of.size());
  const NodeId n = static_cast<NodeId>(new_of.size());
  for (NodeId v = 0; v < n; ++v) {
    BRICS_CHECK_MSG(new_of[v] < n, "new_of out of range at " << v);
    BRICS_CHECK_MSG(old_of[new_of[v]] == v,
                    "permutation not inverse at " << v);
  }
}

namespace {

Permutation from_old_order(std::vector<NodeId> old_of) {
  Permutation p;
  p.old_of = std::move(old_of);
  p.new_of.assign(p.old_of.size(), kInvalidNode);
  for (NodeId nw = 0; nw < p.old_of.size(); ++nw)
    p.new_of[p.old_of[nw]] = nw;
  p.validate();
  return p;
}

}  // namespace

Permutation bfs_order(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<std::uint8_t> seen(n, 0);

  NodeId root = 0;
  for (NodeId v = 1; v < n; ++v)
    if (g.degree(v) > g.degree(root)) root = v;

  // BFS from the hub, then sweep remaining components in id order.
  std::vector<NodeId> queue;
  auto bfs_from = [&](NodeId s) {
    seen[s] = 1;
    queue.push_back(s);
    order.push_back(s);
    for (std::size_t qi = queue.size() - 1; qi < queue.size(); ++qi) {
      g.for_neighbors(queue[qi], [&](NodeId w, Weight) {
        if (seen[w]) return;
        seen[w] = 1;
        queue.push_back(w);
        order.push_back(w);
      });
    }
  };
  if (n > 0) bfs_from(root);
  for (NodeId v = 0; v < n; ++v)
    if (!seen[v]) bfs_from(v);
  return from_old_order(std::move(order));
}

Permutation degree_order(const CsrGraph& g) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  return from_old_order(std::move(order));
}

CsrGraph apply_permutation(const CsrGraph& g, const Permutation& p) {
  BRICS_CHECK(p.new_of.size() == g.num_nodes());
  // Stream the rows through both builder passes — no edge-list copy, and
  // the result keeps the input's storage mode.
  TwoPassBuilder b(g.num_nodes());
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) b.begin_scatter();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      g.for_neighbors(v, [&](NodeId t, Weight w) {
        if (v >= t) return;
        if (pass == 0)
          b.count_edge(p.new_of[v], p.new_of[t], w);
        else
          b.scatter_edge(p.new_of[v], p.new_of[t], w);
      });
    }
  }
  return b.finish(g.storage());
}

}  // namespace brics
