// Fundamental identifier and measure types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace brics {

/// Node identifier. 32 bits covers the graph scales this library targets
/// (up to ~4 billion nodes); CSR offsets are 64-bit.
using NodeId = std::uint32_t;

/// Edge weight. Unit for raw input graphs; chain compression introduces
/// integer weights equal to the compressed path length.
using Weight = std::uint32_t;

/// A shortest-path distance. kInfDist marks "unreached".
using Dist = std::uint32_t;

/// Sum of distances (farness). 64-bit: n * diameter can exceed 32 bits.
using FarnessSum = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/// How a CsrGraph stores its adjacency. kPlain keeps parallel target/weight
/// arrays (random access, largest footprint); kCompact stores each row as
/// delta+varint bytes (sequential decode only, ~2-6 bytes per directed edge
/// on reordered graphs). Kernels never branch on this per node — traversal
/// entry points dispatch once to a template instantiation per storage mode.
enum class AdjacencyStorage : std::uint8_t { kPlain = 0, kCompact = 1 };

inline const char* to_string(AdjacencyStorage s) {
  return s == AdjacencyStorage::kPlain ? "plain" : "compact";
}

}  // namespace brics
