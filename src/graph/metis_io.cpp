#include "graph/metis_io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace brics {

CsrGraph read_metis(std::istream& in) {
  std::string line;
  // Header: first non-comment line.
  std::uint64_t n = 0, m = 0, fmt = 0;
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos || line[i] == '%') continue;
    std::istringstream hs(line);
    BRICS_CHECK_MSG(static_cast<bool>(hs >> n >> m), "bad METIS header");
    hs >> fmt;  // optional
    break;
  }
  BRICS_CHECK_MSG(n > 0, "empty or missing METIS header");
  BRICS_CHECK_MSG(fmt == 0 || fmt == 1,
                  "unsupported METIS fmt " << fmt
                                           << " (only 0/1 supported)");
  const bool weighted = fmt == 1;

  GraphBuilder b(static_cast<NodeId>(n));
  std::uint64_t node = 0, directed_edges = 0;
  while (node < n && std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i != std::string::npos && line[i] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t nb;
    while (ls >> nb) {
      BRICS_CHECK_MSG(nb >= 1 && nb <= n,
                      "neighbour " << nb << " out of range at node "
                                   << node + 1);
      std::uint64_t w = 1;
      if (weighted)
        BRICS_CHECK_MSG(static_cast<bool>(ls >> w),
                        "missing edge weight at node " << node + 1);
      BRICS_CHECK_MSG(w >= 1, "bad weight at node " << node + 1);
      ++directed_edges;
      // Add each undirected edge once (from its smaller endpoint).
      if (node < nb - 1)
        b.add_edge(static_cast<NodeId>(node), static_cast<NodeId>(nb - 1),
                   static_cast<Weight>(w));
    }
    ++node;
  }
  BRICS_CHECK_MSG(node == n, "expected " << n << " adjacency lines, got "
                                         << node);
  BRICS_CHECK_MSG(directed_edges == 2 * m,
                  "header claims " << m << " edges but lists "
                                   << directed_edges << " endpoints");
  CsrGraph g = b.build();
  BRICS_CHECK_MSG(g.num_edges() == m,
                  "asymmetric adjacency: " << g.num_edges()
                                           << " undirected edges vs header "
                                           << m);
  return g;
}

CsrGraph read_metis_file(const std::string& path) {
  std::ifstream in(path);
  BRICS_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return read_metis(in);
}

void write_metis(const CsrGraph& g, std::ostream& out) {
  const bool weighted = !g.unit_weights();
  out << g.num_nodes() << ' ' << g.num_edges();
  if (weighted) out << " 1";
  out << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nb = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (i) out << ' ';
      out << nb[i] + 1;
      if (weighted) out << ' ' << ws[i];
    }
    out << '\n';
  }
}

void write_metis_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  BRICS_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_metis(g, out);
  out.flush();
  BRICS_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace brics
