#include "graph/metis_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// Strict unsigned-decimal parse (rejects signs, garbage, 64-bit overflow);
// istream's operator>> would wrap "-1" into a huge unsigned value instead.
bool parse_u64(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  const char* first = tok.data();
  const char* last = first + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

[[noreturn]] void bad_metis(const std::string& why) {
  throw InputError("bad METIS input: " + why);
}

}  // namespace

CsrGraph read_metis(std::istream& in) {
  BRICS_FAILPOINT("io.metis");
  std::string line;
  // Header: first non-comment line.
  std::uint64_t n = 0, m = 0, fmt = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos || line[i] == '%') continue;
    std::istringstream hs(line);
    std::string tn, tm, tf;
    hs >> tn >> tm >> tf;
    if (tm.empty() || !parse_u64(tn, n) || !parse_u64(tm, m))
      bad_metis("malformed header '" + line + "'");
    if (!tf.empty() && !parse_u64(tf, fmt))
      bad_metis("malformed header fmt '" + line + "'");
    have_header = true;
    break;
  }
  if (!have_header || n == 0) bad_metis("empty or missing header");
  // Node ids are 1-based in the file and narrowed to NodeId below; reserve
  // the kInvalidNode sentinel.
  if (n >= static_cast<std::uint64_t>(kInvalidNode))
    bad_metis("node count " + std::to_string(n) +
              " exceeds 32-bit NodeId range");
  if (fmt != 0 && fmt != 1)
    bad_metis("unsupported fmt " + std::to_string(fmt) +
              " (only 0/1 supported)");
  const bool weighted = fmt == 1;

  GraphBuilder b(static_cast<NodeId>(n));
  std::uint64_t node = 0, directed_edges = 0;
  while (node < n && std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i != std::string::npos && line[i] == '%') continue;
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) {
      std::uint64_t nb = 0;
      if (!parse_u64(tok, nb))
        bad_metis("malformed neighbour '" + tok + "' at node " +
                  std::to_string(node + 1));
      if (nb < 1 || nb > n)
        bad_metis("neighbour " + std::to_string(nb) +
                  " out of range at node " + std::to_string(node + 1));
      std::uint64_t w = 1;
      if (weighted) {
        if (!(ls >> tok) || !parse_u64(tok, w))
          bad_metis("missing or malformed edge weight at node " +
                    std::to_string(node + 1));
      }
      if (w < 1 || w > std::numeric_limits<Weight>::max())
        bad_metis("weight out of range at node " + std::to_string(node + 1));
      ++directed_edges;
      // Add each undirected edge once (from its smaller endpoint).
      if (node < nb - 1)
        b.add_edge(static_cast<NodeId>(node), static_cast<NodeId>(nb - 1),
                   static_cast<Weight>(w));
    }
    ++node;
  }
  if (in.bad()) throw InputError("I/O error while reading METIS input");
  if (node != n)
    bad_metis("expected " + std::to_string(n) + " adjacency lines, got " +
              std::to_string(node));
  if (directed_edges != 2 * m)
    bad_metis("header claims " + std::to_string(m) + " edges but lists " +
              std::to_string(directed_edges) + " endpoints");
  CsrGraph g = b.build();
  if (g.num_edges() != m)
    bad_metis("asymmetric adjacency: " + std::to_string(g.num_edges()) +
              " undirected edges vs header " + std::to_string(m));
  return g;
}

CsrGraph read_metis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw InputError("cannot open '" + path + "'");
  return read_metis(in);
}

void write_metis(const CsrGraph& g, std::ostream& out) {
  const bool weighted = !g.unit_weights();
  out << g.num_nodes() << ' ' << g.num_edges();
  if (weighted) out << " 1";
  out << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nb = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (i) out << ' ';
      out << nb[i] + 1;
      if (weighted) out << ' ' << ws[i];
    }
    out << '\n';
  }
}

void write_metis_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.good())
    throw InputError("cannot open '" + path + "' for writing");
  write_metis(g, out);
  out.flush();
  if (!out.good()) throw InputError("write to '" + path + "' failed");
}

}  // namespace brics
