#include "graph/metis_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "graph/stream_build.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// Strict unsigned-decimal parse (rejects signs, garbage, 64-bit overflow);
// istream's operator>> would wrap "-1" into a huge unsigned value instead.
bool parse_u64(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  const char* first = tok.data();
  const char* last = first + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

[[noreturn]] void bad_metis(const std::string& why) {
  throw InputError("bad METIS input: " + why);
}

struct MetisHeader {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  bool weighted = false;
};

MetisHeader parse_header(std::istream& in) {
  std::string line;
  std::uint64_t n = 0, m = 0, fmt = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos || line[i] == '%') continue;
    std::istringstream hs(line);
    std::string tn, tm, tf;
    hs >> tn >> tm >> tf;
    if (tm.empty() || !parse_u64(tn, n) || !parse_u64(tm, m))
      bad_metis("malformed header '" + line + "'");
    if (!tf.empty() && !parse_u64(tf, fmt))
      bad_metis("malformed header fmt '" + line + "'");
    have_header = true;
    break;
  }
  if (!have_header || n == 0) bad_metis("empty or missing header");
  // Node ids are 1-based in the file and narrowed to NodeId below; reserve
  // the kInvalidNode sentinel.
  if (n >= static_cast<std::uint64_t>(kInvalidNode))
    bad_metis("node count " + std::to_string(n) +
              " exceeds 32-bit NodeId range");
  if (fmt != 0 && fmt != 1)
    bad_metis("unsupported fmt " + std::to_string(fmt) +
              " (only 0/1 supported)");
  return {n, m, fmt == 1};
}

// Parse the adjacency body, invoking on_edge(u, v, w) once per undirected
// edge (from its smaller endpoint). All format and count validation fires
// here, identically in both passes of the streaming build.
template <class Fn>
void parse_body(std::istream& in, const MetisHeader& h, Fn&& on_edge) {
  std::string line;
  std::uint64_t node = 0, directed_edges = 0;
  while (node < h.n && std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i != std::string::npos && line[i] == '%') continue;
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) {
      std::uint64_t nb = 0;
      if (!parse_u64(tok, nb))
        bad_metis("malformed neighbour '" + tok + "' at node " +
                  std::to_string(node + 1));
      if (nb < 1 || nb > h.n)
        bad_metis("neighbour " + std::to_string(nb) +
                  " out of range at node " + std::to_string(node + 1));
      std::uint64_t w = 1;
      if (h.weighted) {
        if (!(ls >> tok) || !parse_u64(tok, w))
          bad_metis("missing or malformed edge weight at node " +
                    std::to_string(node + 1));
      }
      if (w < 1 || w > std::numeric_limits<Weight>::max())
        bad_metis("weight out of range at node " + std::to_string(node + 1));
      ++directed_edges;
      // Add each undirected edge once (from its smaller endpoint).
      if (node < nb - 1)
        on_edge(static_cast<NodeId>(node), static_cast<NodeId>(nb - 1),
                static_cast<Weight>(w));
    }
    ++node;
  }
  if (in.bad()) throw InputError("I/O error while reading METIS input");
  if (node != h.n)
    bad_metis("expected " + std::to_string(h.n) + " adjacency lines, got " +
              std::to_string(node));
  if (directed_edges != 2 * h.m)
    bad_metis("header claims " + std::to_string(h.m) + " edges but lists " +
              std::to_string(directed_edges) + " endpoints");
}

void check_symmetric(const CsrGraph& g, std::uint64_t m) {
  if (g.num_edges() != m)
    bad_metis("asymmetric adjacency: " + std::to_string(g.num_edges()) +
              " undirected edges vs header " + std::to_string(m));
}

}  // namespace

CsrGraph read_metis(std::istream& in, AdjacencyStorage storage) {
  BRICS_FAILPOINT("io.metis");
  const std::istream::pos_type start = in.tellg();
  if (start != std::istream::pos_type(-1)) {
    // Streaming two-pass build: header + body parsed twice (a divergent
    // replay is caught by the builder), no intermediate edge vector.
    MetisHeader h = parse_header(in);
    TwoPassBuilder b(static_cast<NodeId>(h.n));
    parse_body(in, h,
               [&](NodeId u, NodeId v, Weight w) { b.count_edge(u, v, w); });
    in.clear();
    in.seekg(start);
    if (!in.good())
      throw InputError("METIS stream lost its rewind position");
    parse_header(in);
    b.begin_scatter();
    parse_body(in, h,
               [&](NodeId u, NodeId v, Weight w) { b.scatter_edge(u, v, w); });
    CsrGraph g = b.finish(storage);
    check_symmetric(g, h.m);
    return g;
  }
  // Non-seekable stream (pipe): buffer edges, same canonical result.
  MetisHeader h = parse_header(in);
  GraphBuilder b(static_cast<NodeId>(h.n));
  parse_body(in, h,
             [&](NodeId u, NodeId v, Weight w) { b.add_edge(u, v, w); });
  CsrGraph g = b.build(storage);
  check_symmetric(g, h.m);
  return g;
}

CsrGraph read_metis_file(const std::string& path, AdjacencyStorage storage) {
  std::ifstream in(path);
  if (!in.good()) throw InputError("cannot open '" + path + "'");
  return read_metis(in, storage);
}

void write_metis(const CsrGraph& g, std::ostream& out) {
  const bool weighted = !g.unit_weights();
  out << g.num_nodes() << ' ' << g.num_edges();
  if (weighted) out << " 1";
  out << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool first = true;
    g.for_neighbors(v, [&](NodeId t, Weight w) {
      if (!first) out << ' ';
      first = false;
      out << t + 1;
      if (weighted) out << ' ' << w;
    });
    out << '\n';
  }
}

void write_metis_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.good())
    throw InputError("cannot open '" + path + "' for writing");
  write_metis(g, out);
  out.flush();
  if (!out.good()) throw InputError("write to '" + path + "' failed");
}

}  // namespace brics
