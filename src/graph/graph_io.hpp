// Edge-list file I/O compatible with SNAP and UF sparse-matrix exports.
//
// Format: whitespace-separated "u v [w]" per line; lines starting with '#'
// or '%' are comments. Node ids are remapped to a dense [0, n) range in
// first-appearance order. Directed inputs become undirected (the paper's
// normalisation), and the loader can optionally restrict to the largest
// connected component or stitch components together.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"

namespace brics {

/// How to normalise a possibly-disconnected input.
enum class ConnectPolicy {
  kKeepAsIs,           ///< no change; caller handles connectivity
  kLargestComponent,   ///< keep only the largest connected component
  kStitchComponents,   ///< add edges between components (paper's choice)
};

/// Parse an edge list from a stream. Throws InputError (exec/errors.hpp) on
/// malformed input: garbage or signed tokens, out-of-range weights, or more
/// distinct ids than NodeId can address.
///
/// Rewindable streams (files, string streams) are parsed twice and fed
/// straight into the streaming two-pass builder — no intermediate edge
/// vector; non-seekable streams fall back to buffering. With kCompact the
/// returned graph is compressed after the connect policy runs.
CsrGraph read_edge_list(std::istream& in,
                        ConnectPolicy policy = ConnectPolicy::kStitchComponents,
                        AdjacencyStorage storage = AdjacencyStorage::kPlain);

/// Parse an edge list from a file path.
CsrGraph read_edge_list_file(const std::string& path,
                             ConnectPolicy policy = ConnectPolicy::kStitchComponents,
                             AdjacencyStorage storage = AdjacencyStorage::kPlain);

/// Write "u v w" lines (w omitted when 1).
void write_edge_list(const CsrGraph& g, std::ostream& out);

/// Write to a file path.
void write_edge_list_file(const CsrGraph& g, const std::string& path);

}  // namespace brics
