#include "graph/adjacency.hpp"

#include <sstream>

namespace brics {

std::uint64_t varint_decode_checked(const std::uint8_t*& p,
                                    const std::uint8_t* end) {
  std::uint64_t x = 0;
  unsigned shift = 0;
  std::size_t len = 0;
  std::uint8_t byte = 0;
  do {
    if (p == end) throw InputError("varint truncated: stream ends mid-value");
    if (++len > kMaxVarintBytes)
      throw InputError("varint too long: more than 10 bytes");
    byte = *p++;
    const std::uint64_t group = byte & 0x7F;
    // Byte 10 may only contribute the 64th bit (value 0 or 1).
    if (len == kMaxVarintBytes && group > 1)
      throw InputError("varint overflows 64 bits");
    x |= group << shift;
    shift += 7;
  } while (byte & 0x80);
  if (len > 1 && (byte & 0x7F) == 0) {
    std::ostringstream os;
    os << "varint overlong: " << len << "-byte encoding of a shorter value";
    throw InputError(os.str());
  }
  return x;
}

}  // namespace brics
