#include "graph/csr_graph.hpp"

#include <algorithm>

#include "graph/stream_build.hpp"
#include "util/check.hpp"

namespace brics {

namespace {

std::size_t varint_len(std::uint64_t x) {
  std::size_t n = 1;
  while (x >= 0x80) {
    x >>= 7;
    ++n;
  }
  return n;
}

std::uint8_t* varint_write(std::uint8_t* p, std::uint64_t x) {
  while (x >= 0x80) {
    *p++ = static_cast<std::uint8_t>(x) | 0x80;
    x >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(x);
  return p;
}

}  // namespace

bool CsrGraph::find_edge(NodeId u, NodeId v, Weight& w) const {
  if (storage_ == AdjacencyStorage::kPlain) {
    auto nb = neighbors(u);
    auto it = std::lower_bound(nb.begin(), nb.end(), v);
    if (it == nb.end() || *it != v) return false;
    w = weights(u)[static_cast<std::size_t>(it - nb.begin())];
    return true;
  }
  // Rows are sorted, so the sequential decode can stop at the first
  // target past v.
  auto c = compact_view().cursor(u);
  for (; !c.done(); c.advance()) {
    if (c.target() >= v) {
      if (c.target() != v) return false;
      w = c.weight();
      return true;
    }
  }
  return false;
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  Weight w = 0;
  return find_edge(u, v, w);
}

Weight CsrGraph::edge_weight(NodeId u, NodeId v) const {
  Weight w = 0;
  BRICS_CHECK_MSG(find_edge(u, v, w),
                  "edge {" << u << "," << v << "} absent");
  return w;
}

RowRef CsrGraph::row(NodeId v, RowScratch& scratch) const {
  if (storage_ == AdjacencyStorage::kPlain) return {neighbors(v), weights(v)};
  const std::uint32_t deg = degree(v);
  scratch.nbrs.resize(deg);
  scratch.wts.resize(deg);
  std::size_t i = 0;
  compact_view().for_neighbors(v, [&](NodeId t, Weight w) {
    scratch.nbrs[i] = t;
    scratch.wts[i] = w;
    ++i;
  });
  return {scratch.nbrs, scratch.wts};
}

void CsrGraph::compress() {
  if (storage_ == AdjacencyStorage::kCompact) return;
  const NodeId n = num_nodes();
  const bool unit = unit_weights();
  byte_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  const std::int64_t sn = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < sn; ++v) {
    const std::uint64_t b = offsets_[v], e = offsets_[v + 1];
    std::uint64_t bytes = 0;
    for (std::uint64_t i = b; i < e; ++i) {
      const std::uint64_t gap =
          i == b ? targets_[i] : targets_[i] - targets_[i - 1] - 1;
      bytes += varint_len(gap);
      if (!unit) bytes += varint_len(weights_[i] - 1);
    }
    byte_offsets_[v + 1] = bytes;
  }
  for (NodeId v = 0; v < n; ++v) byte_offsets_[v + 1] += byte_offsets_[v];
  adj_bytes_.resize(byte_offsets_[n]);

#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < sn; ++v) {
    const std::uint64_t b = offsets_[v], e = offsets_[v + 1];
    std::uint8_t* p = adj_bytes_.data() + byte_offsets_[v];
    for (std::uint64_t i = b; i < e; ++i) {
      const std::uint64_t gap =
          i == b ? targets_[i] : targets_[i] - targets_[i - 1] - 1;
      p = varint_write(p, gap);
      if (!unit) p = varint_write(p, weights_[i] - 1);
    }
    BRICS_CHECK(p == adj_bytes_.data() + byte_offsets_[v + 1]);
    // Re-read the row with the checked decoder and compare against the
    // plain arrays before they are released: the unchecked hot decoders
    // run only over bytes this pass has accepted.
    const std::uint8_t* q = adj_bytes_.data() + byte_offsets_[v];
    const std::uint8_t* qe = adj_bytes_.data() + byte_offsets_[v + 1];
    NodeId prev = 0;
    for (std::uint64_t i = b; i < e; ++i) {
      const std::uint64_t gap = varint_decode_checked(q, qe);
      const NodeId t = i == b ? static_cast<NodeId>(gap)
                              : static_cast<NodeId>(prev + gap + 1);
      BRICS_CHECK(t == targets_[i]);
      const Weight w =
          unit ? 1 : static_cast<Weight>(varint_decode_checked(q, qe) + 1);
      BRICS_CHECK(w == weights_[i]);
      prev = t;
    }
    BRICS_CHECK(q == qe);
  }

  targets_.clear();
  targets_.shrink_to_fit();
  weights_.clear();
  weights_.shrink_to_fit();
  storage_ = AdjacencyStorage::kCompact;
}

void CsrGraph::decompress() {
  if (storage_ == AdjacencyStorage::kPlain) return;
  const NodeId n = num_nodes();
  targets_.resize(offsets_.back());
  weights_.resize(offsets_.back());
  const CompactAdjacency view = compact_view();
  const std::int64_t sn = static_cast<std::int64_t>(n);
  // Static schedule: each thread first-touches the row range it fills.
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < sn; ++v) {
    std::uint64_t i = offsets_[v];
    view.for_neighbors(static_cast<NodeId>(v), [&](NodeId t, Weight w) {
      targets_[i] = t;
      weights_[i] = w;
      ++i;
    });
  }
  adj_bytes_.clear();
  adj_bytes_.shrink_to_fit();
  byte_offsets_.clear();
  byte_offsets_.shrink_to_fit();
  storage_ = AdjacencyStorage::kPlain;
}

std::uint64_t CsrGraph::adjacency_bytes() const {
  if (storage_ == AdjacencyStorage::kPlain)
    return targets_.size() * sizeof(NodeId) +
           weights_.size() * sizeof(Weight);
  return adj_bytes_.size();
}

GraphMemory CsrGraph::memory() const {
  GraphMemory m;
  m.offsets_bytes = offsets_.size() * sizeof(std::uint64_t);
  m.targets_bytes = targets_.size() * sizeof(NodeId);
  m.weights_bytes = weights_.size() * sizeof(Weight);
  m.adj_payload_bytes = adj_bytes_.size();
  m.byte_offsets_bytes = byte_offsets_.size() * sizeof(std::uint64_t);
  return m;
}

void CsrGraph::validate() const {
  const NodeId n = num_nodes();
  BRICS_CHECK(offsets_.size() == static_cast<std::size_t>(n) + 1);
  BRICS_CHECK(offsets_.front() == 0);
  BRICS_CHECK(offsets_.back() % 2 == 0);
  if (storage_ == AdjacencyStorage::kPlain) {
    BRICS_CHECK(offsets_.back() == targets_.size());
    BRICS_CHECK(targets_.size() == weights_.size());
    BRICS_CHECK(adj_bytes_.empty() && byte_offsets_.empty());
  } else {
    BRICS_CHECK(targets_.empty() && weights_.empty());
    BRICS_CHECK(byte_offsets_.size() == static_cast<std::size_t>(n) + 1);
    BRICS_CHECK(byte_offsets_.front() == 0);
    BRICS_CHECK(byte_offsets_.back() == adj_bytes_.size());
  }
  RowScratch scratch;
  for (NodeId v = 0; v < n; ++v) {
    if (storage_ == AdjacencyStorage::kCompact) {
      // Re-decode the raw bytes with the checked decoder: malformed rows
      // must raise InputError here, never reach the unchecked decoders.
      BRICS_CHECK_MSG(byte_offsets_[v] <= byte_offsets_[v + 1],
                      "byte offsets not monotone at node " << v);
      const std::uint8_t* p = adj_bytes_.data() + byte_offsets_[v];
      const std::uint8_t* pe = adj_bytes_.data() + byte_offsets_[v + 1];
      for (std::uint32_t i = 0, d = degree(v); i < d; ++i) {
        varint_decode_checked(p, pe);
        if (!unit_weights()) varint_decode_checked(p, pe);
      }
      BRICS_CHECK_MSG(p == pe, "trailing bytes in row of node " << v);
    }
    const RowRef r = row(v, scratch);
    BRICS_CHECK(r.nbrs.size() == degree(v));
    for (std::size_t i = 0; i < r.nbrs.size(); ++i) {
      BRICS_CHECK_MSG(r.nbrs[i] < n, "target out of range at node " << v);
      BRICS_CHECK_MSG(r.nbrs[i] != v, "self loop at node " << v);
      BRICS_CHECK_MSG(i == 0 || r.nbrs[i - 1] < r.nbrs[i],
                      "adjacency of " << v << " not strictly sorted");
      BRICS_CHECK_MSG(r.wts[i] >= 1, "zero weight at node " << v);
      BRICS_CHECK_MSG(r.wts[i] <= max_weight_,
                      "weight above max_weight at node " << v);
      // Symmetry: the reverse edge must exist with equal weight.
      BRICS_CHECK_MSG(edge_weight(r.nbrs[i], v) == r.wts[i],
                      "asymmetric edge {" << v << "," << r.nbrs[i] << "}");
    }
  }
}

std::vector<Edge> CsrGraph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for_neighbors(v, [&](NodeId t, Weight w) {
      if (v < t) out.push_back({v, t, w});
    });
  }
  return out;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  BRICS_CHECK_MSG(u < n_ && v < n_,
                  "edge {" << u << "," << v << "} out of range, n=" << n_);
  BRICS_CHECK(w >= 1);
  edges_.push_back({u, v, w});
}

void GraphBuilder::add_edges(std::span<const Edge> edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const Edge& e : edges) add_edge(e.u, e.v, e.w);
}

CsrGraph GraphBuilder::build(AdjacencyStorage storage) {
  TwoPassBuilder b(n_);
  for (const Edge& e : edges_) b.count_edge(e.u, e.v, e.w);
  b.begin_scatter();
  for (const Edge& e : edges_) b.scatter_edge(e.u, e.v, e.w);
  edges_.clear();
  edges_.shrink_to_fit();
  return b.finish(storage);
}

}  // namespace brics
