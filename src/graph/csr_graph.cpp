#include "graph/csr_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace brics {

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

Weight CsrGraph::edge_weight(NodeId u, NodeId v) const {
  auto nb = neighbors(u);
  auto it = std::lower_bound(nb.begin(), nb.end(), v);
  BRICS_CHECK_MSG(it != nb.end() && *it == v,
                  "edge {" << u << "," << v << "} absent");
  return weights(u)[static_cast<std::size_t>(it - nb.begin())];
}

void CsrGraph::validate() const {
  const NodeId n = num_nodes();
  BRICS_CHECK(offsets_.size() == static_cast<std::size_t>(n) + 1);
  BRICS_CHECK(offsets_.front() == 0);
  BRICS_CHECK(offsets_.back() == targets_.size());
  BRICS_CHECK(targets_.size() == weights_.size());
  BRICS_CHECK(targets_.size() % 2 == 0);
  for (NodeId v = 0; v < n; ++v) {
    auto nb = neighbors(v);
    auto ws = weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      BRICS_CHECK_MSG(nb[i] < n, "target out of range at node " << v);
      BRICS_CHECK_MSG(nb[i] != v, "self loop at node " << v);
      BRICS_CHECK_MSG(i == 0 || nb[i - 1] < nb[i],
                      "adjacency of " << v << " not strictly sorted");
      BRICS_CHECK_MSG(ws[i] >= 1, "zero weight at node " << v);
      // Symmetry: the reverse edge must exist with equal weight.
      BRICS_CHECK_MSG(edge_weight(nb[i], v) == ws[i],
                      "asymmetric edge {" << v << "," << nb[i] << "}");
    }
  }
}

std::vector<Edge> CsrGraph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    auto nb = neighbors(v);
    auto ws = weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i)
      if (v < nb[i]) out.push_back({v, nb[i], ws[i]});
  }
  return out;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  BRICS_CHECK_MSG(u < n_ && v < n_,
                  "edge {" << u << "," << v << "} out of range, n=" << n_);
  BRICS_CHECK(w >= 1);
  edges_.push_back({u, v, w});
}

void GraphBuilder::add_edges(std::span<const Edge> edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const Edge& e : edges) add_edge(e.u, e.v, e.w);
}

CsrGraph GraphBuilder::build() {
  // Canonicalise: u < v, drop self loops.
  std::vector<Edge> es;
  es.reserve(edges_.size());
  for (Edge e : edges_) {
    if (e.u == e.v) continue;
    if (e.u > e.v) std::swap(e.u, e.v);
    es.push_back(e);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(es.begin(), es.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : (a.v != b.v ? a.v < b.v : a.w < b.w);
  });
  // Merge parallel edges, keeping the minimum weight (sorted so first wins).
  es.erase(std::unique(es.begin(), es.end(),
                       [](const Edge& a, const Edge& b) {
                         return a.u == b.u && a.v == b.v;
                       }),
           es.end());

  CsrGraph g;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& e : es) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (NodeId v = 0; v < n_; ++v) g.offsets_[v + 1] += g.offsets_[v];

  g.targets_.resize(es.size() * 2);
  g.weights_.resize(es.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                    g.offsets_.end() - 1);
  g.max_weight_ = 1;
  for (const Edge& e : es) {
    g.targets_[cursor[e.u]] = e.v;
    g.weights_[cursor[e.u]++] = e.w;
    g.targets_[cursor[e.v]] = e.u;
    g.weights_[cursor[e.v]++] = e.w;
    g.max_weight_ = std::max(g.max_weight_, e.w);
  }
  // Edges were added in ascending-u order per bucket of u but the v-side
  // insertions interleave; sort each adjacency list by target.
  for (NodeId v = 0; v < n_; ++v) {
    auto b = g.offsets_[v], e = g.offsets_[v + 1];
    std::vector<std::pair<NodeId, Weight>> row;
    row.reserve(e - b);
    for (auto i = b; i < e; ++i)
      row.emplace_back(g.targets_[i], g.weights_[i]);
    std::sort(row.begin(), row.end());
    for (auto i = b; i < e; ++i) {
      g.targets_[i] = row[i - b].first;
      g.weights_[i] = row[i - b].second;
    }
  }
  return g;
}

}  // namespace brics
