// Node relabelling for cache locality.
//
// Real-world graph ids are often arbitrary; relabelling nodes so that
// neighbours get nearby ids makes CSR traversals markedly faster. Two
// classic orders are provided:
//   - BFS order: ids assigned in traversal order from a high-degree root
//     (localises frontiers)
//   - degree order: ids descending by degree (hubs and their hot adjacency
//     stay in cache)
// A Permutation maps between spaces so centrality results can be reported
// in the original ids.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace brics {

/// A node relabelling: new_of[old] and old_of[new], mutually inverse.
struct Permutation {
  std::vector<NodeId> new_of;
  std::vector<NodeId> old_of;

  /// Validate that the permutation is a bijection on [0, n).
  void validate() const;

  /// Pull values indexed by new ids back to original-id order.
  template <typename T>
  std::vector<T> to_original(const std::vector<T>& by_new) const {
    std::vector<T> out(by_new.size());
    for (NodeId old = 0; old < out.size(); ++old)
      out[old] = by_new[new_of[old]];
    return out;
  }
};

/// BFS relabelling from the highest-degree node (unreached nodes appended
/// in id order).
Permutation bfs_order(const CsrGraph& g);

/// Descending-degree relabelling (ties by original id).
Permutation degree_order(const CsrGraph& g);

/// Apply a permutation: edge {u, v} becomes {new_of[u], new_of[v]}.
CsrGraph apply_permutation(const CsrGraph& g, const Permutation& p);

}  // namespace brics
