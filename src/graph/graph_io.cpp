#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace brics {

CsrGraph read_edge_list(std::istream& in, ConnectPolicy policy) {
  std::unordered_map<std::uint64_t, NodeId> ids;
  std::vector<Edge> edges;
  std::string line;
  std::size_t lineno = 0;

  auto intern = [&](std::uint64_t raw) {
    auto [it, fresh] = ids.emplace(raw, static_cast<NodeId>(ids.size()));
    (void)fresh;
    return it->second;
  };

  while (std::getline(in, line)) {
    ++lineno;
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#' || line[i] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t a = 0, b = 0;
    BRICS_CHECK_MSG(static_cast<bool>(ls >> a >> b),
                    "malformed edge at line " << lineno << ": '" << line
                                              << "'");
    std::uint64_t w = 1;
    ls >> w;  // optional; stays 1 on failure
    BRICS_CHECK_MSG(w >= 1 && w <= std::numeric_limits<Weight>::max(),
                    "bad weight at line " << lineno);
    edges.push_back({intern(a), intern(b), static_cast<Weight>(w)});
  }

  GraphBuilder builder(static_cast<NodeId>(ids.size()));
  builder.add_edges(edges);
  CsrGraph g = builder.build();

  switch (policy) {
    case ConnectPolicy::kKeepAsIs:
      return g;
    case ConnectPolicy::kLargestComponent:
      return largest_component(g).graph;
    case ConnectPolicy::kStitchComponents:
      return make_connected(g);
  }
  return g;
}

CsrGraph read_edge_list_file(const std::string& path, ConnectPolicy policy) {
  std::ifstream in(path);
  BRICS_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return read_edge_list(in, policy);
}

void write_edge_list(const CsrGraph& g, std::ostream& out) {
  for (const Edge& e : g.edge_list()) {
    out << e.u << ' ' << e.v;
    if (e.w != 1) out << ' ' << e.w;
    out << '\n';
  }
}

void write_edge_list_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  BRICS_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_edge_list(g, out);
  out.flush();
  BRICS_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace brics
