#include "graph/graph_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// Strict unsigned-decimal parse. Rejects signs, garbage, and anything that
// overflows 64 bits — istream's operator>> silently wraps negative input
// into huge unsigned values, which is exactly the UB-adjacent narrowing
// this loader must never feed downstream.
bool parse_u64(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  const char* first = tok.data();
  const char* last = first + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

[[noreturn]] void bad_input(std::size_t lineno, const std::string& line,
                            const char* why) {
  std::ostringstream os;
  os << "bad edge list input at line " << lineno << " (" << why << "): '"
     << line << "'";
  throw InputError(os.str());
}

}  // namespace

CsrGraph read_edge_list(std::istream& in, ConnectPolicy policy) {
  BRICS_FAILPOINT("io.edge_list");
  std::unordered_map<std::uint64_t, NodeId> ids;
  std::vector<Edge> edges;
  std::string line;
  std::size_t lineno = 0;

  auto intern = [&](std::uint64_t raw, std::size_t ln,
                    const std::string& l) {
    auto [it, fresh] = ids.emplace(raw, static_cast<NodeId>(ids.size()));
    // The dense id must stay below the kInvalidNode sentinel: one more
    // distinct raw id than NodeId can address would otherwise wrap and
    // silently alias node 0.
    if (fresh && it->second == kInvalidNode)
      bad_input(ln, l, "too many distinct node ids for 32-bit NodeId");
    return it->second;
  };

  while (std::getline(in, line)) {
    ++lineno;
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#' || line[i] == '%') continue;
    std::istringstream ls(line);
    std::string ta, tb, tw, extra;
    ls >> ta >> tb;
    std::uint64_t a = 0, b = 0, w = 1;
    if (tb.empty() || !parse_u64(ta, a) || !parse_u64(tb, b))
      bad_input(lineno, line, "malformed endpoints");
    if (ls >> tw) {
      if (!parse_u64(tw, w)) bad_input(lineno, line, "malformed weight");
      if (ls >> extra) bad_input(lineno, line, "trailing tokens");
    }
    if (w < 1 || w > std::numeric_limits<Weight>::max())
      bad_input(lineno, line, "weight out of range");
    edges.push_back({intern(a, lineno, line), intern(b, lineno, line),
                     static_cast<Weight>(w)});
  }
  if (in.bad()) throw InputError("I/O error while reading edge list");

  GraphBuilder builder(static_cast<NodeId>(ids.size()));
  builder.add_edges(edges);
  CsrGraph g = builder.build();

  switch (policy) {
    case ConnectPolicy::kKeepAsIs:
      return g;
    case ConnectPolicy::kLargestComponent:
      return largest_component(g).graph;
    case ConnectPolicy::kStitchComponents:
      return make_connected(g);
  }
  return g;
}

CsrGraph read_edge_list_file(const std::string& path, ConnectPolicy policy) {
  std::ifstream in(path);
  if (!in.good()) throw InputError("cannot open '" + path + "'");
  return read_edge_list(in, policy);
}

void write_edge_list(const CsrGraph& g, std::ostream& out) {
  for (const Edge& e : g.edge_list()) {
    out << e.u << ' ' << e.v;
    if (e.w != 1) out << ' ' << e.w;
    out << '\n';
  }
}

void write_edge_list_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.good())
    throw InputError("cannot open '" + path + "' for writing");
  write_edge_list(g, out);
  out.flush();
  if (!out.good()) throw InputError("write to '" + path + "' failed");
}

}  // namespace brics
