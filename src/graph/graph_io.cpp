#include "graph/graph_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "graph/connectivity.hpp"
#include "graph/stream_build.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// Strict unsigned-decimal parse. Rejects signs, garbage, and anything that
// overflows 64 bits — istream's operator>> silently wraps negative input
// into huge unsigned values, which is exactly the UB-adjacent narrowing
// this loader must never feed downstream.
bool parse_u64(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  const char* first = tok.data();
  const char* last = first + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

[[noreturn]] void bad_input(std::size_t lineno, const std::string& line,
                            const char* why) {
  std::ostringstream os;
  os << "bad edge list input at line " << lineno << " (" << why << "): '"
     << line << "'";
  throw InputError(os.str());
}

// One full parse of the stream, invoking on_edge(a, b, w, lineno, line)
// with raw (un-interned) 64-bit endpoints. All format validation lives
// here so both passes of the streaming build reject identical inputs at
// identical lines.
template <class Fn>
void parse_edge_lines(std::istream& in, Fn&& on_edge) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#' || line[i] == '%') continue;
    std::istringstream ls(line);
    std::string ta, tb, tw, extra;
    ls >> ta >> tb;
    std::uint64_t a = 0, b = 0, w = 1;
    if (tb.empty() || !parse_u64(ta, a) || !parse_u64(tb, b))
      bad_input(lineno, line, "malformed endpoints");
    if (ls >> tw) {
      if (!parse_u64(tw, w)) bad_input(lineno, line, "malformed weight");
      if (ls >> extra) bad_input(lineno, line, "trailing tokens");
    }
    if (w < 1 || w > std::numeric_limits<Weight>::max())
      bad_input(lineno, line, "weight out of range");
    on_edge(a, b, static_cast<Weight>(w), lineno, line);
  }
  if (in.bad()) throw InputError("I/O error while reading edge list");
}

CsrGraph apply_policy(CsrGraph g, ConnectPolicy policy) {
  switch (policy) {
    case ConnectPolicy::kKeepAsIs:
      return g;
    case ConnectPolicy::kLargestComponent:
      return largest_component(g).graph;
    case ConnectPolicy::kStitchComponents:
      return make_connected(g);
  }
  return g;
}

}  // namespace

CsrGraph read_edge_list(std::istream& in, ConnectPolicy policy,
                        AdjacencyStorage storage) {
  BRICS_FAILPOINT("io.edge_list");
  std::unordered_map<std::uint64_t, NodeId> ids;

  auto intern = [&](std::uint64_t raw, std::size_t ln,
                    const std::string& l) {
    auto [it, fresh] = ids.emplace(raw, static_cast<NodeId>(ids.size()));
    // The dense id must stay below the kInvalidNode sentinel: one more
    // distinct raw id than NodeId can address would otherwise wrap and
    // silently alias node 0.
    if (fresh && it->second == kInvalidNode)
      bad_input(ln, l, "too many distinct node ids for 32-bit NodeId");
    return it->second;
  };

  // Streaming two-pass build for rewindable streams (files, string
  // streams): parse once to intern ids and count degrees, rewind, parse
  // again to scatter. Peak memory is the CSR arrays plus the id map —
  // never an Edge vector.
  const std::istream::pos_type start = in.tellg();
  CsrGraph g;
  if (start != std::istream::pos_type(-1)) {
    TwoPassBuilder b(TwoPassBuilder::kGrow);
    parse_edge_lines(in, [&](std::uint64_t a, std::uint64_t bb, Weight w,
                             std::size_t ln, const std::string& l) {
      // Sequence the interns: argument evaluation order is unspecified,
      // and dense ids must be assigned first-seen-first (the id contract
      // callers and goldens rely on).
      const NodeId ia = intern(a, ln, l);
      const NodeId ib = intern(bb, ln, l);
      b.count_edge(ia, ib, w);
    });
    in.clear();
    in.seekg(start);
    if (!in.good())
      throw InputError("edge list stream lost its rewind position");
    b.begin_scatter();
    parse_edge_lines(in, [&](std::uint64_t a, std::uint64_t bb, Weight w,
                             std::size_t ln, const std::string& l) {
      const auto ia = ids.find(a);
      const auto ib = ids.find(bb);
      if (ia == ids.end() || ib == ids.end())
        bad_input(ln, l, "node id not seen in the first pass");
      b.scatter_edge(ia->second, ib->second, w);
    });
    g = b.finish();
  } else {
    // Non-seekable stream (pipe): buffer edges, same canonical result.
    std::vector<Edge> edges;
    parse_edge_lines(in, [&](std::uint64_t a, std::uint64_t bb, Weight w,
                             std::size_t ln, const std::string& l) {
      const NodeId ia = intern(a, ln, l);
      const NodeId ib = intern(bb, ln, l);
      edges.push_back({ia, ib, w});
    });
    GraphBuilder builder(static_cast<NodeId>(ids.size()));
    builder.add_edges(edges);
    g = builder.build();
  }

  g = apply_policy(std::move(g), policy);
  if (storage == AdjacencyStorage::kCompact) g.compress();
  return g;
}

CsrGraph read_edge_list_file(const std::string& path, ConnectPolicy policy,
                             AdjacencyStorage storage) {
  std::ifstream in(path);
  if (!in.good()) throw InputError("cannot open '" + path + "'");
  return read_edge_list(in, policy, storage);
}

void write_edge_list(const CsrGraph& g, std::ostream& out) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    g.for_neighbors(v, [&](NodeId t, Weight w) {
      if (v >= t) return;
      out << v << ' ' << t;
      if (w != 1) out << ' ' << w;
      out << '\n';
    });
  }
}

void write_edge_list_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.good())
    throw InputError("cannot open '" + path + "' for writing");
  write_edge_list(g, out);
  out.flush();
  if (!out.good()) throw InputError("write to '" + path + "' failed");
}

}  // namespace brics
