// Adjacency storage backends: the varint/delta codec and the two neighbor
// views traversal kernels are templated over.
//
// Compact row encoding (per node v, row strictly sorted by target):
//   varint(t0), varint(t1 - t0 - 1), varint(t2 - t1 - 1), ...
// and, iff the graph is weighted (max_weight > 1), each target varint is
// followed by varint(w - 1). Degrees are NOT encoded — they come from the
// retained 64-bit element offsets, so a row's entry count is always known
// before decoding starts.
//
// Varints are canonical LEB128: little-endian 7-bit groups, continuation
// bit 0x80, at most 10 bytes, and no overlong encodings (the last byte of
// a multi-byte varint is never 0x00). Two decoders implement the
// harden-at-the-boundary rule:
//   - varint_decode_checked: full validation (truncation, overlong form,
//     64-bit overflow) throwing InputError. Used when bytes first enter the
//     system: compress(), validate(), codec tests.
//   - varint_decode: no validation. Used by the hot cursors below, which
//     only ever run over byte streams the checked decoder accepted.
//
// PlainAdjacency and CompactAdjacency expose the same shape — degree(),
// for_neighbors(v, fn) and a copyable resumable Cursor — so a kernel
// templated over the view compiles to straight-line span iteration in plain
// mode and to inline varint decoding in compact mode, with no virtual
// dispatch and no per-node storage branch.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/errors.hpp"
#include "graph/types.hpp"

namespace brics {

inline constexpr std::size_t kMaxVarintBytes = 10;

/// Append the canonical LEB128 encoding of x.
inline void varint_append(std::vector<std::uint8_t>& out, std::uint64_t x) {
  while (x >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(x) | 0x80);
    x >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(x));
}

/// Decode one varint, advancing p. No validation: p must point into a byte
/// stream already accepted by varint_decode_checked.
inline std::uint64_t varint_decode(const std::uint8_t*& p) {
  std::uint64_t x = *p & 0x7F;
  unsigned shift = 0;
  while (*p++ & 0x80) {
    shift += 7;
    x |= static_cast<std::uint64_t>(*p & 0x7F) << shift;
  }
  return x;
}

/// Decode one varint with full validation, advancing p. Throws InputError
/// on truncation (p reaches end mid-varint), overlong encodings (a
/// multi-byte varint whose last byte is 0x00), and 64-bit overflow.
std::uint64_t varint_decode_checked(const std::uint8_t*& p,
                                    const std::uint8_t* end);

/// View over a plain CSR's parallel arrays. Trivially copyable; holds
/// non-owning pointers into the graph.
struct PlainAdjacency {
  const std::uint64_t* offsets = nullptr;
  const NodeId* targets = nullptr;
  const Weight* weights = nullptr;

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }

  template <class Fn>
  void for_neighbors(NodeId v, Fn&& fn) const {
    for (std::uint64_t i = offsets[v], e = offsets[v + 1]; i < e; ++i)
      fn(targets[i], weights[i]);
  }

  /// Targets only — the unit-weight BFS hot path never loads the weights.
  template <class Fn>
  void for_targets(NodeId v, Fn&& fn) const {
    for (std::uint64_t i = offsets[v], e = offsets[v + 1]; i < e; ++i)
      fn(targets[i]);
  }

  /// Resumable position inside one row (BCC's explicit DFS stack stores
  /// one per frame). Copyable; done() must be checked before target().
  struct Cursor {
    const NodeId* t = nullptr;
    const NodeId* end = nullptr;
    const Weight* w = nullptr;

    bool done() const { return t == end; }
    NodeId target() const { return *t; }
    Weight weight() const { return *w; }
    void advance() {
      ++t;
      ++w;
    }
  };

  Cursor cursor(NodeId v) const {
    return {targets + offsets[v], targets + offsets[v + 1],
            weights + offsets[v]};
  }
};

/// View over a compact graph's delta+varint byte rows. Decoding is
/// sequential per row; all random access goes through CsrGraph::row().
struct CompactAdjacency {
  const std::uint64_t* offsets = nullptr;       ///< element offsets (degrees)
  const std::uint64_t* byte_offsets = nullptr;  ///< row byte ranges
  const std::uint8_t* bytes = nullptr;
  bool unit = true;  ///< no weight bytes interleaved

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }

  template <class Fn>
  void for_neighbors(NodeId v, Fn&& fn) const {
    const std::uint8_t* p = bytes + byte_offsets[v];
    std::uint64_t left = offsets[v + 1] - offsets[v];
    NodeId t = 0;
    bool first = true;
    while (left--) {
      const std::uint64_t d = varint_decode(p);
      t = first ? static_cast<NodeId>(d) : static_cast<NodeId>(t + d + 1);
      first = false;
      Weight w = 1;
      if (!unit) w = static_cast<Weight>(varint_decode(p) + 1);
      fn(t, w);
    }
  }

  /// Targets only. Interleaved weight varints (weighted graphs) must still
  /// be skipped to advance — unit graphs carry no weight bytes at all.
  template <class Fn>
  void for_targets(NodeId v, Fn&& fn) const {
    const std::uint8_t* p = bytes + byte_offsets[v];
    std::uint64_t left = offsets[v + 1] - offsets[v];
    NodeId t = 0;
    bool first = true;
    while (left--) {
      const std::uint64_t d = varint_decode(p);
      t = first ? static_cast<NodeId>(d) : static_cast<NodeId>(t + d + 1);
      first = false;
      if (!unit) varint_decode(p);
      fn(t);
    }
  }

  struct Cursor {
    const std::uint8_t* p = nullptr;
    std::uint64_t left = 0;
    NodeId cur = 0;
    Weight w = 1;
    bool unit = true;

    bool done() const { return left == 0; }
    NodeId target() const { return cur; }
    Weight weight() const { return w; }
    void advance() {
      if (--left == 0) return;
      cur = static_cast<NodeId>(cur + varint_decode(p) + 1);
      if (!unit) w = static_cast<Weight>(varint_decode(p) + 1);
    }
  };

  Cursor cursor(NodeId v) const {
    Cursor c;
    c.p = bytes + byte_offsets[v];
    c.left = offsets[v + 1] - offsets[v];
    c.unit = unit;
    if (c.left > 0) {
      c.cur = static_cast<NodeId>(varint_decode(c.p));
      if (!unit) c.w = static_cast<Weight>(varint_decode(c.p) + 1);
    }
    return c;
  }
};

}  // namespace brics
