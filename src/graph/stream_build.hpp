// Streaming two-pass CSR construction: count degrees, then scatter.
//
// The legacy build path materialised every edge in a std::vector<Edge>
// (12 bytes each, ~1.2 GB for a 100M-edge graph) before constructing the
// CSR. TwoPassBuilder instead consumes the edge stream twice — replayable
// streams are cheap for generators (re-run the RNG from the seed) and for
// seekable files (rewind) — and never holds more than the CSR arrays plus
// one 8-byte write cursor per node:
//
//   TwoPassBuilder b(n);                 // or TwoPassBuilder::kGrow
//   for (edge stream)  b.count_edge(u, v, w);
//   b.begin_scatter();
//   for (edge stream)  b.scatter_edge(u, v, w);
//   CsrGraph g = b.finish(storage);
//
// finish() canonicalises rows in parallel (sort by target, merge parallel
// edges keeping the min weight, drop nothing else — self loops were already
// skipped at the stream boundary) and optionally compresses the result.
//
// A stream that does not replay identically is detected, not trusted:
// scatter_edge() bounds every write by the counted row end and finish()
// verifies every cursor landed exactly on it, throwing InputError
// ("edge stream changed between passes") instead of corrupting memory.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace brics {

class TwoPassBuilder {
 public:
  /// Node-count discovery mode: pass as `n` when the caller cannot know the
  /// node count before the first pass (file loaders interning ids). The
  /// count pass then grows the graph to max(u, v) + 1.
  static constexpr NodeId kGrow = kInvalidNode;

  explicit TwoPassBuilder(NodeId n);

  /// Pass 1: count. Self loops are skipped. In fixed-n mode out-of-range
  /// endpoints fail a check; in kGrow mode they grow the node count.
  void count_edge(NodeId u, NodeId v, Weight w = 1);

  /// Switch to pass 2: prefix-sums the degree counts and allocates the
  /// adjacency arrays.
  void begin_scatter();

  /// Pass 2: scatter. Must replay the count pass's stream; a divergent
  /// replay throws InputError before any out-of-bounds write.
  void scatter_edge(NodeId u, NodeId v, Weight w = 1);

  NodeId num_nodes() const { return n_; }
  std::uint64_t counted_edges() const { return counted_; }

  /// Verify the replay completed, canonicalise every row (parallel), and
  /// produce the graph — compressed in place when storage is kCompact.
  /// The builder is left in its just-constructed state and reusable.
  CsrGraph finish(AdjacencyStorage storage = AdjacencyStorage::kPlain);

 private:
  enum class Phase { kCount, kScatter };

  [[noreturn]] static void stream_changed(const char* what);

  NodeId n_ = 0;
  bool grow_ = false;
  Phase phase_ = Phase::kCount;
  std::uint64_t counted_ = 0;    ///< undirected edges seen in pass 1
  std::uint64_t scattered_ = 0;  ///< undirected edges seen in pass 2
  std::vector<std::uint64_t> offsets_;  ///< counts, then prefix sums
  std::vector<std::uint64_t> cursor_;   ///< per-row write position (pass 2)
  std::vector<NodeId> targets_;
  std::vector<Weight> weights_;
};

}  // namespace brics
