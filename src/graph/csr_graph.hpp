// Compressed-sparse-row representation of a simple undirected weighted graph.
//
// This is the substrate every other module operates on. Invariants
// (established by GraphBuilder and asserted by validate()):
//   - no self loops, no parallel edges (parallel inputs keep the min weight)
//   - both directions of every undirected edge are stored
//   - each adjacency list is sorted by target id
//   - all weights are >= 1
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace brics {

/// An undirected edge with weight, used for graph construction and I/O.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  Weight w = 1;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Number of nodes (ids are 0..n-1; isolated nodes are representable).
  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size()) - 1; }

  /// Number of undirected edges.
  std::uint64_t num_edges() const { return targets_.size() / 2; }

  /// Degree of v (number of distinct neighbours).
  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbours of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// Weights parallel to neighbors(v).
  std::span<const Weight> weights(NodeId v) const {
    return {weights_.data() + offsets_[v],
            weights_.data() + offsets_[v + 1]};
  }

  /// True iff edge {u, v} exists (binary search, O(log deg)).
  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge {u, v}; fails a check if absent.
  Weight edge_weight(NodeId u, NodeId v) const;

  /// True iff every edge has weight 1 (pure BFS applies).
  bool unit_weights() const { return max_weight_ == 1; }

  /// Largest edge weight in the graph (1 for empty graphs).
  Weight max_weight() const { return max_weight_; }

  /// Sum over nodes of degree == 2 * num_edges().
  std::uint64_t num_directed_edges() const { return targets_.size(); }

  /// Recompute and verify all structural invariants; throws CheckFailure.
  void validate() const;

  /// All undirected edges, each reported once with u < v.
  std::vector<Edge> edge_list() const;

 private:
  friend class GraphBuilder;

  std::vector<std::uint64_t> offsets_{0};
  std::vector<NodeId> targets_;
  std::vector<Weight> weights_;
  Weight max_weight_ = 1;
};

/// Accumulates edges, then produces a canonical CsrGraph: self loops dropped,
/// parallel edges merged keeping the minimum weight, adjacency sorted.
class GraphBuilder {
 public:
  /// Create a builder for a graph on n nodes (node ids must be < n).
  explicit GraphBuilder(NodeId n) : n_(n) {}

  /// Add undirected edge {u, v} with weight w (>= 1). Self loops allowed
  /// here and silently dropped at build().
  void add_edge(NodeId u, NodeId v, Weight w = 1);

  /// Bulk add.
  void add_edges(std::span<const Edge> edges);

  /// Number of nodes declared.
  NodeId num_nodes() const { return n_; }

  /// Finalise. The builder is left empty and reusable.
  CsrGraph build();

 private:
  NodeId n_;
  std::vector<Edge> edges_;
};

}  // namespace brics
