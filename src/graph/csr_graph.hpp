// Compressed-sparse-row representation of a simple undirected weighted graph.
//
// This is the substrate every other module operates on. Invariants
// (established by the builders and asserted by validate()):
//   - no self loops, no parallel edges (parallel inputs keep the min weight)
//   - both directions of every undirected edge are stored
//   - each adjacency list is sorted by target id
//   - all weights are >= 1
//
// Storage backends (graph/adjacency.hpp): a graph holds its adjacency either
// as plain parallel target/weight arrays or, after compress(), as delta+varint
// byte rows (AdjacencyStorage::kCompact). The 64-bit element offsets are kept
// in both modes, so degree() and num_edges() never depend on the backend.
// Hot code iterates through with_adjacency() — one dispatch per traversal,
// then a template instantiation per backend with zero per-node branching.
// Cold code uses for_neighbors() / row(), which branch per call.
//
// neighbors()/weights() remain the plain-mode fast path and fail a check on a
// compact graph: callers that can see compact graphs must go through the
// backend-agnostic accessors.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"

namespace brics {

/// An undirected edge with weight, used for graph construction and I/O.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  Weight w = 1;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Reusable decode buffer for CsrGraph::row(). One per thread; row() never
/// allocates after the buffer reaches the graph's max degree.
struct RowScratch {
  std::vector<NodeId> nbrs;
  std::vector<Weight> wts;
};

/// One adjacency row, valid until the next row() call on the same scratch
/// (compact mode decodes into the scratch; plain mode aliases the graph).
struct RowRef {
  std::span<const NodeId> nbrs;
  std::span<const Weight> wts;
};

/// Per-structure byte accounting for the run report's memory section.
struct GraphMemory {
  std::uint64_t offsets_bytes = 0;       ///< 64-bit element offsets (both modes)
  std::uint64_t targets_bytes = 0;       ///< plain targets array
  std::uint64_t weights_bytes = 0;       ///< plain weights array
  std::uint64_t adj_payload_bytes = 0;   ///< compact varint bytes
  std::uint64_t byte_offsets_bytes = 0;  ///< compact per-row byte offsets

  std::uint64_t total() const {
    return offsets_bytes + targets_bytes + weights_bytes + adj_payload_bytes +
           byte_offsets_bytes;
  }
};

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Number of nodes (ids are 0..n-1; isolated nodes are representable).
  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size()) - 1; }

  /// Number of undirected edges.
  std::uint64_t num_edges() const { return offsets_.back() / 2; }

  /// Degree of v (number of distinct neighbours). Backend-independent.
  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbours of v, sorted ascending. Plain storage only.
  std::span<const NodeId> neighbors(NodeId v) const {
    BRICS_CHECK(storage_ == AdjacencyStorage::kPlain);
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// Weights parallel to neighbors(v). Plain storage only.
  std::span<const Weight> weights(NodeId v) const {
    BRICS_CHECK(storage_ == AdjacencyStorage::kPlain);
    return {weights_.data() + offsets_[v],
            weights_.data() + offsets_[v + 1]};
  }

  /// True iff edge {u, v} exists (binary search in plain mode, early-exit
  /// sequential decode in compact mode).
  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge {u, v}; fails a check if absent.
  Weight edge_weight(NodeId u, NodeId v) const;

  /// If edge {u, v} exists, store its weight in w and return true.
  bool find_edge(NodeId u, NodeId v, Weight& w) const;

  /// True iff every edge has weight 1 (pure BFS applies).
  bool unit_weights() const { return max_weight_ == 1; }

  /// Largest edge weight in the graph (1 for empty graphs).
  Weight max_weight() const { return max_weight_; }

  /// Sum over nodes of degree == 2 * num_edges().
  std::uint64_t num_directed_edges() const { return offsets_.back(); }

  // ---- storage backend ---------------------------------------------------

  AdjacencyStorage storage() const { return storage_; }
  bool compact() const { return storage_ == AdjacencyStorage::kCompact; }

  /// Re-encode the adjacency as delta+varint rows and free the plain
  /// arrays. Every encoded row is re-read with the checked decoder before
  /// the plain arrays are released, so the unchecked hot decoders only ever
  /// run over validated bytes. No-op on an already-compact graph.
  void compress();

  /// Inverse of compress(): rebuild the plain arrays (parallel, first-touch
  /// by row) and free the byte rows. No-op on an already-plain graph.
  void decompress();

  /// Views for template iteration (graph/adjacency.hpp). Calling the view
  /// that does not match storage() fails a check.
  PlainAdjacency plain_view() const {
    BRICS_CHECK(storage_ == AdjacencyStorage::kPlain);
    return {offsets_.data(), targets_.data(), weights_.data()};
  }
  CompactAdjacency compact_view() const {
    BRICS_CHECK(storage_ == AdjacencyStorage::kCompact);
    return {offsets_.data(), byte_offsets_.data(), adj_bytes_.data(),
            unit_weights()};
  }

  /// Single dispatch point for hot loops: invokes fn with the view matching
  /// the current backend. Both instantiations must return the same type.
  template <class Fn>
  decltype(auto) with_adjacency(Fn&& fn) const {
    if (storage_ == AdjacencyStorage::kPlain) return fn(plain_view());
    return fn(compact_view());
  }

  /// Backend-agnostic per-row iteration: fn(NodeId target, Weight w) in
  /// ascending target order. Branches once per call — fine for cold paths,
  /// use with_adjacency() in kernels.
  template <class Fn>
  void for_neighbors(NodeId v, Fn&& fn) const {
    if (storage_ == AdjacencyStorage::kPlain)
      plain_view().for_neighbors(v, std::forward<Fn>(fn));
    else
      compact_view().for_neighbors(v, std::forward<Fn>(fn));
  }

  /// Backend-agnostic random access to one row: zero-copy spans in plain
  /// mode, a decode into `scratch` in compact mode. The returned spans are
  /// invalidated by the next row() call with the same scratch.
  RowRef row(NodeId v, RowScratch& scratch) const;

  /// Current adjacency payload bytes (targets+weights, or varint rows).
  /// Excludes the offsets kept by both modes — this is the quantity the
  /// compact backend shrinks.
  std::uint64_t adjacency_bytes() const;

  /// Per-structure byte accounting of everything this graph holds.
  GraphMemory memory() const;

  /// Recompute and verify all structural invariants; throws CheckFailure.
  /// In compact mode every row is decoded with the checked (InputError on
  /// malformed bytes) decoder.
  void validate() const;

  /// All undirected edges, each reported once with u < v. Works in both
  /// storage modes (materialises — avoid on giant graphs).
  std::vector<Edge> edge_list() const;

 private:
  friend class GraphBuilder;
  friend class TwoPassBuilder;

  AdjacencyStorage storage_ = AdjacencyStorage::kPlain;
  std::vector<std::uint64_t> offsets_{0};
  std::vector<NodeId> targets_;
  std::vector<Weight> weights_;
  // Compact backend: concatenated delta+varint rows and per-row byte
  // offsets (size n+1). Empty in plain mode.
  std::vector<std::uint8_t> adj_bytes_;
  std::vector<std::uint64_t> byte_offsets_;
  Weight max_weight_ = 1;
};

/// Accumulates edges, then produces a canonical CsrGraph: self loops dropped,
/// parallel edges merged keeping the minimum weight, adjacency sorted.
/// Internally build() replays the accumulated edges through TwoPassBuilder
/// (graph/stream_build.hpp), so both construction paths share one
/// canonicalisation. Prefer streaming straight into TwoPassBuilder when the
/// edges come from a replayable source — this class materialises them.
class GraphBuilder {
 public:
  /// Create a builder for a graph on n nodes (node ids must be < n).
  explicit GraphBuilder(NodeId n) : n_(n) {}

  /// Add undirected edge {u, v} with weight w (>= 1). Self loops allowed
  /// here and silently dropped at build().
  void add_edge(NodeId u, NodeId v, Weight w = 1);

  /// Bulk add.
  void add_edges(std::span<const Edge> edges);

  /// Number of nodes declared.
  NodeId num_nodes() const { return n_; }

  /// Finalise. The builder is left empty and reusable.
  CsrGraph build(AdjacencyStorage storage = AdjacencyStorage::kPlain);

 private:
  NodeId n_;
  std::vector<Edge> edges_;
};

}  // namespace brics
