#include "graph/connectivity.hpp"

#include <algorithm>

#include "graph/stream_build.hpp"
#include "util/check.hpp"

namespace brics {

Components connected_components(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  Components c;
  c.label.assign(n, kInvalidNode);
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    if (c.label[s] != kInvalidNode) continue;
    const NodeId id = c.count++;
    c.label[s] = id;
    c.sizes.push_back(1);
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      NodeId u = queue[head];
      g.for_neighbors(u, [&](NodeId w, Weight) {
        if (c.label[w] == kInvalidNode) {
          c.label[w] = id;
          ++c.sizes[id];
          queue.push_back(w);
        }
      });
    }
  }
  return c;
}

bool is_connected(const CsrGraph& g) {
  return connected_components(g).count <= 1;
}

SubgraphMap induced_subgraph(const CsrGraph& g,
                             std::span<const NodeId> nodes) {
  SubgraphMap out;
  out.to_new.assign(g.num_nodes(), kInvalidNode);
  out.to_old.assign(nodes.begin(), nodes.end());
  for (NodeId i = 0; i < out.to_old.size(); ++i) {
    NodeId old = out.to_old[i];
    BRICS_CHECK_MSG(old < g.num_nodes(), "node " << old << " out of range");
    BRICS_CHECK_MSG(out.to_new[old] == kInvalidNode,
                    "duplicate node " << old << " in subgraph selection");
    out.to_new[old] = i;
  }
  // Stream the selected rows twice instead of materialising an edge list;
  // graph rows replay identically by construction.
  TwoPassBuilder b(static_cast<NodeId>(out.to_old.size()));
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) b.begin_scatter();
    for (NodeId i = 0; i < out.to_old.size(); ++i) {
      g.for_neighbors(out.to_old[i], [&](NodeId t, Weight w) {
        const NodeId j = out.to_new[t];
        if (j == kInvalidNode || i >= j) return;
        if (pass == 0)
          b.count_edge(i, j, w);
        else
          b.scatter_edge(i, j, w);
      });
    }
  }
  out.graph = b.finish();
  return out;
}

SubgraphMap largest_component(const CsrGraph& g) {
  Components c = connected_components(g);
  NodeId best = 0;
  for (NodeId i = 1; i < c.count; ++i)
    if (c.sizes[i] > c.sizes[best]) best = i;
  std::vector<NodeId> keep;
  if (c.count > 0) {
    keep.reserve(c.sizes[best]);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (c.label[v] == best) keep.push_back(v);
  }
  return induced_subgraph(g, keep);
}

CsrGraph make_connected(const CsrGraph& g) {
  Components c = connected_components(g);
  if (c.count <= 1) return g;
  NodeId largest = 0;
  for (NodeId i = 1; i < c.count; ++i)
    if (c.sizes[i] > c.sizes[largest]) largest = i;
  // First node of each component serves as its representative.
  std::vector<NodeId> rep(c.count, kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (rep[c.label[v]] == kInvalidNode) rep[c.label[v]] = v;

  // Stream the graph's own rows plus the stitch edges through both passes.
  TwoPassBuilder b(g.num_nodes());
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) b.begin_scatter();
    auto emit = [&](NodeId u, NodeId v, Weight w) {
      if (pass == 0)
        b.count_edge(u, v, w);
      else
        b.scatter_edge(u, v, w);
    };
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      g.for_neighbors(v, [&](NodeId t, Weight w) {
        if (v < t) emit(v, t, w);
      });
    }
    for (NodeId i = 0; i < c.count; ++i)
      if (i != largest) emit(rep[i], rep[largest], 1);
  }
  return b.finish(g.storage());
}

}  // namespace brics
