// Connected-component analysis and the dataset-preparation step the paper
// applies to every input ("if the graph is disconnected, we added few edges
// to make it connected").
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace brics {

/// Result of a connected-components labelling.
struct Components {
  std::vector<NodeId> label;  ///< label[v] in [0, count)
  NodeId count = 0;
  /// Size of each component, indexed by label.
  std::vector<NodeId> sizes;
};

/// Label connected components by BFS. O(n + m).
Components connected_components(const CsrGraph& g);

/// True iff g has exactly one component (empty graph counts as connected).
bool is_connected(const CsrGraph& g);

/// Mapping produced when extracting an induced subgraph.
struct SubgraphMap {
  CsrGraph graph;
  std::vector<NodeId> to_old;  ///< new id -> old id
  std::vector<NodeId> to_new;  ///< old id -> new id (kInvalidNode if dropped)
};

/// Induced subgraph on the largest connected component.
SubgraphMap largest_component(const CsrGraph& g);

/// Induced subgraph on an arbitrary node subset (edges with both ends kept).
SubgraphMap induced_subgraph(const CsrGraph& g,
                             std::span<const NodeId> nodes);

/// Connect a disconnected graph by adding one unit edge between a
/// representative of each non-largest component and a representative of the
/// largest one (the paper's dataset normalisation). Returns g unchanged if
/// already connected.
CsrGraph make_connected(const CsrGraph& g);

}  // namespace brics
