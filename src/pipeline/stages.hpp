// The five pipeline stages (docs/ARCHITECTURE.md).
//
//   ReduceStage     CsrGraph         -> ReducedGraph
//   DecomposeStage  ReducedGraph     -> Decomposition
//   PlanStage       Decomposition    -> SamplePlan
//   TraverseStage   SamplePlan       -> TraversalResults
//   AggregateStage  TraversalResults -> EstimateResult
//
// Each stage is a stateless class: run() reads its input artifacts, threads
// the PipelineContext (deadline, phase, timings), and returns the next
// artifact by value. estimate_brics in src/core/brics.cpp is the canonical
// composition; tests/test_pipeline.cpp runs each stage standalone.
//
// Budget behaviour at stage granularity:
//   Reduce / Decompose   no partial result exists -> check_budget() throws
//                        BudgetExceeded at the stage boundary.
//   Plan                 throws BudgetExceeded(kPlan) only when the
//                        max-sources cap cannot even cover the mandatory
//                        work; otherwise it sheds optional samples
//                        proportionally and marks the plan capped.
//   Traverse             cooperative: optional sources are shed when the
//                        deadline fires (exceptions cannot cross the OpenMP
//                        region); the returned TraversalResults is partial
//                        but mandatory-complete.
//   Aggregate            always finishes: it aggregates whatever Traverse
//                        completed, so a mid-Traverse deadline degrades the
//                        estimate instead of discarding it.
#pragma once

#include "pipeline/artifacts.hpp"
#include "pipeline/context.hpp"

namespace brics {

/// Apply the configured reductions (ctx.opts().reduce) to ctx.graph().
/// Phase kReduce; throws BudgetExceeded(kReduce) if the deadline passed.
class ReduceStage {
 public:
  ReducedGraph run(PipelineContext& ctx) const;
};

/// Biconnected decomposition + block-cut tree + total ownership: every
/// node — present or removed — is assigned to exactly one block, ledger
/// records are homed to the block containing their anchors, and each
/// block's induced subgraph and cut-vertex list are materialised.
/// Phase kBcc; throws BudgetExceeded(kBcc) if the deadline passed.
class DecomposeStage {
 public:
  Decomposition run(PipelineContext& ctx, const ReducedGraph& rg) const;
};

/// Per-block sampling plan: cut vertices are always sampled (they feed the
/// exact cross-block machinery), each block gets a population-proportional
/// share of ceil(rate * num_present) random extras, and a max-sources cap
/// sheds the optional remainder in ONE proportional largest-remainder pass
/// (mandatory counts computed once per block). Also resolves each block's
/// traversal kernel via select_kernel. Phase kPlan; throws
/// BudgetExceeded(kPlan) iff the cap is below the mandatory total.
class PlanStage {
 public:
  SamplePlan run(PipelineContext& ctx, const Decomposition& dec,
                 NodeId num_present) const;
};

/// Run every planned source through its block's kernel, folding distance
/// vectors into the accumulators the Aggregate stage needs. Blocks whose
/// plan chose the batched kernel become ONE parallel task (their sources
/// run back to back on one thread's hot workspace); other blocks keep one
/// task per source, mandatory tasks ordered first. Phase kTraverse; never
/// throws on deadline — shed sources are simply absent from the result.
class TraverseStage {
 public:
  TraversalResults run(PipelineContext& ctx, const ReducedGraph& rg,
                       const Decomposition& dec,
                       const SamplePlan& plan) const;
};

/// Finish the estimate from whatever Traverse completed: tree DP over the
/// BCT for exact cross-block terms, cut re-traversals (P2), per-block beta
/// calibration of the intra estimator, removed-node closed forms, and the
/// degradation report. Fills everything in EstimateResult except times and
/// reduce_stats (the composition owns those). Phase stays kTraverse — a
/// fault here is attributed to the traversal data it consumed.
class AggregateStage {
 public:
  EstimateResult run(PipelineContext& ctx, const ReducedGraph& rg,
                     const Decomposition& dec, const SamplePlan& plan,
                     const TraversalResults& trav) const;
};

}  // namespace brics
