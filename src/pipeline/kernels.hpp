// Pluggable traversal kernels for the Traverse stage.
//
// A TraversalKernel runs a contiguous range of a source list on the CALLING
// thread, reusing one caller-provided workspace, and hands each completed
// distance vector to a sink. The Traverse stage decides the parallel shape
// around the kernel: large blocks get one task per source (source-level
// parallelism, any kernel, count == 1 per call), small blocks get one task
// per block with the batched kernel running every source back to back on
// hot scratch — per-source task scheduling and workspace cache churn would
// otherwise dominate the traversals themselves.
//
// Kernel selection (select_kernel) is a per-block size heuristic:
//
//   requested kAuto:  >= 2 sources and a small block  -> kBatched
//                     otherwise unit weights ? kBfs : kDial
//   requested kBfs:   honoured on unit-weight graphs, upgraded to kDial on
//                     weighted ones (BFS distances would be wrong)
//   requested kDial / kBatched: honoured as-is
//
// All kernels produce identical distance vectors, and the estimators
// accumulate them in exact integer arithmetic, so kernel choice never
// changes estimator output — only its schedule (verified by the oracle
// tests in tests/test_pipeline.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/estimate.hpp"
#include "exec/budget.hpp"
#include "graph/csr_graph.hpp"
#include "traverse/bfs.hpp"

namespace brics {

/// Receives each completed traversal: sink(source_index, distances). The
/// index refers into the kernel's source list; distances alias the
/// workspace and are only valid during the call.
using SourceSink =
    std::function<void(std::size_t, std::span<const Dist>)>;

/// Strategy interface: run sources[first, first + count) sequentially on
/// the calling thread. Sources with index < mandatory always complete
/// (never polled, never aborted); others are skipped or aborted once
/// `cancel` fires. completed[i] is set for each source whose sink ran.
/// Returns the number of completed sources in the range. Implementations
/// are stateless and safe to share across threads.
class TraversalKernel {
 public:
  virtual ~TraversalKernel() = default;
  virtual const char* name() const = 0;
  virtual std::size_t run(const CsrGraph& g, std::span<const NodeId> sources,
                          std::size_t first, std::size_t count,
                          std::size_t mandatory, const CancelToken* cancel,
                          TraversalWorkspace& ws,
                          std::span<std::uint8_t> completed,
                          const SourceSink& sink) const = 0;
};

/// The shared singleton for a resolved (non-kAuto) choice. kAuto has no
/// kernel — resolve through select_kernel first.
const TraversalKernel& kernel_for(KernelChoice choice);

/// Per-block kernel selection heuristic (see header comment). num_sources
/// is the block's planned source count.
KernelChoice select_kernel(const CsrGraph& block_g, NodeId num_sources,
                           KernelChoice requested);

/// Flat traversal driver for the undecomposed estimators (random / reduced
/// sampling, exact farness): one parallel task per source through the
/// kernel matching `requested` (kAuto resolves to the weight-matched
/// engine; kBatched serialises the whole sweep on one thread). The first
/// `mandatory` sources always complete. Returns the completed count;
/// completed[i] records which. With a never-firing token, output matches
/// for_each_source bit for bit.
std::size_t traverse_flat(const CsrGraph& g, std::span<const NodeId> sources,
                          std::size_t mandatory, const CancelToken& cancel,
                          KernelChoice requested,
                          std::vector<std::uint8_t>& completed,
                          const SourceSink& sink);

}  // namespace brics
