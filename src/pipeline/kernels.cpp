#include "pipeline/kernels.hpp"

#include "obs/request.hpp"
#include "obs/trace.hpp"
#include "traverse/multi_source.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace brics {
namespace {

// All kernels share the sequential drive loop; only the SSSP engine
// differs. Engine must match bfs/dial_sssp/sssp's signature.
template <typename Engine>
std::size_t drive(Engine&& engine, const CsrGraph& g,
                  std::span<const NodeId> sources, std::size_t first,
                  std::size_t count, std::size_t mandatory,
                  const CancelToken* cancel, TraversalWorkspace& ws,
                  std::span<std::uint8_t> completed, const SourceSink& sink) {
  std::size_t done = 0;
  for (std::size_t i = first; i < first + count; ++i) {
    // Re-entry safety (retry / checkpoint resume): a source whose fold
    // already ran must not fold again, so kernel.run over a range with
    // pre-set completion flags is idempotent.
    if (completed[i]) continue;
    const bool must = i < mandatory;
    if (!must && cancel != nullptr && cancel->poll()) continue;
    if (!engine(g, sources[i], ws, must ? nullptr : cancel)) continue;
    sink(i, ws.dist());
    completed[i] = 1;
    ++done;
  }
  return done;
}

class FrontierBfsKernel final : public TraversalKernel {
 public:
  const char* name() const override { return "bfs"; }
  std::size_t run(const CsrGraph& g, std::span<const NodeId> sources,
                  std::size_t first, std::size_t count, std::size_t mandatory,
                  const CancelToken* cancel, TraversalWorkspace& ws,
                  std::span<std::uint8_t> completed,
                  const SourceSink& sink) const override {
    BRICS_CHECK_MSG(g.unit_weights(),
                    "bfs kernel on a weighted graph; resolve the choice "
                    "with select_kernel first");
    // Kernel spans give the trace export its per-thread work lanes: when
    // recording is on, every task shows up on the lane of the thread that
    // ran it, making block/source load imbalance visible on the timeline.
    BRICS_SPAN(sp, "kernel.bfs");
    return drive([](const CsrGraph& gg, NodeId s, TraversalWorkspace& w,
                    const CancelToken* c) { return bfs(gg, s, w, c); },
                 g, sources, first, count, mandatory, cancel, ws, completed,
                 sink);
  }
};

class DialKernel final : public TraversalKernel {
 public:
  const char* name() const override { return "dial"; }
  std::size_t run(const CsrGraph& g, std::span<const NodeId> sources,
                  std::size_t first, std::size_t count, std::size_t mandatory,
                  const CancelToken* cancel, TraversalWorkspace& ws,
                  std::span<std::uint8_t> completed,
                  const SourceSink& sink) const override {
    BRICS_SPAN(sp, "kernel.dial");
    return drive([](const CsrGraph& gg, NodeId s, TraversalWorkspace& w,
                    const CancelToken* c) { return dial_sssp(gg, s, w, c); },
                 g, sources, first, count, mandatory, cancel, ws, completed,
                 sink);
  }
};

// Batched multi-source: delegates to sssp_batch (traverse/multi_source.hpp),
// which dispatches bfs/dial per the graph's weights. The Traverse stage
// hands this kernel a whole block's source list in one call.
class BatchedMultiSourceKernel final : public TraversalKernel {
 public:
  const char* name() const override { return "batched"; }
  std::size_t run(const CsrGraph& g, std::span<const NodeId> sources,
                  std::size_t first, std::size_t count, std::size_t mandatory,
                  const CancelToken* cancel, TraversalWorkspace& ws,
                  std::span<std::uint8_t> completed,
                  const SourceSink& sink) const override {
    BRICS_SPAN(sp, "kernel.batched");
    return sssp_batch(g, sources, first, count, mandatory, cancel, ws,
                      completed,
                      [&](std::size_t i, std::span<const Dist> dist) {
                        sink(i, dist);
                      });
  }
};

// Blocks at or below this node count batch their sources on one thread
// under kAuto: their traversals are microseconds, so per-source OpenMP
// tasks spend more on scheduling + workspace cache misses than on the
// traversal itself. Parallelism across *blocks* is preserved — a graph
// with many small blocks yields many batched tasks.
constexpr NodeId kBatchNodeLimit = 256;

}  // namespace

const TraversalKernel& kernel_for(KernelChoice choice) {
  static const FrontierBfsKernel bfs_kernel;
  static const DialKernel dial_kernel;
  static const BatchedMultiSourceKernel batched_kernel;
  switch (choice) {
    case KernelChoice::kBfs: return bfs_kernel;
    case KernelChoice::kDial: return dial_kernel;
    case KernelChoice::kBatched: return batched_kernel;
    case KernelChoice::kAuto: break;
  }
  BRICS_CHECK_MSG(false, "kAuto is not a kernel; resolve with select_kernel");
  return dial_kernel;
}

KernelChoice select_kernel(const CsrGraph& block_g, NodeId num_sources,
                           KernelChoice requested) {
  switch (requested) {
    case KernelChoice::kDial: return KernelChoice::kDial;
    case KernelChoice::kBatched: return KernelChoice::kBatched;
    case KernelChoice::kBfs:
      return block_g.unit_weights() ? KernelChoice::kBfs
                                    : KernelChoice::kDial;
    case KernelChoice::kAuto: break;
  }
  if (num_sources >= 2 && block_g.num_nodes() <= kBatchNodeLimit)
    return KernelChoice::kBatched;
  return block_g.unit_weights() ? KernelChoice::kBfs : KernelChoice::kDial;
}

std::size_t traverse_flat(const CsrGraph& g, std::span<const NodeId> sources,
                          std::size_t mandatory, const CancelToken& cancel,
                          KernelChoice requested,
                          std::vector<std::uint8_t>& completed,
                          const SourceSink& sink) {
  completed.assign(sources.size(), 0);
  if (sources.empty()) return 0;
  // Flat sweeps keep source-level parallelism under kAuto: unlike a small
  // block inside a decomposition there is no outer parallel dimension to
  // fall back on, so batching would serialise the whole estimator.
  KernelChoice choice = requested == KernelChoice::kAuto
                            ? (g.unit_weights() ? KernelChoice::kBfs
                                                : KernelChoice::kDial)
                            : select_kernel(g, static_cast<NodeId>(
                                                   sources.size()),
                                            requested);
  const TraversalKernel& kernel = kernel_for(choice);
  if (choice == KernelChoice::kBatched) {
    TraversalWorkspace ws;
    return kernel.run(g, sources, 0, sources.size(), mandatory, &cancel, ws,
                      completed, sink);
  }
  const std::int64_t k = static_cast<std::int64_t>(sources.size());
  // The request id is thread-local and does not cross the OpenMP fork on
  // its own; re-enter the scope inside the region so kernel spans land on
  // the serving request's trace lane (obs/request.hpp).
  const std::uint64_t req_id = current_request_id();
#pragma omp parallel
  {
    RequestIdScope rscope(req_id);
    TraversalWorkspace ws;
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t i = 0; i < k; ++i) {
      kernel.run(g, sources, static_cast<std::size_t>(i), 1, mandatory,
                 &cancel, ws, completed, sink);
    }
  }
  std::size_t done = 0;
  for (std::uint8_t c : completed) done += c;
  return done;
}

}  // namespace brics
