// Shared execution state threaded through the pipeline stages.
//
// A PipelineContext carries what every stage needs but no artifact should
// own: the input graph, the caller's options, the run's CancelToken, the
// wall-clock phase breakdown, and the current ExecPhase (mirrored to an
// optional caller-owned slot so a fault can be attributed to the stage it
// interrupted). Stages receive the context by reference, read their inputs
// from typed artifacts (pipeline/artifacts.hpp), and return the next
// artifact by value — the context is the only mutable shared state.
#pragma once

#include <cstdint>

#include "core/estimate.hpp"
#include "exec/budget.hpp"
#include "exec/errors.hpp"
#include "graph/csr_graph.hpp"
#include "obs/request.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace brics {

class Recovery;

class PipelineContext {
 public:
  PipelineContext(const CsrGraph& graph, const EstimateOptions& opts,
                  const CancelToken& token)
      : graph_(graph), opts_(opts), token_(token) {}

  PipelineContext(const PipelineContext&) = delete;
  PipelineContext& operator=(const PipelineContext&) = delete;

  const CsrGraph& graph() const { return graph_; }
  const EstimateOptions& opts() const { return opts_; }
  const CancelToken& token() const { return token_; }

  /// Server request id this pipeline run serves (0 outside the daemon) —
  /// captured from the constructing thread's RequestIdScope
  /// (obs/request.hpp), so a stage that forks an OpenMP region can
  /// re-establish the scope for its worker threads.
  std::uint64_t request_id() const { return request_id_; }

  /// Per-phase wall-clock sums; stages open PhaseScopes on these fields.
  PhaseTimes& times() { return times_; }
  const PhaseTimes& times() const { return times_; }

  /// Stages declare themselves on entry; a fault escaping a stage is then
  /// attributed to it (estimate_brics maps std::exception to phase()).
  void set_phase(ExecPhase p) {
    phase_ = p;
    if (mirror_ != nullptr) *mirror_ = p;
  }
  ExecPhase phase() const { return phase_; }

  /// Mirror every set_phase into a caller-owned slot, so the phase survives
  /// the stack unwind when a stage throws.
  void mirror_phase(ExecPhase* out) {
    mirror_ = out;
    if (out != nullptr) *out = phase_;
  }

  /// Deterministic per-purpose RNG stream: same seed + salt => same stream,
  /// independent streams for distinct salts (blocks use salt = block id + 1).
  Rng fork_rng(std::uint64_t salt) const {
    return Rng(opts_.seed ^ mix64(salt));
  }

  /// Optional checkpoint/resume manager (exec/recovery.hpp). Null for
  /// runs without a checkpoint directory; stages that can persist or
  /// consume artifacts check it.
  Recovery* recovery() const { return recovery_; }
  void set_recovery(Recovery* r) { recovery_ = r; }

  /// Retry/quarantine accounting filled by the Traverse stage; the
  /// composition merges it into EstimateResult::recovery.
  RecoveryStats& rstats() { return rstats_; }
  const RecoveryStats& rstats() const { return rstats_; }

  /// Throw BudgetExceeded(current phase) if the deadline has passed. Called
  /// at stage boundaries where no partial result exists yet; inside the
  /// Traverse stage cancellation is cooperative instead (sources shed, not
  /// thrown — exceptions must not escape OpenMP regions).
  void check_budget() const {
    if (token_.poll()) throw BudgetExceeded(phase_);
  }

 private:
  const CsrGraph& graph_;
  const EstimateOptions& opts_;
  const CancelToken& token_;
  PhaseTimes times_;
  ExecPhase phase_ = ExecPhase::kNone;
  ExecPhase* mirror_ = nullptr;
  Recovery* recovery_ = nullptr;
  RecoveryStats rstats_;
  std::uint64_t request_id_ = current_request_id();
};

}  // namespace brics
