#include "pipeline/postprocess.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace brics {
namespace {

// Sum over j of |off_i - off_j| for sorted offsets, all i, via prefix sums.
std::vector<double> abs_diff_sums(const std::vector<Dist>& off) {
  const std::size_t l = off.size();
  std::vector<double> prefix(l + 1, 0.0), out(l, 0.0);
  for (std::size_t i = 0; i < l; ++i)
    prefix[i + 1] = prefix[i] + static_cast<double>(off[i]);
  for (std::size_t i = 0; i < l; ++i) {
    const double oi = static_cast<double>(off[i]);
    const double left = oi * static_cast<double>(i + 1) - prefix[i + 1];
    const double right =
        (prefix[l] - prefix[i + 1]) - oi * static_cast<double>(l - i - 1);
    out[i] = left + right;
  }
  return out;
}

// Sum over j of min(|off_i - off_j|, total - |off_i - off_j|) for sorted
// offsets (cycle geometry), all i. O(l log l).
std::vector<double> cyclic_diff_sums(const std::vector<Dist>& off,
                                     Dist total) {
  const std::size_t l = off.size();
  std::vector<double> prefix(l + 1, 0.0), out(l, 0.0);
  for (std::size_t i = 0; i < l; ++i)
    prefix[i + 1] = prefix[i] + static_cast<double>(off[i]);
  const double T = static_cast<double>(total);
  for (std::size_t i = 0; i < l; ++i) {
    const double oi = static_cast<double>(off[i]);
    // Left side (off_j <= off_i), delta = oi - off_j: along-arc wins while
    // 2 delta <= T, i.e. off_j >= oi - T/2.
    const Dist lo_bound =
        2.0 * oi > T ? static_cast<Dist>(std::ceil(oi - T / 2.0)) : 0;
    const std::size_t lo =
        std::lower_bound(off.begin(), off.begin() + i + 1, lo_bound) -
        off.begin();
    double s = 0.0;
    // j in [lo, i]: contribute oi - off_j.
    s += oi * static_cast<double>(i + 1 - lo) - (prefix[i + 1] - prefix[lo]);
    // j in [0, lo): contribute T - (oi - off_j).
    s += (T - oi) * static_cast<double>(lo) + prefix[lo];
    // Right side (off_j > off_i), delta = off_j - oi: along-arc wins while
    // off_j <= oi + T/2.
    const double hi_val = oi + T / 2.0;
    const std::size_t hi =
        std::upper_bound(off.begin() + i + 1, off.end(),
                         static_cast<Dist>(hi_val)) -
        off.begin();
    // j in (i, hi): contribute off_j - oi.
    s += (prefix[hi] - prefix[i + 1]) - oi * static_cast<double>(hi - i - 1);
    // j in [hi, l): contribute T - (off_j - oi).
    s += (T + oi) * static_cast<double>(l - hi) - (prefix[l] - prefix[hi]);
    out[i] = s;
  }
  return out;
}

}  // namespace

void refine_removed_estimates(const ReductionLedger& ledger, NodeId n,
                              std::span<double> farness,
                              std::span<std::uint8_t> exact) {
  BRICS_CHECK(farness.size() == n);
  BRICS_CHECK(exact.size() == n);

  {
    auto order = ledger.order();
    for (std::uint32_t i = 0; i < order.size(); ++i) {
      if (order[i].kind != ReductionLedger::Kind::kIdentical) continue;
      if (!ledger.record_active(i)) continue;
      const IdenticalRecord& r = ledger.identical()[order[i].index];
      farness[r.node] = farness[r.rep];
      exact[r.node] = exact[r.rep];
    }
  }

  // The chain closed forms route every external target through the anchor
  // u: d(a_i, x) = arc_i + d(u, x). The single exception is a twin y of u
  // itself removed *before* the chain: y shares u's neighbours, so the
  // chain reaches y without the d(u, y) = self_dist hop and the formula
  // over-counts by exactly self_dist(y). (Twins of any other node would
  // have forced the chain member's degree above 2 — impossible; see the
  // derivation in this file's header.) Walk records in removal order and
  // keep the per-anchor correction accumulated so far.
  std::unordered_map<NodeId, double> twin_overcount;
  std::vector<double> chain_correction(ledger.chains().size(), 0.0);
  std::vector<std::uint8_t> chain_active(ledger.chains().size(), 0);
  {
    auto order = ledger.order();
    for (std::uint32_t i = 0; i < order.size(); ++i) {
      const auto& e = order[i];
      if (e.kind == ReductionLedger::Kind::kIdentical) {
        if (!ledger.record_active(i)) continue;
        const IdenticalRecord& r = ledger.identical()[e.index];
        twin_overcount[r.rep] += static_cast<double>(r.self_dist);
      } else if (e.kind == ReductionLedger::Kind::kChain) {
        chain_active[e.index] = ledger.record_active(i) ? 1 : 0;
        const ChainRecord& c = ledger.chains()[e.index];
        auto it = twin_overcount.find(c.u);
        chain_correction[e.index] =
            it == twin_overcount.end() ? 0.0 : it->second;
      }
    }
  }

  for (std::size_t ci = 0; ci < ledger.chains().size(); ++ci) {
    if (!chain_active[ci]) continue;
    const ChainRecord& c = ledger.chains()[ci];
    if (!c.pendant() && !c.cycle()) continue;  // through chains keep ests
    const std::size_t l = c.members.size();
    const double fu = farness[c.u] - chain_correction[ci];
    const double pop = static_cast<double>(n) - static_cast<double>(l);
    if (c.pendant()) {
      std::vector<double> internal = abs_diff_sums(c.offsets);
      double off_sum = 0.0;
      for (Dist o : c.offsets) off_sum += static_cast<double>(o);
      for (std::size_t i = 0; i < l; ++i) {
        farness[c.members[i]] = fu +
                                static_cast<double>(c.offsets[i]) * pop -
                                off_sum + internal[i];
        exact[c.members[i]] = exact[c.u];
      }
    } else {
      // Cycle: distances leave through u at min(off, total - off).
      std::vector<Dist> m(l);
      for (std::size_t i = 0; i < l; ++i)
        m[i] = std::min(c.offsets[i], c.total - c.offsets[i]);
      double m_sum = 0.0;
      for (Dist v : m) m_sum += static_cast<double>(v);
      std::vector<double> internal = cyclic_diff_sums(c.offsets, c.total);
      for (std::size_t i = 0; i < l; ++i) {
        farness[c.members[i]] = fu + static_cast<double>(m[i]) * pop -
                                m_sum + internal[i];
        exact[c.members[i]] = exact[c.u];
      }
    }
  }
}

}  // namespace brics
