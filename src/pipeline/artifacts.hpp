// Typed artifacts flowing between the pipeline stages (docs/ARCHITECTURE.md).
//
//   Reduce     : CsrGraph        -> ReducedGraph   (reduce/reducer.hpp)
//   Decompose  : ReducedGraph    -> Decomposition
//   Plan       : Decomposition   -> SamplePlan
//   Traverse   : SamplePlan      -> TraversalResults
//   Aggregate  : TraversalResults-> EstimateResult (core/estimate.hpp)
//
// Each artifact is a plain value: stages never share hidden state, so any
// stage can be run, inspected, and unit-tested in isolation, and a partial
// TraversalResults (deadline fired mid-traverse) is still a first-class
// input that Aggregate can finish — degraded runs aggregate what completed
// instead of discarding it.
#pragma once

#include <cstdint>
#include <vector>

#include "bcc/bcc.hpp"
#include "bcc/bct.hpp"
#include "core/estimate.hpp"
#include "graph/connectivity.hpp"
#include "reduce/reducer.hpp"

namespace brics {

/// Everything Decompose derives about one biconnected block.
struct BlockInfo {
  SubgraphMap sub;                    ///< local block graph + id maps
  std::vector<NodeId> cuts_local;     ///< local ids of the block's cut vertices
  std::uint32_t cut_count = 0;
  std::vector<std::uint32_t> records; ///< ledger order-ids homed here, ascending
  std::vector<NodeId> virtuals;       ///< removed (global) nodes homed here
  std::vector<std::uint8_t> owned;    ///< per local id: owned by this block?
  FarnessSum own_mass = 0;            ///< owned present + homed virtuals

  NodeId num_nodes() const {
    return static_cast<NodeId>(sub.to_old.size());
  }
};

/// Decompose artifact: the biconnected structure plus a total ownership map
/// (every node of the original graph — present or removed — belongs to
/// exactly one block).
struct Decomposition {
  BccResult bcc;
  BlockCutTree bct;
  std::vector<BlockId> owner;       ///< per present node: its owner block
  std::vector<BlockId> virt_owner;  ///< per removed node: its home block
  std::vector<BlockInfo> blocks;

  BlockId num_blocks() const {
    return static_cast<BlockId>(blocks.size());
  }
};

/// Plan artifact for one block: its traversal sources (block-local ids, cut
/// vertices first) and the kernel the Traverse stage will run them with.
struct BlockPlan {
  std::vector<NodeId> samples;  ///< cut-vertex prefix, then random picks
  NodeId mandatory = 0;         ///< prefix length the budget may never shed
  KernelChoice kernel = KernelChoice::kAuto;  ///< resolved; never kAuto here
};

/// Plan artifact: per-block source lists plus the shed/cap bookkeeping the
/// degradation report needs.
struct SamplePlan {
  std::vector<BlockPlan> blocks;
  NodeId planned_total = 0;    ///< sources the rate called for (pre-cap)
  NodeId mandatory_total = 0;
  bool capped = false;         ///< max_sources shed optional samples

  /// Sources surviving the cap (what Traverse will attempt).
  NodeId total_sources() const {
    NodeId t = 0;
    for (const BlockPlan& b : blocks)
      t += static_cast<NodeId>(b.samples.size());
    return t;
  }
};

/// Traverse artifact. Possibly partial: when the deadline fires mid-stage
/// only optional sources are missing (`completed` flags say which), the
/// mandatory prefix — cut vertices, one source per cut-less block — is
/// always intact, so Aggregate can always finish.
struct TraversalResults {
  struct BlockData {
    std::vector<std::uint8_t> completed;  ///< per plan sample
    std::vector<FarnessSum> dsum_own;     ///< per cut: Σ d(c, owned targets)
    std::vector<Dist> dcc;                ///< cut-pair distances, cut_count²
  };
  std::vector<BlockData> blocks;
  std::vector<FarnessSum> acc;         ///< Σ over a block's samples, per node
  std::vector<FarnessSum> acc_own;     ///< Σ over owned samples, per node
  std::vector<FarnessSum> intra_exact; ///< per sampled owned node: exact intra
  NodeId completed_total = 0;
  bool cut = false;  ///< deadline shed at least one planned source
};

}  // namespace brics
