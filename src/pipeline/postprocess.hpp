// Closed-form refinement of removed-node farness estimates.
//
// The sampling estimators first produce farness values for present nodes
// plus accumulator-based estimates for removed ones. For three record kinds
// a removed node's farness is an exact function of its anchor's farness
// (paper Facts III.3/III.4 are the sampled-counting special cases):
//
//   identical twin y of rep r:        farness(y) = farness(r)
//   pendant chain a_i (anchor u):     every path from a_i leaves via u, so
//       farness(a_i) = farness(u) + off_i (n - l) - sum_j off_j
//                      + sum_{j != i} |off_i - off_j|
//   cycle chain a_i (anchor u):       with m_i = min(off_i, total - off_i),
//       farness(a_i) = farness(u) + m_i (n - l) - sum_j m_j
//                      + sum_{j != i} cyc(i, j),
//       cyc(i,j) = min(|off_i - off_j|, total - |off_i - off_j|)
//
// Through-chain members (two distinct anchors; per-target min) and
// redundant nodes keep their accumulator estimates. The refined value is
// exact whenever the anchor's value is exact, which the `exact` mask
// propagates.
#pragma once

#include <span>

#include "reduce/ledger.hpp"

namespace brics {

/// Replace removed-node entries of `farness` with anchor-based closed forms
/// where available. `n` is the full node count of the original graph.
void refine_removed_estimates(const ReductionLedger& ledger, NodeId n,
                              std::span<double> farness,
                              std::span<std::uint8_t> exact);

}  // namespace brics
