#include "pipeline/stages.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/sampling.hpp"
#include "exec/failpoint.hpp"
#include "exec/recovery.hpp"
#include "obs/metrics.hpp"
#include "obs/request.hpp"
#include "obs/trace.hpp"
#include "pipeline/kernels.hpp"
#include "pipeline/postprocess.hpp"
#include "util/check.hpp"
#include "util/first_touch.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace brics {
namespace {

// Per-thread scratch for resolving a block's removed nodes on the global id
// space. Only entries touched by the current block are ever written, and
// they are re-set to kInfDist afterwards.
class GlobalResolveScratch {
 public:
  explicit GlobalResolveScratch(NodeId n) : dist_(n, kInfDist) {}

  std::span<Dist> dist() { return dist_; }

  void fill_block(const BlockInfo& bi, std::span<const Dist> local) {
    for (NodeId lv = 0; lv < bi.sub.to_old.size(); ++lv)
      dist_[bi.sub.to_old[lv]] = local[lv];
  }

  void clear_block(const BlockInfo& bi) {
    for (NodeId g : bi.sub.to_old) dist_[g] = kInfDist;
    for (NodeId g : bi.virtuals) dist_[g] = kInfDist;
  }

 private:
  std::vector<Dist> dist_;
};

// Thread-private accumulation arrays merged after each parallel phase.
class ThreadSums {
 public:
  explicit ThreadSums(NodeId n) : n_(n), bufs_(max_threads()) {}

  std::vector<FarnessSum>& local() {
    auto& b = bufs_[static_cast<std::size_t>(thread_id())];
    if (b.empty()) b.assign(n_, 0);
    return b;
  }

  std::vector<FarnessSum> merge() const {
    // First-touch + merge in one parallel static sweep: each thread zeroes
    // and sums the slice of `total` it will own under any later
    // schedule(static) reader. Per-element buffer order is unchanged.
    std::vector<FarnessSum> total;
    first_touch_assign(total, n_, FarnessSum{0});
    const std::int64_t sn = static_cast<std::int64_t>(n_);
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < sn; ++v)
      for (const auto& b : bufs_)
        if (!b.empty()) total[static_cast<std::size_t>(v)] += b[v];
    return total;
  }

 private:
  NodeId n_;
  std::vector<std::vector<FarnessSum>> bufs_;
};

// Home block of each ledger record: the block containing all its anchors
// (guaranteed to exist because anchors are pinned and, for through chains,
// joined by the compressed edge).
BlockId record_home(const ReductionLedger& ledger, const BccResult& bcc,
                    const ReductionLedger::OrderEntry& e) {
  using Kind = ReductionLedger::Kind;
  switch (e.kind) {
    case Kind::kIdentical:
      return bcc.blocks_of(ledger.identical()[e.index].rep).front();
    case Kind::kChain: {
      const ChainRecord& r = ledger.chains()[e.index];
      if (r.pendant() || r.cycle()) return bcc.blocks_of(r.u).front();
      auto bu = bcc.blocks_of(r.u), bv = bcc.blocks_of(r.v);
      std::vector<BlockId> common;
      std::set_intersection(bu.begin(), bu.end(), bv.begin(), bv.end(),
                            std::back_inserter(common));
      BRICS_CHECK_MSG(common.size() == 1,
                      "chain anchors share " << common.size() << " blocks");
      return common.front();
    }
    case Kind::kRedundant: {
      const RedundantRecord& r = ledger.redundant()[e.index];
      std::vector<BlockId> common(bcc.blocks_of(r.nbrs[0]).begin(),
                                  bcc.blocks_of(r.nbrs[0]).end());
      for (std::size_t i = 1; i < r.degree; ++i) {
        auto bi = bcc.blocks_of(r.nbrs[i]);
        std::vector<BlockId> next;
        std::set_intersection(common.begin(), common.end(), bi.begin(),
                              bi.end(), std::back_inserter(next));
        common = std::move(next);
      }
      BRICS_CHECK_MSG(!common.empty(), "redundant anchors share no block");
      return common.front();
    }
  }
  return kInvalidBlock;
}

void append_record_virtuals(const ReductionLedger& ledger,
                            const ReductionLedger::OrderEntry& e,
                            std::vector<NodeId>& out) {
  using Kind = ReductionLedger::Kind;
  switch (e.kind) {
    case Kind::kIdentical:
      out.push_back(ledger.identical()[e.index].node);
      break;
    case Kind::kChain: {
      const auto& m = ledger.chains()[e.index].members;
      out.insert(out.end(), m.begin(), m.end());
      break;
    }
    case Kind::kRedundant:
      out.push_back(ledger.redundant()[e.index].node);
      break;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ReduceStage
// ---------------------------------------------------------------------------

ReducedGraph ReduceStage::run(PipelineContext& ctx) const {
  ctx.set_phase(ExecPhase::kReduce);
  ReducedGraph rg(0);
  {
    PhaseScope scope("reduce", ctx.times().reduce_s);
    rg = reduce(ctx.graph(), ctx.opts().reduce);
    // Derived graphs follow the requested backend: an input loaded plain
    // still yields a compact working set from here on.
    if (ctx.opts().storage == AdjacencyStorage::kCompact)
      rg.graph.compress();
  }
  ctx.check_budget();
  return rg;
}

// ---------------------------------------------------------------------------
// DecomposeStage
// ---------------------------------------------------------------------------

Decomposition DecomposeStage::run(PipelineContext& ctx,
                                  const ReducedGraph& rg) const {
  ctx.set_phase(ExecPhase::kBcc);
  const NodeId n = rg.ledger.num_nodes();
  Decomposition dec;
  {
    PhaseScope scope("bcc", ctx.times().bcc_s);
    dec.bcc = biconnected_components(rg.graph, rg.present);
    dec.bct = build_bct(dec.bcc, n);
    const BlockId nb = dec.bcc.num_blocks();

    // Ownership: each present node belongs to exactly one owner block — its
    // home block for non-cuts, the BCT parent block for cuts.
    dec.owner.assign(n, kInvalidBlock);
    for (NodeId v = 0; v < n; ++v) {
      if (!rg.present[v]) continue;
      const CutId c = dec.bct.cut_of_node[v];
      dec.owner[v] =
          c == kInvalidCut ? dec.bcc.home_block(v) : dec.bct.parent_block[c];
    }

    dec.blocks.resize(nb);
    for (BlockId b = 0; b < nb; ++b) {
      BlockInfo& bi = dec.blocks[b];
      auto nodes = dec.bcc.block_nodes(b);
      bi.sub = induced_subgraph(rg.graph, nodes);
      if (ctx.opts().storage == AdjacencyStorage::kCompact)
        bi.sub.graph.compress();
      bi.owned.assign(nodes.size(), 0);
      for (NodeId lv = 0; lv < nodes.size(); ++lv) {
        const NodeId gv = bi.sub.to_old[lv];
        if (dec.bcc.is_cut(gv)) bi.cuts_local.push_back(lv);
        if (dec.owner[gv] == b) {
          bi.owned[lv] = 1;
          ++bi.own_mass;
        }
      }
      bi.cut_count = static_cast<std::uint32_t>(bi.cuts_local.size());
    }

    // Home every ledger record (and its removed nodes) to a block.
    dec.virt_owner.assign(n, kInvalidBlock);
    auto order = rg.ledger.order();
    for (std::uint32_t i = 0; i < order.size(); ++i) {
      if (!rg.ledger.record_active(i)) continue;
      const BlockId b = record_home(rg.ledger, dec.bcc, order[i]);
      dec.blocks[b].records.push_back(i);
      std::vector<NodeId> vs;
      append_record_virtuals(rg.ledger, order[i], vs);
      for (NodeId v : vs) {
        dec.virt_owner[v] = b;
        dec.blocks[b].virtuals.push_back(v);
      }
      dec.blocks[b].own_mass += vs.size();
    }
  }
  // The decomposition yields no reusable partial estimate, so a deadline
  // that fires here surfaces as BudgetExceeded; estimate_brics catches it
  // and degrades to plain sampling on the raw graph.
  ctx.check_budget();
  return dec;
}

// ---------------------------------------------------------------------------
// PlanStage
// ---------------------------------------------------------------------------

SamplePlan PlanStage::run(PipelineContext& ctx, const Decomposition& dec,
                          NodeId num_present) const {
  ctx.set_phase(ExecPhase::kPlan);
  BRICS_FAILPOINT("plan.build");
  BRICS_SPAN(sp_plan, "stage.plan");
  const EstimateOptions& opts = ctx.opts();
  const double rate = opts.sample_rate;
  BRICS_CHECK_MSG(rate > 0.0 && rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << rate);
  const BlockId nb = dec.num_blocks();
  const double k_total = std::ceil(rate * static_cast<double>(num_present));

  SamplePlan plan;
  plan.blocks.resize(nb);
  for (BlockId b = 0; b < nb; ++b) {
    const BlockInfo& bi = dec.blocks[b];
    BlockPlan& bp = plan.blocks[b];
    const NodeId bn = bi.num_nodes();
    // Cut vertices are always sampled and count toward the block's quota.
    bp.samples = bi.cuts_local;
    const double share = k_total * static_cast<double>(bn) /
                         static_cast<double>(num_present);
    NodeId want = static_cast<NodeId>(std::ceil(share));
    if (bi.cut_count == 0) want = std::max<NodeId>(want, 1);
    NodeId extra = want > bi.cut_count ? want - bi.cut_count : 0;
    std::vector<NodeId> non_cuts;
    non_cuts.reserve(bn - bi.cut_count);
    for (NodeId lv = 0; lv < bn; ++lv)
      if (!dec.bcc.is_cut(bi.sub.to_old[lv])) non_cuts.push_back(lv);
    extra = std::min<NodeId>(extra, static_cast<NodeId>(non_cuts.size()));
    if (extra > 0) {
      Rng rng = ctx.fork_rng(static_cast<std::uint64_t>(b) + 1);
      std::vector<NodeId> pick = pick_sample_sources(
          bi.sub.graph, non_cuts, extra, opts.strategy, rng);
      bp.samples.insert(bp.samples.end(), pick.begin(), pick.end());
    }
    // Mandatory prefix: the cut vertices (their traversals feed the exact
    // cross-block machinery and may never be shed), or one source for a
    // cut-less block so every block retains an intra estimate. Computed
    // once here; the cap below and the Traverse stage both reuse it.
    bp.mandatory =
        bi.cut_count > 0
            ? bi.cut_count
            : std::min<NodeId>(1, static_cast<NodeId>(bp.samples.size()));
    plan.planned_total += static_cast<NodeId>(bp.samples.size());
    plan.mandatory_total += bp.mandatory;
  }

  BRICS_COUNTER(c_planned, "plan.samples_planned");
  BRICS_COUNTER(c_mandatory, "plan.samples_mandatory");
  BRICS_COUNTER(c_shed, "plan.samples_shed");
  BRICS_COUNTER_ADD(c_planned, plan.planned_total);
  BRICS_COUNTER_ADD(c_mandatory, plan.mandatory_total);

  // ---- Source cap (RunBudget::max_sources). ----
  const NodeId cap = opts.budget.max_sources;
  if (cap > 0 && plan.planned_total > cap) {
    // A cap below the mandatory work can't be honoured by trimming; the
    // caller degrades to plain capped sampling instead.
    if (cap < plan.mandatory_total) throw BudgetExceeded(ExecPhase::kPlan);
    plan.capped = true;
    BRICS_COUNTER_ADD(c_shed, plan.planned_total - cap);
    // Distribute the surviving optional slots over blocks in one
    // proportional pass (largest remainder): block b keeps
    // floor(optional_b * keep_total / optional_total) of its optional
    // samples, and the rounding leftover goes to the largest fractional
    // parts (ties to the lower block id). Deterministic, one pass, and
    // the loss is spread proportionally to each block's optional load.
    const std::uint64_t keep_total = cap - plan.mandatory_total;
    const std::uint64_t opt_total = plan.planned_total - plan.mandatory_total;
    std::vector<NodeId> keep(nb, 0);
    std::vector<std::pair<std::uint64_t, BlockId>> rem;
    rem.reserve(nb);
    std::uint64_t assigned = 0;
    for (BlockId b = 0; b < nb; ++b) {
      const BlockPlan& bp = plan.blocks[b];
      const std::uint64_t optional =
          bp.samples.size() - static_cast<std::uint64_t>(bp.mandatory);
      const std::uint64_t prod = optional * keep_total;
      keep[b] = static_cast<NodeId>(prod / opt_total);
      assigned += keep[b];
      if (prod % opt_total != 0) rem.emplace_back(prod % opt_total, b);
    }
    std::sort(rem.begin(), rem.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second < y.second;
    });
    std::uint64_t leftover = keep_total - assigned;
    BRICS_CHECK_MSG(leftover <= rem.size(),
                    "largest-remainder leftover exceeds fractional blocks");
    for (std::uint64_t i = 0; i < leftover; ++i) ++keep[rem[i].second];
    for (BlockId b = 0; b < nb; ++b) {
      BlockPlan& bp = plan.blocks[b];
      bp.samples.resize(bp.mandatory + keep[b]);
    }
  }

  // Resolve each block's kernel against its post-cap source count.
  for (BlockId b = 0; b < nb; ++b) {
    BlockPlan& bp = plan.blocks[b];
    bp.kernel = select_kernel(dec.blocks[b].sub.graph,
                              static_cast<NodeId>(bp.samples.size()),
                              opts.kernel);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// TraverseStage
// ---------------------------------------------------------------------------

TraversalResults TraverseStage::run(PipelineContext& ctx,
                                    const ReducedGraph& rg,
                                    const Decomposition& dec,
                                    const SamplePlan& plan) const {
  ctx.set_phase(ExecPhase::kTraverse);
  const NodeId n = rg.ledger.num_nodes();
  const BlockId nb = dec.num_blocks();

  TraversalResults trav;
  trav.blocks.resize(nb);
  for (BlockId b = 0; b < nb; ++b) {
    const std::uint32_t cc = dec.blocks[b].cut_count;
    trav.blocks[b].completed.assign(plan.blocks[b].samples.size(), 0);
    trav.blocks[b].dsum_own.assign(cc, 0);
    trav.blocks[b].dcc.assign(static_cast<std::size_t>(cc) * cc, 0);
  }
  trav.intra_exact.assign(n, 0);

  // Resume: adopt a prior attempt's partial traversal. Its accumulators
  // become the base the live per-thread sums add onto, and its completion
  // flags make the kernels (and the task build below) skip every source
  // whose fold already happened — integer sums, so the union of two
  // partial attempts is bit-identical to one uninterrupted run.
  Recovery* rec = ctx.recovery();
  std::vector<FarnessSum> base_acc, base_acc_own;
  if (rec != nullptr) {
    TraversalResults prior;
    if (rec->load_traversal(prior, dec, plan)) {
      base_acc = std::move(prior.acc);
      base_acc_own = std::move(prior.acc_own);
      trav.blocks = std::move(prior.blocks);
      trav.intra_exact = std::move(prior.intra_exact);
    }
  }

  // Parallel shape: a block whose plan chose the batched kernel is ONE
  // task (all its sources, mandatory prefix included, run back to back on
  // one thread); every other block contributes one task per source.
  // Per-source mandatory tasks go first so the deadline can only shed
  // optional ones — batched tasks protect their own mandatory prefix
  // internally (the kernel never aborts a source below `mandatory`).
  // Tasks whose sources all completed in a prior attempt are not rebuilt.
  struct Task {
    BlockId b;
    std::uint32_t first, count;
  };
  std::vector<Task> tasks;
  for (BlockId b = 0; b < nb; ++b) {
    if (plan.blocks[b].kernel == KernelChoice::kBatched) continue;
    for (std::uint32_t si = 0; si < plan.blocks[b].mandatory; ++si)
      if (!trav.blocks[b].completed[si]) tasks.push_back({b, si, 1});
  }
  for (BlockId b = 0; b < nb; ++b) {
    const BlockPlan& bp = plan.blocks[b];
    if (bp.kernel != KernelChoice::kBatched || bp.samples.empty()) continue;
    bool pending = false;
    for (std::uint8_t c : trav.blocks[b].completed) pending |= (c == 0);
    if (pending)
      tasks.push_back({b, 0, static_cast<std::uint32_t>(bp.samples.size())});
  }
  for (BlockId b = 0; b < nb; ++b) {
    const BlockPlan& bp = plan.blocks[b];
    if (bp.kernel == KernelChoice::kBatched) continue;
    for (std::uint32_t si = bp.mandatory; si < bp.samples.size(); ++si)
      if (!trav.blocks[b].completed[si]) tasks.push_back({b, si, 1});
  }

  ThreadSums acc(n);      // over all of the block's samples
  ThreadSums acc_own(n);  // over samples owned by the block (exact terms)

  // Retry/quarantine state (docs/ROBUSTNESS.md). Exceptions must never
  // escape the OpenMP region, so every task catches its own faults: a
  // pre-fold fault retries with jittered backoff; a task that keeps
  // failing quarantines its block; a mid-fold fault poisons the
  // accumulators and escalates after the region.
  std::vector<std::uint8_t> quarantined(nb, 0);
  std::atomic<std::uint32_t> retries{0};
  std::atomic<bool> fold_fault{false};
  const int max_attempts = std::max(1, ctx.opts().retry.max_attempts);
  const std::uint32_t backoff_ms = ctx.opts().retry.backoff_ms;

  const CancelToken& token = ctx.token();
  auto run_task = [&](std::size_t ti, TraversalWorkspace& ws,
                      GlobalResolveScratch& scratch) {
    const Task& task = tasks[ti];
    const BlockInfo& bi = dec.blocks[task.b];
    const BlockPlan& bp = plan.blocks[task.b];
    TraversalResults::BlockData& bd = trav.blocks[task.b];
    const TraversalKernel& kernel = kernel_for(bp.kernel);
    // Fold one completed traversal into the accumulators (old P1 body).
    // Distinct (block, sample) pairs write disjoint slots; acc/acc_own
    // are per-thread buffers, so the fold is race-free.
    const SourceSink sink = [&](std::size_t si,
                                std::span<const Dist> local) {
      // Injection point BEFORE any shared write: a fault here leaves the
      // accumulators untouched, so the task is safe to retry.
      BRICS_FAILPOINT("traverse.sink");
      try {
        const NodeId ls = bp.samples[si];
        const NodeId gs = bi.sub.to_old[ls];
        scratch.fill_block(bi, local);
        rg.ledger.resolve_subset(scratch.dist(), bi.records);

        const bool src_is_cut = si < bi.cut_count;
        const bool src_owned = dec.owner[gs] == task.b;

        // Distance sums over the block's owned population
        // (present + virtual).
        FarnessSum own_sum = 0;
        auto& accbuf = acc.local();
        auto& ownbuf = acc_own.local();
        for (NodeId lv = 0; lv < bi.sub.to_old.size(); ++lv) {
          const NodeId gv = bi.sub.to_old[lv];
          if (!bi.owned[lv]) continue;
          own_sum += local[lv];
          accbuf[gv] += local[lv];
          if (src_owned) ownbuf[gv] += local[lv];
        }
        for (NodeId gv : bi.virtuals) {
          const Dist d = scratch.dist()[gv];
          BRICS_CHECK_MSG(d != kInfDist, "unresolved virtual " << gv);
          own_sum += d;
          accbuf[gv] += d;
          if (src_owned) ownbuf[gv] += d;
        }
        if (src_owned) trav.intra_exact[gs] = own_sum;  // d(gs,gs)=0 incl.

        if (src_is_cut) {
          bd.dsum_own[si] = own_sum;
          for (std::uint32_t cj = 0; cj < bi.cut_count; ++cj)
            bd.dcc[static_cast<std::size_t>(si) * bi.cut_count + cj] =
                local[bi.cuts_local[cj]];
        }
        scratch.clear_block(bi);
      } catch (...) {
        // Past the first accumulator write a retry would double-count;
        // poison the stage so the composition falls back instead.
        fold_fault.store(true, std::memory_order_relaxed);
        throw;
      }
    };
    for (int attempt = 1;; ++attempt) {
      try {
        BRICS_FAILPOINT("traverse.task");
        kernel.run(bi.sub.graph, bp.samples, task.first, task.count,
                   bp.mandatory, &token, ws, bd.completed, sink);
        return;
      } catch (const std::exception&) {
        if (fold_fault.load(std::memory_order_relaxed)) return;
        if (attempt >= max_attempts) {
#pragma omp atomic write
          quarantined[task.b] = 1;
          BRICS_COUNTER(c_quar, "traverse.quarantined_tasks");
          BRICS_COUNTER_ADD(c_quar, 1);
          return;
        }
        retries.fetch_add(1, std::memory_order_relaxed);
        BRICS_COUNTER(c_retry, "traverse.retries");
        BRICS_COUNTER_ADD(c_retry, 1);
        // Jittered exponential backoff, deterministic per (task, attempt)
        // so test runs reproduce. Kernel re-entry is idempotent: sources
        // completed before the fault are flagged and skipped.
        const std::uint64_t base = static_cast<std::uint64_t>(backoff_ms)
                                   << (attempt - 1);
        if (base > 0) {
          const std::uint64_t jitter =
              mix64((static_cast<std::uint64_t>(ti) << 8) ^
                    static_cast<std::uint64_t>(attempt)) %
              (base + 1);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(base + jitter));
        }
      }
    }
  };

  // Merge the live per-thread sums (plus any resumed base) into `out` and
  // refresh the completion accounting. Used both for the final result and
  // for mid-stage wave snapshots.
  auto merge_into = [&](TraversalResults& out) {
    out.acc = acc.merge();
    out.acc_own = acc_own.merge();
    if (!base_acc.empty()) {
      for (NodeId v = 0; v < n; ++v) {
        out.acc[v] += base_acc[v];
        out.acc_own[v] += base_acc_own[v];
      }
    }
    out.completed_total = 0;
    for (const TraversalResults::BlockData& bd : out.blocks)
      for (std::uint8_t c : bd.completed) out.completed_total += c;
    out.cut = out.completed_total < plan.total_sources();
  };

  PhaseScope scope("traverse", ctx.times().traverse_s);
  // Wave execution: with --checkpoint-every N the task list runs in
  // chunks of N, and a wave-complete TraversalResults snapshot persists
  // after each chunk — a SIGKILL mid-stage loses at most one wave. The
  // barrier between waves is what makes the snapshot consistent: every
  // completion flag set implies its fold fully merged.
  const std::size_t nt = tasks.size();
  std::size_t wave = nt;
  if (rec != nullptr && rec->checkpoint_every() > 0)
    wave = std::min<std::size_t>(rec->checkpoint_every(), nt);
  // Thread-local request id does not cross the OpenMP fork; re-enter the
  // scope inside each region so task/kernel spans land on the serving
  // request's trace lane (obs/request.hpp).
  const std::uint64_t req_id = current_request_id();
  for (std::size_t begin = 0; begin < nt; begin += wave) {
    const std::size_t end = std::min(nt, begin + wave);
#pragma omp parallel
    {
      RequestIdScope rscope(req_id);
      TraversalWorkspace ws;
      GlobalResolveScratch scratch(n);
#pragma omp for schedule(dynamic, 4)
      for (std::int64_t t = static_cast<std::int64_t>(begin);
           t < static_cast<std::int64_t>(end); ++t) {
        run_task(static_cast<std::size_t>(t), ws, scratch);
      }
    }
    if (rec != nullptr && end < nt &&
        !fold_fault.load(std::memory_order_relaxed)) {
      TraversalResults snap = trav;
      merge_into(snap);
      rec->save_traversal(snap);
    }
  }
  merge_into(trav);

  // Retry/quarantine accounting for the run report.
  ctx.rstats().retries += retries.load(std::memory_order_relaxed);
  std::uint32_t quarantined_blocks = 0;
  bool mandatory_lost = false;
  for (BlockId b = 0; b < nb; ++b) {
    if (!quarantined[b]) continue;
    ++quarantined_blocks;
    for (std::uint32_t si = 0; si < plan.blocks[b].mandatory; ++si)
      if (!trav.blocks[b].completed[si]) mandatory_lost = true;
  }
  ctx.rstats().quarantined_blocks += quarantined_blocks;
  if (quarantined_blocks > 0) {
    BRICS_COUNTER(c_qb, "traverse.quarantined_blocks");
    BRICS_COUNTER_ADD(c_qb, quarantined_blocks);
  }

  // A poisoned accumulator can never be checkpointed or aggregated; lost
  // mandatory work breaks the exact cross-block machinery. Both escalate
  // (estimate_brics falls back to plain sampling). Quarantined
  // optional-only work stays: trav.cut already routes it through the
  // standard degraded accounting.
  if (fold_fault.load(std::memory_order_relaxed))
    throw QuarantineError(
        "traversal fold fault poisoned the accumulators");
  if (rec != nullptr) rec->save_traversal(trav);
  if (mandatory_lost)
    throw QuarantineError("quarantine lost mandatory traversal work");

  BRICS_COUNTER(c_completed, "plan.samples_completed");
  BRICS_COUNTER_ADD(c_completed, trav.completed_total);
  return trav;
}

// ---------------------------------------------------------------------------
// AggregateStage
// ---------------------------------------------------------------------------

EstimateResult AggregateStage::run(PipelineContext& ctx,
                                   const ReducedGraph& rg,
                                   const Decomposition& dec,
                                   const SamplePlan& plan,
                                   const TraversalResults& trav) const {
  BRICS_FAILPOINT("aggregate.combine");
  const NodeId n = rg.ledger.num_nodes();
  const BlockId nb = dec.num_blocks();
  const BlockCutTree& bct = dec.bct;

  EstimateResult res;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);
  res.num_blocks = nb;
  res.samples = trav.completed_total;
  res.planned_samples = plan.planned_total;
  res.achieved_sample_rate = ctx.opts().sample_rate *
                             static_cast<double>(trav.completed_total) /
                             static_cast<double>(plan.planned_total);
  if (trav.cut) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kTraverse;
  } else if (plan.capped) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kPlan;
  }

  PhaseScope scope("combine", ctx.times().combine_s);

  // Live sample lists: the planned samples whose traversal completed.
  // Everything downstream (beta calibration, intra rescaling, exact flags)
  // keys off these, so a partial TraversalResults *is* the
  // rescaling-by-achieved-sample-count — no re-run needed. The mandatory
  // prefix always completed, so cuts stay a prefix of every live list and
  // the cut data (dsum_own, dcc) is intact.
  std::vector<std::vector<NodeId>> live(nb);
  for (BlockId b = 0; b < nb; ++b) {
    const BlockPlan& bp = plan.blocks[b];
    live[b].reserve(bp.samples.size());
    for (std::size_t si = 0; si < bp.samples.size(); ++si)
      if (trav.blocks[b].completed[si]) live[b].push_back(bp.samples[si]);
  }

  // ---- Tree DP over the BCT (Algorithm 6). ----
  std::vector<FarnessSum> down_w(bct.num_cuts(), 0),
      down_d(bct.num_cuts(), 0);
  std::vector<FarnessSum> sub_w(nb, 0), sub_d_at_p(nb, 0);
  std::vector<FarnessSum> comp_total(nb, 0);
  std::vector<std::vector<FarnessSum>> ow(nb), od(nb);
  std::vector<FarnessSum> od_total(nb, 0);
  for (BlockId b = 0; b < nb; ++b) {
    ow[b].assign(dec.blocks[b].cut_count, 0);
    od[b].assign(dec.blocks[b].cut_count, 0);
  }

  auto cut_dist = [&](BlockId b, std::size_t i, std::size_t j) -> Dist {
    return trav.blocks[b].dcc[i * dec.blocks[b].cut_count + j];
  };
  auto cut_slot = [&](const BlockInfo& bi, CutId c) -> std::uint32_t {
    // Index of global cut c within bi.cuts_local.
    for (std::uint32_t i = 0; i < bi.cut_count; ++i)
      if (bct.cut_of_node[bi.sub.to_old[bi.cuts_local[i]]] == c) return i;
    BRICS_CHECK_MSG(false, "cut not found in block");
    return 0;
  };

  // Bottom-up (leaves to roots).
  for (auto it = bct.top_down.rbegin(); it != bct.top_down.rend(); ++it) {
    const BlockId b = *it;
    const BlockInfo& bi = dec.blocks[b];
    const CutId p = bct.parent_cut[b];
    std::uint32_t pslot = 0;
    FarnessSum w = bi.own_mass, d_at_p = 0;
    if (p != kInvalidCut) {
      pslot = cut_slot(bi, p);
      d_at_p = trav.blocks[b].dsum_own[pslot];
    }
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci) {
      const CutId c = bct.cut_of_node[bi.sub.to_old[bi.cuts_local[ci]]];
      if (c == p) continue;
      w += down_w[c];
      if (p != kInvalidCut)
        d_at_p += down_d[c] + down_w[c] * cut_dist(b, pslot, ci);
    }
    sub_w[b] = w;
    sub_d_at_p[b] = d_at_p;
    if (p != kInvalidCut) {
      down_w[p] += w;
      down_d[p] += d_at_p;
    }
  }

  // Top-down: finalise (ow, od) per (block, cut) and hand each cut the
  // "everything above" carry for its child blocks.
  std::vector<FarnessSum> up_at_d(bct.num_cuts(), 0);
  for (BlockId b : bct.top_down) {
    const BlockInfo& bi = dec.blocks[b];
    const CutId p = bct.parent_cut[b];
    if (p == kInvalidCut) {
      comp_total[b] = sub_w[b];
    } else {
      comp_total[b] = comp_total[bct.parent_block[p]];
    }
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci) {
      const CutId c = bct.cut_of_node[bi.sub.to_old[bi.cuts_local[ci]]];
      if (c == p) {
        ow[b][ci] = comp_total[b] - sub_w[b];
        od[b][ci] = up_at_d[p] + (down_d[p] - sub_d_at_p[b]);
      } else {
        ow[b][ci] = down_w[c];
        od[b][ci] = down_d[c];
      }
    }
    // Per-block mass-conservation invariant.
    FarnessSum check = bi.own_mass;
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci) check += ow[b][ci];
    BRICS_CHECK_MSG(check == comp_total[b],
                    "BCT mass mismatch in block " << b);
    od_total[b] = 0;
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci)
      od_total[b] += od[b][ci];
    // Carry for children hanging below each cut of this block.
    for (std::uint32_t ci = 0; ci < bi.cut_count; ++ci) {
      const CutId c = bct.cut_of_node[bi.sub.to_old[bi.cuts_local[ci]]];
      if (bct.parent_block[c] != b) continue;  // carries flow to children
      FarnessSum d_here = trav.blocks[b].dsum_own[ci];
      for (std::uint32_t cj = 0; cj < bi.cut_count; ++cj) {
        if (cj == ci) continue;
        d_here += ow[b][cj] * cut_dist(b, ci, cj) + od[b][cj];
      }
      up_at_d[c] = d_here;
    }
  }

  // ---- P2: cut re-traversals push exact cross-block contributions onto
  // every node of their block (Algorithm 5 step 3 / step 4 prep). ----
  std::vector<std::pair<BlockId, std::uint32_t>> cut_tasks;
  for (BlockId b = 0; b < nb; ++b)
    for (std::uint32_t ci = 0; ci < dec.blocks[b].cut_count; ++ci)
      cut_tasks.emplace_back(b, ci);

  ThreadSums cross(n);
  const std::uint64_t req_id = current_request_id();
#pragma omp parallel
  {
    RequestIdScope rscope(req_id);
    TraversalWorkspace ws;
    GlobalResolveScratch scratch(n);
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t t = 0; t < static_cast<std::int64_t>(cut_tasks.size());
         ++t) {
      const auto [b, ci] = cut_tasks[static_cast<std::size_t>(t)];
      const BlockInfo& bi = dec.blocks[b];
      if (ow[b][ci] == 0) continue;  // nothing behind this cut
      const NodeId ls = bi.cuts_local[ci];
      sssp(bi.sub.graph, ls, ws);
      std::span<const Dist> local = ws.dist();
      scratch.fill_block(bi, local);
      rg.ledger.resolve_subset(scratch.dist(), bi.records);
      auto& buf = cross.local();
      for (NodeId lv = 0; lv < bi.sub.to_old.size(); ++lv)
        if (bi.owned[lv]) buf[bi.sub.to_old[lv]] += ow[b][ci] * local[lv];
      for (NodeId gv : bi.virtuals)
        buf[gv] += ow[b][ci] * scratch.dist()[gv];
      scratch.clear_block(bi);
    }
  }

  // ---- Finalise farness values (Algorithm 5 step 4). ----
  const std::vector<FarnessSum>& acc_sum = trav.acc;
  const std::vector<FarnessSum>& own_sum_v = trav.acc_own;
  std::vector<FarnessSum> cross_sum = cross.merge();

  // Sampled present nodes are exact; everyone else scales the intra part.
  std::vector<std::uint8_t> sampled(n, 0);
  for (BlockId b = 0; b < nb; ++b)
    for (NodeId ls : live[b]) sampled[dec.blocks[b].sub.to_old[ls]] = 1;

  // Intra-block estimator for a non-sampled node v owned by block B:
  //   intra(v) = acc_own[v]                                  (exact terms)
  //            + beta_B * (T - 1 - |S_own|) * acc[v]/|S_all| (remainder)
  // where T is the owned population, S_own the owned samples (their
  // distances from v are known exactly), S_all every sample of the block.
  // The raw remainder (sample-mean distance x unknown-target count) is
  // biased: forced cut-vertex samples sit centrally and removed nodes
  // (chain tails, twins) sit farther than the sample mean. Sampled nodes
  // know their exact intra sums, so each block learns the multiplicative
  // correction beta_B that makes the remainder unbiased on its own samples.
  std::vector<double> beta(nb, 1.0);
  std::vector<NodeId> n_own_samples(nb, 0);
  for (BlockId b = 0; b < nb; ++b) {
    const BlockInfo& bi = dec.blocks[b];
    for (NodeId ls : live[b])
      if (dec.owner[bi.sub.to_old[ls]] == b) ++n_own_samples[b];
    const double ns_all = static_cast<double>(live[b].size());
    const double ns_own = static_cast<double>(n_own_samples[b]);
    if (ns_all < 2) continue;
    const double targets = static_cast<double>(bi.own_mass) - 1.0;
    // For a sampled owned node s, the unknown-target count is
    // targets - (ns_own - 1): the other owned samples are known exactly.
    const double unknown_s = targets - (ns_own - 1.0);
    if (unknown_s <= 0.0) continue;  // fully sampled block: no remainder
    double exact_rem = 0.0, raw_rem = 0.0;
    for (NodeId ls : live[b]) {
      const NodeId gs = bi.sub.to_old[ls];
      if (dec.owner[gs] != b) continue;
      exact_rem += static_cast<double>(trav.intra_exact[gs]) -
                   static_cast<double>(own_sum_v[gs]);
      raw_rem +=
          static_cast<double>(acc_sum[gs]) / (ns_all - 1.0) * unknown_s;
    }
    if (raw_rem > 0.0 && exact_rem > 0.0) beta[b] = exact_rem / raw_rem;
  }

  for (NodeId v = 0; v < n; ++v) {
    const BlockId b = rg.present[v] ? dec.owner[v] : dec.virt_owner[v];
    BRICS_CHECK_MSG(b != kInvalidBlock, "node " << v << " has no owner");
    const BlockInfo& bi = dec.blocks[b];
    double intra;
    if (rg.present[v] && sampled[v]) {
      intra = static_cast<double>(trav.intra_exact[v]);
      res.exact[v] = 1;
    } else {
      // Exact terms to owned samples plus the calibrated remainder.
      const double ns_all = static_cast<double>(live[b].size());
      const double ns_own = static_cast<double>(n_own_samples[b]);
      const double unknown =
          static_cast<double>(bi.own_mass) - 1.0 - ns_own;
      intra = static_cast<double>(own_sum_v[v]);
      if (ns_all > 0 && unknown > 0)
        intra +=
            beta[b] * static_cast<double>(acc_sum[v]) / ns_all * unknown;
    }
    res.farness[v] = intra + static_cast<double>(cross_sum[v]) +
                     static_cast<double>(od_total[b]);
  }
  refine_removed_estimates(rg.ledger, n, res.farness, res.exact);
  return res;
}

}  // namespace brics
