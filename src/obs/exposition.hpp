// Prometheus-style text exposition over a MetricsSnapshot.
//
// The daemon's kMetrics request returns two renderings of one snapshot:
// this text exposition (for scraping / eyeballing) and the JSON snapshot
// (metrics_snapshot_json in src/server). The format follows the Prometheus
// text conventions — `# TYPE` comments, `_bucket{le="..."}` cumulative
// histogram series with a `+Inf` bucket and a `_count` series — with the
// one deviation that histogram `_sum` is omitted (the fixed-bucket
// histograms do not track an exact sum; docs/OBSERVABILITY.md).
//
// Metric names are mangled "brics." -> "brics_" style: every '.' in a
// registry name becomes '_' and the "brics_" namespace prefix is added,
// so "server.request_latency_us" exposes as
// "brics_server_request_latency_us".
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace brics {

/// Registry name -> exposition name ('.' -> '_', "brics_" prefix).
std::string exposition_name(const std::string& name);

/// Render a full snapshot in Prometheus text exposition style.
std::string to_prometheus(const MetricsSnapshot& snap);

}  // namespace brics
