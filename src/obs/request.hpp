// Per-request correlation id, threaded through the daemon's thread hops.
//
// The server assigns every admitted request a monotonic sequence number
// (distinct from the client-chosen, echoed request_id — clients may reuse
// theirs; the server's is unique for the process lifetime). The worker
// serving the request enters a RequestIdScope, and everything downstream
// that runs on that thread — tracing spans, flight-recorder events, the
// engine's commit hook — reads current_request_id() without any plumbing
// through the estimator's call graph.
//
// The id is thread-local, so it does NOT cross an OpenMP fork on its own:
// parallel regions that want their spans attributed to the request capture
// the id before the fork and re-enter a RequestIdScope inside the region
// (see pipeline/stages.cpp). Id 0 means "no request context" and renders
// on the owning thread's worker lane instead of a request lane.
//
// Always compiled in (the flight recorder needs it in OFF builds too);
// the cost is one thread-local store per scope.
#pragma once

#include <cstdint>

namespace brics {

namespace detail {
inline std::uint64_t& request_id_tls() {
  thread_local std::uint64_t id = 0;
  return id;
}
}  // namespace detail

/// The request id of the request this thread is currently serving, or 0.
inline std::uint64_t current_request_id() { return detail::request_id_tls(); }

/// RAII: set the calling thread's request id for the scope's duration,
/// restoring the previous value on exit (scopes nest across the worker ->
/// engine -> pipeline call chain).
class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t id)
      : prev_(detail::request_id_tls()) {
    detail::request_id_tls() = id;
  }
  ~RequestIdScope() { detail::request_id_tls() = prev_; }

  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace brics
