#include "obs/parallel.hpp"

#include <algorithm>

namespace brics {

ParallelStats derive_parallel_stats(std::vector<ThreadWork> per_thread,
                                    int threads) {
  ParallelStats s;
  s.per_thread = std::move(per_thread);
  s.threads = threads;
  int active = 0;
  for (const ThreadWork& w : s.per_thread) {
    s.busy_total_s += w.busy_s;
    s.busy_max_s = std::max(s.busy_max_s, w.busy_s);
    if (w.busy_s > 0.0) ++active;
  }
  if (active == 0 || s.busy_max_s <= 0.0) return s;
  s.busy_mean_s = s.busy_total_s / active;
  s.imbalance = s.busy_max_s / s.busy_mean_s;
  s.speedup = s.busy_total_s / s.busy_max_s;
  const int denom = threads > 0 ? threads : active;
  s.efficiency = s.speedup / denom;
  return s;
}

ParallelStats collect_parallel_stats(const MetricsRegistry& reg,
                                     int threads) {
#if BRICS_METRICS_ENABLED
  const Counter* busy = reg.find_counter("traverse.busy_ns");
  const Counter* edges = reg.find_counter("traverse.edges_relaxed");
  const Counter* nodes = reg.find_counter("traverse.nodes_settled");
  const Counter* bfs = reg.find_counter("traverse.bfs_sources");
  const Counter* dial = reg.find_counter("traverse.dial_sources");
  const auto slot = [](const Counter* c, std::size_t i) -> std::uint64_t {
    return c == nullptr ? 0 : c->slot_value(i);
  };
  std::vector<ThreadWork> table;
  for (std::size_t i = 0; i < metric_thread_slots(); ++i) {
    ThreadWork w;
    w.slot = static_cast<std::uint32_t>(i);
    w.busy_s = static_cast<double>(slot(busy, i)) * 1e-9;
    w.edges = slot(edges, i);
    w.nodes = slot(nodes, i);
    w.sources = slot(bfs, i) + slot(dial, i);
    if (w.busy_s > 0.0 || w.edges != 0 || w.nodes != 0 || w.sources != 0)
      table.push_back(w);
  }
  return derive_parallel_stats(std::move(table), threads);
#else
  (void)reg;
  ParallelStats s;
  s.threads = threads;
  return s;
#endif
}

}  // namespace brics
