// Flight recorder: a fixed-size lock-free ring of recent daemon events.
//
// Always on, in both metrics configurations — this is the black box that
// ships a postmortem with every soak/chaos failure, so it must not vanish
// with -DBRICS_METRICS=OFF. The event-kind labels below are deliberately
// plain words ("admit", "shed", ...), never dotted metric names, so the
// zero-metric-strings guarantee of the OFF build survives (CI greps the
// stripped binaries).
//
// Writer path (record()): one fetch_add to claim a slot, plain stores of
// the fixed-size payload, one release store of the slot sequence. No
// locks, no allocation, wait-free — safe from the accept loop, readers,
// workers, the watchdog, and the engine's commit path concurrently.
// Readers (snapshot()/dump) run a per-slot seqlock check and simply skip
// slots that are mid-write or got overwritten during the copy: a dump
// taken while the server is under load is a consistent set of whole
// events, merely possibly missing the one being written that instant.
//
// dump_to_fd() is the fatal-signal path: it formats events with snprintf
// into a stack buffer and write(2)s them — no allocation, no locks, no
// stdio streams — so a SIGSEGV handler can leave a readable
// `<socket>.flight.json` behind before re-raising.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace brics {

enum class FlightEventKind : std::uint8_t {
  kAdmit = 1,       ///< request admitted to the worker queue (or inline)
  kReply = 2,       ///< reply written; a = status, b = latency (us, capped)
  kShed = 3,        ///< admission queue full; request shed OVERLOADED
  kRefuse = 4,      ///< draining; request refused SHUTTING-DOWN
  kQuarantine = 5,  ///< watchdog quarantined the worker serving req
  kCommit = 6,      ///< engine committed a graph-state segment; b = version
  kFailPoint = 7,   ///< an armed fail point fired; label = site name
  kDrain = 8,       ///< graceful drain started / finished
};

/// Render as a short lower-case word (stable — part of the dump schema).
const char* to_string(FlightEventKind k);

/// One recorded event. `label` must be a string literal (or otherwise
/// immortal): the ring stores the pointer, and the fatal-signal dump
/// formats it long after the recording scope unwound.
struct FlightEvent {
  std::uint64_t ts_us = 0;  ///< microseconds since recorder construction
  std::uint64_t req = 0;    ///< server request sequence id (0 = none)
  std::uint32_t a = 0;      ///< kind-specific small payload
  std::uint32_t b = 0;      ///< kind-specific small payload
  FlightEventKind kind = FlightEventKind::kAdmit;
  const char* label = nullptr;  ///< optional (fail-point site, status word)
};

class FlightRecorder {
 public:
  /// Ring capacity is rounded up to a power of two; the default keeps the
  /// recorder at a few hundred KB and a dump at "the last ~4k events".
  explicit FlightRecorder(std::size_t capacity = 4096);

  static FlightRecorder& global();

  /// Record one event (wait-free, never throws, never blocks).
  void record(FlightEventKind kind, std::uint64_t req, std::uint32_t a = 0,
              std::uint32_t b = 0, const char* label = nullptr) noexcept;

  /// Whole events currently in the ring, oldest first. Torn slots are
  /// skipped, not repaired.
  std::vector<FlightEvent> snapshot() const;

  /// Total events ever recorded (>= ring capacity means the oldest were
  /// overwritten — the dump reports how many are gone).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Dump schema (docs/OBSERVABILITY.md):
  ///   {"flight_schema_version": 1, "reason": "...", "recorded": N,
  ///    "dropped": M, "events": [{"ts_us":..., "kind":"admit",
  ///    "req":..., "a":..., "b":..., "label":"..."}]}
  std::string to_json(const char* reason) const;

  /// Write to_json(reason) to `path` (truncate). Returns false on I/O
  /// failure; never throws. This is the watchdog/drain dump path.
  bool dump_to_file(const std::string& path, const char* reason) const;

  /// Signal-tolerable dump: snprintf into a stack buffer + write(2), no
  /// allocation or locks. The fatal-signal handler in brics_serve opens
  /// the file with open(2) and calls this.
  void dump_to_fd(int fd, const char* reason) const noexcept;

  std::size_t capacity() const { return slots_.size(); }

 private:
  // Payload fields are relaxed atomics so a dump racing a writer is a
  // skipped slot, not a data race (the tsan CI job runs the watchdog
  // tests, which dump mid-flight). The seq field brackets the payload:
  // 0 = never written; otherwise claim-ticket + 1, release-stored after
  // the payload so an acquire re-load validates the copy.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint64_t> req{0};
    std::atomic<std::uint32_t> a{0};
    std::atomic<std::uint32_t> b{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<const char*> label{nullptr};
  };

  /// Seqlock read of one slot; false = empty or torn.
  bool read_slot(std::size_t idx, FlightEvent& out) const noexcept;

  std::chrono::steady_clock::time_point t0_;
  std::atomic<std::uint64_t> head_{0};
  std::vector<Slot> slots_;
};

}  // namespace brics
