#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace brics {

std::size_t metric_thread_slots() {
  // Exactly the set_threads() ceiling (util/parallel.hpp): thread counts
  // raised later through set_threads() can never exceed it, so every
  // OpenMP thread id stays on a private slot even when the raise happens
  // after the first metric touch fixed this size.
  return static_cast<std::size_t>(thread_ceiling());
}

Counter::Counter() : slots_(metric_thread_slots()) {}

std::uint64_t Counter::slot_value(std::size_t slot) const noexcept {
  return slots_[slot & (slots_.size() - 1)].v.load(
      std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : slots_)
    total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::span<const std::uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  BRICS_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must be ascending");
  // One overflow bucket past the last bound; each thread's bucket block is
  // a contiguous run of padded cells, so threads never share a cache line.
  stride_ = bounds_.size() + 1;
  cells_ = std::vector<detail::PaddedCell>(
      stride_ * metric_thread_slots());
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(stride_, 0);
  for (std::size_t t = 0; t < metric_thread_slots(); ++t)
    for (std::size_t b = 0; b < stride_; ++b)
      out[b] += cells_[t * stride_ + b].v.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_)
    total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

std::span<const std::uint64_t> pow2_bounds() {
  static const std::vector<std::uint64_t> bounds = [] {
    std::vector<std::uint64_t> b;
    for (std::uint64_t v = 1; v <= (1u << 20); v <<= 1) b.push_back(v);
    return b;
  }();
  return bounds;
}

std::span<const std::uint64_t> pow2_time_bounds() {
  static const std::vector<std::uint64_t> bounds = [] {
    std::vector<std::uint64_t> b;
    for (std::uint64_t v = 1; v <= (1u << 30); v <<= 1) b.push_back(v);
    return b;
  }();
  return bounds;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.field(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.field(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (std::uint64_t b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.field("total", h.total);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, std::span<const std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(bounds)))
             .first;
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : hists_) {
    MetricsSnapshot::Hist hs;
    hs.bounds.assign(h->bounds().begin(), h->bounds().end());
    hs.counts = h->counts();
    for (std::uint64_t c : hs.counts) hs.total += c;
    s.histograms[name] = std::move(hs);
  }
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : hists_) h->reset();
}

}  // namespace brics
