#include "obs/exposition.hpp"

#include <cstdio>

namespace brics {
namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string exposition_name(const std::string& name) {
  std::string out = "brics_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += c == '.' ? '_' : c;
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string en = exposition_name(name);
    out += "# TYPE " + en + " counter\n";
    out += en + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string en = exposition_name(name);
    out += "# TYPE " + en + " gauge\n";
    out += en + " ";
    append_double(out, v);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string en = exposition_name(name);
    out += "# TYPE " + en + " histogram\n";
    // Cumulative buckets, Prometheus style: each le series counts all
    // observations <= its bound; the registry stores per-bucket counts.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.counts.size() ? h.counts[i] : 0;
      out += en + "_bucket{le=\"" + std::to_string(h.bounds[i]) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += en + "_bucket{le=\"+Inf\"} " + std::to_string(h.total) + "\n";
    out += en + "_count " + std::to_string(h.total) + "\n";
  }
  return out;
}

}  // namespace brics
