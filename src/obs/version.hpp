// Build provenance: the configure-time git sha and the artifact schema
// versions, in one place. The sha is stamped into version.cpp via the
// BRICS_GIT_SHA compile definition (src/obs/CMakeLists.txt runs
// `git rev-parse --short HEAD` at configure time); a BRICS_GIT_SHA
// environment variable overrides at run time for out-of-tree builds, and
// both the bench artifacts' env block and the CLI/server version strings
// read it from here — one stamp, every consumer.
#pragma once

#include <string>

namespace brics {

/// Configure-time git sha ("unknown" when built outside a checkout);
/// a BRICS_GIT_SHA environment variable takes precedence.
std::string build_git_sha();

/// One-line provenance: "git <sha>, run-report schema v<N>" — what
/// `brics --version` and the server hello reply report.
std::string build_version_string();

}  // namespace brics
