// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Hot-path design (docs/OBSERVABILITY.md): every metric keeps one
// cache-line-padded slot per thread, indexed by the OpenMP thread id, so an
// increment is a relaxed load + store of a slot no other thread writes —
// no atomic read-modify-write, no lock, no false sharing. Readers merge the
// slots on demand (snapshot()), which is allowed to race with writers: each
// slot read is a relaxed atomic load, so a snapshot taken mid-run is an
// instantaneously consistent-per-slot (if slightly stale) view.
//
// Instrumentation sites in the library go through the BRICS_* macros below;
// configuring with -DBRICS_METRICS=OFF compiles every one of them to
// nothing, so the uninstrumented build pays zero cycles and zero bytes.
// The registry classes themselves stay compiled either way — artifact
// export and tests always link.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/parallel.hpp"

#ifndef BRICS_METRICS_ENABLED
#define BRICS_METRICS_ENABLED 1
#endif

namespace brics {

/// Number of per-thread slots every metric carries: a power of two fixed at
/// process start, equal to thread_ceiling() (util/parallel.hpp). Because
/// set_threads() clamps to that same ceiling, a thread-count raise after the
/// first metric touch still leaves every OpenMP thread id on a private slot
/// — the single-writer exactness of slot_add never degrades to aliasing.
/// Thread ids are masked into range as a last-resort guard for callers that
/// bypass set_threads().
std::size_t metric_thread_slots();

/// Calling thread's metric slot.
inline std::size_t metric_slot() {
  return static_cast<std::size_t>(thread_id()) &
         (metric_thread_slots() - 1);
}

namespace detail {
struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> v{0};
};

// Thread-owned slot update: relaxed load + store, no RMW. Exact as long as
// each slot has a single writer (guaranteed by metric_slot()).
inline void slot_add(std::atomic<std::uint64_t>& c,
                     std::uint64_t n) noexcept {
  c.store(c.load(std::memory_order_relaxed) + n,
          std::memory_order_relaxed);
}
}  // namespace detail

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    detail::slot_add(slots_[metric_slot()].v, n);
  }

  /// Merged value across all thread slots.
  std::uint64_t value() const noexcept;
  /// One thread slot's value (relaxed read) — the raw material for the
  /// per-thread work attribution in obs/parallel.hpp.
  std::uint64_t slot_value(std::size_t slot) const noexcept;
  void reset() noexcept;

 private:
  friend class MetricsRegistry;
  Counter();
  std::vector<detail::PaddedCell> slots_;
};

/// Last-write-wins double value (phase durations, rates, flags).
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v),
                std::memory_order_relaxed);
  }
  double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { set(0.0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram over non-negative integer observations. Bucket i
/// counts values <= bounds[i] (first matching bound); values above the last
/// bound land in a final overflow bucket.
class Histogram {
 public:
  void observe(std::uint64_t x) noexcept {
    std::size_t b = 0;
    while (b < bounds_.size() && x > bounds_[b]) ++b;
    detail::slot_add(cells_[metric_slot() * stride_ + b].v, 1);
  }

  std::span<const std::uint64_t> bounds() const { return bounds_; }
  /// Merged per-bucket counts, size bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t total_count() const;
  void reset() noexcept;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::span<const std::uint64_t> bounds);
  std::vector<std::uint64_t> bounds_;
  std::size_t stride_ = 0;  ///< buckets per thread slot
  std::vector<detail::PaddedCell> cells_;
};

/// Power-of-two bucket bounds 1, 2, 4, ..., 2^20 — the default scale for
/// frontier sizes and block sizes.
std::span<const std::uint64_t> pow2_bounds();

/// Power-of-two bounds 1, 2, 4, ..., 2^30 — the microsecond-latency scale
/// (covers 1 us .. ~18 min), used by the server's request-latency
/// histograms.
std::span<const std::uint64_t> pow2_time_bounds();

/// Point-in-time merged view of a registry, ready for JSON export.
struct MetricsSnapshot {
  struct Hist {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
    std::uint64_t total = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string to_json() const;
};

/// Get-or-create registry of named metrics. Metric handles are stable for
/// the registry's lifetime, so hot loops resolve a name once (the BRICS_*
/// macros cache the reference in a function-local static) and never touch
/// the registry lock again. Instances are independent — tests construct
/// their own; the library instruments global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be ascending; only consulted on first creation.
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> bounds);

  /// Existing counter by name, or nullptr — read-only lookup that never
  /// materialises a metric (exporters use it to stay side-effect free).
  const Counter* find_counter(std::string_view name) const;

  MetricsSnapshot snapshot() const;
  /// Zero every metric (names and handles survive). Estimator drivers call
  /// this between runs to scope a snapshot to one run.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> hists_;
};

}  // namespace brics

// ---- Instrumentation macros (compile to nothing when BRICS_METRICS=OFF).
//
//   BRICS_COUNTER(c, "traverse.edges_relaxed");   // once per scope
//   BRICS_COUNTER_ADD(c, n);
//   BRICS_HISTOGRAM(h, "traverse.frontier_size", brics::pow2_bounds());
//   BRICS_HISTOGRAM_OBSERVE(h, frontier);
//   BRICS_GAUGE_SET("exec.degraded", 1.0);
//   BRICS_METRICS_ONLY(std::uint64_t edges = 0;)   // local bookkeeping
#if BRICS_METRICS_ENABLED
#define BRICS_METRICS_ONLY(...) __VA_ARGS__
#define BRICS_COUNTER(var, name)             \
  static ::brics::Counter& var =             \
      ::brics::MetricsRegistry::global().counter(name)
#define BRICS_COUNTER_ADD(var, n) (var).add(n)
#define BRICS_HISTOGRAM(var, name, bounds)   \
  static ::brics::Histogram& var =           \
      ::brics::MetricsRegistry::global().histogram(name, bounds)
#define BRICS_HISTOGRAM_OBSERVE(var, x) (var).observe(x)
#define BRICS_GAUGE_SET(name, v) \
  ::brics::MetricsRegistry::global().gauge(name).set(v)
#else
#define BRICS_METRICS_ONLY(...)
#define BRICS_COUNTER(var, name) static_assert(true)
#define BRICS_COUNTER_ADD(var, n) ((void)0)
#define BRICS_HISTOGRAM(var, name, bounds) static_assert(true)
#define BRICS_HISTOGRAM_OBSERVE(var, x) ((void)0)
#define BRICS_GAUGE_SET(name, v) ((void)0)
#endif
