// Minimal hand-rolled JSON layer for the observability subsystem.
//
// JsonWriter emits syntactically valid JSON through a small state machine
// (no DOM, no allocation beyond the output string); json_valid() is a
// strict recursive-descent checker used by tests to prove every artifact
// the library emits round-trips through an independent parser. Neither
// side depends on anything outside the standard library, keeping obs/
// zero-dependency as required for bench and CLI artifact export.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace brics {

/// Append `s` to `out` with all JSON string escapes applied (quotes,
/// backslash, control characters as \u00XX).
void append_json_escaped(std::string& out, std::string_view s);

/// Streaming JSON writer. Usage:
///
///   JsonWriter w;
///   w.begin_object().key("n").value(42).key("xs").begin_array()
///    .value(1.5).end_array().end_object();
///   std::string doc = std::move(w).str();
///
/// Misuse (value without key inside an object, str() before the document
/// closes) is caught by assertions in debug and yields invalid JSON at
/// worst — callers are library code, not untrusted input.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);  ///< NaN / infinity become null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& null();

  /// Shorthand for key(k).value(v).
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    return key(k).value(v);
  }

  /// The finished document; the writer must be back at nesting depth 0.
  const std::string& str() const;

 private:
  void before_value();

  std::string out_;
  // One entry per open container: true once the first element was written
  // (so the next one needs a comma separator).
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

/// Strict JSON syntax check (RFC 8259 grammar: one top-level value, no
/// trailing garbage, no NaN/Inf literals, no leading zeros, valid escapes).
/// On failure, *error (if non-null) receives a short description with the
/// byte offset.
bool json_valid(std::string_view text, std::string* error = nullptr);

/// Parsed JSON document node. A small ordered DOM — enough to read back
/// the artifacts this library writes (bench artifacts, run reports) in
/// tools like brics-bench-diff; not a general-purpose JSON library.
/// Objects preserve insertion order and allow duplicate keys (find returns
/// the first); numbers are doubles, matching what the writer emits.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with this key, or nullptr (also when not an object).
  const JsonValue* find(std::string_view key) const;
  /// find() that tolerates a null `this`-like chain: v.get("a") on a
  /// non-object yields nullptr, so lookups compose without null checks.
  const JsonValue* get(std::string_view key) const { return find(key); }
};

/// Parse one JSON document under the same strict grammar as json_valid().
/// Returns false (and fills *error) on any syntax violation; `out` is only
/// meaningful on success. \uXXXX escapes decode to UTF-8 (surrogate pairs
/// included).
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace brics
