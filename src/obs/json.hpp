// Minimal hand-rolled JSON layer for the observability subsystem.
//
// JsonWriter emits syntactically valid JSON through a small state machine
// (no DOM, no allocation beyond the output string); json_valid() is a
// strict recursive-descent checker used by tests to prove every artifact
// the library emits round-trips through an independent parser. Neither
// side depends on anything outside the standard library, keeping obs/
// zero-dependency as required for bench and CLI artifact export.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace brics {

/// Append `s` to `out` with all JSON string escapes applied (quotes,
/// backslash, control characters as \u00XX).
void append_json_escaped(std::string& out, std::string_view s);

/// Streaming JSON writer. Usage:
///
///   JsonWriter w;
///   w.begin_object().key("n").value(42).key("xs").begin_array()
///    .value(1.5).end_array().end_object();
///   std::string doc = std::move(w).str();
///
/// Misuse (value without key inside an object, str() before the document
/// closes) is caught by assertions in debug and yields invalid JSON at
/// worst — callers are library code, not untrusted input.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);  ///< NaN / infinity become null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& null();

  /// Shorthand for key(k).value(v).
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    return key(k).value(v);
  }

  /// The finished document; the writer must be back at nesting depth 0.
  const std::string& str() const;

 private:
  void before_value();

  std::string out_;
  // One entry per open container: true once the first element was written
  // (so the next one needs a comma separator).
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

/// Strict JSON syntax check (RFC 8259 grammar: one top-level value, no
/// trailing garbage, no NaN/Inf literals, no leading zeros, valid escapes).
/// On failure, *error (if non-null) receives a short description with the
/// byte offset.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace brics
