#include "obs/version.hpp"

#include <cstdlib>

#include "obs/report.hpp"

namespace brics {

std::string build_git_sha() {
  if (const char* s = std::getenv("BRICS_GIT_SHA")) return s;
#ifdef BRICS_GIT_SHA
  return BRICS_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string build_version_string() {
  return "git " + build_git_sha() + ", run-report schema v" +
         std::to_string(RunReport::kSchemaVersion);
}

}  // namespace brics
