#include "obs/artifact_diff.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace brics {
namespace {

// Timing cells are printed by bench_common::fmt ("1.234"); anything that
// fails to parse fully as a number is skipped with a note.
bool parse_cell(const std::string& s, double& out) {
  const char* b = s.data();
  const char* e = s.data() + s.size();
  auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

std::string cell_at(const JsonValue& row, std::size_t i) {
  if (i < row.arr.size() && row.arr[i].is_string())
    return row.arr[i].str_v;
  return "";
}

double tolerance_for(const DiffOptions& opts, const std::string& col) {
  auto it = opts.col_tol_pct.find(col);
  return it == opts.col_tol_pct.end() ? opts.tol_pct : it->second;
}

void note_counter_drift(const JsonValue& old_art, const JsonValue& new_art,
                        DiffResult& out) {
  const JsonValue* oc =
      old_art.get("metrics") ? old_art.get("metrics")->get("counters")
                             : nullptr;
  const JsonValue* nc =
      new_art.get("metrics") ? new_art.get("metrics")->get("counters")
                             : nullptr;
  if (oc == nullptr || nc == nullptr) return;
  for (const auto& [name, ov] : oc->obj) {
    const JsonValue* nv = nc->find(name);
    if (nv == nullptr || !nv->is_number() || !ov.is_number()) continue;
    if (ov.num_v != nv->num_v) {
      std::ostringstream os;
      os << "counter drift: " << name << " " << ov.num_v << " -> "
         << nv->num_v << " (work changed — check before trusting timings)";
      out.notes.push_back(os.str());
    }
  }
}

}  // namespace

bool is_timing_column(const std::string& name) {
  if (name == "seconds" || name == "time") return true;
  if (name.rfind("t_", 0) == 0) return true;
  if (name.size() >= 2 && name.compare(name.size() - 2, 2, "_s") == 0)
    return true;
  return false;
}

bool is_latency_ms_column(const std::string& name) {
  return name.size() >= 3 &&
         name.compare(name.size() - 3, 3, "_ms") == 0;
}

bool is_memory_column(const std::string& name) {
  if (name == "bytes_per_edge" || name == "rss_mb") return true;
  if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_mb") == 0)
    return true;
  if (name.size() >= 6 &&
      name.compare(name.size() - 6, 6, "_bytes") == 0)
    return true;
  return false;
}

DiffResult diff_artifacts(const JsonValue& old_art, const JsonValue& new_art,
                          const DiffOptions& opts) {
  DiffResult out;
  const JsonValue* harness = new_art.get("harness");
  const std::string hname =
      harness != nullptr && harness->is_string() ? harness->str_v : "?";
  {
    const JsonValue* oh = old_art.get("harness");
    if (oh != nullptr && oh->is_string() && oh->str_v != hname)
      out.notes.push_back("harness mismatch: baseline '" + oh->str_v +
                          "' vs new '" + hname + "'");
  }

  const JsonValue* ot = old_art.get("tables");
  const JsonValue* nt = new_art.get("tables");
  if (ot == nullptr || nt == nullptr || !ot->is_array() || !nt->is_array()) {
    out.notes.push_back("artifact missing 'tables' array; nothing compared");
    note_counter_drift(old_art, new_art, out);
    return out;
  }
  if (ot->arr.size() != nt->arr.size())
    out.notes.push_back(
        "table count differs: " + std::to_string(ot->arr.size()) + " vs " +
        std::to_string(nt->arr.size()) + "; comparing the common prefix");

  const std::size_t ntables = std::min(ot->arr.size(), nt->arr.size());
  for (std::size_t ti = 0; ti < ntables; ++ti) {
    const JsonValue& told = ot->arr[ti];
    const JsonValue& tnew = nt->arr[ti];
    const JsonValue* ocols = told.get("columns");
    const JsonValue* ncols = tnew.get("columns");
    const JsonValue* orows = told.get("rows");
    const JsonValue* nrows = tnew.get("rows");
    if (ocols == nullptr || ncols == nullptr || orows == nullptr ||
        nrows == nullptr)
      continue;

    // Columns compared by name: a reordered or extended header still
    // matches as long as the timing columns survive.
    std::map<std::string, std::size_t> new_col_index;
    for (std::size_t c = 0; c < ncols->arr.size(); ++c)
      if (ncols->arr[c].is_string())
        new_col_index[ncols->arr[c].str_v] = c;

    if (orows->arr.size() != nrows->arr.size())
      out.notes.push_back("table " + std::to_string(ti) +
                          ": row count differs (" +
                          std::to_string(orows->arr.size()) + " vs " +
                          std::to_string(nrows->arr.size()) +
                          "); comparing the common prefix");

    const std::size_t nr = std::min(orows->arr.size(), nrows->arr.size());
    for (std::size_t ri = 0; ri < nr; ++ri) {
      const JsonValue& rold = orows->arr[ri];
      const JsonValue& rnew = nrows->arr[ri];
      const std::string key_old = cell_at(rold, 0);
      const std::string key_new = cell_at(rnew, 0);
      if (!key_old.empty() && !key_new.empty() && key_old != key_new) {
        out.notes.push_back("table " + std::to_string(ti) + " row " +
                            std::to_string(ri) + ": key '" + key_old +
                            "' vs '" + key_new + "'; row skipped");
        continue;
      }
      for (std::size_t c = 0; c < ocols->arr.size(); ++c) {
        if (!ocols->arr[c].is_string()) continue;
        const std::string& col = ocols->arr[c].str_v;
        const bool timing = is_timing_column(col);
        const bool lat_ms = !timing && is_latency_ms_column(col);
        const bool memory = !timing && !lat_ms && is_memory_column(col);
        if (!timing && !lat_ms && !memory) continue;
        auto nc_it = new_col_index.find(col);
        if (nc_it == new_col_index.end()) {
          out.notes.push_back("table " + std::to_string(ti) + ": column '" +
                              col + "' missing from new artifact");
          continue;
        }
        double ov = 0.0, nv = 0.0;
        if (!parse_cell(cell_at(rold, c), ov) ||
            !parse_cell(cell_at(rnew, nc_it->second), nv))
          continue;
        ++out.cells_compared;
        // The absolute floor is timer-granularity noise control; memory
        // cells are deterministic and compare at any magnitude. Latency
        // columns carry milliseconds, so scale them to seconds before
        // the floor comparison — one knob covers both units.
        const double unit_s = lat_ms ? 1e-3 : 1.0;
        if ((timing || lat_ms) && ov * unit_s < opts.abs_floor_s &&
            nv * unit_s < opts.abs_floor_s)
          continue;
        const double tol = tolerance_for(opts, col);
        if (ov <= 0.0) continue;
        const double delta_pct = (nv - ov) / ov * 100.0;
        DiffFinding f;
        f.harness = hname;
        f.table = ti;
        f.row_key = !key_old.empty() ? key_old : key_new;
        f.row = ri;
        f.column = col;
        f.old_v = ov;
        f.new_v = nv;
        f.delta_pct = delta_pct;
        if (delta_pct > tol)
          out.regressions.push_back(std::move(f));
        else if (delta_pct < -tol)
          out.improvements.push_back(std::move(f));
      }
    }
  }
  note_counter_drift(old_art, new_art, out);
  return out;
}

std::string format_diff(const DiffResult& r) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  const auto line = [&os](const DiffFinding& f, const char* tag) {
    const char* unit = is_latency_ms_column(f.column) &&
                               !is_timing_column(f.column)
                           ? "ms"
                           : "s";
    os << tag << " " << f.harness << " table " << f.table << " row "
       << f.row;
    if (!f.row_key.empty()) os << " (" << f.row_key << ")";
    os << " col " << f.column << ": " << f.old_v << unit << " -> " << f.new_v
       << unit << " (";
    os.precision(1);
    os << (f.delta_pct >= 0 ? "+" : "") << f.delta_pct << "%)\n";
    os.precision(3);
  };
  for (const DiffFinding& f : r.regressions) line(f, "REGRESSION");
  for (const DiffFinding& f : r.improvements) line(f, "improvement");
  for (const std::string& n : r.notes) os << "note: " << n << "\n";
  os << (r.ok() ? "PASS" : "FAIL") << ": " << r.cells_compared
     << " timing/memory cells compared, " << r.regressions.size()
     << " regression(s), " << r.improvements.size() << " improvement(s), "
     << r.notes.size() << " note(s)\n";
  return os.str();
}

}  // namespace brics
