// Quantile estimation and interval deltas over histogram snapshots.
//
// The registry's fixed-bucket histograms are cumulative-forever: a running
// daemon's "server.request_latency_us" mixes the warm-up's slow requests
// with the steady state. These helpers turn raw snapshots into the two
// things an operator actually wants:
//
//   - histogram_quantile(): a bucket-interpolated quantile estimate (the
//     p50/p95/p99 in the kMetrics JSON body and the soak report). With
//     pow2 bounds the estimate is exact to within one bucket — the same
//     contract Prometheus' histogram_quantile() gives.
//   - snapshot_delta(): new-minus-old over two snapshots of the same
//     registry, so "latency over the last interval" is a subtraction, not
//     a registry reset (resetting a live daemon's registry would race the
//     writers and destroy the monotonic counters).
#pragma once

#include "obs/metrics.hpp"

namespace brics {

/// Estimated value at quantile q in [0, 1] from a bucketed histogram.
/// Linear interpolation inside the containing bucket ([prev_bound, bound],
/// with 0 as the floor of the first bucket); observations in the overflow
/// bucket clamp to the last bound (a lower-bound estimate, like
/// Prometheus). Returns 0 for an empty histogram.
double histogram_quantile(const MetricsSnapshot::Hist& h, double q);

/// `cur` minus `prev`, per metric: counters and histogram bucket counts
/// subtract (saturating at 0, so a registry reset between snapshots yields
/// `cur` rather than garbage); gauges are last-write-wins and pass through
/// from `cur`; metrics absent from `prev` pass through unchanged.
MetricsSnapshot snapshot_delta(const MetricsSnapshot& prev,
                               const MetricsSnapshot& cur);

}  // namespace brics
