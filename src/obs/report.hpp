// Machine-readable run report: one JSON artifact per estimator run.
//
// The report (schema v3, docs/OBSERVABILITY.md) ties together everything a
// perf PR needs to prove a win against a recorded baseline: graph stats,
// the options that produced the run, per-phase timings including the
// residual "other" time, per-technique reduction counts, the exec layer's
// degradation state (degraded / cut_phase / achieved_sample_rate), the
// per-thread parallel-efficiency table (schema v2), the resilience section
// (schema v3: checkpoints, retries, quarantines, attempt count, cumulative
// wall clock across attempts), and the merged metrics snapshot. brics_cli
// --metrics-out writes one; the bench harnesses embed the same snapshot in
// their BENCH_*.json artifacts.
//
// Layering: obs/ depends on core/ headers only (POD field reads), never on
// core's objects — brics_core links brics_obs, not the other way around.
#pragma once

#include <string>

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/parallel.hpp"

namespace brics {

/// Everything one run report serialises. Field groups mirror the JSON
/// object layout; see to_json().
struct RunReport {
  // v2: adds the "parallel" section (per-thread busy/edges/nodes/sources
  // plus imbalance/speedup/efficiency derivations).
  // v3: adds the "recovery" section (checkpoint/retry/quarantine
  // accounting, attempt number, cumulative wall across attempts).
  // v4: adds options.measure ("farness" | "betweenness") — which
  // centrality the pipeline computed.
  // v5: adds the "memory" section — adjacency storage mode, per-structure
  // graph bytes (offsets / targets / weights / compressed payload),
  // bytes-per-directed-edge, and the process peak RSS.
  static constexpr int kSchemaVersion = 5;

  std::string tool;     ///< producing binary ("brics_cli", harness name)
  std::string dataset;  ///< input path or @registry-name

  // graph
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;

  // options
  std::string config;   ///< random | cr | icr | cumulative
  std::string measure;  ///< farness | betweenness (v4)
  double sample_rate = 0.0;
  std::uint64_t seed = 0;
  std::int64_t timeout_ms = 0;
  std::uint32_t max_sources = 0;
  int threads = 0;

  // phases (seconds; other_s = total - sum of named phases)
  PhaseTimes times;

  // estimate
  NodeId samples = 0;
  NodeId planned_samples = 0;
  BlockId num_blocks = 0;

  // reduction (per-technique removal counts)
  ReduceStats reduce;

  // exec / degradation state (PR 1 fields, wired into the same artifact)
  bool degraded = false;
  std::string cut_phase;  ///< "none" | "plan" | "reduce" | "bcc" | "traverse"
  double achieved_sample_rate = 0.0;

  double wall_s = 0.0;  ///< end-to-end wall clock observed by the caller

  // parallel efficiency (v2): per-thread work attribution + derivations.
  ParallelStats parallel;

  // resilience (v3): checkpoint/retry accounting from the exec layer.
  RecoveryStats recovery;

  // memory (v5): where the input graph's bytes live + process peak RSS.
  std::string storage;  ///< "plain" | "compact"
  GraphMemory graph_mem;
  double bytes_per_edge = 0.0;  ///< adjacency bytes / directed edges
  std::uint64_t peak_rss_bytes = 0;

  MetricsSnapshot metrics;
};

/// Process peak resident set size in bytes (getrusage ru_maxrss), 0 where
/// unsupported. High-water mark since process start — not a per-phase
/// delta — so report it alongside the structure-level byte counts.
std::uint64_t peak_rss_bytes();

/// Assemble a report from one finished estimate. Reads the global metrics
/// registry; callers that want the snapshot scoped to this run reset the
/// registry before running (the CLI does).
RunReport make_run_report(std::string tool, std::string dataset,
                          const CsrGraph& g, const EstimateOptions& opts,
                          std::string config, const EstimateResult& est,
                          double wall_s);

/// Serialise (hand-rolled writer, schema-versioned, strict-parser clean).
std::string to_json(const RunReport& r);

/// Publish the exec layer's degraded-run state as gauges
/// ("exec.degraded", "exec.cut_phase_code", "exec.achieved_sample_rate")
/// so a bare metrics snapshot carries the degradation state even without
/// a full RunReport. No-op when instrumentation is compiled out.
void record_exec_metrics(const EstimateResult& est);

/// Publish the final phase breakdown as "phase.*_s" gauges (including
/// total and the other_s residual). No-op when instrumentation is
/// compiled out.
void record_phase_metrics(const PhaseTimes& times);

}  // namespace brics
