#include "obs/histogram_snapshot.hpp"

#include <algorithm>

namespace brics {

double histogram_quantile(const MetricsSnapshot::Hist& h, double q) {
  if (h.total == 0 || h.bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(h.total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t c = h.counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      if (i >= h.bounds.size())  // overflow bucket: clamp to the last bound
        return static_cast<double>(h.bounds.back());
      const double lo =
          i == 0 ? 0.0 : static_cast<double>(h.bounds[i - 1]);
      const double hi = static_cast<double>(h.bounds[i]);
      const double into =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    cum += c;
  }
  return static_cast<double>(h.bounds.back());
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& prev,
                               const MetricsSnapshot& cur) {
  MetricsSnapshot out;
  for (const auto& [name, v] : cur.counters) {
    const auto it = prev.counters.find(name);
    const std::uint64_t p = it == prev.counters.end() ? 0 : it->second;
    out.counters[name] = v >= p ? v - p : v;
  }
  out.gauges = cur.gauges;
  for (const auto& [name, h] : cur.histograms) {
    MetricsSnapshot::Hist d;
    d.bounds = h.bounds;
    d.counts = h.counts;
    const auto it = prev.histograms.find(name);
    if (it != prev.histograms.end() &&
        it->second.counts.size() == d.counts.size() &&
        it->second.bounds == d.bounds) {
      for (std::size_t i = 0; i < d.counts.size(); ++i) {
        const std::uint64_t p = it->second.counts[i];
        if (d.counts[i] >= p) d.counts[i] -= p;
      }
    }
    for (std::uint64_t c : d.counts) d.total += c;
    out.histograms[name] = std::move(d);
  }
  return out;
}

}  // namespace brics
