// Parallel-efficiency view over the per-thread metric slots.
//
// The traversal engines attribute their work to the calling thread's metric
// slot (traverse.busy_ns / edges_relaxed / nodes_settled / *_sources in
// traverse/bfs.cpp); this header turns those per-slot values into the
// numbers a scaling analysis needs: a per-thread work table, the busy-time
// imbalance ratio (max/mean — the load-skew hazard of shattering-based
// centrality: one giant biconnected block can starve every other thread),
// and the speedup/efficiency implied by the busy-time distribution.
// Surfaced as the `parallel` section of the schema-v2 RunReport
// (docs/OBSERVABILITY.md) and as the efficiency column of the
// scaling_threads harness.
//
// collect_parallel_stats() only *reads* slots (find_counter + slot_value),
// so it may run while no traversal is active — which is when reports are
// assembled. Under -DBRICS_METRICS=OFF it compiles to an empty table and
// carries no metric-name strings.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.hpp"

namespace brics {

/// One thread's attributed traversal work (slot = OpenMP thread id).
struct ThreadWork {
  std::uint32_t slot = 0;
  double busy_s = 0.0;          ///< time spent inside traversals
  std::uint64_t edges = 0;      ///< edges relaxed
  std::uint64_t nodes = 0;      ///< nodes settled
  std::uint64_t sources = 0;    ///< traversals completed (bfs + dial)
};

/// Per-thread table plus the derived balance/efficiency figures.
struct ParallelStats {
  int threads = 0;  ///< configured thread count at collection time
  std::vector<ThreadWork> per_thread;  ///< slots with any work, ascending

  double busy_total_s = 0.0;
  double busy_max_s = 0.0;
  double busy_mean_s = 0.0;  ///< over active (busy > 0) threads
  /// max/mean busy-time over active threads; 1.0 = perfectly balanced.
  double imbalance = 0.0;
  /// busy_total / busy_max: the speedup the busy-time distribution
  /// supports (equals the thread count only under perfect balance).
  double speedup = 0.0;
  /// speedup / threads in [0, 1]: parallel efficiency vs the configured
  /// thread count.
  double efficiency = 0.0;
};

/// Pure derivation from a hand-assembled table (unit-testable): sorts
/// nothing, trusts `per_thread` as given, uses `threads` (or the active
/// count when threads <= 0) as the efficiency denominator.
ParallelStats derive_parallel_stats(std::vector<ThreadWork> per_thread,
                                    int threads);

/// Read the traverse.* attribution slots out of `reg` and derive. Returns
/// an empty table when instrumentation is compiled out or nothing ran.
ParallelStats collect_parallel_stats(const MetricsRegistry& reg,
                                     int threads);

}  // namespace brics
