#include "obs/report.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/json.hpp"

namespace brics {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

RunReport make_run_report(std::string tool, std::string dataset,
                          const CsrGraph& g, const EstimateOptions& opts,
                          std::string config, const EstimateResult& est,
                          double wall_s) {
  RunReport r;
  r.tool = std::move(tool);
  r.dataset = std::move(dataset);
  r.nodes = g.num_nodes();
  r.edges = g.num_edges();
  r.config = std::move(config);
  r.measure = to_string(est.measure);
  r.sample_rate = opts.sample_rate;
  r.seed = opts.seed;
  r.timeout_ms = opts.budget.timeout_ms;
  r.max_sources = opts.budget.max_sources;
  r.threads = max_threads();
  r.times = est.times;
  r.samples = est.samples;
  r.planned_samples = est.planned_samples;
  r.num_blocks = est.num_blocks;
  r.reduce = est.reduce_stats;
  r.degraded = est.degraded;
  r.cut_phase = to_string(est.cut_phase);
  r.achieved_sample_rate = est.achieved_sample_rate;
  r.wall_s = wall_s;
  r.recovery = est.recovery;
  r.parallel = collect_parallel_stats(MetricsRegistry::global(),
                                      max_threads());
  r.storage = to_string(g.storage());
  r.graph_mem = g.memory();
  const std::uint64_t directed = g.num_directed_edges();
  r.bytes_per_edge = directed == 0 ? 0.0
                                   : static_cast<double>(g.adjacency_bytes()) /
                                         static_cast<double>(directed);
  r.peak_rss_bytes = peak_rss_bytes();
  r.metrics = MetricsRegistry::global().snapshot();
  return r;
}

std::string to_json(const RunReport& r) {
  JsonWriter w;
  w.begin_object();
  w.field("schema_version", RunReport::kSchemaVersion);
  w.field("tool", r.tool);
  w.field("dataset", r.dataset);

  w.key("graph")
      .begin_object()
      .field("nodes", r.nodes)
      .field("edges", r.edges)
      .end_object();

  w.key("options")
      .begin_object()
      .field("config", r.config)
      .field("measure", r.measure)
      .field("sample_rate", r.sample_rate)
      .field("seed", r.seed)
      .field("timeout_ms", r.timeout_ms)
      .field("max_sources", r.max_sources)
      .field("threads", r.threads)
      .end_object();

  w.key("phases")
      .begin_object()
      .field("reduce_s", r.times.reduce_s)
      .field("bcc_s", r.times.bcc_s)
      .field("traverse_s", r.times.traverse_s)
      .field("combine_s", r.times.combine_s)
      .field("other_s", r.times.other_s())
      .field("total_s", r.times.total_s)
      .end_object();

  w.key("estimate")
      .begin_object()
      .field("samples", r.samples)
      .field("planned_samples", r.planned_samples)
      .field("num_blocks", r.num_blocks)
      .end_object();

  w.key("reduction")
      .begin_object()
      .field("rounds", r.reduce.rounds)
      .field("input_nodes", static_cast<std::uint64_t>(r.reduce.input_nodes))
      .field("input_edges", r.reduce.input_edges)
      .field("reduced_nodes",
             static_cast<std::uint64_t>(r.reduce.reduced_nodes))
      .field("reduced_edges", r.reduce.reduced_edges)
      .field("identical_removed",
             static_cast<std::uint64_t>(r.reduce.identical.removed))
      .field("chain_removed",
             static_cast<std::uint64_t>(r.reduce.chains.removed))
      .field("redundant_removed",
             static_cast<std::uint64_t>(r.reduce.redundant.removed))
      .end_object();

  w.key("exec")
      .begin_object()
      .field("degraded", r.degraded)
      .field("cut_phase", r.cut_phase)
      .field("achieved_sample_rate", r.achieved_sample_rate)
      .end_object();

  w.field("wall_s", r.wall_s);

  // v2: per-thread work attribution and the derived balance figures. An
  // uninstrumented build emits the section with an empty table so parsers
  // need no schema branch.
  w.key("parallel")
      .begin_object()
      .field("threads", r.parallel.threads)
      .field("active_threads",
             static_cast<std::uint64_t>(r.parallel.per_thread.size()))
      .field("busy_total_s", r.parallel.busy_total_s)
      .field("busy_max_s", r.parallel.busy_max_s)
      .field("busy_mean_s", r.parallel.busy_mean_s)
      .field("imbalance", r.parallel.imbalance)
      .field("speedup", r.parallel.speedup)
      .field("efficiency", r.parallel.efficiency);
  w.key("per_thread").begin_array();
  for (const ThreadWork& t : r.parallel.per_thread) {
    w.begin_object()
        .field("slot", static_cast<std::uint64_t>(t.slot))
        .field("busy_s", t.busy_s)
        .field("edges", t.edges)
        .field("nodes", t.nodes)
        .field("sources", t.sources)
        .end_object();
  }
  w.end_array().end_object();

  // v3: resilience accounting — idle runs report attempt 1, resumed false,
  // zero counters, and cumulative_wall_s == total_s.
  w.key("recovery")
      .begin_object()
      .field("attempt", static_cast<std::uint64_t>(r.recovery.attempt))
      .field("resumed", r.recovery.resumed)
      .field("checkpoints_written",
             static_cast<std::uint64_t>(r.recovery.checkpoints_written))
      .field("checkpoints_loaded",
             static_cast<std::uint64_t>(r.recovery.checkpoints_loaded))
      .field("checkpoints_rejected",
             static_cast<std::uint64_t>(r.recovery.checkpoints_rejected))
      .field("checkpoint_save_failures",
             static_cast<std::uint64_t>(r.recovery.checkpoint_save_failures))
      .field("retries", static_cast<std::uint64_t>(r.recovery.retries))
      .field("quarantined_blocks",
             static_cast<std::uint64_t>(r.recovery.quarantined_blocks))
      .field("cumulative_wall_s", r.recovery.cumulative_wall_s)
      .end_object();

  // v5: memory accounting — which structures hold the graph's bytes, what
  // the adjacency costs per directed edge, and the process peak RSS. The
  // proof obligation for compact mode ("adjacency <= 0.6x plain CSR, and
  // here is where the bytes went") reads straight off this section.
  w.key("memory")
      .begin_object()
      .field("storage", r.storage)
      .field("offsets_bytes", r.graph_mem.offsets_bytes)
      .field("targets_bytes", r.graph_mem.targets_bytes)
      .field("weights_bytes", r.graph_mem.weights_bytes)
      .field("adj_payload_bytes", r.graph_mem.adj_payload_bytes)
      .field("byte_offsets_bytes", r.graph_mem.byte_offsets_bytes)
      .field("graph_total_bytes", r.graph_mem.total())
      .field("bytes_per_edge", r.bytes_per_edge)
      .field("peak_rss_bytes", r.peak_rss_bytes)
      .end_object();

  // Embed the snapshot's own JSON shape under "metrics".
  w.key("metrics")
      .begin_object()
      .key("counters")
      .begin_object();
  for (const auto& [name, v] : r.metrics.counters) w.field(name, v);
  w.end_object().key("gauges").begin_object();
  for (const auto& [name, v] : r.metrics.gauges) w.field(name, v);
  w.end_object().key("histograms").begin_object();
  for (const auto& [name, h] : r.metrics.histograms) {
    w.key(name).begin_object().key("bounds").begin_array();
    for (std::uint64_t b : h.bounds) w.value(b);
    w.end_array().key("counts").begin_array();
    for (std::uint64_t c : h.counts) w.value(c);
    w.end_array().field("total", h.total).end_object();
  }
  w.end_object().end_object();

  w.end_object();
  return w.str();
}

void record_exec_metrics(const EstimateResult& est) {
#if BRICS_METRICS_ENABLED
  BRICS_GAUGE_SET("exec.degraded", est.degraded ? 1.0 : 0.0);
  BRICS_GAUGE_SET("exec.cut_phase_code",
                  static_cast<double>(static_cast<int>(est.cut_phase)));
  BRICS_GAUGE_SET("exec.achieved_sample_rate", est.achieved_sample_rate);
#else
  (void)est;
#endif
}

void record_phase_metrics(const PhaseTimes& times) {
#if BRICS_METRICS_ENABLED
  BRICS_GAUGE_SET("phase.reduce_s", times.reduce_s);
  BRICS_GAUGE_SET("phase.bcc_s", times.bcc_s);
  BRICS_GAUGE_SET("phase.traverse_s", times.traverse_s);
  BRICS_GAUGE_SET("phase.combine_s", times.combine_s);
  BRICS_GAUGE_SET("phase.other_s", times.other_s());
  BRICS_GAUGE_SET("phase.total_s", times.total_s);
#else
  (void)times;
#endif
}

}  // namespace brics
