// RAII tracing spans with nesting, thread and request attribution.
//
// Recording is off by default: an unarmed Span construct/destruct is one
// relaxed atomic load each. When the recorder is enabled (CLI --trace-out,
// brics_serve --trace-out, tests), every span buffers one complete event
// into the calling thread's buffer and the recorder serialises them as
// Chrome trace_event JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev (docs/OBSERVABILITY.md).
//
// Each per-thread buffer carries its own mutex so a live daemon can
// drain()/export while spans are still being recorded: the lock is only
// ever contended between one recording thread and the exporter, and spans
// are coarse (phases, kernels, request segments), so the recording path
// stays effectively lock-free in practice.
//
// Request lanes: a span records the thread's current_request_id()
// (obs/request.hpp). In the Chrome export, events carrying a request id
// render on a per-request lane ("req-<id>") instead of the worker lane,
// so concurrent daemon requests appear as separate named rows with their
// own nesting — the per-request half of ROADMAP item 1.
//
// PhaseScope couples a span with the PhaseTimes bookkeeping the estimators
// must fill either way; the span/gauge half compiles away under
// -DBRICS_METRICS=OFF, the timing half stays (it is public API).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/request.hpp"
#include "util/timer.hpp"

namespace brics {

/// One completed span. Times are microseconds since the recorder was
/// enabled; tid is the metric slot of the recording thread; depth is the
/// span-nesting level on that thread (0 = outermost); req is the server
/// request id the recording thread was serving (0 = none).
struct TraceEvent {
  const char* name;  ///< must outlive the recorder (string literals)
  double ts_us;
  double dur_us;
  std::uint32_t tid;
  std::uint32_t depth;
  std::uint64_t req = 0;
};

/// Chrome trace_event JSON ({"traceEvents":[...]}, "X" phase events) over
/// an explicit event list — the daemon's continuous exporter serialises
/// accumulated drained events through this.
std::string trace_events_to_chrome_json(const std::vector<TraceEvent>& evs);

/// Process-wide trace buffer; safe to export or drain while recording.
class TraceRecorder {
 public:
  static TraceRecorder& global();

  /// Drop buffered events and start recording (t = 0 is now).
  void enable();
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void clear();

  /// All buffered events, merged and sorted by start time.
  std::vector<TraceEvent> events() const;

  /// Move the buffered events out (sorted by start time), leaving the
  /// buffers empty — the daemon's periodic trace flusher consumes these
  /// while recording continues.
  std::vector<TraceEvent> drain();

  /// trace_events_to_chrome_json(events()).
  std::string to_chrome_json() const;

  /// Recording epoch, for Span internals.
  std::chrono::steady_clock::time_point epoch() const { return t0_; }

  void record(const TraceEvent& e);

 private:
  struct Buffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  TraceRecorder();
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point t0_;
  std::vector<std::unique_ptr<Buffer>> per_thread_;
};

/// RAII span: records [construction, destruction) on the global recorder
/// when it is enabled, with automatic per-thread nesting depth and the
/// current request id.
class Span {
 public:
  explicit Span(const char* name) {
    if (!TraceRecorder::global().enabled()) return;
    name_ = name;
    start_ = std::chrono::steady_clock::now();
    depth_ = depth_tls()++;
    req_ = current_request_id();
  }

  ~Span() {
    if (!name_) return;
    --depth_tls();
    TraceRecorder& rec = TraceRecorder::global();
    const auto now = std::chrono::steady_clock::now();
    const double ts = std::chrono::duration<double, std::micro>(
                          start_ - rec.epoch())
                          .count();
    const double dur =
        std::chrono::duration<double, std::micro>(now - start_).count();
    rec.record({name_, ts, dur,
                static_cast<std::uint32_t>(metric_slot()),
                static_cast<std::uint32_t>(depth_), req_});
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static std::uint32_t& depth_tls() {
    thread_local std::uint32_t depth = 0;
    return depth;
  }

  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::uint32_t depth_ = 0;
  std::uint64_t req_ = 0;
};

/// Times a region into a PhaseTimes field (accumulating, like the Timer
/// plumbing it replaces) and — when instrumentation is compiled in — opens
/// a span and publishes the accumulated total as gauge "phase.<name>_s".
class PhaseScope {
 public:
  PhaseScope(const char* name, double& out) : name_(name), out_(out) {}

  ~PhaseScope() {
    out_ += timer_.seconds();
#if BRICS_METRICS_ENABLED
    MetricsRegistry::global()
        .gauge(std::string("phase.") + name_ + "_s")
        .set(out_);
#endif
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* name_;
  double& out_;
  Timer timer_;
#if BRICS_METRICS_ENABLED
  Span span_{name_};
#endif
};

}  // namespace brics

#if BRICS_METRICS_ENABLED
#define BRICS_SPAN(var, name) ::brics::Span var(name)
#else
#define BRICS_SPAN(var, name) static_assert(true)
#endif
