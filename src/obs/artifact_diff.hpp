// Noise-aware comparison of two bench artifacts (BENCH_*.json).
//
// The perf-regression gate: brics-bench-diff (tools/) loads a committed
// baseline artifact and a freshly generated one, walks the mirrored tables,
// and flags timing columns that regressed beyond a configurable relative
// tolerance. Timing cells already hold the median over BRICS_BENCH_REPEATS
// runs (bench_common's run_estimator), so single-run outliers never reach
// the diff; the relative tolerance plus an absolute floor absorb the rest
// of the noise (sub-floor timings are too small to compare meaningfully at
// any percentage). Counter drift between the artifacts' metrics blocks is
// reported as a note — changed work is worth a look but is not by itself a
// regression.
//
// Lives in obs/ (not tools/) so the engine is unit-testable against
// synthetic artifacts; the CLI is a thin wrapper.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace brics {

struct DiffOptions {
  /// Relative tolerance for timing columns, percent. A new value above
  /// old * (1 + tol/100) is a regression; below old * (1 - tol/100) an
  /// improvement.
  double tol_pct = 10.0;
  /// Per-column overrides (column name -> percent), beating tol_pct.
  std::map<std::string, double> col_tol_pct;
  /// Absolute floor: cells where both values are below this many seconds
  /// are never flagged (timer granularity noise dominates down there).
  double abs_floor_s = 0.005;
};

/// One timing cell whose delta exceeded tolerance.
struct DiffFinding {
  std::string harness;
  std::size_t table = 0;  ///< table index within the artifact
  std::string row_key;    ///< first cell of the row (dataset name), may be ""
  std::size_t row = 0;    ///< row index within the table
  std::string column;
  double old_v = 0.0;
  double new_v = 0.0;
  double delta_pct = 0.0;  ///< (new - old) / old * 100
};

struct DiffResult {
  std::vector<DiffFinding> regressions;
  std::vector<DiffFinding> improvements;
  /// Structural mismatches (missing tables/rows/columns), counter drift,
  /// provenance differences — informational, never fail the diff.
  std::vector<std::string> notes;
  std::size_t cells_compared = 0;

  bool ok() const { return regressions.empty(); }
};

/// True for columns the diff treats as timings: "t_*", "*_s", "seconds",
/// "time". Everything else (quality, speedup ratios, counts) is ignored.
bool is_timing_column(const std::string& name);

/// True for millisecond latency-percentile columns ("p50_ms", "p95_ms",
/// "p99_ms" — the soak summary's client-observed latencies, and any other
/// "*_ms" column). Gated like timings; the absolute floor compares against
/// the value converted to seconds, so the same abs_floor_s governs both
/// units.
bool is_latency_ms_column(const std::string& name);

/// True for memory columns the diff also gates: "*_mb", "*_bytes",
/// "rss_mb", "bytes_per_edge". Gated with the same relative tolerance as
/// timings but without the absolute floor — byte counts are deterministic,
/// so even small drifts are signal (a growing bytes_per_edge means the
/// compact encoding regressed).
bool is_memory_column(const std::string& name);

/// Compare two parsed artifacts (schema v1 or v2). Tables are matched by
/// index, rows by index with the first-cell key cross-checked (a key
/// mismatch skips the row with a note — the harness changed shape, which
/// is not a perf regression).
DiffResult diff_artifacts(const JsonValue& old_art, const JsonValue& new_art,
                          const DiffOptions& opts);

/// Human-readable multi-line summary naming harness/table/row/column for
/// every finding, ending with a PASS/REGRESSION verdict line.
std::string format_diff(const DiffResult& r);

}  // namespace brics
