#include "obs/flight.hpp"

#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "obs/json.hpp"

namespace brics {
namespace {

// write(2) the whole buffer, retrying on EINTR/short writes. Returns false
// on a hard error; the fatal-signal path has nothing useful to do about it.
bool write_all(int fd, const char* buf, std::size_t n) noexcept {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

const char* to_string(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kAdmit: return "admit";
    case FlightEventKind::kReply: return "reply";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kRefuse: return "refuse";
    case FlightEventKind::kQuarantine: return "quarantine";
    case FlightEventKind::kCommit: return "commit";
    case FlightEventKind::kFailPoint: return "failpoint";
    case FlightEventKind::kDrain: return "drain";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : t0_(std::chrono::steady_clock::now()),
      slots_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* rec = new FlightRecorder();  // never destroyed
  return *rec;
}

void FlightRecorder::record(FlightEventKind kind, std::uint64_t req,
                            std::uint32_t a, std::uint32_t b,
                            const char* label) noexcept {
  const std::uint64_t ticket =
      head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & (slots_.size() - 1)];
  const std::uint64_t ts = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
  // Invalidate, write payload, publish: a reader that overlaps any part of
  // this sees a seq mismatch and skips the slot.
  s.seq.store(0, std::memory_order_release);
  s.ts_us.store(ts, std::memory_order_relaxed);
  s.req.store(req, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  s.label.store(label, std::memory_order_relaxed);
  s.seq.store(ticket + 1, std::memory_order_release);
}

bool FlightRecorder::read_slot(std::size_t idx,
                               FlightEvent& out) const noexcept {
  const Slot& s = slots_[idx];
  const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
  if (s1 == 0) return false;
  out.ts_us = s.ts_us.load(std::memory_order_relaxed);
  out.req = s.req.load(std::memory_order_relaxed);
  out.a = s.a.load(std::memory_order_relaxed);
  out.b = s.b.load(std::memory_order_relaxed);
  out.kind =
      static_cast<FlightEventKind>(s.kind.load(std::memory_order_relaxed));
  out.label = s.label.load(std::memory_order_relaxed);
  return s.seq.load(std::memory_order_acquire) == s1;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n =
      head < slots_.size() ? head : static_cast<std::uint64_t>(slots_.size());
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  // Oldest surviving ticket first: [head - n, head).
  for (std::uint64_t t = head - n; t < head; ++t) {
    FlightEvent e;
    if (read_slot(static_cast<std::size_t>(t & (slots_.size() - 1)), e))
      out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::to_json(const char* reason) const {
  const std::vector<FlightEvent> events = snapshot();
  const std::uint64_t rec = recorded();
  JsonWriter w;
  w.begin_object();
  w.field("flight_schema_version", std::uint64_t{1});
  w.field("reason", reason != nullptr ? reason : "");
  w.field("recorded", rec);
  w.field("dropped",
          rec > events.size() ? rec - events.size() : std::uint64_t{0});
  w.key("events").begin_array();
  for (const FlightEvent& e : events) {
    w.begin_object()
        .field("ts_us", e.ts_us)
        .field("kind", to_string(e.kind))
        .field("req", e.req)
        .field("a", static_cast<std::uint64_t>(e.a))
        .field("b", static_cast<std::uint64_t>(e.b));
    if (e.label != nullptr) w.field("label", e.label);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  const char* reason) const {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const std::string body = to_json(reason);
  const bool ok = write_all(fd, body.data(), body.size());
  ::close(fd);
  return ok;
}

void FlightRecorder::dump_to_fd(int fd, const char* reason) const noexcept {
  // No allocation, no locks, no stdio streams: this runs under a fatal
  // signal. Events are read straight off the ring one at a time and
  // formatted into a stack buffer. Labels are trusted to be plain literal
  // words (they are — see the recording sites), so no JSON escaping.
  char buf[256];
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cnt =
      head < slots_.size() ? head : static_cast<std::uint64_t>(slots_.size());
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"flight_schema_version\": 1, \"reason\": \"%s\", "
      "\"recorded\": %" PRIu64 ", \"dropped\": %" PRIu64
      ", \"events\": [",
      reason != nullptr ? reason : "", head, head - cnt);
  if (n < 0 || !write_all(fd, buf, static_cast<std::size_t>(n))) return;
  bool first = true;
  for (std::uint64_t t = head - cnt; t < head; ++t) {
    FlightEvent e;
    if (!read_slot(static_cast<std::size_t>(t & (slots_.size() - 1)), e))
      continue;
    n = std::snprintf(
        buf, sizeof(buf),
        "%s{\"ts_us\": %" PRIu64 ", \"kind\": \"%s\", \"req\": %" PRIu64
        ", \"a\": %u, \"b\": %u%s%s%s}",
        first ? "" : ", ", e.ts_us, to_string(e.kind), e.req, e.a, e.b,
        e.label != nullptr ? ", \"label\": \"" : "",
        e.label != nullptr ? e.label : "", e.label != nullptr ? "\"" : "");
    if (n < 0 ||
        !write_all(fd, buf, static_cast<std::size_t>(
                                n < static_cast<int>(sizeof(buf))
                                    ? n
                                    : static_cast<int>(sizeof(buf) - 1))))
      return;
    first = false;
  }
  write_all(fd, "]}\n", 3);
}

}  // namespace brics
