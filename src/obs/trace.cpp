#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace brics {

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = new TraceRecorder();  // never destroyed
  return *rec;
}

TraceRecorder::TraceRecorder()
    : t0_(std::chrono::steady_clock::now()),
      per_thread_(metric_thread_slots()) {}

void TraceRecorder::enable() {
  clear();
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  for (auto& buf : per_thread_) buf.clear();
}

void TraceRecorder::record(const TraceEvent& e) {
  per_thread_[e.tid].push_back(e);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> all;
  for (const auto& buf : per_thread_)
    all.insert(all.end(), buf.begin(), buf.end());
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return all;
}

std::string TraceRecorder::to_chrome_json() const {
  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  for (const TraceEvent& e : events()) {
    w.begin_object()
        .field("name", e.name)
        .field("cat", "brics")
        .field("ph", "X")
        .field("ts", e.ts_us)
        .field("dur", e.dur_us)
        .field("pid", 1)
        .field("tid", static_cast<std::uint64_t>(e.tid))
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace brics
