#include "obs/trace.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"

namespace brics {
namespace {

/// Chrome-trace lane for one event: request-carrying events render on a
/// per-request lane far above the worker lanes; everything else stays on
/// its recording thread's lane. (tid is only a display key to the trace
/// viewer — any unique integer works.)
constexpr std::uint64_t kRequestLaneBase = 1u << 20;

std::uint64_t event_lane(const TraceEvent& e) {
  return e.req != 0 ? kRequestLaneBase + e.req
                    : static_cast<std::uint64_t>(e.tid);
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = new TraceRecorder();  // never destroyed
  return *rec;
}

TraceRecorder::TraceRecorder()
    : t0_(std::chrono::steady_clock::now()),
      per_thread_(metric_thread_slots()) {
  for (auto& buf : per_thread_) buf = std::make_unique<Buffer>();
}

void TraceRecorder::enable() {
  clear();
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  for (auto& buf : per_thread_) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
  }
}

void TraceRecorder::record(const TraceEvent& e) {
  Buffer& buf = *per_thread_[e.tid];
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(e);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> all;
  for (const auto& buf : per_thread_) {
    std::lock_guard<std::mutex> lock(buf->mu);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return all;
}

std::vector<TraceEvent> TraceRecorder::drain() {
  std::vector<TraceEvent> all;
  for (auto& buf : per_thread_) {
    std::vector<TraceEvent> taken;
    {
      std::lock_guard<std::mutex> lock(buf->mu);
      taken.swap(buf->events);
    }
    all.insert(all.end(), taken.begin(), taken.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return all;
}

std::string trace_events_to_chrome_json(
    const std::vector<TraceEvent>& evs) {
  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  // Name the lanes up front ("M" metadata events) so the viewer labels and
  // orders each row: worker lanes first (per-thread load imbalance at a
  // glance), then one lane per request id (concurrent daemon requests as
  // separate rows with their own span nesting).
  std::map<std::uint64_t, std::string> lanes;
  for (const TraceEvent& e : evs) {
    const std::uint64_t lane = event_lane(e);
    if (lanes.count(lane)) continue;
    lanes[lane] = e.req != 0 ? "req-" + std::to_string(e.req)
                             : "worker-" + std::to_string(e.tid);
  }
  for (const auto& [lane, name] : lanes) {
    w.begin_object()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", lane);
    w.key("args").begin_object().field("name", name).end_object();
    w.end_object();
    w.begin_object()
        .field("name", "thread_sort_index")
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", lane);
    w.key("args").begin_object().field("sort_index", lane).end_object();
    w.end_object();
  }
  for (const TraceEvent& e : evs) {
    w.begin_object()
        .field("name", e.name)
        .field("cat", "brics")
        .field("ph", "X")
        .field("ts", e.ts_us)
        .field("dur", e.dur_us)
        .field("pid", 1)
        .field("tid", event_lane(e));
    if (e.req != 0) {
      w.key("args")
          .begin_object()
          .field("req", e.req)
          .field("worker", static_cast<std::uint64_t>(e.tid))
          .end_object();
    }
    w.end_object();
  }
  w.end_array().end_object();
  return w.str();
}

std::string TraceRecorder::to_chrome_json() const {
  return trace_events_to_chrome_json(events());
}

}  // namespace brics
