#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace brics {

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = new TraceRecorder();  // never destroyed
  return *rec;
}

TraceRecorder::TraceRecorder()
    : t0_(std::chrono::steady_clock::now()),
      per_thread_(metric_thread_slots()) {}

void TraceRecorder::enable() {
  clear();
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  for (auto& buf : per_thread_) buf.clear();
}

void TraceRecorder::record(const TraceEvent& e) {
  per_thread_[e.tid].push_back(e);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> all;
  for (const auto& buf : per_thread_)
    all.insert(all.end(), buf.begin(), buf.end());
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return all;
}

std::string TraceRecorder::to_chrome_json() const {
  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  // Name the per-thread lanes up front ("M" metadata events) so the
  // viewer labels each worker's row and keeps them in slot order — the
  // lanes are what make per-thread load imbalance visible at a glance.
  std::vector<std::uint32_t> tids;
  for (std::size_t t = 0; t < per_thread_.size(); ++t)
    if (!per_thread_[t].empty()) tids.push_back(static_cast<std::uint32_t>(t));
  for (std::uint32_t t : tids) {
    w.begin_object()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", static_cast<std::uint64_t>(t));
    w.key("args")
        .begin_object()
        .field("name", "worker-" + std::to_string(t))
        .end_object();
    w.end_object();
    w.begin_object()
        .field("name", "thread_sort_index")
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", static_cast<std::uint64_t>(t));
    w.key("args")
        .begin_object()
        .field("sort_index", static_cast<std::uint64_t>(t))
        .end_object();
    w.end_object();
  }
  for (const TraceEvent& e : events()) {
    w.begin_object()
        .field("name", e.name)
        .field("cat", "brics")
        .field("ph", "X")
        .field("ts", e.ts_us)
        .field("dur", e.dur_us)
        .field("pid", 1)
        .field("tid", static_cast<std::uint64_t>(e.tid))
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace brics
