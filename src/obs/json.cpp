#include "obs/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace brics {

void append_json_escaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!has_elem_.empty());
  has_elem_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!has_elem_.empty());
  has_elem_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!has_elem_.empty());
  if (has_elem_.back()) out_ += ',';
  has_elem_.back() = true;
  out_ += '"';
  append_json_escaped(out_, k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  append_json_escaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  out_.append(buf, p);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  out_.append(buf, p);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  out_.append(buf, p);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  assert(has_elem_.empty() && !pending_key_);
  return out_;
}

namespace {

// Recursive-descent validator. Tracks only a cursor; depth-limited so
// adversarial nesting cannot blow the stack.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view t) : t_(t) {}

  bool run(std::string* error) {
    ok_ = value(0);
    if (ok_) {
      skip_ws();
      if (pos_ != t_.size()) fail("trailing characters after document");
    }
    if (!ok_ && error) {
      *error = err_ + " at offset " + std::to_string(err_pos_);
    }
    return ok_;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool fail(const char* what) {
    if (ok_) {
      err_ = what;
      err_pos_ = pos_;
      ok_ = false;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < t_.size() && (t_[pos_] == ' ' || t_[pos_] == '\t' ||
                                t_[pos_] == '\n' || t_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (t_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return fail("expected string");
    while (pos_ < t_.size()) {
      const unsigned char c = static_cast<unsigned char>(t_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= t_.size()) return fail("truncated escape");
        const char e = t_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (pos_ >= t_.size() || !std::isxdigit(
                    static_cast<unsigned char>(t_[pos_])))
              return fail("bad \\u escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      } else {
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < t_.size() &&
           std::isdigit(static_cast<unsigned char>(t_[pos_])))
      ++pos_;
    if (pos_ == start) return fail("expected digits");
    return true;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      if (pos_ < t_.size() &&
          std::isdigit(static_cast<unsigned char>(t_[pos_])))
        return fail("leading zero");
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '+' || t_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= t_.size()) return fail("unexpected end of input");
    const char c = t_[pos_];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return number();
    return fail("unexpected character");
  }

  bool object(int depth) {
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string err_;
  std::size_t err_pos_ = 0;
};

// Recursive-descent parser sharing the checker's grammar (depth limit,
// strict numbers/escapes) but building a JsonValue tree. Kept separate
// from JsonChecker: the checker stays allocation-free for its hot use in
// tests, the parser pays for the DOM only when a tool actually reads a
// document back.
class JsonParser {
 public:
  explicit JsonParser(std::string_view t) : t_(t) {}

  bool run(JsonValue& out, std::string* error) {
    ok_ = value(out, 0);
    if (ok_) {
      skip_ws();
      if (pos_ != t_.size()) fail("trailing characters after document");
    }
    if (!ok_ && error)
      *error = err_ + " at offset " + std::to_string(err_pos_);
    return ok_;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool fail(const char* what) {
    if (ok_) {
      err_ = what;
      err_pos_ = pos_;
      ok_ = false;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < t_.size() && (t_[pos_] == ' ' || t_[pos_] == '\t' ||
                                t_[pos_] == '\n' || t_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (t_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i, ++pos_) {
      if (pos_ >= t_.size() ||
          !std::isxdigit(static_cast<unsigned char>(t_[pos_])))
        return fail("bad \\u escape");
      const char c = t_[pos_];
      out = out * 16 + static_cast<std::uint32_t>(
                           c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
    }
    return true;
  }

  bool string(std::string& out) {
    out.clear();
    if (!eat('"')) return fail("expected string");
    while (pos_ < t_.size()) {
      const unsigned char c = static_cast<unsigned char>(t_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= t_.size()) return fail("truncated escape");
        const char e = t_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
              if (pos_ + 1 >= t_.size() || t_[pos_] != '\\' ||
                  t_[pos_ + 1] != 'u')
                return fail("unpaired surrogate");
              pos_ += 2;
              std::uint32_t lo = 0;
              if (!hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("bad escape character");
        }
      } else {
        out += static_cast<char>(c);
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < t_.size() &&
           std::isdigit(static_cast<unsigned char>(t_[pos_])))
      ++pos_;
    if (pos_ == start) return fail("expected digits");
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    eat('-');
    if (eat('0')) {
      if (pos_ < t_.size() &&
          std::isdigit(static_cast<unsigned char>(t_[pos_])))
        return fail("leading zero");
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '+' || t_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    const char* b = t_.data() + start;
    auto [p, ec] = std::from_chars(b, t_.data() + pos_, out.num_v);
    if (ec != std::errc() || p != t_.data() + pos_)
      return fail("unrepresentable number");
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= t_.size()) return fail("unexpected end of input");
    const char c = t_[pos_];
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.str_v);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.bool_v = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.bool_v = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return number(out);
    return fail("unexpected character");
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string k;
      if (!string(k)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.obj.emplace_back(std::move(k), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string err_;
  std::size_t err_pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  return JsonParser(text).run(out, error);
}

}  // namespace brics
