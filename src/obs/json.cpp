#include "obs/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace brics {

void append_json_escaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!has_elem_.empty());
  has_elem_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!has_elem_.empty());
  has_elem_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!has_elem_.empty());
  if (has_elem_.back()) out_ += ',';
  has_elem_.back() = true;
  out_ += '"';
  append_json_escaped(out_, k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  append_json_escaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  out_.append(buf, p);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  out_.append(buf, p);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  out_.append(buf, p);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  assert(has_elem_.empty() && !pending_key_);
  return out_;
}

namespace {

// Recursive-descent validator. Tracks only a cursor; depth-limited so
// adversarial nesting cannot blow the stack.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view t) : t_(t) {}

  bool run(std::string* error) {
    ok_ = value(0);
    if (ok_) {
      skip_ws();
      if (pos_ != t_.size()) fail("trailing characters after document");
    }
    if (!ok_ && error) {
      *error = err_ + " at offset " + std::to_string(err_pos_);
    }
    return ok_;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool fail(const char* what) {
    if (ok_) {
      err_ = what;
      err_pos_ = pos_;
      ok_ = false;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < t_.size() && (t_[pos_] == ' ' || t_[pos_] == '\t' ||
                                t_[pos_] == '\n' || t_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (t_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return fail("expected string");
    while (pos_ < t_.size()) {
      const unsigned char c = static_cast<unsigned char>(t_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= t_.size()) return fail("truncated escape");
        const char e = t_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (pos_ >= t_.size() || !std::isxdigit(
                    static_cast<unsigned char>(t_[pos_])))
              return fail("bad \\u escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      } else {
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < t_.size() &&
           std::isdigit(static_cast<unsigned char>(t_[pos_])))
      ++pos_;
    if (pos_ == start) return fail("expected digits");
    return true;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      if (pos_ < t_.size() &&
          std::isdigit(static_cast<unsigned char>(t_[pos_])))
        return fail("leading zero");
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '+' || t_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= t_.size()) return fail("unexpected end of input");
    const char c = t_[pos_];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return number();
    return fail("unexpected character");
  }

  bool object(int depth) {
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string err_;
  std::size_t err_pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

}  // namespace brics
