#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace brics {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double mean = 0.0, m2 = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    ++n;
    double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = mean;
  s.stddev = n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;
  s.median = percentile(xs, 50.0);
  s.p95 = percentile(xs, 95.0);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  BRICS_CHECK(!xs.empty());
  BRICS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double log_sum = 0.0;
  for (double x : xs) {
    BRICS_CHECK_MSG(x > 0.0, "geometric_mean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace brics
