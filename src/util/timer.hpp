// Wall-clock timing used by the benchmark harnesses and the estimators'
// phase breakdowns.
#pragma once

#include <chrono>
#include <cstdint>

namespace brics {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations; `Timer t; ...; acc += t.seconds()`.
struct PhaseTimes {
  double reduce_s = 0.0;    ///< identical + chain + redundant detection
  double bcc_s = 0.0;       ///< biconnected decomposition + BCT build
  double traverse_s = 0.0;  ///< sampled BFS / Dial runs
  double combine_s = 0.0;   ///< contribution propagation + post-processing
  double total_s = 0.0;     ///< end-to-end (≥ sum of phases)

  /// Sum of the named phases (everything except the residual).
  double sum_phases() const {
    return reduce_s + bcc_s + traverse_s + combine_s;
  }

  /// Residual time not attributed to any named phase (plan building,
  /// allocation, merge overhead). Never negative: normalize() enforces
  /// total_s >= sum_phases(), and a consumer reading other_s() before
  /// normalization still gets a clamped value.
  double other_s() const {
    const double rest = total_s - sum_phases();
    return rest > 0.0 ? rest : 0.0;
  }

  /// Re-establish the total >= sum-of-phases invariant. Phase timers and
  /// the total timer are read at slightly different instants, so rounding
  /// can leave total_s a hair below the sum; estimators call this before
  /// publishing a result so other_s() is exactly total - sum.
  void normalize() {
    const double sum = sum_phases();
    if (total_s < sum) total_s = sum;
  }
};

}  // namespace brics
