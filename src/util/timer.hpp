// Wall-clock timing used by the benchmark harnesses and the estimators'
// phase breakdowns.
#pragma once

#include <chrono>
#include <cstdint>

namespace brics {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations; `Timer t; ...; acc += t.seconds()`.
struct PhaseTimes {
  double reduce_s = 0.0;    ///< identical + chain + redundant detection
  double bcc_s = 0.0;       ///< biconnected decomposition + BCT build
  double traverse_s = 0.0;  ///< sampled BFS / Dial runs
  double combine_s = 0.0;   ///< contribution propagation + post-processing
  double total_s = 0.0;     ///< end-to-end (≥ sum of phases)
};

}  // namespace brics
