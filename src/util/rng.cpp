#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace brics {

std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Rng& rng) {
  BRICS_CHECK_MSG(k <= n, "cannot sample " << k << " of " << n);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;

  // For dense samples a partial Fisher–Yates over an index array is faster
  // and avoids hash-set overhead.
  if (k * 2 >= n) {
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      std::uint32_t j =
          i + static_cast<std::uint32_t>(rng.below(n - i));
      std::swap(idx[i], idx[j]);
    }
    out.assign(idx.begin(), idx.begin() + k);
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    std::uint32_t t = static_cast<std::uint32_t>(rng.below(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> weighted_sample_without_replacement(
    std::span<const double> weights, std::uint32_t k, Rng& rng) {
  const std::uint32_t n = static_cast<std::uint32_t>(weights.size());
  BRICS_CHECK_MSG(k <= n, "cannot sample " << k << " of " << n);
  // Key = u^(1/w) for u ~ U(0,1); the k largest keys form the sample.
  // Computed in log space for numeric stability; zero weights map to -inf.
  std::vector<std::pair<double, std::uint32_t>> keyed(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    BRICS_CHECK_MSG(weights[i] >= 0.0, "negative weight at " << i);
    const double u = rng.uniform01();
    const double logkey =
        weights[i] > 0.0
            ? std::log(std::max(u, 1e-300)) / weights[i]
            : -std::numeric_limits<double>::infinity();
    keyed[i] = {logkey, i};
  }
  std::partial_sort(keyed.begin(), keyed.begin() + k, keyed.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<std::uint32_t> out(k);
  for (std::uint32_t i = 0; i < k; ++i) out[i] = keyed[i].second;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace brics
