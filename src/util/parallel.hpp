// Thin OpenMP veneer.
//
// The library parallelises at two grains, matching the paper's design:
// across BFS sources (random-sampling baseline) and across biconnected
// blocks plus sources within a block (BRICS). All OpenMP pragmas in the
// library go through plain `#pragma omp` in the .cpp files; this header only
// centralises runtime queries so non-OpenMP builds could stub them in one
// place.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

namespace brics {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's index inside a parallel region (0 outside of one).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Override the global thread count (used by benchmark harnesses).
inline void set_threads(int n) {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

}  // namespace brics
