// Thin OpenMP veneer.
//
// The library parallelises at two grains, matching the paper's design:
// across BFS sources (random-sampling baseline) and across biconnected
// blocks plus sources within a block (BRICS). All OpenMP pragmas in the
// library go through plain `#pragma omp` in the .cpp files; this header only
// centralises runtime queries so non-OpenMP builds could stub them in one
// place.
#pragma once

#include <algorithm>
#include <bit>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace brics {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's index inside a parallel region (0 outside of one).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Hard ceiling on the thread count set_threads() will honour: a power of
/// two, at least 64, covering both hardware_concurrency and whatever
/// OMP_NUM_THREADS asked for when the process came up. The per-thread
/// metric slots (obs/metrics.hpp) are sized to exactly this at first use,
/// so as long as thread counts go through set_threads(), every OpenMP
/// thread id owns a private slot and the single-writer exactness of the
/// relaxed load+store counters holds — no aliasing, no lost increments.
inline int thread_ceiling() {
  static const int ceiling = [] {
    unsigned want = 64;
#ifdef _OPENMP
    want = std::max(want, static_cast<unsigned>(omp_get_max_threads()));
#endif
    want = std::max(want, std::thread::hardware_concurrency());
    return static_cast<int>(std::bit_ceil(want));
  }();
  return ceiling;
}

/// Override the global thread count (benchmark harnesses, CLI --threads).
/// Requests above thread_ceiling() are clamped to it: the metric slot
/// count is fixed at process start, and oversubscribing past it would put
/// two writers on one slot.
inline void set_threads(int n) {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(std::min(n, thread_ceiling()));
#else
  (void)n;
#endif
}

}  // namespace brics
