// Small numeric-summary helpers shared by the quality metrics and the
// benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace brics {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;  ///< percentile(xs, 50)
  double p95 = 0.0;     ///< percentile(xs, 95)
};

/// Mean/stddev/min/max via Welford plus median/p95 via a sorted copy.
/// Empty input yields zeros.
Summary summarize(std::span<const double> xs);

/// p-th percentile (0 ≤ p ≤ 100) with linear interpolation; copies + sorts.
double percentile(std::span<const double> xs, double p);

/// Geometric mean; all inputs must be positive. Empty input yields 1.0.
double geometric_mean(std::span<const double> xs);

}  // namespace brics
