// NUMA-aware first-touch array initialisation.
//
// On NUMA machines the OS homes each page of an allocation on the memory
// node of the thread that FIRST writes it. A sequential `assign(n, 0)` on
// the driver thread therefore lands every page of a gigabyte-scale
// accumulator on one socket, and all remote threads pay cross-socket
// latency for the array's whole lifetime. These helpers write every
// element from an OpenMP `schedule(static)` loop — the same deterministic
// thread→range mapping the parallel kernels use to read and merge the
// array later — so page homes match the access pattern.
//
// first_touch_array() is the strong form: it allocates with
// make_unique_for_overwrite (no value-init, so the parallel fill is the
// genuine first touch) and hands the buffer back as a vector-compatible
// owner. first_touch_assign() is the retrofit form for call sites that
// must keep std::vector: on a freshly reserved vector the zero-fill of
// resize() already touches pages, so the parallel pass only fixes re-used
// buffers — still worthwhile for per-round re-initialisation, and a no-op
// cost otherwise.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace brics {

/// Owning first-touch buffer: allocation is uninitialised, the parallel
/// static fill performs the actual first touch of every page.
template <class T>
class FirstTouchArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "first-touch skips construction; T must be trivial");

 public:
  FirstTouchArray() = default;
  FirstTouchArray(std::size_t n, T value) { assign(n, value); }

  void assign(std::size_t n, T value) {
    if (n > cap_) {
      data_ = std::make_unique_for_overwrite<T[]>(n);
      cap_ = n;
    }
    size_ = n;
    T* p = data_.get();
    const std::int64_t sn = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < sn; ++i) p[i] = value;
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() { return data_.get(); }
  T* end() { return data_.get() + size_; }
  const T* begin() const { return data_.get(); }
  const T* end() const { return data_.get() + size_; }

 private:
  std::unique_ptr<T[]> data_;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

/// Parallel static re-initialisation of an existing vector. Guarantees the
/// same thread→page mapping as a `schedule(static)` reader; for a buffer
/// that is being re-used (capacity already present) this IS the first
/// touch of any page evicted or remapped since, and re-homes nothing
/// otherwise.
template <class T>
void first_touch_assign(std::vector<T>& v, std::size_t n, T value) {
  v.resize(n);
  T* p = v.data();
  const std::int64_t sn = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < sn; ++i) p[i] = value;
}

}  // namespace brics
