// Always-on invariant checking.
//
// BRICS_CHECK is used for preconditions on public API boundaries and for
// internal invariants whose violation would silently corrupt results
// (estimated centralities are hard to eyeball). The cost of the checks kept
// in release builds is negligible next to the graph traversals they guard.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace brics {

/// Thrown when a BRICS_CHECK fails. Carries the failed expression text,
/// source location, and an optional user message.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "BRICS_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace brics

#define BRICS_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr))                                                        \
      ::brics::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define BRICS_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream brics_check_os_;                               \
      brics_check_os_ << msg;                                           \
      ::brics::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                    brics_check_os_.str());             \
    }                                                                   \
  } while (0)
