// Deterministic, seedable pseudo-random number generation.
//
// Every randomised component of the library (generators, samplers) takes an
// explicit seed so that experiments are reproducible run-to-run and
// machine-to-machine. We use xoshiro256** seeded through splitmix64 — fast,
// well-distributed, and trivially forkable for parallel streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace brics {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (for hashing node ids etc.).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's unbiased multiply-shift method.
  std::uint64_t below(std::uint64_t bound) {
    BRICS_CHECK(bound > 0);
    // Rejection loop guarantees exact uniformity.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold)
        return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    BRICS_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child stream (for per-thread RNGs).
  Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Floyd's algorithm: k distinct values uniformly from [0, n), sorted.
/// O(k) expected time, O(k) space; suitable for k close to n as well.
std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Rng& rng);

/// Weighted sampling without replacement (Efraimidis–Spirakis): k distinct
/// indices from [0, weights.size()), each included with probability
/// proportional to its weight at every draw. Zero-weight items are only
/// chosen once all positive-weight items are exhausted. O(n log n), sorted.
std::vector<std::uint32_t> weighted_sample_without_replacement(
    std::span<const double> weights, std::uint32_t k, Rng& rng);

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = rng.below(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace brics
