// Dataset registry: synthetic stand-ins for the paper's Table I graphs.
//
// The paper evaluates on twelve real-world graphs in four classes (web,
// social, community, road) from SNAP and the UF Sparse Matrix collection.
// Those downloads are unavailable offline, so each class is substituted by
// three generator recipes tuned to reproduce the structural signature the
// paper's analysis (§IV-C2) attributes to that class:
//
//   web       ~40-50 % identical nodes, large pendant/chain mass, many
//             biconnected components with a heavy small-size tail
//   social    large degree-1/2 population, ~30-40 % identical nodes, few
//             redundant nodes, one giant BiCC after reduction
//   community moderate identical/redundant/chain mass (triangle-rich),
//             giant BiCC covering ~80 % of the reduced graph
//   road      70-85 % of nodes with degree <= 2, almost no identical or
//             redundant nodes, >90 % of nodes in one BiCC
//
// Every dataset accepts a scale in (0, 1]: 1.0 is the benchmark size,
// smaller values shrink node counts proportionally (used by tests). Real
// SNAP edge lists can replace any of these via graph/graph_io.hpp.
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace brics {

enum class GraphClass { kWeb, kSocial, kCommunity, kRoad };

/// Human-readable class label ("web", "social", ...).
std::string to_string(GraphClass c);

/// One registry entry.
struct DatasetInfo {
  std::string name;
  GraphClass cls;
};

/// All twelve datasets, grouped by class in Table I order.
const std::vector<DatasetInfo>& dataset_registry();

/// Build a dataset by name; throws CheckFailure for unknown names.
/// The result is always simple, undirected, unit-weight and connected.
CsrGraph build_dataset(const std::string& name, double scale = 1.0);

}  // namespace brics
