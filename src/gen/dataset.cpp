#include "gen/dataset.hpp"

#include <cmath>

#include "gen/generators.hpp"
#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

NodeId scaled(double scale, NodeId n) {
  const double s = std::max(16.0, std::round(scale * static_cast<double>(n)));
  return static_cast<NodeId>(s);
}

// Each recipe composes generators, then normalises exactly like the paper's
// dataset preparation: simple, undirected, connected.
CsrGraph finish(CsrGraph g) { return make_connected(g); }

// ---- Web graphs: copying model + pendant mass. -------------------------
CsrGraph web_a(double s, Rng rng) {
  CsrGraph g = web_copying(scaled(s, 9000), 5, 0.55, 0.7, rng);
  g = plant_twins(g, scaled(s, 5200), rng);
  g = attach_pendant_chains(g, scaled(s, 1500), 1, 7, rng);
  g = add_parallel_chains(g, scaled(s, 420), 1, 4, rng);
  return finish(std::move(g));
}

CsrGraph web_b(double s, Rng rng) {
  CsrGraph g = web_copying(scaled(s, 13000), 7, 0.6, 0.8, rng);
  g = plant_twins(g, scaled(s, 8500), rng);
  g = attach_pendant_chains(g, scaled(s, 2000), 1, 6, rng);
  g = add_parallel_chains(g, scaled(s, 600), 1, 4, rng);
  return finish(std::move(g));
}

CsrGraph web_c(double s, Rng rng) {
  CsrGraph g = barabasi_albert(scaled(s, 8000), 2, rng);
  g = plant_twins(g, scaled(s, 6500), rng);
  g = attach_pendant_chains(g, scaled(s, 1400), 1, 7, rng);
  g = add_parallel_chains(g, scaled(s, 380), 2, 5, rng);
  return finish(std::move(g));
}

// ---- Social graphs: preferential attachment + twins + leaves. ----------
CsrGraph soc_a(double s, Rng rng) {
  CsrGraph g = barabasi_albert(scaled(s, 14000), 4, rng);
  g = plant_twins(g, scaled(s, 6500), rng);
  g = attach_pendant_chains(g, scaled(s, 2600), 1, 3, rng);
  g = add_parallel_chains(g, scaled(s, 60), 1, 3, rng);
  return finish(std::move(g));
}

CsrGraph soc_b(double s, Rng rng) {
  std::uint32_t scale_bits = 13;
  if (s < 0.25)
    scale_bits = 10;
  else if (s < 0.75)
    scale_bits = 12;
  CsrGraph g = rmat(scale_bits, 8, 0.57, 0.19, 0.19, rng);
  g = largest_component(g).graph;
  g = plant_twins(g, g.num_nodes() / 2, rng);
  g = attach_pendant_chains(g, g.num_nodes() / 8, 1, 3, rng);
  g = add_parallel_chains(g, g.num_nodes() / 120, 1, 3, rng);
  return finish(std::move(g));
}

CsrGraph soc_c(double s, Rng rng) {
  CsrGraph g = barabasi_albert(scaled(s, 22000), 3, rng);
  g = plant_twins(g, scaled(s, 11000), rng);
  g = attach_pendant_chains(g, scaled(s, 3200), 1, 2, rng);
  return finish(std::move(g));
}

// ---- Community networks: planted partitions, triangle-rich. ------------
CsrGraph com_a(double s, Rng rng) {
  CsrGraph g = planted_partition(36, scaled(s, 320), scaled(s, 1200),
                                 scaled(s, 3200), rng);
  g = plant_redundant3(g, scaled(s, 900), rng);
  g = plant_redundant4(g, scaled(s, 250), rng);
  g = plant_twins(g, scaled(s, 1600), rng);
  g = attach_pendant_chains(g, scaled(s, 1000), 1, 4, rng);
  g = add_parallel_chains(g, scaled(s, 500), 1, 3, rng);
  return finish(std::move(g));
}

CsrGraph com_b(double s, Rng rng) {
  CsrGraph g = planted_partition(52, scaled(s, 380), scaled(s, 1500),
                                 scaled(s, 5200), rng);
  g = plant_redundant3(g, scaled(s, 1200), rng);
  g = plant_twins(g, scaled(s, 2200), rng);
  g = attach_pendant_chains(g, scaled(s, 1500), 1, 4, rng);
  g = add_parallel_chains(g, scaled(s, 300), 1, 3, rng);
  return finish(std::move(g));
}

CsrGraph com_c(double s, Rng rng) {
  CsrGraph g = barabasi_albert(scaled(s, 12000), 5, rng);
  g = plant_twins(g, scaled(s, 1300), rng);
  g = plant_redundant3(g, scaled(s, 1100), rng);
  g = plant_redundant4(g, scaled(s, 180), rng);
  g = attach_pendant_chains(g, scaled(s, 2400), 1, 5, rng);
  return finish(std::move(g));
}

// ---- Road networks: lattices with heavy edge subdivision. ---------------
CsrGraph road_a(double s, Rng rng) {
  NodeId side = scaled(s, 88);
  side = static_cast<NodeId>(std::sqrt(static_cast<double>(side) * 88.0));
  CsrGraph g = grid2d(side, side, 0.92, rng);
  g = largest_component(g).graph;
  g = subdivide_edges(g, 0.85, 1, 8, rng);
  g = add_parallel_chains(g, 8, 2, 6, rng);
  return finish(std::move(g));
}

CsrGraph road_b(double s, Rng rng) {
  NodeId side = scaled(s, 140);
  side = static_cast<NodeId>(std::sqrt(static_cast<double>(side) * 140.0));
  CsrGraph g = grid2d(side, side, 0.88, rng);
  g = largest_component(g).graph;
  g = subdivide_edges(g, 0.8, 1, 6, rng);
  g = add_parallel_chains(g, 14, 2, 6, rng);
  return finish(std::move(g));
}

CsrGraph road_c(double s, Rng rng) {
  NodeId side = scaled(s, 60);
  side = static_cast<NodeId>(std::sqrt(static_cast<double>(side) * 60.0));
  CsrGraph g = grid2d(side, side, 0.95, rng);
  g = largest_component(g).graph;
  g = subdivide_edges(g, 0.75, 1, 6, rng);
  g = attach_pendant_chains(g, g.num_nodes() / 20, 2, 10, rng);
  return finish(std::move(g));
}

struct Recipe {
  DatasetInfo info;
  CsrGraph (*build)(double, Rng);
  std::uint64_t seed;
};

const std::vector<Recipe>& recipes() {
  static const std::vector<Recipe> r = {
      {{"web-copy-a", GraphClass::kWeb}, web_a, 101},
      {{"web-copy-b", GraphClass::kWeb}, web_b, 102},
      {{"web-hub", GraphClass::kWeb}, web_c, 103},
      {{"soc-pref-a", GraphClass::kSocial}, soc_a, 201},
      {{"soc-rmat", GraphClass::kSocial}, soc_b, 202},
      {{"soc-pref-b", GraphClass::kSocial}, soc_c, 203},
      {{"com-part-a", GraphClass::kCommunity}, com_a, 301},
      {{"com-part-b", GraphClass::kCommunity}, com_b, 302},
      {{"com-cite", GraphClass::kCommunity}, com_c, 303},
      {{"road-grid-a", GraphClass::kRoad}, road_a, 401},
      {{"road-grid-b", GraphClass::kRoad}, road_b, 402},
      {{"road-rural", GraphClass::kRoad}, road_c, 403},
  };
  return r;
}

}  // namespace

std::string to_string(GraphClass c) {
  switch (c) {
    case GraphClass::kWeb:
      return "web";
    case GraphClass::kSocial:
      return "social";
    case GraphClass::kCommunity:
      return "community";
    case GraphClass::kRoad:
      return "road";
  }
  return "?";
}

const std::vector<DatasetInfo>& dataset_registry() {
  static const std::vector<DatasetInfo> infos = [] {
    std::vector<DatasetInfo> v;
    for (const Recipe& r : recipes()) v.push_back(r.info);
    return v;
  }();
  return infos;
}

CsrGraph build_dataset(const std::string& name, double scale) {
  BRICS_CHECK_MSG(scale > 0.0 && scale <= 1.0,
                  "scale must be in (0, 1], got " << scale);
  for (const Recipe& r : recipes()) {
    if (r.info.name == name) {
      Rng rng(r.seed);
      return r.build(scale, rng);
    }
  }
  BRICS_CHECK_MSG(false, "unknown dataset '" << name << "'");
  return {};
}

}  // namespace brics
