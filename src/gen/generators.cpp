#include "gen/generators.hpp"

#include <algorithm>

#include "graph/stream_build.hpp"
#include "util/check.hpp"

namespace brics {

CsrGraph erdos_renyi(NodeId n, std::uint64_t m, Rng& rng) {
  BRICS_CHECK(n >= 2);
  GraphBuilder b(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    if (u != v) b.add_edge(u, v);
  }
  return b.build();
}

CsrGraph barabasi_albert(NodeId n, std::uint32_t edges_per_node, Rng& rng) {
  BRICS_CHECK(n >= 2 && edges_per_node >= 1);
  GraphBuilder b(n);
  // `ends` holds one entry per edge endpoint; sampling an entry uniformly
  // is sampling a node proportionally to its degree.
  std::vector<NodeId> ends;
  ends.reserve(static_cast<std::size_t>(n) * edges_per_node * 2);
  ends.push_back(0);  // seed the urn
  for (NodeId t = 1; t < n; ++t) {
    const std::uint32_t k = std::min<std::uint32_t>(
        edges_per_node, static_cast<std::uint32_t>(t));
    std::vector<NodeId> chosen;
    chosen.reserve(k);
    for (std::uint32_t j = 0; j < k; ++j) {
      NodeId target = ends[rng.below(ends.size())];
      if (target == t ||
          std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        target = static_cast<NodeId>(rng.below(t));  // fallback: uniform
      }
      chosen.push_back(target);
    }
    for (NodeId target : chosen) {
      if (target == t) continue;
      b.add_edge(t, target);
      ends.push_back(t);
      ends.push_back(target);
    }
  }
  return b.build();
}

CsrGraph rmat(std::uint32_t scale, std::uint32_t edge_factor, double a,
              double b, double c, Rng& rng) {
  BRICS_CHECK(scale >= 1 && scale < 31);
  BRICS_CHECK(a + b + c <= 1.0 + 1e-9);
  const NodeId n = NodeId{1} << scale;
  const std::uint64_t m = static_cast<std::uint64_t>(edge_factor) * n;
  GraphBuilder builder(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    NodeId u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform01();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) builder.add_edge(u, v);
  }
  return builder.build();
}

CsrGraph rmat_streamed(std::uint32_t scale, std::uint32_t edge_factor,
                       double a, double b, double c, std::uint64_t seed,
                       AdjacencyStorage storage) {
  BRICS_CHECK(scale >= 1 && scale < 31);
  BRICS_CHECK(a + b + c <= 1.0 + 1e-9);
  const NodeId n = NodeId{1} << scale;
  const std::uint64_t m = static_cast<std::uint64_t>(edge_factor) * n;
  TwoPassBuilder builder(n);
  // The Rng is the edge stream: restarting it from the seed replays the
  // identical sequence through both passes, so nothing is materialized.
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) builder.begin_scatter();
    Rng rng(seed);
    for (std::uint64_t i = 0; i < m; ++i) {
      NodeId u = 0, v = 0;
      for (std::uint32_t bit = 0; bit < scale; ++bit) {
        const double r = rng.uniform01();
        u <<= 1;
        v <<= 1;
        if (r < a) {
          // top-left quadrant: no bits set
        } else if (r < a + b) {
          v |= 1;
        } else if (r < a + b + c) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      if (u == v) continue;
      if (pass == 0)
        builder.count_edge(u, v);
      else
        builder.scatter_edge(u, v);
    }
  }
  return builder.finish(storage);
}

CsrGraph planted_partition(NodeId blocks, NodeId block_size,
                           std::uint64_t m_in, std::uint64_t m_out,
                           Rng& rng) {
  BRICS_CHECK(blocks >= 1 && block_size >= 2);
  const NodeId n = blocks * block_size;
  GraphBuilder b(n);
  for (NodeId blk = 0; blk < blocks; ++blk) {
    const NodeId base = blk * block_size;
    for (std::uint64_t i = 0; i < m_in; ++i) {
      NodeId u = base + static_cast<NodeId>(rng.below(block_size));
      NodeId v = base + static_cast<NodeId>(rng.below(block_size));
      if (u != v) b.add_edge(u, v);
    }
  }
  for (std::uint64_t i = 0; i < m_out; ++i) {
    NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    if (u / block_size != v / block_size) b.add_edge(u, v);
  }
  return b.build();
}

CsrGraph grid2d(NodeId rows, NodeId cols, double keep, Rng& rng) {
  BRICS_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng.chance(keep))
        b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows && rng.chance(keep))
        b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

CsrGraph random_tree(NodeId n, Rng& rng) {
  BRICS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId t = 1; t < n; ++t)
    b.add_edge(t, static_cast<NodeId>(rng.below(t)));
  return b.build();
}

CsrGraph subdivide_edges(const CsrGraph& g, double p, std::uint32_t min_len,
                         std::uint32_t max_len, Rng& rng) {
  BRICS_CHECK(min_len >= 1 && min_len <= max_len);
  std::vector<Edge> edges = g.edge_list();
  // First count extra nodes so ids can be assigned in one pass.
  std::vector<std::uint32_t> extra(edges.size(), 0);
  NodeId total_extra = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (rng.chance(p)) {
      extra[i] = static_cast<std::uint32_t>(
          rng.range(min_len, max_len));
      total_extra += extra[i];
    }
  }
  GraphBuilder b(g.num_nodes() + total_extra);
  NodeId next = g.num_nodes();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (extra[i] == 0) {
      b.add_edge(edges[i].u, edges[i].v, edges[i].w);
      continue;
    }
    NodeId prev = edges[i].u;
    for (std::uint32_t j = 0; j < extra[i]; ++j) {
      b.add_edge(prev, next, 1);
      prev = next++;
    }
    b.add_edge(prev, edges[i].v, 1);
  }
  return b.build();
}

CsrGraph attach_pendant_chains(const CsrGraph& g, NodeId count,
                               std::uint32_t min_len, std::uint32_t max_len,
                               Rng& rng) {
  BRICS_CHECK(min_len >= 1 && min_len <= max_len);
  BRICS_CHECK(g.num_nodes() >= 1);
  std::vector<std::uint32_t> lens(count);
  NodeId total = 0;
  for (auto& l : lens) {
    l = static_cast<std::uint32_t>(rng.range(min_len, max_len));
    total += l;
  }
  GraphBuilder b(g.num_nodes() + total);
  b.add_edges(g.edge_list());
  NodeId next = g.num_nodes();
  for (std::uint32_t l : lens) {
    NodeId prev = static_cast<NodeId>(rng.below(g.num_nodes()));
    for (std::uint32_t j = 0; j < l; ++j) {
      b.add_edge(prev, next, 1);
      prev = next++;
    }
  }
  return b.build();
}

CsrGraph add_parallel_chains(const CsrGraph& g, NodeId count,
                             std::uint32_t min_len, std::uint32_t max_len,
                             Rng& rng) {
  BRICS_CHECK(min_len >= 1 && min_len <= max_len);
  std::vector<Edge> edges = g.edge_list();
  BRICS_CHECK(!edges.empty());
  // Pick anchor edges and chain lengths up front to size the id space;
  // duplicating an anchor edge on purpose yields identical (Type-4) chains.
  std::vector<std::pair<std::size_t, std::uint32_t>> plan(count);
  NodeId total = 0;
  for (NodeId i = 0; i < count; ++i) {
    auto& [ei, len] = plan[i];
    if (i % 2 == 1) {
      plan[i] = plan[i - 1];  // deliberate duplicate: an identical chain
    } else {
      ei = rng.below(edges.size());
      len = static_cast<std::uint32_t>(rng.range(min_len, max_len));
    }
    total += plan[i].second;
  }
  GraphBuilder b(g.num_nodes() + total);
  b.add_edges(edges);
  NodeId next = g.num_nodes();
  for (auto& [ei, len] : plan) {
    NodeId prev = edges[ei].u;
    for (std::uint32_t j = 0; j < len; ++j) {
      b.add_edge(prev, next, 1);
      prev = next++;
    }
    b.add_edge(prev, edges[ei].v, 1);
  }
  return b.build();
}

CsrGraph plant_twins(const CsrGraph& g, NodeId count, Rng& rng) {
  BRICS_CHECK(g.num_nodes() >= 2);
  GraphBuilder b(g.num_nodes() + count);
  b.add_edges(g.edge_list());
  // Twins are planted in groups of 2-5 copies sharing one prototype. The
  // prototype itself may stop being their twin (later groups can attach to
  // it), but copies within a group always remain open twins of each other,
  // so the planted identical-node mass survives by construction.
  NodeId next = g.num_nodes();
  const NodeId end = g.num_nodes() + count;
  while (next < end) {
    NodeId proto = static_cast<NodeId>(rng.below(g.num_nodes()));
    for (int tries = 0; tries < 8 && g.degree(proto) == 0; ++tries)
      proto = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (g.degree(proto) == 0) break;  // edgeless graph: nothing to copy
    const NodeId group = std::min<NodeId>(
        static_cast<NodeId>(rng.range(2, 5)), end - next);
    auto nb = g.neighbors(proto);
    auto ws = g.weights(proto);
    for (NodeId j = 0; j < group; ++j, ++next)
      for (std::size_t k = 0; k < nb.size(); ++k)
        b.add_edge(next, nb[k], ws[k]);
  }
  return b.build();
}

CsrGraph plant_redundant3(const CsrGraph& g, NodeId count, Rng& rng) {
  GraphBuilder b(g.num_nodes() + count);
  b.add_edges(g.edge_list());
  NodeId added = 0;
  for (NodeId tries = 0; tries < count * 8 && added < count; ++tries) {
    NodeId x = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (g.degree(x) < 2) continue;
    auto nb = g.neighbors(x);
    NodeId a = nb[rng.below(nb.size())];
    NodeId c = nb[rng.below(nb.size())];
    if (a == c) continue;
    const NodeId v = g.num_nodes() + added;
    b.add_edge(a, c);  // close the triangle (merged if already present)
    b.add_edge(v, x);
    b.add_edge(v, a);
    b.add_edge(v, c);
    ++added;
  }
  return b.build();
}

CsrGraph plant_redundant4(const CsrGraph& g, NodeId count, Rng& rng) {
  BRICS_CHECK(g.num_nodes() >= 4);
  GraphBuilder b(g.num_nodes() + count);
  std::vector<Edge> edges = g.edge_list();
  BRICS_CHECK(!edges.empty());
  b.add_edges(edges);
  NodeId added = 0;
  for (NodeId tries = 0; tries < count * 8 && added < count; ++tries) {
    const Edge& e = edges[rng.below(edges.size())];
    NodeId c = static_cast<NodeId>(rng.below(g.num_nodes()));
    NodeId d = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (c == d || c == e.u || c == e.v || d == e.u || d == e.v) continue;
    const NodeId v = g.num_nodes() + added;
    // 4-cycle u-c-v'-d ensures every neighbour of v touches two others.
    b.add_edge(e.u, c);
    b.add_edge(c, e.v);
    b.add_edge(e.v, d);
    b.add_edge(d, e.u);
    b.add_edge(v, e.u);
    b.add_edge(v, e.v);
    b.add_edge(v, c);
    b.add_edge(v, d);
    ++added;
  }
  return b.build();
}

CsrGraph web_copying(NodeId n, std::uint32_t out_deg, double dup, double copy,
                     Rng& rng) {
  BRICS_CHECK(n >= 2 && out_deg >= 1);
  // Adjacency-by-target accumulated incrementally; the builder canonicalises.
  std::vector<std::vector<NodeId>> out(n);
  GraphBuilder b(n);
  out[0] = {};
  for (NodeId t = 1; t < n; ++t) {
    const NodeId proto = static_cast<NodeId>(rng.below(t));
    if (!out[proto].empty() && rng.chance(dup)) {
      // Verbatim copy: t becomes an open twin of proto (until later nodes
      // link to one of them and break the tie — many survive).
      out[t] = out[proto];
    } else {
      const std::uint32_t k =
          std::min<std::uint32_t>(out_deg, static_cast<std::uint32_t>(t));
      for (std::uint32_t j = 0; j < k; ++j) {
        NodeId target;
        if (!out[proto].empty() && rng.chance(copy))
          target = out[proto][rng.below(out[proto].size())];
        else
          target = static_cast<NodeId>(rng.below(t));
        if (target != t) out[t].push_back(target);
      }
    }
    for (NodeId target : out[t]) b.add_edge(t, target);
  }
  return b.build();
}

}  // namespace brics
