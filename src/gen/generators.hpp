// Synthetic graph generators.
//
// Two roles: (1) random inputs for property-based tests, (2) building blocks
// for the dataset registry (gen/dataset.hpp) that substitutes the paper's
// SNAP / UF Sparse collection graphs with structurally faithful synthetics
// (DESIGN.md §4). Every generator is deterministic in (parameters, seed) and
// returns a simple undirected graph; most leave connectivity to the caller
// (compose with make_connected / largest_component).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace brics {

/// G(n, m): m edges sampled uniformly (duplicates merged, so the result may
/// have slightly fewer edges).
CsrGraph erdos_renyi(NodeId n, std::uint64_t m, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `edges_per_node` existing nodes chosen proportionally to degree.
CsrGraph barabasi_albert(NodeId n, std::uint32_t edges_per_node, Rng& rng);

/// R-MAT: 2^scale nodes, edge_factor * 2^scale edges, recursive quadrant
/// probabilities (a, b, c; d = 1-a-b-c).
CsrGraph rmat(std::uint32_t scale, std::uint32_t edge_factor, double a,
              double b, double c, Rng& rng);

/// Streaming R-MAT: identical distribution to rmat(), but the edge stream
/// is replayed from `seed` through both builder passes instead of being
/// materialized — peak memory is the CSR under construction, never an edge
/// list. With the same seed this produces the exact same graph as
/// `Rng rng(seed); rmat(...)`. `storage` selects the adjacency backend of
/// the result.
CsrGraph rmat_streamed(std::uint32_t scale, std::uint32_t edge_factor,
                       double a, double b, double c, std::uint64_t seed,
                       AdjacencyStorage storage = AdjacencyStorage::kPlain);

/// Planted-partition / stochastic block model: `blocks` equal blocks of
/// `block_size` nodes, `m_in` intra-block edges per block, `m_out`
/// inter-block edges total.
CsrGraph planted_partition(NodeId blocks, NodeId block_size,
                           std::uint64_t m_in, std::uint64_t m_out, Rng& rng);

/// rows × cols 4-neighbour lattice with each edge kept with probability
/// `keep` (road-network skeleton; keep < 1 carves irregular street grids).
CsrGraph grid2d(NodeId rows, NodeId cols, double keep, Rng& rng);

/// Random tree on n nodes (uniform attachment), the extreme all-chain case.
CsrGraph random_tree(NodeId n, Rng& rng);

// ---- Structure transplants: grow paper-relevant features onto a base. ----

/// Subdivide each edge independently with probability p into a path of
/// uniform random length in [min_len, max_len] extra nodes — the source of
/// degree-2 chain mass (road networks: 70–85 % degree <= 2).
CsrGraph subdivide_edges(const CsrGraph& g, double p, std::uint32_t min_len,
                         std::uint32_t max_len, Rng& rng);

/// Attach `count` pendant chains of uniform random length in
/// [min_len, max_len] to random anchor nodes (degree-1 tips; Type-1 chains).
CsrGraph attach_pendant_chains(const CsrGraph& g, NodeId count,
                               std::uint32_t min_len, std::uint32_t max_len,
                               Rng& rng);

/// Add `count` parallel chains: each picks a random existing edge (u, v)
/// and adds a fresh path u - x_1 .. x_len - v alongside it. Chains with
/// equal length between the same endpoints are the paper's Type-4
/// "identical chains" (Table I column Ch.Nodes); longer-than-shortest ones
/// are Type-3 redundant chains.
CsrGraph add_parallel_chains(const CsrGraph& g, NodeId count,
                             std::uint32_t min_len, std::uint32_t max_len,
                             Rng& rng);

/// Add `count` new nodes, each an open twin of a random existing node
/// (copies its full neighbour list) — the web-graph "copied page" effect
/// that yields the paper's 40 %+ identical-node mass.
CsrGraph plant_twins(const CsrGraph& g, NodeId count, Rng& rng);

/// Add `count` redundant degree-3 nodes: each picks a random node x with
/// two neighbours a, b, closes the triangle (a, b), and attaches a new node
/// to {x, a, b} (Fig. 1(e)).
CsrGraph plant_redundant3(const CsrGraph& g, NodeId count, Rng& rng);

/// Add `count` redundant degree-4 nodes: each picks a random edge (a, b),
/// picks two more nodes c, d, builds the 4-cycle a-c-b-d, and attaches a
/// new node to {a, b, c, d} (Fig. 1(f)).
CsrGraph plant_redundant4(const CsrGraph& g, NodeId count, Rng& rng);

/// Kumar-style copying model for web graphs: node t >= 1 picks a prototype
/// p < t; with probability `dup` it copies p's entire out-list verbatim
/// (creating identical nodes), otherwise each of `out_deg` links copies one
/// of p's targets with probability `copy` and is uniform random otherwise.
CsrGraph web_copying(NodeId n, std::uint32_t out_deg, double dup, double copy,
                     Rng& rng);

}  // namespace brics
