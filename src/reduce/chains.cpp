#include "reduce/chains.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/check.hpp"

namespace brics {
namespace {

// One step of a chain walk: from `cur` (degree 2) move to the neighbour
// that is not `prev`, returning the traversed edge weight. The scratch
// backs the row decode on compact graphs (zero-copy on plain).
std::pair<NodeId, Weight> step(const CsrGraph& g, RowScratch& scratch,
                               NodeId prev, NodeId cur) {
  const RowRef r = g.row(cur, scratch);
  BRICS_CHECK(r.nbrs.size() == 2);
  return r.nbrs[0] == prev ? std::pair{r.nbrs[1], r.wts[1]}
                           : std::pair{r.nbrs[0], r.wts[0]};
}

struct Walk {
  NodeId endpoint = kInvalidNode;  // first chain-breaking node reached
  Weight last_w = 0;               // weight of the edge reaching endpoint
  std::vector<NodeId> interior;    // removable degree-2 nodes, nearest first
  std::vector<Weight> interior_w;  // weight of the edge *into* each interior
  bool closed_cycle = false;       // walk returned to the start node
};

// A node can be a chain interior only if it has degree 2 and is not a
// pinned anchor of an earlier reduction record.
bool chain_interior(const CsrGraph& g, const ReductionLedger& ledger,
                    NodeId v) {
  return g.degree(v) == 2 && !ledger.pinned(v);
}

// Walk from start (a chain interior) towards `first`, through chain
// interiors, until a breaking node or `start` itself is reached.
Walk walk_chain(const CsrGraph& g, RowScratch& scratch,
                const ReductionLedger& ledger, NodeId start, NodeId first,
                Weight first_w) {
  Walk w;
  NodeId prev = start, cur = first;
  Weight into = first_w;
  while (true) {
    if (cur == start) {
      w.closed_cycle = true;
      w.last_w = into;
      return w;
    }
    if (!chain_interior(g, ledger, cur)) {
      w.endpoint = cur;
      w.last_w = into;
      return w;
    }
    w.interior.push_back(cur);
    w.interior_w.push_back(into);
    auto [next, wt] = step(g, scratch, prev, cur);
    prev = cur;
    cur = next;
    into = wt;
  }
}

}  // namespace

ChainPassResult remove_chain_nodes(const CsrGraph& g,
                                   std::vector<std::uint8_t>& present,
                                   ReductionLedger& ledger,
                                   bool pendant_only) {
  BRICS_CHECK(present.size() == g.num_nodes());
  ChainPassResult res;
  ChainPassStats& st = res.stats;
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> visited(n, 0);
  RowScratch scratch;

  // Members ordered from the anchor outwards; offsets are cumulative edge
  // weights from the anchor.
  auto emit = [&](NodeId u, NodeId v, std::vector<NodeId> members,
                  std::vector<Dist> offsets, Dist total) {
    if (members.empty()) return;  // e.g. a 2-cycle walk with no interior
    for (NodeId m : members) present[m] = 0;
    st.removed += static_cast<NodeId>(members.size());
    ++st.chains;
    ChainRecord rec;
    rec.u = u;
    rec.v = v;
    rec.total = total;
    rec.members = std::move(members);
    rec.offsets = std::move(offsets);
    ledger.record_chain(std::move(rec));
  };

  // Through chains grouped by (endpoint pair, along-length) for the
  // identical-chain statistic (paper Type 4 / Table I "Ch.Nodes").
  std::map<std::tuple<NodeId, NodeId, Dist>, NodeId> through_seen;

  // ---- Maximal chains with degree-2 interiors. ----
  for (NodeId c = 0; c < n; ++c) {
    if (!present[c] || visited[c] || !chain_interior(g, ledger, c)) continue;
    NodeId nb0, nb1;
    Weight ws0, ws1;
    {
      // Copy the two entries out: the scratch is reused by the walks.
      const RowRef r = g.row(c, scratch);
      nb0 = r.nbrs[0];
      nb1 = r.nbrs[1];
      ws0 = r.wts[0];
      ws1 = r.wts[1];
    }
    Walk left = walk_chain(g, scratch, ledger, c, nb0, ws0);
    if (left.closed_cycle) {
      // Whole component is a cycle; keep c as the anchor.
      std::vector<NodeId> members = std::move(left.interior);
      std::vector<Dist> offsets;
      Dist off = 0;
      for (std::size_t i = 0; i < members.size(); ++i) {
        off += left.interior_w[i];
        offsets.push_back(off);
        visited[members[i]] = 1;
      }
      visited[c] = 1;
      if (pendant_only) continue;  // whole-cycle component stays intact
      Dist total = off + left.last_w;
      ++st.cycle_chains;
      emit(c, c, std::move(members), std::move(offsets), total);
      continue;
    }
    Walk right = walk_chain(g, scratch, ledger, c, nb1, ws1);
    BRICS_CHECK(!right.closed_cycle);

    // Assemble the full chain left.endpoint .. c .. right.endpoint with
    // members ordered from left.endpoint's side.
    std::vector<NodeId> members;
    std::vector<Weight> into;  // weight of edge into each member, from left
    members.reserve(left.interior.size() + 1 + right.interior.size());
    for (std::size_t i = left.interior.size(); i > 0; --i)
      members.push_back(left.interior[i - 1]);
    // Edge weights reversed: edge into left.interior[i-1] from its left
    // neighbour is interior_w[i] for i < size, last_w for the outermost.
    for (std::size_t i = left.interior.size(); i > 0; --i)
      into.push_back(i == left.interior.size() ? left.last_w
                                               : left.interior_w[i]);
    members.push_back(c);
    into.push_back(left.interior.empty() ? left.last_w : left.interior_w[0]);
    for (std::size_t i = 0; i < right.interior.size(); ++i) {
      members.push_back(right.interior[i]);
      into.push_back(right.interior_w[i]);
    }
    for (NodeId m : members) visited[m] = 1;

    NodeId eL = left.endpoint, eR = right.endpoint;
    // A degree-1 endpoint joins the removable chain unless pinned.
    const bool l1 = g.degree(eL) == 1 && !ledger.pinned(eL);
    const bool r1 = g.degree(eR) == 1 && !ledger.pinned(eR);

    auto offsets_from = [&](bool from_left) {
      std::vector<Dist> offs(members.size());
      if (from_left) {
        Dist off = 0;
        for (std::size_t i = 0; i < members.size(); ++i) {
          off += into[i];
          offs[i] = off;
        }
      } else {
        Dist off = 0;
        for (std::size_t i = members.size(); i > 0; --i) {
          off += i == members.size() ? right.last_w : into[i];
          offs[i - 1] = off;
        }
      }
      return offs;
    };
    const Dist total = offsets_from(true).back() + right.last_w;

    if (l1 && r1) {
      // Whole component is a path; keep eL, absorb eR into the chain.
      auto offs = offsets_from(true);
      members.push_back(eR);
      visited[eR] = 1;
      offs.push_back(total);
      ++st.pendant_chains;
      emit(eL, kInvalidNode, std::move(members), std::move(offs), 0);
    } else if (l1 || r1) {
      // Pendant chain anchored at the non-leaf end; tip joins the members.
      if (l1) {
        std::reverse(members.begin(), members.end());
        auto offs = offsets_from(false);
        std::reverse(offs.begin(), offs.end());
        members.push_back(eL);
        offs.push_back(total);
        visited[eL] = 1;
        ++st.pendant_chains;
        emit(eR, kInvalidNode, std::move(members), std::move(offs), 0);
      } else {
        auto offs = offsets_from(true);
        members.push_back(eR);
        offs.push_back(total);
        visited[eR] = 1;
        ++st.pendant_chains;
        emit(eL, kInvalidNode, std::move(members), std::move(offs), 0);
      }
    } else if (eL == eR) {
      if (pendant_only) continue;  // cycle chain: nodes stay present
      ++st.cycle_chains;
      emit(eL, eL, std::move(members), offsets_from(true), total);
    } else {
      if (pendant_only) continue;  // through chain: no compression either
      ++st.through_chains;
      NodeId a = std::min(eL, eR), b = std::max(eL, eR);
      auto [it, fresh] = through_seen.try_emplace({a, b, total}, 0);
      if (!fresh)
        st.identical_chain_nodes += static_cast<NodeId>(members.size());
      ++it->second;
      res.compressed_edges.push_back({eL, eR, total});
      emit(eL, eR, std::move(members), offsets_from(true), total);
    }
  }

  // ---- Length-0-interior pendants: degree-1 nodes with no degree-2 run.
  for (NodeId t = 0; t < n; ++t) {
    if (!present[t] || visited[t] || g.degree(t) != 1 || ledger.pinned(t))
      continue;
    const RowRef tip = g.row(t, scratch);
    NodeId a = tip.nbrs[0];
    Weight w = tip.wts[0];
    if (!present[a]) continue;  // anchor consumed by an earlier chain
    if (g.degree(a) == 1) {
      // K2 component: keep one end as the anchor (t is never pinned here;
      // prefer keeping a when a is pinned).
      if (visited[a]) continue;
      const NodeId keep = ledger.pinned(a) ? a : std::min(t, a);
      const NodeId drop = keep == t ? a : t;
      if (ledger.pinned(drop)) continue;
      visited[t] = visited[a] = 1;
      ++st.pendant_chains;
      emit(keep, kInvalidNode, {drop}, {w}, 0);
    } else if (g.degree(a) >= 3 || ledger.pinned(a)) {
      visited[t] = 1;
      ++st.pendant_chains;
      emit(a, kInvalidNode, {t}, {w}, 0);
    }
    // degree(a) == 2 is impossible here: the chain scan above would have
    // visited t as that chain's leaf endpoint.
  }

  return res;
}

}  // namespace brics
