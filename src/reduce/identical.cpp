#include "reduce/identical.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace brics {
namespace {

// Order-sensitive hash of a (neighbour, weight) sequence. Adjacency lists
// are sorted, so equal sets hash equally.
std::uint64_t hash_adjacency(std::span<const NodeId> nbrs,
                             std::span<const Weight> wts,
                             NodeId skip = kInvalidNode,
                             bool include_self = false, NodeId self = 0) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto feed = [&h](std::uint64_t x) {
    h ^= mix64(x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  bool self_emitted = false;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == skip) continue;
    if (include_self && !self_emitted && nbrs[i] > self) {
      feed(self);
      feed(1);
      self_emitted = true;
    }
    feed(nbrs[i]);
    feed(wts[i]);
  }
  if (include_self && !self_emitted) {
    feed(self);
    feed(1);
  }
  return h;
}

// Exact open-twin test: equal (neighbour, weight) lists.
bool open_twins(const CsrGraph& g, NodeId u, NodeId v) {
  auto nu = g.neighbors(u), nv = g.neighbors(v);
  auto wu = g.weights(u), wv = g.weights(v);
  return nu.size() == nv.size() &&
         std::equal(nu.begin(), nu.end(), nv.begin()) &&
         std::equal(wu.begin(), wu.end(), wv.begin());
}

// Exact closed-twin test: u ~ v and N(u)\{v} == N(v)\{u} with equal
// weights; only called for nodes with all-unit incident weights.
bool closed_twins(const CsrGraph& g, NodeId u, NodeId v) {
  if (!g.has_edge(u, v)) return false;
  auto nu = g.neighbors(u), nv = g.neighbors(v);
  if (nu.size() != nv.size()) return false;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == v) {
      ++i;
      continue;
    }
    if (nv[j] == u) {
      ++j;
      continue;
    }
    if (nu[i] != nv[j]) return false;
    ++i;
    ++j;
  }
  while (i < nu.size() && nu[i] == v) ++i;
  while (j < nv.size() && nv[j] == u) ++j;
  return i == nu.size() && j == nv.size();
}

bool all_unit_weights(const CsrGraph& g, NodeId v) {
  for (Weight w : g.weights(v))
    if (w != 1) return false;
  return true;
}

}  // namespace

IdenticalPassStats remove_identical_nodes(const CsrGraph& g,
                                          std::vector<std::uint8_t>& present,
                                          ReductionLedger& ledger) {
  BRICS_CHECK(present.size() == g.num_nodes());
  IdenticalPassStats stats;
  const NodeId n = g.num_nodes();

  // ---- Open twins: bucket by adjacency hash, verify, keep smallest id. ----
  // Hashing every adjacency list is the pass's hot loop (and the costliest
  // kernel of the whole reduction, per bench/micro_engines) — compute the
  // hashes in parallel, then fill buckets sequentially.
  std::vector<std::uint64_t> open_hash(n, 0);
#pragma omp parallel for schedule(dynamic, 1024)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    const NodeId u = static_cast<NodeId>(v);
    if (!present[u] || g.degree(u) == 0) continue;
    open_hash[u] = hash_adjacency(g.neighbors(u), g.weights(u));
  }
  std::unordered_map<std::uint64_t, std::vector<NodeId>> buckets;
  buckets.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (!present[v] || g.degree(v) == 0) continue;
    buckets[open_hash[v]].push_back(v);
  }
  for (auto& [h, cand] : buckets) {
    (void)h;
    if (cand.size() < 2) continue;
    // Partition the bucket into exact-equality groups (collision-safe).
    std::vector<std::uint8_t> grouped(cand.size(), 0);
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (grouped[i]) continue;
      std::vector<NodeId> group{cand[i]};
      for (std::size_t j = i + 1; j < cand.size(); ++j) {
        if (grouped[j] || !open_twins(g, cand[i], cand[j])) continue;
        grouped[j] = 1;
        group.push_back(cand[j]);
      }
      if (group.size() < 2) continue;
      ++stats.groups;
      // A pinned member (anchor of an earlier record) must survive, so it
      // makes the best representative; other pinned members simply stay.
      NodeId rep = group[0];
      for (NodeId m : group)
        if (ledger.pinned(m)) {
          rep = m;
          break;
        }
      // d(rep, twin) = 2 * cheapest common incident weight.
      Weight wmin = g.weights(rep)[0];
      for (Weight w : g.weights(rep)) wmin = std::min(wmin, w);
      for (NodeId m : group) {
        if (m == rep || ledger.pinned(m)) continue;
        ledger.record_identical(m, rep, 2 * wmin);
        present[m] = 0;
        ++stats.removed;
        ++stats.open_removed;
      }
    }
  }

  // ---- Closed twins among the survivors with unit incident weights. ----
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cbuckets;
  for (NodeId v = 0; v < n; ++v) {
    if (!present[v] || g.degree(v) == 0) continue;
    if (!all_unit_weights(g, v)) continue;
    cbuckets[hash_adjacency(g.neighbors(v), g.weights(v), kInvalidNode,
                            /*include_self=*/true, v)]
        .push_back(v);
  }
  for (auto& [h, cand] : cbuckets) {
    (void)h;
    if (cand.size() < 2) continue;
    std::vector<std::uint8_t> grouped(cand.size(), 0);
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (grouped[i] || !present[cand[i]]) continue;
      std::vector<NodeId> group{cand[i]};
      for (std::size_t j = i + 1; j < cand.size(); ++j) {
        if (grouped[j] || !present[cand[j]]) continue;
        if (!closed_twins(g, cand[i], cand[j])) continue;
        grouped[j] = 1;
        group.push_back(cand[j]);
      }
      if (group.size() < 2) continue;
      ++stats.groups;
      NodeId rep = group[0];
      for (NodeId m : group)
        if (ledger.pinned(m)) {
          rep = m;
          break;
        }
      for (NodeId m : group) {
        if (m == rep || ledger.pinned(m)) continue;
        ledger.record_identical(m, rep, g.edge_weight(rep, m));
        present[m] = 0;
        ++stats.removed;
        ++stats.closed_removed;
      }
    }
  }

  return stats;
}

}  // namespace brics
