#include "reduce/identical.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace brics {
namespace {

// Order-sensitive hash of a (neighbour, weight) sequence. Adjacency lists
// are sorted, so equal sets hash equally. Templated over the adjacency
// backend — this is the reduction's costliest kernel (bench/micro_engines)
// and must not branch per entry on the storage mode.
template <class Adj>
std::uint64_t hash_adjacency(const Adj& adj, NodeId v,
                             bool include_self = false) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto feed = [&h](std::uint64_t x) {
    h ^= mix64(x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  bool self_emitted = false;
  adj.for_neighbors(v, [&](NodeId t, Weight w) {
    if (include_self && !self_emitted && t > v) {
      feed(v);
      feed(1);
      self_emitted = true;
    }
    feed(t);
    feed(w);
  });
  if (include_self && !self_emitted) {
    feed(v);
    feed(1);
  }
  return h;
}

// Exact open-twin test: equal (neighbour, weight) lists.
template <class Adj>
bool open_twins(const Adj& adj, NodeId u, NodeId v) {
  if (adj.degree(u) != adj.degree(v)) return false;
  auto cu = adj.cursor(u);
  auto cv = adj.cursor(v);
  for (; !cu.done(); cu.advance(), cv.advance())
    if (cu.target() != cv.target() || cu.weight() != cv.weight())
      return false;
  return true;
}

// Exact closed-twin test: u ~ v and N(u)\{v} == N(v)\{u} with equal
// weights; only called for nodes with all-unit incident weights.
template <class Adj>
bool closed_twins(const CsrGraph& g, const Adj& adj, NodeId u, NodeId v) {
  if (!g.has_edge(u, v)) return false;
  if (adj.degree(u) != adj.degree(v)) return false;
  auto cu = adj.cursor(u);
  auto cv = adj.cursor(v);
  while (!cu.done() && !cv.done()) {
    if (cu.target() == v) {
      cu.advance();
      continue;
    }
    if (cv.target() == u) {
      cv.advance();
      continue;
    }
    if (cu.target() != cv.target()) return false;
    cu.advance();
    cv.advance();
  }
  while (!cu.done() && cu.target() == v) cu.advance();
  while (!cv.done() && cv.target() == u) cv.advance();
  return cu.done() && cv.done();
}

template <class Adj>
bool all_unit_weights(const Adj& adj, NodeId v) {
  bool unit = true;
  adj.for_neighbors(v, [&](NodeId, Weight w) {
    if (w != 1) unit = false;
  });
  return unit;
}

template <class Adj>
Weight min_incident_weight(const Adj& adj, NodeId v) {
  Weight wmin = std::numeric_limits<Weight>::max();
  adj.for_neighbors(v, [&](NodeId, Weight w) { wmin = std::min(wmin, w); });
  return wmin;
}

}  // namespace

IdenticalPassStats remove_identical_nodes(const CsrGraph& g,
                                          std::vector<std::uint8_t>& present,
                                          ReductionLedger& ledger) {
  BRICS_CHECK(present.size() == g.num_nodes());
  IdenticalPassStats stats;
  const NodeId n = g.num_nodes();

  g.with_adjacency([&](const auto& adj) {
    // ---- Open twins: bucket by adjacency hash, verify, keep smallest
    // id. Hashing every adjacency list is the pass's hot loop — compute
    // the hashes in parallel, then fill buckets sequentially.
    std::vector<std::uint64_t> open_hash(n, 0);
#pragma omp parallel for schedule(dynamic, 1024)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      const NodeId u = static_cast<NodeId>(v);
      if (!present[u] || adj.degree(u) == 0) continue;
      open_hash[u] = hash_adjacency(adj, u);
    }
    std::unordered_map<std::uint64_t, std::vector<NodeId>> buckets;
    buckets.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (!present[v] || adj.degree(v) == 0) continue;
      buckets[open_hash[v]].push_back(v);
    }
    for (auto& [h, cand] : buckets) {
      (void)h;
      if (cand.size() < 2) continue;
      // Partition the bucket into exact-equality groups (collision-safe).
      std::vector<std::uint8_t> grouped(cand.size(), 0);
      for (std::size_t i = 0; i < cand.size(); ++i) {
        if (grouped[i]) continue;
        std::vector<NodeId> group{cand[i]};
        for (std::size_t j = i + 1; j < cand.size(); ++j) {
          if (grouped[j] || !open_twins(adj, cand[i], cand[j])) continue;
          grouped[j] = 1;
          group.push_back(cand[j]);
        }
        if (group.size() < 2) continue;
        ++stats.groups;
        // A pinned member (anchor of an earlier record) must survive, so
        // it makes the best representative; other pinned members stay.
        NodeId rep = group[0];
        for (NodeId m : group)
          if (ledger.pinned(m)) {
            rep = m;
            break;
          }
        // d(rep, twin) = 2 * cheapest common incident weight.
        const Weight wmin = min_incident_weight(adj, rep);
        for (NodeId m : group) {
          if (m == rep || ledger.pinned(m)) continue;
          ledger.record_identical(m, rep, 2 * wmin);
          present[m] = 0;
          ++stats.removed;
          ++stats.open_removed;
        }
      }
    }

    // ---- Closed twins among the survivors with unit incident weights. ---
    std::unordered_map<std::uint64_t, std::vector<NodeId>> cbuckets;
    for (NodeId v = 0; v < n; ++v) {
      if (!present[v] || adj.degree(v) == 0) continue;
      if (!all_unit_weights(adj, v)) continue;
      cbuckets[hash_adjacency(adj, v, /*include_self=*/true)].push_back(v);
    }
    for (auto& [h, cand] : cbuckets) {
      (void)h;
      if (cand.size() < 2) continue;
      std::vector<std::uint8_t> grouped(cand.size(), 0);
      for (std::size_t i = 0; i < cand.size(); ++i) {
        if (grouped[i] || !present[cand[i]]) continue;
        std::vector<NodeId> group{cand[i]};
        for (std::size_t j = i + 1; j < cand.size(); ++j) {
          if (grouped[j] || !present[cand[j]]) continue;
          if (!closed_twins(g, adj, cand[i], cand[j])) continue;
          grouped[j] = 1;
          group.push_back(cand[j]);
        }
        if (group.size() < 2) continue;
        ++stats.groups;
        NodeId rep = group[0];
        for (NodeId m : group)
          if (ledger.pinned(m)) {
            rep = m;
            break;
          }
        for (NodeId m : group) {
          if (m == rep || ledger.pinned(m)) continue;
          ledger.record_identical(m, rep, g.edge_weight(rep, m));
          present[m] = 0;
          ++stats.removed;
          ++stats.closed_removed;
        }
      }
    }
  });

  return stats;
}

}  // namespace brics
