// The cumulative reduction pipeline (paper Algorithm 4).
//
// Applies, in order: identical-node removal (I), chain removal/compression
// (C), redundant 3/4-degree removal (R) — each stage optional so the
// paper's per-class configurations (C+R, I+C+R, Cumulative) are expressible.
// Node ids are stable: removed nodes simply become isolated in the reduced
// CSR graph and are flagged absent in `present`.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "reduce/chains.hpp"
#include "reduce/identical.hpp"
#include "reduce/ledger.hpp"
#include "reduce/redundant.hpp"

namespace brics {

/// Which reductions to run. Defaults give the paper's full cumulative mode.
struct ReduceOptions {
  bool identical = true;   ///< I — twin removal
  bool chains = true;      ///< C — chain removal/compression
  bool redundant = true;   ///< R — redundant 3/4-degree removal
  /// Restrict the chain pass to pendant chains (tree appendages). Pendant
  /// removal is the iterated-degree-1 peel towards the 2-core and — unlike
  /// through-chain compression, twin removal, or redundant removal — it
  /// preserves shortest-path COUNTS between surviving nodes, not just
  /// lengths. The betweenness measure requires this mode; farness never
  /// sets it (docs/ARCHITECTURE.md, Measure abstraction).
  bool pendant_only = false;
  /// Re-run the enabled stages until a fixed point (an extension beyond the
  /// paper's single pass; each extra round only removes more nodes and
  /// remains exactness-preserving).
  bool iterate = false;
  int max_rounds = 16;  ///< safety bound for iterate mode
};

/// Aggregate statistics across all rounds.
struct ReduceStats {
  IdenticalPassStats identical;
  ChainPassStats chains;
  RedundantPassStats redundant;
  int rounds = 0;
  NodeId input_nodes = 0;
  std::uint64_t input_edges = 0;
  NodeId reduced_nodes = 0;          ///< nodes remaining present
  std::uint64_t reduced_edges = 0;   ///< edges in the reduced graph
};

/// The reduced graph plus everything needed to undo it logically.
struct ReducedGraph {
  CsrGraph graph;                     ///< same id space; removed = isolated
  std::vector<std::uint8_t> present;  ///< 1 iff node survives
  NodeId num_present = 0;
  ReductionLedger ledger;
  ReduceStats stats;

  explicit ReducedGraph(NodeId n) : ledger(n) {}
};

/// Run the reduction pipeline on a connected simple graph g.
ReducedGraph reduce(const CsrGraph& g, const ReduceOptions& opts = {});

}  // namespace brics
