#include "reduce/ledger.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace brics {

void ReductionLedger::mark_removed(NodeId v) {
  BRICS_CHECK_MSG(v < removed_.size(), "node " << v << " out of range");
  BRICS_CHECK_MSG(!removed_[v], "node " << v << " removed twice");
  BRICS_CHECK_MSG(!pinned_[v], "node " << v << " is a pinned anchor");
  removed_[v] = 1;
  ++num_removed_;
}

void ReductionLedger::pin(NodeId v) {
  BRICS_CHECK_MSG(v < removed_.size() && !removed_[v],
                  "cannot pin absent node " << v);
  pinned_[v] = 1;
}

void ReductionLedger::record_identical(NodeId node, NodeId rep,
                                       Dist self_dist) {
  BRICS_CHECK_MSG(rep < removed_.size() && !removed_[rep],
                  "identical rep " << rep << " not present");
  BRICS_CHECK(node != rep);
  BRICS_CHECK(self_dist >= 1);
  mark_removed(node);
  pin(rep);
  identical_.push_back({node, rep, self_dist});
  order_.push_back(
      {Kind::kIdentical, static_cast<std::uint32_t>(identical_.size() - 1)});
  active_.push_back(1);
  record_of_[node] = static_cast<std::uint32_t>(order_.size() - 1);
}

void ReductionLedger::record_chain(ChainRecord rec) {
  BRICS_CHECK(!rec.members.empty());
  BRICS_CHECK(rec.members.size() == rec.offsets.size());
  BRICS_CHECK_MSG(rec.u < removed_.size() && !removed_[rec.u],
                  "chain anchor " << rec.u << " not present");
  if (!rec.pendant()) {
    BRICS_CHECK_MSG(rec.v < removed_.size() && !removed_[rec.v],
                    "chain anchor " << rec.v << " not present");
    BRICS_CHECK(rec.total > rec.offsets.back());
  }
  Dist prev = 0;
  for (std::size_t i = 0; i < rec.members.size(); ++i) {
    BRICS_CHECK_MSG(rec.offsets[i] > prev || (i == 0 && rec.offsets[i] >= 1),
                    "chain offsets not increasing");
    prev = rec.offsets[i];
    mark_removed(rec.members[i]);
  }
  pin(rec.u);
  if (!rec.pendant() && !rec.cycle()) pin(rec.v);
  chains_.push_back(std::move(rec));
  order_.push_back(
      {Kind::kChain, static_cast<std::uint32_t>(chains_.size() - 1)});
  active_.push_back(1);
  for (NodeId m : chains_.back().members)
    record_of_[m] = static_cast<std::uint32_t>(order_.size() - 1);
}

void ReductionLedger::record_redundant(NodeId node,
                                       std::span<const NodeId> nbrs,
                                       std::span<const Weight> wts) {
  BRICS_CHECK(nbrs.size() == wts.size());
  BRICS_CHECK(nbrs.size() >= 1 && nbrs.size() <= 4);
  RedundantRecord r;
  r.node = node;
  r.degree = static_cast<std::uint8_t>(nbrs.size());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    BRICS_CHECK_MSG(nbrs[i] < removed_.size() && !removed_[nbrs[i]],
                    "redundant neighbour " << nbrs[i] << " not present");
    r.nbrs[i] = nbrs[i];
    r.wts[i] = wts[i];
  }
  mark_removed(node);
  for (std::size_t i = 0; i < nbrs.size(); ++i) pin(nbrs[i]);
  redundant_.push_back(r);
  order_.push_back(
      {Kind::kRedundant, static_cast<std::uint32_t>(redundant_.size() - 1)});
  active_.push_back(1);
  record_of_[node] = static_cast<std::uint32_t>(order_.size() - 1);
}

namespace {

// Saturating add on Dist: kInfDist stays infinite.
inline Dist dist_add(Dist d, Dist delta) {
  return d == kInfDist ? kInfDist : d + delta;
}

}  // namespace

void ReductionLedger::apply_record(const OrderEntry& e,
                                   std::span<Dist> dist) const {
  switch (e.kind) {
    case Kind::kIdentical: {
      const IdenticalRecord& r = identical_[e.index];
      const Dist dr = dist[r.rep];
      // dr == 0 means the source *is* the representative (removed nodes are
      // never sources, and no other node is at distance 0), in which case
      // the twin sits at its self-distance rather than on top of the source.
      dist[r.node] = dr == 0 ? r.self_dist : dr;
      break;
    }
    case Kind::kChain: {
      const ChainRecord& r = chains_[e.index];
      const Dist du = dist[r.u];
      const Dist dv = r.pendant() ? kInfDist : dist[r.v];
      for (std::size_t i = 0; i < r.members.size(); ++i) {
        const Dist via_u = dist_add(du, r.offsets[i]);
        const Dist via_v =
            r.pendant() ? kInfDist : dist_add(dv, r.total - r.offsets[i]);
        dist[r.members[i]] = std::min(via_u, via_v);
      }
      break;
    }
    case Kind::kRedundant: {
      const RedundantRecord& r = redundant_[e.index];
      Dist best = kInfDist;
      for (std::size_t i = 0; i < r.degree; ++i)
        best = std::min(best, dist_add(dist[r.nbrs[i]], r.wts[i]));
      dist[r.node] = best;
      break;
    }
  }
}

void ReductionLedger::resolve(std::span<Dist> dist) const {
  BRICS_CHECK(dist.size() == removed_.size());
  for (std::size_t i = order_.size(); i > 0; --i)
    if (active_[i - 1]) apply_record(order_[i - 1], dist);
}

void ReductionLedger::resolve_subset(
    std::span<Dist> dist, std::span<const std::uint32_t> record_ids) const {
  BRICS_CHECK(dist.size() == removed_.size());
  for (auto it = record_ids.rbegin(); it != record_ids.rend(); ++it) {
    BRICS_CHECK(*it < order_.size());
    if (active_[*it]) apply_record(order_[*it], dist);
  }
}

std::vector<NodeId> ReductionLedger::record_nodes(
    std::uint32_t order_idx) const {
  BRICS_CHECK(order_idx < order_.size());
  const OrderEntry& e = order_[order_idx];
  switch (e.kind) {
    case Kind::kIdentical:
      return {identical_[e.index].node};
    case Kind::kChain:
      return chains_[e.index].members;
    case Kind::kRedundant:
      return {redundant_[e.index].node};
  }
  return {};
}

std::vector<NodeId> ReductionLedger::splice_record(std::uint32_t order_idx) {
  BRICS_CHECK(order_idx < order_.size());
  BRICS_CHECK_MSG(active_[order_idx], "record already spliced");
  active_[order_idx] = 0;
  std::vector<NodeId> nodes = record_nodes(order_idx);
  for (NodeId v : nodes) {
    BRICS_CHECK(removed_[v]);
    removed_[v] = 0;
    record_of_[v] = kNoRecord;
    --num_removed_;
  }
  return nodes;
}

}  // namespace brics
