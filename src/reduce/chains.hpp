// Chain-node detection, classification and compression (paper §III-B).
//
// A chain is a maximal path u – a_1 … a_ℓ – v whose interior nodes all have
// degree 2. The paper's four chain types map onto three removal actions:
//   - pendant chains (Type 1; one end has degree 1): interior + tip removed
//   - cycle chains (Type 2; u == v): interior removed
//   - through chains (u != v, both degree != 2): interior removed and the
//     chain *compressed* into a weighted edge (u, v, along-length); parallel
//     compressed edges keep the minimum weight, which subsumes Type 3
//     (longer parallel chain is redundant) and Type 4 (identical chains)
//     while preserving distances exactly (DESIGN.md §3.1).
//
// Degenerate whole-component shapes (the graph is a single path or a single
// cycle) keep one anchor node and remove the rest.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "reduce/ledger.hpp"

namespace brics {

/// Outcome of one chain pass.
struct ChainPassStats {
  NodeId chains = 0;                ///< chains found (any type)
  NodeId removed = 0;               ///< chain nodes removed
  NodeId pendant_chains = 0;        ///< Type-1
  NodeId cycle_chains = 0;          ///< Type-2
  NodeId through_chains = 0;        ///< compressed to weighted edges
  NodeId identical_chain_nodes = 0; ///< members of equal-length parallel
                                    ///< chains beyond the first (Type-4,
                                    ///< reported in Table I)
};

/// Extra undirected edges the caller must add when rebuilding the graph
/// (one per compressed through chain; the builder merges parallels by
/// minimum weight).
struct ChainPassResult {
  ChainPassStats stats;
  std::vector<Edge> compressed_edges;
};

/// Detect chains among `present` nodes of g, record removals into the
/// ledger, update `present`. The caller rebuilds the CSR graph with the
/// surviving edges plus result.compressed_edges.
///
/// With pendant_only set, only pendant chains (Type 1, including the
/// whole-component path/K2 degenerates) are removed; cycle and through
/// chains are left untouched — no compression, no ledger records. Iterated
/// to a fixed point this is exactly the degree-1 peel to the graph's
/// 2-core (plus pinned tree skeleton), the only chain action that
/// preserves shortest-path counts between survivors (betweenness mode).
ChainPassResult remove_chain_nodes(const CsrGraph& g,
                                   std::vector<std::uint8_t>& present,
                                   ReductionLedger& ledger,
                                   bool pendant_only = false);

}  // namespace brics
