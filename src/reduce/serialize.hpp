// Binary serialisation of a ReducedGraph — reduce once, reuse across runs.
//
// The preprocessing (twin hashing, chain walks, redundancy certificates)
// costs O(m) per pass; for pipelines that re-estimate many times (parameter
// sweeps, dynamic warm starts) the reduction can be computed once and
// persisted. The format stores the reduced edge list, the present mask and
// the full ledger (records in removal order, with splice flags), and
// load_reduction() rebuilds by replaying the records — every invariant the
// ledger enforces at record time is re-checked on load, so a corrupted or
// hand-edited file fails loudly instead of resolving wrong distances.
#pragma once

#include <iosfwd>
#include <string>

#include "reduce/reducer.hpp"

namespace brics {

/// Serialise rg to a binary stream.
void save_reduction(const ReducedGraph& rg, std::ostream& out);

/// Parse a reduction back; throws CheckFailure on malformed input.
ReducedGraph load_reduction(std::istream& in);

/// File-path convenience wrappers.
void save_reduction_file(const ReducedGraph& rg, const std::string& path);
ReducedGraph load_reduction_file(const std::string& path);

}  // namespace brics
