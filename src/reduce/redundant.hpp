// Redundant degree-3/4 node removal (paper §III-C, Fig. 1(e),(f)).
//
// A node v is redundant when no shortest path between two other nodes needs
// v: every pair (a, b) of v's neighbours has a detour inside N(v) of length
// at most w(a,v) + w(v,b) — a direct edge or a two-hop path through another
// neighbour. On unit-weight graphs this is exactly the paper's criterion
// (degree 3: neighbours form a triangle; degree 4: every neighbour adjacent
// to >= 2 other neighbours); on weighted reduced graphs the explicit detour
// lengths are verified so the optimisation stays exactness-preserving.
//
// Removals are processed sequentially against *live* adjacency (neighbours
// already removed in this pass do not count and cannot serve as detours),
// because two adjacent redundant nodes may each certify the other's detour.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "reduce/ledger.hpp"

namespace brics {

/// Outcome of one redundant-node pass.
struct RedundantPassStats {
  NodeId removed = 0;
  NodeId degree3 = 0;
  NodeId degree4 = 0;
};

/// Detect and remove redundant 3/4-degree nodes among `present` nodes,
/// recording them in the ledger and updating `present` in place. The caller
/// rebuilds the CSR graph afterwards.
RedundantPassStats remove_redundant_nodes(const CsrGraph& g,
                                          std::vector<std::uint8_t>& present,
                                          ReductionLedger& ledger);

}  // namespace brics
