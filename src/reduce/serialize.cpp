#include "reduce/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace brics {
namespace {

constexpr char kMagic[8] = {'B', 'R', 'I', 'C', 'S', 'R', 'G', '1'};

void put_u64(std::ostream& out, std::uint64_t x) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(x >> (8 * i));
  out.write(buf, 8);
}

std::uint64_t get_u64(std::istream& in) {
  char buf[8];
  in.read(buf, 8);
  BRICS_CHECK_MSG(in.gcount() == 8, "truncated reduction file");
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i)
    x |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  return x;
}

void put_u32(std::ostream& out, std::uint32_t x) {
  put_u64(out, x);  // simple fixed-width framing; density is not the goal
}

std::uint32_t get_u32(std::istream& in) {
  std::uint64_t x = get_u64(in);
  BRICS_CHECK_MSG(x <= 0xffffffffULL, "u32 field out of range");
  return static_cast<std::uint32_t>(x);
}

}  // namespace

void save_reduction(const ReducedGraph& rg, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const NodeId n = rg.ledger.num_nodes();
  put_u32(out, n);

  // Reduced graph as an edge list (canonical CSR is rebuilt on load).
  std::vector<Edge> edges = rg.graph.edge_list();
  put_u64(out, edges.size());
  for (const Edge& e : edges) {
    put_u32(out, e.u);
    put_u32(out, e.v);
    put_u32(out, e.w);
  }

  // Ledger records in removal order + active flags.
  auto order = rg.ledger.order();
  put_u64(out, order.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    put_u32(out, static_cast<std::uint32_t>(order[i].kind));
    put_u32(out, rg.ledger.record_active(i) ? 1 : 0);
    switch (order[i].kind) {
      case ReductionLedger::Kind::kIdentical: {
        const IdenticalRecord& r = rg.ledger.identical()[order[i].index];
        put_u32(out, r.node);
        put_u32(out, r.rep);
        put_u32(out, r.self_dist);
        break;
      }
      case ReductionLedger::Kind::kChain: {
        const ChainRecord& r = rg.ledger.chains()[order[i].index];
        put_u32(out, r.u);
        put_u32(out, r.v);
        put_u32(out, r.total);
        put_u64(out, r.members.size());
        for (std::size_t j = 0; j < r.members.size(); ++j) {
          put_u32(out, r.members[j]);
          put_u32(out, r.offsets[j]);
        }
        break;
      }
      case ReductionLedger::Kind::kRedundant: {
        const RedundantRecord& r = rg.ledger.redundant()[order[i].index];
        put_u32(out, r.node);
        put_u32(out, r.degree);
        for (std::size_t j = 0; j < r.degree; ++j) {
          put_u32(out, r.nbrs[j]);
          put_u32(out, r.wts[j]);
        }
        break;
      }
    }
  }

  // Stats (flat numeric payload, same order as the struct).
  const ReduceStats& st = rg.stats;
  for (std::uint64_t v : {
           std::uint64_t{st.identical.groups},
           std::uint64_t{st.identical.removed},
           std::uint64_t{st.identical.open_removed},
           std::uint64_t{st.identical.closed_removed},
           std::uint64_t{st.chains.chains}, std::uint64_t{st.chains.removed},
           std::uint64_t{st.chains.pendant_chains},
           std::uint64_t{st.chains.cycle_chains},
           std::uint64_t{st.chains.through_chains},
           std::uint64_t{st.chains.identical_chain_nodes},
           std::uint64_t{st.redundant.removed},
           std::uint64_t{st.redundant.degree3},
           std::uint64_t{st.redundant.degree4},
           static_cast<std::uint64_t>(st.rounds),
           std::uint64_t{st.input_nodes}, st.input_edges,
           std::uint64_t{st.reduced_nodes}, st.reduced_edges})
    put_u64(out, v);
  BRICS_CHECK_MSG(out.good(), "write failed");
}

ReducedGraph load_reduction(std::istream& in) {
  char magic[8];
  in.read(magic, 8);
  BRICS_CHECK_MSG(in.gcount() == 8 && std::memcmp(magic, kMagic, 8) == 0,
                  "not a BRICS reduction file");
  const NodeId n = get_u32(in);
  ReducedGraph rg(n);
  rg.present.assign(n, 1);

  const std::uint64_t m = get_u64(in);
  GraphBuilder b(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    NodeId u = get_u32(in), v = get_u32(in);
    Weight w = get_u32(in);
    b.add_edge(u, v, w);
  }
  rg.graph = b.build();

  const std::uint64_t nrec = get_u64(in);
  std::vector<std::uint32_t> inactive;
  for (std::uint64_t i = 0; i < nrec; ++i) {
    const std::uint32_t kind = get_u32(in);
    const bool active = get_u32(in) != 0;
    switch (static_cast<ReductionLedger::Kind>(kind)) {
      case ReductionLedger::Kind::kIdentical: {
        NodeId node = get_u32(in), rep = get_u32(in);
        Dist sd = get_u32(in);
        rg.ledger.record_identical(node, rep, sd);
        rg.present[node] = 0;
        break;
      }
      case ReductionLedger::Kind::kChain: {
        ChainRecord r;
        r.u = get_u32(in);
        r.v = get_u32(in);
        r.total = get_u32(in);
        const std::uint64_t len = get_u64(in);
        BRICS_CHECK_MSG(len >= 1 && len <= n, "bad chain length");
        for (std::uint64_t j = 0; j < len; ++j) {
          r.members.push_back(get_u32(in));
          r.offsets.push_back(get_u32(in));
        }
        for (NodeId mm : r.members) rg.present[mm] = 0;
        rg.ledger.record_chain(std::move(r));
        break;
      }
      case ReductionLedger::Kind::kRedundant: {
        NodeId node = get_u32(in);
        const std::uint32_t deg = get_u32(in);
        BRICS_CHECK_MSG(deg >= 1 && deg <= 4, "bad redundant degree");
        std::vector<NodeId> nbrs(deg);
        std::vector<Weight> wts(deg);
        for (std::uint32_t j = 0; j < deg; ++j) {
          nbrs[j] = get_u32(in);
          wts[j] = get_u32(in);
        }
        rg.ledger.record_redundant(node, nbrs, wts);
        rg.present[node] = 0;
        break;
      }
      default:
        BRICS_CHECK_MSG(false, "unknown record kind " << kind);
    }
    if (!active) inactive.push_back(static_cast<std::uint32_t>(i));
  }
  for (std::uint32_t i : inactive) {
    for (NodeId v : rg.ledger.splice_record(i)) rg.present[v] = 1;
  }
  rg.num_present = n - rg.ledger.num_removed();

  ReduceStats& st = rg.stats;
  st.identical.groups = static_cast<NodeId>(get_u64(in));
  st.identical.removed = static_cast<NodeId>(get_u64(in));
  st.identical.open_removed = static_cast<NodeId>(get_u64(in));
  st.identical.closed_removed = static_cast<NodeId>(get_u64(in));
  st.chains.chains = static_cast<NodeId>(get_u64(in));
  st.chains.removed = static_cast<NodeId>(get_u64(in));
  st.chains.pendant_chains = static_cast<NodeId>(get_u64(in));
  st.chains.cycle_chains = static_cast<NodeId>(get_u64(in));
  st.chains.through_chains = static_cast<NodeId>(get_u64(in));
  st.chains.identical_chain_nodes = static_cast<NodeId>(get_u64(in));
  st.redundant.removed = static_cast<NodeId>(get_u64(in));
  st.redundant.degree3 = static_cast<NodeId>(get_u64(in));
  st.redundant.degree4 = static_cast<NodeId>(get_u64(in));
  st.rounds = static_cast<int>(get_u64(in));
  st.input_nodes = static_cast<NodeId>(get_u64(in));
  st.input_edges = get_u64(in);
  st.reduced_nodes = static_cast<NodeId>(get_u64(in));
  st.reduced_edges = get_u64(in);
  return rg;
}

void save_reduction_file(const ReducedGraph& rg, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  BRICS_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  save_reduction(rg, out);
}

ReducedGraph load_reduction_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BRICS_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return load_reduction(in);
}

}  // namespace brics
