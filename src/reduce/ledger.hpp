// The reduction ledger: an ordered record of every node removal, with enough
// information to reconstruct exact shortest-path distances to removed nodes
// from any surviving node (DESIGN.md §3.2).
//
// Records reference only nodes that were *present at removal time*. Given a
// distance vector filled in for the final reduced graph, resolve() replays
// the records in reverse removal order; each record's referenced anchors are
// guaranteed to be resolved (or still present) by the time it runs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace brics {

/// A twin removal: `node` has the same neighbourhood as `rep`, hence the
/// same distance to every other node. `self_dist` is d(node, rep): 2·w for
/// open twins (via a cheapest common neighbour), w(node, rep) for closed.
struct IdenticalRecord {
  NodeId node = kInvalidNode;
  NodeId rep = kInvalidNode;
  Dist self_dist = 2;
};

/// A removed chain u – a_1 … a_ℓ – v of former degree-≤2 nodes.
///   - through chain: u != v, both valid; compressed into edge (u, v, total)
///   - cycle chain:   v == u
///   - pendant chain: v == kInvalidNode (the last member has degree 1)
/// offsets[i] is the along-chain distance from u to members[i]; `total` is
/// the full u→v along-chain length (unused for pendants).
struct ChainRecord {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Dist total = 0;
  std::vector<NodeId> members;
  std::vector<Dist> offsets;

  bool pendant() const { return v == kInvalidNode; }
  bool cycle() const { return v == u; }
};

/// A redundant degree-3/4 node: no shortest path between other nodes passes
/// through it, so d(x, node) = min_i d(x, nbr[i]) + w[i] (Algorithm 3).
struct RedundantRecord {
  NodeId node = kInvalidNode;
  std::uint8_t degree = 0;
  std::array<NodeId, 4> nbrs{kInvalidNode, kInvalidNode, kInvalidNode,
                             kInvalidNode};
  std::array<Weight, 4> wts{0, 0, 0, 0};
};

class ReductionLedger {
 public:
  explicit ReductionLedger(NodeId n)
      : removed_(n, 0), pinned_(n, 0), record_of_(n, kNoRecord) {}

  NodeId num_nodes() const { return static_cast<NodeId>(removed_.size()); }
  NodeId num_removed() const { return num_removed_; }
  bool removed(NodeId v) const { return removed_[v] != 0; }

  /// A node referenced as an anchor by any record is *pinned*: later passes
  /// must not remove it, which guarantees that every record's anchors are
  /// still present in the final reduced graph. This keeps distance
  /// resolution single-step and lets the BCC estimator resolve each block's
  /// removed nodes from block-local distances alone (DESIGN.md §3.5).
  bool pinned(NodeId v) const { return pinned_[v] != 0; }

  void record_identical(NodeId node, NodeId rep, Dist self_dist);
  void record_chain(ChainRecord rec);
  void record_redundant(NodeId node, std::span<const NodeId> nbrs,
                        std::span<const Weight> wts);

  /// Fill dist[] entries for all removed nodes, assuming entries for all
  /// present nodes hold exact distances from a fixed present source.
  /// Entries may be kInfDist when the source cannot reach an anchor (only
  /// possible for restricted, e.g. per-block, distance vectors).
  void resolve(std::span<Dist> dist) const;

  /// Resolve a selected subset of records (indices into order()) — used for
  /// per-block resolution where only the block's homed records apply.
  /// `record_ids` must be sorted ascending (global removal order); they are
  /// replayed in reverse.
  void resolve_subset(std::span<Dist> dist,
                      std::span<const std::uint32_t> record_ids) const;

  /// Record streams, in removal order within their own kind.
  std::span<const IdenticalRecord> identical() const { return identical_; }
  std::span<const ChainRecord> chains() const { return chains_; }
  std::span<const RedundantRecord> redundant() const { return redundant_; }

  /// Unified removal order: (kind, index-into-kind-stream) per record.
  enum class Kind : std::uint8_t { kIdentical, kChain, kRedundant };
  struct OrderEntry {
    Kind kind;
    std::uint32_t index;
  };
  std::span<const OrderEntry> order() const { return order_; }

  // ---- Dynamic-graph support (extensions/dynamic.hpp). ----

  /// False once a record was spliced back; inactive records are skipped by
  /// resolve()/resolve_subset() and by the estimators.
  bool record_active(std::uint32_t order_idx) const {
    return active_[order_idx] != 0;
  }

  /// Order index of the record that removed node v (kNoRecord if present).
  static constexpr std::uint32_t kNoRecord = ~std::uint32_t{0};
  std::uint32_t record_of(NodeId v) const { return record_of_[v]; }

  /// Deactivate a record and mark its removed nodes present again.
  /// Returns the restored nodes. Safe because no later record references a
  /// node that was removed at its recording time.
  std::vector<NodeId> splice_record(std::uint32_t order_idx);

  /// Nodes removed by a record (1 for identical/redundant, the members for
  /// chains).
  std::vector<NodeId> record_nodes(std::uint32_t order_idx) const;

 private:
  void apply_record(const OrderEntry& e, std::span<Dist> dist) const;
  void mark_removed(NodeId v);
  void pin(NodeId v);

  std::vector<std::uint8_t> removed_;
  std::vector<std::uint8_t> pinned_;
  std::vector<std::uint32_t> record_of_;
  std::vector<std::uint8_t> active_;
  NodeId num_removed_ = 0;
  std::vector<IdenticalRecord> identical_;
  std::vector<ChainRecord> chains_;
  std::vector<RedundantRecord> redundant_;
  std::vector<OrderEntry> order_;
};

}  // namespace brics
