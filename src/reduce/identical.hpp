// Identical-node ("twin") detection and removal (paper §III-A).
//
// Open twins:   N(u) = N(v), u ∉ N(v)   — same BFS tree from either node.
// Closed twins: N[u] = N[v], u ∈ N(v)   — exactness-preserving superset the
//                                         paper's hashing also captures.
// All members of a twin group share one farness value; all but a
// representative (the smallest id) are removed and recorded in the ledger.
//
// Detection hashes each node's sorted (neighbour, weight) list, then
// verifies candidate groups by exact comparison — a hash collision can
// group, never mis-remove. On weighted reduced graphs (iterated reduction)
// open twins additionally require equal weight vectors; closed twins are
// only formed among nodes whose incident edges are all unit weight, because
// the twin-pair edge weight cannot be cancelled out of the hash otherwise.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "reduce/ledger.hpp"

namespace brics {

/// Outcome of one identical-node pass.
struct IdenticalPassStats {
  NodeId groups = 0;          ///< twin groups found (size >= 2)
  NodeId removed = 0;         ///< nodes removed (group sizes minus reps)
  NodeId open_removed = 0;    ///< of which open twins
  NodeId closed_removed = 0;  ///< of which closed twins
};

/// Detect twin groups among `present` nodes of g and record removals into
/// the ledger; `present` is updated in place. Returns pass statistics.
/// The caller rebuilds the CSR graph afterwards.
IdenticalPassStats remove_identical_nodes(const CsrGraph& g,
                                          std::vector<std::uint8_t>& present,
                                          ReductionLedger& ledger);

}  // namespace brics
