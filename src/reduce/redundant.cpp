#include "reduce/redundant.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace brics {
namespace {

/// Live neighbourhood of v: neighbours not yet removed, capped at 5 (more
/// than 4 means v cannot be redundant, so we stop early).
struct LiveNbrs {
  std::array<NodeId, 5> ids{};
  std::array<Weight, 5> wts{};
  std::size_t count = 0;
  bool overflow = false;
};

LiveNbrs live_neighbors(const CsrGraph& g,
                        const std::vector<std::uint8_t>& present,
                        RowScratch& scratch, NodeId v) {
  LiveNbrs out;
  const RowRef r = g.row(v, scratch);
  for (std::size_t i = 0; i < r.nbrs.size(); ++i) {
    if (!present[r.nbrs[i]]) continue;
    if (out.count == 5) {
      out.overflow = true;
      break;
    }
    out.ids[out.count] = r.nbrs[i];
    out.wts[out.count] = r.wts[i];
    ++out.count;
  }
  if (out.count == 5) out.overflow = true;
  return out;
}

/// Weight of live edge {a, b}, or kInfDist when absent/removed.
Dist live_edge_weight(const CsrGraph& g,
                      const std::vector<std::uint8_t>& present, NodeId a,
                      NodeId b) {
  if (!present[a] || !present[b]) return kInfDist;
  Weight w = 0;
  if (!g.find_edge(a, b, w)) return kInfDist;
  return w;
}

/// True iff v matches the paper's redundancy criterion, extended with
/// explicit weighted detour checks:
///   (1) every live neighbour is adjacent to >= 2 other live neighbours
///       (degree 3: the neighbours form a triangle; degree 4: Fig. 1(f)).
///       On <= 4 vertices this forces the neighbourhood subgraph to be
///       2-connected, so all anchors of the removal record lie in one
///       biconnected block — required by the BCC estimator's record homing.
///   (2) every pair of live neighbours has a detour inside N(v) no longer
///       than the path through v (automatic on unit weights, checked
///       explicitly on chain-compressed weighted graphs).
bool is_redundant(const CsrGraph& g, const std::vector<std::uint8_t>& present,
                  const LiveNbrs& nb) {
  for (std::size_t i = 0; i < nb.count; ++i) {
    std::size_t within = 0;
    for (std::size_t j = 0; j < nb.count; ++j)
      if (j != i &&
          live_edge_weight(g, present, nb.ids[i], nb.ids[j]) != kInfDist)
        ++within;
    if (within < 2) return false;
  }
  for (std::size_t i = 0; i < nb.count; ++i) {
    for (std::size_t j = i + 1; j < nb.count; ++j) {
      const Dist via_v = nb.wts[i] + nb.wts[j];
      Dist detour = live_edge_weight(g, present, nb.ids[i], nb.ids[j]);
      for (std::size_t k = 0; k < nb.count && detour > via_v; ++k) {
        if (k == i || k == j) continue;
        const Dist leg1 =
            live_edge_weight(g, present, nb.ids[i], nb.ids[k]);
        if (leg1 == kInfDist) continue;
        const Dist leg2 =
            live_edge_weight(g, present, nb.ids[k], nb.ids[j]);
        if (leg2 == kInfDist) continue;
        detour = std::min(detour, leg1 + leg2);
      }
      if (detour > via_v) return false;
    }
  }
  return true;
}

}  // namespace

RedundantPassStats remove_redundant_nodes(const CsrGraph& g,
                                          std::vector<std::uint8_t>& present,
                                          ReductionLedger& ledger) {
  BRICS_CHECK(present.size() == g.num_nodes());
  RedundantPassStats stats;
  const NodeId n = g.num_nodes();
  RowScratch scratch;
  for (NodeId v = 0; v < n; ++v) {
    if (!present[v] || ledger.pinned(v)) continue;
    const std::uint32_t deg = g.degree(v);
    if (deg < 3) continue;  // degree 1/2 belongs to the chain pass
    LiveNbrs nb = live_neighbors(g, present, scratch, v);
    if (nb.overflow || nb.count < 3) continue;
    if (!is_redundant(g, present, nb)) continue;
    ledger.record_redundant(
        v, std::span<const NodeId>(nb.ids.data(), nb.count),
        std::span<const Weight>(nb.wts.data(), nb.count));
    present[v] = 0;
    ++stats.removed;
    if (nb.count == 3)
      ++stats.degree3;
    else
      ++stats.degree4;
  }
  return stats;
}

}  // namespace brics
