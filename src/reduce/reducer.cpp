#include "reduce/reducer.hpp"

#include "exec/failpoint.hpp"
#include "graph/stream_build.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// Rebuild a CSR graph containing only edges between present nodes, plus the
// compressed-chain edges produced by the latest chain pass. Streams the
// surviving rows through both builder passes — no edge-list copy — and
// keeps the input's storage mode.
CsrGraph rebuild(const CsrGraph& g, const std::vector<std::uint8_t>& present,
                 std::span<const Edge> extra) {
  TwoPassBuilder b(g.num_nodes());
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) b.begin_scatter();
    auto emit = [&](NodeId u, NodeId v, Weight w) {
      if (pass == 0)
        b.count_edge(u, v, w);
      else
        b.scatter_edge(u, v, w);
    };
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!present[v]) continue;
      g.for_neighbors(v, [&](NodeId t, Weight w) {
        if (v < t && present[t]) emit(v, t, w);
      });
    }
    for (const Edge& e : extra) {
      BRICS_CHECK(present[e.u] && present[e.v]);
      if (e.u != e.v) emit(e.u, e.v, e.w);
    }
  }
  return b.finish(g.storage());
}

void accumulate(IdenticalPassStats& a, const IdenticalPassStats& b) {
  a.groups += b.groups;
  a.removed += b.removed;
  a.open_removed += b.open_removed;
  a.closed_removed += b.closed_removed;
}

void accumulate(ChainPassStats& a, const ChainPassStats& b) {
  a.chains += b.chains;
  a.removed += b.removed;
  a.pendant_chains += b.pendant_chains;
  a.cycle_chains += b.cycle_chains;
  a.through_chains += b.through_chains;
  a.identical_chain_nodes += b.identical_chain_nodes;
}

void accumulate(RedundantPassStats& a, const RedundantPassStats& b) {
  a.removed += b.removed;
  a.degree3 += b.degree3;
  a.degree4 += b.degree4;
}

}  // namespace

ReducedGraph reduce(const CsrGraph& g, const ReduceOptions& opts) {
  BRICS_FAILPOINT("reduce.pipeline");
  const NodeId n = g.num_nodes();
  ReducedGraph out(n);
  out.present.assign(n, 1);
  out.graph = g;
  out.stats.input_nodes = n;
  out.stats.input_edges = g.num_edges();

  BRICS_COUNTER(c_rounds, "reduce.rounds");
  BRICS_COUNTER(c_identical, "reduce.identical_removed");
  BRICS_COUNTER(c_chain, "reduce.chain_removed");
  BRICS_COUNTER(c_redundant, "reduce.redundant_removed");
  const int rounds = opts.iterate ? opts.max_rounds : 1;
  for (int round = 0; round < rounds; ++round) {
    NodeId removed_before = out.ledger.num_removed();

    if (opts.identical) {
      BRICS_SPAN(sp, "reduce.identical");
      IdenticalPassStats s =
          remove_identical_nodes(out.graph, out.present, out.ledger);
      accumulate(out.stats.identical, s);
      BRICS_COUNTER_ADD(c_identical, s.removed);
      if (s.removed > 0) out.graph = rebuild(out.graph, out.present, {});
    }
    if (opts.chains) {
      BRICS_SPAN(sp, "reduce.chains");
      ChainPassResult r = remove_chain_nodes(out.graph, out.present,
                                             out.ledger, opts.pendant_only);
      accumulate(out.stats.chains, r.stats);
      BRICS_COUNTER_ADD(c_chain, r.stats.removed);
      if (r.stats.removed > 0)
        out.graph = rebuild(out.graph, out.present, r.compressed_edges);
    }
    if (opts.redundant) {
      BRICS_SPAN(sp, "reduce.redundant");
      RedundantPassStats s =
          remove_redundant_nodes(out.graph, out.present, out.ledger);
      accumulate(out.stats.redundant, s);
      BRICS_COUNTER_ADD(c_redundant, s.removed);
      if (s.removed > 0) out.graph = rebuild(out.graph, out.present, {});
    }

    ++out.stats.rounds;
    BRICS_COUNTER_ADD(c_rounds, 1);
    if (out.ledger.num_removed() == removed_before) break;  // fixed point
  }

  out.num_present = n - out.ledger.num_removed();
  out.stats.reduced_nodes = out.num_present;
  out.stats.reduced_edges = out.graph.num_edges();
  return out;
}

}  // namespace brics
