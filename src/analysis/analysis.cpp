#include "analysis/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "bcc/bcc.hpp"
#include "graph/connectivity.hpp"
#include "reduce/reducer.hpp"
#include "traverse/bfs.hpp"
#include "traverse/multi_source.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace brics {

std::vector<double> closeness_from_farness(std::span<const double> farness,
                                           NodeId n) {
  std::vector<double> out(farness.size(), 0.0);
  for (std::size_t v = 0; v < farness.size(); ++v)
    if (farness[v] > 0.0)
      out[v] = static_cast<double>(n - 1) / farness[v];
  return out;
}

namespace {

// Per-thread double accumulation buffers, merged once.
class HarmonicAccumulator {
 public:
  explicit HarmonicAccumulator(NodeId n)
      : n_(n), bufs_(static_cast<std::size_t>(max_threads())) {}

  void add(std::span<const Dist> dist) {
    auto& b = bufs_[static_cast<std::size_t>(thread_id())];
    if (b.empty()) b.assign(n_, 0.0);
    for (NodeId v = 0; v < n_; ++v)
      if (dist[v] != kInfDist && dist[v] != 0)
        b[v] += 1.0 / static_cast<double>(dist[v]);
  }

  std::vector<double> merge() const {
    std::vector<double> total(n_, 0.0);
    for (const auto& b : bufs_) {
      if (b.empty()) continue;
      for (NodeId v = 0; v < n_; ++v) total[v] += b[v];
    }
    return total;
  }

 private:
  NodeId n_;
  std::vector<std::vector<double>> bufs_;
};

}  // namespace

std::vector<double> exact_harmonic(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> sources(n);
  for (NodeId v = 0; v < n; ++v) sources[v] = v;
  HarmonicAccumulator acc(n);
  for_each_source(g, sources,
                  [&](std::size_t, NodeId, std::span<const Dist> dist) {
                    acc.add(dist);
                  });
  return acc.merge();
}

std::vector<double> estimate_harmonic(const CsrGraph& g, double sample_rate,
                                      std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(sample_rate > 0.0 && sample_rate <= 1.0,
                  "sample_rate must be in (0, 1]");
  const NodeId k = std::clamp<NodeId>(
      static_cast<NodeId>(std::ceil(sample_rate * n)), 1, n);
  Rng rng(seed);
  std::vector<NodeId> sources = sample_without_replacement(n, k, rng);
  HarmonicAccumulator acc(n);
  std::vector<std::uint8_t> is_source(n, 0);
  std::vector<double> exact_value(n, -1.0);
  for_each_source(g, sources,
                  [&](std::size_t, NodeId s, std::span<const Dist> dist) {
                    acc.add(dist);
                    double h = 0.0;
                    for (NodeId v = 0; v < n; ++v)
                      if (dist[v] != kInfDist && dist[v] != 0)
                        h += 1.0 / static_cast<double>(dist[v]);
                    exact_value[s] = h;
                    is_source[s] = 1;
                  });
  std::vector<double> sums = acc.merge();
  const double scale = static_cast<double>(n - 1) / static_cast<double>(k);
  std::vector<double> out(n, 0.0);
  for (NodeId v = 0; v < n; ++v)
    out[v] = is_source[v] ? exact_value[v] : sums[v] * scale;
  return out;
}

Dist diameter_lower_bound(const CsrGraph& g, int sweeps, std::uint64_t seed) {
  if (g.num_nodes() == 0) return 0;
  Rng rng(seed);
  TraversalWorkspace ws;
  NodeId start = static_cast<NodeId>(rng.below(g.num_nodes()));
  Dist best = 0;
  for (int i = 0; i < sweeps; ++i) {
    sssp(g, start, ws);
    DistanceAggregate a = aggregate_distances(ws.dist());
    best = std::max(best, a.ecc);
    // Jump to a farthest node for the next sweep.
    NodeId far = start;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (ws.dist()[v] != kInfDist && ws.dist()[v] == a.ecc) {
        far = v;
        break;
      }
    if (far == start) break;
    start = far;
  }
  return best;
}

std::vector<NodeId> degree_histogram(const CsrGraph& g) {
  std::uint32_t dmax = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    dmax = std::max(dmax, g.degree(v));
  std::vector<NodeId> hist(dmax + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(v)];
  return hist;
}

GraphSummary summarize_graph(const CsrGraph& g) {
  GraphSummary s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  if (s.nodes == 0) return s;
  s.min_degree = g.degree(0);
  for (NodeId v = 0; v < s.nodes; ++v) {
    const std::uint32_t d = g.degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d <= 2) ++s.deg_le2;
  }
  s.avg_degree =
      2.0 * static_cast<double>(s.edges) / static_cast<double>(s.nodes);
  s.components = connected_components(g).count;
  s.diameter_lb = diameter_lower_bound(g);

  ReducedGraph rg = reduce(g, ReduceOptions{});
  s.identical_nodes = rg.stats.identical.removed;
  s.chain_nodes = rg.stats.chains.removed;
  s.redundant_nodes = rg.stats.redundant.removed;

  BccResult bcc = biconnected_components(g);
  s.bcc_count = bcc.num_blocks();
  s.bcc_max = bcc.max_block_size();
  s.bcc_avg = bcc.avg_block_size();
  return s;
}

std::string to_string(const GraphSummary& s) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "nodes:            " << s.nodes << '\n'
     << "edges:            " << s.edges << '\n'
     << "degree (min/avg/max): " << s.min_degree << " / " << s.avg_degree
     << " / " << s.max_degree << '\n'
     << "degree<=2 nodes:  " << s.deg_le2 << '\n'
     << "components:       " << s.components << '\n'
     << "diameter >=       " << s.diameter_lb << '\n'
     << "identical nodes:  " << s.identical_nodes << '\n'
     << "chain nodes:      " << s.chain_nodes << '\n'
     << "redundant nodes:  " << s.redundant_nodes << '\n'
     << "BiCC count/max/avg: " << s.bcc_count << " / " << s.bcc_max << " / "
     << s.bcc_avg << '\n';
  return os.str();
}

}  // namespace brics
