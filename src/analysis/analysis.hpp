// Graph- and centrality-analysis helpers layered on the core estimators:
// closeness conversions, harmonic centrality, diameter estimation, and the
// structural summary the CLI and benches print.
#pragma once

#include <string>
#include <vector>

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

/// Closeness centrality from farness: (n-1) / farness(v). Zero-farness
/// entries (n == 1) map to 0.
std::vector<double> closeness_from_farness(std::span<const double> farness,
                                           NodeId n);

/// Exact harmonic centrality: H(v) = sum_{w != v} 1 / d(v, w). More robust
/// than closeness on almost-disconnected graphs; computed with the same
/// parallel multi-source engine.
std::vector<double> exact_harmonic(const CsrGraph& g);

/// Estimated harmonic centrality by uniform source sampling, scaled by
/// (n-1)/k like the farness baseline.
std::vector<double> estimate_harmonic(const CsrGraph& g, double sample_rate,
                                      std::uint64_t seed);

/// Lower bound on the diameter via `sweeps` rounds of the double-sweep
/// heuristic (BFS to the farthest node, repeat), exact on trees.
Dist diameter_lower_bound(const CsrGraph& g, int sweeps = 4,
                          std::uint64_t seed = 1);

/// Degree histogram: hist[d] = number of nodes with degree d.
std::vector<NodeId> degree_histogram(const CsrGraph& g);

/// Structural summary of a graph (counts, degree stats, reduction and BCC
/// signature) as printable text.
struct GraphSummary {
  NodeId nodes = 0;
  std::uint64_t edges = 0;
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  double avg_degree = 0.0;
  NodeId deg_le2 = 0;          ///< nodes with degree <= 2 (chain candidates)
  NodeId components = 0;
  Dist diameter_lb = 0;
  NodeId identical_nodes = 0;  ///< removed by the identical pass
  NodeId chain_nodes = 0;
  NodeId redundant_nodes = 0;
  NodeId bcc_count = 0;
  NodeId bcc_max = 0;
  double bcc_avg = 0.0;
};

GraphSummary summarize_graph(const CsrGraph& g);

/// Render a summary as aligned key/value lines.
std::string to_string(const GraphSummary& s);

}  // namespace brics
