// Umbrella header: the public API of the BRICS library.
//
// Quick start:
//
//   #include "brics/brics.hpp"
//
//   brics::CsrGraph g = brics::read_edge_list_file("graph.txt");
//   brics::EstimateOptions opts;
//   opts.sample_rate = 0.2;                  // 20 % of reduced-graph nodes
//   auto est = brics::estimate_farness(g, opts);   // full BRICS pipeline
//   // est.farness[v] ~ sum of distances from v to every other node
//
// Pieces, bottom-up:
//   graph/     CSR graph, builder, edge-list I/O, connectivity
//   gen/       synthetic generators + the Table-I-like dataset registry
//   traverse/  BFS and Dial SSSP engines, parallel multi-source driver
//   reduce/    identical / chain / redundant reductions + ledger
//   bcc/       biconnected components + block cut-vertex tree
//   exec/      run budgets, cancel tokens, error taxonomy, fail points,
//              checkpoint/resume, chaos harness
//   pipeline/  the staged estimator: context, artifacts, kernels, stages
//   core/      exact farness, sampling estimators, BRICS, quality metrics
//   obs/       metrics registry, span tracing, JSON run reports
//   server/    resident daemon: engine, wire protocol, admission control
#pragma once

#include "analysis/analysis.hpp"
#include "bcc/bcc.hpp"
#include "bcc/bct.hpp"
#include "core/brics.hpp"
#include "core/confidence.hpp"
#include "core/estimate.hpp"
#include "core/farness.hpp"
#include "core/pivoting.hpp"
#include "core/quality.hpp"
#include "core/sampling.hpp"
#include "exec/budget.hpp"
#include "exec/chaos.hpp"
#include "exec/checkpoint.hpp"
#include "exec/errors.hpp"
#include "exec/failpoint.hpp"
#include "exec/recovery.hpp"
#include "exec/resilience.hpp"
#include "gen/dataset.hpp"
#include "gen/generators.hpp"
#include "graph/connectivity.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_io.hpp"
#include "graph/metis_io.hpp"
#include "graph/reorder.hpp"
#include "measures/accum.hpp"
#include "measures/betweenness.hpp"
#include "measures/brandes.hpp"
#include "obs/metrics.hpp"
#include "obs/parallel.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pipeline/artifacts.hpp"
#include "pipeline/context.hpp"
#include "pipeline/kernels.hpp"
#include "pipeline/postprocess.hpp"
#include "pipeline/stages.hpp"
#include "reduce/reducer.hpp"
#include "reduce/serialize.hpp"
#include "server/admission.hpp"
#include "server/engine.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/server_chaos.hpp"
#include "traverse/bfs.hpp"
#include "traverse/bidirectional.hpp"
