// Block Cut-vertex Tree (paper Fig. 2): a bipartite tree whose nodes are
// the biconnected blocks and the cut vertices of a graph. Built on top of a
// BccResult, with a rooted orientation (per connected component) so the
// estimator's bottom-up/top-down contribution passes (Algorithm 6) can walk
// it in topological order.
#pragma once

#include <vector>

#include "bcc/bcc.hpp"

namespace brics {

/// Index into BlockCutTree::cut_nodes (dense renumbering of cut vertices).
using CutId = std::uint32_t;
inline constexpr CutId kInvalidCut = static_cast<CutId>(-1);

struct BlockCutTree {
  std::vector<NodeId> cut_nodes;       ///< cut index -> graph node id
  std::vector<CutId> cut_of_node;      ///< node id -> cut index (or invalid)
  std::vector<std::vector<CutId>> block_cuts;    ///< per block: its cuts
  std::vector<std::vector<BlockId>> cut_blocks;  ///< per cut: its blocks

  /// Rooted orientation. Roots are the largest block of each BCT component
  /// (parent_cut == kInvalidCut).
  std::vector<CutId> parent_cut;     ///< per block
  std::vector<BlockId> parent_block; ///< per cut
  std::vector<BlockId> top_down;     ///< blocks, parents before children

  BlockId num_blocks() const {
    return static_cast<BlockId>(block_cuts.size());
  }
  CutId num_cuts() const { return static_cast<CutId>(cut_nodes.size()); }
};

/// Build the BCT for a decomposition of a graph on n nodes.
BlockCutTree build_bct(const BccResult& bcc, NodeId n);

}  // namespace brics
