// Biconnected components via iterative Hopcroft–Tarjan (paper §III-D).
//
// Operates on the (possibly reduced) CSR graph, restricted to a present-node
// mask; absent nodes get no block. Every present node belongs to at least
// one block: isolated present nodes form singleton blocks, and each bridge
// edge forms a 2-node block. Cut vertices belong to every block they touch.
//
// The recursion is converted to an explicit stack (real-world graphs have
// DFS paths far deeper than any call stack).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace brics {

/// Identifier of a biconnected component (block).
using BlockId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = static_cast<BlockId>(-1);

/// Flattened public mirror of a BccResult for checkpoint serialization
/// (exec/recovery.cpp). to_raw/from_raw copy fields verbatim — no
/// re-derivation — so a round trip reproduces the decomposition exactly.
struct BccRaw {
  std::vector<std::vector<NodeId>> blocks;
  std::vector<std::uint8_t> is_cut;
  std::vector<std::uint64_t> member_offsets;
  std::vector<BlockId> memberships;
  NodeId num_cuts = 0;
};

class BccResult {
 public:
  BlockId num_blocks() const { return static_cast<BlockId>(blocks_.size()); }

  /// Nodes of block b, cut vertices included. Unordered.
  std::span<const NodeId> block_nodes(BlockId b) const { return blocks_[b]; }

  /// True iff v is an articulation point of the (present) graph.
  bool is_cut(NodeId v) const { return is_cut_[v] != 0; }

  /// Blocks containing v (size > 1 exactly for cut vertices; empty for
  /// absent nodes).
  std::span<const BlockId> blocks_of(NodeId v) const {
    return {memberships_.data() + member_offsets_[v],
            memberships_.data() + member_offsets_[v + 1]};
  }

  /// The single block of a non-cut present node.
  BlockId home_block(NodeId v) const { return blocks_of(v).front(); }

  /// Number of present cut vertices.
  NodeId num_cut_vertices() const { return num_cuts_; }

  /// Size of the largest block and mean block size (Table I's Max / Avg).
  NodeId max_block_size() const;
  double avg_block_size() const;

  BccRaw to_raw() const;
  static BccResult from_raw(BccRaw raw);

 private:
  friend BccResult biconnected_components(const CsrGraph&,
                                          std::span<const std::uint8_t>);

  std::vector<std::vector<NodeId>> blocks_;
  std::vector<std::uint8_t> is_cut_;
  std::vector<std::uint64_t> member_offsets_;
  std::vector<BlockId> memberships_;
  NodeId num_cuts_ = 0;
};

/// Decompose the subgraph induced by `present` (empty span = all nodes).
BccResult biconnected_components(const CsrGraph& g,
                                 std::span<const std::uint8_t> present = {});

}  // namespace brics
